/**
 * @file
 * Example: export a named synthetic workload as an on-disk trace —
 * MSR-format CSV (interoperable with existing block-trace tooling)
 * or the compact LSKT binary format. Lets external simulators and
 * the paper's original scripts consume logseek's calibrated
 * workloads.
 *
 * Usage: make_trace <workload> <out.csv|out.lskt> [scale] [seed]
 *        make_trace --list
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/report.h"
#include "trace/binary.h"
#include "trace/msr_csv.h"
#include "trace/stats.h"
#include "util/logging.h"
#include "workloads/profiles.h"

namespace
{

using namespace logseek;

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2 && std::string(argv[1]) == "--list") {
        analysis::TextTable table({"workload", "suite", "behavior"});
        for (const auto &info : workloads::workloadTable())
            table.addRow({info.name, info.suite, info.behavior});
        table.print(std::cout);
        return 0;
    }
    if (argc < 3) {
        std::cerr << "usage: make_trace <workload> "
                     "<out.csv|out.lskt> [scale] [seed]\n"
                     "       make_trace --list\n";
        return 1;
    }

    const std::string name = argv[1];
    const std::string path = argv[2];
    workloads::ProfileOptions options;
    if (argc > 3)
        options.scale = std::atof(argv[3]);
    if (argc > 4)
        options.seed =
            static_cast<std::uint64_t>(std::atoll(argv[4]));

    try {
        const trace::Trace trace =
            workloads::makeWorkload(name, options);
        if (endsWith(path, ".lskt")) {
            trace::writeBinaryTraceFile(path, trace);
        } else {
            std::ofstream out(path);
            if (!out)
                fatal("cannot create " + path);
            trace::writeMsrCsv(out, trace);
        }
        const trace::TraceStats stats = trace::computeStats(trace);
        std::cout << "wrote " << trace.size() << " requests ("
                  << stats.readCount << " reads, "
                  << stats.writeCount << " writes, "
                  << analysis::formatBytes(stats.readBytes +
                                           stats.writtenBytes)
                  << " transferred) to " << path << "\n";
    } catch (const FatalError &error) {
        std::cerr << "error: " << error.what() << "\n";
        return 1;
    }
    return 0;
}
