/**
 * @file
 * Example: a command-line analyzer for real block traces in the MSR
 * Cambridge CSV format — the pipeline the paper runs on its traces,
 * usable unchanged on the public MSR files
 * ("timestamp,host,disk,Read|Write,offset,bytes,latency").
 *
 * Prints Table-I style characteristics, mis-ordered write fraction
 * (Fig. 8), NoLS/LS seek counts (Fig. 2), fragmentation statistics
 * (Fig. 5) and the SAF of every mechanism (Fig. 11) for the trace.
 *
 * Usage:
 *   trace_analyzer <trace.csv|trace.lskt> [disk_number]
 *   trace_analyzer --demo              analyze a built-in workload
 *   trace_analyzer --convert <in.csv> <out.lskt>
 *                                      re-encode CSV as the compact
 *                                      LSKT binary format
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "analysis/misordered.h"
#include "analysis/observers.h"
#include "analysis/report.h"
#include "stl/simulator.h"
#include "trace/binary.h"
#include "trace/msr_csv.h"
#include "trace/stats.h"
#include "util/logging.h"
#include "workloads/profiles.h"

namespace
{

using namespace logseek;

void
analyze(const trace::Trace &trace)
{
    const trace::TraceStats stats = trace::computeStats(trace);
    std::cout << "Trace: " << trace.name() << "\n";
    std::cout << "  requests:     " << trace.size() << " ("
              << stats.readCount << " reads, " << stats.writeCount
              << " writes)\n";
    std::cout << "  volume:       "
              << analysis::formatBytes(stats.readBytes) << " read, "
              << analysis::formatBytes(stats.writtenBytes)
              << " written\n";
    std::cout << "  mean sizes:   "
              << analysis::formatDouble(stats.meanReadSizeKiB(), 1)
              << " KiB read, "
              << analysis::formatDouble(stats.meanWriteSizeKiB(), 1)
              << " KiB write\n";
    std::cout << "  address span: "
              << analysis::formatBytes(
                     sectorsToBytes(stats.addressSpaceEnd))
              << "\n";

    const analysis::MisorderedWriteStats misordered =
        analysis::countMisorderedWrites(trace);
    std::cout << "  mis-ordered writes (256 KB window): "
              << analysis::formatDouble(misordered.fraction() * 100,
                                        2)
              << "%\n\n";

    // Baseline and plain LS with fragmentation observers.
    stl::SimConfig baseline;
    baseline.translation = stl::TranslationKind::Conventional;
    const stl::SimResult nols = stl::Simulator(baseline).run(trace);

    stl::SimConfig ls_config;
    ls_config.translation = stl::TranslationKind::LogStructured;
    analysis::FragmentedReadCdf frag;
    stl::Simulator ls_sim(ls_config);
    ls_sim.addObserver(&frag);
    const stl::SimResult ls = ls_sim.run(trace);

    std::cout << "Seek counts (paper Fig. 2 view):\n";
    analysis::TextTable seeks({"config", "read seeks", "write seeks",
                               "total"});
    seeks.addRow({"NoLS", std::to_string(nols.readSeeks),
                  std::to_string(nols.writeSeeks),
                  std::to_string(nols.totalSeeks())});
    seeks.addRow({"LS", std::to_string(ls.readSeeks),
                  std::to_string(ls.writeSeeks),
                  std::to_string(ls.totalSeeks())});
    seeks.print(std::cout);

    std::cout << "\nFragmentation under LS (paper Fig. 5 view):\n";
    std::cout << "  fragmented reads: " << frag.fragmentedReads()
              << " of " << frag.totalReads() << "\n";
    if (frag.fragmentedReads() > 0) {
        std::cout << "  fragments per fragmented read: p50="
                  << frag.fragmentsPerRead().percentile(0.5)
                  << " p90="
                  << frag.fragmentsPerRead().percentile(0.9)
                  << " max=" << frag.fragmentsPerRead().max()
                  << "\n";
    }
    std::cout << "  final static fragments: " << ls.staticFragments
              << "\n\n";

    std::cout << "Seek amplification (paper Fig. 11 view):\n";
    analysis::TextTable saf({"config", "SAF"});
    saf.addRow({"LS", analysis::formatRatio(
                          stl::seekAmplification(nols, ls))});
    auto add = [&](const char *label, bool defrag, bool prefetch,
                   bool cache) {
        stl::SimConfig config = ls_config;
        if (defrag)
            config.defrag = stl::DefragConfig{};
        if (prefetch)
            config.prefetch = stl::PrefetchConfig{};
        if (cache)
            config.cache = stl::SelectiveCacheConfig{64 * kMiB};
        saf.addRow({label,
                    analysis::formatRatio(stl::seekAmplification(
                        nols, stl::Simulator(config).run(trace)))});
    };
    add("LS+defrag", true, false, false);
    add("LS+prefetch", false, true, false);
    add("LS+cache(64MB)", false, false, true);
    add("LS+all", true, true, true);
    saf.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: trace_analyzer <trace.csv|.lskt> "
                     "[disk_number] | --demo | --convert <in> "
                     "<out>\n";
        return 1;
    }

    const std::string arg = argv[1];
    try {
        if (arg == "--demo") {
            analyze(workloads::makeWorkload("w95"));
            return 0;
        }
        if (arg == "--convert") {
            if (argc < 4) {
                std::cerr << "usage: trace_analyzer --convert "
                             "<in.csv> <out.lskt>\n";
                return 1;
            }
            trace::MsrCsvOptions csv_options;
            csv_options.skipMalformed = true;
            const trace::Trace trace = trace::parseMsrCsvFile(
                argv[2], argv[2], csv_options);
            trace::writeBinaryTraceFile(argv[3], trace);
            std::cout << "wrote " << trace.size() << " records to "
                      << argv[3] << "\n";
            return 0;
        }
        if (arg.size() > 5 &&
            arg.substr(arg.size() - 5) == ".lskt") {
            analyze(trace::readBinaryTraceFile(arg));
            return 0;
        }
        trace::MsrCsvOptions options;
        options.skipMalformed = true;
        if (argc > 2)
            options.diskFilter = std::atoi(argv[2]);
        analyze(trace::parseMsrCsvFile(arg, arg, options));
    } catch (const logseek::FatalError &error) {
        std::cerr << "error: " << error.what() << "\n";
        return 1;
    }
    return 0;
}
