/**
 * @file
 * Example: the paper's log-sensitive motivating case (§III) —
 * an OLTP-style table receiving small random updates, periodically
 * swept by analytic full-table scans.
 *
 * Under conventional placement every update seeks but scans are
 * sequential; under log-structured placement updates are free but
 * every scan pays one seek per fragment, so the more often the
 * table is scanned, the worse the amplification ("if the file is
 * read in its entirety N times, the net result will be an N-fold
 * seek amplification"). The example sweeps the scan count and shows
 * how each seek-reduction mechanism bends the curve.
 *
 * Usage: database_scan [table_mib] [update_rounds]
 */

#include <cstdlib>
#include <optional>
#include <iostream>

#include "analysis/report.h"
#include "stl/simulator.h"
#include "util/random.h"
#include "workloads/builder.h"
#include "workloads/phases.h"

namespace
{

using namespace logseek;

trace::Trace
makeDatabaseTrace(std::uint64_t table_mib, int update_rounds,
                  int scans)
{
    workloads::TraceBuilder builder("database");
    Rng rng(2024);

    const SectorExtent table{0, bytesToSectors(table_mib * kMiB)};
    const SectorCount update_io = bytesToSectors(8 * kKiB);
    const SectorCount scan_io = bytesToSectors(128 * kKiB);

    // The table exists before the trace starts (identity placement);
    // each round dirties ~2% of it, then the analytics job scans.
    const std::uint64_t updates_per_round =
        table.count / update_io / 50;
    for (int round = 0; round < update_rounds; ++round) {
        workloads::randomWrite(builder, rng, table,
                               updates_per_round, update_io);
        builder.idle(60ULL * 1000 * 1000);
    }
    for (int scan = 0; scan < scans; ++scan) {
        workloads::sequentialRead(builder, table, scan_io);
        builder.idle(60ULL * 1000 * 1000);
    }
    return builder.take();
}

std::optional<double>
safFor(const trace::Trace &trace, bool defrag, bool prefetch,
       bool cache)
{
    stl::SimConfig config;
    config.translation = stl::TranslationKind::LogStructured;
    if (defrag)
        config.defrag = stl::DefragConfig{};
    if (prefetch)
        config.prefetch = stl::PrefetchConfig{};
    if (cache)
        config.cache = stl::SelectiveCacheConfig{64 * kMiB};
    const auto [nols, ls] = stl::runWithBaseline(trace, config);
    return stl::seekAmplification(nols, ls);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t table_mib =
        argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1]))
                 : 48;
    const int update_rounds = argc > 2 ? std::atoi(argv[2]) : 4;

    std::cout << "Database scenario: " << table_mib
              << " MiB table, " << update_rounds
              << " update rounds, sweeping full-scan count\n\n";

    analysis::TextTable table({"scans", "LS", "LS+defrag",
                               "LS+prefetch", "LS+cache"});
    for (const int scans : {1, 2, 4, 8, 16}) {
        const trace::Trace trace =
            makeDatabaseTrace(table_mib, update_rounds, scans);
        table.addRow(
            {std::to_string(scans),
             analysis::formatRatio(
                 safFor(trace, false, false, false)),
             analysis::formatRatio(safFor(trace, true, false,
                                           false)),
             analysis::formatRatio(safFor(trace, false, true,
                                           false)),
             analysis::formatRatio(
                 safFor(trace, false, false, true))});
    }
    table.print(std::cout);

    std::cout
        << "\nReading the table: plain LS amplification grows with "
           "the number of scans (the paper's N-fold effect). "
           "Opportunistic defragmentation pays one rewrite on the "
           "first scan and is clean afterwards, so it crosses over "
           "once the table is scanned repeatedly; selective caching "
           "absorbs the fragments if the dirty set fits in 64 MB.\n";
    return 0;
}
