/**
 * @file
 * logseek quickstart: generate a named workload, replay it under
 * conventional and log-structured translation, and show the seek
 * amplification factor with each seek-reduction mechanism.
 *
 * Usage: quickstart [workload] [scale]
 *   workload  one of the 21 named profiles (default: w91)
 *   scale     fraction of the paper's request counts (default 0.02)
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "analysis/report.h"
#include "stl/simulator.h"
#include "trace/stats.h"
#include "workloads/profiles.h"

namespace
{

using namespace logseek;

stl::SimConfig
baseLogStructured()
{
    stl::SimConfig config;
    config.translation = stl::TranslationKind::LogStructured;
    return config;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "w91";
    workloads::ProfileOptions options;
    if (argc > 2)
        options.scale = std::atof(argv[2]);

    if (!workloads::isKnownWorkload(name)) {
        std::cerr << "unknown workload '" << name
                  << "'; available workloads:\n";
        for (const auto &known : workloads::allWorkloadNames())
            std::cerr << "  " << known << "\n";
        return 1;
    }

    std::cout << "Generating workload " << name << " (scale "
              << options.scale << ") ...\n";
    const trace::Trace trace = workloads::makeWorkload(name, options);
    const trace::TraceStats stats = trace::computeStats(trace);
    std::cout << "  " << stats.readCount << " reads ("
              << analysis::formatBytes(stats.readBytes) << "), "
              << stats.writeCount << " writes ("
              << analysis::formatBytes(stats.writtenBytes) << ")\n\n";

    // Baseline: the same requests on a conventional drive.
    stl::SimConfig baseline;
    baseline.translation = stl::TranslationKind::Conventional;
    const stl::SimResult nols = stl::Simulator(baseline).run(trace);

    // Log-structured, plain and with each mechanism (paper Fig. 11).
    std::vector<stl::SimConfig> configs;
    configs.push_back(baseLogStructured());
    configs.push_back(baseLogStructured());
    configs.back().defrag = stl::DefragConfig{};
    configs.push_back(baseLogStructured());
    configs.back().prefetch = stl::PrefetchConfig{};
    configs.push_back(baseLogStructured());
    configs.back().cache = stl::SelectiveCacheConfig{};

    analysis::TextTable table({"config", "read seeks", "write seeks",
                               "total", "SAF"});
    table.addRow({"NoLS", std::to_string(nols.readSeeks),
                  std::to_string(nols.writeSeeks),
                  std::to_string(nols.totalSeeks()), "1.00"});
    for (const auto &config : configs) {
        const stl::SimResult result =
            stl::Simulator(config).run(trace);
        table.addRow({result.configLabel,
                      std::to_string(result.readSeeks),
                      std::to_string(result.writeSeeks),
                      std::to_string(result.totalSeeks()),
                      analysis::formatRatio(
                          stl::seekAmplification(nols, result))});
    }
    table.print(std::cout);

    std::cout << "\nSAF < 1 means the log-structured variant seeks "
                 "less than a conventional drive.\n";
    return 0;
}
