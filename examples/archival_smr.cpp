/**
 * @file
 * Example: an archival SMR store — the deployment the paper argues
 * can escape the SMR performance penalty entirely (§I): data is
 * ingested once and never overwritten, so a log-structured
 * translation layer never needs cleaning; what remains is read
 * seek overhead, which the three mechanisms remove.
 *
 * The ingest path interleaves several backup streams (a classic
 * source of physical interleaving under a log) and the retrieval
 * path restores individual streams sequentially — the worst case
 * for interleaved placement, and exactly what look-ahead-behind
 * prefetching repairs.
 *
 * Usage: archival_smr [streams] [stream_mib]
 */

#include <cstdlib>
#include <iostream>

#include "analysis/report.h"
#include "stl/simulator.h"
#include "workloads/builder.h"
#include "workloads/phases.h"

namespace
{

using namespace logseek;

trace::Trace
makeArchiveTrace(std::uint32_t streams, std::uint64_t stream_mib,
                 int restores)
{
    workloads::TraceBuilder builder("archive");
    // Backup clients write small (16 KiB) chunks; the restore path
    // reads large (256 KiB) requests, each spanning many ingest
    // chunks — fragmented under a log when streams interleaved.
    const SectorCount ingest_io = bytesToSectors(16 * kKiB);
    const SectorCount restore_io = bytesToSectors(256 * kKiB);
    const SectorCount stream_sectors =
        bytesToSectors(stream_mib * kMiB);
    const SectorExtent area{0, stream_sectors * streams};

    // Ingest: all backup streams write concurrently, round-robin.
    workloads::interleavedStreamWrite(builder, area, streams,
                                      ingest_io);
    builder.idle(3600ULL * 1000 * 1000);

    // Restore: each stream is read back sequentially, in turn.
    for (int round = 0; round < restores; ++round) {
        for (std::uint32_t s = 0; s < streams; ++s) {
            const SectorExtent stream{s * stream_sectors,
                                      stream_sectors};
            workloads::sequentialRead(builder, stream, restore_io);
        }
        builder.idle(3600ULL * 1000 * 1000);
    }
    return builder.take();
}

} // namespace

int
main(int argc, char **argv)
{
    const auto streams = static_cast<std::uint32_t>(
        argc > 1 ? std::atoi(argv[1]) : 4);
    const std::uint64_t stream_mib =
        argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2]))
                 : 32;

    std::cout << "Archival SMR scenario: " << streams
              << " interleaved backup streams of " << stream_mib
              << " MiB each, restored sequentially\n\n";

    const trace::Trace trace =
        makeArchiveTrace(streams, stream_mib, 2);

    stl::SimConfig baseline;
    baseline.translation = stl::TranslationKind::Conventional;
    const stl::SimResult nols = stl::Simulator(baseline).run(trace);

    analysis::TextTable table({"config", "read seeks", "write seeks",
                               "SAF", "est. seek time (s)"});
    auto add_row = [&](const stl::SimConfig &config) {
        const stl::SimResult result =
            stl::Simulator(config).run(trace);
        table.addRow({result.configLabel,
                      std::to_string(result.readSeeks),
                      std::to_string(result.writeSeeks),
                      analysis::formatRatio(
                          stl::seekAmplification(nols, result)),
                      analysis::formatDouble(result.seekTimeSec,
                                             3)});
    };

    table.addRow({"NoLS", std::to_string(nols.readSeeks),
                  std::to_string(nols.writeSeeks), "1.00",
                  analysis::formatDouble(nols.seekTimeSec, 3)});

    stl::SimConfig ls;
    ls.translation = stl::TranslationKind::LogStructured;
    add_row(ls);

    stl::SimConfig with_prefetch = ls;
    with_prefetch.prefetch = stl::PrefetchConfig{};
    add_row(with_prefetch);

    stl::SimConfig with_defrag = ls;
    with_defrag.defrag = stl::DefragConfig{};
    add_row(with_defrag);

    stl::SimConfig with_cache = ls;
    with_cache.cache = stl::SelectiveCacheConfig{64 * kMiB};
    add_row(with_cache);

    table.print(std::cout);

    std::cout
        << "\nThe conventional drive pays a seek per ingest request "
           "(" << streams << " interleaved streams); the log absorbs "
           "all of them but leaves each stream physically "
           "interleaved, so restores pay a seek per chunk. "
           "Look-ahead-behind prefetching reads through the "
           "interleaving and recovers sequential restores — no "
           "cleaning ever runs, so both SMR penalties are gone.\n";
    return 0;
}
