#!/usr/bin/env bash
#
# Tier-1 gate: configure, build and test the presets that guard the
# repo's correctness story.
#
#   default  RelWithDebInfo, the full suite
#   asan     ASan+UBSan, the full suite
#   tsan     ThreadSanitizer, the concurrency suites
#            (TaskPool*/SweepRunner*/Telemetry*/ShardedReplay* —
#            the sweep runner, its pool, watchdog, cancellation,
#            checkpoint/resume paths, the sharded telemetry
#            metrics, and shard-parallel replay classification)
#
# The extra mode `bench-smoke` builds the default preset's
# perf_extent_map / perf_simulator benchmarks and runs them at
# reduced iterations, writing BENCH_extent_map.smoke.json — a quick
# sanity check that the translation hot path still beats the
# preserved std::map reference (CI uploads the file as an artifact;
# the checked-in BENCH_extent_map.json is regenerated manually at
# full iterations). The smoke artifact records the box's nproc so
# a ~1x parallel speedup on a 1-CPU runner is not misread as a
# regression, and a shard-smoke leg replays the Figure 11 sweep
# once serially and once with --replay-shards 2, diffing the two
# reports with their timing fields stripped — byte-identical
# sharding checked end-to-end through the real CLI.
#
# The extra mode `fault-smoke` builds device_fault_sweep under the
# asan preset and runs the fault matrix at small scale with an
# elevated fault rate, writing BENCH_device_faults.smoke.json — so
# the zoned-device recovery paths (retry, zone resets, degraded
# reads) execute under ASan+UBSan on every push.
#
# The extra mode `crash-smoke` builds crash_recovery_bench under
# the asan preset and runs the reduced crash matrix (power-loss
# injection, log-scan remount, fsck, oracle equivalence), writing
# BENCH_crash_recovery.smoke.json, then runs the CrashRecovery
# differential suite — so every recovery path executes under
# ASan+UBSan on every push.
#
# The extra mode `gc-smoke` builds gc_ablation under the default
# preset and runs the cleaning-policy × stream-count × utilization
# grid at small scale, writing BENCH_gc_ablation.smoke.json, then
# reruns it with --jobs 2 and diffs the two reports — the grid has
# no timing fields, so the diff proves every GC cell is
# byte-identical across sweep parallelism (the checked-in
# BENCH_gc_ablation.json is regenerated manually at full scale).
#
# The extra mode `ingest-smoke` builds perf_ingest and
# trace_convert under the default preset, converts a sample MSR CSV
# to LSKC and byte-diffs a reconversion (cmp — the converter must
# be deterministic), then runs the reduced ingestion benchmark,
# writing BENCH_ingest.smoke.json. perf_ingest exits non-zero when
# the LSKC mmap-open >= 10x CSV-parse contract, the zero-copy
# replay byte-identity, or the streaming-generator flat-RSS assert
# fails, so all three gate CI (the checked-in BENCH_ingest.json is
# regenerated manually at full iterations).
#
# Usage:
#   scripts/tier1.sh            # all three presets
#   scripts/tier1.sh default    # just one
#   scripts/tier1.sh bench-smoke
#   scripts/tier1.sh fault-smoke
#   scripts/tier1.sh crash-smoke
#   scripts/tier1.sh gc-smoke
#   scripts/tier1.sh ingest-smoke
#   JOBS=8 scripts/tier1.sh     # override the build parallelism

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
PRESETS=("$@")
if [ "${#PRESETS[@]}" -eq 0 ]; then
    PRESETS=(default asan tsan)
fi

run_bench_smoke() {
    echo "==> tier1: bench-smoke"
    cmake --preset default
    cmake --build --preset default -j "${JOBS}" \
        --target perf_extent_map perf_simulator
    build/bench/perf_extent_map \
        --json=BENCH_extent_map.smoke.json --translate-iters=50000
    build/bench/perf_simulator \
        --json=BENCH_extent_map.smoke.json --ops=20000 --reps=1
    echo "{\"nproc\": $(nproc 2>/dev/null || echo 1)}" \
        > BENCH_nproc.smoke.json

    # Shard-smoke: the sweep CLI end-to-end, serial vs
    # --replay-shards 2. Timing fields are the only permitted
    # difference; everything else must be byte-identical.
    cmake --build --preset default -j "${JOBS}" --target fig11_saf
    strip_timing() {
        sed -e '/"telemetry":/d' \
            -e 's/, "wallSec": [^,}]*, "opsPerSec": [^}]*//' "$1"
    }
    build/bench/fig11_saf 0.002 --jobs 1 \
        --json=/tmp/tier1_serial.json > /dev/null
    build/bench/fig11_saf 0.002 --jobs 1 --replay-shards 2 \
        --json=/tmp/tier1_sharded.json > /dev/null
    diff <(strip_timing /tmp/tier1_serial.json) \
         <(strip_timing /tmp/tier1_sharded.json)
    echo "==> tier1: shard-smoke byte-identical"
}

run_fault_smoke() {
    echo "==> tier1: fault-smoke"
    cmake --preset asan
    cmake --build --preset asan -j "${JOBS}" \
        --target device_fault_sweep
    build-asan/bench/device_fault_sweep 0.002 \
        --fault-rate=0.01 --jobs=2 \
        --json=BENCH_device_faults.smoke.json
}

run_crash_smoke() {
    echo "==> tier1: crash-smoke"
    cmake --preset asan
    cmake --build --preset asan -j "${JOBS}" \
        --target crash_recovery_bench stl_tests
    build-asan/bench/crash_recovery_bench \
        --json=BENCH_crash_recovery.smoke.json
    ctest --test-dir build-asan -R "CrashRecovery" \
        --output-on-failure -j "${JOBS}"
}

run_gc_smoke() {
    echo "==> tier1: gc-smoke"
    cmake --preset default
    cmake --build --preset default -j "${JOBS}" --target gc_ablation
    build/bench/gc_ablation 0.002 --jobs 1 \
        --json=BENCH_gc_ablation.smoke.json > /dev/null
    build/bench/gc_ablation 0.002 --jobs 2 \
        --json=/tmp/tier1_gc_jobs2.json > /dev/null
    diff BENCH_gc_ablation.smoke.json /tmp/tier1_gc_jobs2.json
    echo "==> tier1: gc-smoke byte-identical across --jobs"
}

run_ingest_smoke() {
    echo "==> tier1: ingest-smoke"
    cmake --preset default
    cmake --build --preset default -j "${JOBS}" \
        --target perf_ingest trace_convert
    # Conversion determinism: CSV -> LSKC, then LSKC -> LSKC again;
    # the canonicalizing reconversion must be byte-identical.
    sample=/tmp/tier1_ingest_sample.csv
    printf '%s\n' \
        '128166372003640000,hm,0,Read,328452096,8192,1547' \
        '128166372004137000,hm,0,Write,2216429568,4096,388' \
        '128166372016260000,hm,0,Read,328497152,16384,723' \
        > "${sample}"
    build/bench/trace_convert "${sample}" \
        --convert-out /tmp/tier1_ingest.lskc
    build/bench/trace_convert /tmp/tier1_ingest.lskc \
        --convert-out /tmp/tier1_ingest2.lskc --out-format lskc
    cmp /tmp/tier1_ingest.lskc /tmp/tier1_ingest2.lskc
    echo "==> tier1: ingest-smoke conversion byte-identical"
    # The benchmark asserts its own contracts (>= 10x mmap-open,
    # replay byte-identity, flat streaming RSS) and fails the gate
    # via its exit code.
    build/bench/perf_ingest --smoke \
        --json=BENCH_ingest.smoke.json
}

for preset in "${PRESETS[@]}"; do
    if [ "${preset}" = "bench-smoke" ]; then
        run_bench_smoke
        continue
    fi
    if [ "${preset}" = "ingest-smoke" ]; then
        run_ingest_smoke
        continue
    fi
    if [ "${preset}" = "gc-smoke" ]; then
        run_gc_smoke
        continue
    fi
    if [ "${preset}" = "fault-smoke" ]; then
        run_fault_smoke
        continue
    fi
    if [ "${preset}" = "crash-smoke" ]; then
        run_crash_smoke
        continue
    fi
    echo "==> tier1: preset '${preset}'"
    cmake --preset "${preset}"
    cmake --build --preset "${preset}" -j "${JOBS}"
    ctest --preset "${preset}" -j "${JOBS}"
done

echo "==> tier1: all presets green (${PRESETS[*]})"
