#!/usr/bin/env bash
#
# Tier-1 gate: configure, build and test the presets that guard the
# repo's correctness story.
#
#   default  RelWithDebInfo, the full suite
#   asan     ASan+UBSan, the full suite
#   tsan     ThreadSanitizer, the concurrency suites
#            (TaskPool*/SweepRunner*/Telemetry* — the sweep runner,
#            its pool, watchdog, cancellation, checkpoint/resume
#            paths and the sharded telemetry metrics)
#
# Usage:
#   scripts/tier1.sh            # all three presets
#   scripts/tier1.sh default    # just one
#   JOBS=8 scripts/tier1.sh     # override the build parallelism

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
PRESETS=("$@")
if [ "${#PRESETS[@]}" -eq 0 ]; then
    PRESETS=(default asan tsan)
fi

for preset in "${PRESETS[@]}"; do
    echo "==> tier1: preset '${preset}'"
    cmake --preset "${preset}"
    cmake --build --preset "${preset}" -j "${JOBS}"
    ctest --preset "${preset}" -j "${JOBS}"
done

echo "==> tier1: all presets green (${PRESETS[*]})"
