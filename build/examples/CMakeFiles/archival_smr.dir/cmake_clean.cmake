file(REMOVE_RECURSE
  "CMakeFiles/archival_smr.dir/archival_smr.cpp.o"
  "CMakeFiles/archival_smr.dir/archival_smr.cpp.o.d"
  "archival_smr"
  "archival_smr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/archival_smr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
