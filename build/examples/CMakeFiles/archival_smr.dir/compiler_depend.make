# Empty compiler generated dependencies file for archival_smr.
# This may be replaced when dependencies are built.
