# Empty compiler generated dependencies file for database_scan.
# This may be replaced when dependencies are built.
