file(REMOVE_RECURSE
  "CMakeFiles/perf_extent_map.dir/perf_extent_map.cc.o"
  "CMakeFiles/perf_extent_map.dir/perf_extent_map.cc.o.d"
  "perf_extent_map"
  "perf_extent_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_extent_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
