# Empty dependencies file for perf_extent_map.
# This may be replaced when dependencies are built.
