file(REMOVE_RECURSE
  "CMakeFiles/fig11_saf.dir/fig11_saf.cc.o"
  "CMakeFiles/fig11_saf.dir/fig11_saf.cc.o.d"
  "fig11_saf"
  "fig11_saf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_saf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
