# Empty dependencies file for fig11_saf.
# This may be replaced when dependencies are built.
