file(REMOVE_RECURSE
  "CMakeFiles/fig10_fragment_popularity.dir/fig10_fragment_popularity.cc.o"
  "CMakeFiles/fig10_fragment_popularity.dir/fig10_fragment_popularity.cc.o.d"
  "fig10_fragment_popularity"
  "fig10_fragment_popularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_fragment_popularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
