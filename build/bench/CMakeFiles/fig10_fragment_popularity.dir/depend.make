# Empty dependencies file for fig10_fragment_popularity.
# This may be replaced when dependencies are built.
