# Empty compiler generated dependencies file for fig3_seek_timeseries.
# This may be replaced when dependencies are built.
