file(REMOVE_RECURSE
  "CMakeFiles/fig3_seek_timeseries.dir/fig3_seek_timeseries.cc.o"
  "CMakeFiles/fig3_seek_timeseries.dir/fig3_seek_timeseries.cc.o.d"
  "fig3_seek_timeseries"
  "fig3_seek_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_seek_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
