file(REMOVE_RECURSE
  "CMakeFiles/ablation_cache_size.dir/ablation_cache_size.cc.o"
  "CMakeFiles/ablation_cache_size.dir/ablation_cache_size.cc.o.d"
  "ablation_cache_size"
  "ablation_cache_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cache_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
