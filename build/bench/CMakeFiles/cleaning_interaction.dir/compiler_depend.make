# Empty compiler generated dependencies file for cleaning_interaction.
# This may be replaced when dependencies are built.
