
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/cleaning_interaction.cc" "bench/CMakeFiles/cleaning_interaction.dir/cleaning_interaction.cc.o" "gcc" "bench/CMakeFiles/cleaning_interaction.dir/cleaning_interaction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stl/CMakeFiles/logseek_stl.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/logseek_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/logseek_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/logseek_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/logseek_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/logseek_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
