file(REMOVE_RECURSE
  "CMakeFiles/cleaning_interaction.dir/cleaning_interaction.cc.o"
  "CMakeFiles/cleaning_interaction.dir/cleaning_interaction.cc.o.d"
  "cleaning_interaction"
  "cleaning_interaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cleaning_interaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
