# Empty compiler generated dependencies file for fig5_fragmented_reads.
# This may be replaced when dependencies are built.
