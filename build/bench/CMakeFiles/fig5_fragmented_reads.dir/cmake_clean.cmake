file(REMOVE_RECURSE
  "CMakeFiles/fig5_fragmented_reads.dir/fig5_fragmented_reads.cc.o"
  "CMakeFiles/fig5_fragmented_reads.dir/fig5_fragmented_reads.cc.o.d"
  "fig5_fragmented_reads"
  "fig5_fragmented_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_fragmented_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
