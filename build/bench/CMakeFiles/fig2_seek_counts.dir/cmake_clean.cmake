file(REMOVE_RECURSE
  "CMakeFiles/fig2_seek_counts.dir/fig2_seek_counts.cc.o"
  "CMakeFiles/fig2_seek_counts.dir/fig2_seek_counts.cc.o.d"
  "fig2_seek_counts"
  "fig2_seek_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_seek_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
