file(REMOVE_RECURSE
  "CMakeFiles/fig7_write_patterns.dir/fig7_write_patterns.cc.o"
  "CMakeFiles/fig7_write_patterns.dir/fig7_write_patterns.cc.o.d"
  "fig7_write_patterns"
  "fig7_write_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_write_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
