# Empty compiler generated dependencies file for fig7_write_patterns.
# This may be replaced when dependencies are built.
