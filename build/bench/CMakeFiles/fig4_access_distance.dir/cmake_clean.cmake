file(REMOVE_RECURSE
  "CMakeFiles/fig4_access_distance.dir/fig4_access_distance.cc.o"
  "CMakeFiles/fig4_access_distance.dir/fig4_access_distance.cc.o.d"
  "fig4_access_distance"
  "fig4_access_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_access_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
