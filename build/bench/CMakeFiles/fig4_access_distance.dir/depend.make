# Empty dependencies file for fig4_access_distance.
# This may be replaced when dependencies are built.
