file(REMOVE_RECURSE
  "CMakeFiles/time_amplification.dir/time_amplification.cc.o"
  "CMakeFiles/time_amplification.dir/time_amplification.cc.o.d"
  "time_amplification"
  "time_amplification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_amplification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
