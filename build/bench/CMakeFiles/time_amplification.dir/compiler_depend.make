# Empty compiler generated dependencies file for time_amplification.
# This may be replaced when dependencies are built.
