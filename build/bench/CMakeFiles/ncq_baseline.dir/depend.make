# Empty dependencies file for ncq_baseline.
# This may be replaced when dependencies are built.
