file(REMOVE_RECURSE
  "CMakeFiles/ncq_baseline.dir/ncq_baseline.cc.o"
  "CMakeFiles/ncq_baseline.dir/ncq_baseline.cc.o.d"
  "ncq_baseline"
  "ncq_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncq_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
