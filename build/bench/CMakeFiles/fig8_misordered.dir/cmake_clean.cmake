file(REMOVE_RECURSE
  "CMakeFiles/fig8_misordered.dir/fig8_misordered.cc.o"
  "CMakeFiles/fig8_misordered.dir/fig8_misordered.cc.o.d"
  "fig8_misordered"
  "fig8_misordered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_misordered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
