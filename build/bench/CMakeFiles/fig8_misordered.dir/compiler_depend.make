# Empty compiler generated dependencies file for fig8_misordered.
# This may be replaced when dependencies are built.
