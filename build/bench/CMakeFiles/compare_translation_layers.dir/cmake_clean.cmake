file(REMOVE_RECURSE
  "CMakeFiles/compare_translation_layers.dir/compare_translation_layers.cc.o"
  "CMakeFiles/compare_translation_layers.dir/compare_translation_layers.cc.o.d"
  "compare_translation_layers"
  "compare_translation_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_translation_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
