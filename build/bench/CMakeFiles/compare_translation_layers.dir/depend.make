# Empty dependencies file for compare_translation_layers.
# This may be replaced when dependencies are built.
