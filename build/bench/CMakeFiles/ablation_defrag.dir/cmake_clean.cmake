file(REMOVE_RECURSE
  "CMakeFiles/ablation_defrag.dir/ablation_defrag.cc.o"
  "CMakeFiles/ablation_defrag.dir/ablation_defrag.cc.o.d"
  "ablation_defrag"
  "ablation_defrag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_defrag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
