# Empty compiler generated dependencies file for stl_tests.
# This may be replaced when dependencies are built.
