file(REMOVE_RECURSE
  "CMakeFiles/stl_tests.dir/stl/conventional_test.cc.o"
  "CMakeFiles/stl_tests.dir/stl/conventional_test.cc.o.d"
  "CMakeFiles/stl_tests.dir/stl/defrag_test.cc.o"
  "CMakeFiles/stl_tests.dir/stl/defrag_test.cc.o.d"
  "CMakeFiles/stl_tests.dir/stl/extent_map_property_test.cc.o"
  "CMakeFiles/stl_tests.dir/stl/extent_map_property_test.cc.o.d"
  "CMakeFiles/stl_tests.dir/stl/extent_map_test.cc.o"
  "CMakeFiles/stl_tests.dir/stl/extent_map_test.cc.o.d"
  "CMakeFiles/stl_tests.dir/stl/finite_log_test.cc.o"
  "CMakeFiles/stl_tests.dir/stl/finite_log_test.cc.o.d"
  "CMakeFiles/stl_tests.dir/stl/log_structured_test.cc.o"
  "CMakeFiles/stl_tests.dir/stl/log_structured_test.cc.o.d"
  "CMakeFiles/stl_tests.dir/stl/media_cache_test.cc.o"
  "CMakeFiles/stl_tests.dir/stl/media_cache_test.cc.o.d"
  "CMakeFiles/stl_tests.dir/stl/prefetch_test.cc.o"
  "CMakeFiles/stl_tests.dir/stl/prefetch_test.cc.o.d"
  "CMakeFiles/stl_tests.dir/stl/scenario_test.cc.o"
  "CMakeFiles/stl_tests.dir/stl/scenario_test.cc.o.d"
  "CMakeFiles/stl_tests.dir/stl/selective_cache_test.cc.o"
  "CMakeFiles/stl_tests.dir/stl/selective_cache_test.cc.o.d"
  "CMakeFiles/stl_tests.dir/stl/simulator_property_test.cc.o"
  "CMakeFiles/stl_tests.dir/stl/simulator_property_test.cc.o.d"
  "CMakeFiles/stl_tests.dir/stl/simulator_test.cc.o"
  "CMakeFiles/stl_tests.dir/stl/simulator_test.cc.o.d"
  "CMakeFiles/stl_tests.dir/stl/zoned_log_test.cc.o"
  "CMakeFiles/stl_tests.dir/stl/zoned_log_test.cc.o.d"
  "stl_tests"
  "stl_tests.pdb"
  "stl_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stl_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
