
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stl/conventional_test.cc" "tests/CMakeFiles/stl_tests.dir/stl/conventional_test.cc.o" "gcc" "tests/CMakeFiles/stl_tests.dir/stl/conventional_test.cc.o.d"
  "/root/repo/tests/stl/defrag_test.cc" "tests/CMakeFiles/stl_tests.dir/stl/defrag_test.cc.o" "gcc" "tests/CMakeFiles/stl_tests.dir/stl/defrag_test.cc.o.d"
  "/root/repo/tests/stl/extent_map_property_test.cc" "tests/CMakeFiles/stl_tests.dir/stl/extent_map_property_test.cc.o" "gcc" "tests/CMakeFiles/stl_tests.dir/stl/extent_map_property_test.cc.o.d"
  "/root/repo/tests/stl/extent_map_test.cc" "tests/CMakeFiles/stl_tests.dir/stl/extent_map_test.cc.o" "gcc" "tests/CMakeFiles/stl_tests.dir/stl/extent_map_test.cc.o.d"
  "/root/repo/tests/stl/finite_log_test.cc" "tests/CMakeFiles/stl_tests.dir/stl/finite_log_test.cc.o" "gcc" "tests/CMakeFiles/stl_tests.dir/stl/finite_log_test.cc.o.d"
  "/root/repo/tests/stl/log_structured_test.cc" "tests/CMakeFiles/stl_tests.dir/stl/log_structured_test.cc.o" "gcc" "tests/CMakeFiles/stl_tests.dir/stl/log_structured_test.cc.o.d"
  "/root/repo/tests/stl/media_cache_test.cc" "tests/CMakeFiles/stl_tests.dir/stl/media_cache_test.cc.o" "gcc" "tests/CMakeFiles/stl_tests.dir/stl/media_cache_test.cc.o.d"
  "/root/repo/tests/stl/prefetch_test.cc" "tests/CMakeFiles/stl_tests.dir/stl/prefetch_test.cc.o" "gcc" "tests/CMakeFiles/stl_tests.dir/stl/prefetch_test.cc.o.d"
  "/root/repo/tests/stl/scenario_test.cc" "tests/CMakeFiles/stl_tests.dir/stl/scenario_test.cc.o" "gcc" "tests/CMakeFiles/stl_tests.dir/stl/scenario_test.cc.o.d"
  "/root/repo/tests/stl/selective_cache_test.cc" "tests/CMakeFiles/stl_tests.dir/stl/selective_cache_test.cc.o" "gcc" "tests/CMakeFiles/stl_tests.dir/stl/selective_cache_test.cc.o.d"
  "/root/repo/tests/stl/simulator_property_test.cc" "tests/CMakeFiles/stl_tests.dir/stl/simulator_property_test.cc.o" "gcc" "tests/CMakeFiles/stl_tests.dir/stl/simulator_property_test.cc.o.d"
  "/root/repo/tests/stl/simulator_test.cc" "tests/CMakeFiles/stl_tests.dir/stl/simulator_test.cc.o" "gcc" "tests/CMakeFiles/stl_tests.dir/stl/simulator_test.cc.o.d"
  "/root/repo/tests/stl/zoned_log_test.cc" "tests/CMakeFiles/stl_tests.dir/stl/zoned_log_test.cc.o" "gcc" "tests/CMakeFiles/stl_tests.dir/stl/zoned_log_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stl/CMakeFiles/logseek_stl.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/logseek_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/logseek_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/logseek_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/logseek_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/logseek_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
