file(REMOVE_RECURSE
  "CMakeFiles/workloads_tests.dir/workloads/builder_test.cc.o"
  "CMakeFiles/workloads_tests.dir/workloads/builder_test.cc.o.d"
  "CMakeFiles/workloads_tests.dir/workloads/phases_test.cc.o"
  "CMakeFiles/workloads_tests.dir/workloads/phases_test.cc.o.d"
  "CMakeFiles/workloads_tests.dir/workloads/profile_behavior_test.cc.o"
  "CMakeFiles/workloads_tests.dir/workloads/profile_behavior_test.cc.o.d"
  "CMakeFiles/workloads_tests.dir/workloads/profiles_test.cc.o"
  "CMakeFiles/workloads_tests.dir/workloads/profiles_test.cc.o.d"
  "workloads_tests"
  "workloads_tests.pdb"
  "workloads_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
