file(REMOVE_RECURSE
  "CMakeFiles/disk_tests.dir/disk/head_test.cc.o"
  "CMakeFiles/disk_tests.dir/disk/head_test.cc.o.d"
  "CMakeFiles/disk_tests.dir/disk/pba_cache_property_test.cc.o"
  "CMakeFiles/disk_tests.dir/disk/pba_cache_property_test.cc.o.d"
  "CMakeFiles/disk_tests.dir/disk/pba_cache_test.cc.o"
  "CMakeFiles/disk_tests.dir/disk/pba_cache_test.cc.o.d"
  "CMakeFiles/disk_tests.dir/disk/seek_time_test.cc.o"
  "CMakeFiles/disk_tests.dir/disk/seek_time_test.cc.o.d"
  "disk_tests"
  "disk_tests.pdb"
  "disk_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
