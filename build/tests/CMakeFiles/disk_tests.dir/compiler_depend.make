# Empty compiler generated dependencies file for disk_tests.
# This may be replaced when dependencies are built.
