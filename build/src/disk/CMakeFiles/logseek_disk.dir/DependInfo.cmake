
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/disk/head.cc" "src/disk/CMakeFiles/logseek_disk.dir/head.cc.o" "gcc" "src/disk/CMakeFiles/logseek_disk.dir/head.cc.o.d"
  "/root/repo/src/disk/pba_cache.cc" "src/disk/CMakeFiles/logseek_disk.dir/pba_cache.cc.o" "gcc" "src/disk/CMakeFiles/logseek_disk.dir/pba_cache.cc.o.d"
  "/root/repo/src/disk/seek_time.cc" "src/disk/CMakeFiles/logseek_disk.dir/seek_time.cc.o" "gcc" "src/disk/CMakeFiles/logseek_disk.dir/seek_time.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/logseek_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/logseek_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
