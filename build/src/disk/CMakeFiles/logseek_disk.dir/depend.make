# Empty dependencies file for logseek_disk.
# This may be replaced when dependencies are built.
