file(REMOVE_RECURSE
  "CMakeFiles/logseek_disk.dir/head.cc.o"
  "CMakeFiles/logseek_disk.dir/head.cc.o.d"
  "CMakeFiles/logseek_disk.dir/pba_cache.cc.o"
  "CMakeFiles/logseek_disk.dir/pba_cache.cc.o.d"
  "CMakeFiles/logseek_disk.dir/seek_time.cc.o"
  "CMakeFiles/logseek_disk.dir/seek_time.cc.o.d"
  "liblogseek_disk.a"
  "liblogseek_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logseek_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
