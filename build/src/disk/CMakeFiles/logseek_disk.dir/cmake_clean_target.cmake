file(REMOVE_RECURSE
  "liblogseek_disk.a"
)
