# Empty compiler generated dependencies file for logseek_trace.
# This may be replaced when dependencies are built.
