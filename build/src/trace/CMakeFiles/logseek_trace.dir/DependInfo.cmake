
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/binary.cc" "src/trace/CMakeFiles/logseek_trace.dir/binary.cc.o" "gcc" "src/trace/CMakeFiles/logseek_trace.dir/binary.cc.o.d"
  "/root/repo/src/trace/msr_csv.cc" "src/trace/CMakeFiles/logseek_trace.dir/msr_csv.cc.o" "gcc" "src/trace/CMakeFiles/logseek_trace.dir/msr_csv.cc.o.d"
  "/root/repo/src/trace/reorder.cc" "src/trace/CMakeFiles/logseek_trace.dir/reorder.cc.o" "gcc" "src/trace/CMakeFiles/logseek_trace.dir/reorder.cc.o.d"
  "/root/repo/src/trace/stats.cc" "src/trace/CMakeFiles/logseek_trace.dir/stats.cc.o" "gcc" "src/trace/CMakeFiles/logseek_trace.dir/stats.cc.o.d"
  "/root/repo/src/trace/tools.cc" "src/trace/CMakeFiles/logseek_trace.dir/tools.cc.o" "gcc" "src/trace/CMakeFiles/logseek_trace.dir/tools.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/trace/CMakeFiles/logseek_trace.dir/trace.cc.o" "gcc" "src/trace/CMakeFiles/logseek_trace.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/logseek_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
