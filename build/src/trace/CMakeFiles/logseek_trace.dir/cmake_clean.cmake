file(REMOVE_RECURSE
  "CMakeFiles/logseek_trace.dir/binary.cc.o"
  "CMakeFiles/logseek_trace.dir/binary.cc.o.d"
  "CMakeFiles/logseek_trace.dir/msr_csv.cc.o"
  "CMakeFiles/logseek_trace.dir/msr_csv.cc.o.d"
  "CMakeFiles/logseek_trace.dir/reorder.cc.o"
  "CMakeFiles/logseek_trace.dir/reorder.cc.o.d"
  "CMakeFiles/logseek_trace.dir/stats.cc.o"
  "CMakeFiles/logseek_trace.dir/stats.cc.o.d"
  "CMakeFiles/logseek_trace.dir/tools.cc.o"
  "CMakeFiles/logseek_trace.dir/tools.cc.o.d"
  "CMakeFiles/logseek_trace.dir/trace.cc.o"
  "CMakeFiles/logseek_trace.dir/trace.cc.o.d"
  "liblogseek_trace.a"
  "liblogseek_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logseek_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
