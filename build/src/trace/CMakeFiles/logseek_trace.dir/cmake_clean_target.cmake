file(REMOVE_RECURSE
  "liblogseek_trace.a"
)
