# Empty compiler generated dependencies file for logseek_util.
# This may be replaced when dependencies are built.
