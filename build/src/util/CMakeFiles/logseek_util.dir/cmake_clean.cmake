file(REMOVE_RECURSE
  "CMakeFiles/logseek_util.dir/histogram.cc.o"
  "CMakeFiles/logseek_util.dir/histogram.cc.o.d"
  "CMakeFiles/logseek_util.dir/logging.cc.o"
  "CMakeFiles/logseek_util.dir/logging.cc.o.d"
  "CMakeFiles/logseek_util.dir/random.cc.o"
  "CMakeFiles/logseek_util.dir/random.cc.o.d"
  "CMakeFiles/logseek_util.dir/time_series.cc.o"
  "CMakeFiles/logseek_util.dir/time_series.cc.o.d"
  "liblogseek_util.a"
  "liblogseek_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logseek_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
