file(REMOVE_RECURSE
  "liblogseek_util.a"
)
