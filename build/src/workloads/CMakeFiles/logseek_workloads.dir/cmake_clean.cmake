file(REMOVE_RECURSE
  "CMakeFiles/logseek_workloads.dir/builder.cc.o"
  "CMakeFiles/logseek_workloads.dir/builder.cc.o.d"
  "CMakeFiles/logseek_workloads.dir/phases.cc.o"
  "CMakeFiles/logseek_workloads.dir/phases.cc.o.d"
  "CMakeFiles/logseek_workloads.dir/profiles.cc.o"
  "CMakeFiles/logseek_workloads.dir/profiles.cc.o.d"
  "liblogseek_workloads.a"
  "liblogseek_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logseek_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
