# Empty dependencies file for logseek_workloads.
# This may be replaced when dependencies are built.
