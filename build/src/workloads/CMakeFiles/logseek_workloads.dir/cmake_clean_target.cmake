file(REMOVE_RECURSE
  "liblogseek_workloads.a"
)
