file(REMOVE_RECURSE
  "CMakeFiles/logseek_analysis.dir/misordered.cc.o"
  "CMakeFiles/logseek_analysis.dir/misordered.cc.o.d"
  "CMakeFiles/logseek_analysis.dir/observers.cc.o"
  "CMakeFiles/logseek_analysis.dir/observers.cc.o.d"
  "CMakeFiles/logseek_analysis.dir/report.cc.o"
  "CMakeFiles/logseek_analysis.dir/report.cc.o.d"
  "liblogseek_analysis.a"
  "liblogseek_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logseek_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
