# Empty dependencies file for logseek_analysis.
# This may be replaced when dependencies are built.
