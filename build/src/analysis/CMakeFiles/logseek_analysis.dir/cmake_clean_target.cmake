file(REMOVE_RECURSE
  "liblogseek_analysis.a"
)
