# Empty compiler generated dependencies file for logseek_stl.
# This may be replaced when dependencies are built.
