
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stl/conventional.cc" "src/stl/CMakeFiles/logseek_stl.dir/conventional.cc.o" "gcc" "src/stl/CMakeFiles/logseek_stl.dir/conventional.cc.o.d"
  "/root/repo/src/stl/defrag.cc" "src/stl/CMakeFiles/logseek_stl.dir/defrag.cc.o" "gcc" "src/stl/CMakeFiles/logseek_stl.dir/defrag.cc.o.d"
  "/root/repo/src/stl/extent_map.cc" "src/stl/CMakeFiles/logseek_stl.dir/extent_map.cc.o" "gcc" "src/stl/CMakeFiles/logseek_stl.dir/extent_map.cc.o.d"
  "/root/repo/src/stl/finite_log.cc" "src/stl/CMakeFiles/logseek_stl.dir/finite_log.cc.o" "gcc" "src/stl/CMakeFiles/logseek_stl.dir/finite_log.cc.o.d"
  "/root/repo/src/stl/log_structured.cc" "src/stl/CMakeFiles/logseek_stl.dir/log_structured.cc.o" "gcc" "src/stl/CMakeFiles/logseek_stl.dir/log_structured.cc.o.d"
  "/root/repo/src/stl/media_cache.cc" "src/stl/CMakeFiles/logseek_stl.dir/media_cache.cc.o" "gcc" "src/stl/CMakeFiles/logseek_stl.dir/media_cache.cc.o.d"
  "/root/repo/src/stl/prefetch.cc" "src/stl/CMakeFiles/logseek_stl.dir/prefetch.cc.o" "gcc" "src/stl/CMakeFiles/logseek_stl.dir/prefetch.cc.o.d"
  "/root/repo/src/stl/selective_cache.cc" "src/stl/CMakeFiles/logseek_stl.dir/selective_cache.cc.o" "gcc" "src/stl/CMakeFiles/logseek_stl.dir/selective_cache.cc.o.d"
  "/root/repo/src/stl/simulator.cc" "src/stl/CMakeFiles/logseek_stl.dir/simulator.cc.o" "gcc" "src/stl/CMakeFiles/logseek_stl.dir/simulator.cc.o.d"
  "/root/repo/src/stl/translation_layer.cc" "src/stl/CMakeFiles/logseek_stl.dir/translation_layer.cc.o" "gcc" "src/stl/CMakeFiles/logseek_stl.dir/translation_layer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/logseek_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/logseek_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/logseek_disk.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
