file(REMOVE_RECURSE
  "liblogseek_stl.a"
)
