file(REMOVE_RECURSE
  "CMakeFiles/logseek_stl.dir/conventional.cc.o"
  "CMakeFiles/logseek_stl.dir/conventional.cc.o.d"
  "CMakeFiles/logseek_stl.dir/defrag.cc.o"
  "CMakeFiles/logseek_stl.dir/defrag.cc.o.d"
  "CMakeFiles/logseek_stl.dir/extent_map.cc.o"
  "CMakeFiles/logseek_stl.dir/extent_map.cc.o.d"
  "CMakeFiles/logseek_stl.dir/finite_log.cc.o"
  "CMakeFiles/logseek_stl.dir/finite_log.cc.o.d"
  "CMakeFiles/logseek_stl.dir/log_structured.cc.o"
  "CMakeFiles/logseek_stl.dir/log_structured.cc.o.d"
  "CMakeFiles/logseek_stl.dir/media_cache.cc.o"
  "CMakeFiles/logseek_stl.dir/media_cache.cc.o.d"
  "CMakeFiles/logseek_stl.dir/prefetch.cc.o"
  "CMakeFiles/logseek_stl.dir/prefetch.cc.o.d"
  "CMakeFiles/logseek_stl.dir/selective_cache.cc.o"
  "CMakeFiles/logseek_stl.dir/selective_cache.cc.o.d"
  "CMakeFiles/logseek_stl.dir/simulator.cc.o"
  "CMakeFiles/logseek_stl.dir/simulator.cc.o.d"
  "CMakeFiles/logseek_stl.dir/translation_layer.cc.o"
  "CMakeFiles/logseek_stl.dir/translation_layer.cc.o.d"
  "liblogseek_stl.a"
  "liblogseek_stl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logseek_stl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
