/**
 * @file
 * Smoke benchmark for the parallel sweep runner: replays the
 * Figure 11 sweep (all 21 workloads × 6 configs) serially and with
 * a worker pool, checks the two produce byte-identical simulation
 * results, and writes the throughput comparison to a JSON file
 * (default BENCH_sweep.json) for tracking.
 *
 * Further legs probe the batch-first replay core:
 *  - scalar: the serial sweep at --replay-batch 1 (record-at-a-
 *    time); serial over scalar is the batching speedup
 *    ("batchedVsScalar").
 *  - sharded: the serial sweep at 4 replay shards on a dedicated
 *    shard pool; must be byte-identical, and its throughput over
 *    serial is "shardedVsSerial".
 *  - telemetry: the serial sweep with collection armed; must still
 *    be byte-identical (telemetry never touches SimResult), its
 *    wall time over the plain serial leg is the telemetry overhead
 *    ratio, and its metrics snapshot is embedded under "metrics".
 *
 * On a single-hardware-thread box the parallel (multi-jobs) leg
 * cannot demonstrate a speedup; the report then carries
 * "parallelLegValid": false and a warning is printed, so trackers
 * do not read the ~1x speedup as a regression.
 *
 * Usage: perf_sweep [scale] [seed] [--jobs N] [--json=path]
 *
 * --jobs selects the parallel worker count (0 or default = hardware
 * concurrency); the serial leg always runs with one worker.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "stl/simulator.h"
#include "sweep/cli.h"
#include "sweep/report.h"
#include "sweep/sweep_runner.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "workloads/profiles.h"

namespace
{

using namespace logseek;

std::vector<sweep::ConfigSpec>
fig11Configs()
{
    auto ls = [](bool defrag, bool prefetch, bool cache) {
        stl::SimConfig config;
        config.translation = stl::TranslationKind::LogStructured;
        if (defrag)
            config.defrag = stl::DefragConfig{};
        if (prefetch)
            config.prefetch = stl::PrefetchConfig{};
        if (cache)
            config.cache = stl::SelectiveCacheConfig{64 * kMiB};
        return config;
    };
    stl::SimConfig baseline;
    baseline.translation = stl::TranslationKind::Conventional;
    return {
        sweep::ConfigSpec::fixed("NoLS", baseline),
        sweep::ConfigSpec::fixed("LS", ls(false, false, false)),
        sweep::ConfigSpec::fixed("LS+defrag", ls(true, false, false)),
        sweep::ConfigSpec::fixed("LS+prefetch",
                                 ls(false, true, false)),
        sweep::ConfigSpec::fixed("LS+cache(64MB)",
                                 ls(false, false, true)),
        sweep::ConfigSpec::fixed("LS+all", ls(true, true, true)),
    };
}

std::vector<sweep::WorkloadSpec>
allWorkloads(const workloads::ProfileOptions &profile)
{
    std::vector<sweep::WorkloadSpec> specs;
    for (const auto &name : workloads::msrWorkloadNames())
        specs.push_back(sweep::WorkloadSpec::profile(name, profile));
    for (const auto &name : workloads::cloudPhysicsWorkloadNames())
        specs.push_back(sweep::WorkloadSpec::profile(name, profile));
    return specs;
}

sweep::SweepResult
runOnce(const workloads::ProfileOptions &profile, int jobs,
        int replay_batch = 0, int replay_shards = 0)
{
    sweep::SweepOptions options;
    options.jobs = jobs;
    options.replayBatchSize = replay_batch;
    options.replayShards = replay_shards;
    sweep::SweepRunner runner(allWorkloads(profile), fig11Configs(),
                              std::move(options));
    return runner.run();
}

std::string
deterministicForm(const sweep::SweepResult &sweep)
{
    std::ostringstream out;
    sweep::writeJson(out, sweep, /*with_telemetry=*/false);
    return out.str();
}

/**
 * Serial opsPerSec of the checked-in baseline report at `path`, or
 * 0 when the file or field is absent. Scanned before the file is
 * overwritten, so every run prints its ratio against the previous
 * checked-in numbers.
 */
double
baselineSerialOpsPerSec(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        return 0.0;
    std::ostringstream buffer;
    buffer << file.rdbuf();
    const std::string doc = buffer.str();
    const std::string serial_key = "\"serial\":";
    const std::size_t serial_at = doc.find(serial_key);
    if (serial_at == std::string::npos)
        return 0.0;
    const std::string ops_key = "\"opsPerSec\":";
    const std::size_t ops_at = doc.find(ops_key, serial_at);
    if (ops_at == std::string::npos)
        return 0.0;
    try {
        return std::stod(doc.substr(ops_at + ops_key.size()));
    } catch (const std::exception &) {
        return 0.0;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    auto cli = sweep::parseBenchCli(
        argc, argv, sweep::benchUsage("perf_sweep"));
    if (!cli)
        return 2;
    // Default the parallel leg to hardware concurrency (an
    // explicit --jobs overrides) and the report to BENCH_sweep.json
    // unless told otherwise.
    const int hardware =
        static_cast<int>(std::thread::hardware_concurrency());
    const int parallel_jobs =
        cli->jobs != 1 ? cli->resolvedJobs()
                       : (hardware > 1 ? hardware : 1);
    const std::string path =
        cli->jsonPath && *cli->jsonPath != "-" ? *cli->jsonPath
                                               : "BENCH_sweep.json";

    std::cout << "perf_sweep: Figure 11 sweep at scale "
              << cli->profile.scale << ", serial vs " << parallel_jobs
              << " jobs\n";

    // Read the previous checked-in numbers before overwriting them.
    const double baseline_ops = baselineSerialOpsPerSec(path);

    const bool parallel_leg_valid = hardware > 1;
    if (!parallel_leg_valid)
        std::cout << "perf_sweep: WARNING: hardware concurrency is "
                     "1; the parallel leg cannot speed up and "
                     "\"parallelLegValid\" is false in the report\n";

    // Warm-up: one untimed serial sweep so the first timed leg
    // does not absorb the process's cold-start costs (page faults,
    // allocator arena growth) and the leg-vs-leg ratios compare
    // steady states.
    (void)runOnce(cli->profile, 1);

    const sweep::SweepResult serial = runOnce(cli->profile, 1);
    // Scalar leg: batch size 1 = record-at-a-time replay; serial
    // over scalar is the speedup of the batched read path.
    const sweep::SweepResult scalar =
        runOnce(cli->profile, 1, /*replay_batch=*/1);
    const sweep::SweepResult parallel =
        runOnce(cli->profile, parallel_jobs);
    // Sharded leg: serial cell execution, but each replay's seek
    // classification fans out over 4 shards on a dedicated pool.
    const sweep::SweepResult sharded =
        runOnce(cli->profile, 1, 0, /*replay_shards=*/4);

    // Telemetry leg: same serial sweep with collection armed. A
    // fresh-zeroed registry isolates this leg's counts, and the
    // deterministic form must not move — telemetry observes the
    // replay, it never feeds back into it.
    telemetry::Registry::global().resetValues();
    telemetry::setEnabled(true);
    const sweep::SweepResult instrumented = runOnce(cli->profile, 1);
    telemetry::setEnabled(false);
    const telemetry::MetricsSnapshot metrics =
        telemetry::Registry::global().snapshot();

    const bool deterministic =
        deterministicForm(serial) == deterministicForm(parallel) &&
        deterministicForm(serial) == deterministicForm(scalar) &&
        deterministicForm(serial) == deterministicForm(sharded) &&
        deterministicForm(serial) == deterministicForm(instrumented);
    const double speedup =
        parallel.telemetry.wallSec > 0.0
            ? serial.telemetry.wallSec / parallel.telemetry.wallSec
            : 0.0;
    const double overhead =
        serial.telemetry.wallSec > 0.0
            ? instrumented.telemetry.wallSec /
                  serial.telemetry.wallSec
            : 0.0;
    const double serial_ratio =
        baseline_ops > 0.0
            ? serial.telemetry.opsPerSec() / baseline_ops
            : 0.0;
    const double batched_vs_scalar =
        scalar.telemetry.wallSec > 0.0 &&
                serial.telemetry.wallSec > 0.0
            ? serial.telemetry.opsPerSec() /
                  scalar.telemetry.opsPerSec()
            : 0.0;
    const double sharded_vs_serial =
        serial.telemetry.wallSec > 0.0 &&
                sharded.telemetry.wallSec > 0.0
            ? sharded.telemetry.opsPerSec() /
                  serial.telemetry.opsPerSec()
            : 0.0;

    std::ostringstream json;
    json.precision(6);
    json << "{\n"
         << "  \"benchmark\": \"perf_sweep\",\n"
         << "  \"scale\": " << cli->profile.scale << ",\n"
         << "  \"workloads\": " << serial.workloads.size() << ",\n"
         << "  \"configs\": " << serial.configs.size() << ",\n"
         << "  \"runs\": " << serial.telemetry.runs << ",\n"
         << "  \"opsPerRun\": " << serial.telemetry.ops << ",\n"
         << "  \"hardwareConcurrency\": "
         << std::thread::hardware_concurrency() << ",\n"
         << "  \"parallelLegValid\": "
         << (parallel_leg_valid ? "true" : "false") << ",\n"
         << "  \"deterministic\": "
         << (deterministic ? "true" : "false") << ",\n"
         << "  \"serial\": {\"jobs\": 1, \"wallSec\": "
         << serial.telemetry.wallSec << ", \"opsPerSec\": "
         << serial.telemetry.opsPerSec() << "},\n"
         << "  \"scalar\": {\"jobs\": 1, \"replayBatch\": 1, "
            "\"wallSec\": "
         << scalar.telemetry.wallSec << ", \"opsPerSec\": "
         << scalar.telemetry.opsPerSec() << "},\n"
         << "  \"parallel\": {\"jobs\": " << parallel.telemetry.jobs
         << ", \"wallSec\": " << parallel.telemetry.wallSec
         << ", \"opsPerSec\": " << parallel.telemetry.opsPerSec()
         << ", \"steals\": " << parallel.telemetry.steals << "},\n"
         << "  \"sharded\": {\"jobs\": 1, \"replayShards\": 4, "
            "\"parallelLegValid\": "
         << (parallel_leg_valid ? "true" : "false")
         << ", \"wallSec\": "
         << sharded.telemetry.wallSec << ", \"opsPerSec\": "
         << sharded.telemetry.opsPerSec() << "},\n"
         << "  \"speedup\": " << speedup << ",\n"
         << "  \"batchedVsScalar\": " << batched_vs_scalar << ",\n"
         << "  \"shardedVsSerial\": " << sharded_vs_serial << ",\n"
         << "  \"serialRatioVsBaseline\": " << serial_ratio
         << ",\n"
         << "  \"telemetry\": {\"jobs\": 1, \"wallSec\": "
         << instrumented.telemetry.wallSec << ", \"opsPerSec\": "
         << instrumented.telemetry.opsPerSec()
         << ", \"overheadRatio\": " << overhead << "},\n"
         << "  \"metrics\": ";
    std::ostringstream snapshot_json;
    telemetry::writeMetricsJson(metrics, snapshot_json);
    json << snapshot_json.str() << "}\n";

    std::ofstream file(path);
    if (!file) {
        std::cerr << "perf_sweep: cannot write " << path << "\n";
        return 1;
    }
    file << json.str();

    std::cout << json.str();
    if (baseline_ops > 0.0)
        std::cout << "serial ops/sec vs checked-in baseline: "
                  << serial_ratio << "x (" << baseline_ops
                  << " -> " << serial.telemetry.opsPerSec()
                  << ")\n";
    std::cout << "batched vs scalar replay: " << batched_vs_scalar
              << "x; sharded vs serial: " << sharded_vs_serial
              << "x\n";
    std::cout << (deterministic
                      ? "serial, scalar, parallel and sharded "
                        "sweeps byte-identical\n"
                      : "MISMATCH between replay legs!\n");
    return deterministic ? 0 : 1;
}
