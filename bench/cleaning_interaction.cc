/**
 * @file
 * Extension experiment: defragmentation vs. garbage collection.
 *
 * Paper §IV-A: opportunistic defragmentation "does not come for
 * free; ... its use of free space will eventually necessitate
 * running the cleaning algorithm with its attendant overheads."
 * On a finite log, every rewrite consumes frontier space and leaves
 * a dead copy behind, so defragmentation trades read seeks for
 * cleaning traffic. This harness sweeps log over-provisioning and
 * reports host SAF, cleaning seeks and WAF with and without
 * defragmentation — once per cleaning policy, so the interaction
 * can be compared across greedy, cost-benefit and zone-granular
 * cleaners.
 *
 * Usage: cleaning_interaction [scale] [seed] [--jobs N]
 *        [--json[=path]] [--csv[=path]] [--log-capacity N]
 *        [--segment-bytes N] [--clean-reserve N] [--paranoid]
 */

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "stl/simulator.h"
#include "sweep/cli.h"
#include "sweep/sweep_runner.h"
#include "trace/stats.h"
#include "util/logging.h"
#include "workloads/profiles.h"

namespace
{

using namespace logseek;

const std::vector<stl::gc::CleaningPolicyKind> kPolicies{
    stl::gc::CleaningPolicyKind::Greedy,
    stl::gc::CleaningPolicyKind::CostBenefit,
    stl::gc::CleaningPolicyKind::ZoneGranular,
};

/** Log capacity sized as a multiple of the workload's live data. */
stl::FiniteLogConfig
sizedLog(const trace::Trace &trace, double overprovision)
{
    // Live data is bounded by the written volume (overwrites only
    // shrink it). Keep at least 16 MiB / 64 segments so tiny
    // workloads still have a meaningful segment population, and
    // leave the cleaner headroom above the reserve.
    const trace::TraceStats stats = trace::computeStats(trace);
    stl::FiniteLogConfig config;
    config.capacityBytes = std::max<std::uint64_t>(
        16 * kMiB,
        static_cast<std::uint64_t>(
            overprovision * static_cast<double>(stats.writtenBytes)));
    config.segmentBytes = std::clamp<std::uint64_t>(
        config.capacityBytes / 128, 256 * kKiB, 4 * kMiB);
    config.cleanReserveSegments = 4;
    config.cleanTargetSegments = 12;
    return config;
}

/** Finite-log config sized per trace, optionally defragmenting. */
sweep::ConfigSpec
finiteConfig(const std::string &label,
             stl::gc::CleaningPolicyKind policy, double overprovision,
             bool defrag, const sweep::BenchCli &cli)
{
    return sweep::ConfigSpec::deferred(
        label,
        [policy, overprovision, defrag,
         &cli](const trace::Trace &trace) {
            stl::SimConfig config;
            config.translation =
                stl::TranslationKind::FiniteLogStructured;
            config.finiteLog = sizedLog(trace, overprovision);
            config.finiteLog.gc.policy = policy;
            cli.applyFiniteLogOverrides(config.finiteLog);
            if (defrag)
                config.defrag = stl::DefragConfig{};
            return config;
        });
}

} // namespace

int
main(int argc, char **argv)
{
    const auto cli = sweep::parseBenchCli(
        argc, argv, sweep::benchUsage("cleaning_interaction"),
        0.01);
    if (!cli)
        return 2;

    const std::vector<std::string> names{"w91", "hm_1", "w33"};
    const std::vector<double> overprovisions{1.2, 1.5, 2.0, 4.0};

    std::vector<sweep::WorkloadSpec> specs;
    for (const auto &name : names)
        specs.push_back(sweep::WorkloadSpec::profile(name, cli->profile));

    // One baseline column plus, per cleaning policy and
    // over-provisioning point, the finite log with and without
    // defragmentation. A log that is feasible without
    // defragmentation can be pushed into overcommitment *by*
    // defragmentation's rewrites — itself a result worth showing,
    // so the two run independently and an overcommitted run simply
    // fails its own cell.
    stl::SimConfig baseline;
    baseline.translation = stl::TranslationKind::Conventional;
    std::vector<sweep::ConfigSpec> configs{
        sweep::ConfigSpec::fixed("NoLS", baseline)};
    for (const auto policy : kPolicies) {
        for (const double overprovision : overprovisions) {
            const std::string tag =
                std::string(stl::gc::toString(policy)) + " x" +
                analysis::formatDouble(overprovision, 1);
            configs.push_back(finiteConfig("finite " + tag, policy,
                                           overprovision, false,
                                           *cli));
            configs.push_back(finiteConfig("finite " + tag + "+defrag",
                                           policy, overprovision,
                                           true, *cli));
        }
    }

    sweep::SweepOptions options = cli->sweepOptions();
    sweep::SweepRunner runner(std::move(specs), std::move(configs),
                              std::move(options));
    const sweep::SweepResult sweep = runner.run();

    std::cout << "Defragmentation under finite-log cleaning "
                 "(capacity = overprovision x written volume)\n\n";

    for (std::size_t pol = 0; pol < kPolicies.size(); ++pol) {
        std::cout << "Cleaning policy: "
                  << stl::gc::toString(kPolicies[pol]) << "\n\n";
        analysis::TextTable table(
            {"workload", "overprov", "SAF", "clean seeks", "WAF",
             "SAF+defrag", "clean seeks+defrag", "WAF+defrag",
             "rewrites"});

        for (std::size_t w = 0; w < names.size(); ++w) {
            for (std::size_t p = 0; p < overprovisions.size(); ++p) {
                const std::size_t base =
                    1 + 2 * (pol * overprovisions.size() + p);
                const sweep::RunRow &plain = sweep.row(w, base);
                const sweep::RunRow &defragged =
                    sweep.row(w, base + 1);

                std::vector<std::string> row{
                    names[w],
                    analysis::formatDouble(overprovisions[p], 1)};
                if (plain.status.ok()) {
                    row.push_back(
                        analysis::formatRatio(sweep.safVs(w, base)));
                    row.push_back(
                        std::to_string(plain.result.cleaningSeeks));
                    row.push_back(analysis::formatDouble(
                        plain.result.writeAmplification()));
                } else {
                    row.insert(row.end(), {"overcommitted", "-", "-"});
                }
                if (defragged.status.ok()) {
                    row.push_back(analysis::formatRatio(
                        sweep.safVs(w, base + 1)));
                    row.push_back(
                        std::to_string(defragged.result.cleaningSeeks));
                    row.push_back(analysis::formatDouble(
                        defragged.result.writeAmplification()));
                    row.push_back(
                        std::to_string(defragged.result.defragRewrites));
                } else {
                    row.insert(row.end(),
                               {"overcommitted", "-", "-", "-"});
                }
                table.addRow(std::move(row));
            }
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout
        << "Expected shape: defragmentation still cuts host SAF, "
           "but its rewrites raise WAF and cleaning seeks — and the "
           "tighter the over-provisioning, the more cleaning it "
           "induces (the paper's §IV-A caveat made concrete). "
           "Cost-benefit and zone-granular cleaners shift how much "
           "of that pressure turns into moved bytes.\n";
    cli->emitReports(sweep);
    return 0;
}
