/**
 * @file
 * Extension experiment: defragmentation vs. garbage collection.
 *
 * Paper §IV-A: opportunistic defragmentation "does not come for
 * free; ... its use of free space will eventually necessitate
 * running the cleaning algorithm with its attendant overheads."
 * On a finite log, every rewrite consumes frontier space and leaves
 * a dead copy behind, so defragmentation trades read seeks for
 * cleaning traffic. This harness sweeps log over-provisioning and
 * reports host SAF, cleaning seeks and WAF with and without
 * defragmentation.
 *
 * Usage: cleaning_interaction [scale] [seed]
 */

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "analysis/report.h"
#include "util/logging.h"
#include "stl/simulator.h"
#include "trace/stats.h"
#include "workloads/profiles.h"

namespace
{

using namespace logseek;

/** Log capacity sized as a multiple of the workload's live data. */
stl::FiniteLogConfig
sizedLog(const trace::Trace &trace, double overprovision)
{
    // Live data is bounded by the written volume (overwrites only
    // shrink it). Keep at least 16 MiB / 64 segments so tiny
    // workloads still have a meaningful segment population, and
    // leave the cleaner headroom above the reserve.
    const trace::TraceStats stats = trace::computeStats(trace);
    stl::FiniteLogConfig config;
    config.capacityBytes = std::max<std::uint64_t>(
        16 * kMiB,
        static_cast<std::uint64_t>(
            overprovision * static_cast<double>(stats.writtenBytes)));
    config.segmentBytes = std::clamp<std::uint64_t>(
        config.capacityBytes / 128, 256 * kKiB, 4 * kMiB);
    config.cleanReserveSegments = 4;
    config.cleanTargetSegments = 12;
    return config;
}

} // namespace

int
main(int argc, char **argv)
{
    workloads::ProfileOptions options;
    options.scale = argc > 1 ? std::atof(argv[1]) : 0.01;
    if (argc > 2)
        options.seed =
            static_cast<std::uint64_t>(std::atoll(argv[2]));

    std::cout << "Defragmentation under finite-log cleaning "
                 "(greedy GC; capacity = overprovision x written "
                 "volume)\n\n";

    analysis::TextTable table(
        {"workload", "overprov", "SAF", "clean seeks", "WAF",
         "SAF+defrag", "clean seeks+defrag", "WAF+defrag",
         "rewrites"});

    for (const char *name : {"w91", "hm_1", "w33"}) {
        const trace::Trace trace =
            workloads::makeWorkload(name, options);

        stl::SimConfig baseline;
        baseline.translation = stl::TranslationKind::Conventional;
        const stl::SimResult nols =
            stl::Simulator(baseline).run(trace);

        for (const double overprovision : {1.2, 1.5, 2.0, 4.0}) {
            stl::SimConfig finite;
            finite.translation =
                stl::TranslationKind::FiniteLogStructured;
            finite.finiteLog = sizedLog(trace, overprovision);

            // Run the two configs independently: a log that is
            // feasible without defragmentation can be pushed into
            // overcommitment *by* defragmentation's rewrites —
            // itself a result worth showing.
            std::vector<std::string> row{
                name, analysis::formatDouble(overprovision, 1)};
            try {
                const stl::SimResult plain =
                    stl::Simulator(finite).run(trace);
                row.push_back(analysis::formatDouble(
                    stl::seekAmplification(nols, plain)));
                row.push_back(
                    std::to_string(plain.cleaningSeeks));
                row.push_back(analysis::formatDouble(
                    plain.writeAmplification()));
            } catch (const FatalError &) {
                row.insert(row.end(),
                           {"overcommitted", "-", "-"});
            }
            try {
                stl::SimConfig with_defrag = finite;
                with_defrag.defrag = stl::DefragConfig{};
                const stl::SimResult defragged =
                    stl::Simulator(with_defrag).run(trace);
                row.push_back(analysis::formatDouble(
                    stl::seekAmplification(nols, defragged)));
                row.push_back(
                    std::to_string(defragged.cleaningSeeks));
                row.push_back(analysis::formatDouble(
                    defragged.writeAmplification()));
                row.push_back(
                    std::to_string(defragged.defragRewrites));
            } catch (const FatalError &) {
                row.insert(row.end(),
                           {"overcommitted", "-", "-", "-"});
            }
            table.addRow(std::move(row));
        }
    }
    table.print(std::cout);

    std::cout
        << "\nExpected shape: defragmentation still cuts host SAF, "
           "but its rewrites raise WAF and cleaning seeks — and the "
           "tighter the over-provisioning, the more cleaning it "
           "induces (the paper's §IV-A caveat made concrete).\n";
    return 0;
}
