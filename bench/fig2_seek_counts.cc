/**
 * @file
 * Regenerates paper Figure 2: read and write seek counts of every
 * workload under non-log-structured (NoLS) and log-structured (LS)
 * translation. The paper's observation: LS all but eliminates write
 * seeks everywhere, while read seeks grow hugely for log-sensitive
 * workloads (w91, w33, w20), modestly for log-friendly ones
 * (src2_2, wdev_0, w36).
 *
 * Usage: fig2_seek_counts [scale] [seed]
 */

#include <cstdlib>
#include <iostream>

#include "analysis/report.h"
#include "stl/simulator.h"
#include "workloads/profiles.h"

namespace
{

using namespace logseek;

void
runSuite(const char *figure, const char *suite,
         const std::vector<std::string> &names,
         const workloads::ProfileOptions &options)
{
    std::cout << "Figure 2" << figure << ": " << suite
              << " traces, seek counts (NoLS vs LS)\n\n";
    analysis::TextTable table({"workload", "NoLS read", "NoLS write",
                               "LS read", "LS write",
                               "read growth", "write reduction"});
    for (const auto &name : names) {
        const trace::Trace trace =
            workloads::makeWorkload(name, options);
        stl::SimConfig ls_config;
        ls_config.translation = stl::TranslationKind::LogStructured;
        const auto [nols, ls] = stl::runWithBaseline(trace, ls_config);

        const double read_growth =
            nols.readSeeks == 0
                ? 0.0
                : static_cast<double>(ls.readSeeks) /
                      static_cast<double>(nols.readSeeks);
        const double write_cut =
            ls.writeSeeks == 0
                ? static_cast<double>(nols.writeSeeks)
                : static_cast<double>(nols.writeSeeks) /
                      static_cast<double>(ls.writeSeeks);
        table.addRow({name, std::to_string(nols.readSeeks),
                      std::to_string(nols.writeSeeks),
                      std::to_string(ls.readSeeks),
                      std::to_string(ls.writeSeeks),
                      analysis::formatDouble(read_growth) + "x",
                      analysis::formatDouble(write_cut) + "x"});
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    workloads::ProfileOptions options;
    if (argc > 1)
        options.scale = std::atof(argv[1]);
    if (argc > 2)
        options.seed =
            static_cast<std::uint64_t>(std::atoll(argv[2]));

    runSuite("a", "MSR", workloads::msrWorkloadNames(), options);
    runSuite("b", "CloudPhysics",
             workloads::cloudPhysicsWorkloadNames(), options);
    return 0;
}
