/**
 * @file
 * Regenerates paper Figure 2: read and write seek counts of every
 * workload under non-log-structured (NoLS) and log-structured (LS)
 * translation. The paper's observation: LS all but eliminates write
 * seeks everywhere, while read seeks grow hugely for log-sensitive
 * workloads (w91, w33, w20), modestly for log-friendly ones
 * (src2_2, wdev_0, w36).
 *
 * Usage: fig2_seek_counts [scale] [seed] [--jobs N] [--json[=path]]
 *        [--csv[=path]] [--paranoid]
 */

#include <iostream>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "stl/simulator.h"
#include "sweep/cli.h"
#include "sweep/sweep_runner.h"
#include "workloads/profiles.h"

namespace
{

using namespace logseek;

void
printSuite(const char *figure, const char *suite,
           const std::vector<std::string> &names, std::size_t offset,
           const sweep::SweepResult &sweep)
{
    std::cout << "Figure 2" << figure << ": " << suite
              << " traces, seek counts (NoLS vs LS)\n\n";
    analysis::TextTable table({"workload", "NoLS read", "NoLS write",
                               "LS read", "LS write",
                               "read growth", "write reduction"});
    for (std::size_t w = 0; w < names.size(); ++w) {
        const stl::SimResult &nols =
            sweep.row(offset + w, 0).result;
        const stl::SimResult &ls = sweep.row(offset + w, 1).result;

        const double read_growth =
            nols.readSeeks == 0
                ? 0.0
                : static_cast<double>(ls.readSeeks) /
                      static_cast<double>(nols.readSeeks);
        const double write_cut =
            ls.writeSeeks == 0
                ? static_cast<double>(nols.writeSeeks)
                : static_cast<double>(nols.writeSeeks) /
                      static_cast<double>(ls.writeSeeks);
        table.addRow({names[w], std::to_string(nols.readSeeks),
                      std::to_string(nols.writeSeeks),
                      std::to_string(ls.readSeeks),
                      std::to_string(ls.writeSeeks),
                      analysis::formatDouble(read_growth) + "x",
                      analysis::formatDouble(write_cut) + "x"});
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const auto cli = sweep::parseBenchCli(
        argc, argv, sweep::benchUsage("fig2_seek_counts"));
    if (!cli)
        return 2;

    const std::vector<std::string> msr = workloads::msrWorkloadNames();
    const std::vector<std::string> cloud =
        workloads::cloudPhysicsWorkloadNames();

    std::vector<sweep::WorkloadSpec> specs;
    for (const auto &name : msr)
        specs.push_back(sweep::WorkloadSpec::profile(name, cli->profile));
    for (const auto &name : cloud)
        specs.push_back(sweep::WorkloadSpec::profile(name, cli->profile));

    stl::SimConfig nols;
    nols.translation = stl::TranslationKind::Conventional;
    stl::SimConfig ls;
    ls.translation = stl::TranslationKind::LogStructured;

    sweep::SweepOptions options = cli->sweepOptions();
    sweep::SweepRunner runner(
        std::move(specs),
        {sweep::ConfigSpec::fixed("NoLS", nols),
         sweep::ConfigSpec::fixed("LS", ls)},
        std::move(options));
    const sweep::SweepResult sweep = runner.run();

    printSuite("a", "MSR", msr, 0, sweep);
    printSuite("b", "CloudPhysics", cloud, msr.size(), sweep);
    cli->emitReports(sweep);
    return 0;
}
