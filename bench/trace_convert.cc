/**
 * @file
 * Trace file converter: rewrite a trace between MSR CSV, LSKT and
 * the columnar LSKC format.
 *
 *   trace_convert <input> --convert-out <output>
 *                 [--trace-format F] [--out-format F]
 *
 * The input format defaults to auto-detection (magic sniff);
 * --trace-format declares it instead. The output format follows
 * the output path's extension unless --out-format overrides it.
 * Conversion is deterministic — converting the same input twice
 * produces byte-identical output — which is what lets the ingest
 * smoke test byte-diff a reconverted file (scripts/tier1.sh).
 */

#include <iostream>
#include <string>

#include "trace/convert.h"
#include "trace/format.h"

namespace
{

using namespace logseek;

constexpr const char *kUsage =
    "usage: trace_convert <input> --convert-out <output>\n"
    "                     [--trace-format auto|csv|lskt|lskc]\n"
    "                     [--out-format auto|csv|lskt|lskc]\n";

} // namespace

int
main(int argc, char **argv)
{
    std::string in_path;
    std::string out_path;
    trace::TraceFormat in_format = trace::TraceFormat::Auto;
    trace::TraceFormat out_format = trace::TraceFormat::Auto;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto flagValue = [&](const char *flag,
                             std::string &out) -> bool {
            const std::string name(flag);
            if (arg == name) {
                if (i + 1 >= argc) {
                    std::cerr << name << " requires a value\n"
                              << kUsage;
                    std::exit(2);
                }
                out = argv[++i];
                return true;
            }
            if (arg.rfind(name + "=", 0) == 0) {
                out = arg.substr(name.size() + 1);
                return true;
            }
            return false;
        };

        std::string value;
        if (arg == "--help" || arg == "-h") {
            std::cout << kUsage;
            return 0;
        } else if (flagValue("--convert-out", value)) {
            out_path = value;
        } else if (flagValue("--trace-format", value)) {
            StatusOr<trace::TraceFormat> format =
                trace::parseTraceFormat(value);
            if (!format.ok()) {
                std::cerr << format.status().message() << "\n"
                          << kUsage;
                return 2;
            }
            in_format = format.value();
        } else if (flagValue("--out-format", value)) {
            StatusOr<trace::TraceFormat> format =
                trace::parseTraceFormat(value);
            if (!format.ok()) {
                std::cerr << format.status().message() << "\n"
                          << kUsage;
                return 2;
            }
            out_format = format.value();
        } else if (arg.rfind("--", 0) == 0) {
            std::cerr << "unknown option: " << arg << "\n"
                      << kUsage;
            return 2;
        } else if (in_path.empty()) {
            in_path = arg;
        } else {
            std::cerr << "unexpected argument: " << arg << "\n"
                      << kUsage;
            return 2;
        }
    }

    if (in_path.empty() || out_path.empty()) {
        std::cerr << kUsage;
        return 2;
    }

    StatusOr<trace::ConvertSummary> summary =
        trace::tryConvertTraceFile(in_path, out_path, in_format,
                                   out_format);
    if (!summary.ok()) {
        std::cerr << "trace_convert: "
                  << summary.status().message() << "\n";
        return 1;
    }
    const trace::ConvertSummary &done = summary.value();
    std::cout << in_path << " ("
              << trace::toString(done.inFormat) << ", "
              << done.inBytes << " bytes) -> " << out_path << " ("
              << trace::toString(done.outFormat) << ", "
              << done.outBytes << " bytes), " << done.records
              << " records\n";
    return 0;
}
