/**
 * @file
 * Regenerates paper Figure 4: CDFs of access distances under NoLS
 * and LS translation for src2_2, usr_0, w84 and w64, restricted to
 * the +/-2 GB window the paper plots. The paper's observation: in
 * the older MSR traces most LS seeks stay within +/-1 GB, while in
 * the newer CloudPhysics traces less than half do.
 *
 * Usage: fig4_access_distance [scale] [seed]
 */

#include <cstdlib>
#include <iostream>

#include "analysis/observers.h"
#include "analysis/report.h"
#include "stl/simulator.h"
#include "workloads/profiles.h"

namespace
{

using namespace logseek;

void
runWorkload(const std::string &name,
            const workloads::ProfileOptions &options)
{
    const trace::Trace trace = workloads::makeWorkload(name, options);

    auto collect = [&](stl::TranslationKind kind) {
        analysis::AccessDistanceCdf cdf;
        stl::SimConfig config;
        config.translation = kind;
        stl::Simulator simulator(config);
        simulator.addObserver(&cdf);
        simulator.run(trace);
        return cdf;
    };

    const analysis::AccessDistanceCdf nols =
        collect(stl::TranslationKind::Conventional);
    const analysis::AccessDistanceCdf ls =
        collect(stl::TranslationKind::LogStructured);

    std::cout << "# Figure 4: " << name
              << " access-distance CDF (GB)\n";
    std::cout << "# distance_gb\tNoLS\tLS\n";
    constexpr int kPoints = 41;
    for (int i = 0; i < kPoints; ++i) {
        const double x = -2.0 + 4.0 * i / (kPoints - 1);
        std::cout << analysis::formatDouble(x, 2) << "\t"
                  << analysis::formatDouble(
                         nols.distancesGb().fractionAtOrBelow(x), 4)
                  << "\t"
                  << analysis::formatDouble(
                         ls.distancesGb().fractionAtOrBelow(x), 4)
                  << "\n";
    }
    const double nols_in_window =
        nols.distancesGb().fractionAtOrBelow(1.0) -
        nols.distancesGb().fractionAtOrBelow(-1.0);
    const double ls_in_window =
        ls.distancesGb().fractionAtOrBelow(1.0) -
        ls.distancesGb().fractionAtOrBelow(-1.0);
    std::cout << "# fraction of accesses within +/-1 GB: NoLS "
              << analysis::formatDouble(nols_in_window, 3) << ", LS "
              << analysis::formatDouble(ls_in_window, 3) << "\n\n";
}

} // namespace

int
main(int argc, char **argv)
{
    workloads::ProfileOptions options;
    if (argc > 1)
        options.scale = std::atof(argv[1]);
    if (argc > 2)
        options.seed =
            static_cast<std::uint64_t>(std::atoll(argv[2]));

    for (const char *name : {"src2_2", "usr_0", "w84", "w64"})
        runWorkload(name, options);
    return 0;
}
