/**
 * @file
 * Regenerates paper Figure 4: CDFs of access distances under NoLS
 * and LS translation for src2_2, usr_0, w84 and w64, restricted to
 * the +/-2 GB window the paper plots. The paper's observation: in
 * the older MSR traces most LS seeks stay within +/-1 GB, while in
 * the newer CloudPhysics traces less than half do.
 *
 * Usage: fig4_access_distance [scale] [seed] [--jobs N]
 *        [--json[=path]] [--csv[=path]] [--paranoid]
 */

#include <iostream>
#include <memory>
#include <vector>

#include "analysis/observers.h"
#include "analysis/report.h"
#include "stl/simulator.h"
#include "sweep/cli.h"
#include "sweep/sweep_runner.h"
#include "workloads/profiles.h"

int
main(int argc, char **argv)
{
    using namespace logseek;

    const auto cli = sweep::parseBenchCli(
        argc, argv, sweep::benchUsage("fig4_access_distance"));
    if (!cli)
        return 2;

    const std::vector<std::string> names{"src2_2", "usr_0", "w84",
                                         "w64"};
    std::vector<sweep::WorkloadSpec> specs;
    for (const auto &name : names)
        specs.push_back(sweep::WorkloadSpec::profile(name, cli->profile));

    stl::SimConfig nols_config;
    nols_config.translation = stl::TranslationKind::Conventional;
    stl::SimConfig ls_config;
    ls_config.translation = stl::TranslationKind::LogStructured;

    sweep::SweepOptions options = cli->sweepOptions();
    options.observerFactory =
        cli->observerFactory([](const sweep::RunKey &) {
            std::vector<std::unique_ptr<stl::SimObserver>> obs;
            obs.push_back(
                std::make_unique<analysis::AccessDistanceCdf>());
            return obs;
        });
    sweep::SweepRunner runner(
        std::move(specs),
        {sweep::ConfigSpec::fixed("NoLS", nols_config),
         sweep::ConfigSpec::fixed("LS", ls_config)},
        std::move(options));
    const sweep::SweepResult sweep = runner.run();

    for (std::size_t w = 0; w < names.size(); ++w) {
        const auto &nols = *sweep::findObserver<
            analysis::AccessDistanceCdf>(sweep.row(w, 0));
        const auto &ls = *sweep::findObserver<
            analysis::AccessDistanceCdf>(sweep.row(w, 1));

        std::cout << "# Figure 4: " << names[w]
                  << " access-distance CDF (GB)\n";
        std::cout << "# distance_gb\tNoLS\tLS\n";
        constexpr int kPoints = 41;
        for (int i = 0; i < kPoints; ++i) {
            const double x = -2.0 + 4.0 * i / (kPoints - 1);
            std::cout
                << analysis::formatDouble(x, 2) << "\t"
                << analysis::formatDouble(
                       nols.distancesGb().fractionAtOrBelow(x), 4)
                << "\t"
                << analysis::formatDouble(
                       ls.distancesGb().fractionAtOrBelow(x), 4)
                << "\n";
        }
        const double nols_in_window =
            nols.distancesGb().fractionAtOrBelow(1.0) -
            nols.distancesGb().fractionAtOrBelow(-1.0);
        const double ls_in_window =
            ls.distancesGb().fractionAtOrBelow(1.0) -
            ls.distancesGb().fractionAtOrBelow(-1.0);
        std::cout << "# fraction of accesses within +/-1 GB: NoLS "
                  << analysis::formatDouble(nols_in_window, 3)
                  << ", LS "
                  << analysis::formatDouble(ls_in_window, 3) << "\n\n";
    }
    cli->emitReports(sweep);
    return 0;
}
