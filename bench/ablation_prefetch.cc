/**
 * @file
 * Ablation: look-ahead-behind window sweep. Algorithm 2 fetches a
 * fixed region around each fragment of a fragmented read; this
 * sweep varies the per-side window to show where the mis-ordered
 * write neighborhoods of w84/w95/w91/w106 are captured.
 *
 * Usage: ablation_prefetch [scale] [seed]
 */

#include <cstdlib>
#include <iostream>

#include "analysis/report.h"
#include "stl/simulator.h"
#include "workloads/profiles.h"

int
main(int argc, char **argv)
{
    using namespace logseek;

    workloads::ProfileOptions options;
    options.scale = argc > 1 ? std::atof(argv[1]) : 0.01;
    if (argc > 2)
        options.seed =
            static_cast<std::uint64_t>(std::atoll(argv[2]));

    const std::vector<std::uint64_t> windows_kib{16, 64, 128, 512};

    std::cout << "Look-ahead-behind window ablation (SAF; window "
                 "applies per side)\n\n";
    std::vector<std::string> headers{"workload", "LS"};
    for (const std::uint64_t kib : windows_kib)
        headers.push_back(std::to_string(kib) + " KiB");
    headers.push_back("ahead-only 128");
    headers.push_back("behind-only 128");
    analysis::TextTable table(headers);

    for (const char *name : {"w84", "w95", "w91", "w106", "hm_1"}) {
        const trace::Trace trace =
            workloads::makeWorkload(name, options);

        stl::SimConfig baseline;
        baseline.translation = stl::TranslationKind::Conventional;
        const stl::SimResult nols =
            stl::Simulator(baseline).run(trace);

        stl::SimConfig plain;
        plain.translation = stl::TranslationKind::LogStructured;
        std::vector<std::string> row{
            name, analysis::formatDouble(stl::seekAmplification(
                      nols, stl::Simulator(plain).run(trace)))};

        auto run_with = [&](std::uint64_t ahead_kib,
                            std::uint64_t behind_kib) {
            stl::SimConfig config = plain;
            config.prefetch = stl::PrefetchConfig{
                .lookAheadBytes = ahead_kib * kKiB,
                .lookBehindBytes = behind_kib * kKiB,
                .bufferBytes = 2 * kMiB,
            };
            return analysis::formatDouble(stl::seekAmplification(
                nols, stl::Simulator(config).run(trace)));
        };

        for (const std::uint64_t kib : windows_kib)
            row.push_back(run_with(kib, kib));
        row.push_back(run_with(128, 0));
        row.push_back(run_with(0, 128));
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: SAF drops once the window "
                 "covers the write-reorder neighborhood; look-"
                 "behind is the half that repairs missed rotations "
                 "from descending writes (paper §IV-B).\n";
    return 0;
}
