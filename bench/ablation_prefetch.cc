/**
 * @file
 * Ablation: look-ahead-behind window sweep. Algorithm 2 fetches a
 * fixed region around each fragment of a fragmented read; this
 * sweep varies the per-side window to show where the mis-ordered
 * write neighborhoods of w84/w95/w91/w106 are captured.
 *
 * Usage: ablation_prefetch [scale] [seed] [--jobs N]
 *        [--json[=path]] [--csv[=path]] [--paranoid]
 */

#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "saf_sweep.h"

namespace
{

using namespace logseek;

sweep::ConfigSpec
prefetchConfig(std::string label, std::uint64_t ahead_kib,
               std::uint64_t behind_kib)
{
    stl::SimConfig config = bench::logStructured();
    config.prefetch = stl::PrefetchConfig{
        .lookAheadBytes = ahead_kib * kKiB,
        .lookBehindBytes = behind_kib * kKiB,
        .bufferBytes = 2 * kMiB,
    };
    return sweep::ConfigSpec::fixed(std::move(label),
                                    std::move(config));
}

} // namespace

int
main(int argc, char **argv)
{
    const auto cli = sweep::parseBenchCli(
        argc, argv, sweep::benchUsage("ablation_prefetch"),
        0.01);
    if (!cli)
        return 2;

    const std::vector<std::uint64_t> windows_kib{16, 64, 128, 512};

    std::cout << "Look-ahead-behind window ablation (SAF; window "
                 "applies per side)\n\n";

    std::vector<sweep::ConfigSpec> configs{
        bench::conventionalBaseline(),
        sweep::ConfigSpec::fixed("LS", bench::logStructured())};
    for (const std::uint64_t kib : windows_kib)
        configs.push_back(prefetchConfig(
            std::to_string(kib) + " KiB", kib, kib));
    configs.push_back(prefetchConfig("ahead-only 128", 128, 0));
    configs.push_back(prefetchConfig("behind-only 128", 0, 128));

    const sweep::SweepResult sweep = bench::runSafTable(
        {"w84", "w95", "w91", "w106", "hm_1"}, std::move(configs),
        *cli);

    std::cout << "\nExpected shape: SAF drops once the window "
                 "covers the write-reorder neighborhood; look-"
                 "behind is the half that repairs missed rotations "
                 "from descending writes (paper §IV-B).\n";
    cli->emitReports(sweep);
    return 0;
}
