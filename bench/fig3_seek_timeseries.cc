/**
 * @file
 * Regenerates paper Figure 3: log-structured translation overhead
 * over time — the per-bin difference (LS minus NoLS) in long
 * (>500 KB) seeks, plotted against operation number, for usr_1,
 * web_0, w91 and w55. The paper's observation: strong temporal
 * (diurnal) swings — overhead concentrates in scan bursts.
 *
 * Usage: fig3_seek_timeseries [scale] [seed]
 */

#include <cstdlib>
#include <iostream>

#include "analysis/observers.h"
#include "analysis/report.h"
#include "stl/simulator.h"
#include "workloads/profiles.h"

namespace
{

using namespace logseek;

void
runWorkload(const std::string &name,
            const workloads::ProfileOptions &options)
{
    const trace::Trace trace = workloads::makeWorkload(name, options);
    const std::uint64_t bin =
        std::max<std::uint64_t>(1, trace.size() / 60);

    analysis::SeekCounter nols_counter(bin);
    stl::SimConfig nols_config;
    nols_config.translation = stl::TranslationKind::Conventional;
    stl::Simulator nols(nols_config);
    nols.addObserver(&nols_counter);
    nols.run(trace);

    analysis::SeekCounter ls_counter(bin);
    stl::SimConfig ls_config;
    ls_config.translation = stl::TranslationKind::LogStructured;
    stl::Simulator ls(ls_config);
    ls.addObserver(&ls_counter);
    ls.run(trace);

    const BinnedSeries delta = difference(
        ls_counter.longSeekSeries(), nols_counter.longSeekSeries());

    std::cout << "# Figure 3 series: " << name
              << " (long-seek count, LS - NoLS, per "
              << bin << "-op bin)\n";
    std::cout << "# op(x1000)\tdelta_long_seeks\n";
    for (std::size_t i = 0; i < delta.binCount(); ++i) {
        std::cout << analysis::formatDouble(
                         static_cast<double>(delta.binLowerEdge(i)) /
                             1000.0,
                         1)
                  << "\t" << delta.binValue(i) << "\n";
    }
    std::cout << "# total long-seek delta: " << delta.total()
              << "\n\n";
}

} // namespace

int
main(int argc, char **argv)
{
    workloads::ProfileOptions options;
    if (argc > 1)
        options.scale = std::atof(argv[1]);
    if (argc > 2)
        options.seed =
            static_cast<std::uint64_t>(std::atoll(argv[2]));

    for (const char *name : {"usr_1", "web_0", "w91", "w55"})
        runWorkload(name, options);
    return 0;
}
