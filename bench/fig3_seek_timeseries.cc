/**
 * @file
 * Regenerates paper Figure 3: log-structured translation overhead
 * over time — the per-bin difference (LS minus NoLS) in long
 * (>500 KB) seeks, plotted against operation number, for usr_1,
 * web_0, w91 and w55. The paper's observation: strong temporal
 * (diurnal) swings — overhead concentrates in scan bursts.
 *
 * Usage: fig3_seek_timeseries [scale] [seed] [--jobs N]
 *        [--json[=path]] [--csv[=path]] [--paranoid]
 */

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "analysis/observers.h"
#include "analysis/report.h"
#include "stl/simulator.h"
#include "sweep/cli.h"
#include "sweep/sweep_runner.h"
#include "workloads/profiles.h"

namespace
{

using namespace logseek;

} // namespace

int
main(int argc, char **argv)
{
    const auto cli = sweep::parseBenchCli(
        argc, argv, sweep::benchUsage("fig3_seek_timeseries"));
    if (!cli)
        return 2;

    const std::vector<std::string> names{"usr_1", "web_0", "w91",
                                         "w55"};
    std::vector<sweep::WorkloadSpec> specs;
    for (const auto &name : names)
        specs.push_back(sweep::WorkloadSpec::profile(name, cli->profile));

    stl::SimConfig nols_config;
    nols_config.translation = stl::TranslationKind::Conventional;
    stl::SimConfig ls_config;
    ls_config.translation = stl::TranslationKind::LogStructured;

    // Bin width depends on each trace's length; the onTrace hook
    // records it before any of that workload's runs execute.
    std::vector<std::uint64_t> bins(names.size(), 1);
    sweep::SweepOptions options = cli->sweepOptions();
    options.observerFactory =
        cli->observerFactory([&bins](const sweep::RunKey &key) {
            std::vector<std::unique_ptr<stl::SimObserver>> obs;
            obs.push_back(std::make_unique<analysis::SeekCounter>(
                bins[key.workloadIndex]));
            return obs;
        });
    auto chained = std::move(options.onTrace);
    options.onTrace = [&bins, chained](std::size_t w,
                                       const trace::Trace &trace) {
        if (chained)
            chained(w, trace);
        bins[w] = std::max<std::uint64_t>(1, trace.size() / 60);
    };
    sweep::SweepRunner runner(
        std::move(specs),
        {sweep::ConfigSpec::fixed("NoLS", nols_config),
         sweep::ConfigSpec::fixed("LS", ls_config)},
        std::move(options));
    const sweep::SweepResult sweep = runner.run();

    for (std::size_t w = 0; w < names.size(); ++w) {
        const auto *nols_counter =
            sweep::findObserver<analysis::SeekCounter>(sweep.row(w, 0));
        const auto *ls_counter =
            sweep::findObserver<analysis::SeekCounter>(sweep.row(w, 1));
        const BinnedSeries delta =
            difference(ls_counter->longSeekSeries(),
                       nols_counter->longSeekSeries());

        std::cout << "# Figure 3 series: " << names[w]
                  << " (long-seek count, LS - NoLS, per " << bins[w]
                  << "-op bin)\n";
        std::cout << "# op(x1000)\tdelta_long_seeks\n";
        for (std::size_t i = 0; i < delta.binCount(); ++i) {
            std::cout
                << analysis::formatDouble(
                       static_cast<double>(delta.binLowerEdge(i)) /
                           1000.0,
                       1)
                << "\t" << delta.binValue(i) << "\n";
        }
        std::cout << "# total long-seek delta: " << delta.total()
                  << "\n\n";
    }
    cli->emitReports(sweep);
    return 0;
}
