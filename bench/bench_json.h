/**
 * @file
 * Minimal helpers for the co-written BENCH_extent_map.json file.
 *
 * perf_extent_map and perf_simulator each own one top-level section
 * ("extent_map" and "replay") of the same tracking file. Each binary
 * re-reads the file, keeps the other section verbatim, and rewrites
 * the whole object. The extractor is a balanced-brace scanner, which
 * is sound here because both writers emit sections without braces
 * inside string values.
 */

#ifndef LOGSEEK_BENCH_BENCH_JSON_H
#define LOGSEEK_BENCH_BENCH_JSON_H

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace logseek::bench
{

/** Whole file as a string; empty if unreadable. */
inline std::string
readFile(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        return {};
    std::ostringstream out;
    out << file.rdbuf();
    return out.str();
}

/**
 * Extract the balanced-brace object of `"key": {...}` from a JSON
 * document previously written by these helpers. Returns the object
 * text including braces, or an empty string when absent.
 */
inline std::string
extractSection(const std::string &doc, const std::string &key)
{
    const std::string marker = "\"" + key + "\":";
    const std::size_t at = doc.find(marker);
    if (at == std::string::npos)
        return {};
    const std::size_t open = doc.find('{', at + marker.size());
    if (open == std::string::npos)
        return {};
    int depth = 0;
    for (std::size_t i = open; i < doc.size(); ++i) {
        if (doc[i] == '{')
            ++depth;
        else if (doc[i] == '}' && --depth == 0)
            return doc.substr(open, i - open + 1);
    }
    return {};
}

/**
 * Write `{ "k1": v1, "k2": v2, ... }` to path, skipping sections
 * whose value is empty. Returns false if the file cannot be opened.
 */
inline bool
writeSections(
    const std::string &path,
    const std::vector<std::pair<std::string, std::string>> &sections)
{
    std::ofstream file(path);
    if (!file)
        return false;
    file << "{\n";
    bool first = true;
    for (const auto &[key, value] : sections) {
        if (value.empty())
            continue;
        if (!first)
            file << ",\n";
        first = false;
        file << "  \"" << key << "\": " << value;
    }
    file << "\n}\n";
    return static_cast<bool>(file);
}

} // namespace logseek::bench

#endif // LOGSEEK_BENCH_BENCH_JSON_H
