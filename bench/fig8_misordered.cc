/**
 * @file
 * Regenerates paper Figure 8: the fraction of mis-ordered writes —
 * writes whose LBA sequentially follows a write arriving within the
 * next 256 KB of written data — for the figure's workload set. The
 * paper's observation: up to one in 20 (src2_2) / one in 25 (w106)
 * writes are mis-ordered.
 *
 * Usage: fig8_misordered [scale] [seed]
 */

#include <cstdlib>
#include <iostream>

#include "analysis/misordered.h"
#include "analysis/report.h"
#include "workloads/profiles.h"

int
main(int argc, char **argv)
{
    using namespace logseek;

    workloads::ProfileOptions options;
    if (argc > 1)
        options.scale = std::atof(argv[1]);
    if (argc > 2)
        options.seed =
            static_cast<std::uint64_t>(std::atoll(argv[2]));

    std::cout << "Figure 8: mis-ordered writes within 256 KB\n\n";
    analysis::TextTable table(
        {"workload", "writes", "mis-ordered", "fraction"});

    for (const char *name :
         {"usr_0", "usr_1", "src2_2", "hm_1", "web_0", "w84", "w95",
          "w91", "w106", "w55", "w33", "w20"}) {
        const trace::Trace trace =
            workloads::makeWorkload(name, options);
        const analysis::MisorderedWriteStats stats =
            analysis::countMisorderedWrites(trace);
        table.addRow({name, std::to_string(stats.writes),
                      std::to_string(stats.misordered),
                      analysis::formatDouble(stats.fraction() * 100.0,
                                             2) +
                          "%"});
    }
    table.print(std::cout);
    std::cout << "\nPaper reference: src2_2 about 1-in-20, w106 "
                 "about 1-in-25; scan/update workloads much lower.\n";
    return 0;
}
