/**
 * @file
 * Regenerates paper Figure 8: the fraction of mis-ordered writes —
 * writes whose LBA sequentially follows a write arriving within the
 * next 256 KB of written data — for the figure's workload set. The
 * paper's observation: up to one in 20 (src2_2) / one in 25 (w106)
 * writes are mis-ordered.
 *
 * Usage: fig8_misordered [scale] [seed] [--jobs N]
 */

#include <iostream>
#include <vector>

#include "analysis/misordered.h"
#include "analysis/report.h"
#include "sweep/cli.h"
#include "sweep/sweep_runner.h"
#include "workloads/profiles.h"

int
main(int argc, char **argv)
{
    using namespace logseek;

    const auto cli = sweep::parseBenchCli(
        argc, argv, sweep::benchUsage("fig8_misordered"));
    if (!cli)
        return 2;

    const std::vector<std::string> names{"usr_0", "usr_1", "src2_2",
                                         "hm_1",  "web_0", "w84",
                                         "w95",   "w91",   "w106",
                                         "w55",   "w33",   "w20"};
    std::vector<sweep::WorkloadSpec> specs;
    for (const auto &name : names)
        specs.push_back(sweep::WorkloadSpec::profile(name, cli->profile));

    std::vector<analysis::MisorderedWriteStats> stats(names.size());
    sweep::SweepOptions options = cli->sweepOptions();
    auto chained = std::move(options.onTrace);
    options.onTrace = [&stats, chained](std::size_t w,
                                        const trace::Trace &trace) {
        if (chained)
            chained(w, trace);
        stats[w] = analysis::countMisorderedWrites(trace);
    };
    sweep::SweepRunner runner(std::move(specs), {},
                              std::move(options));
    runner.run();

    std::cout << "Figure 8: mis-ordered writes within 256 KB\n\n";
    analysis::TextTable table(
        {"workload", "writes", "mis-ordered", "fraction"});
    for (std::size_t w = 0; w < names.size(); ++w) {
        table.addRow({names[w], std::to_string(stats[w].writes),
                      std::to_string(stats[w].misordered),
                      analysis::formatDouble(
                          stats[w].fraction() * 100.0, 2) +
                          "%"});
    }
    table.print(std::cout);
    std::cout << "\nPaper reference: src2_2 about 1-in-20, w106 "
                 "about 1-in-25; scan/update workloads much lower.\n";
    return 0;
}
