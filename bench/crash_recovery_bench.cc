/**
 * @file
 * Crash-recovery smoke benchmark: a reduced cut of the CrashRecovery
 * differential matrix, sized to run in CI seconds, that exercises
 * every translation layer's power-loss path end to end — journaled
 * replay, device crash / torn-tail injection, log-scan remount,
 * Fsck, and the oracle equivalence check — and writes a summary
 * to a JSON file (default BENCH_crash_recovery.smoke.json).
 *
 * Exits non-zero when any crash point fails to recover
 * consistently, so CI treats a recovery regression like a test
 * failure. The stateDigest per cell is seeded-deterministic: equal
 * seeds must reproduce equal digests run over run, which is what
 * makes the JSON diffable across commits.
 *
 * Usage: crash_recovery_bench [scale] [seed] [--json=path]
 *
 * scale multiplies the trace length (ops = 360 * scale / 0.02,
 * i.e. the default scale replays 360 ops per cell); seed feeds the
 * trace generator and the torn-tail draws.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "stl/testing/crash_harness.h"
#include "sweep/cli.h"
#include "sweep/report.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"

int
main(int argc, char **argv)
{
    using namespace logseek;
    using stl::testing::CrashCase;
    using stl::testing::CrashMatrixResult;

    auto cli = sweep::parseBenchCli(
        argc, argv, sweep::benchUsage("crash_recovery_bench"));
    if (!cli)
        return 2;
    // Arms telemetry when an observability flag was parsed, so the
    // recovery counters and the mount-latency histogram land in
    // --metrics-out snapshots; the sweep options themselves are
    // unused (this bench runs its cells serially).
    (void)cli->sweepOptions();

    const std::size_t ops = static_cast<std::size_t>(
        360.0 * cli->profile.scale / 0.02);
    const std::uint64_t seed = cli->profile.seed;
    const Lba address_space = bytesToSectors(2 * kMiB);
    const trace::Trace trace =
        stl::testing::crashTrace(ops, seed, address_space);

    // One cell per layer, alternating the zoned-device and shard
    // legs so the smoke stays fast while every crash path (device
    // power loss, offline torn tail, sharded remount) runs.
    const std::vector<CrashCase> cells{
        {stl::TranslationKind::LogStructured, true, 1, false, 29,
         seed},
        {stl::TranslationKind::LogStructured, true, 4, true, 97,
         seed},
        {stl::TranslationKind::FiniteLogStructured, false, 1, true,
         131, seed},
        {stl::TranslationKind::MediaCache, false, 1, false, 41,
         seed},
        {stl::TranslationKind::Conventional, false, 1, false, 59,
         seed},
    };

    const std::string path =
        cli->jsonPath && *cli->jsonPath != "-"
            ? *cli->jsonPath
            : "BENCH_crash_recovery.smoke.json";

    bool all_ok = true;
    std::ostringstream json;
    json << "{\n  \"benchmark\": \"crash_recovery\",\n"
         << "  \"ops\": " << ops << ",\n  \"seed\": " << seed
         << ",\n  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const CrashCase &cell = cells[i];
        const CrashMatrixResult result =
            stl::testing::runCrashMatrix(cell, trace);
        all_ok = all_ok && result.ok();
        std::cout << cell.label() << ": "
                  << (result.ok() ? "ok" : "FAIL") << " ("
                  << result.crashesRun << " crashes, "
                  << result.tornTails << " torn tails, "
                  << result.epochsApplied << " epochs replayed, "
                  << result.entriesChecked
                  << " entries fsck-checked)\n";
        if (!result.ok())
            std::cout << "  " << result.failure << "\n";
        json << "    {\"cell\": \""
             << sweep::jsonEscape(cell.label())
             << "\", \"ok\": " << (result.ok() ? "true" : "false")
             << ", \"crashes\": " << result.crashesRun
             << ", \"tornTails\": " << result.tornTails
             << ", \"truncatedEpochs\": " << result.truncatedEpochs
             << ", \"epochsApplied\": " << result.epochsApplied
             << ", \"entriesChecked\": " << result.entriesChecked
             << ", \"stateDigest\": \"" << std::hex
             << result.stateDigest << std::dec << "\"";
        if (!result.ok())
            json << ", \"failure\": \""
                 << sweep::jsonEscape(result.failure) << "\"";
        json << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"ok\": " << (all_ok ? "true" : "false")
         << "\n}\n";

    std::ofstream file(path);
    if (!file) {
        std::cerr << "crash_recovery_bench: cannot write " << path
                  << "\n";
        return 1;
    }
    file << json.str();
    std::cout << (all_ok ? "every crash point recovered "
                           "consistently\n"
                         : "RECOVERY FAILURE — see above\n")
              << "report: " << path << "\n";
    if (!cli->metricsOutPath.empty())
        telemetry::writeMetricsFile(
            telemetry::Registry::global().snapshot(),
            cli->metricsOutPath);
    return all_ok ? 0 : 1;
}
