/**
 * @file
 * Regenerates paper Figure 11: seek amplification factor of
 * log-structured translation, alone and combined with each of the
 * three seek-reduction mechanisms, for the MSR and CloudPhysics
 * workload sets. The selective cache is 64 MB, as in the paper's
 * evaluation (§V).
 *
 * Usage: fig11_saf [scale] [seed] [--paranoid]
 *
 * With --paranoid, every replay runs under a ValidatingObserver in
 * paranoid mode: the first replay-invariant violation aborts the
 * figure with the offending op, guaranteeing the published numbers
 * came from a self-consistent replay.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "analysis/validating_observer.h"
#include "stl/simulator.h"
#include "workloads/profiles.h"

namespace
{

using namespace logseek;

/** Set by --paranoid: validate every replayed op. */
bool g_paranoid = false;

stl::SimResult
runOne(const stl::SimConfig &config, const trace::Trace &trace)
{
    stl::Simulator simulator(config);
    analysis::ValidatingObserver validator({.paranoid = true});
    if (g_paranoid)
        simulator.addObserver(&validator);
    return simulator.run(trace);
}

stl::SimConfig
makeConfig(bool defrag, bool prefetch, bool cache)
{
    stl::SimConfig config;
    config.translation = stl::TranslationKind::LogStructured;
    if (defrag)
        config.defrag = stl::DefragConfig{};
    if (prefetch)
        config.prefetch = stl::PrefetchConfig{};
    if (cache)
        config.cache = stl::SelectiveCacheConfig{64 * kMiB};
    return config;
}

void
runSuite(const std::string &suite,
         const std::vector<std::string> &names,
         const workloads::ProfileOptions &options)
{
    std::cout << "Figure 11" << (suite == "MSR" ? "a" : "b") << ": "
              << suite << " workloads, seek amplification factor "
                 "(total seeks vs. conventional)\n\n";

    analysis::TextTable table({"workload", "LS", "LS+defrag",
                               "LS+prefetch", "LS+cache(64MB)",
                               "LS+all"});
    for (const auto &name : names) {
        const trace::Trace trace =
            workloads::makeWorkload(name, options);

        stl::SimConfig baseline;
        baseline.translation = stl::TranslationKind::Conventional;
        const stl::SimResult nols = runOne(baseline, trace);

        std::vector<std::string> row{name};
        for (const auto &config :
             {makeConfig(false, false, false),
              makeConfig(true, false, false),
              makeConfig(false, true, false),
              makeConfig(false, false, true),
              makeConfig(true, true, true)}) {
            const stl::SimResult result = runOne(config, trace);
            row.push_back(analysis::formatDouble(
                stl::seekAmplification(nols, result)));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    workloads::ProfileOptions options;
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--paranoid") == 0) {
            g_paranoid = true;
        } else if (std::strncmp(argv[i], "--", 2) == 0) {
            std::cerr << "unknown option: " << argv[i]
                      << "\nusage: fig11_saf [scale] [seed] "
                         "[--paranoid]\n";
            return 2;
        } else if (positional == 0) {
            options.scale = std::atof(argv[i]);
            ++positional;
        } else {
            options.seed =
                static_cast<std::uint64_t>(std::atoll(argv[i]));
            ++positional;
        }
    }
    if (g_paranoid)
        std::cout << "(paranoid mode: replay invariants checked "
                     "on every op)\n\n";

    runSuite("MSR", workloads::msrWorkloadNames(), options);
    runSuite("CloudPhysics", workloads::cloudPhysicsWorkloadNames(),
             options);

    std::cout << "Paper reference shapes: MSR SAF < 1 except usr_1 "
                 "and hm_1; most CloudPhysics workloads SAF > 1 "
                 "(w91 worst); defragmentation can hurt (w20); "
                 "prefetching helps mis-ordered workloads (w84, "
                 "w95, w91); selective caching lowest on average.\n";
    return 0;
}
