/**
 * @file
 * Regenerates paper Figure 11: seek amplification factor of
 * log-structured translation, alone and combined with each of the
 * three seek-reduction mechanisms, for the MSR and CloudPhysics
 * workload sets. The selective cache is 64 MB, as in the paper's
 * evaluation (§V).
 *
 * Usage: fig11_saf [scale] [seed] [--jobs N] [--json[=path]]
 *        [--csv[=path]] [--paranoid]
 *
 * With --paranoid, every replay runs under a ValidatingObserver in
 * paranoid mode: the first replay-invariant violation aborts the
 * figure with the offending op, guaranteeing the published numbers
 * came from a self-consistent replay.
 */

#include <iostream>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "stl/simulator.h"
#include "sweep/cli.h"
#include "sweep/sweep_runner.h"
#include "workloads/profiles.h"

namespace
{

using namespace logseek;

stl::SimConfig
makeConfig(bool defrag, bool prefetch, bool cache)
{
    stl::SimConfig config;
    config.translation = stl::TranslationKind::LogStructured;
    if (defrag)
        config.defrag = stl::DefragConfig{};
    if (prefetch)
        config.prefetch = stl::PrefetchConfig{};
    if (cache)
        config.cache = stl::SelectiveCacheConfig{64 * kMiB};
    return config;
}

std::vector<sweep::ConfigSpec>
makeConfigs()
{
    stl::SimConfig baseline;
    baseline.translation = stl::TranslationKind::Conventional;
    return {
        sweep::ConfigSpec::fixed("NoLS", baseline),
        sweep::ConfigSpec::fixed("LS", makeConfig(false, false, false)),
        sweep::ConfigSpec::fixed("LS+defrag",
                                 makeConfig(true, false, false)),
        sweep::ConfigSpec::fixed("LS+prefetch",
                                 makeConfig(false, true, false)),
        sweep::ConfigSpec::fixed("LS+cache(64MB)",
                                 makeConfig(false, false, true)),
        sweep::ConfigSpec::fixed("LS+all", makeConfig(true, true, true)),
    };
}

void
printSuite(const std::string &suite,
           const std::vector<std::string> &names, std::size_t offset,
           const sweep::SweepResult &sweep)
{
    std::cout << "Figure 11" << (suite == "MSR" ? "a" : "b") << ": "
              << suite << " workloads, seek amplification factor "
                 "(total seeks vs. conventional)\n\n";

    analysis::TextTable table({"workload", "LS", "LS+defrag",
                               "LS+prefetch", "LS+cache(64MB)",
                               "LS+all"});
    for (std::size_t w = 0; w < names.size(); ++w) {
        std::vector<std::string> row{names[w]};
        for (std::size_t c = 1; c < sweep.configs.size(); ++c)
            row.push_back(
                analysis::formatRatio(sweep.safVs(offset + w, c)));
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const auto cli = sweep::parseBenchCli(
        argc, argv, sweep::benchUsage("fig11_saf"));
    if (!cli)
        return 2;
    if (cli->paranoid)
        std::cout << "(paranoid mode: replay invariants checked "
                     "on every op)\n\n";

    const std::vector<std::string> msr = workloads::msrWorkloadNames();
    const std::vector<std::string> cloud =
        workloads::cloudPhysicsWorkloadNames();

    std::vector<sweep::WorkloadSpec> workload_specs;
    for (const auto &name : msr)
        workload_specs.push_back(
            sweep::WorkloadSpec::profile(name, cli->profile));
    for (const auto &name : cloud)
        workload_specs.push_back(
            sweep::WorkloadSpec::profile(name, cli->profile));

    sweep::SweepOptions options = cli->sweepOptions();
    sweep::SweepRunner runner(std::move(workload_specs), makeConfigs(),
                              std::move(options));
    const sweep::SweepResult sweep = runner.run();

    printSuite("MSR", msr, 0, sweep);
    printSuite("CloudPhysics", cloud, msr.size(), sweep);

    std::cout << "Paper reference shapes: MSR SAF < 1 except usr_1 "
                 "and hm_1; most CloudPhysics workloads SAF > 1 "
                 "(w91 worst); defragmentation can hurt (w20); "
                 "prefetching helps mis-ordered workloads (w84, "
                 "w95, w91); selective caching lowest on average.\n";

    cli->emitReports(sweep);
    return 0;
}
