/**
 * @file
 * Ablation: opportunistic-defragmentation thresholds. The paper
 * (§IV-A) proposes limiting rewrite overhead by defragmenting only
 * ranges with N or more fragments, or only after k or more
 * fragmented accesses. This sweep shows the SAF across (N, k) for
 * workloads where defragmentation helps (w91, usr_1, hm_1) and
 * where it hurts (w20, w93, src2_2).
 *
 * Usage: ablation_defrag [scale] [seed] [--jobs N] [--json[=path]]
 *        [--csv[=path]] [--paranoid]
 */

#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "saf_sweep.h"

int
main(int argc, char **argv)
{
    using namespace logseek;

    const auto cli = sweep::parseBenchCli(
        argc, argv, sweep::benchUsage("ablation_defrag"),
        0.01);
    if (!cli)
        return 2;

    const std::vector<std::pair<std::uint32_t, std::uint32_t>>
        settings{{2, 1}, {4, 1}, {8, 1}, {2, 2}, {2, 4}, {4, 2}};

    std::cout << "Defragmentation threshold ablation "
                 "(SAF; N = min fragments, k = min accesses)\n\n";

    std::vector<sweep::ConfigSpec> configs{
        bench::conventionalBaseline(),
        sweep::ConfigSpec::fixed("LS", bench::logStructured())};
    for (const auto &[n, k] : settings) {
        stl::SimConfig config = bench::logStructured();
        config.defrag =
            stl::DefragConfig{.minFragments = n, .minAccesses = k};
        configs.push_back(sweep::ConfigSpec::fixed(
            "N=" + std::to_string(n) + ",k=" + std::to_string(k),
            std::move(config)));
    }

    const sweep::SweepResult sweep = bench::runSafTable(
        {"w91", "usr_1", "hm_1", "w20", "w93", "src2_2"},
        std::move(configs), *cli);

    std::cout << "\nExpected shape: thresholds trade rewrite "
                 "overhead against payback — raising k protects "
                 "scan-once workloads (w20, w93, src2_2) while "
                 "keeping most of the benefit on re-read workloads "
                 "(w91, hm_1).\n";
    cli->emitReports(sweep);
    return 0;
}
