/**
 * @file
 * Ablation: opportunistic-defragmentation thresholds. The paper
 * (§IV-A) proposes limiting rewrite overhead by defragmenting only
 * ranges with N or more fragments, or only after k or more
 * fragmented accesses. This sweep shows the SAF across (N, k) for
 * workloads where defragmentation helps (w91, usr_1, hm_1) and
 * where it hurts (w20, w93, src2_2).
 *
 * Usage: ablation_defrag [scale] [seed]
 */

#include <cstdlib>
#include <iostream>

#include "analysis/report.h"
#include "stl/simulator.h"
#include "workloads/profiles.h"

int
main(int argc, char **argv)
{
    using namespace logseek;

    workloads::ProfileOptions options;
    options.scale = argc > 1 ? std::atof(argv[1]) : 0.01;
    if (argc > 2)
        options.seed =
            static_cast<std::uint64_t>(std::atoll(argv[2]));

    const std::vector<std::pair<std::uint32_t, std::uint32_t>>
        settings{{2, 1}, {4, 1}, {8, 1}, {2, 2}, {2, 4}, {4, 2}};

    std::cout << "Defragmentation threshold ablation "
                 "(SAF; N = min fragments, k = min accesses)\n\n";
    std::vector<std::string> headers{"workload", "LS"};
    for (const auto &[n, k] : settings)
        headers.push_back("N=" + std::to_string(n) +
                          ",k=" + std::to_string(k));
    analysis::TextTable table(headers);

    for (const char *name :
         {"w91", "usr_1", "hm_1", "w20", "w93", "src2_2"}) {
        const trace::Trace trace =
            workloads::makeWorkload(name, options);

        stl::SimConfig baseline;
        baseline.translation = stl::TranslationKind::Conventional;
        const stl::SimResult nols =
            stl::Simulator(baseline).run(trace);

        stl::SimConfig plain;
        plain.translation = stl::TranslationKind::LogStructured;
        std::vector<std::string> row{
            name, analysis::formatDouble(stl::seekAmplification(
                      nols, stl::Simulator(plain).run(trace)))};

        for (const auto &[n, k] : settings) {
            stl::SimConfig config = plain;
            config.defrag =
                stl::DefragConfig{.minFragments = n,
                                  .minAccesses = k};
            row.push_back(analysis::formatDouble(
                stl::seekAmplification(
                    nols, stl::Simulator(config).run(trace))));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: thresholds trade rewrite "
                 "overhead against payback — raising k protects "
                 "scan-once workloads (w20, w93, src2_2) while "
                 "keeping most of the benefit on re-read workloads "
                 "(w91, hm_1).\n";
    return 0;
}
