/**
 * @file
 * Regenerates paper Figure 7: examples of highly non-sequential LBA
 * write patterns. For hm_1 the paper shows contiguous ranges
 * written in descending/chunked orders; for w106 small-scale
 * randomness. This harness prints a window of (write index, LBA)
 * pairs from each generated trace — the raw series behind the
 * scatter plots.
 *
 * Usage: fig7_write_patterns [scale] [seed]
 */

#include <cstdlib>
#include <iostream>

#include "analysis/misordered.h"
#include "analysis/report.h"
#include "workloads/profiles.h"

namespace
{

using namespace logseek;

void
runWorkload(const std::string &name,
            const workloads::ProfileOptions &options,
            std::size_t window)
{
    const trace::Trace trace = workloads::makeWorkload(name, options);

    // Find the densest run of mis-ordered writes to excerpt: scan
    // write ops and pick the first window that contains a
    // descending adjacent pair.
    std::vector<std::pair<std::size_t, Lba>> writes;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (trace[i].isWrite())
            writes.emplace_back(writes.size(),
                                trace[i].extent.start);
    }

    std::size_t begin = 0;
    for (std::size_t i = 1; i < writes.size(); ++i) {
        if (writes[i].second < writes[i - 1].second &&
            writes[i - 1].second - writes[i].second < 4096) {
            begin = i > window / 4 ? i - window / 4 : 0;
            break;
        }
    }

    std::cout << "# Figure 7: " << name
              << " write-operation LBA series (excerpt)\n";
    std::cout << "# write_op\tlba\n";
    const std::size_t end = std::min(begin + window, writes.size());
    for (std::size_t i = begin; i < end; ++i)
        std::cout << writes[i].first << "\t" << writes[i].second
                  << "\n";

    const auto stats = analysis::countMisorderedWrites(trace);
    std::cout << "# mis-ordered write fraction over whole trace: "
              << analysis::formatDouble(stats.fraction() * 100.0, 2)
              << "%\n\n";
}

} // namespace

int
main(int argc, char **argv)
{
    workloads::ProfileOptions options;
    if (argc > 1)
        options.scale = std::atof(argv[1]);
    if (argc > 2)
        options.seed =
            static_cast<std::uint64_t>(std::atoll(argv[2]));

    runWorkload("hm_1", options, 64);
    runWorkload("w106", options, 64);
    return 0;
}
