/**
 * @file
 * Regenerates paper Figure 7: examples of highly non-sequential LBA
 * write patterns. For hm_1 the paper shows contiguous ranges
 * written in descending/chunked orders; for w106 small-scale
 * randomness. This harness prints a window of (write index, LBA)
 * pairs from each generated trace — the raw series behind the
 * scatter plots.
 *
 * Usage: fig7_write_patterns [scale] [seed] [--jobs N]
 */

#include <algorithm>
#include <iostream>
#include <sstream>
#include <utility>
#include <vector>

#include "analysis/misordered.h"
#include "analysis/report.h"
#include "sweep/cli.h"
#include "sweep/sweep_runner.h"
#include "workloads/profiles.h"

namespace
{

using namespace logseek;

void
excerptWrites(std::ostream &out, const std::string &name,
              const trace::Trace &trace, std::size_t window)
{
    // Find the densest run of mis-ordered writes to excerpt: scan
    // write ops and pick the first window that contains a
    // descending adjacent pair.
    std::vector<std::pair<std::size_t, Lba>> writes;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (trace[i].isWrite())
            writes.emplace_back(writes.size(),
                                trace[i].extent.start);
    }

    std::size_t begin = 0;
    for (std::size_t i = 1; i < writes.size(); ++i) {
        if (writes[i].second < writes[i - 1].second &&
            writes[i - 1].second - writes[i].second < 4096) {
            begin = i > window / 4 ? i - window / 4 : 0;
            break;
        }
    }

    out << "# Figure 7: " << name
        << " write-operation LBA series (excerpt)\n";
    out << "# write_op\tlba\n";
    const std::size_t end = std::min(begin + window, writes.size());
    for (std::size_t i = begin; i < end; ++i)
        out << writes[i].first << "\t" << writes[i].second << "\n";

    const auto stats = analysis::countMisorderedWrites(trace);
    out << "# mis-ordered write fraction over whole trace: "
        << analysis::formatDouble(stats.fraction() * 100.0, 2)
        << "%\n\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const auto cli = sweep::parseBenchCli(
        argc, argv, sweep::benchUsage("fig7_write_patterns"));
    if (!cli)
        return 2;

    const std::vector<std::string> names{"hm_1", "w106"};
    constexpr std::size_t kWindow = 64;

    std::vector<sweep::WorkloadSpec> specs;
    for (const auto &name : names)
        specs.push_back(sweep::WorkloadSpec::profile(name, cli->profile));

    // Trace-only sweep: each workload's excerpt renders into its own
    // buffer so the printed order stays fixed whatever the job count.
    std::vector<std::ostringstream> reports(names.size());
    sweep::SweepOptions options = cli->sweepOptions();
    auto chained = std::move(options.onTrace);
    options.onTrace = [&, chained](std::size_t w,
                                   const trace::Trace &trace) {
        if (chained)
            chained(w, trace);
        excerptWrites(reports[w], names[w], trace, kWindow);
    };
    sweep::SweepRunner runner(std::move(specs), {},
                              std::move(options));
    runner.run();

    for (const auto &report : reports)
        std::cout << report.str();
    return 0;
}
