/**
 * @file
 * Ingestion-path benchmark: how fast trace records get from disk
 * (or a generator) into the replay engine.
 *
 * Legs:
 *  - csv_parse:    MSR CSV text -> Trace (trace/msr_csv.h)
 *  - lskt_decode:  row-major binary -> Trace (trace/binary.h)
 *  - lskc_open:    columnar mmap open + full validation
 *  - lskc_iterate: pulling every record through the zero-copy view
 *  - field_parse:  std::from_chars vs strtoull on CSV fields (the
 *                  parser rides from_chars; the ratio is pinned
 *                  here so a regression to locale-aware parsing
 *                  shows up)
 *  - generator:    streaming workload generator record rate
 *  - stream_rss:   peak-RSS growth while replaying a streamed
 *                  workload far larger than its chunk (flat = the
 *                  stream never materializes)
 *
 * The bench self-checks two contracts and exits non-zero when they
 * do not hold: LSKC mmap-open throughput is at least 10x the CSV
 * parse, and replaying the mmap'd file is byte-identical
 * (SimResult operator==, including seekTimeSec bits) to replaying
 * the same records from RAM.
 *
 * --json=PATH writes the "ingest" section (BENCH_ingest.json is
 * the tracked file, BENCH_ingest.smoke.json the CI artifact);
 * --smoke shrinks the workload for CI.
 */

#include <sys/resource.h>

#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "stl/simulator.h"
#include "trace/binary.h"
#include "trace/lskc.h"
#include "trace/msr_csv.h"
#include "util/random.h"
#include "workloads/stream.h"

namespace
{

using namespace logseek;

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Peak RSS of the process so far, in bytes (Linux: KiB units). */
std::uint64_t
peakRssBytes()
{
    struct rusage usage = {};
    getrusage(RUSAGE_SELF, &usage);
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

std::uint64_t
fileBytes(const std::string &path)
{
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    return ec ? 0 : static_cast<std::uint64_t>(size);
}

struct Leg
{
    double recordsPerSec = 0.0;
    double mbPerSec = 0.0;
};

Leg
leg(std::uint64_t records, std::uint64_t bytes, double seconds,
    int iters)
{
    Leg out;
    if (seconds > 0.0) {
        out.recordsPerSec =
            static_cast<double>(records) * iters / seconds;
        out.mbPerSec = static_cast<double>(bytes) * iters /
                       seconds / 1e6;
    }
    return out;
}

/** One deterministic synthetic trace for the file-format legs. */
trace::Trace
buildTrace(std::uint64_t records)
{
    workloads::StreamSpec spec =
        workloads::mixedStream("ingest-bench", 1, records);
    workloads::WorkloadStream stream(std::move(spec));
    trace::Trace out = trace::materialize(stream);
    return out;
}

stl::SimConfig
replayConfig()
{
    stl::SimConfig config;
    config.translation = stl::TranslationKind::LogStructured;
    return config;
}

std::string
jsonNumber(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.3f", value);
    return buffer;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--json=", 0) == 0) {
            json_path = arg.substr(7);
        } else if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: perf_ingest [--json=PATH] "
                         "[--smoke]\n";
            return 0;
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            return 2;
        }
    }

    const std::uint64_t file_records = smoke ? 60'000 : 400'000;
    const int iters = smoke ? 2 : 5;
    const std::uint64_t stream_chunks = smoke ? 50 : 100;
    const std::uint64_t stream_chunk_records =
        smoke ? 20'000 : 40'000;

    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("perf_ingest." + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);
    const std::string csv_path = (dir / "trace.csv").string();
    const std::string lskt_path = (dir / "trace.lskt").string();
    const std::string lskc_path = (dir / "trace.lskc").string();

    const trace::Trace source = buildTrace(file_records);
    {
        std::ofstream csv(csv_path, std::ios::binary);
        trace::writeMsrCsv(csv, source, "bench", 0);
    }
    trace::tryWriteBinaryTraceFile(lskt_path, source).orFatal();
    trace::tryWriteLskcFile(lskc_path, source).orFatal();

    bool ok = true;

    // --- csv_parse ------------------------------------------------
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
        auto parsed = trace::tryParseMsrCsvFile(csv_path, "bench");
        parsed.status().orFatal();
        if (parsed.value().trace.size() != source.size()) {
            std::cerr << "csv_parse: record count mismatch\n";
            ok = false;
        }
    }
    const Leg csv_parse = leg(source.size(), fileBytes(csv_path),
                              secondsSince(start), iters);

    // --- lskt_decode ----------------------------------------------
    start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i)
        trace::tryReadBinaryTraceFile(lskt_path)
            .status()
            .orFatal();
    const Leg lskt_decode = leg(source.size(),
                                fileBytes(lskt_path),
                                secondsSince(start), iters);

    // --- lskc_open (map + full validation, no record pull) --------
    const int open_iters = iters * 4;
    start = std::chrono::steady_clock::now();
    for (int i = 0; i < open_iters; ++i)
        trace::LskcSource::tryOpen(lskc_path).status().orFatal();
    const Leg lskc_open = leg(source.size(), fileBytes(lskc_path),
                              secondsSince(start), open_iters);

    // --- lskc_iterate (zero-copy pull of every record) ------------
    auto lskc_source =
        trace::LskcSource::tryOpen(lskc_path).value();
    start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
        auto view = lskc_source->open();
        trace::IoEventBatch batch;
        std::uint64_t pulled = 0;
        std::uint64_t timestamps = 0;
        for (;;) {
            const std::size_t n = view->next(batch, 4096);
            if (n == 0)
                break;
            pulled += n;
            timestamps += batch.timestamp(n - 1);
        }
        if (pulled != source.size()) {
            std::cerr << "lskc_iterate: short pull\n";
            ok = false;
        }
    }
    const Leg lskc_iterate = leg(source.size(),
                                 fileBytes(lskc_path),
                                 secondsSince(start), iters);

    // --- field_parse micro (from_chars vs strtoull) ---------------
    std::vector<std::string> fields;
    {
        Rng rng(7);
        fields.reserve(100'000);
        for (int i = 0; i < 100'000; ++i)
            fields.push_back(std::to_string(
                rng.nextUint(1'000'000'000'000ULL)));
    }
    std::uint64_t sink = 0;
    start = std::chrono::steady_clock::now();
    for (const std::string &field : fields) {
        std::uint64_t value = 0;
        std::from_chars(field.data(),
                        field.data() + field.size(), value);
        sink += value;
    }
    const double from_chars_sec = secondsSince(start);
    start = std::chrono::steady_clock::now();
    for (const std::string &field : fields)
        sink += std::strtoull(field.c_str(), nullptr, 10);
    const double strtoull_sec = secondsSince(start);
    const double field_speedup =
        from_chars_sec > 0.0 ? strtoull_sec / from_chars_sec
                             : 0.0;

    // --- generator (streaming record rate) ------------------------
    workloads::WorkloadStream generator(workloads::mixedStream(
        "ingest-gen", 20, stream_chunk_records));
    start = std::chrono::steady_clock::now();
    {
        trace::IoEventBatch batch;
        std::uint64_t pulled = 0;
        for (;;) {
            const std::size_t n = generator.next(batch, 4096);
            if (n == 0)
                break;
            pulled += n;
        }
        sink += pulled;
    }
    const double generator_records =
        static_cast<double>(20 * stream_chunk_records);
    const double generator_sec = secondsSince(start);
    const double generator_rate =
        generator_sec > 0.0 ? generator_records / generator_sec
                            : 0.0;

    // --- replay byte-identity (RAM vs mmap) -----------------------
    stl::Simulator simulator(replayConfig());
    const stl::SimResult from_ram = simulator.run(source);
    auto lskc_view = lskc_source->open();
    const stl::SimResult from_mmap = simulator.run(*lskc_view);
    const bool identical = from_ram == from_mmap;
    if (!identical) {
        std::cerr << "FAIL: LSKC mmap replay diverged from the "
                     "in-RAM replay\n";
        ok = false;
    }

    // --- stream_rss (flat-memory streaming replay) ----------------
    const std::uint64_t stream_records =
        stream_chunks * stream_chunk_records;
    const std::uint64_t materialized_bytes =
        stream_records * sizeof(trace::IoRecord);
    const std::uint64_t rss_before = peakRssBytes();
    workloads::WorkloadStream big(workloads::mixedStream(
        "ingest-stream", stream_chunks, stream_chunk_records));
    const stl::SimResult streamed = simulator.run(big);
    const std::uint64_t rss_after = peakRssBytes();
    const std::uint64_t rss_delta = rss_after - rss_before;
    sink += streamed.reads;
    // A stream that secretly materialized would grow the peak by
    // ~materialized_bytes; flat means a small fraction of it.
    const bool rss_flat = rss_delta < materialized_bytes / 4;
    if (!rss_flat) {
        std::cerr << "FAIL: streaming replay grew peak RSS by "
                  << rss_delta << " bytes ("
                  << materialized_bytes
                  << " bytes materialized equivalent)\n";
        ok = false;
    }

    // Records/s is the unit comparable across formats (a CSV
    // record is ~2.5x the bytes of an LSKC one).
    const double open_vs_csv =
        csv_parse.recordsPerSec > 0.0
            ? lskc_open.recordsPerSec / csv_parse.recordsPerSec
            : 0.0;
    if (open_vs_csv < 10.0) {
        std::cerr << "FAIL: LSKC mmap-open throughput is only "
                  << jsonNumber(open_vs_csv)
                  << "x the CSV parse (>= 10x required)\n";
        ok = false;
    }

    std::ostringstream json;
    json << "{\n  \"ingest\": {\n";
    json << "    \"records\": " << source.size() << ",\n";
    json << "    \"csv_parse\": {\"records_per_sec\": "
         << jsonNumber(csv_parse.recordsPerSec)
         << ", \"mb_per_sec\": "
         << jsonNumber(csv_parse.mbPerSec) << "},\n";
    json << "    \"lskt_decode\": {\"records_per_sec\": "
         << jsonNumber(lskt_decode.recordsPerSec)
         << ", \"mb_per_sec\": "
         << jsonNumber(lskt_decode.mbPerSec) << "},\n";
    json << "    \"lskc_open\": {\"records_per_sec\": "
         << jsonNumber(lskc_open.recordsPerSec)
         << ", \"mb_per_sec\": "
         << jsonNumber(lskc_open.mbPerSec) << "},\n";
    json << "    \"lskc_iterate\": {\"records_per_sec\": "
         << jsonNumber(lskc_iterate.recordsPerSec)
         << ", \"mb_per_sec\": "
         << jsonNumber(lskc_iterate.mbPerSec) << "},\n";
    json << "    \"lskc_open_vs_csv_parse\": "
         << jsonNumber(open_vs_csv) << ",\n";
    json << "    \"field_parse\": {\"from_chars_sec\": "
         << jsonNumber(from_chars_sec * 1e3)
         << ", \"strtoull_sec\": "
         << jsonNumber(strtoull_sec * 1e3)
         << ", \"speedup\": " << jsonNumber(field_speedup)
         << "},\n";
    json << "    \"generator_records_per_sec\": "
         << jsonNumber(generator_rate) << ",\n";
    json << "    \"lskc_replay_identical\": "
         << (identical ? "true" : "false") << ",\n";
    json << "    \"stream_rss\": {\"records\": " << stream_records
         << ", \"materialized_mb\": "
         << jsonNumber(static_cast<double>(materialized_bytes) /
                       1e6)
         << ", \"rss_delta_mb\": "
         << jsonNumber(static_cast<double>(rss_delta) / 1e6)
         << ", \"flat\": " << (rss_flat ? "true" : "false")
         << "}\n";
    json << "  }\n}\n";

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        out << json.str();
        if (!out) {
            std::cerr << "cannot write " << json_path << "\n";
            ok = false;
        }
    }

    std::cout << "perf_ingest (" << source.size()
              << " records, sink " << (sink & 1) << ")\n"
              << "  csv_parse     "
              << jsonNumber(csv_parse.mbPerSec) << " MB/s\n"
              << "  lskt_decode   "
              << jsonNumber(lskt_decode.mbPerSec) << " MB/s\n"
              << "  lskc_open     "
              << jsonNumber(lskc_open.mbPerSec) << " MB/s ("
              << jsonNumber(open_vs_csv) << "x csv)\n"
              << "  lskc_iterate  "
              << jsonNumber(lskc_iterate.mbPerSec) << " MB/s\n"
              << "  field_parse   " << jsonNumber(field_speedup)
              << "x vs strtoull\n"
              << "  generator     " << jsonNumber(generator_rate)
              << " records/s\n"
              << "  replay identical: "
              << (identical ? "yes" : "NO") << "\n"
              << "  stream RSS delta "
              << jsonNumber(static_cast<double>(rss_delta) / 1e6)
              << " MB over "
              << jsonNumber(static_cast<double>(
                                materialized_bytes) /
                            1e6)
              << " MB materialized equivalent ("
              << (rss_flat ? "flat" : "NOT FLAT") << ")\n";

    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    return ok ? 0 : 1;
}
