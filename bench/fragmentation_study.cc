/**
 * @file
 * Extension experiment: static vs dynamic fragmentation (§IV-A).
 *
 * The paper distinguishes *static* fragmentation (how many physical
 * extents the LBA space has been split into — the cost of a
 * hypothetical full sequential read) from *dynamic* fragmentation
 * (fragments actually touched by the workload's reads), and argues
 * opportunistic defragmentation should target only the latter. This
 * harness measures both, plus the fraction of static fragments that
 * any fragmented read ever touches — the paper's "some
 * fragmentation may never affect a read operation".
 *
 * Usage: fragmentation_study [scale] [seed]
 */

#include <cstdlib>
#include <iostream>

#include "analysis/observers.h"
#include "analysis/report.h"
#include "stl/simulator.h"
#include "workloads/profiles.h"

int
main(int argc, char **argv)
{
    using namespace logseek;

    workloads::ProfileOptions options;
    if (argc > 1)
        options.scale = std::atof(argv[1]);
    if (argc > 2)
        options.seed =
            static_cast<std::uint64_t>(std::atoll(argv[2]));

    std::cout << "Static vs dynamic fragmentation under LS "
                 "translation\n\n";
    analysis::TextTable table(
        {"workload", "static frags", "read-touched frags",
         "touched/static", "fragmented reads", "frags/frag-read (p50)",
         "fragment accesses"});

    for (const char *name : {"usr_0", "usr_1", "hm_1", "src2_2",
                             "w20", "w91", "w36", "w33"}) {
        const trace::Trace trace =
            workloads::makeWorkload(name, options);

        analysis::FragmentPopularity popularity;
        analysis::FragmentedReadCdf frag_cdf;
        stl::SimConfig config;
        config.translation = stl::TranslationKind::LogStructured;
        stl::Simulator simulator(config);
        simulator.addObserver(&popularity);
        simulator.addObserver(&frag_cdf);
        const stl::SimResult result = simulator.run(trace);

        // Ratio of fragments ever touched by a fragmented read to
        // the final static fragment count. Above 1.0 means the
        // map churned: overwrites retired fragments that had
        // already been read (popularity counts historical
        // fragments, the static count is the final snapshot).
        const double touched_ratio =
            result.staticFragments == 0
                ? 0.0
                : static_cast<double>(popularity.fragmentCount()) /
                      static_cast<double>(result.staticFragments);
        const std::string p50 =
            frag_cdf.fragmentedReads() == 0
                ? "-"
                : analysis::formatDouble(
                      frag_cdf.fragmentsPerRead().percentile(0.5), 0);
        table.addRow({name, std::to_string(result.staticFragments),
                      std::to_string(popularity.fragmentCount()),
                      analysis::formatDouble(touched_ratio, 2),
                      std::to_string(frag_cdf.fragmentedReads()),
                      p50,
                      std::to_string(popularity.totalAccesses())});
    }
    table.print(std::cout);

    std::cout
        << "\nExpected shape: write-dominant workloads (w36, "
           "src2_2) build large static fragmentation that reads "
           "mostly never touch (ratio well below 1), which is why "
           "opportunistic (read-triggered) defragmentation beats "
           "wholesale defragmentation on overhead; ratios above 1 "
           "mean the map churned during the run.\n";
    return 0;
}
