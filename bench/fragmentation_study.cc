/**
 * @file
 * Extension experiment: static vs dynamic fragmentation (§IV-A).
 *
 * The paper distinguishes *static* fragmentation (how many physical
 * extents the LBA space has been split into — the cost of a
 * hypothetical full sequential read) from *dynamic* fragmentation
 * (fragments actually touched by the workload's reads), and argues
 * opportunistic defragmentation should target only the latter. This
 * harness measures both, plus the fraction of static fragments that
 * any fragmented read ever touches — the paper's "some
 * fragmentation may never affect a read operation".
 *
 * Usage: fragmentation_study [scale] [seed] [--jobs N]
 *        [--json[=path]] [--csv[=path]] [--paranoid]
 */

#include <iostream>
#include <memory>
#include <vector>

#include "analysis/observers.h"
#include "analysis/report.h"
#include "stl/simulator.h"
#include "sweep/cli.h"
#include "sweep/sweep_runner.h"
#include "workloads/profiles.h"

int
main(int argc, char **argv)
{
    using namespace logseek;

    const auto cli = sweep::parseBenchCli(
        argc, argv, sweep::benchUsage("fragmentation_study"));
    if (!cli)
        return 2;

    const std::vector<std::string> names{"usr_0", "usr_1", "hm_1",
                                         "src2_2", "w20", "w91",
                                         "w36", "w33"};
    std::vector<sweep::WorkloadSpec> specs;
    for (const auto &name : names)
        specs.push_back(sweep::WorkloadSpec::profile(name, cli->profile));

    stl::SimConfig ls_config;
    ls_config.translation = stl::TranslationKind::LogStructured;

    sweep::SweepOptions options = cli->sweepOptions();
    options.observerFactory =
        cli->observerFactory([](const sweep::RunKey &) {
            std::vector<std::unique_ptr<stl::SimObserver>> obs;
            obs.push_back(
                std::make_unique<analysis::FragmentPopularity>());
            obs.push_back(
                std::make_unique<analysis::FragmentedReadCdf>());
            return obs;
        });
    sweep::SweepRunner runner(
        std::move(specs),
        {sweep::ConfigSpec::fixed("LS", ls_config)},
        std::move(options));
    const sweep::SweepResult sweep = runner.run();

    std::cout << "Static vs dynamic fragmentation under LS "
                 "translation\n\n";
    analysis::TextTable table(
        {"workload", "static frags", "read-touched frags",
         "touched/static", "fragmented reads", "frags/frag-read (p50)",
         "fragment accesses"});

    for (std::size_t w = 0; w < names.size(); ++w) {
        const sweep::RunRow &row = sweep.row(w, 0);
        const stl::SimResult &result = row.result;
        const auto &popularity =
            *sweep::findObserver<analysis::FragmentPopularity>(row);
        const auto &frag_cdf =
            *sweep::findObserver<analysis::FragmentedReadCdf>(row);

        // Ratio of fragments ever touched by a fragmented read to
        // the final static fragment count. Above 1.0 means the
        // map churned: overwrites retired fragments that had
        // already been read (popularity counts historical
        // fragments, the static count is the final snapshot).
        const double touched_ratio =
            result.staticFragments == 0
                ? 0.0
                : static_cast<double>(popularity.fragmentCount()) /
                      static_cast<double>(result.staticFragments);
        const std::string p50 =
            frag_cdf.fragmentedReads() == 0
                ? "-"
                : analysis::formatDouble(
                      frag_cdf.fragmentsPerRead().percentile(0.5), 0);
        table.addRow({names[w],
                      std::to_string(result.staticFragments),
                      std::to_string(popularity.fragmentCount()),
                      analysis::formatDouble(touched_ratio, 2),
                      std::to_string(frag_cdf.fragmentedReads()),
                      p50,
                      std::to_string(popularity.totalAccesses())});
    }
    table.print(std::cout);

    std::cout
        << "\nExpected shape: write-dominant workloads (w36, "
           "src2_2) build large static fragmentation that reads "
           "mostly never touch (ratio well below 1), which is why "
           "opportunistic (read-triggered) defragmentation beats "
           "wholesale defragmentation on overhead; ratios above 1 "
           "mean the map churned during the run.\n";
    cli->emitReports(sweep);
    return 0;
}
