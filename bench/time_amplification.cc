/**
 * @file
 * Extension experiment: seek-time-weighted amplification.
 *
 * The paper's metric is seek *count*, but §III notes that seek cost
 * varies with length: short seeks cost only rotational skip, long
 * seeks a head move plus half a rotation, and short *backward*
 * seeks a missed rotation. This harness reports, next to the SAF,
 * the ratio of estimated positioning time (analytic model,
 * disk/seek_time.h) — showing where counting seeks under- or
 * over-states the real penalty.
 *
 * Usage: time_amplification [scale] [seed] [--jobs N]
 *        [--json[=path]] [--csv[=path]] [--paranoid]
 */

#include <iostream>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "stl/simulator.h"
#include "sweep/cli.h"
#include "sweep/sweep_runner.h"
#include "workloads/profiles.h"

int
main(int argc, char **argv)
{
    using namespace logseek;

    const auto cli = sweep::parseBenchCli(
        argc, argv, sweep::benchUsage("time_amplification"),
        0.01);
    if (!cli)
        return 2;

    const std::vector<std::string> names{"usr_1", "hm_1", "w91",
                                         "w84", "w20", "w36", "w55"};
    std::vector<sweep::WorkloadSpec> specs;
    for (const auto &name : names)
        specs.push_back(sweep::WorkloadSpec::profile(name, cli->profile));

    stl::SimConfig baseline;
    baseline.translation = stl::TranslationKind::Conventional;
    stl::SimConfig ls;
    ls.translation = stl::TranslationKind::LogStructured;
    stl::SimConfig cached = ls;
    cached.cache = stl::SelectiveCacheConfig{64 * kMiB};

    sweep::SweepOptions options = cli->sweepOptions();
    sweep::SweepRunner runner(
        std::move(specs),
        {sweep::ConfigSpec::fixed("NoLS", baseline),
         sweep::ConfigSpec::fixed("LS", ls),
         sweep::ConfigSpec::fixed("LS+cache(64MB)", cached)},
        std::move(options));
    const sweep::SweepResult sweep = runner.run();

    std::cout << "Seek-count vs seek-time amplification (time from "
                 "the analytic model: 180 MB/s, 7200 rpm, 1-25 ms "
                 "head moves)\n\n";
    analysis::TextTable table(
        {"workload", "SAF (count)", "TAF (time)", "NoLS time (s)",
         "LS time (s)", "LS+cache TAF"});

    for (std::size_t w = 0; w < names.size(); ++w) {
        const stl::SimResult &nols = sweep.row(w, 0).result;
        const stl::SimResult &log = sweep.row(w, 1).result;
        const stl::SimResult &ls_cache = sweep.row(w, 2).result;

        auto taf = [&](const stl::SimResult &result) {
            return nols.seekTimeSec == 0.0
                       ? 0.0
                       : result.seekTimeSec / nols.seekTimeSec;
        };
        table.addRow(
            {names[w],
             analysis::formatRatio(sweep.safVs(w, 1)),
             analysis::formatDouble(taf(log)),
             analysis::formatDouble(nols.seekTimeSec, 2),
             analysis::formatDouble(log.seekTimeSec, 2),
             analysis::formatDouble(taf(ls_cache))});
    }
    table.print(std::cout);

    std::cout
        << "\nReading the table: when LS turns a few long seeks "
           "into many short ones, time amplification is milder "
           "than seek-count amplification; when it adds missed "
           "rotations (backward hops), time amplification is "
           "harsher.\n";
    cli->emitReports(sweep);
    return 0;
}
