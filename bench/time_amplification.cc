/**
 * @file
 * Extension experiment: seek-time-weighted amplification.
 *
 * The paper's metric is seek *count*, but §III notes that seek cost
 * varies with length: short seeks cost only rotational skip, long
 * seeks a head move plus half a rotation, and short *backward*
 * seeks a missed rotation. This harness reports, next to the SAF,
 * the ratio of estimated positioning time (analytic model,
 * disk/seek_time.h) — showing where counting seeks under- or
 * over-states the real penalty.
 *
 * Usage: time_amplification [scale] [seed]
 */

#include <cstdlib>
#include <iostream>

#include "analysis/report.h"
#include "stl/simulator.h"
#include "workloads/profiles.h"

int
main(int argc, char **argv)
{
    using namespace logseek;

    workloads::ProfileOptions options;
    options.scale = argc > 1 ? std::atof(argv[1]) : 0.01;
    if (argc > 2)
        options.seed =
            static_cast<std::uint64_t>(std::atoll(argv[2]));

    std::cout << "Seek-count vs seek-time amplification (time from "
                 "the analytic model: 180 MB/s, 7200 rpm, 1-25 ms "
                 "head moves)\n\n";
    analysis::TextTable table(
        {"workload", "SAF (count)", "TAF (time)", "NoLS time (s)",
         "LS time (s)", "LS+cache TAF"});

    for (const char *name : {"usr_1", "hm_1", "w91", "w84", "w20",
                             "w36", "w55"}) {
        const trace::Trace trace =
            workloads::makeWorkload(name, options);

        stl::SimConfig baseline;
        baseline.translation = stl::TranslationKind::Conventional;
        const stl::SimResult nols =
            stl::Simulator(baseline).run(trace);

        stl::SimConfig ls;
        ls.translation = stl::TranslationKind::LogStructured;
        const stl::SimResult log = stl::Simulator(ls).run(trace);

        stl::SimConfig cached = ls;
        cached.cache = stl::SelectiveCacheConfig{64 * kMiB};
        const stl::SimResult ls_cache =
            stl::Simulator(cached).run(trace);

        auto taf = [&](const stl::SimResult &result) {
            return nols.seekTimeSec == 0.0
                       ? 0.0
                       : result.seekTimeSec / nols.seekTimeSec;
        };
        table.addRow(
            {name,
             analysis::formatDouble(
                 stl::seekAmplification(nols, log)),
             analysis::formatDouble(taf(log)),
             analysis::formatDouble(nols.seekTimeSec, 2),
             analysis::formatDouble(log.seekTimeSec, 2),
             analysis::formatDouble(taf(ls_cache))});
    }
    table.print(std::cout);

    std::cout
        << "\nReading the table: when LS turns a few long seeks "
           "into many short ones, time amplification is milder "
           "than seek-count amplification; when it adds missed "
           "rotations (backward hops), time amplification is "
           "harsher.\n";
    return 0;
}
