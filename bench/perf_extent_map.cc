/**
 * @file
 * Google-benchmark microbenchmarks for ExtentMap, the hot data
 * structure of the translation layer: mapping throughput under
 * random updates, translation latency at various fragmentation
 * levels, and the sequential-coalescing fast path.
 */

#include <benchmark/benchmark.h>

#include "stl/extent_map.h"
#include "util/random.h"

namespace
{

using namespace logseek;

void
BM_MapRangeRandom(benchmark::State &state)
{
    const auto space = static_cast<Lba>(state.range(0));
    Rng rng(42);
    stl::ExtentMap map;
    Pba frontier = space;
    for (auto _ : state) {
        const SectorCount count = 1 + rng.nextUint(32);
        const Lba lba = rng.nextUint(space - count);
        map.mapRange(lba, frontier, count);
        frontier += count;
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["entries"] =
        static_cast<double>(map.entryCount());
}
BENCHMARK(BM_MapRangeRandom)->Range(1 << 12, 1 << 22);

void
BM_MapRangeSequential(benchmark::State &state)
{
    stl::ExtentMap map;
    Lba lba = 0;
    Pba frontier = 1ULL << 40;
    for (auto _ : state) {
        map.mapRange(lba, frontier, 8);
        lba += 8;
        frontier += 8;
    }
    state.SetItemsProcessed(state.iterations());
    // The whole log coalesces into one entry.
    state.counters["entries"] =
        static_cast<double>(map.entryCount());
}
BENCHMARK(BM_MapRangeSequential);

void
BM_Translate(benchmark::State &state)
{
    const auto fragments = static_cast<std::uint64_t>(state.range(0));
    constexpr Lba kSpace = 1 << 20;
    Rng rng(7);
    stl::ExtentMap map;
    Pba frontier = kSpace;
    for (std::uint64_t i = 0; i < fragments; ++i) {
        const SectorCount count = 1 + rng.nextUint(16);
        const Lba lba = rng.nextUint(kSpace - count);
        map.mapRange(lba, frontier, count);
        frontier += count;
    }
    constexpr SectorCount kReadSectors = 256;
    for (auto _ : state) {
        const Lba lba = rng.nextUint(kSpace - kReadSectors);
        benchmark::DoNotOptimize(
            map.translate({lba, kReadSectors}));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Translate)->Range(1 << 8, 1 << 18);

void
BM_FragmentCount(benchmark::State &state)
{
    constexpr Lba kSpace = 1 << 20;
    Rng rng(11);
    stl::ExtentMap map;
    Pba frontier = kSpace;
    for (int i = 0; i < 100000; ++i) {
        const SectorCount count = 1 + rng.nextUint(8);
        const Lba lba = rng.nextUint(kSpace - count);
        map.mapRange(lba, frontier, count);
        frontier += count;
    }
    for (auto _ : state) {
        const Lba lba = rng.nextUint(kSpace - 128);
        benchmark::DoNotOptimize(map.fragmentCount({lba, 128}));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FragmentCount);

} // namespace

BENCHMARK_MAIN();
