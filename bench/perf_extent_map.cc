/**
 * @file
 * Microbenchmarks for ExtentMap, the hot data structure of the
 * translation layer: mapping throughput under random updates,
 * translation latency at various fragmentation levels, and the
 * sequential-coalescing fast path.
 *
 * Two modes:
 *  - Default: google-benchmark microbenchmarks.
 *  - --json=PATH: measures the B+-tree ExtentMap against the
 *    preserved std::map ReferenceExtentMap (the seed
 *    implementation) at several fragmentation levels and writes
 *    ns/op plus before/after ratios to the "extent_map" section of
 *    the tracking file (BENCH_extent_map.json), preserving the
 *    "replay" section written by perf_simulator.
 *    --translate-iters=N shrinks the measurement for CI smoke runs.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "stl/extent_map.h"
#include "stl/testing/reference_extent_map.h"
#include "util/random.h"

namespace
{

using namespace logseek;

void
BM_MapRangeRandom(benchmark::State &state)
{
    const auto space = static_cast<Lba>(state.range(0));
    Rng rng(42);
    stl::ExtentMap map;
    Pba frontier = space;
    for (auto _ : state) {
        const SectorCount count = 1 + rng.nextUint(32);
        const Lba lba = rng.nextUint(space - count);
        map.mapRange(lba, frontier, count);
        frontier += count;
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["entries"] =
        static_cast<double>(map.entryCount());
}
BENCHMARK(BM_MapRangeRandom)->Range(1 << 12, 1 << 22);

void
BM_MapRangeSequential(benchmark::State &state)
{
    stl::ExtentMap map;
    Lba lba = 0;
    Pba frontier = 1ULL << 40;
    for (auto _ : state) {
        map.mapRange(lba, frontier, 8);
        lba += 8;
        frontier += 8;
    }
    state.SetItemsProcessed(state.iterations());
    // The whole log coalesces into one entry.
    state.counters["entries"] =
        static_cast<double>(map.entryCount());
}
BENCHMARK(BM_MapRangeSequential);

void
BM_Translate(benchmark::State &state)
{
    const auto fragments = static_cast<std::uint64_t>(state.range(0));
    constexpr Lba kSpace = 1 << 20;
    Rng rng(7);
    stl::ExtentMap map;
    Pba frontier = kSpace;
    for (std::uint64_t i = 0; i < fragments; ++i) {
        const SectorCount count = 1 + rng.nextUint(16);
        const Lba lba = rng.nextUint(kSpace - count);
        map.mapRange(lba, frontier, count);
        frontier += count;
    }
    constexpr SectorCount kReadSectors = 256;
    for (auto _ : state) {
        const Lba lba = rng.nextUint(kSpace - kReadSectors);
        benchmark::DoNotOptimize(
            map.translate({lba, kReadSectors}));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Translate)->Range(1 << 8, 1 << 18);

void
BM_TranslateInto(benchmark::State &state)
{
    // The replay hot path: allocation-free translate into a reused
    // caller-owned buffer.
    const auto fragments = static_cast<std::uint64_t>(state.range(0));
    constexpr Lba kSpace = 1 << 20;
    Rng rng(7);
    stl::ExtentMap map;
    Pba frontier = kSpace;
    for (std::uint64_t i = 0; i < fragments; ++i) {
        const SectorCount count = 1 + rng.nextUint(16);
        const Lba lba = rng.nextUint(kSpace - count);
        map.mapRange(lba, frontier, count);
        frontier += count;
    }
    constexpr SectorCount kReadSectors = 256;
    stl::SegmentBuffer buffer;
    std::uint64_t fragments_seen = 0;
    for (auto _ : state) {
        const Lba lba = rng.nextUint(kSpace - kReadSectors);
        map.translateInto({lba, kReadSectors}, buffer);
        fragments_seen += buffer.size();
    }
    benchmark::DoNotOptimize(fragments_seen);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TranslateInto)->Range(1 << 8, 1 << 18);

void
BM_FragmentCount(benchmark::State &state)
{
    constexpr Lba kSpace = 1 << 20;
    Rng rng(11);
    stl::ExtentMap map;
    Pba frontier = kSpace;
    for (int i = 0; i < 100000; ++i) {
        const SectorCount count = 1 + rng.nextUint(8);
        const Lba lba = rng.nextUint(kSpace - count);
        map.mapRange(lba, frontier, count);
        frontier += count;
    }
    for (auto _ : state) {
        const Lba lba = rng.nextUint(kSpace - 128);
        benchmark::DoNotOptimize(map.fragmentCount({lba, 128}));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FragmentCount);

// ---------------------------------------------------------------
// --json mode: before/after measurement against the seed std::map
// implementation, preserved verbatim as ReferenceExtentMap.
// ---------------------------------------------------------------

constexpr Lba kJsonSpace = 1 << 20;
constexpr SectorCount kJsonReadSectors = 256;

double
elapsedNs(const std::chrono::steady_clock::time_point &start)
{
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    return static_cast<double>(ns);
}

/** Build a map with `writes` seeded random updates; ns per op. */
template <typename Map>
double
buildMap(Map &map, std::uint64_t writes)
{
    Rng rng(7);
    Pba frontier = kJsonSpace;
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < writes; ++i) {
        const SectorCount count = 1 + rng.nextUint(16);
        const Lba lba = rng.nextUint(kJsonSpace - count);
        map.mapRange(lba, frontier, count);
        frontier += count;
    }
    return elapsedNs(start) / static_cast<double>(writes);
}

/** ns per translate over `iters` seeded random reads. */
double
measureTreeTranslate(const stl::ExtentMap &map, std::uint64_t iters)
{
    Rng rng(99);
    stl::SegmentBuffer buffer;
    std::uint64_t fragments = 0;
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
        const Lba lba = rng.nextUint(kJsonSpace - kJsonReadSectors);
        map.translateInto({lba, kJsonReadSectors}, buffer);
        fragments += buffer.size();
    }
    const double ns = elapsedNs(start);
    benchmark::DoNotOptimize(fragments);
    return ns / static_cast<double>(iters);
}

double
measureRefTranslate(const stl::testing::ReferenceExtentMap &map,
                    std::uint64_t iters)
{
    Rng rng(99);
    std::uint64_t fragments = 0;
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
        const Lba lba = rng.nextUint(kJsonSpace - kJsonReadSectors);
        fragments += map.translate({lba, kJsonReadSectors}).size();
    }
    const double ns = elapsedNs(start);
    benchmark::DoNotOptimize(fragments);
    return ns / static_cast<double>(iters);
}

int
runJsonMode(const std::string &path, std::uint64_t translate_iters)
{
    const std::uint64_t levels[] = {1 << 12, 1 << 16, 1 << 18};

    std::ostringstream section;
    section.precision(6);
    section << "{\n"
            << "    \"space\": " << kJsonSpace << ",\n"
            << "    \"readSectors\": " << kJsonReadSectors << ",\n"
            << "    \"translateIters\": " << translate_iters
            << ",\n"
            << "    \"levels\": [\n";

    bool first = true;
    for (const std::uint64_t writes : levels) {
        stl::ExtentMap tree;
        stl::testing::ReferenceExtentMap reference;
        const double map_tree_ns = buildMap(tree, writes);
        const double map_ref_ns = buildMap(reference, writes);
        const double tr_tree_ns =
            measureTreeTranslate(tree, translate_iters);
        const double tr_ref_ns =
            measureRefTranslate(reference, translate_iters);
        const double tr_speedup =
            tr_tree_ns > 0.0 ? tr_ref_ns / tr_tree_ns : 0.0;
        const double map_speedup =
            map_tree_ns > 0.0 ? map_ref_ns / map_tree_ns : 0.0;

        if (!first)
            section << ",\n";
        first = false;
        section << "      {\"writes\": " << writes
                << ", \"entries\": " << tree.entryCount()
                << ", \"mapNsPerOp\": " << map_tree_ns
                << ", \"mapNsPerOpStdMap\": " << map_ref_ns
                << ", \"mapSpeedup\": " << map_speedup
                << ", \"translateNsPerOp\": " << tr_tree_ns
                << ", \"translateNsPerOpStdMap\": " << tr_ref_ns
                << ", \"translateSpeedup\": " << tr_speedup << "}";

        std::cout << "extent_map writes=" << writes
                  << " entries=" << tree.entryCount()
                  << " translate " << tr_tree_ns << " ns/op (std::map "
                  << tr_ref_ns << " ns/op, speedup " << tr_speedup
                  << "x), map " << map_tree_ns << " ns/op (std::map "
                  << map_ref_ns << " ns/op, speedup " << map_speedup
                  << "x)\n";
    }
    section << "\n    ]\n  }";

    const std::string existing = bench::readFile(path);
    const std::string replay =
        bench::extractSection(existing, "replay");
    if (!bench::writeSections(
            path,
            {{"extent_map", section.str()}, {"replay", replay}})) {
        std::cerr << "perf_extent_map: cannot write " << path
                  << "\n";
        return 1;
    }
    std::cout << "wrote " << path << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    std::uint64_t translate_iters = 2'000'000;
    std::vector<char *> pass;
    pass.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--json=", 0) == 0)
            json_path = arg.substr(7);
        else if (arg.rfind("--translate-iters=", 0) == 0)
            translate_iters = std::stoull(arg.substr(18));
        else
            pass.push_back(argv[i]);
    }
    if (!json_path.empty())
        return runJsonMode(json_path, translate_iters);

    int pass_argc = static_cast<int>(pass.size());
    benchmark::Initialize(&pass_argc, pass.data());
    if (benchmark::ReportUnrecognizedArguments(pass_argc,
                                               pass.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
