/**
 * @file
 * End-to-end throughput of the trace-replay engine: requests per
 * second under each translation/mechanism configuration, on a
 * pre-generated mixed workload.
 *
 * Two modes:
 *  - Default: google-benchmark microbenchmarks.
 *  - --json=PATH: measures serial replay ops/sec for the key
 *    configurations and writes the "replay" section of the tracking
 *    file (BENCH_extent_map.json), preserving the "extent_map"
 *    section written by perf_extent_map. --ops=N scales the trace
 *    (CI smoke uses a small N); --reps=R controls timing repeats;
 *    --baseline-ops=X is the pre-optimization serial
 *    log-structured ops/sec the ratio is computed against. The
 *    section also carries a sharded leg (the LS replay at 4
 *    replay shards on a dedicated pool) with its throughput ratio
 *    over serial and a byte-identity check of the two SimResults.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "stl/simulator.h"
#include "sweep/task_pool.h"
#include "util/random.h"

namespace
{

using namespace logseek;

trace::Trace
mixedTrace(std::size_t ops)
{
    Rng rng(123);
    trace::Trace trace("perf");
    constexpr Lba kSpace = 1 << 22;
    for (std::size_t i = 0; i < ops; ++i) {
        const SectorCount count = 8 + rng.nextUint(56);
        const Lba lba = rng.nextUint(kSpace - count);
        if (rng.nextBool(0.4))
            trace.appendWrite(lba, count);
        else
            trace.appendRead(lba, count);
    }
    return trace;
}

const trace::Trace &
sharedTrace()
{
    static const trace::Trace trace = mixedTrace(200000);
    return trace;
}

void
runConfig(benchmark::State &state, const stl::SimConfig &config)
{
    const trace::Trace &trace = sharedTrace();
    for (auto _ : state) {
        stl::Simulator simulator(config);
        benchmark::DoNotOptimize(simulator.run(trace));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}

void
BM_Conventional(benchmark::State &state)
{
    stl::SimConfig config;
    config.translation = stl::TranslationKind::Conventional;
    runConfig(state, config);
}
BENCHMARK(BM_Conventional)->Unit(benchmark::kMillisecond);

void
BM_LogStructured(benchmark::State &state)
{
    stl::SimConfig config;
    config.translation = stl::TranslationKind::LogStructured;
    runConfig(state, config);
}
BENCHMARK(BM_LogStructured)->Unit(benchmark::kMillisecond);

void
BM_LogStructuredDefrag(benchmark::State &state)
{
    stl::SimConfig config;
    config.translation = stl::TranslationKind::LogStructured;
    config.defrag = stl::DefragConfig{};
    runConfig(state, config);
}
BENCHMARK(BM_LogStructuredDefrag)->Unit(benchmark::kMillisecond);

void
BM_LogStructuredPrefetch(benchmark::State &state)
{
    stl::SimConfig config;
    config.translation = stl::TranslationKind::LogStructured;
    config.prefetch = stl::PrefetchConfig{};
    runConfig(state, config);
}
BENCHMARK(BM_LogStructuredPrefetch)->Unit(benchmark::kMillisecond);

void
BM_LogStructuredCache(benchmark::State &state)
{
    stl::SimConfig config;
    config.translation = stl::TranslationKind::LogStructured;
    config.cache = stl::SelectiveCacheConfig{64 * kMiB};
    runConfig(state, config);
}
BENCHMARK(BM_LogStructuredCache)->Unit(benchmark::kMillisecond);

void
BM_AllMechanisms(benchmark::State &state)
{
    stl::SimConfig config;
    config.translation = stl::TranslationKind::LogStructured;
    config.defrag = stl::DefragConfig{};
    config.prefetch = stl::PrefetchConfig{};
    config.cache = stl::SelectiveCacheConfig{64 * kMiB};
    runConfig(state, config);
}
BENCHMARK(BM_AllMechanisms)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------
// --json mode: serial replay throughput for the tracking file.
// ---------------------------------------------------------------

/** Best-of-`reps` serial replay throughput in requests/sec. */
double
measureOpsPerSec(const stl::SimConfig &config,
                 const trace::Trace &trace, int reps)
{
    double best_sec = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        stl::Simulator simulator(config);
        const auto start = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(simulator.run(trace));
        const auto ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
        const double sec = static_cast<double>(ns) * 1e-9;
        if (rep == 0 || sec < best_sec)
            best_sec = sec;
    }
    return best_sec > 0.0
               ? static_cast<double>(trace.size()) / best_sec
               : 0.0;
}

int
runJsonMode(const std::string &path, std::size_t ops, int reps,
            double baseline_ops)
{
    const trace::Trace trace = mixedTrace(ops);

    stl::SimConfig conventional;
    conventional.translation = stl::TranslationKind::Conventional;
    stl::SimConfig ls;
    ls.translation = stl::TranslationKind::LogStructured;
    stl::SimConfig ls_all;
    ls_all.translation = stl::TranslationKind::LogStructured;
    ls_all.defrag = stl::DefragConfig{};
    ls_all.prefetch = stl::PrefetchConfig{};
    ls_all.cache = stl::SelectiveCacheConfig{64 * kMiB};

    const std::vector<std::pair<std::string, stl::SimConfig>>
        configs = {{"NoLS", conventional},
                   {"LS", ls},
                   {"LS+all", ls_all}};

    std::ostringstream section;
    section.precision(6);
    section << "{\n"
            << "    \"ops\": " << trace.size() << ",\n"
            << "    \"reps\": " << reps << ",\n"
            << "    \"configs\": [\n";
    double ls_ops_per_sec = 0.0;
    bool first = true;
    for (const auto &[name, config] : configs) {
        const double ops_per_sec =
            measureOpsPerSec(config, trace, reps);
        if (name == "LS")
            ls_ops_per_sec = ops_per_sec;
        if (!first)
            section << ",\n";
        first = false;
        section << "      {\"name\": \"" << name
                << "\", \"opsPerSec\": " << ops_per_sec << "}";
        std::cout << "replay " << name << ": " << ops_per_sec
                  << " ops/sec\n";
    }
    const double ratio =
        baseline_ops > 0.0 ? ls_ops_per_sec / baseline_ops : 0.0;

    // Sharded leg: the LS replay again, with per-batch seek
    // classification fanned over 4 shards on a small dedicated
    // pool. Must be byte-identical to the serial SimResult.
    stl::SimConfig ls_sharded = ls;
    ls_sharded.replayShards = 4;
    sweep::TaskPool shard_pool(3);
    ls_sharded.shardExecutor = sweep::makeShardExecutor(shard_pool);
    const double sharded_ops =
        measureOpsPerSec(ls_sharded, trace, reps);
    const double sharded_ratio =
        ls_ops_per_sec > 0.0 ? sharded_ops / ls_ops_per_sec : 0.0;
    const bool sharded_identical =
        stl::Simulator(ls).run(trace) ==
        stl::Simulator(ls_sharded).run(trace);

    section << "\n    ],\n"
            << "    \"baselineOpsPerSec\": " << baseline_ops
            << ",\n"
            << "    \"serialReplayRatio\": " << ratio << ",\n"
            << "    \"shardedOpsPerSec\": " << sharded_ops << ",\n"
            << "    \"shardedVsSerial\": " << sharded_ratio
            << ",\n"
            << "    \"shardedIdentical\": "
            << (sharded_identical ? "true" : "false") << "\n"
            << "  }";
    std::cout << "serial LS replay ratio vs baseline: " << ratio
              << "x\n";
    std::cout << "sharded (4) LS replay vs serial: "
              << sharded_ratio << "x, byte-identical: "
              << (sharded_identical ? "yes" : "NO") << "\n";
    if (!sharded_identical) {
        std::cerr << "perf_simulator: sharded replay diverged "
                     "from serial\n";
        return 1;
    }

    const std::string existing = bench::readFile(path);
    const std::string extent_map =
        bench::extractSection(existing, "extent_map");
    if (!bench::writeSections(
            path,
            {{"extent_map", extent_map},
             {"replay", section.str()}})) {
        std::cerr << "perf_simulator: cannot write " << path
                  << "\n";
        return 1;
    }
    std::cout << "wrote " << path << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    std::size_t ops = 200000;
    int reps = 3;
    // Serial log-structured replay throughput of the std::map-based
    // seed implementation on the reference box (see
    // docs/performance.md); override when re-baselining.
    double baseline_ops = 1.136e6;
    std::vector<char *> pass;
    pass.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--json=", 0) == 0)
            json_path = arg.substr(7);
        else if (arg.rfind("--ops=", 0) == 0)
            ops = std::stoull(arg.substr(6));
        else if (arg.rfind("--reps=", 0) == 0)
            reps = std::stoi(arg.substr(7));
        else if (arg.rfind("--baseline-ops=", 0) == 0)
            baseline_ops = std::stod(arg.substr(15));
        else
            pass.push_back(argv[i]);
    }
    if (!json_path.empty())
        return runJsonMode(json_path, ops, reps, baseline_ops);

    int pass_argc = static_cast<int>(pass.size());
    benchmark::Initialize(&pass_argc, pass.data());
    if (benchmark::ReportUnrecognizedArguments(pass_argc,
                                               pass.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
