/**
 * @file
 * Google-benchmark end-to-end throughput of the trace-replay
 * engine: requests per second under each translation/mechanism
 * configuration, on a pre-generated mixed workload.
 */

#include <benchmark/benchmark.h>

#include "stl/simulator.h"
#include "util/random.h"

namespace
{

using namespace logseek;

trace::Trace
mixedTrace(std::size_t ops)
{
    Rng rng(123);
    trace::Trace trace("perf");
    constexpr Lba kSpace = 1 << 22;
    for (std::size_t i = 0; i < ops; ++i) {
        const SectorCount count = 8 + rng.nextUint(56);
        const Lba lba = rng.nextUint(kSpace - count);
        if (rng.nextBool(0.4))
            trace.appendWrite(lba, count);
        else
            trace.appendRead(lba, count);
    }
    return trace;
}

const trace::Trace &
sharedTrace()
{
    static const trace::Trace trace = mixedTrace(200000);
    return trace;
}

void
runConfig(benchmark::State &state, const stl::SimConfig &config)
{
    const trace::Trace &trace = sharedTrace();
    for (auto _ : state) {
        stl::Simulator simulator(config);
        benchmark::DoNotOptimize(simulator.run(trace));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}

void
BM_Conventional(benchmark::State &state)
{
    stl::SimConfig config;
    config.translation = stl::TranslationKind::Conventional;
    runConfig(state, config);
}
BENCHMARK(BM_Conventional)->Unit(benchmark::kMillisecond);

void
BM_LogStructured(benchmark::State &state)
{
    stl::SimConfig config;
    config.translation = stl::TranslationKind::LogStructured;
    runConfig(state, config);
}
BENCHMARK(BM_LogStructured)->Unit(benchmark::kMillisecond);

void
BM_LogStructuredDefrag(benchmark::State &state)
{
    stl::SimConfig config;
    config.translation = stl::TranslationKind::LogStructured;
    config.defrag = stl::DefragConfig{};
    runConfig(state, config);
}
BENCHMARK(BM_LogStructuredDefrag)->Unit(benchmark::kMillisecond);

void
BM_LogStructuredPrefetch(benchmark::State &state)
{
    stl::SimConfig config;
    config.translation = stl::TranslationKind::LogStructured;
    config.prefetch = stl::PrefetchConfig{};
    runConfig(state, config);
}
BENCHMARK(BM_LogStructuredPrefetch)->Unit(benchmark::kMillisecond);

void
BM_LogStructuredCache(benchmark::State &state)
{
    stl::SimConfig config;
    config.translation = stl::TranslationKind::LogStructured;
    config.cache = stl::SelectiveCacheConfig{64 * kMiB};
    runConfig(state, config);
}
BENCHMARK(BM_LogStructuredCache)->Unit(benchmark::kMillisecond);

void
BM_AllMechanisms(benchmark::State &state)
{
    stl::SimConfig config;
    config.translation = stl::TranslationKind::LogStructured;
    config.defrag = stl::DefragConfig{};
    config.prefetch = stl::PrefetchConfig{};
    config.cache = stl::SelectiveCacheConfig{64 * kMiB};
    runConfig(state, config);
}
BENCHMARK(BM_AllMechanisms)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
