/**
 * @file
 * Extension experiment: queue-aware (NCQ) baselines.
 *
 * Paper §IV-B: the descending bursts of Figure 7a were dispatched
 * almost simultaneously and the disk "was able to re-order the I/Os
 * on the fly", completing them ascending with almost no overhead.
 * Our NoLS baseline replays requests in trace order, so it charges
 * conventional drives full price for mis-ordered writes. This
 * harness re-computes the baseline with an elevator-reordered
 * request stream (queue depth 32, 2 ms window) and shows how SAF
 * shifts — on mis-ordered-write workloads the realistic baseline
 * is cheaper, so the log's true amplification is higher than the
 * naive comparison suggests. It also feeds the reordered stream to
 * the log itself (a queueing front-end absorbs mis-ordering before
 * it is frozen into the log).
 *
 * Usage: ncq_baseline [scale] [seed] [--jobs N] [--json[=path]]
 *        [--csv[=path]] [--paranoid]
 */

#include <iostream>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "stl/simulator.h"
#include "sweep/cli.h"
#include "sweep/sweep_runner.h"
#include "trace/reorder.h"
#include "workloads/profiles.h"

int
main(int argc, char **argv)
{
    using namespace logseek;

    const auto cli = sweep::parseBenchCli(
        argc, argv, sweep::benchUsage("ncq_baseline"),
        0.01);
    if (!cli)
        return 2;

    const std::vector<std::string> names{"hm_1", "src2_2", "w84",
                                         "w95", "w106", "usr_1",
                                         "w91"};

    // Two workload rows per name: the trace in arrival order and
    // its elevator-reordered twin (what an NCQ drive would see).
    std::vector<sweep::WorkloadSpec> specs;
    for (const auto &name : names) {
        specs.push_back(sweep::WorkloadSpec::profile(name, cli->profile));
        specs.push_back(sweep::WorkloadSpec::derived(
            name + " (NCQ)", name, cli->profile,
            [](const trace::Trace &trace) {
                return trace::reorderElevator(trace);
            }));
    }

    stl::SimConfig nols_config;
    nols_config.translation = stl::TranslationKind::Conventional;
    stl::SimConfig ls_config;
    ls_config.translation = stl::TranslationKind::LogStructured;

    sweep::SweepOptions options = cli->sweepOptions();
    sweep::SweepRunner runner(
        std::move(specs),
        {sweep::ConfigSpec::fixed("NoLS", nols_config),
         sweep::ConfigSpec::fixed("LS", ls_config)},
        std::move(options));
    const sweep::SweepResult sweep = runner.run();

    std::cout << "Queue-aware baselines (C-LOOK elevator, depth 32, "
                 "2 ms window)\n\n";
    analysis::TextTable table(
        {"workload", "NoLS seeks", "NoLS+NCQ seeks", "SAF (naive)",
         "SAF (vs NCQ)", "LS seeks", "LS-on-NCQ seeks"});

    for (std::size_t w = 0; w < names.size(); ++w) {
        const stl::SimResult &nols = sweep.row(2 * w, 0).result;
        const stl::SimResult &ls = sweep.row(2 * w, 1).result;
        const stl::SimResult &nols_ncq =
            sweep.row(2 * w + 1, 0).result;
        const stl::SimResult &ls_ncq =
            sweep.row(2 * w + 1, 1).result;

        table.addRow(
            {names[w], std::to_string(nols.totalSeeks()),
             std::to_string(nols_ncq.totalSeeks()),
             analysis::formatRatio(stl::seekAmplification(nols, ls)),
             analysis::formatRatio(
                 stl::seekAmplification(nols_ncq, ls)),
             std::to_string(ls.totalSeeks()),
             std::to_string(ls_ncq.totalSeeks())});
    }
    table.print(std::cout);

    std::cout
        << "\nExpected shape: on mis-ordered-write workloads (hm_1, "
           "src2_2, w84, w106) the NCQ baseline seeks much less "
           "than trace-order replay, so the log's amplification "
           "against a real drive is larger than the naive SAF; "
           "feeding the reordered stream to the log (last column) "
           "shows a queueing front-end also removes most of the "
           "mis-ordering before it reaches the medium.\n";
    cli->emitReports(sweep);
    return 0;
}
