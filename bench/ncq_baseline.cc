/**
 * @file
 * Extension experiment: queue-aware (NCQ) baselines.
 *
 * Paper §IV-B: the descending bursts of Figure 7a were dispatched
 * almost simultaneously and the disk "was able to re-order the I/Os
 * on the fly", completing them ascending with almost no overhead.
 * Our NoLS baseline replays requests in trace order, so it charges
 * conventional drives full price for mis-ordered writes. This
 * harness re-computes the baseline with an elevator-reordered
 * request stream (queue depth 32, 2 ms window) and shows how SAF
 * shifts — on mis-ordered-write workloads the realistic baseline
 * is cheaper, so the log's true amplification is higher than the
 * naive comparison suggests. It also feeds the reordered stream to
 * the log itself (a queueing front-end absorbs mis-ordering before
 * it is frozen into the log).
 *
 * Usage: ncq_baseline [scale] [seed]
 */

#include <cstdlib>
#include <iostream>

#include "analysis/report.h"
#include "stl/simulator.h"
#include "trace/reorder.h"
#include "workloads/profiles.h"

int
main(int argc, char **argv)
{
    using namespace logseek;

    workloads::ProfileOptions options;
    options.scale = argc > 1 ? std::atof(argv[1]) : 0.01;
    if (argc > 2)
        options.seed =
            static_cast<std::uint64_t>(std::atoll(argv[2]));

    std::cout << "Queue-aware baselines (C-LOOK elevator, depth 32, "
                 "2 ms window)\n\n";
    analysis::TextTable table(
        {"workload", "NoLS seeks", "NoLS+NCQ seeks", "SAF (naive)",
         "SAF (vs NCQ)", "LS seeks", "LS-on-NCQ seeks"});

    for (const char *name :
         {"hm_1", "src2_2", "w84", "w95", "w106", "usr_1", "w91"}) {
        const trace::Trace trace =
            workloads::makeWorkload(name, options);
        const trace::Trace sorted = trace::reorderElevator(trace);

        stl::SimConfig nols_config;
        nols_config.translation = stl::TranslationKind::Conventional;
        const stl::SimResult nols =
            stl::Simulator(nols_config).run(trace);
        const stl::SimResult nols_ncq =
            stl::Simulator(nols_config).run(sorted);

        stl::SimConfig ls_config;
        ls_config.translation = stl::TranslationKind::LogStructured;
        const stl::SimResult ls =
            stl::Simulator(ls_config).run(trace);
        const stl::SimResult ls_ncq =
            stl::Simulator(ls_config).run(sorted);

        table.addRow(
            {name, std::to_string(nols.totalSeeks()),
             std::to_string(nols_ncq.totalSeeks()),
             analysis::formatDouble(stl::seekAmplification(nols, ls)),
             analysis::formatDouble(
                 stl::seekAmplification(nols_ncq, ls)),
             std::to_string(ls.totalSeeks()),
             std::to_string(ls_ncq.totalSeeks())});
    }
    table.print(std::cout);

    std::cout
        << "\nExpected shape: on mis-ordered-write workloads (hm_1, "
           "src2_2, w84, w106) the NCQ baseline seeks much less "
           "than trace-order replay, so the log's amplification "
           "against a real drive is larger than the naive SAF; "
           "feeding the reordered stream to the log (last column) "
           "shows a queueing front-end also removes most of the "
           "mis-ordering before it reaches the medium.\n";
    return 0;
}
