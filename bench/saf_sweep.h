/**
 * @file
 * Shared driver for the SAF ablation tables. Every ablation in this
 * directory has the same shape: a workload list, a conventional
 * (NoLS) baseline, a plain log-structured column and a family of
 * variant configurations, rendered as one SAF row per workload.
 * This header holds that loop once; the individual harnesses only
 * declare their workloads and configuration matrix.
 */

#ifndef LOGSEEK_BENCH_SAF_SWEEP_H
#define LOGSEEK_BENCH_SAF_SWEEP_H

#include <cstddef>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/report.h"
#include "stl/simulator.h"
#include "sweep/cli.h"
#include "sweep/sweep_runner.h"
#include "workloads/profiles.h"

namespace logseek::bench
{

/** The conventional baseline column every SAF table divides by. */
inline sweep::ConfigSpec
conventionalBaseline()
{
    stl::SimConfig config;
    config.translation = stl::TranslationKind::Conventional;
    return sweep::ConfigSpec::fixed("NoLS", std::move(config));
}

/** Plain full-map log-structured translation. */
inline stl::SimConfig
logStructured()
{
    stl::SimConfig config;
    config.translation = stl::TranslationKind::LogStructured;
    return config;
}

/**
 * Run a (workload × config) sweep whose configs[0] is the NoLS
 * baseline and print one SAF row per workload, with one column per
 * remaining config, titled by its label. Returns the sweep so the
 * caller can emit the machine-readable reports.
 */
inline sweep::SweepResult
runSafTable(const std::vector<std::string> &names,
            std::vector<sweep::ConfigSpec> configs,
            const sweep::BenchCli &cli)
{
    std::vector<sweep::WorkloadSpec> specs;
    for (const auto &name : names)
        specs.push_back(
            sweep::WorkloadSpec::profile(name, cli.profile));

    sweep::SweepOptions options = cli.sweepOptions();
    sweep::SweepRunner runner(std::move(specs), std::move(configs),
                              std::move(options));
    sweep::SweepResult sweep = runner.run();

    std::vector<std::string> headers{"workload"};
    for (std::size_t c = 1; c < sweep.configs.size(); ++c)
        headers.push_back(sweep.configs[c]);
    analysis::TextTable table(std::move(headers));
    for (std::size_t w = 0; w < names.size(); ++w) {
        std::vector<std::string> row{names[w]};
        for (std::size_t c = 1; c < sweep.configs.size(); ++c)
            row.push_back(analysis::formatRatio(sweep.safVs(w, c)));
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    return sweep;
}

} // namespace logseek::bench

#endif // LOGSEEK_BENCH_SAF_SWEEP_H
