/**
 * @file
 * Extension experiment: the §II design-space tradeoff between the
 * two SMR translation approaches. A media-cache STL (drive-managed
 * style) keeps data in LBA order — little read seek amplification,
 * but every merge is a band read-modify-write (write amplification,
 * cleaning seeks). A full-map log-structured STL never cleans on an
 * archival (infinite) disk — WAF 1.0 — but fragments reads. This
 * harness quantifies both sides for a sample of workloads; the
 * paper's three mechanisms are what lets the full-map design keep
 * its WAF advantage without paying the seek penalty.
 *
 * Usage: compare_translation_layers [scale] [seed] [--jobs N]
 *        [--json[=path]] [--csv[=path]] [--paranoid]
 */

#include <iostream>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "stl/simulator.h"
#include "sweep/cli.h"
#include "sweep/sweep_runner.h"
#include "workloads/profiles.h"

int
main(int argc, char **argv)
{
    using namespace logseek;

    const auto cli = sweep::parseBenchCli(
        argc, argv, sweep::benchUsage("compare_translation_layers"),
        0.01);
    if (!cli)
        return 2;

    const std::vector<std::string> names{"w91", "usr_1", "hm_1",
                                         "w20", "src2_2", "w76",
                                         "w33"};
    std::vector<sweep::WorkloadSpec> specs;
    for (const auto &name : names)
        specs.push_back(sweep::WorkloadSpec::profile(name, cli->profile));

    stl::SimConfig baseline;
    baseline.translation = stl::TranslationKind::Conventional;
    stl::SimConfig ls;
    ls.translation = stl::TranslationKind::LogStructured;
    stl::SimConfig mc;
    mc.translation = stl::TranslationKind::MediaCache;
    stl::SimConfig cached = ls;
    cached.cache = stl::SelectiveCacheConfig{64 * kMiB};

    sweep::SweepOptions options = cli->sweepOptions();
    sweep::SweepRunner runner(
        std::move(specs),
        {sweep::ConfigSpec::fixed("NoLS", baseline),
         sweep::ConfigSpec::fixed("LS", ls),
         sweep::ConfigSpec::fixed("MC", mc),
         sweep::ConfigSpec::fixed("LS+cache(64MB)", cached)},
        std::move(options));
    const sweep::SweepResult sweep = runner.run();

    std::cout << "Translation-layer tradeoff: media-cache STL vs "
                 "full-map log-structured STL\n"
                 "(SAF = host seeks vs conventional; SAF+clean "
                 "includes cleaning seeks; WAF = media writes per "
                 "host write)\n\n";

    analysis::TextTable table(
        {"workload", "LS SAF", "LS WAF", "MC SAF", "MC SAF+clean",
         "MC WAF", "MC merges", "LS+cache SAF"});

    for (std::size_t w = 0; w < names.size(); ++w) {
        const stl::SimResult &nols = sweep.row(w, 0).result;
        const stl::SimResult &log = sweep.row(w, 1).result;
        const stl::SimResult &media = sweep.row(w, 2).result;
        const stl::SimResult &ls_cache = sweep.row(w, 3).result;
        const double base_seeks =
            static_cast<double>(nols.totalSeeks());

        auto ratio = [&](std::uint64_t seeks) {
            return base_seeks == 0.0
                       ? 0.0
                       : static_cast<double>(seeks) / base_seeks;
        };

        table.addRow(
            {names[w],
             analysis::formatDouble(ratio(log.totalSeeks())),
             analysis::formatDouble(log.writeAmplification()),
             analysis::formatDouble(ratio(media.totalSeeks())),
             analysis::formatDouble(
                 ratio(media.totalSeeksWithCleaning())),
             analysis::formatDouble(media.writeAmplification()),
             std::to_string(media.cleaningMerges),
             analysis::formatDouble(ratio(ls_cache.totalSeeks()))});
    }
    table.print(std::cout);

    std::cout
        << "\nExpected shape: the media-cache STL holds host SAF "
           "near (or below) the log's but pays for it in WAF and "
           "cleaning seeks; the full-map log keeps WAF at 1.0 and, "
           "with selective caching, loses most of its seek "
           "penalty — the paper's argument for eliminating both "
           "SMR overheads at once.\n";
    cli->emitReports(sweep);
    return 0;
}
