/**
 * @file
 * Extension experiment: the §II design-space tradeoff between the
 * two SMR translation approaches. A media-cache STL (drive-managed
 * style) keeps data in LBA order — little read seek amplification,
 * but every merge is a band read-modify-write (write amplification,
 * cleaning seeks). A full-map log-structured STL never cleans on an
 * archival (infinite) disk — WAF 1.0 — but fragments reads. This
 * harness quantifies both sides for a sample of workloads; the
 * paper's three mechanisms are what lets the full-map design keep
 * its WAF advantage without paying the seek penalty.
 *
 * Usage: compare_translation_layers [scale] [seed]
 */

#include <cstdlib>
#include <iostream>

#include "analysis/report.h"
#include "stl/simulator.h"
#include "workloads/profiles.h"

int
main(int argc, char **argv)
{
    using namespace logseek;

    workloads::ProfileOptions options;
    options.scale = argc > 1 ? std::atof(argv[1]) : 0.01;
    if (argc > 2)
        options.seed =
            static_cast<std::uint64_t>(std::atoll(argv[2]));

    std::cout << "Translation-layer tradeoff: media-cache STL vs "
                 "full-map log-structured STL\n"
                 "(SAF = host seeks vs conventional; SAF+clean "
                 "includes cleaning seeks; WAF = media writes per "
                 "host write)\n\n";

    analysis::TextTable table(
        {"workload", "LS SAF", "LS WAF", "MC SAF", "MC SAF+clean",
         "MC WAF", "MC merges", "LS+cache SAF"});

    for (const char *name :
         {"w91", "usr_1", "hm_1", "w20", "src2_2", "w76", "w33"}) {
        const trace::Trace trace =
            workloads::makeWorkload(name, options);

        stl::SimConfig baseline;
        baseline.translation = stl::TranslationKind::Conventional;
        const stl::SimResult nols =
            stl::Simulator(baseline).run(trace);
        const double base_seeks =
            static_cast<double>(nols.totalSeeks());

        stl::SimConfig ls;
        ls.translation = stl::TranslationKind::LogStructured;
        const stl::SimResult log = stl::Simulator(ls).run(trace);

        stl::SimConfig mc;
        mc.translation = stl::TranslationKind::MediaCache;
        const stl::SimResult media = stl::Simulator(mc).run(trace);

        stl::SimConfig cached = ls;
        cached.cache = stl::SelectiveCacheConfig{64 * kMiB};
        const stl::SimResult ls_cache =
            stl::Simulator(cached).run(trace);

        auto ratio = [&](std::uint64_t seeks) {
            return base_seeks == 0.0
                       ? 0.0
                       : static_cast<double>(seeks) / base_seeks;
        };

        table.addRow(
            {name,
             analysis::formatDouble(ratio(log.totalSeeks())),
             analysis::formatDouble(log.writeAmplification()),
             analysis::formatDouble(ratio(media.totalSeeks())),
             analysis::formatDouble(
                 ratio(media.totalSeeksWithCleaning())),
             analysis::formatDouble(media.writeAmplification()),
             std::to_string(media.cleaningMerges),
             analysis::formatDouble(ratio(ls_cache.totalSeeks()))});
    }
    table.print(std::cout);

    std::cout
        << "\nExpected shape: the media-cache STL holds host SAF "
           "near (or below) the log's but pays for it in WAF and "
           "cleaning seeks; the full-map log keeps WAF at 1.0 and, "
           "with selective caching, loses most of its seek "
           "penalty — the paper's argument for eliminating both "
           "SMR overheads at once.\n";
    return 0;
}
