/**
 * @file
 * Failure-scenario sweep over the zoned-device realism layer.
 *
 * The paper's model assumes perfect media; real SMR drives serve
 * reads through retries, grow defects that take zones READ_ONLY or
 * OFFLINE, and occasionally disagree with the host about a write
 * pointer. This harness replays the standard workload profiles
 * through translation layers mounted on a ZonedDevice and sweeps a
 * fault-rate × fault-profile grid, reporting how much recovery work
 * (retries, degraded reads, zone resets, WP violations) each
 * configuration absorbs — every cell classified under the sweep's
 * OK/RETRIED_OK/FAILED/TIMED_OUT taxonomy, never crashed.
 *
 * The base fault rate comes from --fault-rate (default 0.002), the
 * defect map seed from --bad-sector-seed, and the open-zone limit
 * from --max-open-zones; the grid explores 1x and 4x the base rate.
 *
 * Usage: device_fault_sweep [scale] [seed] [--jobs N]
 *        [--fault-rate R] [--bad-sector-seed N]
 *        [--max-open-zones N] [--error-log-cap N]
 *        [--json[=path]] [--csv[=path]]
 */

#include <algorithm>
#include <array>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "disk/zoned_device.h"
#include "stl/simulator.h"
#include "sweep/cli.h"
#include "sweep/sweep_runner.h"
#include "trace/stats.h"
#include "util/logging.h"
#include "workloads/profiles.h"

namespace
{

using namespace logseek;

/** One fault profile of the grid. */
struct FaultProfile
{
    std::string name;
    bool transient = false;
    bool grown = false;
    bool divergence = false;
};

/** Finite-log capacity sized from the trace's written volume. */
stl::FiniteLogConfig
sizedLog(const trace::Trace &trace)
{
    const trace::TraceStats stats = trace::computeStats(trace);
    stl::FiniteLogConfig config;
    config.capacityBytes = std::max<std::uint64_t>(
        16 * kMiB,
        static_cast<std::uint64_t>(
            2.0 * static_cast<double>(stats.writtenBytes)));
    config.segmentBytes = std::clamp<std::uint64_t>(
        config.capacityBytes / 128, 256 * kKiB, 4 * kMiB);
    config.cleanReserveSegments = 4;
    config.cleanTargetSegments = 12;
    return config;
}

disk::ZonedDeviceOptions
deviceOptions(const FaultProfile &profile, double rate,
              std::uint64_t seed, std::uint32_t max_open_zones,
              std::size_t error_log_cap)
{
    disk::ZonedDeviceOptions options;
    options.maxOpenZones = max_open_zones;
    if (error_log_cap > 0)
        options.errorLogCap = error_log_cap;
    options.faults.seed = seed;
    if (profile.transient)
        options.faults.transientRate = rate;
    if (profile.grown) {
        // Grown defects are an order of magnitude rarer than
        // transient ones, as on real drives.
        options.faults.grownRate = rate / 10.0;
        options.faults.offlineShare = 0.25;
    }
    if (profile.divergence)
        options.faults.wpDivergenceRate = rate;
    return options;
}

sweep::ConfigSpec
deviceConfig(const std::string &label,
             stl::TranslationKind translation,
             const FaultProfile &profile, double rate,
             std::uint64_t seed, std::uint32_t max_open_zones,
             std::size_t error_log_cap)
{
    return sweep::ConfigSpec::deferred(
        label, [translation, profile, rate, seed, max_open_zones,
                error_log_cap](const trace::Trace &trace) {
            stl::SimConfig config;
            config.translation = translation;
            if (translation ==
                stl::TranslationKind::FiniteLogStructured)
                config.finiteLog = sizedLog(trace);
            config.zonedDevice =
                deviceOptions(profile, rate, seed,
                              max_open_zones, error_log_cap);
            return config;
        });
}

} // namespace

int
main(int argc, char **argv)
{
    auto cli = sweep::parseBenchCli(
        argc, argv, sweep::benchUsage("device_fault_sweep"),
        0.005);
    if (!cli)
        return 2;

    const double base_rate =
        cli->faultRate > 0.0 ? cli->faultRate : 0.002;

    const std::vector<std::string> names{"w91", "hm_1", "w33"};
    const std::vector<FaultProfile> profiles{
        {"clean", false, false, false},
        {"transient", true, false, false},
        {"t+grown", true, true, false},
        {"t+g+wpdiv", true, true, true},
    };
    const std::vector<std::pair<std::string, double>> rates{
        {"1x", base_rate}, {"4x", base_rate * 4.0}};
    const std::vector<
        std::pair<std::string, stl::TranslationKind>>
        translations{
            {"FiniteLS", stl::TranslationKind::FiniteLogStructured},
            {"LS", stl::TranslationKind::LogStructured}};

    std::vector<sweep::WorkloadSpec> specs;
    for (const auto &name : names)
        specs.push_back(
            sweep::WorkloadSpec::profile(name, cli->profile));

    // Grid: per translation, the clean profile once plus every
    // faulty profile at each rate multiple.
    std::vector<sweep::ConfigSpec> configs;
    for (const auto &[tname, translation] : translations) {
        configs.push_back(deviceConfig(
            tname + " clean", translation, profiles[0], 0.0,
            cli->badSectorSeed, cli->maxOpenZones,
            cli->errorLogCap));
        for (std::size_t p = 1; p < profiles.size(); ++p)
            for (const auto &[rname, rate] : rates)
                configs.push_back(deviceConfig(
                    tname + " " + profiles[p].name + " " + rname,
                    translation, profiles[p], rate,
                    cli->badSectorSeed, cli->maxOpenZones,
                    cli->errorLogCap));
    }
    const std::size_t config_count = configs.size();

    sweep::SweepOptions options = cli->sweepOptions();
    sweep::SweepRunner runner(std::move(specs),
                              std::move(configs),
                              std::move(options));
    const sweep::SweepResult sweep = runner.run();

    std::cout << "Zoned-device fault sweep (base rate "
              << analysis::formatDouble(base_rate, 4)
              << ", defect-map seed " << cli->badSectorSeed
              << ", open-zone limit " << cli->maxOpenZones
              << ")\n\n";

    analysis::TextTable table({"workload", "config", "outcome",
                               "retries", "recovered", "lost",
                               "degraded rds", "resets",
                               "wp viol", "RO/off zones"});
    std::array<std::uint64_t, 5> outcome_census{};
    for (std::size_t w = 0; w < names.size(); ++w) {
        for (std::size_t c = 0; c < config_count; ++c) {
            const sweep::RunRow &row = sweep.row(w, c);
            ++outcome_census[static_cast<std::size_t>(
                row.outcome)];
            std::vector<std::string> cells{
                names[w], row.key.configLabel,
                toString(row.outcome)};
            if (row.status.ok()) {
                const stl::SimResult &r = row.result;
                cells.push_back(
                    std::to_string(r.deviceReadRetries));
                cells.push_back(
                    std::to_string(r.deviceRecoveredSectors));
                cells.push_back(std::to_string(
                    r.deviceFailedReadSectors +
                    r.deviceFailedWriteSectors));
                cells.push_back(
                    std::to_string(r.deviceDegradedReads));
                cells.push_back(
                    std::to_string(r.deviceZoneResets));
                cells.push_back(
                    std::to_string(r.deviceWpViolations));
                cells.push_back(
                    std::to_string(r.deviceReadOnlyZones) + "/" +
                    std::to_string(r.deviceOfflineZones));
            } else {
                cells.insert(cells.end(),
                             {"-", "-", "-", "-", "-", "-", "-"});
            }
            table.addRow(std::move(cells));
        }
    }
    table.print(std::cout);

    std::cout << "\nCell outcomes:";
    for (std::size_t i = 0; i < outcome_census.size(); ++i)
        if (outcome_census[i] > 0)
            std::cout << " "
                      << toString(
                             static_cast<sweep::CellOutcome>(i))
                      << "=" << outcome_census[i];
    std::cout
        << "\n\nExpected shape: transient faults cost retries but "
           "lose nothing; adding grown defects loses sectors and "
           "flips zones READ_ONLY/OFFLINE; write-pointer "
           "divergence adds recovered WP violations. The clean "
           "profile must match a device-less run exactly.\n";
    cli->emitReports(sweep);
    return 0;
}
