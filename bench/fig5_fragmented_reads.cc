/**
 * @file
 * Regenerates paper Figure 5: CDF of dynamic fragmentation over
 * fragmented reads (un-fragmented reads excluded) under LS
 * translation for usr_0, hm_1, w20 and w36. The paper's
 * observation: fragments concentrate in a small fraction of the
 * reads — for usr_0/hm_1/w20 about 20% of the operations hold over
 * half the fragments.
 *
 * Usage: fig5_fragmented_reads [scale] [seed] [--jobs N]
 *        [--json[=path]] [--csv[=path]] [--paranoid]
 */

#include <iostream>
#include <memory>
#include <vector>

#include "analysis/observers.h"
#include "analysis/report.h"
#include "stl/simulator.h"
#include "sweep/cli.h"
#include "sweep/sweep_runner.h"
#include "workloads/profiles.h"

int
main(int argc, char **argv)
{
    using namespace logseek;

    const auto cli = sweep::parseBenchCli(
        argc, argv, sweep::benchUsage("fig5_fragmented_reads"));
    if (!cli)
        return 2;

    const std::vector<std::string> names{"usr_0", "hm_1", "w20",
                                         "w36"};
    std::vector<sweep::WorkloadSpec> specs;
    for (const auto &name : names)
        specs.push_back(sweep::WorkloadSpec::profile(name, cli->profile));

    stl::SimConfig ls_config;
    ls_config.translation = stl::TranslationKind::LogStructured;

    sweep::SweepOptions options = cli->sweepOptions();
    options.observerFactory =
        cli->observerFactory([](const sweep::RunKey &) {
            std::vector<std::unique_ptr<stl::SimObserver>> obs;
            obs.push_back(
                std::make_unique<analysis::FragmentedReadCdf>());
            return obs;
        });
    sweep::SweepRunner runner(
        std::move(specs),
        {sweep::ConfigSpec::fixed("LS", ls_config)},
        std::move(options));
    const sweep::SweepResult sweep = runner.run();

    for (std::size_t w = 0; w < names.size(); ++w) {
        const auto &cdf = *sweep::findObserver<
            analysis::FragmentedReadCdf>(sweep.row(w, 0));

        std::cout << "# Figure 5: " << names[w]
                  << " fragments-per-fragmented-read CDF\n";
        std::cout << "# fragmented reads: " << cdf.fragmentedReads()
                  << " of " << cdf.totalReads() << " reads, "
                  << cdf.totalFragments() << " fragments total\n";
        if (cdf.fragmentedReads() == 0) {
            std::cout << "# (no fragmented reads)\n\n";
            continue;
        }
        std::cout << "# fragments\tcdf\n";
        const double max_fragments = cdf.fragmentsPerRead().max();
        for (double f = 2.0; f <= max_fragments; f += 1.0) {
            std::cout
                << analysis::formatDouble(f, 0) << "\t"
                << analysis::formatDouble(
                       cdf.fragmentsPerRead().fractionAtOrBelow(f), 4)
                << "\n";
            if (f > 32)
                break; // tail beyond 32 fragments is summarized below
        }
        std::cout << "# p50="
                  << cdf.fragmentsPerRead().percentile(0.5)
                  << " p90=" << cdf.fragmentsPerRead().percentile(0.9)
                  << " max=" << max_fragments << "\n\n";
    }
    cli->emitReports(sweep);
    return 0;
}
