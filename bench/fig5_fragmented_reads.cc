/**
 * @file
 * Regenerates paper Figure 5: CDF of dynamic fragmentation over
 * fragmented reads (un-fragmented reads excluded) under LS
 * translation for usr_0, hm_1, w20 and w36. The paper's
 * observation: fragments concentrate in a small fraction of the
 * reads — for usr_0/hm_1/w20 about 20% of the operations hold over
 * half the fragments.
 *
 * Usage: fig5_fragmented_reads [scale] [seed]
 */

#include <cstdlib>
#include <iostream>

#include "analysis/observers.h"
#include "analysis/report.h"
#include "stl/simulator.h"
#include "workloads/profiles.h"

namespace
{

using namespace logseek;

void
runWorkload(const std::string &name,
            const workloads::ProfileOptions &options)
{
    const trace::Trace trace = workloads::makeWorkload(name, options);

    analysis::FragmentedReadCdf cdf;
    stl::SimConfig config;
    config.translation = stl::TranslationKind::LogStructured;
    stl::Simulator simulator(config);
    simulator.addObserver(&cdf);
    simulator.run(trace);

    std::cout << "# Figure 5: " << name
              << " fragments-per-fragmented-read CDF\n";
    std::cout << "# fragmented reads: " << cdf.fragmentedReads()
              << " of " << cdf.totalReads() << " reads, "
              << cdf.totalFragments() << " fragments total\n";
    if (cdf.fragmentedReads() == 0) {
        std::cout << "# (no fragmented reads)\n\n";
        return;
    }
    std::cout << "# fragments\tcdf\n";
    const double max_fragments = cdf.fragmentsPerRead().max();
    for (double f = 2.0; f <= max_fragments; f += 1.0) {
        std::cout << analysis::formatDouble(f, 0) << "\t"
                  << analysis::formatDouble(
                         cdf.fragmentsPerRead().fractionAtOrBelow(f),
                         4)
                  << "\n";
        if (f > 32)
            break; // tail beyond 32 fragments is summarized below
    }
    std::cout << "# p50=" << cdf.fragmentsPerRead().percentile(0.5)
              << " p90=" << cdf.fragmentsPerRead().percentile(0.9)
              << " max=" << max_fragments << "\n\n";
}

} // namespace

int
main(int argc, char **argv)
{
    workloads::ProfileOptions options;
    if (argc > 1)
        options.scale = std::atof(argv[1]);
    if (argc > 2)
        options.seed =
            static_cast<std::uint64_t>(std::atoll(argv[2]));

    for (const char *name : {"usr_0", "hm_1", "w20", "w36"})
        runWorkload(name, options);
    return 0;
}
