/**
 * @file
 * Cleaning-policy ablation: SAF and write amplification of the
 * finite log under each cleaning policy (greedy, cost-benefit,
 * zone-granular), with and without hot/cold stream separation,
 * across log utilizations of 70/80/90/95%.
 *
 * The log is sized per workload from its live footprint (unique
 * sectors ever written): capacity = footprint / utilization,
 * rounded up to a whole number of segments. Higher utilization
 * leaves the cleaner less slack, so victims are fuller and every
 * reclaim moves more live data — the classic LFS cleaning-cost
 * curve. Cost-benefit's age term should win over greedy's pure
 * utilization ranking precisely in the tight-utilization regime,
 * and stream separation should lower the live fraction of cold
 * victims for update-heavy workloads.
 *
 * Writes the full grid to BENCH_gc_ablation.json (override with
 * --json=path) for tracking, alongside the human-readable tables.
 *
 * Usage: gc_ablation [scale] [seed] [--jobs N] [--json=path]
 *        [--log-capacity N] [--segment-bytes N] [--clean-reserve N]
 *        [--paranoid] ...
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "stl/extent_map.h"
#include "stl/simulator.h"
#include "sweep/cli.h"
#include "sweep/sweep_runner.h"
#include "util/units.h"
#include "workloads/profiles.h"

namespace
{

using namespace logseek;

const std::vector<unsigned> kUtilizations{70, 80, 90, 95};
const std::vector<stl::gc::CleaningPolicyKind> kPolicies{
    stl::gc::CleaningPolicyKind::Greedy,
    stl::gc::CleaningPolicyKind::CostBenefit,
    stl::gc::CleaningPolicyKind::ZoneGranular,
};
const std::vector<std::uint32_t> kStreams{1, 2};

/**
 * Live footprint of a trace in sectors: the unique sectors its
 * writes ever touch. Overwrites do not grow it, so this is exactly
 * the steady-state live volume a finite log must hold.
 */
std::uint64_t
footprintSectors(const trace::Trace &trace)
{
    stl::ExtentMap map;
    for (const auto &record : trace)
        if (record.isWrite())
            map.mapRange(record.extent.start, record.extent.start,
                         record.extent.count);
    return map.mappedSectors();
}

/**
 * Finite-log geometry hitting the requested utilization: capacity
 * = footprint / (util/100), a segment around capacity/128 (64 KiB
 * granular, clamped to [64 KiB, 4 MiB]), capacity rounded up to a
 * whole segment count. A floor of 8 MiB keeps tiny workloads from
 * degenerating below a meaningful segment population.
 */
stl::FiniteLogConfig
sizedForUtilization(const trace::Trace &trace, unsigned util_pct)
{
    const std::uint64_t footprint_bytes =
        sectorsToBytes(footprintSectors(trace));
    const std::uint64_t raw_capacity = std::max<std::uint64_t>(
        8 * kMiB, footprint_bytes * 100 / util_pct);

    stl::FiniteLogConfig config;
    config.segmentBytes = std::clamp<std::uint64_t>(
        raw_capacity / 128, 64 * kKiB, 4 * kMiB);
    config.segmentBytes -= config.segmentBytes % (64 * kKiB);
    config.capacityBytes =
        (raw_capacity + config.segmentBytes - 1) /
        config.segmentBytes * config.segmentBytes;
    config.cleanReserveSegments = 2;
    config.cleanTargetSegments = 4;
    return config;
}

std::string
cellLabel(stl::gc::CleaningPolicyKind policy, std::uint32_t streams,
          unsigned util_pct)
{
    std::string label = stl::gc::toString(policy);
    label += "/s" + std::to_string(streams);
    label += "/u" + std::to_string(util_pct);
    return label;
}

/** Grid config index in the sweep's config axis (0 is NoLS). */
std::size_t
configIndex(std::size_t policy, std::size_t streams,
            std::size_t util)
{
    return 1 +
           (policy * kStreams.size() + streams) *
               kUtilizations.size() +
           util;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto cli = sweep::parseBenchCli(
        argc, argv, sweep::benchUsage("gc_ablation"), 0.01);
    if (!cli)
        return 2;

    const std::vector<std::string> names =
        workloads::allWorkloadNames();
    std::vector<sweep::WorkloadSpec> specs;
    for (const auto &name : names)
        specs.push_back(
            sweep::WorkloadSpec::profile(name, cli->profile));

    stl::SimConfig baseline;
    baseline.translation = stl::TranslationKind::Conventional;
    std::vector<sweep::ConfigSpec> configs{
        sweep::ConfigSpec::fixed("NoLS", baseline)};
    for (const auto policy : kPolicies) {
        for (const std::uint32_t streams : kStreams) {
            for (const unsigned util : kUtilizations) {
                configs.push_back(sweep::ConfigSpec::deferred(
                    cellLabel(policy, streams, util),
                    [policy, streams, util,
                     &cli](const trace::Trace &trace) {
                        stl::SimConfig config;
                        config.translation = stl::TranslationKind::
                            FiniteLogStructured;
                        config.finiteLog =
                            sizedForUtilization(trace, util);
                        config.finiteLog.gc.policy = policy;
                        config.finiteLog.gc.streams = streams;
                        cli->applyFiniteLogOverrides(
                            config.finiteLog);
                        return config;
                    }));
            }
        }
    }

    sweep::SweepOptions options = cli->sweepOptions();
    sweep::SweepRunner runner(std::move(specs), std::move(configs),
                              std::move(options));
    const sweep::SweepResult sweep = runner.run();

    std::cout << "Cleaning-policy ablation: SAF (total seeks vs. "
                 "conventional) and write amplification\n"
                 "(media+cleaning writes / host writes), log sized "
                 "to the listed utilization of each\nworkload's "
                 "live footprint.\n\n";

    for (std::size_t u = 0; u < kUtilizations.size(); ++u) {
        std::cout << "Utilization " << kUtilizations[u] << "%\n\n";
        std::vector<std::string> header{"workload"};
        for (std::size_t p = 0; p < kPolicies.size(); ++p) {
            for (std::size_t s = 0; s < kStreams.size(); ++s) {
                std::string tag = stl::gc::toString(kPolicies[p]);
                tag += "/s" + std::to_string(kStreams[s]);
                header.push_back(tag + " SAF");
                header.push_back(tag + " WA");
            }
        }
        analysis::TextTable table(std::move(header));
        for (std::size_t w = 0; w < names.size(); ++w) {
            std::vector<std::string> row{names[w]};
            for (std::size_t p = 0; p < kPolicies.size(); ++p) {
                for (std::size_t s = 0; s < kStreams.size(); ++s) {
                    const std::size_t c = configIndex(p, s, u);
                    const sweep::RunRow &cell = sweep.row(w, c);
                    if (cell.status.ok()) {
                        row.push_back(analysis::formatRatio(
                            sweep.safVs(w, c)));
                        row.push_back(analysis::formatDouble(
                            cell.result.writeAmplification()));
                    } else {
                        row.push_back("overcommitted");
                        row.push_back("-");
                    }
                }
            }
            table.addRow(std::move(row));
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    // The subsystem's headline claim: cost-benefit beats greedy on
    // WA once utilization is tight (>= 90%), because aging lets it
    // wait out hot segments instead of moving soon-dead data.
    std::vector<std::string> cb_wins_90;
    for (std::size_t w = 0; w < names.size(); ++w) {
        for (std::size_t u = 0; u < kUtilizations.size(); ++u) {
            if (kUtilizations[u] < 90)
                continue;
            const sweep::RunRow &greedy =
                sweep.row(w, configIndex(0, 0, u));
            const sweep::RunRow &cb =
                sweep.row(w, configIndex(1, 0, u));
            if (greedy.status.ok() && cb.status.ok() &&
                cb.result.writeAmplification() <
                    greedy.result.writeAmplification()) {
                cb_wins_90.push_back(
                    names[w] + "@u" +
                    std::to_string(kUtilizations[u]));
            }
        }
    }
    std::cout << "cost-benefit beats greedy on WA at >=90% "
                 "utilization for "
              << cb_wins_90.size() << " cell(s)";
    if (!cb_wins_90.empty()) {
        std::cout << " (first: " << cb_wins_90.front() << ")";
    }
    std::cout << "\n";

    // Machine-readable grid for tracking (every cell, including
    // failed ones — an overcommitted cell is a result, not a gap).
    const std::string path =
        cli->jsonPath && *cli->jsonPath != "-"
            ? *cli->jsonPath
            : "BENCH_gc_ablation.json";
    std::ostringstream json;
    json.precision(6);
    json << "{\n"
         << "  \"benchmark\": \"gc_ablation\",\n"
         << "  \"scale\": " << cli->profile.scale << ",\n"
         << "  \"workloads\": " << names.size() << ",\n"
         << "  \"utilizations\": [70, 80, 90, 95],\n"
         << "  \"policies\": [\"greedy\", \"cost-benefit\", "
            "\"zone-granular\"],\n"
         << "  \"streams\": [1, 2],\n"
         << "  \"costBenefitWaWinsAt90\": " << cb_wins_90.size()
         << ",\n"
         << "  \"cells\": [\n";
    bool first = true;
    for (std::size_t w = 0; w < names.size(); ++w) {
        for (std::size_t p = 0; p < kPolicies.size(); ++p) {
            for (std::size_t s = 0; s < kStreams.size(); ++s) {
                for (std::size_t u = 0; u < kUtilizations.size();
                     ++u) {
                    const std::size_t c = configIndex(p, s, u);
                    const sweep::RunRow &cell = sweep.row(w, c);
                    if (!first)
                        json << ",\n";
                    first = false;
                    json << "    {\"workload\": \"" << names[w]
                         << "\", \"policy\": \""
                         << stl::gc::toString(kPolicies[p])
                         << "\", \"streams\": " << kStreams[s]
                         << ", \"utilizationPct\": "
                         << kUtilizations[u];
                    if (cell.status.ok()) {
                        const auto saf = sweep.safVs(w, c);
                        json << ", \"status\": \"ok\", \"saf\": "
                             << (saf ? *saf : 0.0)
                             << ", \"wa\": "
                             << cell.result.writeAmplification()
                             << ", \"cleaningSeeks\": "
                             << cell.result.cleaningSeeks
                             << ", \"cleaningMerges\": "
                             << cell.result.cleaningMerges
                             << ", \"gcVictimLiveBytes\": "
                             << cell.result.gcVictimLiveBytes
                             << ", \"gcVictimSpanBytes\": "
                             << cell.result.gcVictimSpanBytes;
                    } else {
                        json << ", \"status\": \"overcommitted\"";
                    }
                    json << "}";
                }
            }
        }
    }
    json << "\n  ]\n}\n";

    std::ofstream file(path);
    if (!file) {
        std::cerr << "gc_ablation: cannot write " << path << "\n";
        return 1;
    }
    file << json.str();
    std::cout << "wrote " << path << "\n";
    return 0;
}
