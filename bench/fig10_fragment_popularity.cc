/**
 * @file
 * Regenerates paper Figure 10: fragments sorted by read access
 * count (most to least popular) with the cumulative cache size
 * needed to hold them. The paper's observation: the fragments
 * responsible for the large majority of accesses add up to a few
 * tens of MB — small enough for an on-host (or future on-drive)
 * RAM cache, which motivates translation-aware selective caching.
 *
 * Usage: fig10_fragment_popularity [scale] [seed]
 */

#include <cstdlib>
#include <iostream>

#include "analysis/observers.h"
#include "analysis/report.h"
#include "stl/simulator.h"
#include "workloads/profiles.h"

namespace
{

using namespace logseek;

void
runWorkload(const std::string &name,
            const workloads::ProfileOptions &options)
{
    const trace::Trace trace = workloads::makeWorkload(name, options);

    analysis::FragmentPopularity popularity;
    stl::SimConfig config;
    config.translation = stl::TranslationKind::LogStructured;
    stl::Simulator simulator(config);
    simulator.addObserver(&popularity);
    simulator.run(trace);

    std::cout << "# Figure 10: " << name << " fragment popularity\n";
    const auto sorted = popularity.sortedByPopularity();
    if (sorted.empty()) {
        std::cout << "# (no fragmented reads)\n\n";
        return;
    }

    std::cout << "# fragments: " << sorted.size()
              << ", fragment accesses: " << popularity.totalAccesses()
              << "\n";
    std::cout << "# rank\taccess_count\tcumulative_MiB\n";
    std::uint64_t cumulative = 0;
    const std::size_t step =
        std::max<std::size_t>(1, sorted.size() / 24);
    std::uint64_t printed_until = 0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        cumulative += sorted[i].bytes;
        if (i % step == 0 || i + 1 == sorted.size()) {
            std::cout << i << "\t" << sorted[i].accesses << "\t"
                      << analysis::formatDouble(
                             static_cast<double>(cumulative) /
                                 static_cast<double>(kMiB),
                             2)
                      << "\n";
            printed_until = i;
        }
    }
    (void)printed_until;

    for (const double fraction : {0.5, 0.8, 0.9, 0.99}) {
        std::cout << "# cache needed for "
                  << analysis::formatDouble(fraction * 100.0, 0)
                  << "% of fragment accesses: "
                  << analysis::formatBytes(
                         popularity.bytesForAccessFraction(fraction))
                  << "\n";
    }
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    workloads::ProfileOptions options;
    if (argc > 1)
        options.scale = std::atof(argv[1]);
    if (argc > 2)
        options.seed =
            static_cast<std::uint64_t>(std::atoll(argv[2]));

    for (const char *name : {"usr_1", "hm_1", "web_0", "src2_2",
                             "w20", "w33", "w55", "w106"})
        runWorkload(name, options);
    return 0;
}
