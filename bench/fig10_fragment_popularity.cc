/**
 * @file
 * Regenerates paper Figure 10: fragments sorted by read access
 * count (most to least popular) with the cumulative cache size
 * needed to hold them. The paper's observation: the fragments
 * responsible for the large majority of accesses add up to a few
 * tens of MB — small enough for an on-host (or future on-drive)
 * RAM cache, which motivates translation-aware selective caching.
 *
 * Usage: fig10_fragment_popularity [scale] [seed] [--jobs N]
 *        [--json[=path]] [--csv[=path]] [--paranoid]
 */

#include <algorithm>
#include <iostream>
#include <memory>
#include <vector>

#include "analysis/observers.h"
#include "analysis/report.h"
#include "stl/simulator.h"
#include "sweep/cli.h"
#include "sweep/sweep_runner.h"
#include "workloads/profiles.h"

int
main(int argc, char **argv)
{
    using namespace logseek;

    const auto cli = sweep::parseBenchCli(
        argc, argv, sweep::benchUsage("fig10_fragment_popularity"));
    if (!cli)
        return 2;

    const std::vector<std::string> names{"usr_1", "hm_1", "web_0",
                                         "src2_2", "w20", "w33",
                                         "w55", "w106"};
    std::vector<sweep::WorkloadSpec> specs;
    for (const auto &name : names)
        specs.push_back(sweep::WorkloadSpec::profile(name, cli->profile));

    stl::SimConfig ls_config;
    ls_config.translation = stl::TranslationKind::LogStructured;

    sweep::SweepOptions options = cli->sweepOptions();
    options.observerFactory =
        cli->observerFactory([](const sweep::RunKey &) {
            std::vector<std::unique_ptr<stl::SimObserver>> obs;
            obs.push_back(
                std::make_unique<analysis::FragmentPopularity>());
            return obs;
        });
    sweep::SweepRunner runner(
        std::move(specs),
        {sweep::ConfigSpec::fixed("LS", ls_config)},
        std::move(options));
    const sweep::SweepResult sweep = runner.run();

    for (std::size_t w = 0; w < names.size(); ++w) {
        const auto &popularity = *sweep::findObserver<
            analysis::FragmentPopularity>(sweep.row(w, 0));

        std::cout << "# Figure 10: " << names[w]
                  << " fragment popularity\n";
        const auto sorted = popularity.sortedByPopularity();
        if (sorted.empty()) {
            std::cout << "# (no fragmented reads)\n\n";
            continue;
        }

        std::cout << "# fragments: " << sorted.size()
                  << ", fragment accesses: "
                  << popularity.totalAccesses() << "\n";
        std::cout << "# rank\taccess_count\tcumulative_MiB\n";
        std::uint64_t cumulative = 0;
        const std::size_t step =
            std::max<std::size_t>(1, sorted.size() / 24);
        for (std::size_t i = 0; i < sorted.size(); ++i) {
            cumulative += sorted[i].bytes;
            if (i % step == 0 || i + 1 == sorted.size()) {
                std::cout << i << "\t" << sorted[i].accesses << "\t"
                          << analysis::formatDouble(
                                 static_cast<double>(cumulative) /
                                     static_cast<double>(kMiB),
                                 2)
                          << "\n";
            }
        }

        for (const double fraction : {0.5, 0.8, 0.9, 0.99}) {
            std::cout << "# cache needed for "
                      << analysis::formatDouble(fraction * 100.0, 0)
                      << "% of fragment accesses: "
                      << analysis::formatBytes(
                             popularity.bytesForAccessFraction(
                                 fraction))
                      << "\n";
        }
        std::cout << "\n";
    }
    cli->emitReports(sweep);
    return 0;
}
