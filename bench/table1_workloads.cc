/**
 * @file
 * Regenerates paper Table I: workload characteristics (request
 * counts, transferred volumes, mean write size) for every named
 * profile, next to the paper's reference values. Generated counts
 * are scaled by the profile scale factor (default 1:50), so the
 * columns to compare are the ratios, not the absolutes.
 *
 * Usage: table1_workloads [scale] [seed]
 */

#include <cstdlib>
#include <iostream>

#include "analysis/report.h"
#include "trace/stats.h"
#include "workloads/profiles.h"

int
main(int argc, char **argv)
{
    using namespace logseek;

    workloads::ProfileOptions options;
    if (argc > 1)
        options.scale = std::atof(argv[1]);
    if (argc > 2)
        options.seed =
            static_cast<std::uint64_t>(std::atoll(argv[2]));

    std::cout << "Table I: workload characteristics (generated at "
              << "scale " << options.scale
              << " of the paper's request counts)\n\n";

    analysis::TextTable table(
        {"workload", "suite", "reads", "writes", "read GiB",
         "written GiB", "mean write KiB", "paper mean write KiB",
         "OS (guest)"});

    for (const auto &info : workloads::workloadTable()) {
        const trace::Trace trace =
            workloads::makeWorkload(info.name, options);
        const trace::TraceStats stats = trace::computeStats(trace);
        table.addRow({info.name, info.suite,
                      std::to_string(stats.readCount),
                      std::to_string(stats.writeCount),
                      analysis::formatDouble(stats.readGiB(), 2),
                      analysis::formatDouble(stats.writtenGiB(), 2),
                      analysis::formatDouble(stats.meanWriteSizeKiB(),
                                             1),
                      analysis::formatDouble(info.tableMeanWriteKiB,
                                             1),
                      info.os});
    }
    table.print(std::cout);

    std::cout << "\nPaper reference counts (unscaled):\n\n";
    analysis::TextTable reference(
        {"workload", "paper reads", "paper writes", "behavior"});
    for (const auto &info : workloads::workloadTable()) {
        reference.addRow({info.name,
                          std::to_string(info.tableReads),
                          std::to_string(info.tableWrites),
                          info.behavior});
    }
    reference.print(std::cout);
    return 0;
}
