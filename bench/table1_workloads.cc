/**
 * @file
 * Regenerates paper Table I: workload characteristics (request
 * counts, transferred volumes, mean write size) for every named
 * profile, next to the paper's reference values. Generated counts
 * are scaled by the profile scale factor (default 1:50), so the
 * columns to compare are the ratios, not the absolutes.
 *
 * Usage: table1_workloads [scale] [seed] [--jobs N]
 */

#include <iostream>
#include <vector>

#include "analysis/report.h"
#include "sweep/cli.h"
#include "sweep/sweep_runner.h"
#include "trace/stats.h"
#include "workloads/profiles.h"

int
main(int argc, char **argv)
{
    using namespace logseek;

    const auto cli = sweep::parseBenchCli(
        argc, argv, sweep::benchUsage("table1_workloads"));
    if (!cli)
        return 2;

    std::cout << "Table I: workload characteristics (generated at "
              << "scale " << cli->profile.scale
              << " of the paper's request counts)\n\n";

    const auto infos = workloads::workloadTable();
    std::vector<sweep::WorkloadSpec> specs;
    for (const auto &info : infos)
        specs.push_back(
            sweep::WorkloadSpec::profile(info.name, cli->profile));

    // Trace-only sweep: no configs, just a per-workload stats hook.
    std::vector<trace::TraceStats> stats(infos.size());
    sweep::SweepOptions options = cli->sweepOptions();
    auto chained = std::move(options.onTrace);
    options.onTrace = [&stats, chained](std::size_t w,
                                        const trace::Trace &trace) {
        if (chained)
            chained(w, trace);
        stats[w] = trace::computeStats(trace);
    };
    sweep::SweepRunner runner(std::move(specs), {},
                              std::move(options));
    runner.run();

    analysis::TextTable table(
        {"workload", "suite", "reads", "writes", "read GiB",
         "written GiB", "mean write KiB", "paper mean write KiB",
         "OS (guest)"});
    for (std::size_t w = 0; w < infos.size(); ++w) {
        const auto &info = infos[w];
        table.addRow({info.name, info.suite,
                      std::to_string(stats[w].readCount),
                      std::to_string(stats[w].writeCount),
                      analysis::formatDouble(stats[w].readGiB(), 2),
                      analysis::formatDouble(stats[w].writtenGiB(), 2),
                      analysis::formatDouble(
                          stats[w].meanWriteSizeKiB(), 1),
                      analysis::formatDouble(info.tableMeanWriteKiB,
                                             1),
                      info.os});
    }
    table.print(std::cout);

    std::cout << "\nPaper reference counts (unscaled):\n\n";
    analysis::TextTable reference(
        {"workload", "paper reads", "paper writes", "behavior"});
    for (const auto &info : infos) {
        reference.addRow({info.name,
                          std::to_string(info.tableReads),
                          std::to_string(info.tableWrites),
                          info.behavior});
    }
    reference.print(std::cout);
    return 0;
}
