/**
 * @file
 * Ablation: selective-cache capacity sweep. The paper evaluates a
 * single 64 MB cache (§V) and motivates the size from Figure 10
 * (hot fragments total a few tens of MB). This sweep shows SAF as
 * the cache shrinks and grows around that point.
 *
 * Usage: ablation_cache_size [scale] [seed] [--jobs N]
 *        [--json[=path]] [--csv[=path]] [--paranoid]
 */

#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "saf_sweep.h"

int
main(int argc, char **argv)
{
    using namespace logseek;

    const auto cli = sweep::parseBenchCli(
        argc, argv, sweep::benchUsage("ablation_cache_size"),
        0.01);
    if (!cli)
        return 2;

    const std::vector<std::uint64_t> sizes_mib{4, 16, 64, 256};

    std::cout << "Selective-cache capacity ablation (SAF)\n\n";

    std::vector<sweep::ConfigSpec> configs{
        bench::conventionalBaseline(),
        sweep::ConfigSpec::fixed("LS", bench::logStructured())};
    for (const std::uint64_t mib : sizes_mib) {
        stl::SimConfig config = bench::logStructured();
        config.cache = stl::SelectiveCacheConfig{mib * kMiB};
        configs.push_back(sweep::ConfigSpec::fixed(
            std::to_string(mib) + " MiB", std::move(config)));
    }

    const sweep::SweepResult sweep = bench::runSafTable(
        {"w91", "hm_1", "w33", "w20", "w55"}, std::move(configs),
        *cli);

    std::cout << "\nExpected shape: SAF falls until the hot "
                 "fragment set fits (a few tens of MB, per Fig. "
                 "10), then flattens — the paper's 64 MB sits at "
                 "the knee.\n";
    cli->emitReports(sweep);
    return 0;
}
