/**
 * @file
 * Ablation: selective-cache capacity sweep. The paper evaluates a
 * single 64 MB cache (§V) and motivates the size from Figure 10
 * (hot fragments total a few tens of MB). This sweep shows SAF as
 * the cache shrinks and grows around that point.
 *
 * Usage: ablation_cache_size [scale] [seed]
 */

#include <cstdlib>
#include <iostream>

#include "analysis/report.h"
#include "stl/simulator.h"
#include "workloads/profiles.h"

int
main(int argc, char **argv)
{
    using namespace logseek;

    workloads::ProfileOptions options;
    options.scale = argc > 1 ? std::atof(argv[1]) : 0.01;
    if (argc > 2)
        options.seed =
            static_cast<std::uint64_t>(std::atoll(argv[2]));

    const std::vector<std::uint64_t> sizes_mib{4, 16, 64, 256};

    std::cout << "Selective-cache capacity ablation (SAF)\n\n";
    std::vector<std::string> headers{"workload", "LS"};
    for (const std::uint64_t mib : sizes_mib)
        headers.push_back(std::to_string(mib) + " MiB");
    analysis::TextTable table(headers);

    for (const char *name : {"w91", "hm_1", "w33", "w20", "w55"}) {
        const trace::Trace trace =
            workloads::makeWorkload(name, options);

        stl::SimConfig baseline;
        baseline.translation = stl::TranslationKind::Conventional;
        const stl::SimResult nols =
            stl::Simulator(baseline).run(trace);

        stl::SimConfig plain;
        plain.translation = stl::TranslationKind::LogStructured;
        std::vector<std::string> row{
            name, analysis::formatDouble(stl::seekAmplification(
                      nols, stl::Simulator(plain).run(trace)))};

        for (const std::uint64_t mib : sizes_mib) {
            stl::SimConfig config = plain;
            config.cache = stl::SelectiveCacheConfig{mib * kMiB};
            row.push_back(analysis::formatDouble(
                stl::seekAmplification(
                    nols, stl::Simulator(config).run(trace))));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: SAF falls until the hot "
                 "fragment set fits (a few tens of MB, per Fig. "
                 "10), then flattens — the paper's 64 MB sits at "
                 "the knee.\n";
    return 0;
}
