/**
 * @file
 * Unit tests for IoRecord and Trace.
 */

#include <gtest/gtest.h>

#include "trace/trace.h"
#include "util/logging.h"

namespace logseek::trace
{
namespace
{

TEST(IoRecord, MakeReadAndWriteHelpers)
{
    const IoRecord read = makeRead(100, 8, 42);
    EXPECT_TRUE(read.isRead());
    EXPECT_FALSE(read.isWrite());
    EXPECT_EQ(read.extent, (SectorExtent{100, 8}));
    EXPECT_EQ(read.timestampUs, 42u);

    const IoRecord write = makeWrite(200, 16);
    EXPECT_TRUE(write.isWrite());
    EXPECT_EQ(write.timestampUs, 0u);
}

TEST(IoRecord, ToStringNames)
{
    EXPECT_STREQ(toString(IoType::Read), "Read");
    EXPECT_STREQ(toString(IoType::Write), "Write");
}

TEST(Trace, StartsEmpty)
{
    const Trace trace("test");
    EXPECT_TRUE(trace.empty());
    EXPECT_EQ(trace.size(), 0u);
    EXPECT_EQ(trace.addressSpaceEnd(), 0u);
    EXPECT_EQ(trace.durationUs(), 0u);
    EXPECT_EQ(trace.name(), "test");
}

TEST(Trace, AppendPreservesOrder)
{
    Trace trace;
    trace.appendRead(10, 2, 1);
    trace.appendWrite(20, 4, 2);
    trace.appendRead(5, 1, 3);
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_TRUE(trace[0].isRead());
    EXPECT_TRUE(trace[1].isWrite());
    EXPECT_EQ(trace[2].extent.start, 5u);
}

TEST(Trace, AddressSpaceEndTracksHighestSector)
{
    Trace trace;
    trace.appendWrite(100, 10);
    EXPECT_EQ(trace.addressSpaceEnd(), 110u);
    trace.appendRead(5000, 8);
    EXPECT_EQ(trace.addressSpaceEnd(), 5008u);
    trace.appendWrite(10, 1);
    EXPECT_EQ(trace.addressSpaceEnd(), 5008u);
}

TEST(Trace, DurationIsLastTimestamp)
{
    Trace trace;
    trace.appendRead(0, 1, 100);
    trace.appendRead(0, 1, 2500);
    EXPECT_EQ(trace.durationUs(), 2500u);
}

TEST(Trace, EmptyExtentPanics)
{
    Trace trace;
    EXPECT_THROW(trace.append(IoRecord{0, IoType::Read, {5, 0}}),
                 PanicError);
}

TEST(Trace, RangeForIteration)
{
    Trace trace;
    trace.appendRead(1, 1);
    trace.appendWrite(2, 1);
    std::size_t count = 0;
    for (const auto &record : trace) {
        (void)record;
        ++count;
    }
    EXPECT_EQ(count, 2u);
}

TEST(Trace, AppendAllConcatenates)
{
    Trace a("a");
    a.appendRead(10, 2);
    Trace b("b");
    b.appendWrite(500, 4);
    b.appendRead(20, 1);
    a.appendAll(b);
    ASSERT_EQ(a.size(), 3u);
    EXPECT_EQ(a.addressSpaceEnd(), 504u);
    EXPECT_EQ(a.name(), "a");
}

TEST(Trace, SetNameReplaces)
{
    Trace trace("old");
    trace.setName("new");
    EXPECT_EQ(trace.name(), "new");
}

} // namespace
} // namespace logseek::trace
