/**
 * @file
 * Unit tests for the LSKT binary trace format.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "trace/binary.h"
#include "util/logging.h"
#include "util/random.h"

namespace logseek::trace
{
namespace
{

Trace
sampleTrace()
{
    Trace trace("sample");
    trace.appendRead(100, 8, 0);
    trace.appendWrite(5000, 64, 1234);
    trace.appendRead(0, 1, 99999);
    return trace;
}

TEST(BinaryTrace, RoundTripsRecordsExactly)
{
    const Trace original = sampleTrace();
    std::stringstream buffer(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeBinaryTrace(buffer, original);
    const Trace parsed = readBinaryTrace(buffer);

    EXPECT_EQ(parsed.name(), original.name());
    ASSERT_EQ(parsed.size(), original.size());
    for (std::size_t i = 0; i < parsed.size(); ++i)
        EXPECT_EQ(parsed[i], original[i]) << "record " << i;
    EXPECT_EQ(parsed.addressSpaceEnd(), original.addressSpaceEnd());
}

TEST(BinaryTrace, RoundTripsEmptyTrace)
{
    std::stringstream buffer(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeBinaryTrace(buffer, Trace("empty"));
    const Trace parsed = readBinaryTrace(buffer);
    EXPECT_EQ(parsed.name(), "empty");
    EXPECT_TRUE(parsed.empty());
}

TEST(BinaryTrace, RoundTripsLargeRandomTrace)
{
    Rng rng(3);
    Trace original("fuzz");
    for (int i = 0; i < 5000; ++i) {
        const SectorCount count = 1 + rng.nextUint(128);
        const Lba lba = rng.nextUint(1ULL << 40);
        if (rng.nextBool(0.5))
            original.appendWrite(lba, count, rng.nextUint(1u << 30));
        else
            original.appendRead(lba, count, rng.nextUint(1u << 30));
    }
    std::stringstream buffer(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeBinaryTrace(buffer, original);
    const Trace parsed = readBinaryTrace(buffer);
    ASSERT_EQ(parsed.size(), original.size());
    for (std::size_t i = 0; i < parsed.size(); i += 97)
        EXPECT_EQ(parsed[i], original[i]);
}

TEST(BinaryTrace, RejectsBadMagic)
{
    std::stringstream buffer("NOPE and then some garbage");
    EXPECT_THROW(readBinaryTrace(buffer), FatalError);
}

TEST(BinaryTrace, RejectsWrongVersion)
{
    std::stringstream buffer(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeBinaryTrace(buffer, sampleTrace());
    std::string bytes = buffer.str();
    bytes[4] = 99; // bump version field
    std::istringstream in(bytes);
    EXPECT_THROW(readBinaryTrace(in), FatalError);
}

TEST(BinaryTrace, RejectsTruncation)
{
    std::stringstream buffer(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeBinaryTrace(buffer, sampleTrace());
    const std::string bytes = buffer.str();
    // Chop mid-record.
    std::istringstream in(bytes.substr(0, bytes.size() - 5));
    EXPECT_THROW(readBinaryTrace(in), FatalError);
}

TEST(BinaryTrace, RejectsInvalidRecordType)
{
    std::stringstream buffer(std::ios::in | std::ios::out |
                             std::ios::binary);
    Trace one("t");
    one.appendRead(0, 1, 0);
    writeBinaryTrace(buffer, one);
    std::string bytes = buffer.str();
    // The type byte sits 8 bytes into the first record; the record
    // section starts after 4 magic + 4 version + 4 namelen + 1 name
    // + 8 count = 21 bytes.
    bytes[21 + 8] = 7;
    std::istringstream in(bytes);
    EXPECT_THROW(readBinaryTrace(in), FatalError);
}

TEST(BinaryTrace, FileRoundTrip)
{
    const std::string path = "/tmp/logseek_binary_test.lskt";
    writeBinaryTraceFile(path, sampleTrace());
    const Trace parsed = readBinaryTraceFile(path);
    EXPECT_EQ(parsed.size(), 3u);
    std::remove(path.c_str());
}

TEST(BinaryTrace, MissingFileIsFatal)
{
    EXPECT_THROW(readBinaryTraceFile("/nonexistent/x.lskt"),
                 FatalError);
}

TEST(BinaryTrace, EveryPrefixTruncationIsTypedError)
{
    std::stringstream buffer(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeBinaryTrace(buffer, sampleTrace());
    const std::string bytes = buffer.str();
    // The record count in the header promises more bytes than any
    // strict prefix delivers, so every truncation point — inside
    // the magic, the name, the count, or a record — must yield a
    // typed DataLoss, never a crash or a silently shorter trace.
    for (std::size_t length = 0; length < bytes.size(); ++length) {
        std::istringstream in(bytes.substr(0, length));
        const StatusOr<Trace> result = tryReadBinaryTrace(in);
        ASSERT_FALSE(result.ok()) << "prefix length " << length;
        EXPECT_EQ(result.status().code(), StatusCode::DataLoss)
            << "prefix length " << length;
    }
}

TEST(BinaryTrace, ExhaustiveBitFlipsNeverCrash)
{
    std::stringstream buffer(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeBinaryTrace(buffer, sampleTrace());
    const std::string bytes = buffer.str();
    // Flip every bit of the serialized trace in turn: the reader
    // must return a trace or a typed error for each, never throw.
    for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
        std::string flipped = bytes;
        flipped[bit / 8] = static_cast<char>(
            static_cast<unsigned char>(flipped[bit / 8]) ^
            (1u << (bit % 8)));
        std::istringstream in(flipped);
        EXPECT_NO_THROW(tryReadBinaryTrace(in)) << "bit " << bit;
    }
}

TEST(BinaryTrace, WrongVersionIsInvalidArgument)
{
    std::stringstream buffer(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeBinaryTrace(buffer, sampleTrace());
    std::string bytes = buffer.str();
    bytes[4] = 99;
    std::istringstream in(bytes);
    const StatusOr<Trace> result = tryReadBinaryTrace(in);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::InvalidArgument);
}

TEST(BinaryTrace, ImplausibleNameLengthIsDataLoss)
{
    std::stringstream buffer(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeBinaryTrace(buffer, sampleTrace());
    std::string bytes = buffer.str();
    // Set the high byte of nameLen: a >16M name must be rejected as
    // corruption before any allocation is attempted.
    bytes[11] = static_cast<char>(0xff);
    std::istringstream in(bytes);
    const StatusOr<Trace> result = tryReadBinaryTrace(in);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::DataLoss);
    EXPECT_NE(result.status().message().find("name length"),
              std::string::npos);
}

TEST(BinaryTrace, MissingFileIsTypedNotFoundWithDetail)
{
    const StatusOr<Trace> result =
        tryReadBinaryTraceFile("/nonexistent/x.lskt");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::NotFound);
    // The message must carry the strerror(errno) detail.
    EXPECT_NE(result.status().message().find("No such file"),
              std::string::npos)
        << result.status().message();
}

TEST(BinaryTrace, MoreCompactThanCsv)
{
    Rng rng(9);
    Trace trace("size");
    for (int i = 0; i < 1000; ++i)
        trace.appendWrite(rng.nextUint(1ULL << 35),
                          1 + rng.nextUint(64),
                          rng.nextUint(1u << 30));
    std::stringstream binary(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeBinaryTrace(binary, trace);
    // 25 bytes per record plus a small header.
    EXPECT_LT(binary.str().size(), 1000 * 25 + 64);
}

} // namespace
} // namespace logseek::trace
