/**
 * @file
 * Unit tests for the MSR CSV trace parser/writer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "trace/msr_csv.h"
#include "util/logging.h"

namespace logseek::trace
{
namespace
{

int
countOccurrences(const std::string &haystack,
                 const std::string &needle)
{
    int count = 0;
    for (std::size_t pos = haystack.find(needle);
         pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        ++count;
    return count;
}

TEST(MsrCsv, ParsesBasicRecords)
{
    std::istringstream in(
        "128166372003061629,hm,0,Read,383496192,32768,1331\n"
        "128166372003071629,hm,0,Write,1024,512,90\n");
    const Trace trace = parseMsrCsv(in, "hm_0");
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace.name(), "hm_0");

    EXPECT_TRUE(trace[0].isRead());
    EXPECT_EQ(trace[0].extent.start, 383496192u / kSectorBytes);
    EXPECT_EQ(trace[0].extent.count, 32768u / kSectorBytes);
    EXPECT_EQ(trace[0].timestampUs, 0u); // epoch-relative

    EXPECT_TRUE(trace[1].isWrite());
    EXPECT_EQ(trace[1].extent, (SectorExtent{2, 1}));
    EXPECT_EQ(trace[1].timestampUs, 1000u); // 10000 ticks = 1 ms
}

TEST(MsrCsv, RoundsPartialSectorsOutward)
{
    // Offset 100 (inside sector 0), length 600 -> covers sectors 0-1.
    std::istringstream in("0,h,0,Read,100,600,0\n");
    const Trace trace = parseMsrCsv(in, "t");
    ASSERT_EQ(trace.size(), 1u);
    EXPECT_EQ(trace[0].extent, (SectorExtent{0, 2}));
}

TEST(MsrCsv, SkipsBlankLinesAndCarriageReturns)
{
    std::istringstream in("\n0,h,0,Read,0,512,0\r\n\n");
    const Trace trace = parseMsrCsv(in, "t");
    EXPECT_EQ(trace.size(), 1u);
}

TEST(MsrCsv, DiskFilterKeepsOnlyMatching)
{
    std::istringstream in("0,h,0,Read,0,512,0\n"
                          "10,h,1,Read,512,512,0\n"
                          "20,h,0,Write,1024,512,0\n");
    MsrCsvOptions options;
    options.diskFilter = 0;
    const Trace trace = parseMsrCsv(in, "t", options);
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_TRUE(trace[0].isRead());
    EXPECT_TRUE(trace[1].isWrite());
}

TEST(MsrCsv, MalformedLineIsFatalByDefault)
{
    std::istringstream in("not,a,valid,msr,line\n");
    EXPECT_THROW(parseMsrCsv(in, "t"), FatalError);
}

TEST(MsrCsv, MalformedTypeIsFatal)
{
    std::istringstream in("0,h,0,Trim,0,512,0\n");
    EXPECT_THROW(parseMsrCsv(in, "t"), FatalError);
}

TEST(MsrCsv, ZeroLengthIsFatal)
{
    std::istringstream in("0,h,0,Read,0,0,0\n");
    EXPECT_THROW(parseMsrCsv(in, "t"), FatalError);
}

TEST(MsrCsv, SkipMalformedKeepsGoodLines)
{
    std::istringstream in("garbage\n"
                          "0,h,0,Read,0,512,0\n"
                          "0,h,0,BadType,0,512,0\n"
                          "10,h,0,Write,512,512,0\n");
    MsrCsvOptions options;
    options.skipMalformed = true;
    const Trace trace = parseMsrCsv(in, "t", options);
    EXPECT_EQ(trace.size(), 2u);
}

TEST(MsrCsv, LowercaseTypeAccepted)
{
    std::istringstream in("0,h,0,read,0,512,0\n"
                          "0,h,0,write,512,512,0\n");
    const Trace trace = parseMsrCsv(in, "t");
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_TRUE(trace[0].isRead());
    EXPECT_TRUE(trace[1].isWrite());
}

TEST(MsrCsv, TimestampsAreEpochRelative)
{
    std::istringstream in("5000000,h,0,Read,0,512,0\n"
                          "5000100,h,0,Read,512,512,0\n");
    const Trace trace = parseMsrCsv(in, "t");
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace[0].timestampUs, 0u);
    EXPECT_EQ(trace[1].timestampUs, 10u); // 100 ticks = 10 us
}

TEST(MsrCsv, WriteThenParseRoundTrips)
{
    Trace original("rt");
    original.appendRead(100, 8, 0);
    original.appendWrite(5000, 64, 1234);
    original.appendRead(0, 1, 99999);

    std::ostringstream out;
    writeMsrCsv(out, original, "host", 3);

    std::istringstream in(out.str());
    const Trace parsed = parseMsrCsv(in, "rt");
    ASSERT_EQ(parsed.size(), original.size());
    for (std::size_t i = 0; i < parsed.size(); ++i) {
        EXPECT_EQ(parsed[i].type, original[i].type) << "record " << i;
        EXPECT_EQ(parsed[i].extent, original[i].extent)
            << "record " << i;
        EXPECT_EQ(parsed[i].timestampUs, original[i].timestampUs)
            << "record " << i;
    }
}

TEST(MsrCsv, WriterEmitsSevenFields)
{
    Trace trace("t");
    trace.appendWrite(10, 2, 7);
    std::ostringstream out;
    writeMsrCsv(out, trace);
    const std::string line = out.str();
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 6);
    EXPECT_NE(line.find("Write"), std::string::npos);
}

TEST(MsrCsv, MissingFileIsFatal)
{
    EXPECT_THROW(
        parseMsrCsvFile("/nonexistent/path/trace.csv", "x"),
        FatalError);
}

TEST(MsrCsv, ExtraFieldsTolerated)
{
    std::istringstream in("0,h,0,Read,0,512,0,extra,fields\n");
    const Trace trace = parseMsrCsv(in, "t");
    EXPECT_EQ(trace.size(), 1u);
}

TEST(MsrCsv, MalformedLineIsTypedDataLoss)
{
    std::istringstream in("not,a,valid,msr,line\n");
    const StatusOr<MsrParseResult> result =
        tryParseMsrCsv(in, "t");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::DataLoss);
    // The message names the offending line.
    EXPECT_NE(result.status().message().find("line 1"),
              std::string::npos);
}

TEST(MsrCsv, MissingFileIsTypedNotFoundWithDetail)
{
    const StatusOr<MsrParseResult> result =
        tryParseMsrCsvFile("/nonexistent/path/trace.csv", "x");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::NotFound);
    // The message must carry the strerror(errno) detail.
    EXPECT_NE(result.status().message().find("No such file"),
              std::string::npos)
        << result.status().message();
}

TEST(MsrCsv, TimestampUnderflowClampedAndCounted)
{
    // The second record's clock runs backwards; it must clamp to
    // the epoch, warn once, and be counted in the parse summary
    // instead of silently flattening.
    std::istringstream in("5000,h,0,Read,0,512,0\n"
                          "4000,h,0,Read,512,512,0\n"
                          "3000,h,0,Read,1024,512,0\n"
                          "6000,h,0,Read,1536,512,0\n");
    ::testing::internal::CaptureStderr();
    const StatusOr<MsrParseResult> result =
        tryParseMsrCsv(in, "t");
    const std::string log =
        ::testing::internal::GetCapturedStderr();
    ASSERT_TRUE(result.ok());
    const MsrParseResult &parsed = result.value();
    EXPECT_EQ(parsed.summary.timestampUnderflows, 2u);
    ASSERT_EQ(parsed.trace.size(), 4u);
    EXPECT_EQ(parsed.trace[1].timestampUs, 0u);
    EXPECT_EQ(parsed.trace[2].timestampUs, 0u);
    EXPECT_EQ(parsed.trace[3].timestampUs, 100u);
    // One warning for the first underflow only.
    EXPECT_EQ(countOccurrences(log, "precedes the first record"),
              1);
}

TEST(MsrCsv, SkippedLineWarningsAreCapped)
{
    // 30 malformed lines with a 10-warning cap: at most 10 per-line
    // warnings plus one final summary, so a corrupt multi-million
    // line trace cannot flood stderr.
    std::string bytes;
    for (int i = 0; i < 30; ++i)
        bytes += "garbage\n";
    bytes += "0,h,0,Read,0,512,0\n";
    MsrCsvOptions options;
    options.skipMalformed = true;
    options.maxWarnings = 10;
    std::istringstream in(bytes);
    ::testing::internal::CaptureStderr();
    const StatusOr<MsrParseResult> result =
        tryParseMsrCsv(in, "t", options);
    const std::string log =
        ::testing::internal::GetCapturedStderr();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().summary.skipped, 30u);
    EXPECT_EQ(result.value().summary.parsed, 1u);
    EXPECT_EQ(countOccurrences(log, "skipped:"), 10);
    EXPECT_NE(log.find("skipped 30 of 31 lines"),
              std::string::npos);
}

TEST(MsrCsv, ErrorBudgetExceededIsResourceExhausted)
{
    std::string bytes;
    for (int i = 0; i < 20; ++i)
        bytes += "garbage\n";
    MsrCsvOptions options;
    options.skipMalformed = true;
    options.errorBudget = 5;
    options.maxWarnings = 0;
    std::istringstream in(bytes);
    const StatusOr<MsrParseResult> result =
        tryParseMsrCsv(in, "t", options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(),
              StatusCode::ResourceExhausted);
    EXPECT_NE(result.status().message().find("error budget"),
              std::string::npos);
}

TEST(MsrCsv, SummaryAccountsForEveryLine)
{
    std::istringstream in("0,h,0,Read,0,512,0\n"
                          "garbage\n"
                          "\n"
                          "10,h,1,Read,512,512,0\n"
                          "20,h,0,Write,1024,512,0\n");
    MsrCsvOptions options;
    options.skipMalformed = true;
    options.maxWarnings = 0;
    options.diskFilter = 0;
    const StatusOr<MsrParseResult> result =
        tryParseMsrCsv(in, "t", options);
    ASSERT_TRUE(result.ok());
    const MsrParseSummary &summary = result.value().summary;
    EXPECT_EQ(summary.lines, 4u); // blank line not counted
    EXPECT_EQ(summary.parsed, 2u);
    EXPECT_EQ(summary.skipped, 1u);
    EXPECT_EQ(summary.filtered, 1u);
}

} // namespace
} // namespace logseek::trace
