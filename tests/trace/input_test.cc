/**
 * @file
 * Tests for the pull-based TraceInput abstraction: TraceRef batch
 * semantics, reset/rewind, materialize round-trips, IoEventBatch
 * owned-vs-bound column modes, and InMemoryTraceSource cursor
 * independence.
 */

#include <gtest/gtest.h>

#include <memory>

#include "trace/input.h"
#include "trace/io_batch.h"
#include "util/random.h"

namespace logseek::trace
{
namespace
{

Trace
randomTrace(std::uint64_t seed, std::size_t ops)
{
    Rng rng(seed);
    Trace trace("input-" + std::to_string(seed));
    for (std::size_t i = 0; i < ops; ++i) {
        const SectorCount count = 1 + rng.nextUint(64);
        const Lba lba = rng.nextUint(1ULL << 28);
        if (rng.nextBool(0.4))
            trace.appendWrite(lba, count, i * 10);
        else
            trace.appendRead(lba, count, i * 10);
    }
    return trace;
}

TEST(TraceInput, TraceRefServesEveryRecordInOrder)
{
    const Trace trace = randomTrace(1, 1000);
    TraceRef input(trace);
    EXPECT_EQ(input.name(), trace.name());
    EXPECT_EQ(input.addressSpaceEnd(), trace.addressSpaceEnd());
    ASSERT_TRUE(input.sizeHint().has_value());
    EXPECT_EQ(*input.sizeHint(), trace.size());

    IoEventBatch batch;
    std::size_t seen = 0;
    // A batch size that does not divide the trace exercises the
    // short final batch.
    for (;;) {
        const std::size_t n = input.next(batch, 97);
        if (n == 0)
            break;
        ASSERT_EQ(batch.size(), n);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(batch.record(i), trace[seen + i])
                << "record " << seen + i;
        seen += n;
    }
    EXPECT_EQ(seen, trace.size());
    // Exhausted inputs keep returning 0.
    EXPECT_EQ(input.next(batch, 97), 0u);
}

TEST(TraceInput, ResetReproducesTheIdenticalSequence)
{
    const Trace trace = randomTrace(2, 500);
    TraceRef input(trace);
    IoEventBatch batch;
    // Drain half, reset, then check a full pass from the start.
    std::size_t drained = 0;
    while (drained < 250)
        drained += input.next(batch, 64);
    input.reset();
    const Trace replayed = materialize(input);
    ASSERT_EQ(replayed.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i)
        ASSERT_EQ(replayed[i], trace[i]);
}

TEST(TraceInput, MaterializeRoundTripsNameSpaceAndRecords)
{
    const Trace trace = randomTrace(3, 200);
    TraceRef input(trace);
    const Trace copy = materialize(input);
    EXPECT_EQ(copy.name(), trace.name());
    EXPECT_EQ(copy.addressSpaceEnd(), trace.addressSpaceEnd());
    ASSERT_EQ(copy.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(copy[i], trace[i]);
}

TEST(TraceInput, InMemorySourceCursorsAreIndependent)
{
    InMemoryTraceSource source(randomTrace(4, 300));
    ASSERT_NE(source.memoryTrace(), nullptr);
    const Trace &trace = *source.memoryTrace();

    std::unique_ptr<TraceInput> a = source.open();
    std::unique_ptr<TraceInput> b = source.open();
    IoEventBatch batch;
    // Advancing one cursor must not move the other.
    ASSERT_EQ(a->next(batch, 100), 100u);
    const Trace from_b = materialize(*b);
    ASSERT_EQ(from_b.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i)
        ASSERT_EQ(from_b[i], trace[i]);
}

TEST(TraceInput, BatchOwnedModeRebuildsAfterBoundMode)
{
    const Trace trace = randomTrace(5, 50);
    IoEventBatch batch;
    batch.buildFrom(trace, 0, 10);
    ASSERT_EQ(batch.size(), 10u);
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_EQ(batch.record(i), trace[i]);

    // Bind external columns (here: another batch's copies would
    // alias, so use the trace's own records via a second owned
    // build), then verify owned append still works after clear().
    batch.clear();
    EXPECT_EQ(batch.size(), 0u);
    batch.append(trace[20]);
    batch.append(trace[21]);
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch.record(0), trace[20]);
    EXPECT_EQ(batch.record(1), trace[21]);
}

TEST(TraceInput, BatchBindServesExternalColumnsZeroCopy)
{
    // Build parallel columns by hand and bind them: record() must
    // reconstruct the exact IoRecord without copying.
    const SectorExtent extents[2] = {{100, 8}, {500, 16}};
    const std::uint64_t timestamps[2] = {10, 20};
    const IoType types[2] = {IoType::Read, IoType::Write};
    IoEventBatch batch;
    batch.bind(extents, timestamps, types, 2);
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch.extent(0).start, 100u);
    EXPECT_EQ(batch.extent(0).count, 8u);
    EXPECT_EQ(batch.timestamp(1), 20u);
    EXPECT_EQ(batch.type(1), IoType::Write);
    const IoRecord first = batch.record(0);
    EXPECT_EQ(first.extent.start, 100u);
    EXPECT_EQ(first.extent.count, 8u);
    EXPECT_EQ(first.type, IoType::Read);
    EXPECT_EQ(first.timestampUs, 10u);
}

} // namespace
} // namespace logseek::trace
