/**
 * @file
 * Tests for the columnar LSKC trace format: round-trip fidelity,
 * deterministic bytes, zero-copy replay byte-identity against the
 * in-RAM path, format detection/conversion, and a seeded fault
 * sweep (truncation, bit flips, torn prefixes) asserting that no
 * corruption ever crashes the reader or silently alters a replay.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>

#include "stl/simulator.h"
#include "trace/binary.h"
#include "trace/convert.h"
#include "trace/format.h"
#include "trace/lskc.h"
#include "util/fault.h"
#include "util/random.h"

namespace logseek::trace
{
namespace
{

Trace
sampleTrace()
{
    Trace trace("sample");
    trace.appendRead(100, 8, 0);
    trace.appendWrite(5000, 64, 1234);
    trace.appendRead(0, 1, 99999);
    return trace;
}

Trace
randomTrace(std::uint64_t seed, std::size_t ops)
{
    Rng rng(seed);
    Trace trace("fuzz-" + std::to_string(seed));
    for (std::size_t i = 0; i < ops; ++i) {
        const SectorCount count = 1 + rng.nextUint(128);
        const Lba lba = rng.nextUint(1ULL << 30);
        if (rng.nextBool(0.5))
            trace.appendWrite(lba, count, rng.nextUint(1u << 30));
        else
            trace.appendRead(lba, count, rng.nextUint(1u << 30));
    }
    return trace;
}

/** Unique temp path per test to keep parallel ctest runs apart. */
std::string
tempPath(const std::string &tag)
{
    return "/tmp/logseek_lskc_" + tag + "_" +
           std::to_string(::getpid()) + ".lskc";
}

std::string
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void
writeFileBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

TEST(LskcTrace, RoundTripsRecordsExactly)
{
    const Trace original = sampleTrace();
    const std::string path = tempPath("roundtrip");
    ASSERT_TRUE(tryWriteLskcFile(path, original).ok());
    const StatusOr<Trace> parsed = tryReadLskcFile(path);
    ASSERT_TRUE(parsed.ok()) << parsed.status().message();
    EXPECT_EQ(parsed.value().name(), original.name());
    EXPECT_EQ(parsed.value().addressSpaceEnd(),
              original.addressSpaceEnd());
    ASSERT_EQ(parsed.value().size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i)
        EXPECT_EQ(parsed.value()[i], original[i]) << "record " << i;
    std::remove(path.c_str());
}

TEST(LskcTrace, RoundTripsLargeRandomTrace)
{
    const Trace original = randomTrace(7, 5000);
    const std::string path = tempPath("fuzz");
    ASSERT_TRUE(tryWriteLskcFile(path, original).ok());
    const StatusOr<Trace> parsed = tryReadLskcFile(path);
    ASSERT_TRUE(parsed.ok());
    ASSERT_EQ(parsed.value().size(), original.size());
    for (std::size_t i = 0; i < original.size(); i += 97)
        EXPECT_EQ(parsed.value()[i], original[i]);
    std::remove(path.c_str());
}

TEST(LskcTrace, WriterIsDeterministic)
{
    const Trace trace = randomTrace(11, 500);
    const std::string a = tempPath("det_a");
    const std::string b = tempPath("det_b");
    ASSERT_TRUE(tryWriteLskcFile(a, trace).ok());
    ASSERT_TRUE(tryWriteLskcFile(b, trace).ok());
    EXPECT_EQ(readFileBytes(a), readFileBytes(b));
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(LskcTrace, ZeroCopyReplayIsByteIdenticalToInMemory)
{
    const Trace trace = randomTrace(13, 2000);
    const std::string path = tempPath("replay");
    ASSERT_TRUE(tryWriteLskcFile(path, trace).ok());
    const auto source = LskcSource::tryOpen(path);
    ASSERT_TRUE(source.ok()) << source.status().message();

    stl::SimConfig config;
    stl::Simulator simulator(config);
    const stl::SimResult ram = simulator.run(trace);
    const std::unique_ptr<TraceInput> view =
        source.value()->open();
    const stl::SimResult mapped = simulator.run(*view);
    // operator== compares every counter and the exact bit pattern
    // of seekTimeSec — byte identity, not approximate equality.
    EXPECT_TRUE(ram == mapped);
    std::remove(path.c_str());
}

TEST(LskcTrace, ViewOutlivesSourceAndResets)
{
    const Trace trace = sampleTrace();
    const std::string path = tempPath("outlive");
    ASSERT_TRUE(tryWriteLskcFile(path, trace).ok());
    std::unique_ptr<TraceInput> view;
    {
        const auto source = LskcSource::tryOpen(path);
        ASSERT_TRUE(source.ok());
        view = source.value()->open();
    }
    // The source is gone; the view co-owns the mapping and must
    // still serve (and re-serve, after reset) every record.
    const Trace first = materialize(*view);
    const Trace second = materialize(*view);
    ASSERT_EQ(first.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(first[i], trace[i]);
        EXPECT_EQ(second[i], trace[i]);
    }
    std::remove(path.c_str());
}

TEST(LskcTrace, MissingFileIsTypedNotFound)
{
    const auto source =
        LskcSource::tryOpen("/nonexistent/trace.lskc");
    ASSERT_FALSE(source.ok());
    EXPECT_EQ(source.status().code(), StatusCode::NotFound);
}

TEST(LskcTrace, EmptyFileIsDataLoss)
{
    const std::string path = tempPath("empty");
    writeFileBytes(path, "");
    const auto source = LskcSource::tryOpen(path);
    ASSERT_FALSE(source.ok());
    EXPECT_EQ(source.status().code(), StatusCode::DataLoss);
    std::remove(path.c_str());
}

TEST(LskcTrace, EveryPrefixTruncationIsTypedError)
{
    const std::string path = tempPath("prefix");
    ASSERT_TRUE(tryWriteLskcFile(path, sampleTrace()).ok());
    const std::string bytes = readFileBytes(path);
    // Every strict prefix cuts a section, the header or the
    // preamble short; each must fail with a typed DataLoss, never
    // a crash or a silently shorter trace.
    for (std::size_t length = 0; length < bytes.size(); ++length) {
        writeFileBytes(path, bytes.substr(0, length));
        const auto source = LskcSource::tryOpen(path);
        ASSERT_FALSE(source.ok()) << "prefix length " << length;
        EXPECT_EQ(source.status().code(), StatusCode::DataLoss)
            << "prefix length " << length;
    }
    std::remove(path.c_str());
}

TEST(LskcTrace, ExhaustiveBitFlipsNeverCrashOrCorruptReplay)
{
    const Trace original = sampleTrace();
    const std::string path = tempPath("bitflip");
    ASSERT_TRUE(tryWriteLskcFile(path, original).ok());
    const std::string bytes = readFileBytes(path);
    // Flip every bit of the file in turn. Each flip must either be
    // rejected with a typed error, or — when it lands in the
    // alignment padding no checksum guards — leave the replayed
    // records bit-identical to the original. A flip that opens
    // fine but changes a record would be a silent corruption.
    for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
        std::string flipped = bytes;
        flipped[bit / 8] = static_cast<char>(
            static_cast<unsigned char>(flipped[bit / 8]) ^
            (1u << (bit % 8)));
        writeFileBytes(path, flipped);
        const auto parsed = tryReadLskcFile(path);
        if (!parsed.ok())
            continue;
        ASSERT_EQ(parsed.value().size(), original.size())
            << "bit " << bit;
        for (std::size_t i = 0; i < original.size(); ++i)
            ASSERT_EQ(parsed.value()[i], original[i])
                << "bit " << bit << " record " << i;
    }
    std::remove(path.c_str());
}

TEST(LskcTrace, SeededFaultSweepIsAlwaysTyped)
{
    const Trace original = randomTrace(17, 300);
    const std::string path = tempPath("faults");
    ASSERT_TRUE(tryWriteLskcFile(path, original).ok());
    const std::string bytes = readFileBytes(path);
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
        for (const bool flip : {false, true}) {
            const std::string faulty =
                flip ? injectBitFlip(bytes, seed)
                     : injectTruncation(bytes, seed);
            writeFileBytes(path, faulty);
            const auto source = LskcSource::tryOpen(path);
            if (source.ok())
                continue; // padding flip: harmless by design
            EXPECT_TRUE(source.status().code() ==
                            StatusCode::DataLoss ||
                        source.status().code() ==
                            StatusCode::InvalidArgument)
                << "seed " << seed << " flip " << flip << ": "
                << source.status().message();
        }
    }
    std::remove(path.c_str());
}

TEST(LskcTrace, FormatSniffRecognizesAllThreeFormats)
{
    const std::string lskc = tempPath("sniff");
    ASSERT_TRUE(tryWriteLskcFile(lskc, sampleTrace()).ok());
    const std::string lskt = "/tmp/logseek_lskc_sniff_" +
                             std::to_string(::getpid()) + ".lskt";
    writeBinaryTraceFile(lskt, sampleTrace());
    const std::string csv = "/tmp/logseek_lskc_sniff_" +
                            std::to_string(::getpid()) + ".csv";
    writeFileBytes(csv, "0,host,0,Read,4096,8192,100\n");

    const auto a = resolveTraceFormat(lskc, TraceFormat::Auto);
    const auto b = resolveTraceFormat(lskt, TraceFormat::Auto);
    const auto c = resolveTraceFormat(csv, TraceFormat::Auto);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    EXPECT_EQ(a.value(), TraceFormat::Lskc);
    EXPECT_EQ(b.value(), TraceFormat::Lskt);
    EXPECT_EQ(c.value(), TraceFormat::Csv);
    // A declared format always wins over the sniff.
    const auto declared = resolveTraceFormat(csv, TraceFormat::Lskc);
    ASSERT_TRUE(declared.ok());
    EXPECT_EQ(declared.value(), TraceFormat::Lskc);

    std::remove(lskc.c_str());
    std::remove(lskt.c_str());
    std::remove(csv.c_str());
}

TEST(LskcTrace, ConversionRoundTripPreservesRecords)
{
    const Trace original = randomTrace(19, 400);
    const std::string lskt = "/tmp/logseek_lskc_conv_" +
                             std::to_string(::getpid()) + ".lskt";
    const std::string lskc = tempPath("conv");
    writeBinaryTraceFile(lskt, original);

    const auto summary = tryConvertTraceFile(lskt, lskc);
    ASSERT_TRUE(summary.ok()) << summary.status().message();
    EXPECT_EQ(summary.value().inFormat, TraceFormat::Lskt);
    EXPECT_EQ(summary.value().outFormat, TraceFormat::Lskc);
    EXPECT_EQ(summary.value().records, original.size());

    const auto parsed = tryReadLskcFile(lskc);
    ASSERT_TRUE(parsed.ok());
    ASSERT_EQ(parsed.value().size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i)
        EXPECT_EQ(parsed.value()[i], original[i]);

    // Reconverting LSKC to LSKC canonicalizes deterministically.
    const std::string again = tempPath("conv2");
    const auto re = tryConvertTraceFile(lskc, again,
                                        TraceFormat::Auto,
                                        TraceFormat::Lskc);
    ASSERT_TRUE(re.ok());
    EXPECT_EQ(readFileBytes(lskc), readFileBytes(again));

    std::remove(lskt.c_str());
    std::remove(lskc.c_str());
    std::remove(again.c_str());
}

TEST(LskcTrace, ParseTraceFormatIsStrict)
{
    EXPECT_TRUE(parseTraceFormat("auto").ok());
    EXPECT_TRUE(parseTraceFormat("csv").ok());
    EXPECT_TRUE(parseTraceFormat("lskt").ok());
    EXPECT_TRUE(parseTraceFormat("lskc").ok());
    for (const char *bad : {"", "CSV", "Lskc", "binary", "lsk"}) {
        const auto parsed = parseTraceFormat(bad);
        ASSERT_FALSE(parsed.ok()) << "'" << bad << "'";
        EXPECT_EQ(parsed.status().code(),
                  StatusCode::InvalidArgument);
    }
}

} // namespace
} // namespace logseek::trace
