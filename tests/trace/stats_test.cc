/**
 * @file
 * Unit tests for Table-I style trace statistics.
 */

#include <gtest/gtest.h>

#include "trace/stats.h"

namespace logseek::trace
{
namespace
{

Trace
sampleTrace()
{
    Trace trace("sample");
    trace.appendRead(0, bytesToSectors(64 * kKiB), 10);
    trace.appendWrite(1000, bytesToSectors(16 * kKiB), 20);
    trace.appendWrite(2000, bytesToSectors(48 * kKiB), 30);
    trace.appendRead(5000, bytesToSectors(128 * kKiB), 40);
    return trace;
}

TEST(TraceStats, CountsReadsAndWrites)
{
    const TraceStats stats = computeStats(sampleTrace());
    EXPECT_EQ(stats.readCount, 2u);
    EXPECT_EQ(stats.writeCount, 2u);
    EXPECT_EQ(stats.name, "sample");
}

TEST(TraceStats, VolumesSumRequestBytes)
{
    const TraceStats stats = computeStats(sampleTrace());
    EXPECT_EQ(stats.readBytes, (64 + 128) * kKiB);
    EXPECT_EQ(stats.writtenBytes, (16 + 48) * kKiB);
}

TEST(TraceStats, MeanWriteSize)
{
    const TraceStats stats = computeStats(sampleTrace());
    EXPECT_DOUBLE_EQ(stats.meanWriteSizeKiB(), 32.0);
    EXPECT_DOUBLE_EQ(stats.meanReadSizeKiB(), 96.0);
}

TEST(TraceStats, GiBConversions)
{
    Trace trace("big");
    trace.appendWrite(0, bytesToSectors(2 * kGiB));
    const TraceStats stats = computeStats(trace);
    EXPECT_DOUBLE_EQ(stats.writtenGiB(), 2.0);
    EXPECT_DOUBLE_EQ(stats.readGiB(), 0.0);
}

TEST(TraceStats, WriteFraction)
{
    const TraceStats stats = computeStats(sampleTrace());
    EXPECT_DOUBLE_EQ(stats.writeFraction(), 0.5);
}

TEST(TraceStats, EmptyTraceIsAllZero)
{
    const TraceStats stats = computeStats(Trace("empty"));
    EXPECT_EQ(stats.readCount, 0u);
    EXPECT_EQ(stats.writeCount, 0u);
    EXPECT_DOUBLE_EQ(stats.meanWriteSizeKiB(), 0.0);
    EXPECT_DOUBLE_EQ(stats.meanReadSizeKiB(), 0.0);
    EXPECT_DOUBLE_EQ(stats.writeFraction(), 0.0);
}

TEST(TraceStats, CarriesAddressSpaceAndDuration)
{
    const TraceStats stats = computeStats(sampleTrace());
    EXPECT_EQ(stats.addressSpaceEnd,
              5000 + bytesToSectors(128 * kKiB));
    EXPECT_EQ(stats.durationUs, 40u);
}

TEST(TraceStats, ReadOnlyTrace)
{
    Trace trace("ro");
    trace.appendRead(0, 8);
    const TraceStats stats = computeStats(trace);
    EXPECT_EQ(stats.writeCount, 0u);
    EXPECT_DOUBLE_EQ(stats.writeFraction(), 0.0);
    EXPECT_DOUBLE_EQ(stats.meanWriteSizeKiB(), 0.0);
}

} // namespace
} // namespace logseek::trace
