/**
 * @file
 * Unit tests for the trace manipulation utilities.
 */

#include <gtest/gtest.h>

#include "trace/tools.h"
#include "util/logging.h"

namespace logseek::trace
{
namespace
{

Trace
sample()
{
    Trace trace("t");
    trace.appendWrite(0, 4, 100);
    trace.appendRead(10, 4, 200);
    trace.appendWrite(20, 4, 300);
    trace.appendRead(30, 4, 400);
    trace.appendWrite(40, 4, 500);
    return trace;
}

TEST(SliceByTime, HalfOpenWindow)
{
    const Trace out = sliceByTime(sample(), 200, 400);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].timestampUs, 200u);
    EXPECT_EQ(out[1].timestampUs, 300u);
    EXPECT_EQ(out.name(), "t");
}

TEST(SliceByTime, EmptyWindowAndValidation)
{
    EXPECT_TRUE(sliceByTime(sample(), 201, 201).empty());
    EXPECT_THROW(sliceByTime(sample(), 300, 200), PanicError);
}

TEST(SliceByIndex, ClampsToTraceEnd)
{
    const Trace out = sliceByIndex(sample(), 3, 100);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].timestampUs, 400u);
    EXPECT_THROW(sliceByIndex(sample(), 5, 2), PanicError);
}

TEST(MergeByTimestamp, InterleavesStreams)
{
    Trace a("a");
    a.appendWrite(0, 1, 100);
    a.appendWrite(1, 1, 300);
    Trace b("b");
    b.appendRead(2, 1, 200);
    b.appendRead(3, 1, 400);

    const Trace out = mergeByTimestamp({&a, &b}, "merged");
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0].timestampUs, 100u);
    EXPECT_EQ(out[1].timestampUs, 200u);
    EXPECT_EQ(out[2].timestampUs, 300u);
    EXPECT_EQ(out[3].timestampUs, 400u);
    EXPECT_EQ(out.name(), "merged");
}

TEST(MergeByTimestamp, TiesAreStableByInputOrder)
{
    Trace a("a");
    a.appendWrite(1, 1, 100);
    Trace b("b");
    b.appendRead(2, 1, 100);
    const Trace out = mergeByTimestamp({&a, &b}, "m");
    ASSERT_EQ(out.size(), 2u);
    EXPECT_TRUE(out[0].isWrite()); // a's record first
    EXPECT_TRUE(out[1].isRead());
}

TEST(MergeByTimestamp, HandlesEmptyInputsAndNulls)
{
    Trace a("a");
    const Trace empty("e");
    EXPECT_EQ(mergeByTimestamp({&a, &empty}, "m").size(), 0u);
    EXPECT_THROW(mergeByTimestamp({nullptr}, "m"), PanicError);
}

TEST(Filter, KeepsMatchingRecords)
{
    const Trace out =
        filter(sample(), [](const IoRecord &record) {
            return record.extent.start >= 20;
        });
    EXPECT_EQ(out.size(), 3u);
}

TEST(ReadsAndWritesOnly, SplitByType)
{
    const Trace reads = readsOnly(sample());
    const Trace writes = writesOnly(sample());
    EXPECT_EQ(reads.size(), 2u);
    EXPECT_EQ(writes.size(), 3u);
    EXPECT_EQ(reads.size() + writes.size(), sample().size());
    for (const auto &record : reads)
        EXPECT_TRUE(record.isRead());
    for (const auto &record : writes)
        EXPECT_TRUE(record.isWrite());
}

TEST(SampleEveryNth, PicksStride)
{
    const Trace out = sampleEveryNth(sample(), 2);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].timestampUs, 100u);
    EXPECT_EQ(out[1].timestampUs, 300u);
    EXPECT_EQ(out[2].timestampUs, 500u);
}

TEST(SampleEveryNth, OffsetAndValidation)
{
    const Trace out = sampleEveryNth(sample(), 2, 1);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].timestampUs, 200u);
    EXPECT_THROW(sampleEveryNth(sample(), 0), PanicError);
}

TEST(Tools, ComposeForPerDiskVolumeView)
{
    // The documented preprocessing pipeline: merge two disks, trim
    // to a window, keep writes.
    Trace disk0("d0");
    disk0.appendWrite(0, 8, 10);
    disk0.appendRead(8, 8, 30);
    Trace disk1("d1");
    disk1.appendWrite(100, 8, 20);

    const Trace merged = mergeByTimestamp({&disk0, &disk1}, "vol");
    const Trace window = sliceByTime(merged, 10, 25);
    const Trace writes = writesOnly(window);
    ASSERT_EQ(writes.size(), 2u);
    EXPECT_EQ(writes[0].extent.start, 0u);
    EXPECT_EQ(writes[1].extent.start, 100u);
}

} // namespace
} // namespace logseek::trace
