/**
 * @file
 * Unit tests for NCQ/elevator request reordering.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "trace/reorder.h"
#include "util/logging.h"
#include "util/random.h"
#include "workloads/builder.h"
#include "workloads/phases.h"

namespace logseek::trace
{
namespace
{

ReorderOptions
noWindow(std::uint32_t depth)
{
    ReorderOptions options;
    options.queueDepth = depth;
    options.windowUs = 0;
    return options;
}

TEST(ReorderElevator, EmptyTrace)
{
    const Trace out = reorderElevator(Trace("empty"));
    EXPECT_TRUE(out.empty());
}

TEST(ReorderElevator, PreservesRequestMultiset)
{
    Rng rng(1);
    Trace input("t");
    for (int i = 0; i < 500; ++i)
        input.append(IoRecord{static_cast<std::uint64_t>(i) * 10,
                              rng.nextBool(0.5) ? IoType::Read
                                                : IoType::Write,
                              {rng.nextUint(10000),
                               1 + rng.nextUint(16)}});
    const Trace out = reorderElevator(input, noWindow(32));
    ASSERT_EQ(out.size(), input.size());

    auto census = [](const Trace &trace) {
        std::map<std::tuple<std::uint64_t, int, Lba, SectorCount>,
                 int>
            counts;
        for (const auto &record : trace) {
            ++counts[{record.timestampUs,
                      static_cast<int>(record.type),
                      record.extent.start, record.extent.count}];
        }
        return counts;
    };
    EXPECT_EQ(census(input), census(out));
}

TEST(ReorderElevator, DepthOneIsIdentity)
{
    Trace input("t");
    input.appendWrite(50, 10, 0);
    input.appendWrite(10, 10, 1);
    input.appendWrite(90, 10, 2);
    const Trace out = reorderElevator(input, noWindow(1));
    for (std::size_t i = 0; i < input.size(); ++i)
        EXPECT_EQ(out[i], input[i]);
}

TEST(ReorderElevator, SortsDescendingBurstAscending)
{
    // The paper's observation: a descending burst dispatched
    // together completes in ascending order.
    Trace input("t");
    for (Lba lba = 90; lba != static_cast<Lba>(-10); lba -= 10)
        input.appendWrite(lba, 10, 0); // all at the same instant
    const Trace out = reorderElevator(input, noWindow(32));
    for (std::size_t i = 1; i < out.size(); ++i)
        EXPECT_EQ(out[i].extent.start,
                  out[i - 1].extent.end());
}

TEST(ReorderElevator, QueueDepthLimitsReordering)
{
    // With depth 2, only adjacent pairs can swap: a fully reversed
    // run cannot become fully sorted.
    Trace input("t");
    for (Lba lba = 90; lba != static_cast<Lba>(-10); lba -= 10)
        input.appendWrite(lba, 10, 0);
    const Trace out = reorderElevator(input, noWindow(2));
    bool fully_sorted = true;
    for (std::size_t i = 1; i < out.size(); ++i)
        fully_sorted &= out[i].extent.start >
                        out[i - 1].extent.start;
    EXPECT_FALSE(fully_sorted);
}

TEST(ReorderElevator, TimeWindowPreventsDistantReordering)
{
    // Two descending pairs issued far apart in time must not merge
    // into one sorted sweep.
    Trace input("t");
    input.appendWrite(100, 10, 0);
    input.appendWrite(0, 10, 1);
    input.appendWrite(300, 10, 1000000); // 1 s later
    input.appendWrite(200, 10, 1000001);

    ReorderOptions options;
    options.queueDepth = 32;
    options.windowUs = 1000;
    const Trace out = reorderElevator(input, options);
    ASSERT_EQ(out.size(), 4u);
    // First pair served (sorted) before the second pair is even
    // admitted.
    EXPECT_EQ(out[0].extent.start, 0u);
    EXPECT_EQ(out[1].extent.start, 100u);
    EXPECT_EQ(out[2].extent.start, 200u);
    EXPECT_EQ(out[3].extent.start, 300u);
}

TEST(ReorderElevator, CLookServesForwardFirst)
{
    // Head starts at 0; the sweep serves ascending starts, then
    // wraps to the smallest remaining.
    Trace input("t");
    input.appendWrite(50, 10, 0);
    input.appendWrite(20, 10, 0);
    input.appendWrite(80, 10, 0);
    const Trace out = reorderElevator(input, noWindow(8));
    EXPECT_EQ(out[0].extent.start, 20u);
    EXPECT_EQ(out[1].extent.start, 50u);
    EXPECT_EQ(out[2].extent.start, 80u);
}

TEST(ReorderElevator, ReducesMisorderedWriteSeeks)
{
    // A mis-ordered burst costs one seek per io raw, but almost
    // nothing after elevator reordering — the §IV-B observation.
    workloads::TraceBuilder builder("t", /*interarrival_us=*/1);
    workloads::misorderedWrite(builder, {0, 512}, 16,
                               workloads::MisorderPattern::Descending);
    const Trace raw = builder.take();
    const Trace sorted = reorderElevator(raw, noWindow(32));

    auto count_breaks = [](const Trace &trace) {
        int breaks = 0;
        for (std::size_t i = 1; i < trace.size(); ++i) {
            if (trace[i].extent.start != trace[i - 1].extent.end())
                ++breaks;
        }
        return breaks;
    };
    EXPECT_GT(count_breaks(raw), 20);
    EXPECT_EQ(count_breaks(sorted), 0);
}

TEST(ReorderElevator, ZeroDepthPanics)
{
    EXPECT_THROW(reorderElevator(Trace("t"), noWindow(0)),
                 PanicError);
}

} // namespace
} // namespace logseek::trace
