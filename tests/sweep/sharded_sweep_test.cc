/**
 * @file
 * SweepRunner integration tests for sharded replay: a sweep run
 * with SweepOptions::replayShards > 1 (the --replay-shards path)
 * must produce a byte-identical deterministic grid — same rows,
 * same SimResults, same JSON — as the serial sweep, at every job
 * count, and through a checkpoint/resume cycle.
 *
 * The suite name (ShardedReplaySweep*) keeps these tests inside
 * the tsan preset's filter, where the TaskPool-backed
 * makeShardExecutor fan-out is the interesting surface.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "stl/simulator.h"
#include "sweep/report.h"
#include "sweep/sweep_runner.h"
#include "util/cancellation.h"
#include "workloads/profiles.h"

namespace logseek::sweep
{
namespace
{

workloads::ProfileOptions
tinyProfile()
{
    workloads::ProfileOptions options;
    options.scale = 0.002;
    return options;
}

std::vector<WorkloadSpec>
twoWorkloads()
{
    return {WorkloadSpec::profile("usr_1", tinyProfile()),
            WorkloadSpec::profile("w91", tinyProfile())};
}

/**
 * Configs that stress the deferred-accounting path: a plain
 * baseline, a log-structured replay, and the all-mechanisms
 * config whose defrag rewrites invalidate batched translations.
 */
std::vector<ConfigSpec>
threeConfigs()
{
    stl::SimConfig conventional;
    conventional.translation = stl::TranslationKind::Conventional;
    stl::SimConfig ls;
    ls.translation = stl::TranslationKind::LogStructured;
    stl::SimConfig ls_all = ls;
    ls_all.defrag = stl::DefragConfig{};
    ls_all.prefetch = stl::PrefetchConfig{};
    ls_all.cache = stl::SelectiveCacheConfig{64 * kMiB};
    return {ConfigSpec::fixed("NoLS", conventional),
            ConfigSpec::fixed("LS", ls),
            ConfigSpec::fixed("LS+all", ls_all)};
}

std::string
deterministicJson(const SweepResult &sweep)
{
    std::ostringstream out;
    writeJson(out, sweep, /*with_telemetry=*/false);
    return out.str();
}

/** A self-deleting temp file path. */
class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : path_(std::string(::testing::TempDir()) + name)
    {
        std::remove(path_.c_str());
    }

    ~TempPath() { std::remove(path_.c_str()); }

    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

TEST(ShardedReplaySweep, MatchesSerialSweepAcrossJobCounts)
{
    const std::string reference = deterministicJson(
        SweepRunner(twoWorkloads(), threeConfigs(), {}).run());

    for (const int jobs : {1, 4}) {
        SweepOptions options;
        options.jobs = jobs;
        options.replayShards = 4;
        const SweepResult sharded =
            SweepRunner(twoWorkloads(), threeConfigs(), options)
                .run();
        EXPECT_EQ(deterministicJson(sharded), reference)
            << "replayShards=4, jobs " << jobs;
        for (const RunRow &row : sharded.rows)
            EXPECT_TRUE(row.status.ok()) << row.status.message();
    }
}

TEST(ShardedReplaySweep, ExplicitBatchSizeStaysIdentical)
{
    const std::string reference = deterministicJson(
        SweepRunner(twoWorkloads(), threeConfigs(), {}).run());

    SweepOptions options;
    options.jobs = 2;
    options.replayShards = 3;
    options.replayBatchSize = 17; // ragged run boundaries
    const SweepResult sharded =
        SweepRunner(twoWorkloads(), threeConfigs(), options).run();
    EXPECT_EQ(deterministicJson(sharded), reference);
}

TEST(ShardedReplaySweep, ResumedShardedSweepIsByteIdentical)
{
    const std::string reference = deterministicJson(
        SweepRunner(twoWorkloads(), threeConfigs(), {}).run());

    // Interrupt a checkpointing sharded sweep after its first
    // completed cell, then resume — also sharded — and require the
    // byte-identical grid. Sharding must not leak into what gets
    // checkpointed or how restored rows compare.
    TempPath ckpt("sharded_sweep_resume.ckpt");
    CancelSource source;
    std::atomic<int> completed{0};
    SweepOptions interrupted;
    interrupted.jobs = 1; // deterministic completion order
    interrupted.replayShards = 4;
    interrupted.checkpointPath = ckpt.str();
    interrupted.cancel = source.token();
    interrupted.onCellComplete = [&](const RunRow &) {
        if (completed.fetch_add(1) + 1 == 1)
            source.cancel();
    };
    const SweepResult first =
        SweepRunner(twoWorkloads(), threeConfigs(), interrupted)
            .run();

    std::uint64_t finished = 0;
    for (const RunRow &row : first.rows)
        if (row.status.ok())
            ++finished;
    ASSERT_GE(finished, 1u);
    ASSERT_LT(finished, first.rows.size());

    for (const int jobs : {1, 4}) {
        SweepOptions resume;
        resume.jobs = jobs;
        resume.replayShards = 4;
        resume.resumePath = ckpt.str();
        const SweepResult resumed =
            SweepRunner(twoWorkloads(), threeConfigs(), resume)
                .run();
        EXPECT_EQ(deterministicJson(resumed), reference)
            << "jobs " << jobs;
        EXPECT_EQ(resumed.telemetry.restoredRuns, finished)
            << "jobs " << jobs;
    }
}

} // namespace
} // namespace logseek::sweep
