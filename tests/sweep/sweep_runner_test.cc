/**
 * @file
 * Tests for SweepRunner: deterministic results across job counts
 * (the core guarantee — parallel sweeps must be byte-identical to
 * serial ones across every translation kind and mechanism combo),
 * grid ordering, per-run observer freshness, trace sharing, and
 * failure isolation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "stl/simulator.h"
#include "sweep/report.h"
#include "sweep/sweep_runner.h"
#include "telemetry/metrics.h"
#include "util/logging.h"
#include "util/units.h"
#include "workloads/profiles.h"

namespace logseek::sweep
{
namespace
{

workloads::ProfileOptions
tinyProfile()
{
    workloads::ProfileOptions options;
    options.scale = 0.002;
    return options;
}

stl::SimConfig
configFor(stl::TranslationKind kind, bool defrag = false,
          bool prefetch = false, bool cache = false)
{
    stl::SimConfig config;
    config.translation = kind;
    if (defrag)
        config.defrag = stl::DefragConfig{};
    if (prefetch)
        config.prefetch = stl::PrefetchConfig{};
    if (cache)
        config.cache = stl::SelectiveCacheConfig{8 * kMiB};
    return config;
}

/** A config matrix covering every translation kind and all of the
 *  paper's mechanisms (alone and combined). */
std::vector<ConfigSpec>
fullMatrix()
{
    std::vector<ConfigSpec> configs;
    configs.push_back(ConfigSpec::fixed(
        "NoLS", configFor(stl::TranslationKind::Conventional)));
    configs.push_back(ConfigSpec::fixed(
        "LS", configFor(stl::TranslationKind::LogStructured)));
    configs.push_back(ConfigSpec::fixed(
        "LS+defrag",
        configFor(stl::TranslationKind::LogStructured, true)));
    configs.push_back(ConfigSpec::fixed(
        "LS+prefetch",
        configFor(stl::TranslationKind::LogStructured, false, true)));
    configs.push_back(ConfigSpec::fixed(
        "LS+cache", configFor(stl::TranslationKind::LogStructured,
                              false, false, true)));
    configs.push_back(ConfigSpec::fixed(
        "LS+all", configFor(stl::TranslationKind::LogStructured,
                            true, true, true)));
    configs.push_back(ConfigSpec::fixed(
        "MC", configFor(stl::TranslationKind::MediaCache)));
    configs.push_back(ConfigSpec::deferred(
        "FiniteLS", [](const trace::Trace &) {
            stl::SimConfig config = configFor(
                stl::TranslationKind::FiniteLogStructured);
            stl::FiniteLogConfig log;
            log.capacityBytes = 256 * kMiB;
            log.segmentBytes = 1 * kMiB;
            config.finiteLog = log;
            return config;
        }));
    return configs;
}

std::vector<WorkloadSpec>
tinyWorkloads()
{
    std::vector<WorkloadSpec> specs;
    for (const char *name : {"usr_1", "w91", "src2_2"})
        specs.push_back(WorkloadSpec::profile(name, tinyProfile()));
    return specs;
}

std::string
deterministicJson(const SweepResult &sweep)
{
    std::ostringstream out;
    writeJson(out, sweep, /*with_telemetry=*/false);
    return out.str();
}

TEST(SweepRunnerTest, ParallelRunIsByteIdenticalToSerial)
{
    SweepOptions serial;
    serial.jobs = 1;
    SweepResult one =
        SweepRunner(tinyWorkloads(), fullMatrix(), serial).run();

    SweepOptions parallel;
    parallel.jobs = 8;
    SweepResult eight =
        SweepRunner(tinyWorkloads(), fullMatrix(), parallel).run();

    ASSERT_EQ(one.rows.size(), eight.rows.size());
    for (std::size_t i = 0; i < one.rows.size(); ++i) {
        EXPECT_EQ(one.rows[i].key.workload,
                  eight.rows[i].key.workload);
        EXPECT_EQ(one.rows[i].key.configLabel,
                  eight.rows[i].key.configLabel);
        EXPECT_TRUE(one.rows[i].status.ok())
            << one.rows[i].status.message();
        EXPECT_TRUE(eight.rows[i].status.ok());
    }
    // The deterministic report form must match byte for byte.
    EXPECT_EQ(deterministicJson(one), deterministicJson(eight));
}

TEST(SweepRunnerTest, TelemetryDoesNotPerturbSweepResults)
{
    // The acceptance bar for observability: with collection armed,
    // the deterministic report form stays byte-identical to the
    // un-instrumented sweep at any job count.
    auto runAt = [](int jobs) {
        SweepOptions options;
        options.jobs = jobs;
        return SweepRunner(tinyWorkloads(), fullMatrix(), options)
            .run();
    };
    telemetry::Registry::global().resetValues();
    const std::string plain = deterministicJson(runAt(1));

    telemetry::setEnabled(true);
    const std::string instrumented_serial =
        deterministicJson(runAt(1));
    const std::string instrumented_parallel =
        deterministicJson(runAt(2));
    telemetry::setEnabled(false);

    EXPECT_EQ(plain, instrumented_serial);
    EXPECT_EQ(plain, instrumented_parallel);

    // And the sweep actually reported into the registry.
    const telemetry::MetricsSnapshot snap =
        telemetry::Registry::global().snapshot();
    const telemetry::CounterSnapshot *tasks =
        snap.findCounter("sweep_tasks_total");
    ASSERT_NE(tasks, nullptr);
    EXPECT_GT(tasks->value, 0u);
    const telemetry::CounterSnapshot *ok_cells =
        snap.findCounter("sweep_cells_total", "outcome=\"OK\"");
    ASSERT_NE(ok_cells, nullptr);
    EXPECT_GT(ok_cells->value, 0u);
}

TEST(SweepRunnerTest, RowsAreInGridOrder)
{
    SweepOptions options;
    options.jobs = 4;
    const SweepResult sweep =
        SweepRunner(tinyWorkloads(), fullMatrix(), options).run();

    ASSERT_EQ(sweep.rows.size(),
              sweep.workloads.size() * sweep.configs.size());
    for (std::size_t w = 0; w < sweep.workloads.size(); ++w) {
        for (std::size_t c = 0; c < sweep.configs.size(); ++c) {
            const RunRow &row = sweep.row(w, c);
            EXPECT_EQ(row.key.workloadIndex, w);
            EXPECT_EQ(row.key.configIndex, c);
            EXPECT_EQ(row.key.workload, sweep.workloads[w]);
            EXPECT_EQ(row.key.configLabel, sweep.configs[c]);
        }
    }
}

TEST(SweepRunnerTest, ResultsMatchDirectSimulatorRuns)
{
    // The sweep is a scheduling layer only: each cell must equal a
    // straight Simulator::run on the same trace and config.
    const trace::Trace trace =
        workloads::makeWorkload("usr_1", tinyProfile());
    const stl::SimResult direct =
        stl::Simulator(
            configFor(stl::TranslationKind::LogStructured, true,
                      true, true))
            .run(trace);

    SweepOptions options;
    options.jobs = 2;
    const SweepResult sweep =
        SweepRunner({WorkloadSpec::profile("usr_1", tinyProfile())},
                    {ConfigSpec::fixed(
                        "LS+all",
                        configFor(stl::TranslationKind::LogStructured,
                                  true, true, true))},
                    options)
            .run();

    const stl::SimResult &cell = sweep.row(0, 0).result;
    EXPECT_EQ(cell.readSeeks, direct.readSeeks);
    EXPECT_EQ(cell.writeSeeks, direct.writeSeeks);
    EXPECT_EQ(cell.fragmentedReads, direct.fragmentedReads);
    EXPECT_EQ(cell.cacheHits, direct.cacheHits);
    EXPECT_EQ(cell.prefetchHits, direct.prefetchHits);
    EXPECT_EQ(cell.defragRewrites, direct.defragRewrites);
    EXPECT_EQ(cell.mediaReadBytes, direct.mediaReadBytes);
    EXPECT_EQ(cell.mediaWriteBytes, direct.mediaWriteBytes);
    EXPECT_DOUBLE_EQ(cell.seekTimeSec, direct.seekTimeSec);
}

TEST(SweepRunnerTest, ObserverFactoryGivesEveryRunFreshObservers)
{
    struct CountingObserver : stl::SimObserver
    {
        void onEvent(const stl::IoEvent &) override {}
    };

    std::atomic<int> created{0};
    std::mutex mutex;
    std::set<const stl::SimObserver *> instances;

    SweepOptions options;
    options.jobs = 4;
    options.observerFactory = [&](const RunKey &) {
        std::vector<std::unique_ptr<stl::SimObserver>> observers;
        observers.push_back(std::make_unique<CountingObserver>());
        created.fetch_add(1);
        return observers;
    };
    const SweepResult sweep =
        SweepRunner(tinyWorkloads(),
                    {ConfigSpec::fixed(
                         "NoLS",
                         configFor(stl::TranslationKind::Conventional)),
                     ConfigSpec::fixed(
                         "LS",
                         configFor(stl::TranslationKind::LogStructured))},
                    options)
            .run();

    EXPECT_EQ(created.load(),
              static_cast<int>(sweep.rows.size()));
    for (const RunRow &row : sweep.rows) {
        ASSERT_EQ(row.observers.size(), 1u);
        std::lock_guard<std::mutex> lock(mutex);
        // Every row keeps its own distinct observer instance.
        EXPECT_TRUE(instances.insert(row.observers[0].get()).second);
    }
}

TEST(SweepRunnerTest, FailingConfigDoesNotPoisonOtherCells)
{
    SweepOptions options;
    options.jobs = 4;
    const SweepResult sweep =
        SweepRunner(
            tinyWorkloads(),
            {ConfigSpec::fixed(
                 "NoLS", configFor(stl::TranslationKind::Conventional)),
             ConfigSpec::deferred(
                 "broken",
                 [](const trace::Trace &) -> stl::SimConfig {
                     throw FatalError("deliberately broken config");
                 })},
            options)
            .run();

    for (std::size_t w = 0; w < sweep.workloads.size(); ++w) {
        EXPECT_TRUE(sweep.row(w, 0).status.ok());
        EXPECT_FALSE(sweep.row(w, 1).status.ok());
        EXPECT_FALSE(sweep.safVs(w, 1).has_value());
        EXPECT_TRUE(sweep.safVs(w, 0).has_value());
    }
    EXPECT_EQ(sweep.telemetry.failedRuns, sweep.workloads.size());
}

TEST(SweepRunnerTest, FailingLoaderFailsOnlyItsOwnRow)
{
    std::vector<WorkloadSpec> specs = tinyWorkloads();
    specs.push_back(
        {"broken-load",
         []() -> trace::Trace {
             throw FatalError("deliberately broken loader");
         },
         nullptr});

    SweepOptions options;
    options.jobs = 4;
    const SweepResult sweep =
        SweepRunner(std::move(specs),
                    {ConfigSpec::fixed(
                        "NoLS",
                        configFor(stl::TranslationKind::Conventional))},
                    options)
            .run();

    for (std::size_t w = 0; w + 1 < sweep.workloads.size(); ++w)
        EXPECT_TRUE(sweep.row(w, 0).status.ok());
    const RunRow &broken =
        sweep.row(sweep.workloads.size() - 1, 0);
    EXPECT_FALSE(broken.status.ok());
    EXPECT_NE(broken.status.message().find("broken loader"),
              std::string::npos);
}

TEST(SweepRunnerTest, OnTraceHookSeesEveryWorkloadOnce)
{
    std::mutex mutex;
    std::vector<std::size_t> seen;
    SweepOptions options;
    options.jobs = 4;
    options.onTrace = [&](std::size_t w, const trace::Trace &trace) {
        std::lock_guard<std::mutex> lock(mutex);
        EXPECT_GT(trace.size(), 0u);
        seen.push_back(w);
    };
    // Trace-only sweep: no configs at all.
    const SweepResult sweep =
        SweepRunner(tinyWorkloads(), {}, options).run();
    EXPECT_TRUE(sweep.rows.empty());
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(SweepRunnerTest, TelemetryCountsRunsAndOps)
{
    SweepOptions options;
    options.jobs = 2;
    const SweepResult sweep =
        SweepRunner(tinyWorkloads(),
                    {ConfigSpec::fixed(
                        "NoLS",
                        configFor(stl::TranslationKind::Conventional))},
                    options)
            .run();
    EXPECT_EQ(sweep.telemetry.runs, sweep.rows.size());
    EXPECT_EQ(sweep.telemetry.failedRuns, 0u);
    EXPECT_EQ(sweep.telemetry.jobs, 2);
    std::uint64_t ops = 0;
    for (const RunRow &row : sweep.rows)
        ops += row.ops;
    EXPECT_EQ(sweep.telemetry.ops, ops);
    EXPECT_GT(sweep.telemetry.ops, 0u);
    EXPECT_GE(sweep.telemetry.wallSec, 0.0);
}

} // namespace
} // namespace logseek::sweep
