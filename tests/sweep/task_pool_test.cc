/**
 * @file
 * Unit tests for the work-stealing TaskPool: completion guarantees,
 * nested submission (fan-out from a worker), pool reuse across
 * wait() calls, and worker identity.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>

#include "sweep/task_pool.h"

namespace logseek::sweep
{
namespace
{

TEST(TaskPoolTest, RunsEverySubmittedTask)
{
    std::atomic<int> ran{0};
    TaskPool pool(4);
    for (int i = 0; i < 100; ++i)
        pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 100);
}

TEST(TaskPoolTest, ZeroWorkersClampsToOne)
{
    TaskPool pool(0);
    EXPECT_EQ(pool.workerCount(), 1u);
    std::atomic<int> ran{0};
    pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
}

TEST(TaskPoolTest, WaitCoversNestedSubmissions)
{
    // A task that fans out into more tasks — the sweep runner's
    // load-then-replay pattern. wait() must cover the spawned work.
    std::atomic<int> ran{0};
    TaskPool pool(4);
    for (int i = 0; i < 8; ++i) {
        pool.submit([&pool, &ran] {
            for (int j = 0; j < 10; ++j)
                pool.submit([&ran] { ran.fetch_add(1); });
        });
    }
    pool.wait();
    EXPECT_EQ(ran.load(), 80);
}

TEST(TaskPoolTest, PoolIsReusableAfterWait)
{
    std::atomic<int> ran{0};
    TaskPool pool(2);
    pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 2);
}

TEST(TaskPoolTest, DestructorDrainsPendingTasks)
{
    std::atomic<int> ran{0};
    {
        TaskPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&ran] { ran.fetch_add(1); });
        // No wait(): the destructor must finish the queue first.
    }
    EXPECT_EQ(ran.load(), 50);
}

TEST(TaskPoolTest, WorkerIdentityIsVisibleInsideTasks)
{
    EXPECT_EQ(currentPoolWorker(), -1);

    std::atomic<int> bad{0};
    std::mutex mutex;
    std::set<int> seen;
    TaskPool pool(3);
    for (int i = 0; i < 64; ++i) {
        pool.submit([&] {
            const int worker = currentPoolWorker();
            if (worker < 0 || worker >= 3)
                bad.fetch_add(1);
            std::lock_guard<std::mutex> lock(mutex);
            seen.insert(worker);
        });
    }
    pool.wait();
    EXPECT_EQ(bad.load(), 0);
    EXPECT_FALSE(seen.empty());
    EXPECT_EQ(currentPoolWorker(), -1);
}

TEST(TaskPoolTest, ManyWorkersManyTasksStress)
{
    std::atomic<std::uint64_t> sum{0};
    TaskPool pool(8);
    for (std::uint64_t i = 1; i <= 1000; ++i)
        pool.submit([&sum, i] { sum.fetch_add(i); });
    pool.wait();
    EXPECT_EQ(sum.load(), 1000u * 1001u / 2u);
}

TEST(TaskPoolTest, ThrowingTasksAreContained)
{
    std::atomic<int> ran{0};
    TaskPool pool(4);
    for (int i = 0; i < 50; ++i) {
        pool.submit([&ran, i] {
            ran.fetch_add(1);
            if (i % 3 == 0)
                throw std::runtime_error("task blew up");
            if (i % 7 == 0)
                throw 42; // not even a std::exception
        });
    }
    // wait() must return despite the throws, and every task ran.
    pool.wait();
    EXPECT_EQ(ran.load(), 50);
    EXPECT_GT(pool.taskExceptionCount(), 0u);

    // The pool stays usable afterwards.
    std::atomic<int> after{0};
    pool.submit([&after] { after.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(after.load(), 1);
}

TEST(TaskPoolTest, DestructorSurvivesThrowingTasks)
{
    std::atomic<int> ran{0};
    {
        TaskPool pool(2);
        for (int i = 0; i < 20; ++i)
            pool.submit([&ran] {
                ran.fetch_add(1);
                throw std::runtime_error("boom");
            });
        // No wait(): destruction drains the queue without
        // terminating on the in-flight exceptions.
    }
    EXPECT_EQ(ran.load(), 20);
}

TEST(TaskPoolTest, WatchdogFiresAfterTheDeadline)
{
    TaskPool pool(1);
    std::atomic<bool> fired{false};
    pool.armWatchdog(std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(5),
                     [&fired] { fired.store(true); });
    for (int i = 0; i < 1000 && !fired.load(); ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_TRUE(fired.load());
    EXPECT_GE(pool.watchdogFiredCount(), 1u);
}

TEST(TaskPoolTest, DisarmedWatchdogNeverFires)
{
    TaskPool pool(1);
    std::atomic<bool> fired{false};
    const TaskPool::WatchId id = pool.armWatchdog(
        std::chrono::steady_clock::now() +
            std::chrono::milliseconds(250),
        [&fired] { fired.store(true); });
    pool.disarmWatchdog(id);
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    EXPECT_FALSE(fired.load());
    EXPECT_EQ(pool.watchdogFiredCount(), 0u);
}

TEST(TaskPoolTest, WatchdogsFireInAnyArmingOrder)
{
    TaskPool pool(2);
    std::atomic<int> fired{0};
    const auto now = std::chrono::steady_clock::now();
    // Armed latest-deadline-first to exercise the earliest-scan.
    pool.armWatchdog(now + std::chrono::milliseconds(20),
                     [&fired] { fired.fetch_add(1); });
    pool.armWatchdog(now + std::chrono::milliseconds(10),
                     [&fired] { fired.fetch_add(1); });
    pool.armWatchdog(now + std::chrono::milliseconds(1),
                     [&fired] { fired.fetch_add(1); });
    for (int i = 0; i < 1000 && fired.load() < 3; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(fired.load(), 3);
}

TEST(TaskPoolTest, DestructorStopsAPendingWatchdog)
{
    std::atomic<bool> fired{false};
    {
        TaskPool pool(1);
        pool.armWatchdog(std::chrono::steady_clock::now() +
                             std::chrono::hours(1),
                         [&fired] { fired.store(true); });
        // Destruction must not wait the hour out.
    }
    EXPECT_FALSE(fired.load());
}

TEST(TaskPoolTest, WatchdogArmedFromAWorkerTask)
{
    std::atomic<bool> fired{false};
    TaskPool pool(2);
    pool.submit([&pool, &fired] {
        pool.armWatchdog(std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(2),
                         [&fired] { fired.store(true); });
    });
    pool.wait();
    for (int i = 0; i < 1000 && !fired.load(); ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_TRUE(fired.load());
}

} // namespace
} // namespace logseek::sweep
