/**
 * @file
 * Unit tests for the work-stealing TaskPool: completion guarantees,
 * nested submission (fan-out from a worker), pool reuse across
 * wait() calls, and worker identity.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "sweep/task_pool.h"

namespace logseek::sweep
{
namespace
{

TEST(TaskPoolTest, RunsEverySubmittedTask)
{
    std::atomic<int> ran{0};
    TaskPool pool(4);
    for (int i = 0; i < 100; ++i)
        pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 100);
}

TEST(TaskPoolTest, ZeroWorkersClampsToOne)
{
    TaskPool pool(0);
    EXPECT_EQ(pool.workerCount(), 1u);
    std::atomic<int> ran{0};
    pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
}

TEST(TaskPoolTest, WaitCoversNestedSubmissions)
{
    // A task that fans out into more tasks — the sweep runner's
    // load-then-replay pattern. wait() must cover the spawned work.
    std::atomic<int> ran{0};
    TaskPool pool(4);
    for (int i = 0; i < 8; ++i) {
        pool.submit([&pool, &ran] {
            for (int j = 0; j < 10; ++j)
                pool.submit([&ran] { ran.fetch_add(1); });
        });
    }
    pool.wait();
    EXPECT_EQ(ran.load(), 80);
}

TEST(TaskPoolTest, PoolIsReusableAfterWait)
{
    std::atomic<int> ran{0};
    TaskPool pool(2);
    pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 2);
}

TEST(TaskPoolTest, DestructorDrainsPendingTasks)
{
    std::atomic<int> ran{0};
    {
        TaskPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&ran] { ran.fetch_add(1); });
        // No wait(): the destructor must finish the queue first.
    }
    EXPECT_EQ(ran.load(), 50);
}

TEST(TaskPoolTest, WorkerIdentityIsVisibleInsideTasks)
{
    EXPECT_EQ(currentPoolWorker(), -1);

    std::atomic<int> bad{0};
    std::mutex mutex;
    std::set<int> seen;
    TaskPool pool(3);
    for (int i = 0; i < 64; ++i) {
        pool.submit([&] {
            const int worker = currentPoolWorker();
            if (worker < 0 || worker >= 3)
                bad.fetch_add(1);
            std::lock_guard<std::mutex> lock(mutex);
            seen.insert(worker);
        });
    }
    pool.wait();
    EXPECT_EQ(bad.load(), 0);
    EXPECT_FALSE(seen.empty());
    EXPECT_EQ(currentPoolWorker(), -1);
}

TEST(TaskPoolTest, ManyWorkersManyTasksStress)
{
    std::atomic<std::uint64_t> sum{0};
    TaskPool pool(8);
    for (std::uint64_t i = 1; i <= 1000; ++i)
        pool.submit([&sum, i] { sum.fetch_add(i); });
    pool.wait();
    EXPECT_EQ(sum.load(), 1000u * 1001u / 2u);
}

} // namespace
} // namespace logseek::sweep
