/**
 * @file
 * Fault-tolerance tests for SweepRunner: the failure taxonomy
 * (RETRIED_OK / FAILED / TIMED_OUT / SKIPPED), retry with backoff,
 * per-cell deadlines, sweep-wide cancellation, and checkpoint/resume
 * — including byte-identical resumed grids across job counts and
 * recovery from torn, bit-flipped and duplicated checkpoints.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "stl/replay_engine.h"
#include "stl/simulator.h"
#include "sweep/checkpoint.h"
#include "sweep/report.h"
#include "sweep/sweep_runner.h"
#include "util/cancellation.h"
#include "util/checkpoint.h"
#include "util/fault.h"
#include "util/logging.h"
#include "workloads/profiles.h"

namespace logseek::sweep
{
namespace
{

workloads::ProfileOptions
tinyProfile()
{
    workloads::ProfileOptions options;
    options.scale = 0.002;
    return options;
}

std::vector<WorkloadSpec>
twoWorkloads()
{
    return {WorkloadSpec::profile("usr_1", tinyProfile()),
            WorkloadSpec::profile("w91", tinyProfile())};
}

stl::SimConfig
conventional()
{
    stl::SimConfig config;
    config.translation = stl::TranslationKind::Conventional;
    return config;
}

stl::SimConfig
logStructured()
{
    stl::SimConfig config;
    config.translation = stl::TranslationKind::LogStructured;
    return config;
}

std::vector<ConfigSpec>
twoConfigs()
{
    return {ConfigSpec::fixed("NoLS", conventional()),
            ConfigSpec::fixed("LS", logStructured())};
}

std::string
deterministicJson(const SweepResult &sweep)
{
    std::ostringstream out;
    writeJson(out, sweep, /*with_telemetry=*/false);
    return out.str();
}

/** A self-deleting temp file path. */
class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : path_(std::string(::testing::TempDir()) + name)
    {
        std::remove(path_.c_str());
    }

    ~TempPath() { std::remove(path_.c_str()); }

    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeFileRaw(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

/** An observer that stalls the replay so deadlines can fire. */
struct SleepyObserver : stl::SimObserver
{
    void onEvent(const stl::IoEvent &) override
    {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
};

TEST(SweepRunnerFaultTest, TransientConfigFaultRetriesToSuccess)
{
    // The reference result the retried cell must still reproduce.
    const SweepResult reference =
        SweepRunner({WorkloadSpec::profile("usr_1", tinyProfile())},
                    {ConfigSpec::fixed("NoLS", conventional())}, {})
            .run();

    auto injector = std::make_shared<TransientFaultInjector>(2);
    SweepOptions options;
    options.jobs = 2;
    options.retry.maxAttempts = 3;
    options.retry.initialBackoff = std::chrono::milliseconds(1);
    options.retry.maxBackoff = std::chrono::milliseconds(2);
    const SweepResult sweep =
        SweepRunner(
            {WorkloadSpec::profile("usr_1", tinyProfile())},
            {ConfigSpec::deferred(
                "NoLS",
                [injector](const trace::Trace &) {
                    injector->onAccess("config make");
                    return conventional();
                })},
            options)
            .run();

    const RunRow &row = sweep.row(0, 0);
    ASSERT_TRUE(row.status.ok()) << row.status.message();
    EXPECT_EQ(row.outcome, CellOutcome::RetriedOk);
    EXPECT_EQ(row.attempts, 3);
    EXPECT_EQ(injector->faultsFired(), 2);
    EXPECT_EQ(sweep.telemetry.retriedRuns, 1u);
    EXPECT_EQ(sweep.telemetry.failedRuns, 0u);

    // The retried run is indistinguishable from a clean one.
    const stl::SimResult &clean = reference.row(0, 0).result;
    EXPECT_EQ(row.result.reads, clean.reads);
    EXPECT_EQ(row.result.readSeeks, clean.readSeeks);
    EXPECT_EQ(row.result.writeSeeks, clean.writeSeeks);
    EXPECT_DOUBLE_EQ(row.result.seekTimeSec, clean.seekTimeSec);
}

TEST(SweepRunnerFaultTest, TransientLoaderFaultRetriesToSuccess)
{
    auto injector = std::make_shared<TransientFaultInjector>(1);
    SweepOptions options;
    options.jobs = 2;
    options.retry.maxAttempts = 2;
    options.retry.initialBackoff = std::chrono::milliseconds(1);
    const SweepResult sweep =
        SweepRunner({WorkloadSpec{"usr_1",
                                  [injector] {
                                      injector->onAccess(
                                          "trace load");
                                      return workloads::makeWorkload(
                                          "usr_1", tinyProfile());
                                  },
                                  nullptr}},
                    {ConfigSpec::fixed("NoLS", conventional())},
                    options)
            .run();

    const RunRow &row = sweep.row(0, 0);
    ASSERT_TRUE(row.status.ok()) << row.status.message();
    // The load retry counts toward the cell's attempts.
    EXPECT_EQ(row.outcome, CellOutcome::RetriedOk);
    EXPECT_EQ(row.attempts, 2);
    EXPECT_EQ(sweep.telemetry.retriedRuns, 1u);
}

TEST(SweepRunnerFaultTest, ExhaustedRetriesReportFailed)
{
    auto injector = std::make_shared<TransientFaultInjector>(100);
    SweepOptions options;
    options.retry.maxAttempts = 2;
    options.retry.initialBackoff = std::chrono::milliseconds(1);
    const SweepResult sweep =
        SweepRunner(
            {WorkloadSpec::profile("usr_1", tinyProfile())},
            {ConfigSpec::deferred(
                "NoLS",
                [injector](const trace::Trace &) -> stl::SimConfig {
                    injector->onAccess("config make");
                    return conventional();
                })},
            options)
            .run();

    const RunRow &row = sweep.row(0, 0);
    EXPECT_FALSE(row.status.ok());
    EXPECT_EQ(row.status.code(), StatusCode::Unavailable);
    EXPECT_EQ(row.outcome, CellOutcome::Failed);
    EXPECT_EQ(row.attempts, 2);
    EXPECT_EQ(injector->faultsFired(), 2);
}

TEST(SweepRunnerFaultTest, PermanentErrorsAreNotRetried)
{
    std::atomic<int> calls{0};
    SweepOptions options;
    options.retry.maxAttempts = 5;
    options.retry.initialBackoff = std::chrono::milliseconds(1);
    const SweepResult sweep =
        SweepRunner(
            {WorkloadSpec::profile("usr_1", tinyProfile())},
            {ConfigSpec::deferred(
                "broken",
                [&calls](const trace::Trace &) -> stl::SimConfig {
                    calls.fetch_add(1);
                    throw FatalError("deliberately broken config");
                })},
            options)
            .run();

    const RunRow &row = sweep.row(0, 0);
    EXPECT_FALSE(row.status.ok());
    EXPECT_EQ(row.outcome, CellOutcome::Failed);
    EXPECT_EQ(row.attempts, 1);
    EXPECT_EQ(calls.load(), 1);
}

TEST(SweepRunnerFaultTest, DeadlineExpiryReportsTimedOut)
{
    // Learn the trace size first: the timeout path needs enough
    // records for the replay's periodic cancellation check.
    const SweepResult clean =
        SweepRunner({WorkloadSpec::profile("usr_1", tinyProfile())},
                    {ConfigSpec::fixed("NoLS", conventional())}, {})
            .run();
    ASSERT_GT(clean.row(0, 0).ops,
              stl::ReplayEngine::kCancelCheckInterval);

    SweepOptions options;
    options.cellDeadline = std::chrono::milliseconds(5);
    options.observerFactory = [](const RunKey &) {
        std::vector<std::unique_ptr<stl::SimObserver>> observers;
        observers.push_back(std::make_unique<SleepyObserver>());
        return observers;
    };
    const SweepResult sweep =
        SweepRunner({WorkloadSpec::profile("usr_1", tinyProfile())},
                    {ConfigSpec::fixed("NoLS", conventional())},
                    options)
            .run();

    const RunRow &row = sweep.row(0, 0);
    EXPECT_FALSE(row.status.ok());
    EXPECT_EQ(row.status.code(), StatusCode::DeadlineExceeded);
    EXPECT_EQ(row.outcome, CellOutcome::TimedOut);
    EXPECT_EQ(sweep.telemetry.timedOutRuns, 1u);
    EXPECT_EQ(sweep.telemetry.failedRuns, 1u);
}

TEST(SweepRunnerFaultTest, GenerousDeadlineDoesNotFire)
{
    SweepOptions options;
    options.jobs = 2;
    options.cellDeadline = std::chrono::minutes(10);
    const SweepResult sweep =
        SweepRunner(twoWorkloads(), twoConfigs(), options).run();
    for (const RunRow &row : sweep.rows) {
        EXPECT_TRUE(row.status.ok()) << row.status.message();
        EXPECT_EQ(row.outcome, CellOutcome::Ok);
    }
    EXPECT_EQ(sweep.telemetry.timedOutRuns, 0u);
}

TEST(SweepRunnerFaultTest, PreCancelledSweepSkipsEveryCell)
{
    CancelSource source;
    source.cancel();
    SweepOptions options;
    options.jobs = 4;
    options.cancel = source.token();
    const SweepResult sweep =
        SweepRunner(twoWorkloads(), twoConfigs(), options).run();

    ASSERT_EQ(sweep.rows.size(), 4u);
    for (const RunRow &row : sweep.rows) {
        EXPECT_FALSE(row.status.ok());
        EXPECT_EQ(row.status.code(), StatusCode::Cancelled);
        EXPECT_EQ(row.outcome, CellOutcome::Skipped);
    }
    EXPECT_EQ(sweep.telemetry.skippedRuns, 4u);
}

TEST(SweepRunnerFaultTest, MidRunCancellationSkipsTheRest)
{
    CancelSource source;
    std::atomic<int> completed{0};
    SweepOptions options;
    options.jobs = 1; // deterministic completion order
    options.cancel = source.token();
    options.onCellComplete = [&](const RunRow &) {
        if (completed.fetch_add(1) + 1 == 1)
            source.cancel();
    };
    const SweepResult sweep =
        SweepRunner(twoWorkloads(), twoConfigs(), options).run();

    std::uint64_t ok = 0, skipped = 0;
    for (const RunRow &row : sweep.rows) {
        if (row.status.ok())
            ++ok;
        else if (row.outcome == CellOutcome::Skipped)
            ++skipped;
    }
    EXPECT_GE(ok, 1u);
    EXPECT_GE(skipped, 1u);
    EXPECT_EQ(ok + skipped, sweep.rows.size());
    EXPECT_EQ(sweep.telemetry.skippedRuns, skipped);
}

TEST(SweepRunnerResumeTest, KilledSweepResumesByteIdentically)
{
    const std::string reference = deterministicJson(
        SweepRunner(twoWorkloads(), twoConfigs(), {}).run());

    // "Kill" a checkpointing sweep after its first completed cell:
    // cooperative cancellation stands in for the SIGKILL the
    // acceptance scenario describes, and leaves the same artifact —
    // a checkpoint holding only the finished cells.
    TempPath ckpt("sweep_resume_kill.ckpt");
    CancelSource source;
    std::atomic<int> completed{0};
    SweepOptions interrupted;
    interrupted.jobs = 2;
    interrupted.checkpointPath = ckpt.str();
    interrupted.cancel = source.token();
    interrupted.onCellComplete = [&](const RunRow &) {
        if (completed.fetch_add(1) + 1 == 1)
            source.cancel();
    };
    const SweepResult first =
        SweepRunner(twoWorkloads(), twoConfigs(), interrupted)
            .run();

    std::uint64_t finished = 0;
    for (const RunRow &row : first.rows)
        if (row.status.ok())
            ++finished;
    ASSERT_GE(finished, 1u);
    ASSERT_LT(finished, first.rows.size());

    // Resume at several job counts: the grid must equal the
    // uninterrupted reference byte for byte every time.
    for (const int jobs : {1, 4}) {
        std::atomic<int> recomputed{0};
        SweepOptions resume;
        resume.jobs = jobs;
        resume.resumePath = ckpt.str();
        resume.onCellComplete = [&](const RunRow &) {
            recomputed.fetch_add(1);
        };
        const SweepResult resumed =
            SweepRunner(twoWorkloads(), twoConfigs(), resume)
                .run();

        EXPECT_EQ(deterministicJson(resumed), reference)
            << "jobs " << jobs;
        EXPECT_EQ(resumed.telemetry.restoredRuns, finished)
            << "jobs " << jobs;
        // Only the unfinished cells were recomputed.
        EXPECT_EQ(static_cast<std::uint64_t>(recomputed.load()),
                  resumed.rows.size() - finished)
            << "jobs " << jobs;
    }
}

/** A complete, clean checkpoint of the 2x2 sweep. */
std::string
completeCheckpointImage(const std::string &path)
{
    SweepOptions options;
    options.jobs = 2;
    options.checkpointPath = path;
    SweepRunner(twoWorkloads(), twoConfigs(), options).run();
    return readFile(path);
}

TEST(SweepRunnerResumeTest, CompleteCheckpointRestoresEverything)
{
    const std::string reference = deterministicJson(
        SweepRunner(twoWorkloads(), twoConfigs(), {}).run());

    TempPath ckpt("sweep_resume_full.ckpt");
    completeCheckpointImage(ckpt.str());

    std::atomic<int> recomputed{0};
    SweepOptions resume;
    resume.jobs = 2;
    resume.resumePath = ckpt.str();
    resume.onCellComplete = [&](const RunRow &) {
        recomputed.fetch_add(1);
    };
    const SweepResult resumed =
        SweepRunner(twoWorkloads(), twoConfigs(), resume).run();

    EXPECT_EQ(deterministicJson(resumed), reference);
    EXPECT_EQ(resumed.telemetry.restoredRuns, 4u);
    // Nothing replayed: every trace load was skipped too.
    EXPECT_EQ(recomputed.load(), 0);
    for (const RunRow &row : resumed.rows)
        EXPECT_TRUE(row.restored);
}

TEST(SweepRunnerResumeTest, TornTailRecomputesOnlyTheLostCell)
{
    const std::string reference = deterministicJson(
        SweepRunner(twoWorkloads(), twoConfigs(), {}).run());

    TempPath ckpt("sweep_resume_torn.ckpt");
    const std::string image = completeCheckpointImage(ckpt.str());
    // Tear the tail mid-frame: the last record is lost.
    writeFileRaw(ckpt.str(), image.substr(0, image.size() - 3));

    std::atomic<int> recomputed{0};
    SweepOptions resume;
    resume.jobs = 2;
    resume.resumePath = ckpt.str();
    resume.onCellComplete = [&](const RunRow &) {
        recomputed.fetch_add(1);
    };
    const SweepResult resumed =
        SweepRunner(twoWorkloads(), twoConfigs(), resume).run();

    EXPECT_EQ(deterministicJson(resumed), reference);
    EXPECT_EQ(resumed.telemetry.restoredRuns, 3u);
    EXPECT_EQ(recomputed.load(), 1);
}

TEST(SweepRunnerResumeTest, BitFlipRecomputesOnlyTheDamagedCell)
{
    const std::string reference = deterministicJson(
        SweepRunner(twoWorkloads(), twoConfigs(), {}).run());

    TempPath ckpt("sweep_resume_flip.ckpt");
    const std::string image = completeCheckpointImage(ckpt.str());
    const CheckpointLoad parsed = parseCheckpoint(image);
    ASSERT_TRUE(parsed.clean());
    ASSERT_EQ(parsed.records.size(), 4u);

    // Rebuild the file with one bit flipped inside the second
    // frame's payload: its CRC no longer matches.
    std::string damaged;
    appendCheckpointFrame(damaged, parsed.records[0]);
    const std::size_t flip_at = damaged.size() + 12 + 2;
    appendCheckpointFrame(damaged, parsed.records[1]);
    damaged[flip_at] = static_cast<char>(damaged[flip_at] ^ 0x04);
    appendCheckpointFrame(damaged, parsed.records[2]);
    appendCheckpointFrame(damaged, parsed.records[3]);
    writeFileRaw(ckpt.str(), damaged);

    std::atomic<int> recomputed{0};
    SweepOptions resume;
    resume.jobs = 2;
    resume.resumePath = ckpt.str();
    resume.onCellComplete = [&](const RunRow &) {
        recomputed.fetch_add(1);
    };
    const SweepResult resumed =
        SweepRunner(twoWorkloads(), twoConfigs(), resume).run();

    EXPECT_EQ(deterministicJson(resumed), reference);
    EXPECT_EQ(resumed.telemetry.restoredRuns, 3u);
    EXPECT_EQ(recomputed.load(), 1);
}

TEST(SweepRunnerResumeTest, DuplicateRecordsAreDistrusted)
{
    const std::string reference = deterministicJson(
        SweepRunner(twoWorkloads(), twoConfigs(), {}).run());

    TempPath ckpt("sweep_resume_dup.ckpt");
    const std::string image = completeCheckpointImage(ckpt.str());
    const CheckpointLoad parsed = parseCheckpoint(image);
    ASSERT_EQ(parsed.records.size(), 4u);

    // Append a second copy of the first cell: which one is right?
    // Neither is trusted; the cell is recomputed.
    std::string duplicated = image;
    appendCheckpointFrame(duplicated, parsed.records[0]);
    writeFileRaw(ckpt.str(), duplicated);

    std::atomic<int> recomputed{0};
    SweepOptions resume;
    resume.jobs = 2;
    resume.resumePath = ckpt.str();
    resume.onCellComplete = [&](const RunRow &) {
        recomputed.fetch_add(1);
    };
    const SweepResult resumed =
        SweepRunner(twoWorkloads(), twoConfigs(), resume).run();

    EXPECT_EQ(deterministicJson(resumed), reference);
    EXPECT_EQ(resumed.telemetry.restoredRuns, 3u);
    EXPECT_EQ(recomputed.load(), 1);
}

TEST(SweepRunnerResumeTest, UndecodableRecordsAreIgnored)
{
    const std::string reference = deterministicJson(
        SweepRunner(twoWorkloads(), twoConfigs(), {}).run());

    TempPath ckpt("sweep_resume_garbage.ckpt");
    std::string image = completeCheckpointImage(ckpt.str());
    // A CRC-valid frame whose payload is not a CellRecord.
    appendCheckpointFrame(image, "not a cell record");
    writeFileRaw(ckpt.str(), image);

    const SweepResult resumed = [&] {
        SweepOptions resume;
        resume.jobs = 2;
        resume.resumePath = ckpt.str();
        return SweepRunner(twoWorkloads(), twoConfigs(), resume)
            .run();
    }();

    EXPECT_EQ(deterministicJson(resumed), reference);
    EXPECT_EQ(resumed.telemetry.restoredRuns, 4u);
}

TEST(SweepRunnerResumeTest, MissingCheckpointRunsTheFullSweep)
{
    const std::string reference = deterministicJson(
        SweepRunner(twoWorkloads(), twoConfigs(), {}).run());

    SweepOptions resume;
    resume.jobs = 2;
    resume.resumePath = "/nonexistent/dir/never.ckpt";
    const SweepResult resumed =
        SweepRunner(twoWorkloads(), twoConfigs(), resume).run();

    EXPECT_EQ(deterministicJson(resumed), reference);
    EXPECT_EQ(resumed.telemetry.restoredRuns, 0u);
}

TEST(SweepRunnerResumeTest, ResumedSweepRepublishesACleanFile)
{
    TempPath ckpt("sweep_resume_republish.ckpt");
    const std::string image = completeCheckpointImage(ckpt.str());
    writeFileRaw(ckpt.str(), image.substr(0, image.size() - 3));

    // Resume with checkpointing still on: the torn file must come
    // back complete and clean.
    SweepOptions resume;
    resume.jobs = 2;
    resume.resumePath = ckpt.str();
    resume.checkpointPath = ckpt.str();
    SweepRunner(twoWorkloads(), twoConfigs(), resume).run();

    const CheckpointLoad republished =
        parseCheckpoint(readFile(ckpt.str()));
    EXPECT_TRUE(republished.clean());
    EXPECT_EQ(republished.records.size(), 4u);
}

TEST(SweepRunnerCodecTest, CellRecordRoundTripsBitExactly)
{
    CellRecord record;
    record.workload = "usr_1";
    record.configLabel = "LS+all \"quoted\"";
    record.outcome = CellOutcome::RetriedOk;
    record.attempts = 3;
    record.ops = 123456789ull;
    record.wallSec = 0.1; // not exactly representable
    record.result.workload = "usr_1";
    record.result.configLabel = "LS+all";
    record.result.reads = 11;
    record.result.writes = 22;
    record.result.readSeeks = 33;
    record.result.writeSeeks = 44;
    record.result.fragmentedReads = 55;
    record.result.readFragments = 66;
    record.result.cacheHits = 77;
    record.result.cacheMisses = 88;
    record.result.prefetchHits = 99;
    record.result.defragRewrites = 110;
    record.result.defragBytes = 121;
    record.result.mediaReadBytes = 132;
    record.result.mediaWriteBytes = 143;
    record.result.hostWriteBytes = 154;
    record.result.cleaningReadBytes = 165;
    record.result.cleaningWriteBytes = 176;
    record.result.cleaningSeeks = 187;
    record.result.cleaningMerges = 198;
    record.result.seekTimeSec = 1.0 / 3.0;
    record.result.staticFragments = 209;

    const StatusOr<CellRecord> decoded =
        decodeCellRecord(encodeCellRecord(record));
    ASSERT_TRUE(decoded.ok()) << decoded.status().message();
    const CellRecord &back = decoded.value();
    EXPECT_EQ(back.workload, record.workload);
    EXPECT_EQ(back.configLabel, record.configLabel);
    EXPECT_EQ(back.outcome, record.outcome);
    EXPECT_EQ(back.attempts, record.attempts);
    EXPECT_EQ(back.ops, record.ops);
    EXPECT_EQ(back.wallSec, record.wallSec); // bit-exact
    EXPECT_EQ(back.result.workload, record.result.workload);
    EXPECT_EQ(back.result.configLabel, record.result.configLabel);
    EXPECT_EQ(back.result.reads, record.result.reads);
    EXPECT_EQ(back.result.writeSeeks, record.result.writeSeeks);
    EXPECT_EQ(back.result.cleaningMerges,
              record.result.cleaningMerges);
    EXPECT_EQ(back.result.staticFragments,
              record.result.staticFragments);
    EXPECT_EQ(back.result.seekTimeSec, record.result.seekTimeSec);
}

TEST(SweepRunnerCodecTest, EveryTruncationFailsCleanly)
{
    CellRecord record;
    record.workload = "w";
    record.configLabel = "c";
    const std::string payload = encodeCellRecord(record);
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
        const StatusOr<CellRecord> decoded =
            decodeCellRecord(payload.substr(0, cut));
        ASSERT_FALSE(decoded.ok()) << "cut " << cut;
        EXPECT_EQ(decoded.status().code(), StatusCode::DataLoss)
            << "cut " << cut;
    }
}

TEST(SweepRunnerCodecTest, TrailingBytesAreRejected)
{
    CellRecord record;
    record.workload = "w";
    record.configLabel = "c";
    const StatusOr<CellRecord> decoded =
        decodeCellRecord(encodeCellRecord(record) + "x");
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::DataLoss);
}

TEST(SweepRunnerCodecTest, UnknownVersionIsRejected)
{
    CellRecord record;
    record.workload = "w";
    record.configLabel = "c";
    std::string payload = encodeCellRecord(record);
    payload[0] = static_cast<char>(kCellRecordVersion + 1);
    const StatusOr<CellRecord> decoded = decodeCellRecord(payload);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::DataLoss);
}

TEST(SweepRunnerCodecTest, UnknownOutcomeIsRejected)
{
    CellRecord record;
    record.workload = "w";
    record.configLabel = "c";
    std::string payload = encodeCellRecord(record);
    // version u8, then two (u32 length + bytes) strings, then the
    // outcome byte.
    const std::size_t outcome_at = 1 + 4 + 1 + 4 + 1;
    payload[outcome_at] = static_cast<char>(200);
    const StatusOr<CellRecord> decoded = decodeCellRecord(payload);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::DataLoss);
}

} // namespace
} // namespace logseek::sweep
