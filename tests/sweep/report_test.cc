/**
 * @file
 * Tests for the uniform sweep reports: JSON escaping, report shape,
 * the telemetry-free deterministic form, and CSV structure.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "stl/simulator.h"
#include "sweep/report.h"
#include "sweep/sweep_runner.h"
#include "util/logging.h"
#include "workloads/profiles.h"

namespace logseek::sweep
{
namespace
{

SweepResult
tinySweep()
{
    workloads::ProfileOptions profile;
    profile.scale = 0.002;
    stl::SimConfig nols;
    nols.translation = stl::TranslationKind::Conventional;
    stl::SimConfig ls;
    ls.translation = stl::TranslationKind::LogStructured;
    SweepOptions options;
    options.jobs = 2;
    return SweepRunner({WorkloadSpec::profile("usr_1", profile)},
                       {ConfigSpec::fixed("NoLS", nols),
                        ConfigSpec::fixed("LS", ls)},
                       options)
        .run();
}

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
}

TEST(JsonEscapeTest, EscapesLowControlCharactersAsUnicode)
{
    EXPECT_EQ(jsonEscape(std::string("\x01")), "\\u0001");
    EXPECT_EQ(jsonEscape(std::string("\x1f")), "\\u001f");
    EXPECT_EQ(jsonEscape("a\rb"), "a\\rb");
    EXPECT_EQ(jsonEscape(""), "");
}

/** A sweep whose config label needs escaping in every format. */
SweepResult
evilLabelSweep()
{
    workloads::ProfileOptions profile;
    profile.scale = 0.002;
    stl::SimConfig nols;
    nols.translation = stl::TranslationKind::Conventional;
    SweepOptions options;
    options.jobs = 1;
    return SweepRunner(
               {WorkloadSpec::profile("usr_1", profile)},
               {ConfigSpec::fixed("evil,\"label\"\nline2", nols)},
               options)
        .run();
}

TEST(ReportTest, CsvQuotesFieldsWithCommasQuotesAndNewlines)
{
    std::ostringstream out;
    writeCsv(out, evilLabelSweep());
    // RFC-4180 quoting: the whole field in quotes, inner quotes
    // doubled, commas and newlines preserved verbatim inside.
    EXPECT_NE(out.str().find("\"evil,\"\"label\"\"\nline2\""),
              std::string::npos);
}

TEST(ReportTest, JsonEscapesConfigLabels)
{
    std::ostringstream out;
    writeJson(out, evilLabelSweep());
    const std::string json = out.str();
    EXPECT_NE(json.find("evil,\\\"label\\\"\\nline2"),
              std::string::npos);
    // The raw newline must never reach the JSON string literal.
    EXPECT_EQ(json.find("\"label\"\nline2"), std::string::npos);
}

TEST(ReportTest, JsonContainsGridAndRows)
{
    const SweepResult sweep = tinySweep();
    std::ostringstream out;
    writeJson(out, sweep);
    const std::string json = out.str();

    EXPECT_NE(json.find("\"workloads\": [\"usr_1\"]"),
              std::string::npos);
    EXPECT_NE(json.find("\"configs\": [\"NoLS\", \"LS\"]"),
              std::string::npos);
    EXPECT_NE(json.find("\"telemetry\""), std::string::npos);
    EXPECT_NE(json.find("\"readSeeks\""), std::string::npos);
    EXPECT_NE(json.find("\"wallSec\""), std::string::npos);
    // Two rows — one per config.
    std::size_t rows = 0;
    for (std::size_t at = json.find("\"workload\": \"usr_1\"");
         at != std::string::npos;
         at = json.find("\"workload\": \"usr_1\"", at + 1))
        ++rows;
    EXPECT_EQ(rows, 2u);
}

TEST(ReportTest, TelemetryFreeFormOmitsTimingFields)
{
    const SweepResult sweep = tinySweep();
    std::ostringstream out;
    writeJson(out, sweep, /*with_telemetry=*/false);
    const std::string json = out.str();

    EXPECT_EQ(json.find("\"telemetry\""), std::string::npos);
    EXPECT_EQ(json.find("\"wallSec\""), std::string::npos);
    EXPECT_EQ(json.find("\"opsPerSec\""), std::string::npos);
    // Deterministic fields stay.
    EXPECT_NE(json.find("\"readSeeks\""), std::string::npos);
}

TEST(ReportTest, CsvHasHeaderAndOneLinePerCell)
{
    const SweepResult sweep = tinySweep();
    std::ostringstream out;
    writeCsv(out, sweep);
    std::istringstream lines(out.str());

    std::string header;
    ASSERT_TRUE(std::getline(lines, header));
    EXPECT_EQ(
        header.rfind("workload,config,ok,outcome,attempts,error,ops",
                     0),
        0u);
    EXPECT_NE(header.find("readSeeks"), std::string::npos);
    EXPECT_NE(header.find("writeAmplification"), std::string::npos);

    std::size_t data_lines = 0;
    std::string line;
    while (std::getline(lines, line))
        if (!line.empty())
            ++data_lines;
    EXPECT_EQ(data_lines, sweep.rows.size());
}

TEST(ReportTest, FailedRowsCarryTheErrorInBothFormats)
{
    SweepOptions options;
    options.jobs = 1;
    workloads::ProfileOptions profile;
    profile.scale = 0.002;
    const SweepResult sweep =
        SweepRunner({WorkloadSpec::profile("usr_1", profile)},
                    {ConfigSpec::deferred(
                        "broken",
                        [](const trace::Trace &) -> stl::SimConfig {
                            throw FatalError("bad \"config\"");
                        })},
                    options)
            .run();

    std::ostringstream json_out;
    writeJson(json_out, sweep);
    EXPECT_NE(json_out.str().find("\"ok\": false"),
              std::string::npos);
    EXPECT_NE(json_out.str().find("bad \\\"config\\\""),
              std::string::npos);

    std::ostringstream csv_out;
    writeCsv(csv_out, sweep);
    EXPECT_NE(csv_out.str().find("false"), std::string::npos);
    EXPECT_NE(csv_out.str().find("FAILED"), std::string::npos);
}

TEST(ReportTest, RowsCarryOutcomeAndAttempts)
{
    const SweepResult sweep = tinySweep();
    std::ostringstream out;
    writeJson(out, sweep, /*with_telemetry=*/false);
    const std::string json = out.str();

    // Both cells succeeded first try.
    std::size_t ok_cells = 0;
    for (std::size_t at = json.find("\"outcome\": \"OK\"");
         at != std::string::npos;
         at = json.find("\"outcome\": \"OK\"", at + 1))
        ++ok_cells;
    EXPECT_EQ(ok_cells, 2u);
    EXPECT_NE(json.find("\"attempts\": 1"), std::string::npos);
}

TEST(ReportTest, TelemetryIncludesTaxonomyCounters)
{
    const SweepResult sweep = tinySweep();
    std::ostringstream out;
    writeJson(out, sweep);
    const std::string json = out.str();
    EXPECT_NE(json.find("\"retriedRuns\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"timedOutRuns\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"skippedRuns\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"restoredRuns\": 0"), std::string::npos);
}

} // namespace
} // namespace logseek::sweep
