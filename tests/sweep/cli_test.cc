/**
 * @file
 * Tests for the shared bench CLI surface: positional scale/seed,
 * --jobs, --json/--csv destinations, --paranoid, the fault-
 * tolerance flags (--deadline-ms/--retries/--checkpoint/--resume),
 * the observability flags (--metrics-out/--trace-out/--help), and
 * strict rejection of malformed numbers and unknown arguments.
 * The help-sync test pins benchHelp()/benchUsage() to
 * benchFlagNames() so the documented surface cannot drift from
 * what the parser accepts.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/validating_observer.h"
#include "sweep/cli.h"
#include "trace/binary.h"
#include "trace/lskc.h"

namespace logseek::sweep
{
namespace
{

std::optional<BenchCli>
parse(std::vector<const char *> args, double default_scale = 0.02)
{
    args.insert(args.begin(), "bench");
    return parseBenchCli(static_cast<int>(args.size()),
                         const_cast<char **>(args.data()), "usage",
                         default_scale);
}

StatusOr<BenchCli>
tryParse(std::vector<const char *> args)
{
    args.insert(args.begin(), "bench");
    return tryParseBenchCli(static_cast<int>(args.size()),
                            const_cast<char **>(args.data()));
}

TEST(BenchCliTest, DefaultsApply)
{
    const auto cli = parse({});
    ASSERT_TRUE(cli.has_value());
    EXPECT_DOUBLE_EQ(cli->profile.scale, 0.02);
    EXPECT_EQ(cli->jobs, 1);
    EXPECT_FALSE(cli->paranoid);
    EXPECT_FALSE(cli->jsonPath.has_value());
    EXPECT_FALSE(cli->csvPath.has_value());
    EXPECT_GE(cli->resolvedJobs(), 1);
}

TEST(BenchCliTest, CustomDefaultScale)
{
    const auto cli = parse({}, 0.01);
    ASSERT_TRUE(cli.has_value());
    EXPECT_DOUBLE_EQ(cli->profile.scale, 0.01);
}

TEST(BenchCliTest, PositionalScaleAndSeed)
{
    const auto cli = parse({"0.004", "17"});
    ASSERT_TRUE(cli.has_value());
    EXPECT_DOUBLE_EQ(cli->profile.scale, 0.004);
    EXPECT_EQ(cli->profile.seed, 17u);
}

TEST(BenchCliTest, JobsBothSpellings)
{
    auto cli = parse({"--jobs", "8"});
    ASSERT_TRUE(cli.has_value());
    EXPECT_EQ(cli->jobs, 8);
    EXPECT_EQ(cli->resolvedJobs(), 8);

    cli = parse({"--jobs=3"});
    ASSERT_TRUE(cli.has_value());
    EXPECT_EQ(cli->jobs, 3);

    // Hardware concurrency is spelled "auto", never 0.
    cli = parse({"--jobs=auto"});
    ASSERT_TRUE(cli.has_value());
    EXPECT_EQ(cli->jobs, 0);
    EXPECT_GE(cli->resolvedJobs(), 1);
}

TEST(BenchCliTest, JobsRejectsZeroNegativeAndGarbage)
{
    for (const char *bad : {"0", "-1", "-8", "two", "4x", "",
                            "4.5", "99999999999999999999"}) {
        const StatusOr<BenchCli> cli = tryParse({"--jobs", bad});
        EXPECT_FALSE(cli.ok()) << "--jobs " << bad;
        EXPECT_EQ(cli.status().code(), StatusCode::InvalidArgument)
            << "--jobs " << bad;
    }
    // The error message names the flag.
    const StatusOr<BenchCli> cli = tryParse({"--jobs=0"});
    ASSERT_FALSE(cli.ok());
    EXPECT_NE(cli.status().message().find("--jobs"),
              std::string::npos);
}

TEST(BenchCliTest, FaultToleranceFlags)
{
    const StatusOr<BenchCli> cli =
        tryParse({"--deadline-ms", "250", "--retries=3",
                  "--checkpoint", "/tmp/c.ckpt",
                  "--resume=/tmp/r.ckpt"});
    ASSERT_TRUE(cli.ok()) << cli.status().message();
    EXPECT_EQ(cli.value().deadlineMs, 250);
    EXPECT_EQ(cli.value().retries, 3);
    EXPECT_EQ(cli.value().checkpointPath, "/tmp/c.ckpt");
    EXPECT_EQ(cli.value().resumePath, "/tmp/r.ckpt");

    const SweepOptions options = cli.value().sweepOptions();
    EXPECT_EQ(options.cellDeadline.count(), 250);
    EXPECT_EQ(options.retry.maxAttempts, 4);
    EXPECT_EQ(options.checkpointPath, "/tmp/c.ckpt");
    EXPECT_EQ(options.resumePath, "/tmp/r.ckpt");
}

TEST(BenchCliTest, FaultToleranceFlagValidation)
{
    EXPECT_FALSE(tryParse({"--deadline-ms", "-5"}).ok());
    EXPECT_FALSE(tryParse({"--deadline-ms", "soon"}).ok());
    EXPECT_FALSE(tryParse({"--retries", "-1"}).ok());
    EXPECT_FALSE(tryParse({"--retries", "1001"}).ok());
    EXPECT_FALSE(tryParse({"--checkpoint"}).ok());
    EXPECT_FALSE(tryParse({"--resume="}).ok());
}

TEST(BenchCliTest, ErrorLogCapFlag)
{
    const auto defaulted = parse({});
    ASSERT_TRUE(defaulted.has_value());
    EXPECT_EQ(defaulted->errorLogCap, 0U); // 0 = device default

    const StatusOr<BenchCli> cli =
        tryParse({"--error-log-cap", "512"});
    ASSERT_TRUE(cli.ok()) << cli.status().message();
    EXPECT_EQ(cli.value().errorLogCap, 512U);

    const StatusOr<BenchCli> spelled =
        tryParse({"--error-log-cap=1"});
    ASSERT_TRUE(spelled.ok());
    EXPECT_EQ(spelled.value().errorLogCap, 1U);
}

TEST(BenchCliTest, ErrorLogCapValidation)
{
    EXPECT_FALSE(tryParse({"--error-log-cap", "0"}).ok());
    EXPECT_FALSE(tryParse({"--error-log-cap", "-4"}).ok());
    EXPECT_FALSE(tryParse({"--error-log-cap", "1048577"}).ok());
    EXPECT_FALSE(tryParse({"--error-log-cap", "many"}).ok());
    EXPECT_FALSE(tryParse({"--error-log-cap"}).ok());
}

TEST(BenchCliTest, FiniteLogOverrideFlags)
{
    const auto defaulted = parse({});
    ASSERT_TRUE(defaulted.has_value());
    EXPECT_EQ(defaulted->logCapacityBytes, 0U);
    EXPECT_EQ(defaulted->segmentBytes, 0U);
    EXPECT_EQ(defaulted->cleanReserve, 0U);

    const StatusOr<BenchCli> cli = tryParse(
        {"--log-capacity", "67108864", "--segment-bytes",
         "1048576", "--clean-reserve=6"});
    ASSERT_TRUE(cli.ok()) << cli.status().message();
    EXPECT_EQ(cli.value().logCapacityBytes, 64 * kMiB);
    EXPECT_EQ(cli.value().segmentBytes, kMiB);
    EXPECT_EQ(cli.value().cleanReserve, 6U);

    // Overrides apply onto a bench config; zeros leave it alone.
    // The default target (4) is below the raised reserve, so the
    // hysteresis follows it upward to reserve + 2.
    stl::FiniteLogConfig config;
    cli.value().applyFiniteLogOverrides(config);
    EXPECT_EQ(config.capacityBytes, 64 * kMiB);
    EXPECT_EQ(config.segmentBytes, kMiB);
    EXPECT_EQ(config.cleanReserveSegments, 6U);
    EXPECT_EQ(config.cleanTargetSegments, 8U); // followed upward

    // A reserve the default target already clears leaves the
    // target alone.
    stl::FiniteLogConfig low;
    const StatusOr<BenchCli> small =
        tryParse({"--clean-reserve", "3"});
    ASSERT_TRUE(small.ok());
    small.value().applyFiniteLogOverrides(low);
    EXPECT_EQ(low.cleanReserveSegments, 3U);
    EXPECT_EQ(low.cleanTargetSegments, 4U);

    stl::FiniteLogConfig untouched;
    const auto plain = parse({});
    plain->applyFiniteLogOverrides(untouched);
    EXPECT_EQ(untouched.capacityBytes,
              stl::FiniteLogConfig{}.capacityBytes);
    EXPECT_EQ(untouched.cleanTargetSegments,
              stl::FiniteLogConfig{}.cleanTargetSegments);
}

TEST(BenchCliTest, FiniteLogOverrideValidation)
{
    EXPECT_FALSE(tryParse({"--log-capacity", "0"}).ok());
    EXPECT_FALSE(tryParse({"--log-capacity", "1048575"}).ok());
    EXPECT_FALSE(
        tryParse({"--log-capacity", "1099511627777"}).ok());
    EXPECT_FALSE(tryParse({"--log-capacity", "lots"}).ok());
    EXPECT_FALSE(tryParse({"--log-capacity"}).ok());
    EXPECT_FALSE(tryParse({"--segment-bytes", "65535"}).ok());
    EXPECT_FALSE(tryParse({"--segment-bytes", "1073741825"}).ok());
    EXPECT_FALSE(tryParse({"--segment-bytes"}).ok());
    EXPECT_FALSE(tryParse({"--clean-reserve", "0"}).ok());
    EXPECT_FALSE(tryParse({"--clean-reserve", "1025"}).ok());
    EXPECT_FALSE(tryParse({"--clean-reserve", "-1"}).ok());
    EXPECT_FALSE(tryParse({"--clean-reserve"}).ok());
}

TEST(BenchCliTest, PositionalValidation)
{
    EXPECT_FALSE(tryParse({"0"}).ok());      // scale must be > 0
    EXPECT_FALSE(tryParse({"-0.5"}).ok());
    EXPECT_FALSE(tryParse({"big"}).ok());
    EXPECT_FALSE(tryParse({"0.02", "-3"}).ok()); // seed >= 0
    EXPECT_FALSE(tryParse({"0.02", "1.5"}).ok());
}

TEST(BenchCliTest, ReportDestinations)
{
    const auto cli =
        parse({"--json=/tmp/a.json", "--csv=/tmp/a.csv"});
    ASSERT_TRUE(cli.has_value());
    EXPECT_EQ(cli->jsonPath, "/tmp/a.json");
    EXPECT_EQ(cli->csvPath, "/tmp/a.csv");

    const auto bare = parse({"--json", "--csv"});
    ASSERT_TRUE(bare.has_value());
    EXPECT_EQ(bare->jsonPath, "-");
    EXPECT_EQ(bare->csvPath, "-");
}

TEST(BenchCliTest, RejectsUnknownAndExtraArguments)
{
    EXPECT_FALSE(parse({"--frobnicate"}).has_value());
    EXPECT_FALSE(parse({"0.02", "1", "2"}).has_value());
    EXPECT_FALSE(parse({"--jobs"}).has_value());
    EXPECT_FALSE(parse({"--jobs", "-2"}).has_value());
}

TEST(BenchCliTest, ObserverFactoryIsNullWithoutParanoidOrExtra)
{
    const auto cli = parse({});
    ASSERT_TRUE(cli.has_value());
    EXPECT_FALSE(static_cast<bool>(cli->observerFactory()));
}

TEST(BenchCliTest, ObservabilityDestinations)
{
    const auto cli = parse(
        {"--metrics-out", "/tmp/m.json", "--trace-out=/tmp/t.json"});
    ASSERT_TRUE(cli.has_value());
    EXPECT_EQ(cli->metricsOutPath, "/tmp/m.json");
    EXPECT_EQ(cli->traceOutPath, "/tmp/t.json");

    const auto other = parse(
        {"--metrics-out=m.prom", "--trace-out", "-"});
    ASSERT_TRUE(other.has_value());
    EXPECT_EQ(other->metricsOutPath, "m.prom");
    EXPECT_EQ(other->traceOutPath, "-");

    const auto off = parse({});
    ASSERT_TRUE(off.has_value());
    EXPECT_TRUE(off->metricsOutPath.empty());
    EXPECT_TRUE(off->traceOutPath.empty());
}

TEST(BenchCliTest, ObservabilityFlagsRequirePaths)
{
    EXPECT_FALSE(tryParse({"--metrics-out"}).ok());
    EXPECT_FALSE(tryParse({"--metrics-out="}).ok());
    EXPECT_FALSE(tryParse({"--trace-out"}).ok());
    EXPECT_FALSE(tryParse({"--trace-out="}).ok());
}

TEST(BenchCliTest, TraceFormatFlag)
{
    const auto cli = parse({"--trace-format", "lskc"});
    ASSERT_TRUE(cli.has_value());
    EXPECT_EQ(cli->traceFormat, trace::TraceFormat::Lskc);

    const auto eq = parse({"--trace-format=csv"});
    ASSERT_TRUE(eq.has_value());
    EXPECT_EQ(eq->traceFormat, trace::TraceFormat::Csv);

    const auto off = parse({});
    ASSERT_TRUE(off.has_value());
    EXPECT_EQ(off->traceFormat, trace::TraceFormat::Auto);
}

TEST(BenchCliTest, TraceFormatRejectsUnknownValues)
{
    // The parser is strict: exact lower-case names only, and the
    // error names the offending value.
    for (const char *bad : {"CSV", "binary", "lsk", ""}) {
        const auto cli = tryParse({"--trace-format", bad});
        ASSERT_FALSE(cli.ok()) << "'" << bad << "'";
        EXPECT_EQ(cli.status().code(), StatusCode::InvalidArgument)
            << "'" << bad << "'";
    }
    EXPECT_FALSE(tryParse({"--trace-format"}).ok());
}

TEST(BenchCliTest, ConvertOutFlag)
{
    const auto cli = parse({"--convert-out", "/tmp/out.lskc"});
    ASSERT_TRUE(cli.has_value());
    EXPECT_EQ(cli->convertOutPath, "/tmp/out.lskc");

    const auto eq = parse({"--convert-out=o.lskc"});
    ASSERT_TRUE(eq.has_value());
    EXPECT_EQ(eq->convertOutPath, "o.lskc");

    const auto off = parse({});
    ASSERT_TRUE(off.has_value());
    EXPECT_TRUE(off->convertOutPath.empty());

    EXPECT_FALSE(tryParse({"--convert-out"}).ok());
    EXPECT_FALSE(tryParse({"--convert-out="}).ok());
}

TEST(BenchCliTest, ConvertOutInstallsExportHook)
{
    const std::string out = "/tmp/logseek_cli_convert_" +
                            std::to_string(::getpid()) + ".lskc";
    const auto cli = parse({"--convert-out", out.c_str()});
    ASSERT_TRUE(cli.has_value());
    SweepOptions options = cli->sweepOptions();
    ASSERT_TRUE(static_cast<bool>(options.onTrace));

    trace::Trace sample("hook");
    sample.appendRead(100, 8, 0);
    sample.appendWrite(5000, 64, 1234);

    // Only the first workload is exported.
    options.onTrace(1, sample);
    EXPECT_FALSE(trace::tryReadLskcFile(out).ok());
    options.onTrace(0, sample);
    StatusOr<trace::Trace> back = trace::tryReadLskcFile(out);
    ASSERT_TRUE(back.ok()) << back.status().message();
    ASSERT_EQ(back.value().size(), sample.size());
    for (std::size_t i = 0; i < sample.size(); ++i)
        EXPECT_EQ(back.value()[i], sample[i]) << i;
    std::remove(out.c_str());

    // --trace-format overrides the extension: the same path now
    // receives LSKT bytes.
    const auto forced =
        parse({"--convert-out", out.c_str(), "--trace-format",
               "lskt"});
    ASSERT_TRUE(forced.has_value());
    SweepOptions forced_options = forced->sweepOptions();
    ASSERT_TRUE(static_cast<bool>(forced_options.onTrace));
    forced_options.onTrace(0, sample);
    EXPECT_FALSE(trace::tryReadLskcFile(out).ok());
    StatusOr<trace::Trace> lskt =
        trace::tryReadBinaryTraceFile(out);
    ASSERT_TRUE(lskt.ok()) << lskt.status().message();
    EXPECT_EQ(lskt.value().size(), sample.size());
    std::remove(out.c_str());

    // Without --convert-out no hook is installed.
    const auto off = parse({});
    ASSERT_TRUE(off.has_value());
    EXPECT_FALSE(static_cast<bool>(off->sweepOptions().onTrace));
}

TEST(BenchCliTest, HelpRequestShortCircuitsParsing)
{
    // parseBenchCli exits the process on --help, so only the typed
    // parser is testable; --help wins even mid-way through a line
    // that would otherwise be rejected.
    for (const char *spelling : {"--help", "-h"}) {
        const auto cli = tryParse({"0.5", spelling, "--frobnicate"});
        ASSERT_TRUE(cli.ok()) << spelling;
        EXPECT_TRUE(cli.value().helpRequested) << spelling;
    }
    const auto plain = tryParse({});
    ASSERT_TRUE(plain.ok());
    EXPECT_FALSE(plain.value().helpRequested);
}

TEST(BenchCliTest, HelpTextDocumentsExactlyTheAcceptedFlags)
{
    const std::string help = benchHelp("bench");
    EXPECT_EQ(help.rfind("usage: bench ", 0), 0u);

    // Every flag the parser accepts appears in the help...
    for (const std::string &flag : benchFlagNames())
        EXPECT_NE(help.find(flag), std::string::npos)
            << "help is missing " << flag;

    // ...and every "--flag" token in the help is a parser flag, so
    // the text cannot advertise an option that does not exist.
    const std::vector<std::string> known = benchFlagNames();
    for (std::size_t at = help.find("--"); at != std::string::npos;
         at = help.find("--", at + 1)) {
        std::size_t end = at + 2;
        while (end < help.size() &&
               (std::isalnum(static_cast<unsigned char>(
                    help[end])) != 0 ||
                help[end] == '-'))
            ++end;
        const std::string token = help.substr(at, end - at);
        EXPECT_NE(std::find(known.begin(), known.end(), token),
                  known.end())
            << "help mentions unknown flag " << token;
        at = end - 1;
    }

    // The one-line usage stays in sync too.
    const std::string usage = benchUsage("bench");
    for (const std::string &flag : benchFlagNames())
        EXPECT_NE(usage.find(flag), std::string::npos)
            << "usage is missing " << flag;
}

TEST(BenchCliTest, ParanoidPrependsValidator)
{
    const auto cli = parse({"--paranoid"});
    ASSERT_TRUE(cli.has_value());
    EXPECT_TRUE(cli->paranoid);

    bool extra_called = false;
    ObserverFactory factory =
        cli->observerFactory([&extra_called](const RunKey &) {
            extra_called = true;
            std::vector<std::unique_ptr<stl::SimObserver>> observers;
            observers.push_back(
                std::make_unique<analysis::ValidatingObserver>());
            return observers;
        });
    ASSERT_TRUE(static_cast<bool>(factory));

    const RunKey key{0, 0, "w", "c"};
    const auto observers = factory(key);
    EXPECT_TRUE(extra_called);
    ASSERT_EQ(observers.size(), 2u);
    // Validator first, the bench's own observers after.
    EXPECT_NE(dynamic_cast<analysis::ValidatingObserver *>(
                  observers[0].get()),
              nullptr);
}

} // namespace
} // namespace logseek::sweep
