/**
 * @file
 * Tests for the shared bench CLI surface: positional scale/seed,
 * --jobs, --json/--csv destinations, --paranoid, and rejection of
 * unknown arguments.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "analysis/validating_observer.h"
#include "sweep/cli.h"

namespace logseek::sweep
{
namespace
{

std::optional<BenchCli>
parse(std::vector<const char *> args, double default_scale = 0.02)
{
    args.insert(args.begin(), "bench");
    return parseBenchCli(static_cast<int>(args.size()),
                         const_cast<char **>(args.data()), "usage",
                         default_scale);
}

TEST(BenchCliTest, DefaultsApply)
{
    const auto cli = parse({});
    ASSERT_TRUE(cli.has_value());
    EXPECT_DOUBLE_EQ(cli->profile.scale, 0.02);
    EXPECT_EQ(cli->jobs, 1);
    EXPECT_FALSE(cli->paranoid);
    EXPECT_FALSE(cli->jsonPath.has_value());
    EXPECT_FALSE(cli->csvPath.has_value());
    EXPECT_GE(cli->resolvedJobs(), 1);
}

TEST(BenchCliTest, CustomDefaultScale)
{
    const auto cli = parse({}, 0.01);
    ASSERT_TRUE(cli.has_value());
    EXPECT_DOUBLE_EQ(cli->profile.scale, 0.01);
}

TEST(BenchCliTest, PositionalScaleAndSeed)
{
    const auto cli = parse({"0.004", "17"});
    ASSERT_TRUE(cli.has_value());
    EXPECT_DOUBLE_EQ(cli->profile.scale, 0.004);
    EXPECT_EQ(cli->profile.seed, 17u);
}

TEST(BenchCliTest, JobsBothSpellings)
{
    auto cli = parse({"--jobs", "8"});
    ASSERT_TRUE(cli.has_value());
    EXPECT_EQ(cli->jobs, 8);
    EXPECT_EQ(cli->resolvedJobs(), 8);

    cli = parse({"--jobs=3"});
    ASSERT_TRUE(cli.has_value());
    EXPECT_EQ(cli->jobs, 3);

    // 0 = use hardware concurrency, but never less than one.
    cli = parse({"--jobs=0"});
    ASSERT_TRUE(cli.has_value());
    EXPECT_GE(cli->resolvedJobs(), 1);
}

TEST(BenchCliTest, ReportDestinations)
{
    const auto cli =
        parse({"--json=/tmp/a.json", "--csv=/tmp/a.csv"});
    ASSERT_TRUE(cli.has_value());
    EXPECT_EQ(cli->jsonPath, "/tmp/a.json");
    EXPECT_EQ(cli->csvPath, "/tmp/a.csv");

    const auto bare = parse({"--json", "--csv"});
    ASSERT_TRUE(bare.has_value());
    EXPECT_EQ(bare->jsonPath, "-");
    EXPECT_EQ(bare->csvPath, "-");
}

TEST(BenchCliTest, RejectsUnknownAndExtraArguments)
{
    EXPECT_FALSE(parse({"--frobnicate"}).has_value());
    EXPECT_FALSE(parse({"0.02", "1", "2"}).has_value());
    EXPECT_FALSE(parse({"--jobs"}).has_value());
    EXPECT_FALSE(parse({"--jobs", "-2"}).has_value());
}

TEST(BenchCliTest, ObserverFactoryIsNullWithoutParanoidOrExtra)
{
    const auto cli = parse({});
    ASSERT_TRUE(cli.has_value());
    EXPECT_FALSE(static_cast<bool>(cli->observerFactory()));
}

TEST(BenchCliTest, ParanoidPrependsValidator)
{
    const auto cli = parse({"--paranoid"});
    ASSERT_TRUE(cli.has_value());
    EXPECT_TRUE(cli->paranoid);

    bool extra_called = false;
    ObserverFactory factory =
        cli->observerFactory([&extra_called](const RunKey &) {
            extra_called = true;
            std::vector<std::unique_ptr<stl::SimObserver>> observers;
            observers.push_back(
                std::make_unique<analysis::ValidatingObserver>());
            return observers;
        });
    ASSERT_TRUE(static_cast<bool>(factory));

    const RunKey key{0, 0, "w", "c"};
    const auto observers = factory(key);
    EXPECT_TRUE(extra_called);
    ASSERT_EQ(observers.size(), 2u);
    // Validator first, the bench's own observers after.
    EXPECT_NE(dynamic_cast<analysis::ValidatingObserver *>(
                  observers[0].get()),
              nullptr);
}

} // namespace
} // namespace logseek::sweep
