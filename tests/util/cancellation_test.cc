/**
 * @file
 * Unit tests for cooperative cancellation: token/source semantics,
 * parent chaining, first-reason-wins, and interruptible sleep.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "util/cancellation.h"

namespace logseek
{
namespace
{

TEST(Cancellation, DefaultTokenIsNeverCancelled)
{
    const CancelToken token;
    EXPECT_FALSE(token.cancelled());
    EXPECT_EQ(token.reason(), CancelReason::None);
    EXPECT_TRUE(token.toStatus("work").ok());
}

TEST(Cancellation, SourceFiresItsTokens)
{
    CancelSource source;
    const CancelToken token = source.token();
    EXPECT_FALSE(token.cancelled());

    source.cancel();
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.reason(), CancelReason::Cancelled);

    const Status status = token.toStatus("replay of usr_1");
    EXPECT_EQ(status.code(), StatusCode::Cancelled);
    EXPECT_NE(status.message().find("replay of usr_1"),
              std::string::npos);
}

TEST(Cancellation, DeadlineReasonMapsToDeadlineExceeded)
{
    CancelSource source;
    source.cancel(CancelReason::DeadlineExceeded);
    EXPECT_EQ(source.token().toStatus("cell").code(),
              StatusCode::DeadlineExceeded);
}

TEST(Cancellation, FirstReasonWins)
{
    CancelSource source;
    source.cancel(CancelReason::DeadlineExceeded);
    source.cancel(CancelReason::Cancelled);
    EXPECT_EQ(source.token().reason(),
              CancelReason::DeadlineExceeded);
}

TEST(Cancellation, CopiedSourcesShareTheFlag)
{
    CancelSource source;
    CancelSource copy = source;
    copy.cancel();
    EXPECT_TRUE(source.cancelled());
}

TEST(Cancellation, LinkedSourceObservesParent)
{
    CancelSource sweep;
    CancelSource cell(sweep.token());
    EXPECT_FALSE(cell.token().cancelled());

    sweep.cancel();
    EXPECT_TRUE(cell.token().cancelled());
    EXPECT_EQ(cell.token().reason(), CancelReason::Cancelled);
}

TEST(Cancellation, ParentDoesNotObserveChild)
{
    CancelSource sweep;
    CancelSource cell(sweep.token());
    cell.cancel(CancelReason::DeadlineExceeded);
    EXPECT_TRUE(cell.token().cancelled());
    EXPECT_FALSE(sweep.token().cancelled());
}

TEST(Cancellation, ChildReasonPrefersOwnFlag)
{
    CancelSource sweep;
    CancelSource cell(sweep.token());
    cell.cancel(CancelReason::DeadlineExceeded);
    sweep.cancel(CancelReason::Cancelled);
    EXPECT_EQ(cell.token().reason(),
              CancelReason::DeadlineExceeded);
}

TEST(Cancellation, ReasonNamesAreStable)
{
    EXPECT_STREQ(toString(CancelReason::None), "none");
    EXPECT_STREQ(toString(CancelReason::Cancelled), "cancelled");
    EXPECT_STREQ(toString(CancelReason::DeadlineExceeded),
                 "deadline-exceeded");
}

TEST(Cancellation, SleepForCompletesWithoutCancellation)
{
    EXPECT_TRUE(
        sleepFor(std::chrono::milliseconds(1), CancelToken()));
}

TEST(Cancellation, SleepForWakesEarlyWhenCancelled)
{
    CancelSource source;
    std::thread firer([&source] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        source.cancel();
    });
    const auto start = std::chrono::steady_clock::now();
    const bool slept_fully =
        sleepFor(std::chrono::milliseconds(10000), source.token());
    const auto elapsed = std::chrono::steady_clock::now() - start;
    firer.join();

    EXPECT_FALSE(slept_fully);
    EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST(Cancellation, SleepForReturnsImmediatelyWhenAlreadyCancelled)
{
    CancelSource source;
    source.cancel();
    EXPECT_FALSE(sleepFor(std::chrono::milliseconds(10000),
                          source.token()));
}

} // namespace
} // namespace logseek
