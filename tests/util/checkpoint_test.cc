/**
 * @file
 * Unit tests for the CRC-guarded checkpoint file format: the CRC-32
 * implementation, frame round-trips, torn-tail and bit-flip damage
 * recovery, resync after mid-file corruption, and the atomically-
 * publishing writer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "util/checkpoint.h"
#include "util/fault.h"

namespace logseek
{
namespace
{

/** A self-deleting temp file path. */
class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : path_(std::string(::testing::TempDir()) + name)
    {
        std::remove(path_.c_str());
    }

    ~TempPath() { std::remove(path_.c_str()); }

    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeFileRaw(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

std::string
imageOf(const std::vector<std::string> &payloads)
{
    std::string image;
    for (const std::string &payload : payloads)
        appendCheckpointFrame(image, payload);
    return image;
}

TEST(Crc32, MatchesTheIeeeCheckValue)
{
    // The canonical CRC-32 check value.
    EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
    EXPECT_EQ(crc32(""), 0u);
    EXPECT_NE(crc32("a"), crc32("b"));
}

TEST(Checkpoint, EmptyImageParsesClean)
{
    const CheckpointLoad load = parseCheckpoint("");
    EXPECT_TRUE(load.clean());
    EXPECT_TRUE(load.records.empty());
}

TEST(Checkpoint, FramesRoundTrip)
{
    const std::vector<std::string> payloads = {
        "alpha", std::string(1, '\0') + "binary\xffpayload", "",
        std::string(5000, 'z')};
    const CheckpointLoad load = parseCheckpoint(imageOf(payloads));
    EXPECT_TRUE(load.clean());
    EXPECT_EQ(load.records, payloads);
    EXPECT_EQ(load.bytesDropped, 0u);
}

TEST(Checkpoint, TornTailTruncatesToLastWholeRecord)
{
    const std::string image = imageOf({"one", "two", "three"});
    // Cut anywhere strictly inside the final frame (its 12-byte
    // header plus "three"): the record is lost, the first two
    // survive, and the damage is flagged as a torn tail — never as
    // corruption.
    const std::size_t last_frame = 12 + 5;
    for (std::size_t cut = image.size() - last_frame + 1;
         cut < image.size(); ++cut) {
        const CheckpointLoad load =
            parseCheckpoint(image.substr(0, cut));
        EXPECT_TRUE(load.tornTail) << "cut " << cut;
        EXPECT_EQ(load.damagedFrames, 0u) << "cut " << cut;
        ASSERT_EQ(load.records.size(), 2u) << "cut " << cut;
        EXPECT_EQ(load.records[0], "one");
        EXPECT_EQ(load.records[1], "two");
    }
}

TEST(Checkpoint, BitFlipLosesOnlyTheDamagedFrame)
{
    const std::vector<std::string> payloads = {"first", "second",
                                               "third"};
    const std::string image = imageOf(payloads);

    // Flip one bit in the middle frame's payload: the CRC catches
    // it, the reader resyncs on the next magic, and the other two
    // records survive.
    std::string damaged = image;
    const std::size_t frame = image.size() / payloads.size();
    damaged[frame + 14] =
        static_cast<char>(damaged[frame + 14] ^ 0x10);

    const CheckpointLoad load = parseCheckpoint(damaged);
    EXPECT_FALSE(load.clean());
    EXPECT_EQ(load.damagedFrames, 1u);
    EXPECT_FALSE(load.tornTail);
    ASSERT_EQ(load.records.size(), 2u);
    EXPECT_EQ(load.records[0], "first");
    EXPECT_EQ(load.records[1], "third");
    EXPECT_GT(load.bytesDropped, 0u);
}

TEST(Checkpoint, EveryPossibleBitFlipKeepsTheOtherRecords)
{
    const std::string image = imageOf({"aaaa", "bbbb", "cccc"});
    const std::size_t frame = image.size() / 3;
    // Damage anywhere in the middle frame; the outer records must
    // always survive.
    for (std::size_t at = frame; at < 2 * frame; ++at) {
        std::string damaged = image;
        damaged[at] = static_cast<char>(damaged[at] ^ 0x01);
        const CheckpointLoad load = parseCheckpoint(damaged);
        ASSERT_GE(load.records.size(), 2u) << "flip at " << at;
        EXPECT_EQ(load.records.front(), "aaaa") << "flip at " << at;
        EXPECT_EQ(load.records.back(), "cccc") << "flip at " << at;
    }
}

TEST(Checkpoint, GarbageBetweenFramesIsSkipped)
{
    std::string image = imageOf({"head"});
    image += "garbage bytes that are not a frame";
    appendCheckpointFrame(image, "tail");

    const CheckpointLoad load = parseCheckpoint(image);
    EXPECT_FALSE(load.clean());
    ASSERT_EQ(load.records.size(), 2u);
    EXPECT_EQ(load.records[0], "head");
    EXPECT_EQ(load.records[1], "tail");
}

TEST(Checkpoint, LoadReportsMissingFileAsNotFound)
{
    const StatusOr<CheckpointLoad> load =
        loadCheckpoint("/nonexistent/dir/never.ckpt");
    ASSERT_FALSE(load.ok());
    EXPECT_EQ(load.status().code(), StatusCode::NotFound);
}

TEST(Checkpoint, WriterRoundTripsThroughTheFilesystem)
{
    TempPath path("ckpt_writer_roundtrip.ckpt");
    CheckpointWriter writer(path.str());
    EXPECT_TRUE(writer.append("one").ok());
    EXPECT_TRUE(writer.append("two").ok());
    EXPECT_EQ(writer.recordCount(), 2u);

    const StatusOr<CheckpointLoad> load =
        loadCheckpoint(path.str());
    ASSERT_TRUE(load.ok()) << load.status().message();
    EXPECT_TRUE(load.value().clean());
    EXPECT_EQ(load.value().records,
              (std::vector<std::string>{"one", "two"}));
}

TEST(Checkpoint, WriterSeedRewritesDamagedFilesClean)
{
    TempPath path("ckpt_writer_seed.ckpt");
    // Simulate a resumed sweep: the old file has a torn tail.
    std::string image = imageOf({"keep"});
    appendCheckpointFrame(image, "torn");
    writeFileRaw(path.str(), image.substr(0, image.size() - 3));

    CheckpointWriter writer(path.str());
    writer.seed({"keep"});
    EXPECT_TRUE(writer.append("fresh").ok());

    const StatusOr<CheckpointLoad> load =
        loadCheckpoint(path.str());
    ASSERT_TRUE(load.ok());
    // The republished file is fully clean again.
    EXPECT_TRUE(load.value().clean());
    EXPECT_EQ(load.value().records,
              (std::vector<std::string>{"keep", "fresh"}));
}

TEST(Checkpoint, EveryAppendLeavesAParseableFile)
{
    TempPath path("ckpt_writer_incremental.ckpt");
    CheckpointWriter writer(path.str());
    for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(
            writer.append("record-" + std::to_string(i)).ok());
        // The published file is complete after every append — the
        // atomic rename never exposes a half-written image.
        const CheckpointLoad load =
            parseCheckpoint(readFile(path.str()));
        EXPECT_TRUE(load.clean()) << "append " << i;
        EXPECT_EQ(load.records.size(),
                  static_cast<std::size_t>(i) + 1)
            << "append " << i;
    }
}

TEST(Checkpoint, WriterReportsUnwritablePaths)
{
    CheckpointWriter writer("/nonexistent/dir/never.ckpt");
    const Status status = writer.append("x");
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::Unavailable);
    // The record is retained for a later, possibly successful
    // publication.
    EXPECT_EQ(writer.recordCount(), 1u);
}

TEST(Checkpoint, SeededTruncationsNeverCrashTheParser)
{
    const std::string image =
        imageOf({"one", "two", "three", "four"});
    for (std::uint64_t seed = 0; seed < 64; ++seed) {
        const std::string cut = injectTruncation(image, seed);
        const CheckpointLoad load = parseCheckpoint(cut);
        // Recovered records are always a prefix-consistent subset.
        EXPECT_LE(load.records.size(), 4u) << "seed " << seed;
    }
}

TEST(Checkpoint, SeededBitFlipsNeverCrashTheParser)
{
    const std::string image =
        imageOf({"one", "two", "three", "four"});
    for (std::uint64_t seed = 0; seed < 64; ++seed) {
        const CheckpointLoad load =
            parseCheckpoint(injectBitFlip(image, seed));
        EXPECT_LE(load.records.size(), 4u) << "seed " << seed;
    }
}

} // namespace
} // namespace logseek
