/**
 * @file
 * Unit tests for the logging/error helpers.
 */

#include <gtest/gtest.h>

#include "util/logging.h"

namespace logseek
{
namespace
{

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("user error"), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("bug"), PanicError);
}

TEST(Logging, FatalCarriesMessage)
{
    try {
        fatal("bad config value");
        FAIL() << "fatal() must throw";
    } catch (const FatalError &error) {
        EXPECT_STREQ(error.what(), "bad config value");
    }
}

TEST(Logging, PanicCarriesMessage)
{
    try {
        panic("invariant violated");
        FAIL() << "panic() must throw";
    } catch (const PanicError &error) {
        EXPECT_STREQ(error.what(), "invariant violated");
    }
}

TEST(Logging, PanicIfOnlyFiresWhenTrue)
{
    EXPECT_NO_THROW(panicIf(false, "fine"));
    EXPECT_THROW(panicIf(true, "boom"), PanicError);
}

TEST(Logging, FatalAndPanicAreDistinctTypes)
{
    // fatal() = user error, panic() = internal bug; a handler for
    // one must not swallow the other.
    EXPECT_THROW(
        {
            try {
                fatal("user");
            } catch (const PanicError &) {
                FAIL() << "FatalError caught as PanicError";
            }
        },
        FatalError);
}

TEST(Logging, InformAndWarnDoNotThrow)
{
    EXPECT_NO_THROW(inform("status"));
    EXPECT_NO_THROW(warn("heads up"));
}

} // namespace
} // namespace logseek
