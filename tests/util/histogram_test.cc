/**
 * @file
 * Unit tests for EmpiricalCdf and Histogram.
 */

#include <gtest/gtest.h>

#include "util/histogram.h"
#include "util/logging.h"

namespace logseek
{
namespace
{

TEST(EmpiricalCdf, EmptyCdfReturnsZeroFraction)
{
    const EmpiricalCdf cdf;
    EXPECT_EQ(cdf.count(), 0u);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(0.0), 0.0);
    EXPECT_DOUBLE_EQ(cdf.mean(), 0.0);
}

TEST(EmpiricalCdf, FractionAtOrBelowIsInclusive)
{
    EmpiricalCdf cdf;
    cdf.add(1.0);
    cdf.add(2.0);
    cdf.add(3.0);
    cdf.add(4.0);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(2.0), 0.5);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(3.5), 0.75);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(10.0), 1.0);
}

TEST(EmpiricalCdf, HandlesDuplicates)
{
    EmpiricalCdf cdf;
    for (int i = 0; i < 5; ++i)
        cdf.add(7.0);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(6.9), 0.0);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(7.0), 1.0);
}

TEST(EmpiricalCdf, MinMaxMean)
{
    EmpiricalCdf cdf;
    cdf.add(3.0);
    cdf.add(-1.0);
    cdf.add(4.0);
    EXPECT_DOUBLE_EQ(cdf.min(), -1.0);
    EXPECT_DOUBLE_EQ(cdf.max(), 4.0);
    EXPECT_DOUBLE_EQ(cdf.mean(), 2.0);
}

TEST(EmpiricalCdf, MinMaxOnEmptyPanics)
{
    const EmpiricalCdf cdf;
    EXPECT_THROW(cdf.min(), PanicError);
    EXPECT_THROW(cdf.max(), PanicError);
    EXPECT_THROW(cdf.percentile(0.5), PanicError);
}

TEST(EmpiricalCdf, PercentileNearestRank)
{
    EmpiricalCdf cdf;
    for (int i = 1; i <= 100; ++i)
        cdf.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(cdf.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.percentile(1.0), 100.0);
    EXPECT_NEAR(cdf.percentile(0.5), 50.0, 1.0);
}

TEST(EmpiricalCdf, PercentileOutOfRangePanics)
{
    EmpiricalCdf cdf;
    cdf.add(1.0);
    EXPECT_THROW(cdf.percentile(-0.1), PanicError);
    EXPECT_THROW(cdf.percentile(1.1), PanicError);
}

TEST(EmpiricalCdf, CurveIsMonotonic)
{
    EmpiricalCdf cdf;
    for (int i = 0; i < 50; ++i)
        cdf.add(static_cast<double>(i * i));
    const auto points = cdf.curve(-10.0, 3000.0, 30);
    ASSERT_EQ(points.size(), 30u);
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_GE(points[i].second, points[i - 1].second);
        EXPECT_GT(points[i].first, points[i - 1].first);
    }
    EXPECT_DOUBLE_EQ(points.front().second, 0.0);
    EXPECT_DOUBLE_EQ(points.back().second, 1.0);
}

TEST(EmpiricalCdf, CurveValidation)
{
    EmpiricalCdf cdf;
    cdf.add(1.0);
    EXPECT_THROW(cdf.curve(0.0, 1.0, 1), PanicError);
    EXPECT_THROW(cdf.curve(2.0, 1.0, 5), PanicError);
}

TEST(EmpiricalCdf, InterleavedAddAndQuery)
{
    EmpiricalCdf cdf;
    cdf.add(1.0);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(1.0), 1.0);
    cdf.add(3.0);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(1.0), 0.5);
    cdf.add(0.0);
    EXPECT_NEAR(cdf.fractionAtOrBelow(1.0), 2.0 / 3.0, 1e-12);
}

TEST(Histogram, BinsBySampleValue)
{
    Histogram hist(10, 5);
    hist.add(0);
    hist.add(9);
    hist.add(10);
    hist.add(49);
    EXPECT_EQ(hist.binWeight(0), 2u);
    EXPECT_EQ(hist.binWeight(1), 1u);
    EXPECT_EQ(hist.binWeight(4), 1u);
    EXPECT_EQ(hist.totalWeight(), 4u);
    EXPECT_EQ(hist.overflowWeight(), 0u);
}

TEST(Histogram, OverflowBinCatchesLargeSamples)
{
    Histogram hist(10, 2);
    hist.add(20);
    hist.add(1000);
    EXPECT_EQ(hist.overflowWeight(), 2u);
    EXPECT_EQ(hist.totalWeight(), 2u);
}

TEST(Histogram, WeightedAdd)
{
    Histogram hist(4, 4);
    hist.add(5, 10);
    EXPECT_EQ(hist.binWeight(1), 10u);
    EXPECT_EQ(hist.totalWeight(), 10u);
}

TEST(Histogram, BinLowerEdges)
{
    const Histogram hist(8, 3);
    EXPECT_EQ(hist.binLowerEdge(0), 0u);
    EXPECT_EQ(hist.binLowerEdge(2), 16u);
    EXPECT_EQ(hist.binCount(), 3u);
}

TEST(Histogram, InvalidConstructionPanics)
{
    EXPECT_THROW(Histogram(0, 4), PanicError);
    EXPECT_THROW(Histogram(4, 0), PanicError);
}

TEST(Histogram, OutOfRangeQueriesPanic)
{
    Histogram hist(4, 2);
    EXPECT_THROW(hist.binWeight(2), PanicError);
    EXPECT_THROW(hist.binLowerEdge(2), PanicError);
}

} // namespace
} // namespace logseek
