/**
 * @file
 * Unit and property tests for the deterministic Rng and ZipfSampler.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/logging.h"
#include "util/random.h"

namespace logseek
{
namespace
{

TEST(Rng, SameSeedSameStream)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int differing = 0;
    for (int i = 0; i < 32; ++i) {
        if (a() != b())
            ++differing;
    }
    EXPECT_GT(differing, 28);
}

TEST(Rng, NextUintStaysBelowBound)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextUint(13), 13u);
}

TEST(Rng, NextUintBoundOneAlwaysZero)
{
    Rng rng(7);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(rng.nextUint(1), 0u);
}

TEST(Rng, NextUintZeroBoundPanics)
{
    Rng rng(7);
    EXPECT_THROW(rng.nextUint(0), PanicError);
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i) {
        const std::uint64_t value = rng.nextRange(5, 8);
        EXPECT_GE(value, 5u);
        EXPECT_LE(value, 8u);
        seen.insert(value);
    }
    EXPECT_EQ(seen.size(), 4u); // all four values appear
}

TEST(Rng, NextRangeDegenerate)
{
    Rng rng(9);
    EXPECT_EQ(rng.nextRange(42, 42), 42u);
}

TEST(Rng, NextRangeInvertedPanics)
{
    Rng rng(9);
    EXPECT_THROW(rng.nextRange(10, 9), PanicError);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double value = rng.nextDouble();
        EXPECT_GE(value, 0.0);
        EXPECT_LT(value, 1.0);
    }
}

TEST(Rng, NextDoubleIsRoughlyUniform)
{
    Rng rng(13);
    double sum = 0.0;
    constexpr int kDraws = 20000;
    for (int i = 0; i < kDraws; ++i)
        sum += rng.nextDouble();
    EXPECT_NEAR(sum / kDraws, 0.5, 0.02);
}

TEST(Rng, NextBoolExtremes)
{
    Rng rng(15);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBool(0.0));
        EXPECT_TRUE(rng.nextBool(1.0));
    }
}

TEST(Rng, NextBoolFrequencyTracksP)
{
    Rng rng(17);
    int hits = 0;
    constexpr int kDraws = 20000;
    for (int i = 0; i < kDraws; ++i)
        hits += rng.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(21);
    Rng child = parent.fork();
    // The child should not replay the parent's stream.
    Rng parent_again(21);
    (void)parent_again(); // consume the draw fork() used
    int same = 0;
    for (int i = 0; i < 32; ++i) {
        if (child() == parent_again())
            ++same;
    }
    EXPECT_LT(same, 4);
}

TEST(Rng, SatisfiesUniformRandomBitGeneratorBounds)
{
    EXPECT_EQ(Rng::min(), 0u);
    EXPECT_EQ(Rng::max(), ~std::uint64_t{0});
}

TEST(ZipfSampler, SampleInRange)
{
    Rng rng(1);
    const ZipfSampler sampler(10, 1.0);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(sampler.sample(rng), 10u);
}

TEST(ZipfSampler, SkewZeroIsUniform)
{
    Rng rng(2);
    const ZipfSampler sampler(4, 0.0);
    std::vector<int> counts(4, 0);
    constexpr int kDraws = 40000;
    for (int i = 0; i < kDraws; ++i)
        ++counts[sampler.sample(rng)];
    for (const int count : counts)
        EXPECT_NEAR(count, kDraws / 4, kDraws / 40);
}

TEST(ZipfSampler, HighSkewPrefersRankZero)
{
    Rng rng(3);
    const ZipfSampler sampler(100, 1.5);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 10000; ++i)
        ++counts[sampler.sample(rng)];
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[0], 1000); // rank 0 gets a large share
}

TEST(ZipfSampler, SingleItemAlwaysRankZero)
{
    Rng rng(4);
    const ZipfSampler sampler(1, 1.0);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(sampler.sample(rng), 0u);
}

TEST(ZipfSampler, ZeroItemsPanics)
{
    EXPECT_THROW(ZipfSampler(0, 1.0), PanicError);
}

TEST(ZipfSampler, NegativeSkewPanics)
{
    EXPECT_THROW(ZipfSampler(4, -0.5), PanicError);
}

/** Monotonicity sweep: higher skew concentrates more mass on rank 0. */
class ZipfSkewSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfSkewSweep, RankZeroShareGrowsWithSkew)
{
    const double skew = GetParam();
    Rng rng(99);
    const ZipfSampler low(50, skew);
    const ZipfSampler high(50, skew + 0.5);
    int low_zero = 0;
    int high_zero = 0;
    for (int i = 0; i < 20000; ++i) {
        low_zero += low.sample(rng) == 0 ? 1 : 0;
        high_zero += high.sample(rng) == 0 ? 1 : 0;
    }
    EXPECT_GT(high_zero, low_zero);
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfSkewSweep,
                         ::testing::Values(0.0, 0.5, 1.0, 1.5));

} // namespace
} // namespace logseek
