/**
 * @file
 * Unit tests for the Status / StatusOr<T> typed error layer.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "util/logging.h"
#include "util/status.h"

namespace logseek
{
namespace
{

TEST(Status, DefaultIsOk)
{
    const Status status;
    EXPECT_TRUE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::Ok);
    EXPECT_EQ(status.message(), "");
    EXPECT_EQ(status.toString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage)
{
    const std::vector<std::pair<Status, StatusCode>> cases{
        {invalidArgumentError("m"), StatusCode::InvalidArgument},
        {notFoundError("m"), StatusCode::NotFound},
        {outOfRangeError("m"), StatusCode::OutOfRange},
        {dataLossError("m"), StatusCode::DataLoss},
        {failedPreconditionError("m"),
         StatusCode::FailedPrecondition},
        {resourceExhaustedError("m"),
         StatusCode::ResourceExhausted},
        {internalError("m"), StatusCode::Internal},
    };
    for (const auto &[status, code] : cases) {
        EXPECT_FALSE(status.ok()) << toString(code);
        EXPECT_EQ(status.code(), code);
        EXPECT_EQ(status.message(), "m");
    }
}

TEST(Status, ToStringNamesTheCode)
{
    EXPECT_EQ(dataLossError("truncated header").toString(),
              "DATA_LOSS: truncated header");
    EXPECT_EQ(resourceExhaustedError("budget").toString(),
              "RESOURCE_EXHAUSTED: budget");
}

TEST(Status, EqualityComparesCodeAndMessage)
{
    EXPECT_EQ(dataLossError("x"), dataLossError("x"));
    EXPECT_NE(dataLossError("x"), dataLossError("y"));
    EXPECT_NE(dataLossError("x"), internalError("x"));
    EXPECT_EQ(Status(), Status());
}

TEST(Status, OrFatalThrowsOnlyOnError)
{
    EXPECT_NO_THROW(Status().orFatal());
    EXPECT_THROW(dataLossError("boom").orFatal(), FatalError);
}

TEST(StatusOr, HoldsValue)
{
    StatusOr<int> result(42);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value(), 42);
    EXPECT_EQ(*result, 42);
    EXPECT_TRUE(result.status().ok());
}

TEST(StatusOr, HoldsError)
{
    const StatusOr<int> result(notFoundError("missing"));
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::NotFound);
    EXPECT_EQ(result.status().message(), "missing");
}

TEST(StatusOr, ValueOnErrorPanics)
{
    const StatusOr<int> result(dataLossError("corrupt"));
    EXPECT_THROW(result.value(), PanicError);
}

TEST(StatusOr, OkStatusWithoutValuePanics)
{
    EXPECT_THROW(StatusOr<int>{Status()}, PanicError);
}

TEST(StatusOr, ValueOrFallsBackOnError)
{
    EXPECT_EQ(StatusOr<int>(7).valueOr(-1), 7);
    EXPECT_EQ(StatusOr<int>(internalError("bug")).valueOr(-1), -1);
}

TEST(StatusOr, MoveValueOutOfRvalue)
{
    StatusOr<std::string> result(std::string("payload"));
    const std::string moved = std::move(result).value();
    EXPECT_EQ(moved, "payload");
}

TEST(StatusOr, ArrowAccessesMembers)
{
    StatusOr<std::string> result(std::string("abc"));
    EXPECT_EQ(result->size(), 3u);
}

} // namespace
} // namespace logseek
