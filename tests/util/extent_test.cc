/**
 * @file
 * Unit tests for SectorExtent interval arithmetic.
 */

#include <gtest/gtest.h>

#include "util/extent.h"

namespace logseek
{
namespace
{

TEST(SectorExtent, EndIsStartPlusCount)
{
    const SectorExtent extent{100, 50};
    EXPECT_EQ(extent.end(), 150u);
}

TEST(SectorExtent, EmptyWhenCountZero)
{
    EXPECT_TRUE((SectorExtent{42, 0}).empty());
    EXPECT_FALSE((SectorExtent{42, 1}).empty());
}

TEST(SectorExtent, BytesUsesSectorSize)
{
    EXPECT_EQ((SectorExtent{0, 4}).bytes(), 4 * kSectorBytes);
}

TEST(SectorExtent, ContainsIsHalfOpen)
{
    const SectorExtent extent{10, 5};
    EXPECT_FALSE(extent.contains(9));
    EXPECT_TRUE(extent.contains(10));
    EXPECT_TRUE(extent.contains(14));
    EXPECT_FALSE(extent.contains(15));
}

TEST(SectorExtent, CoversSubRange)
{
    const SectorExtent outer{10, 10};
    EXPECT_TRUE(outer.covers({10, 10}));
    EXPECT_TRUE(outer.covers({12, 3}));
    EXPECT_FALSE(outer.covers({12, 9}));
    EXPECT_FALSE(outer.covers({5, 10}));
}

TEST(SectorExtent, CoversEmptyExtent)
{
    const SectorExtent outer{10, 10};
    EXPECT_TRUE(outer.covers({0, 0}));
    EXPECT_TRUE(outer.covers({999, 0}));
}

TEST(SectorExtent, OverlapsDetectsSharedSectors)
{
    const SectorExtent a{10, 10};
    EXPECT_TRUE(a.overlaps({15, 10}));
    EXPECT_TRUE(a.overlaps({5, 6}));
    EXPECT_TRUE(a.overlaps({12, 2}));
    EXPECT_FALSE(a.overlaps({20, 5}));
    EXPECT_FALSE(a.overlaps({0, 10}));
}

TEST(SectorExtent, PrecedesIsExactAdjacency)
{
    const SectorExtent a{10, 10};
    EXPECT_TRUE(a.precedes({20, 5}));
    EXPECT_FALSE(a.precedes({21, 5}));
    EXPECT_FALSE(a.precedes({19, 5}));
}

TEST(SectorExtent, EqualityComparesBothFields)
{
    EXPECT_EQ((SectorExtent{1, 2}), (SectorExtent{1, 2}));
    EXPECT_NE((SectorExtent{1, 2}), (SectorExtent{1, 3}));
    EXPECT_NE((SectorExtent{1, 2}), (SectorExtent{2, 2}));
}

TEST(Intersect, ReturnsOverlapRegion)
{
    const auto result = intersect({10, 10}, {15, 10});
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(*result, (SectorExtent{15, 5}));
}

TEST(Intersect, FullContainment)
{
    const auto result = intersect({10, 10}, {12, 3});
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(*result, (SectorExtent{12, 3}));
}

TEST(Intersect, DisjointReturnsNullopt)
{
    EXPECT_FALSE(intersect({10, 10}, {20, 5}).has_value());
    EXPECT_FALSE(intersect({20, 5}, {10, 10}).has_value());
}

TEST(Intersect, AdjacentExtentsDoNotIntersect)
{
    EXPECT_FALSE(intersect({10, 10}, {20, 10}).has_value());
}

TEST(Units, SectorByteConversionsRoundTrip)
{
    EXPECT_EQ(bytesToSectors(kSectorBytes * 7), 7u);
    EXPECT_EQ(sectorsToBytes(7), kSectorBytes * 7);
    EXPECT_EQ(bytesToSectors(kMiB), kMiB / kSectorBytes);
}

TEST(Units, SectorDistanceIsSignedBytes)
{
    EXPECT_EQ(sectorDistanceBytes(10, 14),
              static_cast<std::int64_t>(4 * kSectorBytes));
    EXPECT_EQ(sectorDistanceBytes(14, 10),
              -static_cast<std::int64_t>(4 * kSectorBytes));
    EXPECT_EQ(sectorDistanceBytes(5, 5), 0);
}

} // namespace
} // namespace logseek
