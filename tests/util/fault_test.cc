/**
 * @file
 * Unit tests for the deterministic fault-injection harness.
 */

#include <gtest/gtest.h>

#include <string>

#include "util/fault.h"
#include "util/logging.h"

namespace logseek
{
namespace
{

std::string
samplePayload()
{
    std::string bytes;
    for (int i = 0; i < 256; ++i)
        bytes.push_back(static_cast<char>(i));
    return bytes;
}

TEST(Fault, KindNamesAreStable)
{
    EXPECT_STREQ(toString(FaultKind::Truncate), "truncate");
    EXPECT_STREQ(toString(FaultKind::BitFlip), "bit-flip");
    EXPECT_STREQ(toString(FaultKind::ShortRead), "short-read");
    EXPECT_STREQ(toString(FaultKind::EofMidRecord),
                 "eof-mid-record");
}

TEST(Fault, TruncateAtClampsToInput)
{
    EXPECT_EQ(truncateAt("abcdef", 3), "abc");
    EXPECT_EQ(truncateAt("abcdef", 0), "");
    EXPECT_EQ(truncateAt("abcdef", 100), "abcdef");
}

TEST(Fault, TruncationIsDeterministicProperPrefix)
{
    const std::string bytes = samplePayload();
    for (std::uint64_t seed = 0; seed < 64; ++seed) {
        const std::string a = injectTruncation(bytes, seed);
        const std::string b = injectTruncation(bytes, seed);
        EXPECT_EQ(a, b) << "seed " << seed;
        EXPECT_LT(a.size(), bytes.size()) << "seed " << seed;
        EXPECT_EQ(bytes.compare(0, a.size(), a), 0)
            << "seed " << seed;
    }
    EXPECT_EQ(injectTruncation("", 1), "");
}

TEST(Fault, BitFlipChangesExactlyOneBit)
{
    const std::string bytes = samplePayload();
    for (std::uint64_t seed = 0; seed < 64; ++seed) {
        const std::string flipped = injectBitFlip(bytes, seed);
        ASSERT_EQ(flipped.size(), bytes.size());
        int bits_changed = 0;
        for (std::size_t i = 0; i < bytes.size(); ++i) {
            unsigned char diff = static_cast<unsigned char>(
                bytes[i] ^ flipped[i]);
            while (diff != 0) {
                bits_changed += diff & 1;
                diff >>= 1;
            }
        }
        EXPECT_EQ(bits_changed, 1) << "seed " << seed;
        EXPECT_EQ(flipped, injectBitFlip(bytes, seed))
            << "seed " << seed;
    }
    EXPECT_EQ(injectBitFlip("", 1), "");
}

TEST(Fault, EofMidRecordEndsInsideARecord)
{
    const std::size_t header = 16;
    const std::size_t record = 25;
    std::string bytes(header + 10 * record, 'x');
    for (std::uint64_t seed = 0; seed < 64; ++seed) {
        const std::string cut =
            injectEofMidRecord(bytes, header, record, seed);
        ASSERT_GT(cut.size(), header) << "seed " << seed;
        ASSERT_LT(cut.size(), bytes.size()) << "seed " << seed;
        // The tail after the header must be a strict partial record.
        const std::size_t tail = (cut.size() - header) % record;
        EXPECT_NE(tail, 0u) << "seed " << seed;
        EXPECT_EQ(cut, injectEofMidRecord(bytes, header, record,
                                          seed))
            << "seed " << seed;
    }
}

TEST(Fault, EofMidRecordHandlesHeaderOnlyInput)
{
    const std::string short_bytes(8, 'h');
    EXPECT_EQ(injectEofMidRecord(short_bytes, 16, 25, 1),
              short_bytes);
    // A header plus less than one record truncates to the header.
    const std::string partial(16 + 10, 'h');
    EXPECT_EQ(injectEofMidRecord(partial, 16, 25, 1).size(), 16u);
}

TEST(Fault, EofMidRecordRejectsDegenerateRecordWidth)
{
    EXPECT_THROW(injectEofMidRecord("abcdef", 0, 1, 1), PanicError);
}

TEST(Fault, ShortReadStreamDeliversAllBytes)
{
    const std::string bytes = samplePayload();
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
        ShortReadStream in(bytes, seed, 5);
        std::string out(bytes.size(), '\0');
        in.read(out.data(),
                static_cast<std::streamsize>(out.size()));
        EXPECT_EQ(static_cast<std::size_t>(in.gcount()),
                  bytes.size())
            << "seed " << seed;
        EXPECT_EQ(out, bytes) << "seed " << seed;
        // Nothing left after the payload.
        char extra;
        EXPECT_FALSE(in.read(&extra, 1));
    }
}

TEST(Fault, ShortReadStreamSurvivesByteAtATimeReads)
{
    const std::string bytes = samplePayload();
    ShortReadStream in(bytes, 42, 3);
    std::string out;
    char c;
    while (in.get(c))
        out.push_back(c);
    EXPECT_EQ(out, bytes);
}

TEST(Fault, ShortReadStreamHandlesEmptyInput)
{
    ShortReadStream in(std::string(), 1);
    char c;
    EXPECT_FALSE(in.get(c));
}

TEST(Fault, ShortWriteStreamAcceptsWithinBudget)
{
    ShortWriteStream out(64);
    out << "hello, media";
    out.flush();
    EXPECT_TRUE(out.good());
    EXPECT_EQ(out.written(), "hello, media");
}

TEST(Fault, ShortWriteStreamFailsPastBudget)
{
    ShortWriteStream out(5);
    out << "hello, media";
    EXPECT_FALSE(out.good());
    // Exactly the budgeted prefix reached "media".
    EXPECT_EQ(out.written(), "hello");
}

TEST(Fault, ShortWriteStreamByteAtATime)
{
    ShortWriteStream out(3);
    std::size_t accepted = 0;
    for (const char c : std::string("abcdef")) {
        out.put(c);
        if (out.good())
            ++accepted;
        else
            break;
    }
    EXPECT_EQ(accepted, 3u);
    EXPECT_EQ(out.written(), "abc");
}

TEST(Fault, ShortWriteStreamFailingSync)
{
    ShortWriteStream out(1024, /*fail_sync=*/true);
    out << "data";
    EXPECT_TRUE(out.good());
    out.flush();
    EXPECT_FALSE(out.good());
}

TEST(Fault, TransientFaultInjectorThrowsThenRecovers)
{
    TransientFaultInjector injector(2);
    for (int i = 0; i < 2; ++i) {
        try {
            injector.onAccess("load");
            FAIL() << "expected a throw on access " << i;
        } catch (const StatusError &e) {
            EXPECT_EQ(e.status().code(), StatusCode::Unavailable);
            EXPECT_NE(e.status().message().find("load"),
                      std::string::npos);
        }
    }
    EXPECT_NO_THROW(injector.onAccess("load"));
    EXPECT_EQ(injector.faultsFired(), 2);
}

TEST(Fault, TransientFaultInjectorZeroFailuresIsTransparent)
{
    TransientFaultInjector injector(0);
    EXPECT_NO_THROW(injector.onAccess("x"));
    EXPECT_EQ(injector.faultsFired(), 0);
}

} // namespace
} // namespace logseek
