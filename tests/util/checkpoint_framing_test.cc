/**
 * @file
 * Shared-framing regression tests: the segment-header journal rides
 * the util/checkpoint LCKP framing verbatim, so the parser's
 * torn-tail vs damaged-frame discrimination must hold for journal
 * payloads exactly as it does for sweep checkpoints. A framing
 * change that breaks one consumer must fail here, next to the
 * framing, not in a far-away recovery suite.
 */

#include <gtest/gtest.h>

#include <string>

#include "stl/segment_journal.h"
#include "util/checkpoint.h"

namespace logseek
{
namespace
{

std::string
headerPayload(std::uint64_t epoch)
{
    stl::JournalRecord record;
    record.kind = stl::JournalRecordKind::Placement;
    record.epoch = epoch;
    record.frontierAfter = 4096 + epoch * 8;
    record.aux = epoch;
    record.entries = {{epoch * 8, 4096 + epoch * 8, 8}};
    return encodeJournalRecord(record);
}

std::string
journalImage(std::uint64_t epochs)
{
    std::string image;
    for (std::uint64_t e = 1; e <= epochs; ++e)
        appendCheckpointFrame(image, headerPayload(e));
    return image;
}

TEST(CheckpointFraming, SegmentHeadersRoundTripThroughParser)
{
    const std::string image = journalImage(4);
    const CheckpointLoad load = parseCheckpoint(image);
    EXPECT_EQ(load.damagedFrames, 0U);
    EXPECT_FALSE(load.tornTail);
    EXPECT_EQ(load.bytesDropped, 0U);
    ASSERT_EQ(load.records.size(), 4U);
    for (std::uint64_t e = 1; e <= 4; ++e) {
        stl::JournalRecord decoded;
        ASSERT_TRUE(
            decodeJournalRecord(load.records[e - 1], decoded));
        EXPECT_EQ(decoded.epoch, e);
    }
}

TEST(CheckpointFraming, TornSegmentHeaderIsATailNotDamage)
{
    const std::string image = journalImage(3);
    // Cut inside the last frame at every possible offset: always a
    // torn tail (or a clean two-frame image), never damage.
    const std::size_t frame_bytes = image.size() / 3;
    for (std::size_t cut = 2 * frame_bytes + 1;
         cut < image.size(); ++cut) {
        const CheckpointLoad load =
            parseCheckpoint(std::string_view(image).substr(0, cut));
        EXPECT_EQ(load.damagedFrames, 0U) << "cut at " << cut;
        EXPECT_TRUE(load.tornTail) << "cut at " << cut;
        EXPECT_EQ(load.records.size(), 2U) << "cut at " << cut;
    }
}

TEST(CheckpointFraming, CorruptSegmentHeaderIsDamageNotATail)
{
    const std::string image = journalImage(3);
    const std::size_t frame_bytes = image.size() / 3;
    // Flip one byte in the middle frame's payload: CRC damage in
    // place, with the surrounding frames intact.
    std::string corrupt = image;
    corrupt[frame_bytes + frame_bytes / 2] ^= 0x01;
    const CheckpointLoad load = parseCheckpoint(corrupt);
    EXPECT_EQ(load.damagedFrames, 1U);
    EXPECT_FALSE(load.tornTail);
    ASSERT_EQ(load.records.size(), 2U);

    // The journal scan layered on top truncates at the resulting
    // epoch gap: only the pre-damage prefix is trusted.
    const stl::JournalScan scan = stl::scanJournal(corrupt);
    EXPECT_EQ(scan.records.size(), 1U);
    EXPECT_EQ(scan.damagedFrames, 1U);
    EXPECT_EQ(scan.truncatedEpochs, 1U);
}

TEST(CheckpointFraming, TornTailAfterDamageReportsBoth)
{
    std::string image = journalImage(3);
    const std::size_t frame_bytes = image.size() / 3;
    image[frame_bytes / 2] =
        static_cast<char>(image[frame_bytes / 2] ^ 0x40);
    image.resize(image.size() - 3);
    const CheckpointLoad load = parseCheckpoint(image);
    EXPECT_GE(load.damagedFrames, 1U);
    EXPECT_TRUE(load.tornTail);
}

} // namespace
} // namespace logseek
