/**
 * @file
 * Unit tests for BinnedSeries.
 */

#include <gtest/gtest.h>

#include "util/logging.h"
#include "util/time_series.h"

namespace logseek
{
namespace
{

TEST(BinnedSeries, AccumulatesIntoCorrectBins)
{
    BinnedSeries series(10);
    series.add(0, 1);
    series.add(9, 2);
    series.add(10, 5);
    series.add(25, -3);
    EXPECT_EQ(series.binValue(0), 3);
    EXPECT_EQ(series.binValue(1), 5);
    EXPECT_EQ(series.binValue(2), -3);
    EXPECT_EQ(series.binCount(), 3u);
}

TEST(BinnedSeries, UntouchedBinsReadZero)
{
    BinnedSeries series(10);
    series.add(35, 4);
    EXPECT_EQ(series.binValue(0), 0);
    EXPECT_EQ(series.binValue(2), 0);
    EXPECT_EQ(series.binValue(3), 4);
    EXPECT_EQ(series.binValue(99), 0); // past the end
}

TEST(BinnedSeries, TotalSumsAllBins)
{
    BinnedSeries series(5);
    series.add(1, 10);
    series.add(7, -4);
    series.add(100, 1);
    EXPECT_EQ(series.total(), 7);
}

TEST(BinnedSeries, BinLowerEdge)
{
    const BinnedSeries series(250);
    EXPECT_EQ(series.binLowerEdge(0), 0u);
    EXPECT_EQ(series.binLowerEdge(3), 750u);
}

TEST(BinnedSeries, ZeroWidthPanics)
{
    EXPECT_THROW(BinnedSeries(0), PanicError);
}

TEST(BinnedSeriesDifference, SubtractsBinwise)
{
    BinnedSeries a(10);
    BinnedSeries b(10);
    a.add(0, 5);
    a.add(10, 3);
    b.add(0, 2);
    b.add(20, 7);
    const BinnedSeries diff = difference(a, b);
    EXPECT_EQ(diff.binValue(0), 3);
    EXPECT_EQ(diff.binValue(1), 3);
    EXPECT_EQ(diff.binValue(2), -7);
}

TEST(BinnedSeriesDifference, LengthIsMaxOfInputs)
{
    BinnedSeries a(10);
    BinnedSeries b(10);
    a.add(5, 1);
    b.add(55, 1);
    const BinnedSeries diff = difference(a, b);
    EXPECT_EQ(diff.binCount(), 6u);
}

TEST(BinnedSeriesDifference, MismatchedWidthsPanic)
{
    const BinnedSeries a(10);
    const BinnedSeries b(20);
    EXPECT_THROW(difference(a, b), PanicError);
}

TEST(BinnedSeriesDifference, IdenticalSeriesIsZero)
{
    BinnedSeries a(10);
    a.add(3, 4);
    a.add(13, -2);
    const BinnedSeries diff = difference(a, a);
    EXPECT_EQ(diff.total(), 0);
}

} // namespace
} // namespace logseek
