/**
 * @file
 * Unit tests for retry classification and deterministic backoff.
 */

#include <gtest/gtest.h>

#include <chrono>

#include "util/retry.h"

namespace logseek
{
namespace
{

TEST(Retry, OnlyUnavailableIsRetryable)
{
    EXPECT_TRUE(isRetryable(StatusCode::Unavailable));

    EXPECT_FALSE(isRetryable(StatusCode::Ok));
    EXPECT_FALSE(isRetryable(StatusCode::InvalidArgument));
    EXPECT_FALSE(isRetryable(StatusCode::NotFound));
    EXPECT_FALSE(isRetryable(StatusCode::DataLoss));
    EXPECT_FALSE(isRetryable(StatusCode::Internal));
    EXPECT_FALSE(isRetryable(StatusCode::Cancelled));
    EXPECT_FALSE(isRetryable(StatusCode::DeadlineExceeded));
}

TEST(Retry, BackoffIsDeterministicForEqualSeeds)
{
    const RetryPolicy policy;
    Rng a(7), b(7);
    for (int attempt = 1; attempt <= 6; ++attempt)
        EXPECT_EQ(backoffDelay(policy, attempt, a),
                  backoffDelay(policy, attempt, b))
            << "attempt " << attempt;
}

TEST(Retry, BackoffGrowsAndStaysBounded)
{
    RetryPolicy policy;
    policy.initialBackoff = std::chrono::milliseconds(10);
    policy.multiplier = 2.0;
    policy.maxBackoff = std::chrono::milliseconds(100);
    policy.jitter = 0.0; // exact geometric growth

    Rng rng(1);
    EXPECT_EQ(backoffDelay(policy, 1, rng).count(), 10);
    EXPECT_EQ(backoffDelay(policy, 2, rng).count(), 20);
    EXPECT_EQ(backoffDelay(policy, 3, rng).count(), 40);
    EXPECT_EQ(backoffDelay(policy, 4, rng).count(), 80);
    // Capped from here on.
    EXPECT_EQ(backoffDelay(policy, 5, rng).count(), 100);
    EXPECT_EQ(backoffDelay(policy, 10, rng).count(), 100);
}

TEST(Retry, JitterStaysWithinTheConfiguredBand)
{
    RetryPolicy policy;
    policy.initialBackoff = std::chrono::milliseconds(100);
    policy.multiplier = 1.0;
    policy.maxBackoff = std::chrono::milliseconds(10000);
    policy.jitter = 0.5;

    Rng rng(99);
    for (int i = 0; i < 200; ++i) {
        const auto delay = backoffDelay(policy, 1, rng);
        EXPECT_GE(delay.count(), 50);
        EXPECT_LE(delay.count(), 150);
    }
}

TEST(Retry, BackoffNeverNegative)
{
    RetryPolicy policy;
    policy.initialBackoff = std::chrono::milliseconds(1);
    policy.jitter = 1.0; // band reaches zero
    Rng rng(3);
    for (int attempt = 1; attempt <= 20; ++attempt)
        EXPECT_GE(backoffDelay(policy, attempt, rng).count(), 0)
            << "attempt " << attempt;
}

} // namespace
} // namespace logseek
