/**
 * @file
 * Unit tests for retry classification and deterministic backoff.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "util/retry.h"

namespace logseek
{
namespace
{

TEST(Retry, OnlyUnavailableIsRetryable)
{
    EXPECT_TRUE(isRetryable(StatusCode::Unavailable));

    EXPECT_FALSE(isRetryable(StatusCode::Ok));
    EXPECT_FALSE(isRetryable(StatusCode::InvalidArgument));
    EXPECT_FALSE(isRetryable(StatusCode::NotFound));
    EXPECT_FALSE(isRetryable(StatusCode::DataLoss));
    EXPECT_FALSE(isRetryable(StatusCode::Internal));
    EXPECT_FALSE(isRetryable(StatusCode::Cancelled));
    EXPECT_FALSE(isRetryable(StatusCode::DeadlineExceeded));
}

TEST(Retry, BackoffIsDeterministicForEqualSeeds)
{
    const RetryPolicy policy;
    Rng a(7), b(7);
    for (int attempt = 1; attempt <= 6; ++attempt)
        EXPECT_EQ(backoffDelay(policy, attempt, a),
                  backoffDelay(policy, attempt, b))
            << "attempt " << attempt;
}

TEST(Retry, BackoffGrowsAndStaysBounded)
{
    RetryPolicy policy;
    policy.initialBackoff = std::chrono::milliseconds(10);
    policy.multiplier = 2.0;
    policy.maxBackoff = std::chrono::milliseconds(100);
    policy.jitter = 0.0; // exact geometric growth

    Rng rng(1);
    EXPECT_EQ(backoffDelay(policy, 1, rng).count(), 10);
    EXPECT_EQ(backoffDelay(policy, 2, rng).count(), 20);
    EXPECT_EQ(backoffDelay(policy, 3, rng).count(), 40);
    EXPECT_EQ(backoffDelay(policy, 4, rng).count(), 80);
    // Capped from here on.
    EXPECT_EQ(backoffDelay(policy, 5, rng).count(), 100);
    EXPECT_EQ(backoffDelay(policy, 10, rng).count(), 100);
}

TEST(Retry, JitterStaysWithinTheConfiguredBand)
{
    RetryPolicy policy;
    policy.initialBackoff = std::chrono::milliseconds(100);
    policy.multiplier = 1.0;
    policy.maxBackoff = std::chrono::milliseconds(10000);
    policy.jitter = 0.5;

    Rng rng(99);
    for (int i = 0; i < 200; ++i) {
        const auto delay = backoffDelay(policy, 1, rng);
        EXPECT_GE(delay.count(), 50);
        EXPECT_LE(delay.count(), 150);
    }
}

TEST(Retry, BackoffNeverNegative)
{
    RetryPolicy policy;
    policy.initialBackoff = std::chrono::milliseconds(1);
    policy.jitter = 1.0; // band reaches zero
    Rng rng(3);
    for (int attempt = 1; attempt <= 20; ++attempt)
        EXPECT_GE(backoffDelay(policy, attempt, rng).count(), 0)
            << "attempt " << attempt;
}

TEST(RetrySessionTest, CountsAttemptsAsTheyBegin)
{
    RetryPolicy policy;
    policy.maxAttempts = 3;
    policy.initialBackoff = std::chrono::milliseconds(0);
    policy.maxBackoff = std::chrono::milliseconds(0);
    Rng rng(1);

    std::vector<int> seen;
    RetrySession session(policy, rng, {},
                         [&](int attempt) {
                             seen.push_back(attempt);
                         });
    EXPECT_EQ(session.attempts(), 0);
    EXPECT_FALSE(session.exhausted());

    EXPECT_EQ(session.beginAttempt(), 1);
    EXPECT_EQ(session.attempts(), 1);
    EXPECT_TRUE(session.shouldRetry(StatusCode::Unavailable));
    EXPECT_FALSE(session.shouldRetry(StatusCode::DataLoss));
    EXPECT_TRUE(session.backoff("work").ok());

    EXPECT_EQ(session.beginAttempt(), 2);
    EXPECT_EQ(session.beginAttempt(), 3);
    EXPECT_TRUE(session.exhausted());
    EXPECT_FALSE(session.shouldRetry(StatusCode::Unavailable));
    EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
}

TEST(RetrySessionTest, CancellationDuringBackoffKeepsAttempt)
{
    // The accounting fix this type exists for: an attempt whose
    // backoff is cut short by a deadline must still be visible —
    // both in attempts() and through the listener that feeds
    // telemetry — or retry counters under-report exactly the runs
    // that died retrying.
    RetryPolicy policy;
    policy.maxAttempts = 5;
    policy.initialBackoff = std::chrono::milliseconds(50);
    policy.maxBackoff = std::chrono::milliseconds(50);
    Rng rng(1);

    CancelSource source;
    int listener_calls = 0;
    RetrySession session(policy, rng, source.token(),
                         [&](int) { ++listener_calls; });

    EXPECT_EQ(session.beginAttempt(), 1);
    source.cancel(CancelReason::DeadlineExceeded);
    const Status slept = session.backoff("loading trace");
    ASSERT_FALSE(slept.ok());
    EXPECT_EQ(slept.code(), StatusCode::DeadlineExceeded);
    EXPECT_NE(slept.message().find("loading trace"),
              std::string::npos);

    // The in-flight attempt survived the cancellation.
    EXPECT_EQ(session.attempts(), 1);
    EXPECT_EQ(listener_calls, 1);
}

TEST(RetrySessionTest, ZeroLengthBackoffStillObservesCancellation)
{
    // A zero backoff must not skip the cancellation check, or a
    // tight retry loop spins through its whole budget after the
    // deadline already fired.
    RetryPolicy policy;
    policy.maxAttempts = 4;
    policy.initialBackoff = std::chrono::milliseconds(0);
    policy.maxBackoff = std::chrono::milliseconds(0);
    Rng rng(1);

    CancelSource source;
    source.cancel();
    RetrySession session(policy, rng, source.token());
    session.beginAttempt();
    const Status slept = session.backoff("work");
    ASSERT_FALSE(slept.ok());
    EXPECT_EQ(slept.code(), StatusCode::Cancelled);
}

} // namespace
} // namespace logseek
