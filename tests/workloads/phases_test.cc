/**
 * @file
 * Unit tests for the workload phase primitives.
 */

#include <gtest/gtest.h>

#include "util/logging.h"

#include <algorithm>
#include <set>

#include "workloads/phases.h"

namespace logseek::workloads
{
namespace
{

TEST(SequentialWrite, CoversRegionInOrder)
{
    TraceBuilder builder("t");
    sequentialWrite(builder, {100, 40}, 16);
    const trace::Trace trace = builder.take();
    ASSERT_EQ(trace.size(), 3u); // 16 + 16 + 8
    EXPECT_EQ(trace[0].extent, (SectorExtent{100, 16}));
    EXPECT_EQ(trace[1].extent, (SectorExtent{116, 16}));
    EXPECT_EQ(trace[2].extent, (SectorExtent{132, 8}));
    for (const auto &record : trace)
        EXPECT_TRUE(record.isWrite());
}

TEST(SequentialRead, CoversRegionInOrder)
{
    TraceBuilder builder("t");
    sequentialRead(builder, {0, 32}, 16);
    const trace::Trace trace = builder.take();
    ASSERT_EQ(trace.size(), 2u);
    for (const auto &record : trace)
        EXPECT_TRUE(record.isRead());
}

TEST(RandomWrite, StaysInRegionAndAligned)
{
    TraceBuilder builder("t");
    Rng rng(1);
    randomWrite(builder, rng, {1000, 1600}, 200, 16);
    const trace::Trace trace = builder.take();
    ASSERT_EQ(trace.size(), 200u);
    for (const auto &record : trace) {
        EXPECT_GE(record.extent.start, 1000u);
        EXPECT_LE(record.extent.end(), 2600u);
        EXPECT_EQ((record.extent.start - 1000) % 16, 0u);
        EXPECT_EQ(record.extent.count, 16u);
    }
}

TEST(RandomRead, ProducesRequestedCount)
{
    TraceBuilder builder("t");
    Rng rng(2);
    randomRead(builder, rng, {0, 640}, 50, 8);
    EXPECT_EQ(builder.take().size(), 50u);
}

TEST(MisorderedWrite, DescendingReversesIoOrder)
{
    TraceBuilder builder("t");
    misorderedWrite(builder, {0, 64}, 16, MisorderPattern::Descending);
    const trace::Trace trace = builder.take();
    ASSERT_EQ(trace.size(), 4u);
    EXPECT_EQ(trace[0].extent.start, 48u);
    EXPECT_EQ(trace[1].extent.start, 32u);
    EXPECT_EQ(trace[2].extent.start, 16u);
    EXPECT_EQ(trace[3].extent.start, 0u);
}

TEST(MisorderedWrite, ChunkedDescendingKeepsChunksAscending)
{
    TraceBuilder builder("t");
    misorderedWrite(builder, {0, 128}, 16,
                    MisorderPattern::ChunkedDescending);
    const trace::Trace trace = builder.take();
    ASSERT_EQ(trace.size(), 8u);
    // Second chunk (ios 4..7) first, ascending inside.
    EXPECT_EQ(trace[0].extent.start, 64u);
    EXPECT_EQ(trace[3].extent.start, 112u);
    EXPECT_EQ(trace[4].extent.start, 0u);
    EXPECT_EQ(trace[7].extent.start, 48u);
}

TEST(MisorderedWrite, InterleavedPairAlternatesHalves)
{
    TraceBuilder builder("t");
    misorderedWrite(builder, {0, 64}, 16,
                    MisorderPattern::InterleavedPair);
    const trace::Trace trace = builder.take();
    ASSERT_EQ(trace.size(), 4u);
    EXPECT_EQ(trace[0].extent.start, 0u);
    EXPECT_EQ(trace[1].extent.start, 32u);
    EXPECT_EQ(trace[2].extent.start, 16u);
    EXPECT_EQ(trace[3].extent.start, 48u);
}

TEST(MisorderedWrite, CoversWholeRunExactlyOnce)
{
    for (const auto pattern :
         {MisorderPattern::Descending,
          MisorderPattern::ChunkedDescending,
          MisorderPattern::InterleavedPair}) {
        TraceBuilder builder("t");
        misorderedWrite(builder, {0, 112}, 16, pattern); // 7 ios
        const trace::Trace trace = builder.take();
        std::set<Lba> starts;
        for (const auto &record : trace)
            starts.insert(record.extent.start);
        EXPECT_EQ(starts.size(), 7u);
        EXPECT_TRUE(starts.contains(0));
        EXPECT_TRUE(starts.contains(96));
    }
}

TEST(MisorderedWrite, NonWholeRunPanics)
{
    TraceBuilder builder("t");
    EXPECT_THROW(
        misorderedWrite(builder, {0, 60}, 16,
                        MisorderPattern::Descending),
        PanicError);
}

TEST(ShuffledSequentialWrite, CoversRegionExactly)
{
    TraceBuilder builder("t");
    Rng rng(3);
    shuffledSequentialWrite(builder, rng, {0, 256}, 16, 4);
    const trace::Trace trace = builder.take();
    ASSERT_EQ(trace.size(), 16u);
    std::set<Lba> starts;
    std::uint64_t total = 0;
    for (const auto &record : trace) {
        starts.insert(record.extent.start);
        total += record.extent.count;
    }
    EXPECT_EQ(starts.size(), 16u);
    EXPECT_EQ(total, 256u);
}

TEST(ShuffledSequentialWrite, ZeroProbabilityIsSequential)
{
    TraceBuilder builder("t");
    Rng rng(4);
    shuffledSequentialWrite(builder, rng, {0, 128}, 16, 4, 0.0);
    const trace::Trace trace = builder.take();
    for (std::size_t i = 1; i < trace.size(); ++i)
        EXPECT_EQ(trace[i].extent.start,
                  trace[i - 1].extent.end());
}

TEST(ShuffledSequentialWrite, DisorderStaysWithinWindows)
{
    TraceBuilder builder("t");
    Rng rng(5);
    constexpr std::uint32_t kWindow = 4;
    shuffledSequentialWrite(builder, rng, {0, 512}, 16, kWindow);
    const trace::Trace trace = builder.take();
    // Io i must come from window i / kWindow.
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const std::uint64_t window_index = i / kWindow;
        const std::uint64_t io_index = trace[i].extent.start / 16;
        EXPECT_EQ(io_index / kWindow, window_index) << "io " << i;
    }
}

TEST(InterleavedStreamWrite, RoundRobinsAcrossStreams)
{
    TraceBuilder builder("t");
    interleavedStreamWrite(builder, {0, 96}, 3, 8);
    const trace::Trace trace = builder.take();
    ASSERT_EQ(trace.size(), 12u);
    // First round: one io from each stream base.
    EXPECT_EQ(trace[0].extent.start, 0u);
    EXPECT_EQ(trace[1].extent.start, 32u);
    EXPECT_EQ(trace[2].extent.start, 64u);
    // Second round continues each stream.
    EXPECT_EQ(trace[3].extent.start, 8u);
}

TEST(InterleavedStreamWrite, SingleStreamIsSequential)
{
    TraceBuilder builder("t");
    interleavedStreamWrite(builder, {0, 64}, 1, 16);
    const trace::Trace trace = builder.take();
    for (std::size_t i = 1; i < trace.size(); ++i)
        EXPECT_EQ(trace[i].extent.start, trace[i - 1].extent.end());
}

TEST(TemporalReplayRead, ReplaysInOrder)
{
    TraceBuilder builder("t");
    const std::vector<SectorExtent> recent{{50, 4}, {10, 2}, {99, 8}};
    temporalReplayRead(builder, recent);
    const trace::Trace trace = builder.take();
    ASSERT_EQ(trace.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_TRUE(trace[i].isRead());
        EXPECT_EQ(trace[i].extent, recent[i]);
    }
}

TEST(HotSpotReader, ReadsAreChunkAligned)
{
    Rng rng(6);
    HotSpotReader reader({1000, 640}, 64, 1.0, rng);
    EXPECT_EQ(reader.chunkCount(), 10u);
    TraceBuilder builder("t");
    reader.emit(builder, rng, 100);
    const trace::Trace trace = builder.take();
    ASSERT_EQ(trace.size(), 100u);
    for (const auto &record : trace) {
        EXPECT_EQ((record.extent.start - 1000) % 64, 0u);
        EXPECT_EQ(record.extent.count, 64u);
        EXPECT_LE(record.extent.end(), 1640u);
    }
}

TEST(HotSpotReader, PopularityIsSkewedAndStable)
{
    Rng rng(7);
    HotSpotReader reader({0, 6400}, 64, 1.3, rng);
    TraceBuilder builder("t");
    reader.emit(builder, rng, 5000);
    const trace::Trace trace = builder.take();
    std::map<Lba, int> counts;
    for (const auto &record : trace)
        ++counts[record.extent.start];
    // The most popular chunk collects far more than the uniform
    // share (5000 / 100 chunks = 50).
    int best = 0;
    for (const auto &[lba, count] : counts)
        best = std::max(best, count);
    EXPECT_GT(best, 400);
}

TEST(HotSpotReader, ChunkExtentBoundsChecked)
{
    Rng rng(8);
    HotSpotReader reader({0, 128}, 64, 1.0, rng);
    EXPECT_EQ(reader.chunkExtent(1), (SectorExtent{64, 64}));
    EXPECT_THROW(reader.chunkExtent(2), PanicError);
}

TEST(Phases, ZeroIoSizePanics)
{
    TraceBuilder builder("t");
    Rng rng(9);
    EXPECT_THROW(sequentialWrite(builder, {0, 16}, 0), PanicError);
    EXPECT_THROW(randomWrite(builder, rng, {0, 16}, 1, 0),
                 PanicError);
    EXPECT_THROW(shuffledSequentialWrite(builder, rng, {0, 16}, 0, 4),
                 PanicError);
}

} // namespace
} // namespace logseek::workloads
