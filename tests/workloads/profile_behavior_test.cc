/**
 * @file
 * Behavioral tests for the named profiles: the structural trace
 * properties each figure depends on (capacity probes, scan-once
 * sizing, mis-ordered content, hot-set re-reads) observed directly
 * on the generated traces.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "analysis/misordered.h"
#include "trace/stats.h"
#include "util/logging.h"
#include "workloads/profiles.h"

namespace logseek::workloads
{
namespace
{

ProfileOptions
quick()
{
    ProfileOptions options;
    options.scale = 0.004;
    return options;
}

TEST(ProfileBehavior, CloudPhysicsProfilesProbeLargeVolumes)
{
    // The diskGiB capacity probe places the log far above the data
    // (paper Fig. 4's large-volume seek distances). MSR profiles
    // stay compact.
    const trace::Trace w64 = makeWorkload("w64", quick());
    EXPECT_GE(w64.addressSpaceEnd(), bytesToSectors(6 * kGiB) - 1);

    const trace::Trace usr0 = makeWorkload("usr_0", quick());
    EXPECT_LT(usr0.addressSpaceEnd(), bytesToSectors(2 * kGiB));
}

TEST(ProfileBehavior, CapacityProbeIsOneTinyRead)
{
    const trace::Trace trace = makeWorkload("w95", quick());
    const Lba top = trace.addressSpaceEnd();
    std::size_t touching_top = 0;
    for (const auto &record : trace) {
        if (record.extent.end() == top) {
            ++touching_top;
            EXPECT_TRUE(record.isRead());
            EXPECT_EQ(record.extent.count, 1u);
        }
    }
    EXPECT_EQ(touching_top, 1u);
}

TEST(ProfileBehavior, MisorderedProfilesContainDescendingAdjacency)
{
    // Profiles with mis-ordered bursts (hm_1, w84) contain writes
    // whose successor ends exactly at their start — the raw
    // material of paper Fig. 8.
    for (const char *name : {"hm_1", "w84", "src2_2", "w106"}) {
        const trace::Trace trace = makeWorkload(name, quick());
        const auto stats = analysis::countMisorderedWrites(trace);
        EXPECT_GT(stats.fraction(), 0.01) << name;
    }
}

TEST(ProfileBehavior, ScanProfilesRereadTheSameSectors)
{
    // w91's scans revisit the same region; per-sector read counts
    // must show heavy reuse (this is what defrag/cache exploit).
    const trace::Trace trace = makeWorkload("w91", quick());
    std::map<Lba, int> read_counts;
    for (const auto &record : trace) {
        if (record.isRead() && record.extent.count > 1)
            ++read_counts[record.extent.start];
    }
    int max_count = 0;
    for (const auto &[lba, count] : read_counts)
        max_count = std::max(max_count, count);
    EXPECT_GE(max_count, 3);
}

TEST(ProfileBehavior, ScanOnceProfilesDoNotRevisitScans)
{
    // w20's scans sweep fresh ground: the modal per-offset scan
    // count must be 1 (defragmentation then has nothing to earn).
    const trace::Trace trace = makeWorkload("w20", quick());
    std::map<Lba, int> read_counts;
    std::size_t repeated = 0;
    std::size_t total = 0;
    for (const auto &record : trace) {
        if (!record.isRead())
            continue;
        ++total;
        if (++read_counts[record.extent.start] == 2)
            ++repeated;
    }
    ASSERT_GT(total, 0u);
    // Less than a third of distinct read offsets are revisited
    // (the hot pool is, the scans are not).
    EXPECT_LT(static_cast<double>(repeated),
              0.34 * static_cast<double>(read_counts.size()));
}

TEST(ProfileBehavior, HotPoolProfilesHaveSkewedReads)
{
    // web_0's hot chunks concentrate reads (paper Fig. 10).
    const trace::Trace trace = makeWorkload("web_0", quick());
    std::map<Lba, int> counts;
    int reads = 0;
    for (const auto &record : trace) {
        if (record.isRead()) {
            ++counts[record.extent.start];
            ++reads;
        }
    }
    int best = 0;
    for (const auto &[lba, count] : counts)
        best = std::max(best, count);
    // The single most popular offset collects far more than a
    // uniform share.
    EXPECT_GT(best * static_cast<int>(counts.size()), 4 * reads);
}

TEST(ProfileBehavior, WriteDominantProfilesScatterWrites)
{
    // w76's writes must be spatially scattered (NoLS write seeks
    // are what the log saves).
    const trace::Trace trace = makeWorkload("w76", quick());
    std::size_t breaks = 0;
    std::size_t writes = 0;
    const trace::IoRecord *prev = nullptr;
    for (const auto &record : trace) {
        if (!record.isWrite())
            continue;
        if (prev != nullptr &&
            record.extent.start != prev->extent.end())
            ++breaks;
        prev = &record;
        ++writes;
    }
    ASSERT_GT(writes, 100u);
    EXPECT_GT(static_cast<double>(breaks),
              0.5 * static_cast<double>(writes));
}

TEST(ProfileBehavior, DayStructureLeavesIdleGaps)
{
    // Multi-day profiles must contain large idle gaps (the diurnal
    // structure behind paper Fig. 3).
    const trace::Trace trace = makeWorkload("w55", quick());
    std::size_t long_gaps = 0;
    for (std::size_t i = 1; i < trace.size(); ++i) {
        if (trace[i].timestampUs - trace[i - 1].timestampUs >
            3600ULL * 1000 * 1000)
            ++long_gaps;
    }
    EXPECT_GE(long_gaps, 13u); // 14 days -> >= 13 overnight gaps
}

TEST(ProfileBehavior, ScaleChangesCountsNotCharacter)
{
    ProfileOptions small = quick();
    ProfileOptions larger = quick();
    larger.scale = 0.008;
    const trace::TraceStats a =
        trace::computeStats(makeWorkload("w95", small));
    const trace::TraceStats b =
        trace::computeStats(makeWorkload("w95", larger));
    EXPECT_GT(b.readCount, a.readCount);
    EXPECT_GT(b.writeCount, a.writeCount);
    // Mean write size is scale-invariant.
    EXPECT_NEAR(a.meanWriteSizeKiB(), b.meanWriteSizeKiB(), 2.0);
}

} // namespace
} // namespace logseek::workloads
