/**
 * @file
 * Tests for streaming workload generators: determinism across
 * passes/cursors/reset, profileStream equivalence with the
 * materialized profile, mixedStream's analytic invariants, and
 * replay byte-identity between the streamed and materialized paths.
 */

#include <gtest/gtest.h>

#include <memory>

#include "stl/simulator.h"
#include "trace/input.h"
#include "workloads/profiles.h"
#include "workloads/stream.h"

namespace logseek::workloads
{
namespace
{

TEST(WorkloadStream, ProfileStreamSingleRepeatEqualsMakeWorkload)
{
    ProfileOptions options;
    options.scale = 0.002;
    const trace::Trace direct = makeWorkload("web_0", options);
    WorkloadStream stream(profileStream("web_0", options, 1));
    const trace::Trace streamed = trace::materialize(stream);

    EXPECT_EQ(streamed.name(), direct.name());
    EXPECT_EQ(streamed.addressSpaceEnd(), direct.addressSpaceEnd());
    ASSERT_EQ(streamed.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i)
        ASSERT_EQ(streamed[i], direct[i]) << "record " << i;
}

TEST(WorkloadStream, ProfileStreamRepeatsContinueTheClock)
{
    ProfileOptions options;
    options.scale = 0.002;
    const trace::Trace one = makeWorkload("web_0", options);
    WorkloadStream stream(profileStream("web_0", options, 3));
    const trace::Trace repeated = trace::materialize(stream);

    ASSERT_EQ(repeated.size(), one.size() * 3);
    // Timestamps must be non-decreasing across the repeat seams.
    for (std::size_t i = 1; i < repeated.size(); ++i)
        ASSERT_GE(repeated[i].timestampUs,
                  repeated[i - 1].timestampUs)
            << "record " << i;
    // The record pattern (extents and types) repeats exactly.
    for (std::size_t i = 0; i < one.size(); ++i) {
        ASSERT_EQ(repeated[one.size() + i].extent, one[i].extent);
        ASSERT_EQ(repeated[one.size() + i].type, one[i].type);
    }
}

TEST(WorkloadStream, EveryPassReproducesTheIdenticalSequence)
{
    const StreamSpec spec = mixedStream("mix", 5, 1000, 7);
    WorkloadStream stream(spec);
    const trace::Trace first = trace::materialize(stream);
    const trace::Trace second = trace::materialize(stream);
    // materialize resets first; two full passes over one cursor
    // and a pass over a fresh cursor must all agree bitwise.
    WorkloadStream fresh(spec);
    const trace::Trace third = trace::materialize(fresh);

    ASSERT_EQ(first.size(), second.size());
    ASSERT_EQ(first.size(), third.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        ASSERT_EQ(first[i], second[i]) << "record " << i;
        ASSERT_EQ(first[i], third[i]) << "record " << i;
    }
}

TEST(WorkloadStream, ResetMidStreamRewindsToRecordZero)
{
    WorkloadStream stream(mixedStream("mix", 4, 500, 11));
    trace::IoEventBatch batch;
    // Pull an odd number of records so the cursor sits mid-chunk.
    std::size_t pulled = 0;
    while (pulled < 777)
        pulled += stream.next(batch, 111);
    stream.reset();
    const trace::Trace after = trace::materialize(stream);
    WorkloadStream fresh(mixedStream("mix", 4, 500, 11));
    const trace::Trace expected = trace::materialize(fresh);
    ASSERT_EQ(after.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        ASSERT_EQ(after[i], expected[i]);
}

TEST(WorkloadStream, MixedStreamInvariantsHold)
{
    const std::uint64_t chunks = 6;
    const std::uint64_t per_chunk = 800;
    const StreamSpec spec = mixedStream("mix", chunks, per_chunk, 3);
    ASSERT_TRUE(spec.totalRecords.has_value());
    EXPECT_EQ(*spec.totalRecords, chunks * per_chunk);

    WorkloadStream stream(spec);
    ASSERT_TRUE(stream.sizeHint().has_value());
    EXPECT_EQ(*stream.sizeHint(), chunks * per_chunk);

    const trace::Trace all = trace::materialize(stream);
    ASSERT_EQ(all.size(), chunks * per_chunk);
    for (std::size_t i = 0; i < all.size(); ++i) {
        // Every record stays inside the declared address space.
        ASSERT_GT(all[i].extent.count, 0u) << "record " << i;
        ASSERT_LE(all[i].extent.start + all[i].extent.count,
                  spec.addressSpaceEnd)
            << "record " << i;
        // The stream clock is monotone across chunk seams.
        if (i > 0) {
            ASSERT_GE(all[i].timestampUs, all[i - 1].timestampUs)
                << "record " << i;
        }
    }
}

TEST(WorkloadStream, DifferentSeedsDiverge)
{
    WorkloadStream a(mixedStream("mix", 2, 400, 1));
    WorkloadStream b(mixedStream("mix", 2, 400, 2));
    const trace::Trace ta = trace::materialize(a);
    const trace::Trace tb = trace::materialize(b);
    ASSERT_EQ(ta.size(), tb.size());
    bool differs = false;
    for (std::size_t i = 0; i < ta.size() && !differs; ++i)
        differs = !(ta[i] == tb[i]);
    EXPECT_TRUE(differs);
}

TEST(WorkloadStream, StreamSourceCursorsAreIndependentAndEqual)
{
    StreamSource source(mixedStream("mix", 3, 600, 5));
    std::unique_ptr<trace::TraceInput> a = source.open();
    std::unique_ptr<trace::TraceInput> b = source.open();
    trace::IoEventBatch batch;
    ASSERT_GT(a->next(batch, 123), 0u); // advance a only
    const trace::Trace from_b = trace::materialize(*b);
    const trace::Trace from_a = trace::materialize(*a);
    ASSERT_EQ(from_a.size(), from_b.size());
    for (std::size_t i = 0; i < from_a.size(); ++i)
        ASSERT_EQ(from_a[i], from_b[i]);
}

TEST(WorkloadStream, StreamedReplayIsByteIdenticalToMaterialized)
{
    const StreamSpec spec = mixedStream("mix", 4, 1000, 9);
    WorkloadStream probe(spec);
    const trace::Trace materialized = trace::materialize(probe);

    stl::SimConfig config;
    stl::Simulator simulator(config);
    const stl::SimResult ram = simulator.run(materialized);
    WorkloadStream stream(spec);
    const stl::SimResult streamed = simulator.run(stream);
    // operator== covers every counter and the exact seekTimeSec
    // bits — the streamed path must not perturb the simulation.
    EXPECT_TRUE(ram == streamed);
}

} // namespace
} // namespace logseek::workloads
