/**
 * @file
 * Unit tests for TraceBuilder.
 */

#include <gtest/gtest.h>

#include "util/logging.h"
#include "workloads/builder.h"

namespace logseek::workloads
{
namespace
{

TEST(TraceBuilder, AssignsMonotonicTimestamps)
{
    TraceBuilder builder("t", 100);
    builder.read(0, 1);
    builder.write(10, 2);
    builder.read(20, 1);
    const trace::Trace trace = builder.take();
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace[0].timestampUs, 0u);
    EXPECT_EQ(trace[1].timestampUs, 100u);
    EXPECT_EQ(trace[2].timestampUs, 200u);
}

TEST(TraceBuilder, IdleAdvancesClock)
{
    TraceBuilder builder("t", 100);
    builder.read(0, 1);
    builder.idle(5000);
    builder.read(0, 1);
    const trace::Trace trace = builder.take();
    EXPECT_EQ(trace[1].timestampUs, 5100u);
}

TEST(TraceBuilder, RecordsTypesAndExtents)
{
    TraceBuilder builder("t");
    builder.write(42, 8);
    builder.read(100, 16);
    const trace::Trace trace = builder.take();
    EXPECT_TRUE(trace[0].isWrite());
    EXPECT_EQ(trace[0].extent, (SectorExtent{42, 8}));
    EXPECT_TRUE(trace[1].isRead());
    EXPECT_EQ(trace[1].extent, (SectorExtent{100, 16}));
}

TEST(TraceBuilder, NamePropagates)
{
    TraceBuilder builder("myload");
    builder.read(0, 1);
    EXPECT_EQ(builder.take().name(), "myload");
}

TEST(TraceBuilder, SizeAndPeek)
{
    TraceBuilder builder("t");
    EXPECT_EQ(builder.size(), 0u);
    builder.read(0, 1);
    builder.read(1, 1);
    EXPECT_EQ(builder.size(), 2u);
    EXPECT_EQ(builder.peek().size(), 2u);
}

TEST(TraceBuilder, ZeroInterarrivalPanics)
{
    EXPECT_THROW(TraceBuilder("t", 0), PanicError);
}

} // namespace
} // namespace logseek::workloads
