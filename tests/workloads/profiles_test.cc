/**
 * @file
 * Tests for the 21 named workload profiles: registry integrity,
 * determinism, scaled request counts, and per-archetype structural
 * properties.
 */

#include <gtest/gtest.h>

#include "trace/stats.h"
#include "util/logging.h"
#include "workloads/profiles.h"

namespace logseek::workloads
{
namespace
{

ProfileOptions
quickOptions()
{
    ProfileOptions options;
    options.scale = 0.004; // keep per-test generation fast
    return options;
}

TEST(ProfileRegistry, HasTwentyOneWorkloads)
{
    EXPECT_EQ(workloadTable().size(), 21u);
    EXPECT_EQ(allWorkloadNames().size(), 21u);
    EXPECT_EQ(msrWorkloadNames().size(), 9u);
    EXPECT_EQ(cloudPhysicsWorkloadNames().size(), 12u);
}

TEST(ProfileRegistry, NamesMatchThePaper)
{
    for (const char *name :
         {"usr_0", "usr_1", "src2_2", "hm_1", "web_0", "wdev_0",
          "mds_0", "rsrch_0", "ts_0", "w84", "w95", "w64", "w93",
          "w20", "w91", "w76", "w36", "w89", "w106", "w55", "w33"}) {
        EXPECT_TRUE(isKnownWorkload(name)) << name;
    }
    EXPECT_FALSE(isKnownWorkload("nonesuch"));
}

TEST(ProfileRegistry, InfoCarriesTableOneData)
{
    const WorkloadInfo &info = workloadInfo("w36");
    EXPECT_EQ(info.suite, "CloudPhysics");
    EXPECT_EQ(info.tableReads, 113090u);
    EXPECT_EQ(info.tableWrites, 18802536u);
    EXPECT_DOUBLE_EQ(info.tableMeanWriteKiB, 141.8);
    EXPECT_FALSE(info.behavior.empty());
    EXPECT_FALSE(info.os.empty());
}

TEST(ProfileRegistry, UnknownWorkloadIsFatal)
{
    EXPECT_THROW(workloadInfo("bogus"), FatalError);
    EXPECT_THROW(makeWorkload("bogus"), FatalError);
}

TEST(Profiles, GenerationIsDeterministic)
{
    const trace::Trace a = makeWorkload("hm_1", quickOptions());
    const trace::Trace b = makeWorkload("hm_1", quickOptions());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << "record " << i;
}

TEST(Profiles, SeedChangesTheTrace)
{
    ProfileOptions other = quickOptions();
    other.seed = 777;
    const trace::Trace a = makeWorkload("hm_1", quickOptions());
    const trace::Trace b = makeWorkload("hm_1", other);
    bool differs = a.size() != b.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = !(a[i] == b[i]);
    EXPECT_TRUE(differs);
}

TEST(Profiles, InvalidScaleIsRejected)
{
    ProfileOptions bad;
    bad.scale = 0.0;
    EXPECT_THROW(makeWorkload("hm_1", bad), PanicError);
}

/** Parameterized structural checks over every named profile. */
class AllProfiles : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AllProfiles, GeneratesNonTrivialTrace)
{
    const trace::Trace trace =
        makeWorkload(GetParam(), quickOptions());
    EXPECT_GT(trace.size(), 500u);
    EXPECT_GT(trace.addressSpaceEnd(), 0u);
    EXPECT_EQ(trace.name(), GetParam());
}

TEST_P(AllProfiles, TimestampsAreMonotonic)
{
    const trace::Trace trace =
        makeWorkload(GetParam(), quickOptions());
    std::uint64_t prev = 0;
    for (const auto &record : trace) {
        ASSERT_GE(record.timestampUs, prev);
        prev = record.timestampUs;
    }
}

TEST_P(AllProfiles, RequestCountsTrackTableOne)
{
    const WorkloadInfo &info = workloadInfo(GetParam());
    ProfileOptions options;
    options.scale = 0.01;
    const trace::TraceStats stats =
        trace::computeStats(makeWorkload(GetParam(), options));

    // Counts follow scale * Table I within 35% slack (prep phases,
    // run rounding and the 400-op floor shift small profiles) —
    // behavioral shape matters more than exact counts.
    const auto expect_near = [](std::uint64_t actual,
                                double expected, const char *what) {
        const double floor_adjusted = std::max(expected, 400.0);
        EXPECT_GT(static_cast<double>(actual),
                  0.65 * floor_adjusted)
            << what;
        EXPECT_LT(static_cast<double>(actual),
                  1.6 * floor_adjusted + 600.0)
            << what;
    };
    expect_near(stats.readCount,
                0.01 * static_cast<double>(info.tableReads), "reads");
    expect_near(stats.writeCount,
                0.01 * static_cast<double>(info.tableWrites),
                "writes");
}

TEST_P(AllProfiles, ReadWriteBalanceMatchesArchetype)
{
    const WorkloadInfo &info = workloadInfo(GetParam());
    const trace::TraceStats stats =
        trace::computeStats(makeWorkload(GetParam(), quickOptions()));
    const bool table_write_heavy =
        info.tableWrites > info.tableReads;
    // Small profiles hit the 400-op floor on both sides; only check
    // direction when Table I is lopsided by at least 2x.
    if (info.tableWrites > 2 * info.tableReads)
        EXPECT_GT(stats.writeCount, stats.readCount);
    else if (info.tableReads > 2 * info.tableWrites)
        EXPECT_GT(stats.readCount, stats.writeCount);
    else
        (void)table_write_heavy;
}

INSTANTIATE_TEST_SUITE_P(
    Named, AllProfiles,
    ::testing::ValuesIn(allWorkloadNames()),
    [](const ::testing::TestParamInfo<std::string> &param_info) {
        std::string name = param_info.param;
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace logseek::workloads
