/**
 * @file
 * End-to-end integration tests: named workloads driven through the
 * full stack, asserting the paper's qualitative results (Figure 11
 * shapes, mechanism signs, Figure 8 ordering) at a reduced scale.
 */

#include <gtest/gtest.h>

#include "util/logging.h"

#include <map>

#include "analysis/misordered.h"
#include "analysis/observers.h"
#include "analysis/validating_observer.h"
#include "stl/simulator.h"
#include "trace/msr_csv.h"
#include "workloads/profiles.h"

#include <sstream>

namespace logseek
{
namespace
{

workloads::ProfileOptions
testOptions()
{
    workloads::ProfileOptions options;
    options.scale = 0.008;
    return options;
}

/**
 * Replay under a paranoid invariant checker: any replay-contract
 * violation panics and fails the test at the offending op.
 */
stl::SimResult
runValidated(const stl::SimConfig &config,
             const trace::Trace &trace)
{
    analysis::ValidatingObserver validator({.paranoid = true});
    stl::Simulator simulator(config);
    simulator.addObserver(&validator);
    return simulator.run(trace);
}

struct SafSet
{
    double ls = 0.0;
    double defrag = 0.0;
    double prefetch = 0.0;
    double cache = 0.0;
};

SafSet
runAll(const std::string &name)
{
    const trace::Trace trace =
        workloads::makeWorkload(name, testOptions());

    stl::SimConfig baseline;
    baseline.translation = stl::TranslationKind::Conventional;
    const stl::SimResult nols = runValidated(baseline, trace);

    auto saf = [&](bool defrag, bool prefetch, bool cache) {
        stl::SimConfig config;
        config.translation = stl::TranslationKind::LogStructured;
        if (defrag)
            config.defrag = stl::DefragConfig{};
        if (prefetch)
            config.prefetch = stl::PrefetchConfig{};
        if (cache)
            config.cache = stl::SelectiveCacheConfig{64 * kMiB};
        return stl::seekAmplification(nols,
                                      runValidated(config, trace))
            .value();
    };

    SafSet out;
    out.ls = saf(false, false, false);
    out.defrag = saf(true, false, false);
    out.prefetch = saf(false, true, false);
    out.cache = saf(false, false, true);
    return out;
}

TEST(EndToEnd, WriteDominantWorkloadsBenefitFromLogStructure)
{
    // Paper Fig. 11a: MSR workloads other than usr_1 and hm_1 show
    // SAF < 1.
    for (const char *name : {"src2_2", "web_0", "wdev_0", "ts_0"}) {
        const SafSet saf = runAll(name);
        EXPECT_LT(saf.ls, 1.0) << name;
    }
}

TEST(EndToEnd, LogSensitiveWorkloadsAmplify)
{
    // Paper: usr_1 and hm_1 (MSR) and w91 (CloudPhysics) exceed 1.
    for (const char *name : {"usr_1", "hm_1", "w91"}) {
        const SafSet saf = runAll(name);
        EXPECT_GT(saf.ls, 1.0) << name;
    }
}

TEST(EndToEnd, W91IsTheWorstCloudPhysicsCase)
{
    const SafSet w91 = runAll("w91");
    EXPECT_GT(w91.ls, 2.5);
    // All three mechanisms improve w91 substantially.
    EXPECT_LT(w91.defrag, w91.ls / 1.5);
    EXPECT_LT(w91.prefetch, w91.ls / 1.5);
    EXPECT_LT(w91.cache, w91.ls / 1.5);
    // Selective caching is the best of the three (paper: 3.7->0.2).
    EXPECT_LT(w91.cache, w91.defrag);
    EXPECT_LT(w91.cache, w91.prefetch * 1.2);
}

TEST(EndToEnd, DefragmentationHurtsScanOnceWorkloads)
{
    // Paper §V: "opportunistic defragmentation ... SAF is worsened"
    // for src2_2, w93 and w20.
    for (const char *name : {"w20", "w93", "src2_2"}) {
        const SafSet saf = runAll(name);
        EXPECT_GT(saf.defrag, saf.ls) << name;
    }
}

TEST(EndToEnd, PrefetchingHelpsMisorderedWorkloads)
{
    // Paper §V: significant improvement for w84, w95, w91.
    for (const char *name : {"w84", "w95", "w91"}) {
        const SafSet saf = runAll(name);
        EXPECT_LT(saf.prefetch, 0.6 * saf.ls) << name;
    }
}

TEST(EndToEnd, CachingIsBestOnAverage)
{
    // Paper §V: selective caching gives the lowest SAF for most
    // workloads.
    const std::vector<std::string> sample{
        "hm_1", "web_0", "w93", "w55", "w33", "w89"};
    int cache_wins = 0;
    for (const auto &name : sample) {
        const SafSet saf = runAll(name);
        if (saf.cache <= saf.defrag && saf.cache <= saf.prefetch)
            ++cache_wins;
    }
    EXPECT_GE(cache_wins, 4);
}

TEST(EndToEnd, MisorderedWriteFractionsDifferByDesign)
{
    // Paper Fig. 8: src2_2 and w106 have the highest mis-ordered
    // fractions (about 1 in 20/25); usr_1 is low.
    const auto options = testOptions();
    std::map<std::string, double> fraction;
    for (const char *name : {"src2_2", "w106", "usr_1", "hm_1"}) {
        const trace::Trace trace =
            workloads::makeWorkload(name, options);
        fraction[name] =
            analysis::countMisorderedWrites(trace).fraction();
    }
    EXPECT_GT(fraction["src2_2"], fraction["usr_1"]);
    EXPECT_GT(fraction["w106"], fraction["usr_1"]);
    EXPECT_GT(fraction["hm_1"], 0.0);
}

TEST(EndToEnd, MsrRoundTripPreservesSimulationResults)
{
    // Serialize a named workload to MSR CSV, parse it back, and
    // check the simulation is bit-identical — the paper's pipeline
    // from on-disk traces to seek counts.
    const trace::Trace original =
        workloads::makeWorkload("hm_1", testOptions());
    std::stringstream buffer;
    trace::writeMsrCsv(buffer, original);
    const trace::Trace reparsed =
        trace::parseMsrCsv(buffer, "hm_1");

    stl::SimConfig config;
    config.translation = stl::TranslationKind::LogStructured;
    const stl::SimResult a = runValidated(config, original);
    const stl::SimResult b = runValidated(config, reparsed);
    EXPECT_EQ(a.totalSeeks(), b.totalSeeks());
    EXPECT_EQ(a.readFragments, b.readFragments);
}

TEST(EndToEnd, ObserversAgreeAcrossConfigs)
{
    const trace::Trace trace =
        workloads::makeWorkload("w95", testOptions());
    stl::SimConfig config;
    config.translation = stl::TranslationKind::LogStructured;

    analysis::SeekCounter counter;
    analysis::FragmentedReadCdf frag_cdf;
    analysis::ValidatingObserver validator({.paranoid = true});
    stl::Simulator simulator(config);
    simulator.addObserver(&counter);
    simulator.addObserver(&frag_cdf);
    simulator.addObserver(&validator);
    const stl::SimResult result = simulator.run(trace);

    EXPECT_EQ(counter.totalSeeks(), result.totalSeeks());
    EXPECT_EQ(frag_cdf.fragmentedReads(), result.fragmentedReads);
    EXPECT_EQ(frag_cdf.totalFragments(), result.readFragments);
}

TEST(EndToEnd, CombinedMechanismsDoNotBreakCorrectness)
{
    const trace::Trace trace =
        workloads::makeWorkload("w55", testOptions());
    stl::SimConfig config;
    config.translation = stl::TranslationKind::LogStructured;
    config.defrag = stl::DefragConfig{};
    config.prefetch = stl::PrefetchConfig{};
    config.cache = stl::SelectiveCacheConfig{64 * kMiB};
    const stl::SimResult result = runValidated(config, trace);
    EXPECT_EQ(result.reads + result.writes, trace.size());
    EXPECT_GT(result.totalSeeks(), 0u);
}

} // namespace
} // namespace logseek
