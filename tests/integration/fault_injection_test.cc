/**
 * @file
 * Fault-injection sweep over the trace ingestion stack: hundreds of
 * seeded truncations, bit-flips, short reads and mid-record EOFs
 * against the CSV and binary readers. The contract under test is
 * the robustness tentpole's: every injected fault must surface as a
 * typed Status error or a counted skip — never undefined behavior,
 * never a crash, never an uncaught exception.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "stl/simulator.h"
#include "trace/binary.h"
#include "trace/msr_csv.h"
#include "util/fault.h"

namespace logseek::trace
{
namespace
{

/** A small but non-trivial trace to corrupt. */
Trace
victimTrace()
{
    Trace trace("victim");
    trace.appendRead(100, 8, 0);
    trace.appendWrite(5000, 64, 10);
    trace.appendRead(0, 1, 20);
    trace.appendWrite(77, 16, 30);
    trace.appendRead(4096, 32, 40);
    return trace;
}

std::string
binaryBytes(const Trace &trace)
{
    std::stringstream buffer(std::ios::in | std::ios::out |
                             std::ios::binary);
    writeBinaryTrace(buffer, trace);
    return buffer.str();
}

std::string
csvBytes(const Trace &trace)
{
    std::ostringstream buffer;
    writeMsrCsv(buffer, trace);
    return buffer.str();
}

/**
 * Feed corrupted bytes to the binary reader; the parse must either
 * succeed or fail with a typed status — anything escaping as an
 * exception fails the sweep. Returns the status for extra checks.
 */
Status
sweepBinary(const std::string &bytes, FaultKind kind,
            std::uint64_t seed)
{
    std::istringstream in(bytes);
    Status status;
    EXPECT_NO_THROW({
        const StatusOr<Trace> result = tryReadBinaryTrace(in);
        status = result.ok() ? Status() : result.status();
    }) << toString(kind) << " seed " << seed;
    return status;
}

/** CSV counterpart of sweepBinary. */
Status
sweepCsv(const std::string &bytes, const MsrCsvOptions &options,
         FaultKind kind, std::uint64_t seed)
{
    std::istringstream in(bytes);
    Status status;
    EXPECT_NO_THROW({
        const StatusOr<MsrParseResult> result =
            tryParseMsrCsv(in, "victim", options);
        if (result.ok()) {
            // A parse that succeeds on corrupt bytes must still
            // yield a trace the replay layer can at least vet
            // without crashing.
            EXPECT_NO_THROW(
                stl::Simulator::validateTrace(result.value().trace));
        } else {
            status = result.status();
        }
    }) << toString(kind) << " seed " << seed;
    return status;
}

TEST(FaultInjection, BinaryEveryPrefixTruncationIsTypedError)
{
    const std::string bytes = binaryBytes(victimTrace());
    ASSERT_GT(bytes.size(), 100u);
    // Exhaustive, not sampled: every strict prefix must fail with a
    // typed DataLoss (the record count promises more bytes).
    for (std::size_t length = 0; length < bytes.size(); ++length) {
        const Status status =
            sweepBinary(truncateAt(bytes, length),
                        FaultKind::Truncate, length);
        EXPECT_FALSE(status.ok()) << "prefix length " << length;
        EXPECT_EQ(status.code(), StatusCode::DataLoss)
            << "prefix length " << length;
    }
}

TEST(FaultInjection, BinarySeededBitFlipsNeverCrash)
{
    const std::string bytes = binaryBytes(victimTrace());
    int typed_errors = 0;
    for (std::uint64_t seed = 0; seed < 64; ++seed) {
        const Status status =
            sweepBinary(injectBitFlip(bytes, seed),
                        FaultKind::BitFlip, seed);
        if (!status.ok())
            ++typed_errors;
    }
    // Most single-bit flips land in a checked field (magic,
    // version, lengths, type); some flip only a payload value and
    // legitimately still parse. Both are fine — the sweep only
    // forbids crashes — but a checksum-free format should still
    // catch a decent share.
    EXPECT_GT(typed_errors, 0);
}

TEST(FaultInjection, BinaryEofMidRecordIsTypedError)
{
    const Trace victim = victimTrace();
    const std::string bytes = binaryBytes(victim);
    const std::size_t header = kBinaryTraceHeaderBytes +
                               victim.name().size() + 8;
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
        const Status status = sweepBinary(
            injectEofMidRecord(bytes, header,
                               kBinaryTraceRecordBytes, seed),
            FaultKind::EofMidRecord, seed);
        EXPECT_FALSE(status.ok()) << "seed " << seed;
        EXPECT_EQ(status.code(), StatusCode::DataLoss)
            << "seed " << seed;
    }
}

TEST(FaultInjection, BinarySurvivesShortReads)
{
    const Trace victim = victimTrace();
    const std::string bytes = binaryBytes(victim);
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
        ShortReadStream in(bytes, seed, 3);
        const StatusOr<Trace> result = tryReadBinaryTrace(in);
        ASSERT_TRUE(result.ok()) << "seed " << seed;
        EXPECT_EQ(result.value().size(), victim.size())
            << "seed " << seed;
    }
}

TEST(FaultInjection, BinaryBitFlipThroughShortReadsNeverCrashes)
{
    const std::string bytes = binaryBytes(victimTrace());
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
        ShortReadStream in(injectBitFlip(bytes, seed), seed + 1000,
                           5);
        EXPECT_NO_THROW(tryReadBinaryTrace(in))
            << "seed " << seed;
    }
}

TEST(FaultInjection, CsvSeededTruncationStrictMode)
{
    const std::string bytes = csvBytes(victimTrace());
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        // Strict mode: a cut mid-line is DataLoss; a cut exactly at
        // a line boundary (or inside trailing digits that still
        // parse) can legitimately succeed with fewer records.
        sweepCsv(injectTruncation(bytes, seed), MsrCsvOptions{},
                 FaultKind::Truncate, seed);
    }
}

TEST(FaultInjection, CsvSeededTruncationSkipMode)
{
    const std::string bytes = csvBytes(victimTrace());
    MsrCsvOptions options;
    options.skipMalformed = true;
    options.maxWarnings = 0; // keep the test log quiet
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        std::istringstream in(injectTruncation(bytes, seed));
        const StatusOr<MsrParseResult> result =
            tryParseMsrCsv(in, "victim", options);
        // With skipping enabled and a generous budget, truncation
        // can only shrink the trace, never fail it.
        ASSERT_TRUE(result.ok()) << "seed " << seed;
        const MsrParseSummary &summary = result.value().summary;
        EXPECT_EQ(summary.parsed + summary.skipped, summary.lines)
            << "seed " << seed;
    }
}

TEST(FaultInjection, CsvSeededBitFlipsBothModes)
{
    const std::string bytes = csvBytes(victimTrace());
    MsrCsvOptions skip;
    skip.skipMalformed = true;
    skip.maxWarnings = 0;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        const std::string flipped = injectBitFlip(bytes, seed);
        sweepCsv(flipped, MsrCsvOptions{}, FaultKind::BitFlip,
                 seed);
        sweepCsv(flipped, skip, FaultKind::BitFlip, seed);
    }
}

TEST(FaultInjection, CsvSurvivesShortReads)
{
    const Trace victim = victimTrace();
    const std::string bytes = csvBytes(victim);
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
        ShortReadStream in(bytes, seed, 3);
        const StatusOr<MsrParseResult> result =
            tryParseMsrCsv(in, "victim");
        ASSERT_TRUE(result.ok()) << "seed " << seed;
        EXPECT_EQ(result.value().trace.size(), victim.size())
            << "seed " << seed;
    }
}

TEST(FaultInjection, CsvErrorBudgetRejectsMostlyGarbageTrace)
{
    // 100 garbage lines with a budget of 10: the trace must be
    // rejected with ResourceExhausted, not silently shrunk.
    std::string bytes;
    for (int i = 0; i < 100; ++i)
        bytes += "garbage line " + std::to_string(i) + "\n";
    MsrCsvOptions options;
    options.skipMalformed = true;
    options.errorBudget = 10;
    options.maxWarnings = 0;
    std::istringstream in(bytes);
    const StatusOr<MsrParseResult> result =
        tryParseMsrCsv(in, "garbage", options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(),
              StatusCode::ResourceExhausted);
}

TEST(FaultInjection, ReplayRejectsOverflowingTraceWithTypedError)
{
    // A corrupted-but-parseable trace whose sector range overflows
    // must be rejected by tryRun up front, not crash the replay.
    Trace bad("overflow");
    bad.append(IoRecord{0, IoType::Read,
                        SectorExtent{~0ULL - 4, 100}});
    stl::Simulator simulator;
    const StatusOr<stl::SimResult> result = simulator.tryRun(bad);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(),
              StatusCode::InvalidArgument);
}

TEST(FaultInjection, BinaryWriterEveryBudgetIsTypedError)
{
    // The write side of the same contract: a disk that fills up at
    // any point must surface as a typed Unavailable, never a fatal.
    const Trace trace = victimTrace();
    const std::string full = binaryBytes(trace);
    for (std::size_t budget = 0; budget < full.size(); ++budget) {
        ShortWriteStream out(budget);
        const Status status = tryWriteBinaryTrace(out, trace);
        ASSERT_FALSE(status.ok()) << "budget " << budget;
        EXPECT_EQ(status.code(), StatusCode::Unavailable)
            << "budget " << budget;
        EXPECT_NE(status.message().find("short write"),
                  std::string::npos)
            << "budget " << budget;
        // What reached "media" is a strict prefix of the good file.
        EXPECT_EQ(full.compare(0, out.written().size(),
                               out.written()),
                  0)
            << "budget " << budget;
    }
}

TEST(FaultInjection, BinaryWriterFlushFailureIsTypedError)
{
    const Trace trace = victimTrace();
    ShortWriteStream out(1 << 20, /*fail_sync=*/true);
    const Status status = tryWriteBinaryTrace(out, trace);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::Unavailable);
    EXPECT_NE(status.message().find("flush"), std::string::npos);
}

TEST(FaultInjection, BinaryWriterSucceedsWithinBudget)
{
    const Trace trace = victimTrace();
    const std::string full = binaryBytes(trace);
    ShortWriteStream out(full.size());
    ASSERT_TRUE(tryWriteBinaryTrace(out, trace).ok());
    EXPECT_EQ(out.written(), full);
}

TEST(FaultInjection, BinaryWriterFileErrorIsTypedError)
{
    const Status status = tryWriteBinaryTraceFile(
        "/nonexistent/dir/trace.bin", victimTrace());
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::Unavailable);
}

TEST(FaultInjection, BinaryWriterTruncatedOutputFailsTheReader)
{
    // End-to-end: a short-written file is detected on read — the
    // torn bytes parse to a typed error, not a silent short trace.
    const Trace trace = victimTrace();
    const std::string full = binaryBytes(trace);
    ShortWriteStream out(full.size() / 2);
    ASSERT_FALSE(tryWriteBinaryTrace(out, trace).ok());

    std::stringstream torn(std::ios::in | std::ios::out |
                           std::ios::binary);
    torn.str(out.written());
    const StatusOr<Trace> parsed = tryReadBinaryTrace(torn);
    EXPECT_FALSE(parsed.ok());
}

} // namespace
} // namespace logseek::trace
