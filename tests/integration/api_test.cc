/**
 * @file
 * API-surface tests: the umbrella header compiles and exposes the
 * whole stack, printResult renders every counter, and the
 * documented README flow works end to end.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "logseek.h"

namespace logseek
{
namespace
{

TEST(Api, ReadmeQuickstartFlow)
{
    // The exact flow documented in README.md, replayed under a
    // paranoid invariant checker (first violation panics).
    trace::Trace trace =
        workloads::makeWorkload("hm_1", {.scale = 0.004, .seed = 1});

    stl::SimConfig config;
    config.translation = stl::TranslationKind::LogStructured;
    config.cache = stl::SelectiveCacheConfig{64 * kMiB};

    analysis::ValidatingObserver validator({.paranoid = true});
    const auto [baseline, ls] =
        stl::runWithBaseline(trace, config, {&validator});
    const double saf = stl::seekAmplification(baseline, ls).value();
    EXPECT_GT(saf, 0.0);
    EXPECT_EQ(baseline.configLabel, "NoLS");
    EXPECT_EQ(ls.configLabel, "LS+cache");
    EXPECT_EQ(validator.eventCount(), 2 * trace.size());
    EXPECT_EQ(validator.violationCount(), 0u);
}

TEST(Api, PrintResultRendersAllSections)
{
    trace::Trace trace("t");
    for (int i = 0; i < 40; ++i)
        trace.appendWrite(static_cast<Lba>(i * 100), 8);
    trace.appendRead(0, 8);

    stl::SimConfig config;
    config.translation = stl::TranslationKind::MediaCache;
    config.mediaCache.cacheBytes = 64 * kSectorBytes;
    config.mediaCache.bandBytes = 32 * kSectorBytes;
    const stl::SimResult result = stl::Simulator(config).run(trace);

    std::ostringstream out;
    analysis::printResult(out, result);
    const std::string text = out.str();
    EXPECT_NE(text.find("MediaCache"), std::string::npos);
    EXPECT_NE(text.find("total seeks"), std::string::npos);
    EXPECT_NE(text.find("cleaning merges"), std::string::npos);
    EXPECT_NE(text.find("write amplification"), std::string::npos);
    EXPECT_NE(text.find("est. seek time"), std::string::npos);
}

TEST(Api, PrintResultOmitsCleaningWhenNoneHappened)
{
    trace::Trace trace("t");
    trace.appendWrite(0, 8);
    stl::SimConfig config;
    config.translation = stl::TranslationKind::LogStructured;
    const stl::SimResult result = stl::Simulator(config).run(trace);
    std::ostringstream out;
    analysis::printResult(out, result);
    EXPECT_EQ(out.str().find("cleaning merges"), std::string::npos);
}

TEST(Api, AllTranslationKindsRunTheSameTrace)
{
    trace::Trace trace("t");
    for (int i = 0; i < 50; ++i)
        trace.appendWrite(static_cast<Lba>((i * 13) % 200), 4);
    trace.appendRead(0, 200);

    for (const auto kind :
         {stl::TranslationKind::Conventional,
          stl::TranslationKind::LogStructured,
          stl::TranslationKind::FiniteLogStructured,
          stl::TranslationKind::MediaCache}) {
        stl::SimConfig config;
        config.translation = kind;
        // 16 MiB capacity in 1 MiB segments leaves the default
        // cleaning target (4) well below the segment count.
        config.finiteLog.capacityBytes = 16 * kMiB;
        config.finiteLog.segmentBytes = kMiB;
        analysis::ValidatingObserver validator({.paranoid = true});
        stl::Simulator simulator(config);
        simulator.addObserver(&validator);
        const stl::SimResult result = simulator.run(trace);
        EXPECT_EQ(result.reads, 1u) << result.configLabel;
        EXPECT_EQ(result.writes, 50u) << result.configLabel;
        EXPECT_EQ(validator.violationCount(), 0u)
            << result.configLabel;
    }
}

TEST(Api, ReorderedTraceFeedsTheSimulator)
{
    const trace::Trace trace =
        workloads::makeWorkload("w84", {.scale = 0.004, .seed = 2});
    const trace::Trace sorted = trace::reorderElevator(trace);
    ASSERT_EQ(sorted.size(), trace.size());

    stl::SimConfig config;
    config.translation = stl::TranslationKind::Conventional;
    const stl::SimResult raw = stl::Simulator(config).run(trace);
    const stl::SimResult ncq = stl::Simulator(config).run(sorted);
    // Elevator scheduling cannot make the conventional drive seek
    // more on this mis-ordered workload.
    EXPECT_LE(ncq.totalSeeks(), raw.totalSeeks());
}

} // namespace
} // namespace logseek
