/**
 * @file
 * End-to-end failure-scenario sweep over the zoned-device layer:
 * a 200+-cell (workload × device-fault-config) grid covering
 * transient bad sectors, persistent grown defects (including zones
 * going OFFLINE mid-trace) and write-pointer divergence. The
 * acceptance contract: every cell completes with a classified
 * outcome — no crashes, no uncaught exceptions — and the grid is
 * byte-identical across job counts and across checkpoint/resume.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "disk/zoned_device.h"
#include "stl/simulator.h"
#include "sweep/report.h"
#include "sweep/sweep_runner.h"
#include "trace/stats.h"
#include "util/random.h"
#include "workloads/profiles.h"

namespace logseek::sweep
{
namespace
{

workloads::ProfileOptions
tinyProfile()
{
    workloads::ProfileOptions options;
    options.scale = 0.002;
    return options;
}

/** One fault shape of the grid. */
struct FaultShape
{
    const char *name;
    double transient;
    double grown;
    double offlineShare;
    double divergence;
};

constexpr FaultShape kShapes[] = {
    {"transient", 0.02, 0.0, 0.0, 0.0},
    {"grown-ro", 0.0, 0.004, 0.0, 0.0},
    {"grown-offline", 0.0, 0.004, 1.0, 0.0},
    {"wp-div", 0.0, 0.0, 0.0, 0.05},
    {"t+g", 0.02, 0.002, 0.25, 0.0},
    {"t+g+div", 0.02, 0.002, 0.25, 0.05},
};

/** The full grid: 6 workloads x (2 translations x 6 shapes x
 *  3 severities) = 216 cells. */
std::vector<WorkloadSpec>
gridWorkloads()
{
    std::vector<WorkloadSpec> specs;
    for (const char *name :
         {"usr_1", "w91", "hm_1", "w33", "src2_2", "web_0"})
        specs.push_back(WorkloadSpec::profile(name, tinyProfile()));
    return specs;
}

/** Finite-log capacity sized so the log never overcommits. */
stl::FiniteLogConfig
sizedLog(const trace::Trace &trace)
{
    const trace::TraceStats stats = trace::computeStats(trace);
    stl::FiniteLogConfig config;
    config.capacityBytes =
        std::max<std::uint64_t>(16 * kMiB, 2 * stats.writtenBytes);
    config.segmentBytes = std::clamp<std::uint64_t>(
        config.capacityBytes / 128, 256 * kKiB, 4 * kMiB);
    config.cleanReserveSegments = 4;
    config.cleanTargetSegments = 12;
    return config;
}

std::vector<ConfigSpec>
gridConfigs()
{
    std::vector<ConfigSpec> configs;
    const std::pair<const char *, stl::TranslationKind>
        translations[] = {
            {"FLS", stl::TranslationKind::FiniteLogStructured},
            {"LS", stl::TranslationKind::LogStructured}};
    for (const auto &[tname, translation] : translations) {
        for (const FaultShape &shape : kShapes) {
            for (int severity = 1; severity <= 3; ++severity) {
                disk::ZonedDeviceOptions device;
                const double x = severity;
                device.faults.transientRate = shape.transient * x;
                device.faults.grownRate = shape.grown * x;
                device.faults.offlineShare = shape.offlineShare;
                device.faults.wpDivergenceRate =
                    shape.divergence * x;
                device.recovery.initialBackoff =
                    std::chrono::milliseconds(0);
                device.recovery.maxBackoff =
                    std::chrono::milliseconds(0);
                configs.push_back(ConfigSpec::deferred(
                    std::string(tname) + " " + shape.name + " " +
                        std::to_string(severity) + "x",
                    [translation,
                     device](const trace::Trace &trace) {
                        stl::SimConfig config;
                        config.translation = translation;
                        if (translation ==
                            stl::TranslationKind::
                                FiniteLogStructured)
                            config.finiteLog = sizedLog(trace);
                        config.zonedDevice = device;
                        return config;
                    }));
            }
        }
    }
    return configs;
}

SweepResult
runGrid(SweepOptions options)
{
    SweepRunner runner(gridWorkloads(), gridConfigs(),
                       std::move(options));
    return runner.run();
}

std::string
deterministicJson(const SweepResult &sweep)
{
    std::ostringstream out;
    writeJson(out, sweep, /*with_telemetry=*/false);
    return out.str();
}

/** A self-deleting temp file path. */
class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : path_(std::string(::testing::TempDir()) + name)
    {
        std::remove(path_.c_str());
    }

    ~TempPath() { std::remove(path_.c_str()); }

    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

TEST(DeviceFaultSweep, EveryCellCompletesClassified)
{
    SweepOptions options;
    options.jobs = 4;
    const SweepResult sweep = runGrid(std::move(options));

    ASSERT_GE(sweep.rows.size(), 200u);
    std::uint64_t degraded_cells = 0;
    std::uint64_t retried_sectors = 0;
    std::uint64_t wp_violations = 0;
    std::uint64_t offline_zones = 0;
    for (const RunRow &row : sweep.rows) {
        SCOPED_TRACE(row.key.workload + " / " +
                     row.key.configLabel);
        // Zero crashes, every cell classified: device faults are
        // absorbed as counted partial failures, so every cell of
        // this grid must actually complete OK.
        EXPECT_TRUE(row.status.ok()) << row.status.toString();
        EXPECT_TRUE(row.outcome == CellOutcome::Ok ||
                    row.outcome == CellOutcome::RetriedOk ||
                    row.outcome == CellOutcome::Failed ||
                    row.outcome == CellOutcome::TimedOut)
            << toString(row.outcome);
        if (row.result.deviceDegraded())
            ++degraded_cells;
        retried_sectors += row.result.deviceRecoveredSectors;
        wp_violations += row.result.deviceWpViolations;
        offline_zones += row.result.deviceOfflineZones;
    }
    // The grid genuinely exercised every fault class.
    EXPECT_GT(degraded_cells, 0u);
    EXPECT_GT(retried_sectors, 0u);
    EXPECT_GT(wp_violations, 0u);
    EXPECT_GT(offline_zones, 0u);
}

TEST(DeviceFaultSweep, GridIsByteIdenticalAcrossJobCounts)
{
    SweepOptions serial;
    serial.jobs = 1;
    SweepOptions parallel;
    parallel.jobs = 4;
    EXPECT_EQ(deterministicJson(runGrid(std::move(serial))),
              deterministicJson(runGrid(std::move(parallel))));
}

TEST(DeviceFaultSweep, ResumedGridIsByteIdentical)
{
    TempPath checkpoint("device_fault_sweep.ckpt");

    SweepOptions first;
    first.jobs = 4;
    first.checkpointPath = checkpoint.str();
    const SweepResult original = runGrid(std::move(first));

    SweepOptions resumed;
    resumed.jobs = 2;
    resumed.resumePath = checkpoint.str();
    const SweepResult restored = runGrid(std::move(resumed));

    EXPECT_EQ(restored.telemetry.restoredRuns,
              original.rows.size());
    EXPECT_EQ(deterministicJson(original),
              deterministicJson(restored));
}

TEST(DeviceFaultSweep, FaultFreeDeviceMatchesDevicelessRun)
{
    // The zero-rate anchor of the acceptance contract: mounting a
    // fault-free device must not change a single simulation
    // counter relative to the device-less baseline. Random
    // overwrites into an undersized log force cleaning and segment
    // reuse, so the device's reset path really runs.
    trace::Trace trace("overwrite");
    Rng rng(11);
    for (int i = 0; i < 6000; ++i)
        trace.appendWrite(rng.nextUint(4096), 8);
    for (int i = 0; i < 500; ++i)
        trace.appendRead(rng.nextUint(4096), 8);

    stl::SimConfig bare;
    bare.translation = stl::TranslationKind::FiniteLogStructured;
    bare.finiteLog.capacityBytes = 8 * kMiB;
    bare.finiteLog.segmentBytes = 512 * kKiB;

    stl::SimConfig mounted = bare;
    mounted.zonedDevice = disk::ZonedDeviceOptions{};

    const stl::SimResult a = stl::Simulator(bare).run(trace);
    const stl::SimResult b = stl::Simulator(mounted).run(trace);

    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(a.readSeeks, b.readSeeks);
    EXPECT_EQ(a.writeSeeks, b.writeSeeks);
    EXPECT_EQ(a.cleaningSeeks, b.cleaningSeeks);
    EXPECT_EQ(a.cleaningMerges, b.cleaningMerges);
    EXPECT_EQ(a.mediaReadBytes, b.mediaReadBytes);
    EXPECT_EQ(a.mediaWriteBytes, b.mediaWriteBytes);
    EXPECT_EQ(a.seekTimeSec, b.seekTimeSec);

    // The device saw no faults and lost nothing...
    EXPECT_EQ(b.deviceReadRetries, 0u);
    EXPECT_EQ(b.deviceFailedReadSectors, 0u);
    EXPECT_EQ(b.deviceFailedWriteSectors, 0u);
    EXPECT_FALSE(b.deviceDegraded());
    // ...but its write pointers really moved: segment reuse by the
    // finite log shows up as zone resets.
    EXPECT_GT(b.deviceZoneResets, 0u);
}

} // namespace
} // namespace logseek::sweep
