/**
 * @file
 * End-to-end ingestion/replay byte-identity: a trace replayed from
 * an mmap'd LSKC file or a streaming generator must produce the
 * bit-identical SimResult (operator==, including the seekTimeSec
 * bit pattern) as the in-RAM path — across sweep --jobs {1, 2},
 * --replay-shards {1, 4}, and a checkpoint/resume cycle. Also pins
 * the source-lifecycle contract: the sweep drops its TraceSource
 * references once the last dependent cell completes.
 *
 * The suite name (IngestReplay*) keeps these tests inside the tsan
 * preset's test filter; the jobs=2 sweeps are what TSan exercises.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

#include "stl/simulator.h"
#include "sweep/sweep_runner.h"
#include "trace/lskc.h"
#include "util/random.h"
#include "workloads/stream.h"

namespace logseek::sweep
{
namespace
{

trace::Trace
randomTrace(std::uint64_t seed, std::size_t ops)
{
    Rng rng(seed);
    trace::Trace trace("ingest-" + std::to_string(seed));
    for (std::size_t i = 0; i < ops; ++i) {
        const SectorCount count = 1 + rng.nextUint(32);
        const Lba lba = rng.nextUint((1ULL << 22) - count);
        if (rng.nextBool(0.5))
            trace.appendWrite(lba, count, i * 5);
        else
            trace.appendRead(lba, count, i * 5);
    }
    return trace;
}

std::string
tempPath(const std::string &tag)
{
    return "/tmp/logseek_ingest_" + tag + "_" +
           std::to_string(::getpid());
}

stl::SimConfig
shardedConfig(int shards)
{
    stl::SimConfig config;
    config.replayShards = shards;
    return config;
}

/** Direct in-RAM replay under the given shard count. */
stl::SimResult
ramResult(const trace::Trace &trace, int shards)
{
    stl::Simulator simulator(shardedConfig(shards));
    return simulator.run(trace);
}

TEST(IngestReplay, LskcSweepMatchesRamAcrossJobsAndShards)
{
    const trace::Trace trace = randomTrace(21, 3000);
    const std::string path = tempPath("grid") + ".lskc";
    ASSERT_TRUE(trace::tryWriteLskcFile(path, trace).ok());

    const stl::SimResult ram1 = ramResult(trace, 1);
    const stl::SimResult ram4 = ramResult(trace, 4);

    for (const int jobs : {1, 2}) {
        std::vector<WorkloadSpec> workloads;
        workloads.push_back(WorkloadSpec::source(
            trace.name(), [path] {
                auto source = trace::LskcSource::tryOpen(path);
                EXPECT_TRUE(source.ok())
                    << source.status().message();
                return source.value();
            }));
        std::vector<ConfigSpec> configs;
        configs.push_back(
            ConfigSpec::fixed("shards1", shardedConfig(1)));
        configs.push_back(
            ConfigSpec::fixed("shards4", shardedConfig(4)));

        SweepOptions options;
        options.jobs = jobs;
        SweepRunner runner(workloads, configs, options);
        const SweepResult result = runner.run();

        ASSERT_EQ(result.rows.size(), 2u) << "jobs " << jobs;
        ASSERT_TRUE(result.row(0, 0).status.ok())
            << result.row(0, 0).status.message();
        ASSERT_TRUE(result.row(0, 1).status.ok());
        // Byte identity against the in-RAM path at every cell.
        EXPECT_TRUE(result.row(0, 0).result == ram1)
            << "jobs " << jobs;
        EXPECT_TRUE(result.row(0, 1).result == ram4)
            << "jobs " << jobs;
        EXPECT_EQ(result.row(0, 0).ops, trace.size());
    }
    std::remove(path.c_str());
}

TEST(IngestReplay, CheckpointResumeRestoresLskcCellsByteIdentically)
{
    const trace::Trace trace = randomTrace(23, 2000);
    const std::string path = tempPath("ckpt") + ".lskc";
    const std::string checkpoint = tempPath("ckpt") + ".lckp";
    ASSERT_TRUE(trace::tryWriteLskcFile(path, trace).ok());

    const auto specs = [&] {
        std::vector<WorkloadSpec> workloads;
        workloads.push_back(WorkloadSpec::source(
            trace.name(), [path] {
                return trace::LskcSource::tryOpen(path).value();
            }));
        return workloads;
    };
    std::vector<ConfigSpec> configs;
    configs.push_back(ConfigSpec::fixed("shards1", shardedConfig(1)));
    configs.push_back(ConfigSpec::fixed("shards4", shardedConfig(4)));

    SweepOptions first_options;
    first_options.jobs = 2;
    first_options.checkpointPath = checkpoint;
    SweepRunner first(specs(), configs, first_options);
    const SweepResult fresh = first.run();
    ASSERT_TRUE(fresh.row(0, 0).status.ok());
    ASSERT_TRUE(fresh.row(0, 1).status.ok());

    SweepOptions resume_options;
    resume_options.jobs = 2;
    resume_options.resumePath = checkpoint;
    SweepRunner second(specs(), configs, resume_options);
    const SweepResult resumed = second.run();

    for (std::size_t c = 0; c < configs.size(); ++c) {
        const RunRow &row = resumed.row(0, c);
        ASSERT_TRUE(row.status.ok()) << "config " << c;
        EXPECT_TRUE(row.restored) << "config " << c;
        // Restored rows carry the bit-identical result the fresh
        // replay produced, seekTimeSec bits included.
        EXPECT_TRUE(row.result == fresh.row(0, c).result)
            << "config " << c;
    }
    EXPECT_EQ(resumed.telemetry.restoredRuns, configs.size());

    std::remove(path.c_str());
    std::remove(checkpoint.c_str());
}

TEST(IngestReplay, StreamedSweepMatchesRamAcrossJobsAndShards)
{
    const workloads::StreamSpec spec =
        workloads::mixedStream("stream-mix", 3, 800, 31);
    workloads::WorkloadStream probe(spec);
    const trace::Trace materialized = trace::materialize(probe);

    const stl::SimResult ram1 = ramResult(materialized, 1);
    const stl::SimResult ram4 = ramResult(materialized, 4);

    for (const int jobs : {1, 2}) {
        std::vector<WorkloadSpec> workloads_list;
        workloads_list.push_back(WorkloadSpec::source(
            spec.name, [spec] {
                return std::make_shared<
                    const workloads::StreamSource>(spec);
            }));
        std::vector<ConfigSpec> configs;
        configs.push_back(
            ConfigSpec::fixed("shards1", shardedConfig(1)));
        configs.push_back(
            ConfigSpec::fixed("shards4", shardedConfig(4)));

        SweepOptions options;
        options.jobs = jobs;
        SweepRunner runner(workloads_list, configs, options);
        const SweepResult result = runner.run();

        ASSERT_TRUE(result.row(0, 0).status.ok())
            << result.row(0, 0).status.message();
        ASSERT_TRUE(result.row(0, 1).status.ok());
        EXPECT_TRUE(result.row(0, 0).result == ram1)
            << "jobs " << jobs;
        EXPECT_TRUE(result.row(0, 1).result == ram4)
            << "jobs " << jobs;
    }
}

TEST(IngestReplay, SourceIsReleasedWhenItsLastCellCompletes)
{
    const trace::Trace trace = randomTrace(27, 500);
    // The loader hands its only strong reference to the runner;
    // after run() returns every runner-side copy must be gone.
    auto holder = std::make_shared<
        std::shared_ptr<const trace::TraceSource>>(
        std::make_shared<const trace::InMemoryTraceSource>(trace));
    std::weak_ptr<const trace::TraceSource> alive = *holder;

    std::vector<WorkloadSpec> workloads_list;
    workloads_list.push_back(WorkloadSpec::source(
        trace.name(),
        [holder] { return std::move(*holder); }));
    std::vector<ConfigSpec> configs;
    configs.push_back(ConfigSpec::fixed("shards1", shardedConfig(1)));
    configs.push_back(ConfigSpec::fixed("shards4", shardedConfig(4)));

    SweepOptions options;
    options.jobs = 2;
    SweepRunner runner(workloads_list, configs, options);
    const SweepResult result = runner.run();
    ASSERT_TRUE(result.row(0, 0).status.ok());
    ASSERT_TRUE(result.row(0, 1).status.ok());
    EXPECT_TRUE(alive.expired())
        << "the sweep still holds a TraceSource reference after "
           "its last cell completed";
}

TEST(IngestReplay, TraceSizingConfigOnStreamedWorkloadFailsTyped)
{
    // A Trace-sizing config (ConfigSpec::deferred) cannot run on a
    // workload that never materializes a Trace; the cell must fail
    // with a typed InvalidArgument, not crash or silently skip.
    std::vector<WorkloadSpec> workloads_list;
    workloads_list.push_back(WorkloadSpec::source(
        "stream", [] {
            return std::make_shared<const workloads::StreamSource>(
                workloads::mixedStream("stream", 1, 100, 1));
        }));
    std::vector<ConfigSpec> configs;
    configs.push_back(ConfigSpec::deferred(
        "sized", [](const trace::Trace &) {
            return stl::SimConfig{};
        }));

    SweepRunner runner(workloads_list, configs, SweepOptions{});
    const SweepResult result = runner.run();
    ASSERT_EQ(result.rows.size(), 1u);
    const RunRow &row = result.row(0, 0);
    ASSERT_FALSE(row.status.ok());
    EXPECT_EQ(row.status.code(), StatusCode::InvalidArgument);
    EXPECT_NE(row.status.message().find("not RAM-backed"),
              std::string::npos)
        << row.status.message();
}

} // namespace
} // namespace logseek::sweep
