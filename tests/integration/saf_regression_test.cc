/**
 * @file
 * Regression guard over the whole workload registry: every named
 * profile must keep the seek-amplification direction documented in
 * the paper (Figure 11) and in DESIGN.md. These are the invariants
 * the workload tuning was calibrated to; a profile edit that flips
 * one of them silently breaks the reproduction.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "analysis/validating_observer.h"
#include "stl/simulator.h"
#include "util/logging.h"
#include "workloads/profiles.h"

namespace logseek
{
namespace
{

/** Paper-documented SAF direction for plain LS translation. */
enum class Direction
{
    Below,      ///< SAF clearly below 1 (log-friendly)
    Above,      ///< SAF clearly above 1 (log-sensitive)
    Borderline, ///< near 1; only sanity-checked
};

const std::map<std::string, Direction> &
expectations()
{
    static const std::map<std::string, Direction> table{
        // MSR: all below 1 except usr_1 and hm_1 (paper Fig. 11a).
        {"usr_0", Direction::Borderline},
        {"usr_1", Direction::Above},
        {"src2_2", Direction::Below},
        {"hm_1", Direction::Above},
        {"web_0", Direction::Below},
        {"wdev_0", Direction::Below},
        {"mds_0", Direction::Below},
        {"rsrch_0", Direction::Below},
        {"ts_0", Direction::Below},
        // CloudPhysics: majority above 1 (paper Fig. 11b).
        {"w84", Direction::Borderline},
        {"w95", Direction::Above},
        {"w64", Direction::Above},
        {"w93", Direction::Above},
        {"w20", Direction::Above},
        {"w91", Direction::Above},
        {"w76", Direction::Below},
        {"w36", Direction::Below},
        {"w89", Direction::Above},
        {"w106", Direction::Below},
        {"w55", Direction::Above},
        {"w33", Direction::Above},
    };
    return table;
}

class SafRegression : public ::testing::TestWithParam<std::string>
{
  protected:
    static double
    plainLsSaf(const std::string &name)
    {
        workloads::ProfileOptions options;
        options.scale = 0.008;
        const trace::Trace trace =
            workloads::makeWorkload(name, options);
        stl::SimConfig ls;
        ls.translation = stl::TranslationKind::LogStructured;
        // Paranoid invariant checking on every replayed op: a
        // contract violation panics instead of skewing the SAF.
        analysis::ValidatingObserver validator({.paranoid = true});
        const auto [nols, log] =
            stl::runWithBaseline(trace, ls, {&validator});
        return stl::seekAmplification(nols, log).value();
    }
};

TEST_P(SafRegression, LsDirectionMatchesPaper)
{
    const std::string &name = GetParam();
    const auto it = expectations().find(name);
    ASSERT_NE(it, expectations().end())
        << "workload missing from the expectation table";

    const double saf = plainLsSaf(name);
    switch (it->second) {
      case Direction::Below:
        EXPECT_LT(saf, 0.95) << name;
        break;
      case Direction::Above:
        EXPECT_GT(saf, 1.05) << name;
        break;
      case Direction::Borderline:
        EXPECT_GT(saf, 0.3) << name;
        EXPECT_LT(saf, 2.0) << name;
        break;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, SafRegression,
    ::testing::ValuesIn(workloads::allWorkloadNames()),
    [](const ::testing::TestParamInfo<std::string> &param_info) {
        return param_info.param;
    });

TEST(SafRegression, ExpectationTableCoversRegistry)
{
    for (const auto &name : workloads::allWorkloadNames())
        EXPECT_TRUE(expectations().contains(name)) << name;
    EXPECT_EQ(expectations().size(),
              workloads::allWorkloadNames().size());
}

} // namespace
} // namespace logseek
