/**
 * @file
 * Unit tests for the mis-ordered write metric (paper Figure 8).
 */

#include <gtest/gtest.h>

#include "analysis/misordered.h"
#include "workloads/builder.h"
#include "workloads/phases.h"

namespace logseek::analysis
{
namespace
{

TEST(MisorderedWrites, EmptyTrace)
{
    const trace::Trace trace("empty");
    const MisorderedWriteStats stats = countMisorderedWrites(trace);
    EXPECT_EQ(stats.writes, 0u);
    EXPECT_EQ(stats.misordered, 0u);
    EXPECT_DOUBLE_EQ(stats.fraction(), 0.0);
}

TEST(MisorderedWrites, AscendingWritesAreOrdered)
{
    trace::Trace trace("asc");
    for (Lba lba = 0; lba < 100; lba += 10)
        trace.appendWrite(lba, 10);
    const MisorderedWriteStats stats = countMisorderedWrites(trace);
    EXPECT_EQ(stats.misordered, 0u);
    EXPECT_EQ(stats.writes, 10u);
}

TEST(MisorderedWrites, DescendingPairIsMisordered)
{
    trace::Trace trace("pair");
    trace.appendWrite(10, 10); // starts at 10
    trace.appendWrite(0, 10);  // ends exactly at 10 -> the first
                               // write was mis-ordered
    const MisorderedWriteStats stats = countMisorderedWrites(trace);
    EXPECT_EQ(stats.misordered, 1u);
    EXPECT_DOUBLE_EQ(stats.fraction(), 0.5);
}

TEST(MisorderedWrites, DescendingRunIsAlmostAllMisordered)
{
    trace::Trace trace("desc");
    for (Lba lba = 100; lba > 0; lba -= 10)
        trace.appendWrite(lba - 10, 10);
    const MisorderedWriteStats stats = countMisorderedWrites(trace);
    // Every write except the last (lba 0) is followed by the write
    // that precedes it in LBA space.
    EXPECT_EQ(stats.misordered, 9u);
    EXPECT_EQ(stats.writes, 10u);
}

TEST(MisorderedWrites, WindowLimitsLookahead)
{
    trace::Trace trace("window");
    trace.appendWrite(100, 10);
    // Fill more than 256 KB (512 sectors) of intervening writes far
    // away, so the closing write at lba 90 falls outside the window.
    for (int i = 0; i < 64; ++i)
        trace.appendWrite(100000 + static_cast<Lba>(i) * 20, 16);
    trace.appendWrite(90, 10);
    const MisorderedWriteStats stats =
        countMisorderedWrites(trace, 256 * 1024);
    EXPECT_EQ(stats.misordered, 0u);

    // With a larger window the pair is caught.
    const MisorderedWriteStats wide =
        countMisorderedWrites(trace, 10 * 1024 * 1024);
    EXPECT_EQ(wide.misordered, 1u);
}

TEST(MisorderedWrites, ReadsAreIgnored)
{
    trace::Trace trace("mixed");
    trace.appendWrite(10, 10);
    trace.appendRead(0, 10);
    trace.appendRead(5000, 10);
    trace.appendWrite(0, 10);
    const MisorderedWriteStats stats = countMisorderedWrites(trace);
    EXPECT_EQ(stats.writes, 2u);
    EXPECT_EQ(stats.misordered, 1u);
}

TEST(MisorderedWrites, InterleavedPairPatternDetected)
{
    // The InterleavedPair writer emits a:0, b:0, a:1, b:1, ...;
    // every 'a' io except the last is followed later (within the
    // window) by nothing ending at its start, but each 'b' io at
    // half+i is preceded in LBA by a future a-write only at the
    // very boundary. Use the misorderedWrite primitive and check
    // the metric fires for descending patterns but not ascending.
    workloads::TraceBuilder desc_builder("d");
    workloads::misorderedWrite(desc_builder, {0, 320}, 16,
                               workloads::MisorderPattern::Descending);
    const auto desc_stats =
        countMisorderedWrites(desc_builder.take());
    EXPECT_GT(desc_stats.fraction(), 0.9);

    workloads::TraceBuilder seq_builder("s");
    workloads::sequentialWrite(seq_builder, {0, 320}, 16);
    const auto seq_stats = countMisorderedWrites(seq_builder.take());
    EXPECT_DOUBLE_EQ(seq_stats.fraction(), 0.0);
}

TEST(MisorderedWrites, ShuffledWritesLandInBetween)
{
    workloads::TraceBuilder builder("sh");
    Rng rng(5);
    workloads::shuffledSequentialWrite(builder, rng, {0, 2048}, 16,
                                       8);
    const auto stats = countMisorderedWrites(builder.take());
    // Local shuffling produces some, but far from all, mis-ordered
    // writes — the paper's "one in 20/25" regime.
    EXPECT_GT(stats.fraction(), 0.05);
    EXPECT_LT(stats.fraction(), 0.8);
}

} // namespace
} // namespace logseek::analysis
