/**
 * @file
 * Unit tests for the analysis observers (SeekCounter, CDFs,
 * fragment popularity).
 */

#include <gtest/gtest.h>

#include "util/logging.h"

#include "analysis/observers.h"
#include "stl/simulator.h"

namespace logseek::analysis
{
namespace
{

using stl::SimConfig;
using stl::Simulator;
using stl::TranslationKind;

SimConfig
ls()
{
    SimConfig config;
    config.translation = TranslationKind::LogStructured;
    return config;
}

trace::Trace
fragmentingTrace()
{
    trace::Trace trace("t");
    trace.appendWrite(0, 10);
    trace.appendWrite(4, 2);
    trace.appendRead(0, 10); // 3 fragments under LS
    trace.appendRead(0, 10);
    return trace;
}

TEST(SeekCounter, MatchesSimResultTotals)
{
    SeekCounter counter;
    Simulator simulator(ls());
    simulator.addObserver(&counter);
    const stl::SimResult result = simulator.run(fragmentingTrace());
    EXPECT_EQ(counter.readSeeks(), result.readSeeks);
    EXPECT_EQ(counter.writeSeeks(), result.writeSeeks);
    EXPECT_EQ(counter.totalSeeks(), result.totalSeeks());
}

TEST(SeekCounter, LongSeekThresholdFilters)
{
    trace::Trace trace("t");
    trace.appendWrite(0, 8);
    // ~0.9 MB away: long; then 16 KB away: short.
    trace.appendWrite(2000, 8);
    trace.appendWrite(2040, 8);

    SeekCounter counter(/*ops_per_bin=*/1,
                        /*long_seek_bytes=*/500 * 1000);
    SimConfig config;
    config.translation = TranslationKind::Conventional;
    Simulator simulator(config);
    simulator.addObserver(&counter);
    simulator.run(trace);

    EXPECT_EQ(counter.writeSeeks(), 2u);
    EXPECT_EQ(counter.longSeeks(), 1u);
    EXPECT_EQ(counter.longSeekSeries().binValue(1), 1);
    EXPECT_EQ(counter.longSeekSeries().binValue(2), 0);
}

TEST(SeekCounter, SeriesBinsByOpIndex)
{
    trace::Trace trace("t");
    for (int i = 0; i < 100; ++i)
        trace.appendWrite(static_cast<Lba>(i) * 100000, 8);
    SeekCounter counter(/*ops_per_bin=*/10);
    SimConfig config;
    config.translation = TranslationKind::Conventional;
    Simulator simulator(config);
    simulator.addObserver(&counter);
    simulator.run(trace);
    EXPECT_EQ(counter.longSeekSeries().binCount(), 10u);
}

TEST(AccessDistanceCdf, SequentialAccessesContributeZero)
{
    trace::Trace trace("t");
    trace.appendWrite(0, 8);
    trace.appendWrite(8, 8);
    trace.appendWrite(16, 8);
    AccessDistanceCdf cdf;
    SimConfig config;
    config.translation = TranslationKind::Conventional;
    Simulator simulator(config);
    simulator.addObserver(&cdf);
    simulator.run(trace);
    EXPECT_EQ(cdf.distancesGb().count(), 3u);
    EXPECT_DOUBLE_EQ(cdf.distancesGb().max(), 0.0);
}

TEST(AccessDistanceCdf, BackwardSeekIsNegative)
{
    trace::Trace trace("t");
    trace.appendWrite(100000, 8);
    trace.appendWrite(0, 8);
    AccessDistanceCdf cdf;
    SimConfig config;
    config.translation = TranslationKind::Conventional;
    Simulator simulator(config);
    simulator.addObserver(&cdf);
    simulator.run(trace);
    EXPECT_LT(cdf.distancesGb().min(), 0.0);
}

TEST(FragmentedReadCdf, CountsOnlyFragmentedReads)
{
    FragmentedReadCdf cdf;
    Simulator simulator(ls());
    simulator.addObserver(&cdf);
    simulator.run(fragmentingTrace());
    EXPECT_EQ(cdf.totalReads(), 2u);
    EXPECT_EQ(cdf.fragmentedReads(), 2u);
    EXPECT_EQ(cdf.totalFragments(), 6u);
    EXPECT_EQ(cdf.fragmentsPerRead().count(), 2u);
    EXPECT_DOUBLE_EQ(cdf.fragmentsPerRead().max(), 3.0);
}

TEST(FragmentedReadCdf, IgnoresUnfragmentedAndWrites)
{
    trace::Trace trace("t");
    trace.appendWrite(0, 10);
    trace.appendRead(0, 10); // single fragment
    FragmentedReadCdf cdf;
    Simulator simulator(ls());
    simulator.addObserver(&cdf);
    simulator.run(trace);
    EXPECT_EQ(cdf.totalReads(), 1u);
    EXPECT_EQ(cdf.fragmentedReads(), 0u);
    EXPECT_EQ(cdf.fragmentsPerRead().count(), 0u);
}

TEST(FragmentPopularity, CountsAccessesPerFragment)
{
    FragmentPopularity popularity;
    Simulator simulator(ls());
    simulator.addObserver(&popularity);
    simulator.run(fragmentingTrace());
    // 3 fragments, read twice each.
    EXPECT_EQ(popularity.fragmentCount(), 3u);
    EXPECT_EQ(popularity.totalAccesses(), 6u);
    const auto sorted = popularity.sortedByPopularity();
    ASSERT_EQ(sorted.size(), 3u);
    for (const auto &stat : sorted)
        EXPECT_EQ(stat.accesses, 2u);
}

TEST(FragmentPopularity, SortedDescendingByAccessCount)
{
    trace::Trace trace("t");
    trace.appendWrite(0, 10);
    trace.appendWrite(4, 2);   // fragments 0..9
    trace.appendWrite(20, 10);
    trace.appendWrite(24, 2);  // fragments 20..29
    for (int i = 0; i < 5; ++i)
        trace.appendRead(0, 10);
    trace.appendRead(20, 10);

    FragmentPopularity popularity;
    Simulator simulator(ls());
    simulator.addObserver(&popularity);
    simulator.run(trace);

    const auto sorted = popularity.sortedByPopularity();
    ASSERT_GE(sorted.size(), 2u);
    for (std::size_t i = 1; i < sorted.size(); ++i)
        EXPECT_LE(sorted[i].accesses, sorted[i - 1].accesses);
    EXPECT_EQ(sorted.front().accesses, 5u);
}

TEST(FragmentPopularity, BytesForAccessFraction)
{
    trace::Trace trace("t");
    trace.appendWrite(0, 10);
    trace.appendWrite(4, 2);
    for (int i = 0; i < 10; ++i)
        trace.appendRead(0, 10);

    FragmentPopularity popularity;
    Simulator simulator(ls());
    simulator.addObserver(&popularity);
    simulator.run(trace);

    const std::uint64_t all = popularity.bytesForAccessFraction(1.0);
    const std::uint64_t none = popularity.bytesForAccessFraction(0.0);
    EXPECT_EQ(none, 0u);
    EXPECT_EQ(all, 10 * kSectorBytes); // three fragments, 10 sectors
    EXPECT_LE(popularity.bytesForAccessFraction(0.5), all);
    EXPECT_THROW(popularity.bytesForAccessFraction(1.5), PanicError);
}

TEST(FragmentPopularity, IgnoresWritesAndCleanReads)
{
    trace::Trace trace("t");
    trace.appendWrite(0, 10);
    trace.appendRead(0, 10);
    FragmentPopularity popularity;
    Simulator simulator(ls());
    simulator.addObserver(&popularity);
    simulator.run(trace);
    EXPECT_EQ(popularity.fragmentCount(), 0u);
}

} // namespace
} // namespace logseek::analysis
