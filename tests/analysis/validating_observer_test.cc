/**
 * @file
 * Unit tests for the ValidatingObserver replay-invariant checker:
 * clean simulator runs must report zero violations, synthetic bad
 * events must be caught, and paranoid mode must panic immediately.
 */

#include <gtest/gtest.h>

#include "analysis/validating_observer.h"
#include "stl/simulator.h"
#include "util/logging.h"
#include "workloads/profiles.h"

namespace logseek::analysis
{
namespace
{

/** A well-formed single-fragment read event. */
stl::IoEvent
cleanReadEvent(std::uint64_t op_index = 0)
{
    stl::IoEvent event;
    event.opIndex = op_index;
    event.record = trace::makeRead(100, 8);
    event.segments.push_back(
        stl::Segment{SectorExtent{100, 8}, 5000, true});
    event.seeks.push_back(
        disk::SeekInfo{true, 4096, trace::IoType::Read});
    return event;
}

TEST(ValidatingObserver, AcceptsCleanEvent)
{
    ValidatingObserver observer;
    observer.onEvent(cleanReadEvent());
    EXPECT_EQ(observer.eventCount(), 1u);
    EXPECT_EQ(observer.violationCount(), 0u);
    EXPECT_TRUE(observer.status().ok());
}

TEST(ValidatingObserver, CatchesEmptySegments)
{
    ValidatingObserver observer;
    stl::IoEvent event = cleanReadEvent();
    event.segments.clear();
    event.seeks.clear();
    observer.onEvent(event);
    EXPECT_GT(observer.violationCount(), 0u);
    EXPECT_EQ(observer.status().code(),
              StatusCode::FailedPrecondition);
}

TEST(ValidatingObserver, CatchesCoverageGap)
{
    ValidatingObserver observer;
    stl::IoEvent event = cleanReadEvent();
    // Segment covers only half of the 8-sector extent.
    event.segments.front().logical = SectorExtent{100, 4};
    observer.onEvent(event);
    EXPECT_EQ(observer.violationCount(), 1u);
    ASSERT_FALSE(observer.recorded().empty());
    EXPECT_NE(observer.recorded().front().find("cover"),
              std::string::npos);
}

TEST(ValidatingObserver, CatchesOutOfOrderSegments)
{
    ValidatingObserver observer;
    stl::IoEvent event = cleanReadEvent();
    event.segments.front().logical = SectorExtent{104, 4};
    event.segments.push_back(
        stl::Segment{SectorExtent{100, 4}, 6000, true});
    observer.onEvent(event);
    EXPECT_GT(observer.violationCount(), 0u);
}

TEST(ValidatingObserver, CatchesExcessHits)
{
    ValidatingObserver observer;
    stl::IoEvent event = cleanReadEvent();
    event.seeks.clear();
    event.cacheHits = 1;
    event.prefetchHits = 1; // 2 hits on a 1-fragment read
    observer.onEvent(event);
    EXPECT_GT(observer.violationCount(), 0u);
}

TEST(ValidatingObserver, CatchesExcessSeeks)
{
    ValidatingObserver observer;
    stl::IoEvent event = cleanReadEvent();
    event.seeks.push_back(
        disk::SeekInfo{true, 4096, trace::IoType::Read});
    observer.onEvent(event); // 2 seeks, 1 media access
    EXPECT_GT(observer.violationCount(), 0u);
}

TEST(ValidatingObserver, CatchesPhantomSeek)
{
    ValidatingObserver observer;
    stl::IoEvent event = cleanReadEvent();
    event.seeks.front().seeked = false;
    event.seeks.front().distanceBytes = 0;
    observer.onEvent(event);
    EXPECT_GT(observer.violationCount(), 0u);
}

TEST(ValidatingObserver, CatchesWriteWithCacheHits)
{
    ValidatingObserver observer;
    stl::IoEvent event;
    event.record = trace::makeWrite(0, 8);
    event.segments.push_back(
        stl::Segment{SectorExtent{0, 8}, 0, true});
    event.cacheHits = 1;
    observer.onEvent(event);
    EXPECT_GT(observer.violationCount(), 0u);
}

TEST(ValidatingObserver, CatchesDefragFlagMismatch)
{
    ValidatingObserver observer;
    stl::IoEvent event = cleanReadEvent();
    event.defragRewrite = true; // but no defrag segments
    observer.onEvent(event);
    EXPECT_GT(observer.violationCount(), 0u);
}

TEST(ValidatingObserver, ParanoidModePanicsOnFirstViolation)
{
    ValidatingObserver observer({.paranoid = true});
    stl::IoEvent event = cleanReadEvent();
    event.segments.clear();
    event.seeks.clear();
    EXPECT_THROW(observer.onEvent(event), PanicError);
}

TEST(ValidatingObserver, RecordingIsBounded)
{
    ValidatingObserver observer({.paranoid = false,
                                 .maxRecorded = 2});
    stl::IoEvent bad = cleanReadEvent();
    bad.segments.clear();
    bad.seeks.clear();
    for (int i = 0; i < 5; ++i)
        observer.onEvent(bad);
    EXPECT_EQ(observer.violationCount(), 5u);
    EXPECT_EQ(observer.recorded().size(), 2u);
}

TEST(ValidatingObserver, StatusMessageCountsViolations)
{
    ValidatingObserver observer;
    stl::IoEvent bad = cleanReadEvent();
    bad.segments.clear();
    bad.seeks.clear();
    observer.onEvent(bad);
    observer.onEvent(bad);
    const Status status = observer.status();
    EXPECT_NE(status.message().find("2 replay invariant"),
              std::string::npos);
}

/**
 * The real engine must satisfy the validator: replay a workload
 * under every translation kind and mechanism combination in paranoid
 * mode (first violation would panic and fail the test).
 */
TEST(ValidatingObserver, CleanOnRealReplayAllConfigs)
{
    const trace::Trace trace =
        workloads::makeWorkload("hm_1", {.scale = 0.004, .seed = 7});

    std::vector<stl::SimConfig> configs;
    for (const auto kind :
         {stl::TranslationKind::Conventional,
          stl::TranslationKind::LogStructured,
          stl::TranslationKind::FiniteLogStructured,
          stl::TranslationKind::MediaCache}) {
        stl::SimConfig config;
        config.translation = kind;
        configs.push_back(config);
    }
    stl::SimConfig all;
    all.translation = stl::TranslationKind::LogStructured;
    all.defrag = stl::DefragConfig{};
    all.prefetch = stl::PrefetchConfig{};
    all.cache = stl::SelectiveCacheConfig{16 * kMiB};
    configs.push_back(all);

    for (const auto &config : configs) {
        ValidatingObserver observer({.paranoid = true});
        stl::Simulator simulator(config);
        simulator.addObserver(&observer);
        const stl::SimResult result = simulator.run(trace);
        EXPECT_EQ(observer.eventCount(), trace.size())
            << result.configLabel;
        EXPECT_EQ(observer.violationCount(), 0u)
            << result.configLabel;
    }
}

} // namespace
} // namespace logseek::analysis
