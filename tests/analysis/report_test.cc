/**
 * @file
 * Unit tests for the text table/series printers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/report.h"
#include "util/logging.h"
#include "util/units.h"

namespace logseek::analysis
{
namespace
{

TEST(TextTable, AlignsColumns)
{
    TextTable table({"name", "value"});
    table.addRow({"a", "1"});
    table.addRow({"longer-name", "22"});
    std::ostringstream out;
    table.print(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("longer-name"), std::string::npos);
    EXPECT_NE(text.find("---"), std::string::npos);
    // Four lines: header, rule, two rows.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(TextTable, RowWidthMismatchPanics)
{
    TextTable table({"a", "b"});
    EXPECT_THROW(table.addRow({"only-one"}), PanicError);
}

TEST(TextTable, EmptyHeaderPanics)
{
    EXPECT_THROW(TextTable({}), PanicError);
}

TEST(TextTable, RowCount)
{
    TextTable table({"x"});
    EXPECT_EQ(table.rowCount(), 0u);
    table.addRow({"1"});
    table.addRow({"2"});
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(FormatDouble, FixedPrecision)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(2.0, 0), "2");
    EXPECT_EQ(formatDouble(-0.5, 1), "-0.5");
}

TEST(FormatBytes, PicksHumanUnits)
{
    EXPECT_EQ(formatBytes(512), "512.0 B");
    EXPECT_EQ(formatBytes(2 * kKiB), "2.0 KiB");
    EXPECT_EQ(formatBytes(3 * kMiB + kMiB / 2), "3.5 MiB");
    EXPECT_EQ(formatBytes(kGiB), "1.0 GiB");
}

TEST(PrintSeries, EmitsHeaderAndPoints)
{
    std::ostringstream out;
    printSeries(out, "My Series", "x", "y",
                {{0.0, 0.5}, {1.0, 0.75}});
    const std::string text = out.str();
    EXPECT_NE(text.find("# My Series"), std::string::npos);
    EXPECT_NE(text.find("# x\ty"), std::string::npos);
    EXPECT_NE(text.find("0.0000\t0.500000"), std::string::npos);
    EXPECT_NE(text.find("1.0000\t0.750000"), std::string::npos);
}

TEST(PrintSeries, EmptySeriesJustPrintsHeader)
{
    std::ostringstream out;
    printSeries(out, "Empty", "x", "y", {});
    const std::string text = out.str();
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

} // namespace
} // namespace logseek::analysis
