/**
 * @file
 * Tests for the Chrome trace_event writer and ScopedSpan: emitted
 * JSON shape, argument escaping, the process-wide writer install
 * hook, and that spans are inert when telemetry is disabled or no
 * writer is installed.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/metrics.h"
#include "telemetry/trace_writer.h"

namespace logseek::telemetry
{
namespace
{

/** Arms telemetry for one test and restores the default (off). */
struct EnabledGuard
{
    EnabledGuard() { setEnabled(true); }
    ~EnabledGuard() { setEnabled(false); }
};

/** Installs a writer for one test and uninstalls it after. */
struct WriterGuard
{
    explicit WriterGuard(TraceEventWriter &writer)
    {
        setGlobalTraceWriter(&writer);
    }
    ~WriterGuard() { setGlobalTraceWriter(nullptr); }
};

std::string
rendered(const TraceEventWriter &writer)
{
    std::ostringstream out;
    writer.write(out);
    return out.str();
}

TEST(TelemetryTraceWriterTest, EmptyWriterRendersValidSkeleton)
{
    TraceEventWriter writer;
    EXPECT_EQ(writer.spanCount(), 0u);
    EXPECT_EQ(rendered(writer),
              "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"
              "]}\n");
}

TEST(TelemetryTraceWriterTest, EmitRendersCompleteEvents)
{
    TraceEventWriter writer;
    TraceSpan span;
    span.name = "cell:usr_1/LS";
    span.category = "sweep-cell";
    span.timestampUs = 10;
    span.durationUs = 25;
    span.tid = 3;
    span.args.emplace_back("attempt", "1");
    writer.emit(span);
    writer.emit(TraceSpan{"bare", "cat", 40, 2, 1, {}});

    const std::string json = rendered(writer);
    EXPECT_EQ(writer.spanCount(), 2u);
    EXPECT_NE(json.find("{\"name\": \"cell:usr_1/LS\", \"cat\": "
                        "\"sweep-cell\", \"ph\": \"X\", \"ts\": 10, "
                        "\"dur\": 25, \"pid\": 1, \"tid\": 3, "
                        "\"args\": {\"attempt\": \"1\"}},"),
              std::string::npos);
    // A span without args omits the "args" object entirely.
    EXPECT_NE(json.find("{\"name\": \"bare\", \"cat\": \"cat\", "
                        "\"ph\": \"X\", \"ts\": 40, \"dur\": 2, "
                        "\"pid\": 1, \"tid\": 1}\n"),
              std::string::npos);

    writer.clear();
    EXPECT_EQ(writer.spanCount(), 0u);
}

TEST(TelemetryTraceWriterTest, SpanNamesAndArgsAreEscaped)
{
    TraceEventWriter writer;
    TraceSpan span;
    span.name = "quote\"back\\slash";
    span.args.emplace_back("key\n", "value\t");
    writer.emit(span);

    const std::string json = rendered(writer);
    EXPECT_NE(json.find("quote\\\"back\\\\slash"),
              std::string::npos);
    EXPECT_NE(json.find("\"key\\n\": \"value\\t\""),
              std::string::npos);
}

TEST(TelemetryTraceWriterTest, ScopedSpanEmitsToGlobalWriter)
{
    const EnabledGuard armed;
    TraceEventWriter writer;
    const WriterGuard installed(writer);
    {
        ScopedSpan span("work", "test-cat");
        span.arg("k", "v");
    }
    ASSERT_EQ(writer.spanCount(), 1u);
    const std::string json = rendered(writer);
    EXPECT_NE(json.find("\"name\": \"work\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"test-cat\""),
              std::string::npos);
    EXPECT_NE(json.find("\"args\": {\"k\": \"v\"}"),
              std::string::npos);
}

TEST(TelemetryTraceWriterTest, ScopedSpanInertWithoutWriter)
{
    const EnabledGuard armed;
    ASSERT_EQ(globalTraceWriter(), nullptr);
    {
        ScopedSpan span("dropped", "test-cat");
        span.arg("k", "v"); // must not crash
    }
    // Nothing to assert beyond "no crash": there is no sink.
}

TEST(TelemetryTraceWriterTest, ScopedSpanInertWhileDisabled)
{
    TraceEventWriter writer;
    const WriterGuard installed(writer);
    {
        // enabled() is false: the span must not bind to the writer
        // even though one is installed.
        ScopedSpan span("dropped", "test-cat");
    }
    EXPECT_EQ(writer.spanCount(), 0u);
}

TEST(TelemetryTraceWriterTest, GlobalWriterInstallUninstall)
{
    EXPECT_EQ(globalTraceWriter(), nullptr);
    TraceEventWriter writer;
    setGlobalTraceWriter(&writer);
    EXPECT_EQ(globalTraceWriter(), &writer);
    setGlobalTraceWriter(nullptr);
    EXPECT_EQ(globalTraceWriter(), nullptr);
}

TEST(TelemetryTraceWriterTest, WriteFileAndFailure)
{
    TraceEventWriter writer;
    writer.emit(TraceSpan{"span", "cat", 0, 1, 1, {}});

    const std::string path =
        ::testing::TempDir() + "telemetry_trace_writer_test.json";
    EXPECT_TRUE(writer.writeFile(path));
    std::ifstream in(path);
    std::ostringstream contents;
    contents << in.rdbuf();
    EXPECT_EQ(contents.str(), rendered(writer));
    std::remove(path.c_str());

    EXPECT_FALSE(writer.writeFile("/nonexistent-dir/trace.json"));
}

TEST(TelemetryTraceWriterTest, NowUsIsMonotonic)
{
    TraceEventWriter writer;
    const std::uint64_t a = writer.nowUs();
    const std::uint64_t b = writer.nowUs();
    EXPECT_LE(a, b);
}

} // namespace
} // namespace logseek::telemetry
