/**
 * @file
 * Concurrency tests for the telemetry subsystem, run under TSan by
 * the tsan preset (test filter matches the "Telemetry" prefix):
 * many threads hammer one counter/histogram/gauge while snapshots
 * are taken concurrently, and scoped spans emit into one writer
 * from every thread. Final values must be exact after join.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/trace_writer.h"

namespace logseek::telemetry
{
namespace
{

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 20000;

/** Arms telemetry for one test and restores the default (off). */
struct EnabledGuard
{
    EnabledGuard() { setEnabled(true); }
    ~EnabledGuard() { setEnabled(false); }
};

TEST(TelemetryConcurrencyTest, CounterExactUnderContention)
{
    const EnabledGuard armed;
    Counter counter;
    std::vector<std::thread> threads;
    threads.reserve(kThreads + 1);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&counter] {
            for (int i = 0; i < kOpsPerThread; ++i)
                counter.add();
        });
    // A concurrent reader: values it sees are approximate but must
    // never exceed the final total.
    threads.emplace_back([&counter] {
        for (int i = 0; i < 1000; ++i) {
            const std::uint64_t seen = counter.value();
            ASSERT_LE(seen, std::uint64_t{kThreads} *
                                std::uint64_t{kOpsPerThread});
        }
    });
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(counter.value(), std::uint64_t{kThreads} *
                                   std::uint64_t{kOpsPerThread});
}

TEST(TelemetryConcurrencyTest, HistogramExactUnderContention)
{
    const EnabledGuard armed;
    LatencyHistogram histogram;
    std::vector<std::thread> threads;
    threads.reserve(kThreads + 1);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&histogram, t] {
            for (int i = 0; i < kOpsPerThread; ++i)
                histogram.record(
                    static_cast<std::uint64_t>(t * 1000 + 1));
        });
    threads.emplace_back([&histogram] {
        for (int i = 0; i < 200; ++i) {
            const HistogramSnapshot snap = histogram.snapshot();
            ASSERT_LE(snap.count, std::uint64_t{kThreads} *
                                      std::uint64_t{kOpsPerThread});
        }
    });
    for (std::thread &thread : threads)
        thread.join();

    const HistogramSnapshot snap = histogram.snapshot();
    EXPECT_EQ(snap.count, std::uint64_t{kThreads} *
                              std::uint64_t{kOpsPerThread});
    std::uint64_t expected_sum = 0;
    for (int t = 0; t < kThreads; ++t)
        expected_sum += std::uint64_t{kOpsPerThread} *
                        static_cast<std::uint64_t>(t * 1000 + 1);
    EXPECT_EQ(snap.sum, expected_sum);
}

TEST(TelemetryConcurrencyTest, GaugeConcurrentAddBalancesOut)
{
    const EnabledGuard armed;
    Gauge gauge;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&gauge] {
            for (int i = 0; i < kOpsPerThread; ++i) {
                gauge.add(1);
                gauge.add(-1);
            }
        });
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(gauge.value(), 0);
}

TEST(TelemetryConcurrencyTest, RegistryLookupsFromManyThreads)
{
    const EnabledGuard armed;
    Registry registry;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&registry] {
            // All threads race to create/find the same handles and
            // bump them; creation must happen exactly once.
            for (int i = 0; i < 500; ++i) {
                registry.counter("shared_total").add();
                registry.histogram("shared_ns").record(
                    static_cast<std::uint64_t>(i));
                (void)registry.snapshot();
            }
        });
    for (std::thread &thread : threads)
        thread.join();

    const MetricsSnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].value,
              std::uint64_t{kThreads} * 500u);
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].count,
              std::uint64_t{kThreads} * 500u);
}

TEST(TelemetryConcurrencyTest, ScopedSpansFromManyThreads)
{
    const EnabledGuard armed;
    TraceEventWriter writer;
    setGlobalTraceWriter(&writer);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([t] {
            for (int i = 0; i < 200; ++i) {
                ScopedSpan span("span:" + std::to_string(t),
                                "concurrency");
                span.arg("i", std::to_string(i));
            }
        });
    for (std::thread &thread : threads)
        thread.join();
    setGlobalTraceWriter(nullptr);
    EXPECT_EQ(writer.spanCount(),
              static_cast<std::size_t>(kThreads) * 200u);
}

TEST(TelemetryConcurrencyTest, EnableToggleRacesWithWriters)
{
    // Flipping the switch while writers run must be race-free; the
    // final count is only bounded, not exact, since adds near the
    // flips may or may not land.
    Counter counter;
    std::thread toggler([] {
        for (int i = 0; i < 2000; ++i)
            setEnabled(i % 2 == 0);
    });
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&counter] {
            for (int i = 0; i < kOpsPerThread; ++i)
                counter.add();
        });
    toggler.join();
    for (std::thread &thread : threads)
        thread.join();
    setEnabled(false);
    EXPECT_LE(counter.value(), std::uint64_t{kThreads} *
                                   std::uint64_t{kOpsPerThread});
}

} // namespace
} // namespace logseek::telemetry
