/**
 * @file
 * Tests for the telemetry exporters: JSON escaping, Prometheus name
 * sanitization, the JSON snapshot shape, the Prometheus text
 * exposition (one TYPE line per family, cumulative buckets, +Inf,
 * _sum/_count) and the extension-driven file dispatch.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/export.h"
#include "telemetry/metrics.h"

namespace logseek::telemetry
{
namespace
{

/** Arms telemetry for one test and restores the default (off). */
struct EnabledGuard
{
    EnabledGuard() { setEnabled(true); }
    ~EnabledGuard() { setEnabled(false); }
};

/** A small registry with one of everything, snapshotted. */
MetricsSnapshot
sampleSnapshot()
{
    const EnabledGuard armed;
    Registry registry;
    registry.counter("ops_total", "kind=\"read\"").add(3);
    registry.counter("ops_total", "kind=\"write\"").add(5);
    registry.gauge("queue_depth").set(-2);
    LatencyHistogram &latency = registry.histogram("latency_ns");
    latency.record(1);   // bucket 0, upper edge 1
    latency.record(5);   // bucket 2, upper edge 7
    latency.record(5);
    latency.record(100); // bucket 6, upper edge 127
    return registry.snapshot();
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

int
countOccurrences(const std::string &haystack,
                 const std::string &needle)
{
    int n = 0;
    for (std::size_t at = haystack.find(needle);
         at != std::string::npos;
         at = haystack.find(needle, at + needle.size()))
        ++n;
    return n;
}

TEST(TelemetryExportTest, JsonEscapeCoversControlCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\rc\td"), "a\\nb\\rc\\td");
    EXPECT_EQ(jsonEscape(std::string("\x01\x1f")), "\\u0001\\u001f");
    EXPECT_EQ(jsonEscape(""), "");
}

TEST(TelemetryExportTest, PrometheusNameSanitization)
{
    EXPECT_EQ(prometheusName("replay_seeks_total"),
              "replay_seeks_total");
    EXPECT_EQ(prometheusName("ns:sub_total"), "ns:sub_total");
    EXPECT_EQ(prometheusName("has-dash.and space"),
              "has_dash_and_space");
    EXPECT_EQ(prometheusName("9starts_with_digit"),
              "_9starts_with_digit");
    EXPECT_EQ(prometheusName(""), "_");
}

TEST(TelemetryExportTest, JsonSnapshotShape)
{
    std::ostringstream out;
    writeMetricsJson(sampleSnapshot(), out);
    const std::string json = out.str();

    EXPECT_NE(json.find("\"counters\": ["), std::string::npos);
    EXPECT_NE(json.find("\"gauges\": ["), std::string::npos);
    EXPECT_NE(json.find("\"histograms\": ["), std::string::npos);
    EXPECT_NE(json.find("{\"name\": \"ops_total\", \"labels\": "
                        "\"kind=\\\"read\\\"\", \"value\": 3}"),
              std::string::npos);
    EXPECT_NE(json.find("\"queue_depth\""), std::string::npos);
    EXPECT_NE(json.find("\"value\": -2"), std::string::npos);
    // Sparse bucket triples: [lower, upper, n].
    EXPECT_NE(json.find("\"count\": 4"), std::string::npos);
    EXPECT_NE(json.find("\"sum\": 111"), std::string::npos);
    EXPECT_NE(json.find("[0, 1, 1], [4, 7, 2], [64, 127, 1]"),
              std::string::npos);
}

TEST(TelemetryExportTest, PrometheusTypeLineOncePerFamily)
{
    std::ostringstream out;
    writePrometheusText(sampleSnapshot(), out);
    const std::string text = out.str();

    // Two ops_total series share a single TYPE line.
    EXPECT_EQ(countOccurrences(text, "# TYPE ops_total counter"), 1);
    EXPECT_NE(text.find("ops_total{kind=\"read\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("ops_total{kind=\"write\"} 5"),
              std::string::npos);
    EXPECT_EQ(countOccurrences(text, "# TYPE queue_depth gauge"),
              1);
    EXPECT_NE(text.find("queue_depth -2"), std::string::npos);
}

TEST(TelemetryExportTest, PrometheusHistogramIsCumulative)
{
    std::ostringstream out;
    writePrometheusText(sampleSnapshot(), out);
    const std::string text = out.str();

    EXPECT_EQ(countOccurrences(text, "# TYPE latency_ns histogram"),
              1);
    // Buckets are cumulative, keyed by inclusive upper edge.
    EXPECT_NE(text.find("latency_ns{le=\"1\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("latency_ns{le=\"7\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("latency_ns{le=\"127\"} 4"),
              std::string::npos);
    // +Inf always equals the total count.
    EXPECT_NE(text.find("latency_ns{le=\"+Inf\"} 4"),
              std::string::npos);
    EXPECT_NE(text.find("latency_ns_sum 111"), std::string::npos);
    EXPECT_NE(text.find("latency_ns_count 4"), std::string::npos);
}

TEST(TelemetryExportTest, PrometheusHistogramKeepsSeriesLabels)
{
    const EnabledGuard armed;
    Registry registry;
    registry.histogram("lat_ns", "stage=\"media\"").record(3);
    std::ostringstream out;
    writePrometheusText(registry.snapshot(), out);
    const std::string text = out.str();

    EXPECT_NE(text.find("lat_ns{stage=\"media\",le=\"3\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("lat_ns{stage=\"media\",le=\"+Inf\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("lat_ns_sum{stage=\"media\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("lat_ns_count{stage=\"media\"} 1"),
              std::string::npos);
}

TEST(TelemetryExportTest, FileDispatchByExtension)
{
    const MetricsSnapshot snapshot = sampleSnapshot();
    const std::string json_path =
        ::testing::TempDir() + "telemetry_export_test.json";
    const std::string prom_path =
        ::testing::TempDir() + "telemetry_export_test.prom";
    const std::string txt_path =
        ::testing::TempDir() + "telemetry_export_test.txt";

    EXPECT_TRUE(writeMetricsFile(snapshot, json_path));
    EXPECT_TRUE(writeMetricsFile(snapshot, prom_path));
    EXPECT_TRUE(writeMetricsFile(snapshot, txt_path));

    EXPECT_EQ(slurp(json_path).rfind("{\n", 0), 0u);
    EXPECT_EQ(slurp(prom_path).rfind("# TYPE", 0), 0u);
    EXPECT_EQ(slurp(txt_path).rfind("# TYPE", 0), 0u);

    std::remove(json_path.c_str());
    std::remove(prom_path.c_str());
    std::remove(txt_path.c_str());
}

TEST(TelemetryExportTest, FileWriteFailureReturnsFalse)
{
    EXPECT_FALSE(writeMetricsFile(
        sampleSnapshot(), "/nonexistent-dir/metrics.json"));
}

} // namespace
} // namespace logseek::telemetry
