/**
 * @file
 * Tests for the telemetry metrics core: log-bucket boundary math,
 * histogram merge algebra (commutative and associative), counter
 * and gauge behavior under the global enabled flag, ScopedTimer,
 * and the registry's stable handles and snapshots.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "telemetry/metrics.h"
#include "util/random.h"

namespace logseek::telemetry
{
namespace
{

/** Arms telemetry for one test and restores the default (off). */
struct EnabledGuard
{
    EnabledGuard() { setEnabled(true); }
    ~EnabledGuard() { setEnabled(false); }
};

HistogramSnapshot
snapshotOf(const std::vector<std::uint64_t> &samples)
{
    const EnabledGuard armed;
    LatencyHistogram histogram;
    for (const std::uint64_t sample : samples)
        histogram.record(sample);
    return histogram.snapshot();
}

TEST(TelemetryMetricsTest, BucketIndexPowerOfTwoBoundaries)
{
    // Bucket 0 holds {0, 1}; bucket i holds [2^i, 2^(i+1) - 1].
    EXPECT_EQ(bucketIndex(0), 0u);
    EXPECT_EQ(bucketIndex(1), 0u);
    EXPECT_EQ(bucketIndex(2), 1u);
    EXPECT_EQ(bucketIndex(3), 1u);
    EXPECT_EQ(bucketIndex(4), 2u);
    EXPECT_EQ(bucketIndex(7), 2u);
    EXPECT_EQ(bucketIndex(8), 3u);
    for (std::size_t i = 1; i < 63; ++i) {
        const std::uint64_t lo = std::uint64_t{1} << i;
        EXPECT_EQ(bucketIndex(lo), i) << "2^" << i;
        EXPECT_EQ(bucketIndex(lo - 1), i - 1) << "2^" << i << "-1";
        EXPECT_EQ(bucketIndex(2 * lo - 1), i)
            << "2^" << (i + 1) << "-1";
    }
    // The last bucket absorbs everything from 2^63 up.
    EXPECT_EQ(bucketIndex(std::uint64_t{1} << 63),
              kHistogramBuckets - 1);
    EXPECT_EQ(bucketIndex(~std::uint64_t{0}),
              kHistogramBuckets - 1);
}

TEST(TelemetryMetricsTest, BucketBoundsRoundTripThroughIndex)
{
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
        EXPECT_LE(bucketLowerBound(i), bucketUpperBound(i));
        EXPECT_EQ(bucketIndex(bucketLowerBound(i)), i);
        EXPECT_EQ(bucketIndex(bucketUpperBound(i)), i);
    }
    EXPECT_EQ(bucketLowerBound(0), 0u);
    EXPECT_EQ(bucketUpperBound(0), 1u);
    EXPECT_EQ(bucketUpperBound(kHistogramBuckets - 1),
              ~std::uint64_t{0});
}

TEST(TelemetryMetricsTest, MergeIsCommutativeAndAssociative)
{
    // Property test over random populations: merging bucket-wise
    // sums must not care about the order or grouping of merges.
    Rng rng(20260805);
    for (int round = 0; round < 20; ++round) {
        std::vector<std::uint64_t> sa, sb, sc;
        for (std::uint64_t n = rng.nextUint(200); n > 0; --n)
            sa.push_back(rng.nextUint(1u << 30));
        for (std::uint64_t n = rng.nextUint(200); n > 0; --n)
            sb.push_back(rng.nextUint(1u << 30));
        for (std::uint64_t n = rng.nextUint(200); n > 0; --n)
            sc.push_back(rng.nextUint(1u << 30));
        const HistogramSnapshot a = snapshotOf(sa);
        const HistogramSnapshot b = snapshotOf(sb);
        const HistogramSnapshot c = snapshotOf(sc);

        HistogramSnapshot ab = a;
        ab.merge(b);
        HistogramSnapshot ba = b;
        ba.merge(a);
        EXPECT_EQ(ab, ba) << "merge(a,b) != merge(b,a)";

        HistogramSnapshot ab_c = ab;
        ab_c.merge(c);
        HistogramSnapshot bc = b;
        bc.merge(c);
        HistogramSnapshot a_bc = a;
        a_bc.merge(bc);
        EXPECT_EQ(ab_c, a_bc)
            << "merge(merge(a,b),c) != merge(a,merge(b,c))";
    }
}

TEST(TelemetryMetricsTest, MergedSnapshotMatchesCombinedRecording)
{
    const EnabledGuard armed;
    LatencyHistogram separate_a, separate_b, combined;
    for (std::uint64_t v : {1u, 5u, 100u, 4096u}) {
        separate_a.record(v);
        combined.record(v);
    }
    for (std::uint64_t v : {2u, 5u, 1u << 20}) {
        separate_b.record(v);
        combined.record(v);
    }
    HistogramSnapshot merged = separate_a.snapshot();
    merged.merge(separate_b.snapshot());
    EXPECT_EQ(merged, combined.snapshot());
}

TEST(TelemetryMetricsTest, CounterIsNoOpWhileDisabled)
{
    Counter counter;
    counter.add();
    counter.add(41);
    EXPECT_EQ(counter.value(), 0u);

    const EnabledGuard armed;
    counter.add();
    counter.add(41);
    EXPECT_EQ(counter.value(), 42u);

    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(TelemetryMetricsTest, GaugeSetAddAndDisabledGate)
{
    Gauge gauge;
    gauge.set(7);
    EXPECT_EQ(gauge.value(), 0);

    const EnabledGuard armed;
    gauge.set(7);
    gauge.add(-2);
    EXPECT_EQ(gauge.value(), 5);
    gauge.reset();
    EXPECT_EQ(gauge.value(), 0);
}

TEST(TelemetryMetricsTest, HistogramCountSumAndPercentile)
{
    const EnabledGuard armed;
    LatencyHistogram histogram;
    EXPECT_EQ(histogram.snapshot().count, 0u);
    EXPECT_DOUBLE_EQ(histogram.snapshot().mean(), 0.0);
    EXPECT_EQ(histogram.snapshot().percentileUpperBound(0.5), 0u);

    for (int i = 0; i < 90; ++i)
        histogram.record(100); // bucket 6: [64, 127]
    for (int i = 0; i < 10; ++i)
        histogram.record(100000); // bucket 16: [65536, 131071]

    const HistogramSnapshot snap = histogram.snapshot();
    EXPECT_EQ(snap.count, 100u);
    EXPECT_EQ(snap.sum, 90u * 100u + 10u * 100000u);
    EXPECT_DOUBLE_EQ(snap.mean(), (9000.0 + 1000000.0) / 100.0);
    EXPECT_EQ(snap.percentileUpperBound(0.5), 127u);
    EXPECT_EQ(snap.percentileUpperBound(0.99), 131071u);
}

TEST(TelemetryMetricsTest, ScopedTimerRecordsOnlyWhenEnabled)
{
    LatencyHistogram histogram;
    {
        const ScopedTimer timer(&histogram); // disabled: inert
    }
    EXPECT_EQ(histogram.snapshot().count, 0u);

    const EnabledGuard armed;
    {
        const ScopedTimer timer(&histogram);
    }
    {
        const ScopedTimer timer(nullptr); // null target: inert
    }
    EXPECT_EQ(histogram.snapshot().count, 1u);
}

TEST(TelemetryMetricsTest, RegistryHandlesAreStable)
{
    Registry registry;
    Counter &a = registry.counter("test_total", "k=\"1\"");
    Counter &b = registry.counter("test_total", "k=\"1\"");
    Counter &other = registry.counter("test_total", "k=\"2\"");
    EXPECT_EQ(&a, &b);
    EXPECT_NE(&a, &other);

    LatencyHistogram &h = registry.histogram("test_latency_ns");
    EXPECT_EQ(&h, &registry.histogram("test_latency_ns"));
}

TEST(TelemetryMetricsTest, RegistrySnapshotCarriesNamesAndLabels)
{
    const EnabledGuard armed;
    Registry registry;
    registry.counter("zz_total").add(3);
    registry.counter("aa_total", "x=\"1\"").add(1);
    registry.gauge("depth").set(5);
    registry.histogram("lat_ns", "s=\"m\"").record(9);

    const MetricsSnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    // std::map ordering: snapshots come out sorted by (name,
    // labels), which the Prometheus exporter relies on.
    EXPECT_EQ(snap.counters[0].name, "aa_total");
    EXPECT_EQ(snap.counters[1].name, "zz_total");

    ASSERT_NE(snap.findCounter("zz_total"), nullptr);
    EXPECT_EQ(snap.findCounter("zz_total")->value, 3u);
    ASSERT_NE(snap.findCounter("aa_total", "x=\"1\""), nullptr);
    EXPECT_EQ(snap.findCounter("aa_total"), nullptr);
    ASSERT_NE(snap.findGauge("depth"), nullptr);
    EXPECT_EQ(snap.findGauge("depth")->value, 5);
    ASSERT_NE(snap.findHistogram("lat_ns", "s=\"m\""), nullptr);
    EXPECT_EQ(snap.findHistogram("lat_ns", "s=\"m\"")->count, 1u);
    EXPECT_EQ(snap.findHistogram("lat_ns"), nullptr);
}

TEST(TelemetryMetricsTest, ResetValuesZeroesWithoutInvalidating)
{
    const EnabledGuard armed;
    Registry registry;
    Counter &counter = registry.counter("reset_total");
    counter.add(5);
    registry.histogram("reset_ns").record(1);
    registry.gauge("reset_depth").set(2);

    registry.resetValues();
    // The handle still works and the slate is clean.
    EXPECT_EQ(counter.value(), 0u);
    counter.add(1);
    EXPECT_EQ(registry.snapshot().findCounter("reset_total")->value,
              1u);
    EXPECT_EQ(registry.snapshot().findHistogram("reset_ns")->count,
              0u);
    EXPECT_EQ(registry.snapshot().findGauge("reset_depth")->value,
              0);
}

TEST(TelemetryMetricsTest, GlobalRegistryIsASingleton)
{
    EXPECT_EQ(&Registry::global(), &Registry::global());
}

} // namespace
} // namespace logseek::telemetry
