/**
 * @file
 * Unit tests for the opportunistic defragmentation policy.
 */

#include <gtest/gtest.h>

#include "stl/defrag.h"
#include "util/logging.h"

namespace logseek::stl
{
namespace
{

TEST(Defragmenter, DefaultRewritesAnyFragmentedRead)
{
    Defragmenter defrag;
    EXPECT_FALSE(defrag.onRead({0, 10}, 1)); // unfragmented
    EXPECT_TRUE(defrag.onRead({0, 10}, 2));
    EXPECT_TRUE(defrag.onRead({0, 10}, 7));
    EXPECT_EQ(defrag.rewriteCount(), 2u);
}

TEST(Defragmenter, MinFragmentsThresholdFilters)
{
    Defragmenter defrag(DefragConfig{.minFragments = 4,
                                     .minAccesses = 1});
    EXPECT_FALSE(defrag.onRead({0, 10}, 2));
    EXPECT_FALSE(defrag.onRead({0, 10}, 3));
    EXPECT_TRUE(defrag.onRead({0, 10}, 4));
}

TEST(Defragmenter, MinAccessesWaitsForRepeats)
{
    Defragmenter defrag(DefragConfig{.minFragments = 2,
                                     .minAccesses = 3});
    EXPECT_FALSE(defrag.onRead({0, 10}, 2)); // access 1
    EXPECT_FALSE(defrag.onRead({0, 10}, 2)); // access 2
    EXPECT_TRUE(defrag.onRead({0, 10}, 2));  // access 3
}

TEST(Defragmenter, AccessCountsArePerRange)
{
    Defragmenter defrag(DefragConfig{.minFragments = 2,
                                     .minAccesses = 2});
    EXPECT_FALSE(defrag.onRead({0, 10}, 2));
    EXPECT_FALSE(defrag.onRead({100, 10}, 2)); // different range
    EXPECT_TRUE(defrag.onRead({0, 10}, 2));
    EXPECT_TRUE(defrag.onRead({100, 10}, 2));
}

TEST(Defragmenter, CountResetsAfterRewrite)
{
    Defragmenter defrag(DefragConfig{.minFragments = 2,
                                     .minAccesses = 2});
    EXPECT_FALSE(defrag.onRead({0, 10}, 2));
    EXPECT_TRUE(defrag.onRead({0, 10}, 2));
    // After the rewrite the counter starts over.
    EXPECT_FALSE(defrag.onRead({0, 10}, 2));
    EXPECT_TRUE(defrag.onRead({0, 10}, 2));
}

TEST(Defragmenter, UnfragmentedReadsDoNotAdvanceCounts)
{
    Defragmenter defrag(DefragConfig{.minFragments = 2,
                                     .minAccesses = 2});
    EXPECT_FALSE(defrag.onRead({0, 10}, 1));
    EXPECT_FALSE(defrag.onRead({0, 10}, 1));
    EXPECT_FALSE(defrag.onRead({0, 10}, 2)); // first fragmented access
}

TEST(Defragmenter, RangesWithDifferentSizesAreDistinct)
{
    Defragmenter defrag(DefragConfig{.minFragments = 2,
                                     .minAccesses = 2});
    EXPECT_FALSE(defrag.onRead({0, 10}, 2));
    EXPECT_FALSE(defrag.onRead({0, 20}, 2)); // same start, other size
    EXPECT_TRUE(defrag.onRead({0, 10}, 2));
}

TEST(Defragmenter, InvalidConfigPanics)
{
    EXPECT_THROW(Defragmenter(DefragConfig{.minFragments = 1,
                                           .minAccesses = 1}),
                 PanicError);
    EXPECT_THROW(Defragmenter(DefragConfig{.minFragments = 2,
                                           .minAccesses = 0}),
                 PanicError);
}

} // namespace
} // namespace logseek::stl
