/**
 * @file
 * Differential regression test for the batched translation API.
 *
 * translateReadBatchInto / placeWriteBatchInto are pinned to the
 * scalar per-record loop: two instances of every layer replay the
 * same 1M+ randomized operations — one through the batch calls,
 * one record-at-a-time — and every record's segment slice must be
 * exactly equal. This is the contract the batch-first replay
 * engine builds on (docs/parallel_replay.md): batching is an
 * execution strategy, never a semantic change.
 *
 * The finite-log and media-cache layers are sized so cleaning is
 * never owed — their batched write path is documented as a plain
 * scalar loop (the engine keeps maintenance layers on the scalar
 * path), so the interesting surface here is translation identity
 * while the mapping mutates underneath.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "stl/conventional.h"
#include "stl/finite_log.h"
#include "stl/io_batch.h"
#include "stl/log_structured.h"
#include "stl/media_cache.h"
#include "stl/translation_layer.h"
#include "util/random.h"

namespace logseek::stl
{
namespace
{

constexpr Lba kSpace = 1 << 20;

enum class LayerKind
{
    Conventional,
    LogStructured,
    FiniteLog,
    MediaCache,
};

std::unique_ptr<TranslationLayer>
makeLayer(LayerKind kind)
{
    switch (kind) {
    case LayerKind::Conventional:
        return std::make_unique<ConventionalLayer>();
    case LayerKind::LogStructured:
        return std::make_unique<LogStructuredLayer>(kSpace);
    case LayerKind::FiniteLog: {
        // Capacity far above the test's total written volume
        // (~3.5 GiB): cleaning must never trigger, so both
        // instances' logs evolve identically with no maintenance()
        // interleaved.
        FiniteLogConfig config;
        config.capacityBytes = 8ULL << 30;
        config.segmentBytes = 64 * kMiB;
        return std::make_unique<FiniteLogStructuredLayer>(kSpace,
                                                          config);
    }
    case LayerKind::MediaCache: {
        MediaCacheConfig config;
        config.cacheBytes = 8ULL << 30; // never passes the merge
                                        // threshold
        return std::make_unique<MediaCacheLayer>(kSpace, config);
    }
    }
    return nullptr;
}

const char *
toString(LayerKind kind)
{
    switch (kind) {
    case LayerKind::Conventional: return "conventional";
    case LayerKind::LogStructured: return "log-structured";
    case LayerKind::FiniteLog: return "finite-log";
    case LayerKind::MediaCache: return "media-cache";
    }
    return "?";
}

/**
 * Drive `scalar` record-at-a-time and `batch` through the batched
 * calls over the same randomized operation stream; every record's
 * segments must match exactly.
 */
void
runDifferential(LayerKind kind, std::uint64_t seed)
{
    auto scalar_layer = makeLayer(kind);
    auto batch_layer = makeLayer(kind);
    ASSERT_NE(scalar_layer, nullptr);
    ASSERT_NE(batch_layer, nullptr);

    Rng rng(seed);
    SegmentBuffer scalar_out;
    SegmentBufferBatch batch_out;
    std::vector<SectorExtent> extents;

    std::size_t ops = 0;
    while (ops < 1'000'000) {
        // One same-type chunk per iteration, like the engine's
        // run-splitting; chunk lengths cross every batch-boundary
        // alignment.
        const std::size_t chunk =
            1 + static_cast<std::size_t>(rng.nextUint(256));
        const bool writes = rng.nextBool(0.4);
        extents.clear();
        for (std::size_t i = 0; i < chunk; ++i) {
            const SectorCount count = 1 + rng.nextUint(32);
            const Lba lba = rng.nextUint(kSpace - count);
            extents.push_back(SectorExtent{lba, count});
        }

        if (writes)
            batch_layer->placeWriteBatchInto(extents, batch_out);
        else
            batch_layer->translateReadBatchInto(extents, batch_out);
        ASSERT_EQ(batch_out.records(), chunk) << toString(kind);

        for (std::size_t i = 0; i < chunk; ++i) {
            if (writes)
                scalar_layer->placeWriteInto(extents[i],
                                             scalar_out);
            else
                scalar_layer->translateReadInto(extents[i],
                                                scalar_out);
            const Segment *begin = batch_out.recordBegin(i);
            const Segment *end = batch_out.recordEnd(i);
            const bool equal =
                static_cast<std::size_t>(end - begin) ==
                    scalar_out.size() &&
                std::equal(begin, end, scalar_out.begin());
            ASSERT_TRUE(equal)
                << toString(kind) << ": record " << i << " (op "
                << ops + i << ", "
                << (writes ? "write" : "read") << " of "
                << extents[i].count << " @ " << extents[i].start
                << ") diverged from the scalar loop";
        }
        ops += chunk;
    }

    // The two instances saw identical operations, so their final
    // static fragmentation must agree too.
    EXPECT_EQ(scalar_layer->staticFragmentCount(),
              batch_layer->staticFragmentCount())
        << toString(kind);
}

TEST(BatchTranslate, ConventionalMatchesScalarLoop)
{
    runDifferential(LayerKind::Conventional, 0xba7c401);
}

TEST(BatchTranslate, LogStructuredMatchesScalarLoop)
{
    runDifferential(LayerKind::LogStructured, 0xba7c402);
}

TEST(BatchTranslate, FiniteLogMatchesScalarLoop)
{
    runDifferential(LayerKind::FiniteLog, 0xba7c403);
}

TEST(BatchTranslate, MediaCacheMatchesScalarLoop)
{
    runDifferential(LayerKind::MediaCache, 0xba7c404);
}

} // namespace
} // namespace logseek::stl
