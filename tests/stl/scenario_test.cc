/**
 * @file
 * Integration tests reproducing the paper's worked examples:
 * Figure 6 (opportunistic defragmentation) and Figure 9
 * (look-ahead-behind prefetching), with seek counts checked
 * step by step.
 */

#include <gtest/gtest.h>

#include "util/logging.h"

#include <vector>

#include "stl/simulator.h"

namespace logseek::stl
{
namespace
{

/** Observer collecting per-op seek counts. */
class SeeksPerOp : public SimObserver
{
  public:
    void onEvent(const IoEvent &event) override
    {
        seeks.push_back(event.seeks.size());
        fragments.push_back(event.segments.size());
    }

    std::vector<std::size_t> seeks;
    std::vector<std::size_t> fragments;
};

/**
 * Figure 6 setup: LBAs 1..6 live contiguously in the log, then
 * LBAs 3 and 5 are updated, fragmenting the range 2..5.
 */
trace::Trace
figure6Trace(bool with_final_reads)
{
    trace::Trace trace("fig6");
    trace.appendWrite(1, 6); // t0: establish 1..6 in the log
    trace.appendWrite(3, 1); // tA
    trace.appendWrite(5, 1); // tB
    trace.appendRead(2, 4);  // tC: Rd 2-5, fragmented
    if (with_final_reads) {
        for (int i = 0; i < 5; ++i)
            trace.appendRead(2, 4); // tE: Rd 2-5 x5
        trace.appendRead(1, 2);     // tF: Rd 1-2
    }
    return trace;
}

TEST(Figure6, FragmentedReadIncursThreeExtraSeeks)
{
    SeeksPerOp observer;
    SimConfig config;
    config.translation = TranslationKind::LogStructured;
    Simulator simulator(config);
    simulator.addObserver(&observer);
    simulator.run(figure6Trace(false));

    // Rd 2-5 resolves to four fragments: 2 (original run), 3 (log),
    // 4 (original run), 5 (log) = 4 seeks, i.e. 3 more than the
    // single seek an unfragmented read would pay.
    ASSERT_EQ(observer.fragments.size(), 4u);
    EXPECT_EQ(observer.fragments[3], 4u);
    EXPECT_EQ(observer.seeks[3], 4u);
}

TEST(Figure6, DefragmentationMakesRepeatReadsSeekFree)
{
    SeeksPerOp observer;
    SimConfig config;
    config.translation = TranslationKind::LogStructured;
    config.defrag = DefragConfig{};
    Simulator simulator(config);
    simulator.addObserver(&observer);
    const SimResult result = simulator.run(figure6Trace(true));

    // Two rewrites: the first fragmented Rd 2-5 (tD) and the final
    // Rd 1-2, which the earlier relocation itself fragmented.
    EXPECT_EQ(result.defragRewrites, 2u);

    // tD: the defragmenting rewrite happened inside op 3; ops 4..8
    // (Rd 2-5 x5) now read one contiguous extent each: exactly one
    // seek (back from the frontier), no fragmentation seeks.
    for (std::size_t op = 4; op <= 8; ++op) {
        EXPECT_EQ(observer.fragments[op], 1u) << "op " << op;
        EXPECT_EQ(observer.seeks[op], 1u) << "op " << op;
    }

    // tF: Rd 1-2 now pays an extra seek *because of* the earlier
    // defragmentation: LBA 1 is still in the original run, LBA 2
    // moved to the log head. Being fragmented, it is rewritten in
    // turn, adding one defrag write seek: 2 read + 1 write.
    EXPECT_EQ(observer.fragments[9], 2u);
    EXPECT_EQ(observer.seeks[9], 3u);
}

TEST(Figure6, WithoutDefragEveryRepeatReadPaysFragmentation)
{
    SeeksPerOp observer;
    SimConfig config;
    config.translation = TranslationKind::LogStructured;
    Simulator simulator(config);
    simulator.addObserver(&observer);
    simulator.run(figure6Trace(true));

    for (std::size_t op = 4; op <= 8; ++op)
        EXPECT_EQ(observer.seeks[op], 4u) << "op " << op;
    // Rd 1-2 is NOT fragmented without defrag: LBAs 1 and 2 are
    // both still in the original contiguous run.
    EXPECT_EQ(observer.fragments[9], 1u);
}

/**
 * Figure 9 setup: LBAs 1..6 in the log, then 3, 2, 4 updated in
 * that order. Rd 1-5 becomes five fragments.
 */
trace::Trace
figure9Trace()
{
    trace::Trace trace("fig9");
    trace.appendWrite(1, 6); // initial state
    trace.appendWrite(3, 1); // tA
    trace.appendWrite(2, 1); // tB
    trace.appendWrite(4, 1); // tC
    trace.appendRead(1, 5);  // tD: Rd 1-5
    trace.appendRead(1, 5);  // tD': Rd 1-5 again
    return trace;
}

TEST(Figure9, WithoutPrefetchingFiveSeeksPerRead)
{
    SeeksPerOp observer;
    SimConfig config;
    config.translation = TranslationKind::LogStructured;
    Simulator simulator(config);
    simulator.addObserver(&observer);
    simulator.run(figure9Trace());

    // Rd 1-5 = fragments 1 (run), 2 (log), 3 (log, *behind* 2),
    // 4 (log), 5 (run): five seeks, including the missed rotation
    // stepping back from LBA 2's to LBA 3's log position.
    EXPECT_EQ(observer.fragments[4], 5u);
    EXPECT_EQ(observer.seeks[4], 5u);
    EXPECT_EQ(observer.seeks[5], 5u); // no better on the re-read
}

TEST(Figure9, LookAheadBehindCutsSeeksToThree)
{
    SeeksPerOp observer;
    SimConfig config;
    config.translation = TranslationKind::LogStructured;
    config.prefetch = PrefetchConfig{
        .lookAheadBytes = kSectorBytes,
        .lookBehindBytes = kSectorBytes,
        .bufferBytes = kMiB,
    };
    Simulator simulator(config);
    simulator.addObserver(&observer);
    const SimResult result = simulator.run(figure9Trace());

    // Reading LBA 2's fragment fetches one sector each side, which
    // is exactly LBA 3 (behind) and LBA 4 (ahead): the paper's
    // "LBA 3 and 4 are prefetched upon reading LBA 2".
    EXPECT_EQ(observer.seeks[4], 3u);
    EXPECT_GE(result.prefetchHits, 2u);
}

TEST(Figure9, ConventionalBaselinePaysOneSeekPerRead)
{
    SeeksPerOp observer;
    SimConfig config;
    config.translation = TranslationKind::Conventional;
    Simulator simulator(config);
    simulator.addObserver(&observer);
    simulator.run(figure9Trace());

    EXPECT_EQ(observer.fragments[4], 1u);
    EXPECT_LE(observer.seeks[4], 1u);
}

} // namespace
} // namespace logseek::stl
