/**
 * @file
 * Property-based tests for ExtentMap: random mapping sequences are
 * checked against a brute-force per-sector reference model.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "stl/extent_map.h"
#include "util/random.h"

namespace logseek::stl
{
namespace
{

/** Per-sector reference model: sector -> pba (absent = hole). */
class ReferenceMap
{
  public:
    void
    mapRange(Lba lba, Pba pba, SectorCount count)
    {
        for (SectorCount i = 0; i < count; ++i)
            sectors_[lba + i] = pba + i;
    }

    /** pba of a sector, with identity holes. */
    Pba
    lookup(Lba lba) const
    {
        const auto it = sectors_.find(lba);
        return it == sectors_.end() ? lba : it->second;
    }

    bool
    isMapped(Lba lba) const
    {
        return sectors_.contains(lba);
    }

    SectorCount mappedSectors() const { return sectors_.size(); }

  private:
    std::map<Lba, Pba> sectors_;
};

void
expectEquivalent(const ExtentMap &map, const ReferenceMap &reference,
                 Lba space_end)
{
    // Per-sector agreement over the whole space.
    const auto segments = map.translate({0, space_end});
    Lba cursor = 0;
    for (const auto &segment : segments) {
        ASSERT_EQ(segment.logical.start, cursor)
            << "segments must tile the request";
        for (SectorCount i = 0; i < segment.logical.count; ++i) {
            const Lba lba = segment.logical.start + i;
            ASSERT_EQ(segment.pba + i, reference.lookup(lba))
                << "pba mismatch at lba " << lba;
            ASSERT_EQ(segment.mapped, reference.isMapped(lba))
                << "mapped flag mismatch at lba " << lba;
        }
        cursor = segment.logical.end();
    }
    ASSERT_EQ(cursor, space_end);
    ASSERT_EQ(map.mappedSectors(), reference.mappedSectors());
}

void
expectWellFormed(const ExtentMap &map)
{
    // Entries are disjoint, sorted, non-empty, and maximally
    // coalesced (no two adjacent entries are mergeable).
    Lba prev_end = 0;
    Pba prev_pba_end = 0;
    bool first = true;
    map.forEachEntry([&](Lba lba, Pba pba, SectorCount count) {
        ASSERT_GT(count, 0u);
        if (!first) {
            ASSERT_GE(lba, prev_end) << "entries overlap";
            const bool mergeable =
                lba == prev_end && pba == prev_pba_end;
            ASSERT_FALSE(mergeable) << "uncoalesced entries at "
                                    << lba;
        }
        prev_end = lba + count;
        prev_pba_end = pba + count;
        first = false;
    });
}

struct FuzzParams
{
    std::uint64_t seed;
    int operations;
    Lba space;
    SectorCount max_io;
};

class ExtentMapFuzz : public ::testing::TestWithParam<FuzzParams>
{
};

TEST_P(ExtentMapFuzz, MatchesReferenceModel)
{
    const FuzzParams params = GetParam();
    Rng rng(params.seed);
    ExtentMap map;
    ReferenceMap reference;
    Pba frontier = params.space; // log-style fresh pba per write

    for (int op = 0; op < params.operations; ++op) {
        const SectorCount count =
            1 + rng.nextUint(params.max_io);
        const Lba lba = rng.nextUint(params.space - count);
        map.mapRange(lba, frontier, count);
        reference.mapRange(lba, frontier, count);
        frontier += count;

        if (op % 16 == 0)
            expectWellFormed(map);
    }
    expectEquivalent(map, reference, params.space);
    expectWellFormed(map);
}

INSTANTIATE_TEST_SUITE_P(
    RandomSequences, ExtentMapFuzz,
    ::testing::Values(
        FuzzParams{1, 200, 256, 16}, FuzzParams{2, 500, 512, 8},
        FuzzParams{3, 500, 128, 32}, FuzzParams{4, 1000, 1024, 64},
        FuzzParams{5, 2000, 300, 10}, FuzzParams{6, 100, 64, 64},
        FuzzParams{7, 3000, 2048, 24},
        FuzzParams{8, 1500, 4096, 128}));

/** Sequential-write pattern must coalesce into a single entry. */
TEST(ExtentMapProperty, SequentialLogWritesCoalesceCompletely)
{
    ExtentMap map;
    Pba frontier = 100000;
    for (Lba lba = 0; lba < 1000; lba += 10) {
        map.mapRange(lba, frontier, 10);
        frontier += 10;
    }
    EXPECT_EQ(map.entryCount(), 1u);
    EXPECT_EQ(map.mappedSectors(), 1000u);
}

/** Reverse-order writes to adjacent LBAs never coalesce. */
TEST(ExtentMapProperty, ReverseLogWritesStayFragmented)
{
    ExtentMap map;
    Pba frontier = 100000;
    for (Lba lba = 1000; lba > 0; lba -= 10) {
        map.mapRange(lba - 10, frontier, 10);
        frontier += 10;
    }
    EXPECT_EQ(map.entryCount(), 100u);
}

/** Overwriting everything with one extent collapses the map. */
TEST(ExtentMapProperty, FullRewriteCollapsesToOneEntry)
{
    Rng rng(42);
    ExtentMap map;
    Pba frontier = 10000;
    for (int i = 0; i < 300; ++i) {
        const SectorCount count = 1 + rng.nextUint(16);
        const Lba lba = rng.nextUint(1024 - count);
        map.mapRange(lba, frontier, count);
        frontier += count;
    }
    map.mapRange(0, frontier, 1024);
    EXPECT_EQ(map.entryCount(), 1u);
    EXPECT_EQ(map.mappedSectors(), 1024u);
}

} // namespace
} // namespace logseek::stl
