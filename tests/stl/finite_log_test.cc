/**
 * @file
 * Unit tests for the finite log-structured layer with greedy
 * garbage collection, including the defragmentation/cleaning
 * interaction the paper warns about (§IV-A).
 */

#include <gtest/gtest.h>

#include <map>

#include "stl/finite_log.h"
#include "stl/simulator.h"
#include "util/logging.h"
#include "util/random.h"

namespace logseek::stl
{
namespace
{

FiniteLogConfig
tinyLog()
{
    FiniteLogConfig config;
    config.capacityBytes = 8 * 32 * kSectorBytes; // 8 segments
    config.segmentBytes = 32 * kSectorBytes;      // of 32 sectors
    config.cleanReserveSegments = 2;
    config.cleanTargetSegments = 4;
    return config;
}

TEST(FiniteLog, ConstructionAndGeometry)
{
    FiniteLogStructuredLayer layer(1000, tinyLog());
    EXPECT_EQ(layer.logStart(), 1000u);
    EXPECT_EQ(layer.segmentCount(), 8u);
    EXPECT_EQ(layer.freeSegments(), 7u); // one open
    EXPECT_EQ(layer.liveSectors(), 0u);
}

TEST(FiniteLog, WritesAppendSequentially)
{
    FiniteLogStructuredLayer layer(1000, tinyLog());
    const auto a = layer.placeWrite({0, 8});
    const auto b = layer.placeWrite({100, 8});
    ASSERT_EQ(a.size(), 1u);
    EXPECT_EQ(a[0].pba, 1000u);
    EXPECT_EQ(b[0].pba, 1008u);
    EXPECT_EQ(layer.liveSectors(), 16u);
    EXPECT_EQ(layer.segmentLive(0), 16u);
}

TEST(FiniteLog, WriteSplitsAcrossSegments)
{
    FiniteLogStructuredLayer layer(1000, tinyLog());
    layer.placeWrite({0, 24});
    const auto placed = layer.placeWrite({100, 16});
    ASSERT_EQ(placed.size(), 2u);
    EXPECT_EQ(placed[0].physical(), (SectorExtent{1024, 8}));
    EXPECT_EQ(placed[1].physical(), (SectorExtent{1032, 8}));
    EXPECT_EQ(layer.segmentLive(0), 32u);
    EXPECT_EQ(layer.segmentLive(1), 8u);
}

TEST(FiniteLog, OverwriteKillsOldLiveness)
{
    FiniteLogStructuredLayer layer(1000, tinyLog());
    layer.placeWrite({0, 8});
    layer.placeWrite({0, 8}); // overwrite: old copy is dead
    EXPECT_EQ(layer.liveSectors(), 8u);
    EXPECT_EQ(layer.segmentLive(0), 8u);
    const auto segments = layer.translateRead({0, 8});
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_EQ(segments[0].pba, 1008u);
}

TEST(FiniteLog, PartialOverwriteAdjustsLiveness)
{
    FiniteLogStructuredLayer layer(1000, tinyLog());
    layer.placeWrite({0, 10});
    layer.placeWrite({4, 2});
    EXPECT_EQ(layer.liveSectors(), 10u);
    EXPECT_EQ(layer.segmentLive(0), 12u - 2u); // 12 written, 2 dead
}

TEST(FiniteLog, NoCleaningWhileFreeSegmentsRemain)
{
    FiniteLogStructuredLayer layer(1000, tinyLog());
    layer.placeWrite({0, 32}); // one segment's worth
    EXPECT_TRUE(layer.maintenance().empty());
    EXPECT_EQ(layer.cleanings(), 0u);
}

TEST(FiniteLog, DeadSegmentsReclaimForFree)
{
    FiniteLogStructuredLayer layer(1000, tinyLog());
    // Fill six segments with data, overwriting the same range: all
    // but the newest copy is dead, and the reserve (2 free) is hit.
    for (int round = 0; round < 6; ++round)
        layer.placeWrite({0, 32});
    EXPECT_EQ(layer.freeSegments(), 2u);
    const auto accesses = layer.maintenance();
    // Reclaiming dead segments needs no data movement.
    EXPECT_TRUE(accesses.empty());
    EXPECT_GE(layer.freeSegments(), 4u);
    EXPECT_GE(layer.cleanings(), 1u);
}

TEST(FiniteLog, CleaningMovesLiveData)
{
    FiniteLogStructuredLayer layer(1000, tinyLog());
    // Two hot LBAs per segment-sized round; the rest is rewritten,
    // so victims keep a little live data each.
    Rng rng(1);
    for (int round = 0; round < 6; ++round) {
        layer.placeWrite({static_cast<Lba>(round) * 4, 4});
        layer.placeWrite({500, 28}); // churn: mostly dead later
    }
    const SectorCount live_before = layer.liveSectors();
    const auto accesses = layer.maintenance();
    EXPECT_FALSE(accesses.empty());
    EXPECT_EQ(layer.liveSectors(), live_before); // moved, not lost
    EXPECT_GE(layer.freeSegments(), 4u);

    // Every moved extent was read then written.
    bool saw_read = false;
    bool saw_write = false;
    for (const auto &access : accesses) {
        saw_read |= access.type == trace::IoType::Read;
        saw_write |= access.type == trace::IoType::Write;
    }
    EXPECT_TRUE(saw_read);
    EXPECT_TRUE(saw_write);
}

TEST(FiniteLog, TranslationStaysCorrectAcrossCleaning)
{
    FiniteLogStructuredLayer layer(1000, tinyLog());
    Rng rng(7);
    std::map<Lba, int> versions;
    std::map<Lba, Pba> expect; // via translate after each step

    for (int op = 0; op < 300; ++op) {
        const SectorCount count = 1 + rng.nextUint(8);
        const Lba lba = rng.nextUint(64 - count);
        layer.placeWrite({lba, count});
        (void)layer.maintenance();

        // The forward map must keep covering all written LBAs and
        // reads must resolve inside the log region.
        const auto segments = layer.translateRead({lba, count});
        for (const auto &segment : segments) {
            EXPECT_TRUE(segment.mapped);
            EXPECT_GE(segment.pba, layer.logStart());
        }
    }
    (void)versions;
    (void)expect;
}

TEST(FiniteLog, OvercommittedLogIsFatal)
{
    FiniteLogConfig config = tinyLog();
    FiniteLogStructuredLayer layer(10000, config);
    // 8 segments x 32 sectors = 256 physical; write 240 distinct
    // live sectors: cleaning cannot reclaim anything.
    EXPECT_THROW(
        {
            for (Lba lba = 0; lba < 240; lba += 16) {
                layer.placeWrite({lba, 16});
                (void)layer.maintenance();
            }
        },
        FatalError);
}

TEST(FiniteLog, InvalidConfigPanics)
{
    FiniteLogConfig one_segment;
    one_segment.capacityBytes = 32 * kSectorBytes;
    one_segment.segmentBytes = 32 * kSectorBytes;
    EXPECT_THROW(FiniteLogStructuredLayer(0, one_segment),
                 PanicError);

    FiniteLogConfig bad_target = tinyLog();
    bad_target.cleanTargetSegments = 2; // equals reserve
    EXPECT_THROW(FiniteLogStructuredLayer(0, bad_target),
                 PanicError);
}

// ---- Simulator integration ----

SimConfig
finiteSim()
{
    SimConfig config;
    config.translation = TranslationKind::FiniteLogStructured;
    config.finiteLog = tinyLog();
    return config;
}

TEST(FiniteLogSim, LabelAndCleaningAccounting)
{
    trace::Trace trace("t");
    // Heavy churn over a small working set forces cleaning.
    Rng rng(3);
    for (int i = 0; i < 200; ++i)
        trace.appendWrite(rng.nextUint(56), 8);

    const SimResult result = Simulator(finiteSim()).run(trace);
    EXPECT_EQ(result.configLabel, "FiniteLS");
    EXPECT_GT(result.cleaningMerges, 0u);
    EXPECT_DOUBLE_EQ(
        static_cast<double>(result.hostWriteBytes),
        static_cast<double>(200 * 8 * kSectorBytes));
    // Churny workloads keep WAF near 1 (victims mostly dead).
    EXPECT_GE(result.writeAmplification(), 1.0);
}

TEST(FiniteLogSim, MatchesInfiniteLogWhenCapacityAmple)
{
    trace::Trace trace("t");
    trace.appendWrite(0, 10);
    trace.appendWrite(4, 2);
    trace.appendRead(0, 10);

    SimConfig infinite;
    infinite.translation = TranslationKind::LogStructured;
    const SimResult a = Simulator(infinite).run(trace);

    SimConfig finite;
    finite.translation = TranslationKind::FiniteLogStructured;
    finite.finiteLog.capacityBytes = 64 * kMiB;
    const SimResult b = Simulator(finite).run(trace);

    EXPECT_EQ(a.readSeeks, b.readSeeks);
    EXPECT_EQ(a.readFragments, b.readFragments);
    EXPECT_EQ(b.cleaningSeeks, 0u);
}

TEST(FiniteLogSim, DefragmentationIncreasesCleaningPressure)
{
    // The paper's §IV-A caveat: defragmentation consumes free
    // space, eventually forcing extra cleaning. Build a workload
    // whose fragmented ranges are re-read so defrag fires a lot.
    trace::Trace trace("t");
    Rng rng(11);
    for (int round = 0; round < 40; ++round) {
        for (int u = 0; u < 4; ++u)
            trace.appendWrite(rng.nextUint(120), 4);
        trace.appendRead(0, 124);
    }

    SimConfig plain = finiteSim();
    plain.finiteLog.capacityBytes = 24 * 32 * kSectorBytes;
    // The cleaning target must leave headroom for the largest
    // single request (the 124-sector defrag rewrite, ~4 segments)
    // plus the writes that precede it within one host operation.
    plain.finiteLog.cleanReserveSegments = 5;
    plain.finiteLog.cleanTargetSegments = 10;
    const SimResult base = Simulator(plain).run(trace);

    SimConfig with_defrag = plain;
    with_defrag.defrag = DefragConfig{};
    const SimResult defragged =
        Simulator(with_defrag).run(trace);

    EXPECT_GT(defragged.defragRewrites, 0u);
    // Defrag rewrites churn the log: more segments must be
    // reclaimed, and total media writes per host write grow. (The
    // per-reclaim move cost can be tiny — rewrites leave victims
    // fully dead — so reclaim count, not moved bytes, is the
    // pressure signal.)
    EXPECT_GT(defragged.cleaningMerges, base.cleaningMerges);
    EXPECT_GT(defragged.writeAmplification(),
              base.writeAmplification());
}

} // namespace
} // namespace logseek::stl
