/**
 * @file
 * SegmentJournal tests: the record codec, the consistent-epoch
 * scan (gap truncation, damage vs torn-tail discrimination) and
 * the seeded determinism of tearTail.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "stl/segment_journal.h"
#include "util/checkpoint.h"

namespace logseek::stl
{
namespace
{

JournalRecord
placement(std::uint64_t epoch, Pba frontier,
          std::vector<JournalEntry> entries)
{
    JournalRecord record;
    record.kind = JournalRecordKind::Placement;
    record.epoch = epoch;
    record.frontierAfter = frontier;
    record.aux = epoch * 3;
    record.entries = std::move(entries);
    return record;
}

TEST(SegmentJournal, RecordCodecRoundTrips)
{
    const std::vector<JournalRecord> originals{
        placement(1, 4096, {{0, 4096, 8}, {100, 4104, 16}}),
        placement(7, 9000, {}),
        {JournalRecordKind::SegmentReset, 2, 5120, 3, {}},
        {JournalRecordKind::MergeReset, 3, 4096, 11, {}},
    };
    for (const JournalRecord &original : originals) {
        const std::string payload = encodeJournalRecord(original);
        JournalRecord decoded;
        ASSERT_TRUE(decodeJournalRecord(payload, decoded));
        EXPECT_EQ(decoded, original);
    }
}

TEST(SegmentJournal, DecodeRejectsTruncationAndTrailingBytes)
{
    const std::string payload = encodeJournalRecord(
        placement(1, 4096, {{0, 4096, 8}}));
    JournalRecord decoded;
    EXPECT_FALSE(decodeJournalRecord(
        std::string_view(payload).substr(0, payload.size() - 1),
        decoded));
    EXPECT_FALSE(decodeJournalRecord(payload + "x", decoded));
    EXPECT_FALSE(decodeJournalRecord("", decoded));
}

TEST(SegmentJournal, ScanReplaysCleanJournalCompletely)
{
    SegmentJournal journal;
    for (std::uint64_t i = 0; i < 5; ++i) {
        const JournalEntry entry{i * 16, 4096 + i * 16, 16};
        journal.record(JournalRecordKind::Placement,
                       4096 + (i + 1) * 16, i, {&entry, 1});
    }
    EXPECT_EQ(journal.epochs(), 5U);

    const JournalScan scan = scanJournal(journal.image());
    EXPECT_TRUE(scan.clean());
    ASSERT_EQ(scan.records.size(), 5U);
    for (std::uint64_t i = 0; i < 5; ++i) {
        EXPECT_EQ(scan.records[i].epoch, i + 1);
        ASSERT_EQ(scan.records[i].entries.size(), 1U);
        EXPECT_EQ(scan.records[i].entries[0].lba, i * 16);
    }
}

TEST(SegmentJournal, ScanTruncatesAtEpochGap)
{
    // Epochs 1, 2, 4: frame 3 was lost whole (say its media block
    // died). Everything from the gap on is untrustworthy.
    std::string image;
    for (const std::uint64_t epoch : {1ULL, 2ULL, 4ULL})
        appendCheckpointFrame(
            image, encodeJournalRecord(
                       placement(epoch, 4096 + epoch, {})));

    const JournalScan scan = scanJournal(image);
    ASSERT_EQ(scan.records.size(), 2U);
    EXPECT_EQ(scan.records.back().epoch, 2U);
    EXPECT_EQ(scan.truncatedEpochs, 1U);
    EXPECT_FALSE(scan.clean());
    EXPECT_EQ(scan.damagedFrames, 0U);
    EXPECT_FALSE(scan.tornTail);
}

TEST(SegmentJournal, ScanDropsUndecodablePayloadAsTruncation)
{
    std::string image;
    appendCheckpointFrame(
        image, encodeJournalRecord(placement(1, 4096, {})));
    // A CRC-valid frame whose payload is not a journal record:
    // consistent framing, inconsistent content.
    appendCheckpointFrame(image, "not a journal record");

    const JournalScan scan = scanJournal(image);
    ASSERT_EQ(scan.records.size(), 1U);
    EXPECT_EQ(scan.truncatedEpochs, 1U);
    EXPECT_EQ(scan.damagedFrames, 0U);
}

TEST(SegmentJournal, ScanDiscriminatesDamageFromTornTail)
{
    SegmentJournal journal;
    for (std::uint64_t i = 0; i < 4; ++i) {
        const JournalEntry entry{i * 8, 4096 + i * 8, 8};
        journal.record(JournalRecordKind::Placement,
                       4096 + (i + 1) * 8, i, {&entry, 1});
    }

    // Corruption in the middle: a damaged frame, not a tear, and
    // the epoch chain breaks at the damage.
    std::string corrupted = journal.image();
    corrupted[corrupted.size() / 2] ^= 0x40;
    const JournalScan damaged = scanJournal(corrupted);
    EXPECT_GE(damaged.damagedFrames, 1U);
    EXPECT_FALSE(damaged.tornTail);
    EXPECT_LT(damaged.records.size(), 4U);

    // Truncation at the end: a torn tail, not damage, and every
    // whole frame before the tear survives.
    const std::string torn =
        journal.image().substr(0, journal.image().size() - 5);
    const JournalScan teared = scanJournal(torn);
    EXPECT_TRUE(teared.tornTail);
    EXPECT_EQ(teared.damagedFrames, 0U);
    EXPECT_EQ(teared.records.size(), 3U);
}

TEST(SegmentJournal, TearTailIsSeedDeterministic)
{
    const auto build = [] {
        SegmentJournal journal;
        for (std::uint64_t i = 0; i < 6; ++i) {
            const JournalEntry entry{i * 8, 4096 + i * 8, 8};
            journal.record(JournalRecordKind::Placement,
                           4096 + (i + 1) * 8, i, {&entry, 1});
        }
        return journal;
    };

    SegmentJournal a = build();
    SegmentJournal b = build();
    const std::string whole = a.image();
    a.tearTail(0x5eedULL);
    b.tearTail(0x5eedULL);
    EXPECT_EQ(a.image(), b.image());

    // The tear stays within the last frame: all preceding epochs
    // survive and scan consistently.
    const JournalScan scan = scanJournal(a.image());
    EXPECT_GE(scan.records.size(), 5U);
    EXPECT_LE(a.image().size(), whole.size());
    EXPECT_EQ(scan.damagedFrames, 0U);

    SegmentJournal c = build();
    c.tearTail(0x0badULL);
    const JournalScan other = scanJournal(c.image());
    EXPECT_GE(other.records.size(), 5U);
}

TEST(SegmentJournal, TearTailOnEmptyJournalIsNoop)
{
    SegmentJournal journal;
    journal.tearTail(123);
    EXPECT_TRUE(journal.empty());
    const JournalScan scan = scanJournal(journal.image());
    EXPECT_TRUE(scan.clean());
    EXPECT_TRUE(scan.records.empty());
}

TEST(SegmentJournal, MountStatsReflectTheScan)
{
    SegmentJournal journal;
    const JournalEntry entry{0, 4096, 8};
    journal.record(JournalRecordKind::Placement, 4104, 0,
                   {&entry, 1});
    journal.record(JournalRecordKind::Placement, 4112, 0,
                   {&entry, 1});
    journal.tearTail(7);

    const JournalScan scan = scanJournal(journal.image());
    const MountStats stats = mountStatsFrom(scan);
    EXPECT_EQ(stats.epochsApplied, scan.records.size());
    EXPECT_EQ(stats.segmentsScanned, scan.segmentsScanned);
    EXPECT_EQ(stats.tornTails, scan.tornTail ? 1U : 0U);
    EXPECT_EQ(stats.damagedFrames, scan.damagedFrames);
    EXPECT_EQ(stats.truncatedEpochs, scan.truncatedEpochs);
}

} // namespace
} // namespace logseek::stl
