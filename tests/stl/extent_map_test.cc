/**
 * @file
 * Unit tests for ExtentMap: interval mapping, splitting on partial
 * overwrite, coalescing, and hole-aware translation.
 */

#include <gtest/gtest.h>

#include <vector>

#include "stl/extent_map.h"
#include "stl/translation_layer.h"
#include "util/logging.h"

namespace logseek::stl
{
namespace
{

std::vector<Segment>
xlate(const ExtentMap &map, Lba lba, SectorCount count)
{
    return map.translate({lba, count});
}

TEST(ExtentMap, EmptyMapTranslatesToIdentityHole)
{
    const ExtentMap map;
    const auto segments = xlate(map, 100, 20);
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_FALSE(segments[0].mapped);
    EXPECT_EQ(segments[0].logical, (SectorExtent{100, 20}));
    EXPECT_EQ(segments[0].pba, 100u); // identity placement
}

TEST(ExtentMap, EmptyExtentTranslatesToNothing)
{
    const ExtentMap map;
    EXPECT_TRUE(map.translate({50, 0}).empty());
}

TEST(ExtentMap, SimpleMappingRoundTrip)
{
    ExtentMap map;
    map.mapRange(100, 5000, 10);
    const auto segments = xlate(map, 100, 10);
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_TRUE(segments[0].mapped);
    EXPECT_EQ(segments[0].pba, 5000u);
    EXPECT_EQ(segments[0].physical(), (SectorExtent{5000, 10}));
    EXPECT_EQ(map.entryCount(), 1u);
    EXPECT_EQ(map.mappedSectors(), 10u);
}

TEST(ExtentMap, PartialReadOffsetsPba)
{
    ExtentMap map;
    map.mapRange(100, 5000, 10);
    const auto segments = xlate(map, 104, 3);
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_EQ(segments[0].pba, 5004u);
    EXPECT_EQ(segments[0].logical, (SectorExtent{104, 3}));
}

TEST(ExtentMap, ReadSpanningMappedAndHole)
{
    ExtentMap map;
    map.mapRange(10, 1000, 5);
    const auto segments = xlate(map, 5, 15);
    ASSERT_EQ(segments.size(), 3u);
    EXPECT_FALSE(segments[0].mapped);
    EXPECT_EQ(segments[0].logical, (SectorExtent{5, 5}));
    EXPECT_TRUE(segments[1].mapped);
    EXPECT_EQ(segments[1].logical, (SectorExtent{10, 5}));
    EXPECT_EQ(segments[1].pba, 1000u);
    EXPECT_FALSE(segments[2].mapped);
    EXPECT_EQ(segments[2].logical, (SectorExtent{15, 5}));
    EXPECT_EQ(segments[2].pba, 15u);
}

TEST(ExtentMap, FullOverwriteReplacesMapping)
{
    ExtentMap map;
    map.mapRange(10, 1000, 8);
    map.mapRange(10, 2000, 8);
    const auto segments = xlate(map, 10, 8);
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_EQ(segments[0].pba, 2000u);
    EXPECT_EQ(map.entryCount(), 1u);
    EXPECT_EQ(map.mappedSectors(), 8u);
}

TEST(ExtentMap, PartialOverwriteSplitsEntry)
{
    ExtentMap map;
    map.mapRange(0, 1000, 10);
    map.mapRange(4, 2000, 2); // middle overwrite
    const auto segments = xlate(map, 0, 10);
    ASSERT_EQ(segments.size(), 3u);
    EXPECT_EQ(segments[0].pba, 1000u);
    EXPECT_EQ(segments[0].logical, (SectorExtent{0, 4}));
    EXPECT_EQ(segments[1].pba, 2000u);
    EXPECT_EQ(segments[1].logical, (SectorExtent{4, 2}));
    EXPECT_EQ(segments[2].pba, 1006u); // tail keeps its offset pba
    EXPECT_EQ(segments[2].logical, (SectorExtent{6, 4}));
    EXPECT_EQ(map.entryCount(), 3u);
    EXPECT_EQ(map.mappedSectors(), 10u);
}

TEST(ExtentMap, OverwriteHeadOfEntry)
{
    ExtentMap map;
    map.mapRange(0, 1000, 10);
    map.mapRange(0, 2000, 4);
    const auto segments = xlate(map, 0, 10);
    ASSERT_EQ(segments.size(), 2u);
    EXPECT_EQ(segments[0].pba, 2000u);
    EXPECT_EQ(segments[1].pba, 1004u);
}

TEST(ExtentMap, OverwriteTailOfEntry)
{
    ExtentMap map;
    map.mapRange(0, 1000, 10);
    map.mapRange(6, 2000, 4);
    const auto segments = xlate(map, 0, 10);
    ASSERT_EQ(segments.size(), 2u);
    EXPECT_EQ(segments[0].pba, 1000u);
    EXPECT_EQ(segments[0].logical.count, 6u);
    EXPECT_EQ(segments[1].pba, 2000u);
}

TEST(ExtentMap, OverwriteSpanningMultipleEntries)
{
    ExtentMap map;
    map.mapRange(0, 1000, 4);
    map.mapRange(4, 2000, 4);
    map.mapRange(8, 3000, 4);
    map.mapRange(2, 5000, 8); // covers tail of 1st through head of 3rd
    const auto segments = xlate(map, 0, 12);
    ASSERT_EQ(segments.size(), 3u);
    EXPECT_EQ(segments[0].pba, 1000u);
    EXPECT_EQ(segments[0].logical.count, 2u);
    EXPECT_EQ(segments[1].pba, 5000u);
    EXPECT_EQ(segments[1].logical.count, 8u);
    EXPECT_EQ(segments[2].pba, 3002u);
    EXPECT_EQ(segments[2].logical.count, 2u);
    EXPECT_EQ(map.mappedSectors(), 12u);
}

TEST(ExtentMap, CoalescesLogicallyAndPhysicallyAdjacent)
{
    ExtentMap map;
    map.mapRange(0, 1000, 4);
    map.mapRange(4, 1004, 4); // continues both spaces
    EXPECT_EQ(map.entryCount(), 1u);
    const auto segments = xlate(map, 0, 8);
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_EQ(segments[0].pba, 1000u);
}

TEST(ExtentMap, DoesNotCoalescePhysicallyDisjoint)
{
    ExtentMap map;
    map.mapRange(0, 1000, 4);
    map.mapRange(4, 9000, 4); // logically adjacent, physically not
    EXPECT_EQ(map.entryCount(), 2u);
}

TEST(ExtentMap, DoesNotCoalesceLogicallyDisjoint)
{
    ExtentMap map;
    map.mapRange(0, 1000, 4);
    map.mapRange(8, 1004, 4); // physically adjacent, logically not
    EXPECT_EQ(map.entryCount(), 2u);
}

TEST(ExtentMap, CoalescesWithSuccessor)
{
    ExtentMap map;
    map.mapRange(4, 1004, 4);
    map.mapRange(0, 1000, 4); // inserted before, continues into it
    EXPECT_EQ(map.entryCount(), 1u);
}

TEST(ExtentMap, MiddleInsertMergesBothNeighbors)
{
    ExtentMap map;
    map.mapRange(0, 1000, 4);
    map.mapRange(8, 1008, 4);
    map.mapRange(4, 1004, 4); // bridges them
    EXPECT_EQ(map.entryCount(), 1u);
    EXPECT_EQ(map.mappedSectors(), 12u);
}

TEST(ExtentMap, FragmentCountCountsRunsAndHoles)
{
    ExtentMap map;
    map.mapRange(10, 1000, 2);
    map.mapRange(14, 2000, 2);
    // [8,10) hole, [10,12) run, [12,14) hole, [14,16) run, [16,18) hole
    EXPECT_EQ(map.fragmentCount({8, 10}), 5u);
    EXPECT_EQ(map.fragmentCount({10, 2}), 1u);
}

TEST(ExtentMap, ZeroCountMapPanics)
{
    ExtentMap map;
    EXPECT_THROW(map.mapRange(0, 0, 0), PanicError);
}

TEST(ExtentMap, ForEachEntryVisitsInLbaOrder)
{
    ExtentMap map;
    map.mapRange(100, 5000, 4);
    map.mapRange(0, 6000, 4);
    map.mapRange(50, 7000, 4);
    std::vector<Lba> lbas;
    map.forEachEntry([&](Lba lba, Pba, SectorCount) {
        lbas.push_back(lba);
    });
    ASSERT_EQ(lbas.size(), 3u);
    EXPECT_EQ(lbas[0], 0u);
    EXPECT_EQ(lbas[1], 50u);
    EXPECT_EQ(lbas[2], 100u);
}

TEST(ExtentMap, RewriteRestoresContiguity)
{
    // The defragmentation primitive: scatter a range, then remap it
    // contiguously; translation collapses back to one segment.
    ExtentMap map;
    map.mapRange(0, 1000, 2);
    map.mapRange(2, 2000, 2);
    map.mapRange(4, 3000, 2);
    EXPECT_EQ(xlate(map, 0, 6).size(), 3u);
    map.mapRange(0, 9000, 6);
    const auto segments = xlate(map, 0, 6);
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_EQ(segments[0].pba, 9000u);
    EXPECT_EQ(map.entryCount(), 1u);
}

TEST(MergePhysicallyContiguous, MergesAdjacentRuns)
{
    std::vector<Segment> segments{
        {{0, 4}, 100, true},
        {{4, 4}, 104, false}, // physically continues
        {{8, 4}, 500, true},  // jump
    };
    const auto merged = mergePhysicallyContiguous(segments);
    ASSERT_EQ(merged.size(), 2u);
    EXPECT_EQ(merged[0].logical, (SectorExtent{0, 8}));
    EXPECT_EQ(merged[0].pba, 100u);
    EXPECT_TRUE(merged[0].mapped);
    EXPECT_EQ(merged[1].pba, 500u);
}

TEST(MergePhysicallyContiguous, LeavesDisjointAlone)
{
    std::vector<Segment> segments{
        {{0, 4}, 100, true},
        {{4, 4}, 300, true},
    };
    EXPECT_EQ(mergePhysicallyContiguous(segments).size(), 2u);
}

TEST(MergePhysicallyContiguous, HandlesEmptyAndSingle)
{
    EXPECT_TRUE(mergePhysicallyContiguous({}).empty());
    const std::vector<Segment> one{{{0, 4}, 9, true}};
    EXPECT_EQ(mergePhysicallyContiguous(one).size(), 1u);
}

} // namespace
} // namespace logseek::stl
