/**
 * @file
 * Randomized differential test: the B+-tree ExtentMap against the
 * preserved std::map ReferenceExtentMap, over millions of mixed
 * mapRange/translate/fragmentCount operations.
 *
 * The reference is the seed implementation verbatim, so agreement
 * here pins the tree to the exact historical semantics: entry-for-
 * entry map state (coalescing), displaced-range reporting (order
 * and values), hole emission, and fragment counting. Workloads mix
 * sequential runs, random overwrites and wide rewrites so leaf
 * splits, cross-leaf merges, range erases spanning many leaves and
 * cursor hits/misses are all exercised.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "stl/extent_map.h"
#include "stl/testing/reference_extent_map.h"
#include "util/random.h"

namespace logseek::stl
{
namespace
{

struct FlatEntry
{
    Lba lba;
    Pba pba;
    SectorCount count;

    bool operator==(const FlatEntry &other) const = default;
};

template <typename Map>
std::vector<FlatEntry>
flatten(const Map &map)
{
    std::vector<FlatEntry> entries;
    entries.reserve(map.entryCount());
    map.forEachEntry([&](Lba lba, Pba pba, SectorCount count) {
        entries.push_back(FlatEntry{lba, pba, count});
    });
    return entries;
}

/** One seeded adversarial run of `ops` mixed operations. */
void
runDifferential(std::uint64_t seed, std::size_t ops, Lba space,
                SectorCount max_write)
{
    Rng rng(seed);
    ExtentMap tree;
    testing::ReferenceExtentMap reference;
    SegmentBuffer scratch;
    Pba frontier = space; // log-style placement above the space

    std::vector<SectorExtent> tree_displaced;
    std::vector<SectorExtent> ref_displaced;

    std::size_t checked_states = 0;
    Lba sequential = 0;

    for (std::size_t op = 0; op < ops; ++op) {
        const std::uint64_t kind = rng.nextUint(10);
        if (kind < 5) {
            // Random write (the defrag/overwrite pattern).
            const SectorCount count = 1 + rng.nextUint(max_write);
            const Lba lba = rng.nextUint(space - count);
            tree_displaced.clear();
            ref_displaced.clear();
            tree.mapRange(lba, frontier, count, &tree_displaced);
            reference.mapRange(lba, frontier, count,
                               &ref_displaced);
            ASSERT_EQ(tree_displaced, ref_displaced)
                << "op " << op << " seed " << seed;
            frontier += count;
        } else if (kind < 7) {
            // Sequential append run: adjacent LBAs at adjacent
            // PBAs, the coalescing + cursor-friendly pattern.
            const SectorCount count = 1 + rng.nextUint(64);
            if (sequential + count >= space)
                sequential = rng.nextUint(space / 2);
            tree.mapRange(sequential, frontier, count);
            reference.mapRange(sequential, frontier, count);
            sequential += count;
            frontier += count;
        } else if (kind < 9) {
            // Random read.
            const SectorCount count = std::min<SectorCount>(
                1 + rng.nextUint(512), space - 1);
            const Lba lba = rng.nextUint(space - count);
            const SectorExtent extent{lba, count};
            tree.translateInto(extent, scratch);
            const auto expected = reference.translate(extent);
            ASSERT_EQ(scratch.segments(), expected)
                << "op " << op << " seed " << seed;
            ASSERT_EQ(tree.translate(extent), expected);
            ASSERT_EQ(tree.fragmentCount(extent),
                      reference.fragmentCount(extent));
        } else {
            // Wide rewrite spanning many entries (bulk displace).
            const SectorCount count = std::min<SectorCount>(
                256 + rng.nextUint(4096), space - 1);
            const Lba lba = rng.nextUint(space - count);
            tree_displaced.clear();
            ref_displaced.clear();
            tree.mapRange(lba, frontier, count, &tree_displaced);
            reference.mapRange(lba, frontier, count,
                               &ref_displaced);
            ASSERT_EQ(tree_displaced, ref_displaced)
                << "op " << op << " seed " << seed;
            frontier += count;
        }

        ASSERT_EQ(tree.entryCount(), reference.entryCount())
            << "op " << op << " seed " << seed;
        ASSERT_EQ(tree.mappedSectors(), reference.mappedSectors());

        // Entry-for-entry comparison is O(n); sample it.
        if (op % 8192 == 0 || op + 1 == ops) {
            ASSERT_EQ(flatten(tree), flatten(reference))
                << "op " << op << " seed " << seed;
            ++checked_states;
        }
    }
    EXPECT_GE(checked_states, 2u);
    EXPECT_FALSE(tree.empty());
}

TEST(ExtentMapDifferential, MillionMixedOpsMatchReference)
{
    // ~1.05M operations against the seed implementation. Space is
    // sized so the map grows past 64k entries, forcing a tree of
    // height >= 2 with splits, drains and cross-leaf merges.
    runDifferential(/*seed=*/42, /*ops=*/1'050'000,
                    /*space=*/Lba{1} << 22, /*max_write=*/24);
}

TEST(ExtentMapDifferential, DenseSmallSpaceHitsCrossLeafMerges)
{
    // A tight space maximizes overwrites, splits of existing
    // entries and coalescing across leaf boundaries.
    runDifferential(/*seed=*/7, /*ops=*/120'000,
                    /*space=*/Lba{1} << 12, /*max_write=*/48);
}

TEST(ExtentMapDifferential, ManySeedsSmallRuns)
{
    for (std::uint64_t seed = 100; seed < 116; ++seed)
        runDifferential(seed, /*ops=*/8'000,
                        /*space=*/Lba{1} << 14, /*max_write=*/32);
}

} // namespace
} // namespace logseek::stl
