/**
 * @file
 * Unit tests for the translation-layer helpers, focused on
 * mergePhysicallyContiguous — the function the replay engine relies
 * on to coalesce logically split but physically adjacent segments
 * before seek accounting.
 */

#include <gtest/gtest.h>

#include "stl/translation_layer.h"

namespace logseek::stl
{
namespace
{

TEST(MergePhysicallyContiguousTest, EmptyInputStaysEmpty)
{
    EXPECT_TRUE(mergePhysicallyContiguous({}).empty());
}

TEST(MergePhysicallyContiguousTest, SingleSegmentIsUntouched)
{
    const std::vector<Segment> one{{{10, 4}, 900, true}};
    const auto merged = mergePhysicallyContiguous(one);
    ASSERT_EQ(merged.size(), 1u);
    EXPECT_EQ(merged[0].logical, (SectorExtent{10, 4}));
    EXPECT_EQ(merged[0].pba, 900u);
    EXPECT_TRUE(merged[0].mapped);
}

TEST(MergePhysicallyContiguousTest, MergesMappedAdjacency)
{
    // Two mapped runs, physically and logically back to back:
    // the device reads them in one sequential pass.
    const std::vector<Segment> segments{
        {{0, 8}, 100, true},
        {{8, 8}, 108, true},
    };
    const auto merged = mergePhysicallyContiguous(segments);
    ASSERT_EQ(merged.size(), 1u);
    EXPECT_EQ(merged[0].logical, (SectorExtent{0, 16}));
    EXPECT_EQ(merged[0].pba, 100u);
    EXPECT_TRUE(merged[0].mapped);
}

TEST(MergePhysicallyContiguousTest, MergedFlagIsOrOfConstituents)
{
    // A mapped run next to an unmapped identity hole (and the other
    // way round): the merged segment counts as mapped either way.
    const std::vector<Segment> mapped_first{
        {{0, 4}, 100, true},
        {{4, 4}, 104, false},
    };
    auto merged = mergePhysicallyContiguous(mapped_first);
    ASSERT_EQ(merged.size(), 1u);
    EXPECT_TRUE(merged[0].mapped);

    const std::vector<Segment> unmapped_first{
        {{0, 4}, 100, false},
        {{4, 4}, 104, true},
    };
    merged = mergePhysicallyContiguous(unmapped_first);
    ASSERT_EQ(merged.size(), 1u);
    EXPECT_TRUE(merged[0].mapped);

    const std::vector<Segment> both_unmapped{
        {{0, 4}, 100, false},
        {{4, 4}, 104, false},
    };
    merged = mergePhysicallyContiguous(both_unmapped);
    ASSERT_EQ(merged.size(), 1u);
    EXPECT_FALSE(merged[0].mapped);
}

TEST(MergePhysicallyContiguousTest, KeepsPhysicallyDisjointRuns)
{
    // Logically adjacent but physically scattered: a real seek
    // boundary, so no merge.
    const std::vector<Segment> segments{
        {{0, 4}, 100, true},
        {{4, 4}, 500, true},
    };
    const auto merged = mergePhysicallyContiguous(segments);
    ASSERT_EQ(merged.size(), 2u);
    EXPECT_EQ(merged[0].pba, 100u);
    EXPECT_EQ(merged[1].pba, 500u);
}

TEST(MergePhysicallyContiguousTest, KeepsLogicallyDisjointRuns)
{
    // Physically adjacent but with a logical hole between them
    // (the read skips LBAs): kept separate.
    const std::vector<Segment> segments{
        {{0, 4}, 100, true},
        {{8, 4}, 104, true},
    };
    EXPECT_EQ(mergePhysicallyContiguous(segments).size(), 2u);
}

TEST(MergePhysicallyContiguousTest, ChainsAcrossManySegments)
{
    // Three contiguous runs collapse to one; a fourth after a jump
    // starts a new run.
    const std::vector<Segment> segments{
        {{0, 2}, 50, true},
        {{2, 2}, 52, false},
        {{4, 2}, 54, true},
        {{6, 2}, 900, false},
    };
    const auto merged = mergePhysicallyContiguous(segments);
    ASSERT_EQ(merged.size(), 2u);
    EXPECT_EQ(merged[0].logical, (SectorExtent{0, 6}));
    EXPECT_EQ(merged[0].pba, 50u);
    EXPECT_TRUE(merged[0].mapped);
    EXPECT_EQ(merged[1].logical, (SectorExtent{6, 2}));
    EXPECT_FALSE(merged[1].mapped);
}

} // namespace
} // namespace logseek::stl
