/**
 * @file
 * Unit tests for zone/guard support in the log-structured layer
 * (paper §II: zones separated by guard tracks, each written
 * sequentially).
 */

#include <gtest/gtest.h>

#include "stl/log_structured.h"
#include "stl/simulator.h"
#include "util/logging.h"

namespace logseek::stl
{
namespace
{

ZoneConfig
tinyZones()
{
    ZoneConfig zones;
    zones.zoneBytes = 32 * kSectorBytes;  // 32-sector zones
    zones.guardBytes = 8 * kSectorBytes;  // 8-sector guards
    return zones;
}

TEST(ZonedLog, WritesWithinZoneAreContiguous)
{
    LogStructuredLayer layer(1000, tinyZones());
    const auto a = layer.placeWrite({0, 16});
    const auto b = layer.placeWrite({100, 16});
    ASSERT_EQ(a.size(), 1u);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(a[0].pba, 1000u);
    EXPECT_EQ(b[0].pba, 1016u);
    EXPECT_EQ(layer.zoneCrossings(), 1u); // zone filled exactly
}

TEST(ZonedLog, FrontierSkipsGuardAtZoneBoundary)
{
    LogStructuredLayer layer(1000, tinyZones());
    layer.placeWrite({0, 32}); // fills zone 0 exactly
    EXPECT_EQ(layer.writeFrontier(), 1040u); // 1000+32+8 guard
    const auto next = layer.placeWrite({100, 4});
    EXPECT_EQ(next[0].pba, 1040u);
}

TEST(ZonedLog, WriteStraddlingBoundaryIsSplit)
{
    LogStructuredLayer layer(1000, tinyZones());
    layer.placeWrite({0, 24});
    const auto placed = layer.placeWrite({100, 16}); // 8 left in zone
    ASSERT_EQ(placed.size(), 2u);
    EXPECT_EQ(placed[0].logical, (SectorExtent{100, 8}));
    EXPECT_EQ(placed[0].pba, 1024u);
    EXPECT_EQ(placed[1].logical, (SectorExtent{108, 8}));
    EXPECT_EQ(placed[1].pba, 1040u); // after the guard
    EXPECT_EQ(layer.zoneCrossings(), 1u);
}

TEST(ZonedLog, SplitWriteReadsBackAsTwoFragments)
{
    LogStructuredLayer layer(1000, tinyZones());
    layer.placeWrite({0, 24});
    layer.placeWrite({100, 16});
    const auto segments = layer.translateRead({100, 16});
    ASSERT_EQ(segments.size(), 2u);
    EXPECT_EQ(segments[0].pba, 1024u);
    EXPECT_EQ(segments[1].pba, 1040u);
}

TEST(ZonedLog, WriteLargerThanZoneSpansSeveral)
{
    LogStructuredLayer layer(1000, tinyZones());
    const auto placed = layer.placeWrite({0, 80}); // 2.5 zones
    ASSERT_EQ(placed.size(), 3u);
    EXPECT_EQ(placed[0].physical(), (SectorExtent{1000, 32}));
    EXPECT_EQ(placed[1].physical(), (SectorExtent{1040, 32}));
    EXPECT_EQ(placed[2].physical(), (SectorExtent{1080, 16}));
    EXPECT_EQ(layer.zoneCrossings(), 2u);
}

TEST(ZonedLog, UnzonedLayerNeverCrosses)
{
    LogStructuredLayer layer(100000);
    layer.placeWrite({0, 10000});
    EXPECT_EQ(layer.zoneCrossings(), 0u);
    const auto segments = layer.translateRead({0, 10000});
    EXPECT_EQ(segments.size(), 1u);
}

TEST(ZonedLog, ZeroZoneSizePanics)
{
    ZoneConfig zones;
    zones.zoneBytes = 0;
    EXPECT_THROW(LogStructuredLayer(1000, zones), PanicError);
}

TEST(ZonedLogSim, GuardSkipsCostOneSeekPerCrossing)
{
    // Pure sequential log writes: unzoned LS has only the initial
    // seek; each zone crossing adds exactly one more.
    trace::Trace trace("t");
    for (Lba lba = 0; lba < 320; lba += 16)
        trace.appendWrite(lba, 16); // 320 sectors = 10 tiny zones

    SimConfig unzoned;
    unzoned.translation = TranslationKind::LogStructured;
    const SimResult plain = Simulator(unzoned).run(trace);

    SimConfig zoned = unzoned;
    zoned.zones = tinyZones();
    const SimResult result = Simulator(zoned).run(trace);

    EXPECT_EQ(plain.writeSeeks, 1u);
    // The initial jump plus one guard skip between consecutive
    // zones (the skip after the final zone has no following write).
    EXPECT_EQ(result.writeSeeks, 1u + (320 / 32 - 1));
}

TEST(ZonedLogSim, MechanismsStillWorkWithZones)
{
    trace::Trace trace("t");
    trace.appendWrite(0, 10);
    trace.appendWrite(4, 2);
    trace.appendRead(0, 10);
    trace.appendRead(0, 10);

    SimConfig config;
    config.translation = TranslationKind::LogStructured;
    config.zones = tinyZones();
    config.cache = SelectiveCacheConfig{};
    const SimResult result = Simulator(config).run(trace);
    EXPECT_GT(result.cacheHits, 0u);

    SimConfig with_defrag = config;
    with_defrag.cache.reset();
    with_defrag.defrag = DefragConfig{};
    const SimResult defragged =
        Simulator(with_defrag).run(trace);
    EXPECT_GE(defragged.defragRewrites, 1u);
}

TEST(ZonedLogSim, ZonedMatchesUnzonedTranslationResults)
{
    // Zones change physical placement but never which data a read
    // sees; fragment counts can only grow (splits at boundaries).
    trace::Trace trace("t");
    for (int i = 0; i < 200; ++i)
        trace.appendWrite(static_cast<Lba>((i * 37) % 500), 8);
    trace.appendRead(0, 500);

    SimConfig unzoned;
    unzoned.translation = TranslationKind::LogStructured;
    SimConfig zoned = unzoned;
    zoned.zones = tinyZones();

    const SimResult a = Simulator(unzoned).run(trace);
    const SimResult b = Simulator(zoned).run(trace);
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_GE(b.readFragments, a.readFragments);
}

} // namespace
} // namespace logseek::stl
