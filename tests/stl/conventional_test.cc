/**
 * @file
 * Unit tests for the conventional (NoLS) translation layer.
 */

#include <gtest/gtest.h>

#include "stl/conventional.h"
#include "util/logging.h"

namespace logseek::stl
{
namespace
{

TEST(ConventionalLayer, ReadsAreIdentity)
{
    const ConventionalLayer layer;
    const auto segments = layer.translateRead({123, 45});
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_EQ(segments[0].pba, 123u);
    EXPECT_EQ(segments[0].logical, (SectorExtent{123, 45}));
    EXPECT_TRUE(segments[0].mapped);
}

TEST(ConventionalLayer, WritesAreIdentity)
{
    ConventionalLayer layer;
    const auto segments = layer.placeWrite({99, 7});
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_EQ(segments[0].pba, 99u);
}

TEST(ConventionalLayer, WritesDoNotAffectReads)
{
    ConventionalLayer layer;
    layer.placeWrite({0, 100});
    layer.placeWrite({50, 10});
    const auto segments = layer.translateRead({0, 100});
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_EQ(segments[0].pba, 0u);
}

TEST(ConventionalLayer, NeverFragmented)
{
    ConventionalLayer layer;
    for (int i = 0; i < 100; ++i)
        layer.placeWrite({static_cast<Lba>(i * 3), 2});
    EXPECT_EQ(layer.staticFragmentCount(), 0u);
}

TEST(ConventionalLayer, NameAndEmptyExtentHandling)
{
    ConventionalLayer layer;
    EXPECT_EQ(layer.name(), "conventional");
    EXPECT_THROW(layer.translateRead({0, 0}), PanicError);
    EXPECT_THROW(layer.placeWrite({0, 0}), PanicError);
}

} // namespace
} // namespace logseek::stl
