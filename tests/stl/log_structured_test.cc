/**
 * @file
 * Unit tests for the log-structured translation layer.
 */

#include <gtest/gtest.h>

#include "stl/log_structured.h"
#include "util/logging.h"

namespace logseek::stl
{
namespace
{

TEST(LogStructuredLayer, WritesGoToTheFrontierInOrder)
{
    LogStructuredLayer layer(1000);
    EXPECT_EQ(layer.writeFrontier(), 1000u);

    const auto first = layer.placeWrite({10, 4});
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].pba, 1000u);
    EXPECT_EQ(layer.writeFrontier(), 1004u);

    const auto second = layer.placeWrite({500, 8});
    EXPECT_EQ(second[0].pba, 1004u);
    EXPECT_EQ(layer.writeFrontier(), 1012u);
}

TEST(LogStructuredLayer, UnwrittenDataReadsAtIdentity)
{
    LogStructuredLayer layer(1000);
    const auto segments = layer.translateRead({100, 10});
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_FALSE(segments[0].mapped);
    EXPECT_EQ(segments[0].pba, 100u);
}

TEST(LogStructuredLayer, ReadAfterWriteFindsLogLocation)
{
    LogStructuredLayer layer(1000);
    layer.placeWrite({10, 4});
    const auto segments = layer.translateRead({10, 4});
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_TRUE(segments[0].mapped);
    EXPECT_EQ(segments[0].pba, 1000u);
}

TEST(LogStructuredLayer, OverwriteInvalidatesOldLocation)
{
    LogStructuredLayer layer(1000);
    layer.placeWrite({10, 4});
    layer.placeWrite({10, 4});
    const auto segments = layer.translateRead({10, 4});
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_EQ(segments[0].pba, 1004u); // the newer copy
}

TEST(LogStructuredLayer, PartialUpdateFragmentsRange)
{
    LogStructuredLayer layer(1000);
    layer.placeWrite({0, 10});  // pba 1000..1009
    layer.placeWrite({4, 2});   // pba 1010..1011
    const auto segments = layer.translateRead({0, 10});
    ASSERT_EQ(segments.size(), 3u);
    EXPECT_EQ(segments[0].pba, 1000u);
    EXPECT_EQ(segments[1].pba, 1010u);
    EXPECT_EQ(segments[2].pba, 1006u);
}

TEST(LogStructuredLayer, BackToBackWritesArePhysicallyContiguous)
{
    LogStructuredLayer layer(5000);
    Pba expected = 5000;
    for (Lba lba = 900; lba > 0; lba -= 30) {
        const auto segments = layer.placeWrite({lba, 16});
        EXPECT_EQ(segments[0].pba, expected);
        expected += 16;
    }
}

TEST(LogStructuredLayer, SequentialWritesCoalesceInMap)
{
    LogStructuredLayer layer(10000);
    for (Lba lba = 0; lba < 100; lba += 10)
        layer.placeWrite({lba, 10});
    EXPECT_EQ(layer.staticFragmentCount(), 1u);
}

TEST(LogStructuredLayer, RandomWritesAccumulateFragments)
{
    LogStructuredLayer layer(10000);
    layer.placeWrite({0, 4});
    layer.placeWrite({100, 4});
    layer.placeWrite({50, 4});
    EXPECT_EQ(layer.staticFragmentCount(), 3u);
}

TEST(LogStructuredLayer, RelocateMovesRangeToFrontier)
{
    LogStructuredLayer layer(1000);
    layer.placeWrite({0, 4});
    layer.placeWrite({8, 4});
    const Pba frontier = layer.writeFrontier();
    const auto placed = layer.relocate({0, 12});
    ASSERT_EQ(placed.size(), 1u);
    EXPECT_EQ(placed[0].pba, frontier);
    // The whole range is now one contiguous run.
    const auto segments = layer.translateRead({0, 12});
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_EQ(segments[0].pba, frontier);
}

TEST(LogStructuredLayer, WriteAboveLogStartPanics)
{
    LogStructuredLayer layer(1000);
    EXPECT_THROW(layer.placeWrite({998, 4}), PanicError);
}

TEST(LogStructuredLayer, LogStartRecorded)
{
    const LogStructuredLayer layer(4242);
    EXPECT_EQ(layer.logStart(), 4242u);
    EXPECT_EQ(layer.name(), "log-structured");
}

TEST(LogStructuredLayer, EmptyExtentsPanic)
{
    LogStructuredLayer layer(1000);
    EXPECT_THROW(layer.translateRead({0, 0}), PanicError);
    EXPECT_THROW(layer.placeWrite({0, 0}), PanicError);
}

TEST(LogStructuredLayer, MapExposedReadOnly)
{
    LogStructuredLayer layer(1000);
    layer.placeWrite({3, 2});
    EXPECT_EQ(layer.extentMap().entryCount(), 1u);
    EXPECT_EQ(layer.extentMap().mappedSectors(), 2u);
}

} // namespace
} // namespace logseek::stl
