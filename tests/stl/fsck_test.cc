/**
 * @file
 * Fsck tests: a clean layer+journal pair passes for every layer
 * kind, and seeded inconsistencies (map/journal divergence,
 * frontier drift, foreign journals) are detected by name.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "stl/conventional.h"
#include "stl/finite_log.h"
#include "stl/fsck.h"
#include "stl/log_structured.h"
#include "stl/media_cache.h"
#include "stl/sharded_translation.h"

namespace logseek::stl
{
namespace
{

constexpr Pba kEnd = 4096;

bool
hasViolation(const FsckReport &report, const std::string &check)
{
    return std::any_of(
        report.violations.begin(), report.violations.end(),
        [&](const FsckViolation &v) { return v.check == check; });
}

/** Drain a layer's owed background work like the replay engine. */
void
drainMaintenance(TranslationLayer &layer)
{
    while (!layer.maintenance().empty()) {
    }
}

TEST(Fsck, CleanLogStructuredLayerPasses)
{
    SegmentJournal journal;
    LogStructuredLayer layer(kEnd,
                             ZoneConfig{64 * kKiB, 8 * kKiB});
    layer.attachJournal(&journal);
    for (Lba lba = 0; lba < 800; lba += 40)
        layer.placeWrite({lba, 24});

    const FsckReport report = Fsck::check(layer, journal);
    EXPECT_TRUE(report.ok()) << report.toString();
    EXPECT_GT(report.checkedEntries, 0U);
}

TEST(Fsck, CleanShardedLayerPasses)
{
    SegmentJournal journal;
    ShardedTranslation layer(kEnd, 4,
                             ZoneConfig{64 * kKiB, 8 * kKiB});
    layer.attachJournal(&journal);
    for (Lba lba = 0; lba < 3200; lba += 160)
        layer.placeWrite({lba, 96});

    const FsckReport report = Fsck::check(layer, journal);
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(Fsck, CleanFiniteLogPassesThroughCleaning)
{
    FiniteLogConfig config;
    config.capacityBytes = kMiB;
    config.segmentBytes = 128 * kKiB;
    SegmentJournal journal;
    FiniteLogStructuredLayer layer(kEnd, config);
    layer.attachJournal(&journal);
    // Overwrite a hot region until segments are reclaimed, so the
    // cleaning-count and free-segment invariants see real work.
    for (int round = 0; round < 8; ++round)
        for (Lba lba = 0; lba < 1000; lba += 50) {
            layer.placeWrite({lba, 40});
            drainMaintenance(layer);
        }
    EXPECT_GT(layer.cleanings(), 0U);

    const FsckReport report = Fsck::check(layer, journal);
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(Fsck, CleanMediaCachePassesThroughMerge)
{
    MediaCacheConfig config;
    config.cacheBytes = 64 * kKiB;
    SegmentJournal journal;
    MediaCacheLayer layer(kEnd, config);
    layer.attachJournal(&journal);
    for (int round = 0; round < 4; ++round)
        for (Lba lba = 0; lba < 1000; lba += 50) {
            layer.placeWrite({lba, 40});
            drainMaintenance(layer);
        }
    EXPECT_GT(layer.mergeCount(), 0U);

    const FsckReport report = Fsck::check(layer, journal);
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(Fsck, DetectsUnjournaledMutation)
{
    SegmentJournal journal;
    LogStructuredLayer layer(kEnd);
    layer.attachJournal(&journal);
    layer.placeWrite({0, 64});
    // The journal "device" detaches, then the map keeps moving:
    // exactly the lost-metadata-write a crash would expose.
    layer.attachJournal(nullptr);
    layer.placeWrite({512, 64});

    const FsckReport report = Fsck::check(layer, journal);
    ASSERT_FALSE(report.ok());
    EXPECT_TRUE(hasViolation(report, "map-log-agreement") ||
                hasViolation(report, "frontier-alignment"))
        << report.toString();
}

TEST(Fsck, DetectsFrontierDrift)
{
    SegmentJournal journal;
    LogStructuredLayer layer(kEnd);
    layer.attachJournal(&journal);
    layer.placeWrite({0, 64});
    // A journal epoch whose placement never reached the map: the
    // layer is behind its own metadata.
    const JournalEntry phantom{1024, kEnd + 64, 32};
    journal.record(JournalRecordKind::Placement, kEnd + 96, 0,
                   {&phantom, 1});

    const FsckReport report = Fsck::check(layer, journal);
    ASSERT_FALSE(report.ok());
    EXPECT_TRUE(hasViolation(report, "frontier-alignment"))
        << report.toString();
    EXPECT_TRUE(hasViolation(report, "map-log-agreement"))
        << report.toString();
}

TEST(Fsck, ConventionalLayerRequiresEmptyJournal)
{
    ConventionalLayer layer;
    SegmentJournal empty;
    EXPECT_TRUE(Fsck::check(layer, empty).ok());

    SegmentJournal foreign;
    const JournalEntry entry{0, 4096, 8};
    foreign.record(JournalRecordKind::Placement, 4104, 0,
                   {&entry, 1});
    const FsckReport report = Fsck::check(layer, foreign);
    ASSERT_FALSE(report.ok());
    EXPECT_TRUE(hasViolation(report, "conventional-journal"))
        << report.toString();
}

TEST(Fsck, MountedLayerPassesAgainstItsJournal)
{
    SegmentJournal journal;
    {
        LogStructuredLayer writer(kEnd,
                                  ZoneConfig{64 * kKiB, 8 * kKiB});
        writer.attachJournal(&journal);
        for (Lba lba = 0; lba < 900; lba += 60)
            writer.placeWrite({lba, 48});
    }
    LogStructuredLayer remounted(
        kEnd, ZoneConfig{64 * kKiB, 8 * kKiB});
    const MountStats stats = remounted.mountFromJournal(journal);
    EXPECT_EQ(stats.epochsApplied, journal.epochs());

    const FsckReport report = Fsck::check(remounted, journal);
    EXPECT_TRUE(report.ok()) << report.toString();
}

} // namespace
} // namespace logseek::stl
