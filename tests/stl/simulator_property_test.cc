/**
 * @file
 * Property-based tests for the simulation engine over randomized
 * traces: translation correctness against a per-sector shadow
 * model, segment tiling, seek-accounting invariants, and mechanism
 * monotonicity.
 */

#include <gtest/gtest.h>

#include "util/logging.h"

#include <unordered_map>
#include <vector>

#include "stl/simulator.h"
#include "util/random.h"

namespace logseek::stl
{
namespace
{

trace::Trace
randomTrace(std::uint64_t seed, std::size_t ops, Lba space,
            double write_fraction)
{
    Rng rng(seed);
    trace::Trace trace("random-" + std::to_string(seed));
    for (std::size_t i = 0; i < ops; ++i) {
        const SectorCount count = 1 + rng.nextUint(32);
        const Lba lba = rng.nextUint(space - count);
        if (rng.nextBool(write_fraction))
            trace.appendWrite(lba, count);
        else
            trace.appendRead(lba, count);
    }
    return trace;
}

/**
 * Shadow model: tracks where every sector's current data lives and
 * validates each event against it.
 */
class ShadowValidator : public SimObserver
{
  public:
    void
    onEvent(const IoEvent &event) override
    {
        // Segments must tile the request in LBA order.
        Lba cursor = event.record.extent.start;
        for (const auto &segment : event.segments) {
            ASSERT_EQ(segment.logical.start, cursor)
                << "op " << event.opIndex << ": segment gap";
            cursor = segment.logical.end();
        }
        ASSERT_EQ(cursor, event.record.extent.end())
            << "op " << event.opIndex << ": segments do not cover";

        if (event.record.isWrite()) {
            for (const auto &segment : event.segments) {
                for (SectorCount i = 0; i < segment.logical.count;
                     ++i) {
                    sectors_[segment.logical.start + i] =
                        segment.pba + i;
                }
            }
            return;
        }
        for (const auto &segment : event.segments) {
            for (SectorCount i = 0; i < segment.logical.count; ++i) {
                const Lba lba = segment.logical.start + i;
                const auto it = sectors_.find(lba);
                const Pba expected =
                    it == sectors_.end() ? lba : it->second;
                ASSERT_EQ(segment.pba + i, expected)
                    << "op " << event.opIndex
                    << ": stale translation at lba " << lba;
            }
        }
        // Defragmentation relocates the just-read range.
        for (const auto &segment : event.defragSegments) {
            for (SectorCount i = 0; i < segment.logical.count; ++i) {
                sectors_[segment.logical.start + i] =
                    segment.pba + i;
            }
        }
    }

  private:
    std::unordered_map<Lba, Pba> sectors_;
};

struct PropertyParams
{
    std::uint64_t seed;
    double writeFraction;
    bool defrag;
    bool prefetch;
    bool cache;
};

class SimulatorProperty
    : public ::testing::TestWithParam<PropertyParams>
{
  protected:
    SimConfig
    makeConfig() const
    {
        const PropertyParams &params = GetParam();
        SimConfig config;
        config.translation = TranslationKind::LogStructured;
        if (params.defrag)
            config.defrag = DefragConfig{};
        if (params.prefetch)
            config.prefetch = PrefetchConfig{};
        if (params.cache)
            config.cache = SelectiveCacheConfig{4 * kMiB};
        return config;
    }
};

TEST_P(SimulatorProperty, ReadsAlwaysSeeLatestWrite)
{
    const trace::Trace trace =
        randomTrace(GetParam().seed, 2000, 4096,
                    GetParam().writeFraction);
    ShadowValidator validator;
    Simulator simulator(makeConfig());
    simulator.addObserver(&validator);
    simulator.run(trace);
}

TEST_P(SimulatorProperty, SeekCountsAreConsistent)
{
    const trace::Trace trace =
        randomTrace(GetParam().seed, 2000, 4096,
                    GetParam().writeFraction);
    const SimResult result = Simulator(makeConfig()).run(trace);

    EXPECT_EQ(result.reads + result.writes, trace.size());
    EXPECT_LE(result.fragmentedReads, result.reads);
    // Every fragmented read contributes at least two fragments.
    EXPECT_GE(result.readFragments, 2 * result.fragmentedReads);
    // Total seeks bounded by total media accesses (each access
    // seeks at most once).
    EXPECT_LE(result.totalSeeks(),
              result.readFragments + result.reads + result.writes +
                  result.defragRewrites);
}

TEST_P(SimulatorProperty, PlainLsWriteSeeksBoundedByReadCount)
{
    // Under plain LS, writes only seek when the head was pulled
    // away by a read (or at the very first access), so write seeks
    // can never exceed reads + 1.
    const trace::Trace trace =
        randomTrace(GetParam().seed, 2000, 4096,
                    GetParam().writeFraction);
    SimConfig config;
    config.translation = TranslationKind::LogStructured;
    const SimResult result = Simulator(config).run(trace);
    EXPECT_LE(result.writeSeeks, result.reads + 1);
}

TEST_P(SimulatorProperty, CacheNeverIncreasesMediaReads)
{
    const trace::Trace trace =
        randomTrace(GetParam().seed, 2000, 4096,
                    GetParam().writeFraction);
    SimConfig plain;
    plain.translation = TranslationKind::LogStructured;
    SimConfig cached = plain;
    cached.cache = SelectiveCacheConfig{64 * kMiB};

    const SimResult base = Simulator(plain).run(trace);
    const SimResult with_cache = Simulator(cached).run(trace);
    EXPECT_LE(with_cache.mediaReadBytes, base.mediaReadBytes);
    // Note: readSeeks can occasionally increase — serving a
    // fragment from RAM leaves the head behind, so the next media
    // access may seek where it would not have. Media traffic,
    // however, can only shrink.
}

TEST_P(SimulatorProperty, DeterministicAcrossRuns)
{
    const trace::Trace trace =
        randomTrace(GetParam().seed, 1000, 4096,
                    GetParam().writeFraction);
    const SimResult a = Simulator(makeConfig()).run(trace);
    const SimResult b = Simulator(makeConfig()).run(trace);
    EXPECT_EQ(a.totalSeeks(), b.totalSeeks());
    EXPECT_EQ(a.cacheHits, b.cacheHits);
    EXPECT_EQ(a.prefetchHits, b.prefetchHits);
    EXPECT_EQ(a.defragRewrites, b.defragRewrites);
    EXPECT_EQ(a.mediaReadBytes, b.mediaReadBytes);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, SimulatorProperty,
    ::testing::Values(
        PropertyParams{11, 0.9, false, false, false},
        PropertyParams{12, 0.5, false, false, false},
        PropertyParams{13, 0.1, false, false, false},
        PropertyParams{14, 0.5, true, false, false},
        PropertyParams{15, 0.5, false, true, false},
        PropertyParams{16, 0.5, false, false, true},
        PropertyParams{17, 0.3, true, true, true},
        PropertyParams{18, 0.7, true, false, true},
        PropertyParams{19, 0.2, false, true, true},
        PropertyParams{20, 0.95, true, true, false}));

} // namespace
} // namespace logseek::stl
