/**
 * @file
 * Unit tests for the media-cache translation layer (the paper §II
 * "simple STL" comparator) and its cleaning accounting in the
 * simulator.
 */

#include <gtest/gtest.h>

#include "stl/media_cache.h"
#include "stl/simulator.h"
#include "util/logging.h"

namespace logseek::stl
{
namespace
{

MediaCacheConfig
smallConfig()
{
    MediaCacheConfig config;
    config.cacheBytes = 64 * kSectorBytes; // 64 sectors
    config.mergeThreshold = 0.5;           // merge at 32 dirty
    config.bandBytes = 32 * kSectorBytes;  // 32-sector bands
    return config;
}

TEST(MediaCacheLayer, WritesAppendToCacheRegion)
{
    MediaCacheLayer layer(1000, smallConfig());
    EXPECT_EQ(layer.cacheStart(), 1000u);
    const auto first = layer.placeWrite({10, 4});
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].pba, 1000u);
    const auto second = layer.placeWrite({500, 8});
    EXPECT_EQ(second[0].pba, 1004u);
    EXPECT_EQ(layer.cacheUsedSectors(), 12u);
}

TEST(MediaCacheLayer, ReadsFindCacheResidentData)
{
    MediaCacheLayer layer(1000, smallConfig());
    layer.placeWrite({10, 4});
    const auto segments = layer.translateRead({10, 4});
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_EQ(segments[0].pba, 1000u);
    EXPECT_TRUE(segments[0].mapped);
}

TEST(MediaCacheLayer, UnwrittenDataReadsAtIdentity)
{
    MediaCacheLayer layer(1000, smallConfig());
    const auto segments = layer.translateRead({50, 10});
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_FALSE(segments[0].mapped);
    EXPECT_EQ(segments[0].pba, 50u);
}

TEST(MediaCacheLayer, NoMaintenanceBelowThreshold)
{
    MediaCacheLayer layer(1000, smallConfig());
    layer.placeWrite({0, 16}); // 16 < 32 threshold
    EXPECT_TRUE(layer.maintenance().empty());
    EXPECT_EQ(layer.mergeCount(), 0u);
}

TEST(MediaCacheLayer, MergeTriggersAtThreshold)
{
    MediaCacheLayer layer(1000, smallConfig());
    layer.placeWrite({0, 16});
    layer.placeWrite({100, 16}); // 32 dirty = threshold
    const auto accesses = layer.maintenance();
    EXPECT_FALSE(accesses.empty());
    EXPECT_EQ(layer.mergeCount(), 1u);
    EXPECT_EQ(layer.cacheUsedSectors(), 0u);
}

TEST(MediaCacheLayer, MergeIsBandReadModifyWrite)
{
    MediaCacheLayer layer(1000, smallConfig());
    layer.placeWrite({0, 16});  // band 0 (sectors 0..31)
    layer.placeWrite({40, 16}); // band 1 (sectors 32..63)
    const auto accesses = layer.maintenance();

    // Per band: band read, cache-fragment read, band write.
    ASSERT_EQ(accesses.size(), 6u);
    EXPECT_EQ(accesses[0].physical, (SectorExtent{0, 32}));
    EXPECT_EQ(accesses[0].type, trace::IoType::Read);
    EXPECT_EQ(accesses[1].physical, (SectorExtent{1000, 16}));
    EXPECT_EQ(accesses[1].type, trace::IoType::Read);
    EXPECT_EQ(accesses[2].physical, (SectorExtent{0, 32}));
    EXPECT_EQ(accesses[2].type, trace::IoType::Write);
    EXPECT_EQ(accesses[3].physical, (SectorExtent{32, 32}));
    EXPECT_EQ(accesses[4].physical, (SectorExtent{1016, 16}));
    EXPECT_EQ(accesses[5].type, trace::IoType::Write);
}

TEST(MediaCacheLayer, AdjacentCacheFragmentsCoalesceInMerge)
{
    MediaCacheLayer layer(1000, smallConfig());
    layer.placeWrite({0, 8});
    layer.placeWrite({8, 8});
    layer.placeWrite({16, 16}); // all one band, contiguous in cache
    const auto accesses = layer.maintenance();
    // band read + ONE coalesced cache read + band write.
    ASSERT_EQ(accesses.size(), 3u);
    EXPECT_EQ(accesses[1].physical, (SectorExtent{1000, 32}));
}

TEST(MediaCacheLayer, EntryStraddlingBandBoundaryIsSplit)
{
    MediaCacheLayer layer(1000, smallConfig());
    layer.placeWrite({24, 16}); // sectors 24..39: bands 0 and 1
    layer.placeWrite({100, 16});
    const auto accesses = layer.maintenance();
    // Bands 0, 1 and 3 are dirty -> three RMW groups.
    int band_writes = 0;
    for (const auto &access : accesses) {
        if (access.type == trace::IoType::Write)
            ++band_writes;
    }
    EXPECT_EQ(band_writes, 3);
}

TEST(MediaCacheLayer, ReadsAfterMergeAreIdentity)
{
    MediaCacheLayer layer(1000, smallConfig());
    layer.placeWrite({0, 32});
    (void)layer.maintenance();
    const auto segments = layer.translateRead({0, 32});
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_FALSE(segments[0].mapped);
    EXPECT_EQ(segments[0].pba, 0u);
    EXPECT_EQ(layer.staticFragmentCount(), 0u);
}

TEST(MediaCacheLayer, CachePointerRewindsAfterMerge)
{
    MediaCacheLayer layer(1000, smallConfig());
    layer.placeWrite({0, 32});
    (void)layer.maintenance();
    const auto placed = layer.placeWrite({5, 4});
    EXPECT_EQ(placed[0].pba, 1000u);
}

TEST(MediaCacheLayer, LastBandClampedToDataZoneEnd)
{
    MediaCacheLayer layer(40, smallConfig()); // 40-sector space
    layer.placeWrite({36, 4}); // band 1, clamped to 8 sectors
    layer.placeWrite({0, 28});
    const auto accesses = layer.maintenance();
    bool found_clamped = false;
    for (const auto &access : accesses) {
        if (access.physical.start == 32)
            found_clamped = access.physical.count == 8;
    }
    EXPECT_TRUE(found_clamped);
}

TEST(MediaCacheLayer, InvalidConfigPanics)
{
    MediaCacheConfig zero_cache = smallConfig();
    zero_cache.cacheBytes = 0;
    EXPECT_THROW(MediaCacheLayer(1000, zero_cache), PanicError);

    MediaCacheConfig bad_threshold = smallConfig();
    bad_threshold.mergeThreshold = 0.0;
    EXPECT_THROW(MediaCacheLayer(1000, bad_threshold), PanicError);

    MediaCacheConfig zero_band = smallConfig();
    zero_band.bandBytes = 0;
    EXPECT_THROW(MediaCacheLayer(1000, zero_band), PanicError);
}

TEST(MediaCacheLayer, WriteBeyondDataZonesPanics)
{
    MediaCacheLayer layer(100, smallConfig());
    EXPECT_THROW(layer.placeWrite({98, 4}), PanicError);
}

// ---- Simulator integration ----

SimConfig
mediaCacheSim()
{
    SimConfig config;
    config.translation = TranslationKind::MediaCache;
    config.mediaCache = smallConfig();
    return config;
}

TEST(MediaCacheSim, LabelAndBasicRun)
{
    trace::Trace trace("t");
    trace.appendWrite(0, 8);
    trace.appendRead(0, 8);
    const SimResult result = Simulator(mediaCacheSim()).run(trace);
    EXPECT_EQ(result.configLabel, "MediaCache");
    EXPECT_EQ(result.reads, 1u);
    EXPECT_EQ(result.writes, 1u);
}

TEST(MediaCacheSim, CleaningTrafficIsAccountedSeparately)
{
    trace::Trace trace("t");
    // Enough writes to force a merge (threshold = 32 sectors).
    for (int i = 0; i < 8; ++i)
        trace.appendWrite(static_cast<Lba>(i * 100), 8);

    const SimResult result = Simulator(mediaCacheSim()).run(trace);
    EXPECT_GE(result.cleaningMerges, 1u);
    EXPECT_GT(result.cleaningReadBytes, 0u);
    EXPECT_GT(result.cleaningWriteBytes, 0u);
    EXPECT_GT(result.cleaningSeeks, 0u);
    // Host-visible byte accounting excludes cleaning.
    EXPECT_EQ(result.hostWriteBytes, 64 * kSectorBytes);
    EXPECT_EQ(result.mediaWriteBytes, 64 * kSectorBytes);
}

TEST(MediaCacheSim, WriteAmplificationAboveOne)
{
    trace::Trace trace("t");
    for (int i = 0; i < 8; ++i)
        trace.appendWrite(static_cast<Lba>(i * 100), 8);
    const SimResult result = Simulator(mediaCacheSim()).run(trace);
    // 64 host sectors trigger band rewrites of 32 sectors per dirty
    // band: WAF must exceed 1.
    EXPECT_GT(result.writeAmplification(), 1.0);

    // The full-map log-structured layer never cleans: WAF == 1.
    SimConfig ls;
    ls.translation = TranslationKind::LogStructured;
    const SimResult ls_result = Simulator(ls).run(trace);
    EXPECT_DOUBLE_EQ(ls_result.writeAmplification(), 1.0);
    EXPECT_EQ(ls_result.cleaningSeeks, 0u);
}

TEST(MediaCacheSim, ReadSeekAmplificationStaysLow)
{
    // The §II tradeoff: after merges, data is in LBA order, so
    // sequential reads of previously random-written data do not
    // fragment — unlike the full-map log.
    trace::Trace trace("t");
    Lba lba = 0;
    for (int i = 0; i < 8; ++i) {
        trace.appendWrite((lba * 37) % 120, 8);
        lba += 8;
    }
    // Merge has certainly happened (64 sectors > threshold).
    trace.appendRead(0, 120);

    SimConfig nols;
    nols.translation = TranslationKind::Conventional;
    const SimResult base = Simulator(nols).run(trace);
    const SimResult mc = Simulator(mediaCacheSim()).run(trace);

    SimConfig ls;
    ls.translation = TranslationKind::LogStructured;
    const SimResult log = Simulator(ls).run(trace);

    EXPECT_LE(mc.readSeeks, log.readSeeks);
    EXPECT_LE(mc.readSeeks, base.readSeeks + 1);
}

TEST(MediaCacheSim, EventsCarryCleaningSeeks)
{
    trace::Trace trace("t");
    for (int i = 0; i < 8; ++i)
        trace.appendWrite(static_cast<Lba>(i * 100), 8);

    class CleaningRecorder : public SimObserver
    {
      public:
        void onEvent(const IoEvent &event) override
        {
            total += event.cleaningSeeks;
        }
        std::uint32_t total = 0;
    } recorder;

    Simulator simulator(mediaCacheSim());
    simulator.addObserver(&recorder);
    const SimResult result = simulator.run(trace);
    EXPECT_EQ(recorder.total, result.cleaningSeeks);
}

} // namespace
} // namespace logseek::stl
