/**
 * @file
 * Unit tests for the translation-aware selective cache.
 */

#include <gtest/gtest.h>

#include "stl/selective_cache.h"

namespace logseek::stl
{
namespace
{

TEST(SelectiveCache, MissThenHit)
{
    SelectiveCache cache;
    EXPECT_FALSE(cache.lookup({100, 8}));
    cache.admit({100, 8});
    EXPECT_TRUE(cache.lookup({100, 8}));
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(SelectiveCache, DefaultCapacityIs64MiB)
{
    const SelectiveCache cache;
    EXPECT_EQ(cache.capacityBytes(), 64 * kMiB);
}

TEST(SelectiveCache, SubRangeOfCachedFragmentHits)
{
    SelectiveCache cache;
    cache.admit({100, 64});
    EXPECT_TRUE(cache.lookup({120, 8}));
}

TEST(SelectiveCache, LruEvictionUnderPressure)
{
    SelectiveCacheConfig config;
    config.capacityBytes = 16 * kSectorBytes;
    SelectiveCache cache(config);
    cache.admit({0, 8});
    cache.admit({100, 8});
    EXPECT_TRUE(cache.lookup({0, 8}));  // refresh
    cache.admit({200, 8});              // evicts 100
    EXPECT_TRUE(cache.lookup({0, 8}));
    EXPECT_FALSE(cache.lookup({100, 8}));
    EXPECT_GE(cache.evictionCount(), 1u);
}

TEST(SelectiveCache, UsedBytesNeverExceedsCapacity)
{
    SelectiveCacheConfig config;
    config.capacityBytes = 64 * kSectorBytes;
    SelectiveCache cache(config);
    for (std::uint64_t i = 0; i < 100; ++i)
        cache.admit({i * 1000, 16});
    EXPECT_LE(cache.usedBytes(), config.capacityBytes);
}

TEST(SelectiveCache, CountersAccumulate)
{
    SelectiveCache cache;
    cache.admit({0, 4});
    for (int i = 0; i < 5; ++i)
        cache.lookup({0, 4});
    for (int i = 0; i < 3; ++i)
        cache.lookup({999, 4});
    EXPECT_EQ(cache.hits(), 5u);
    EXPECT_EQ(cache.misses(), 3u);
}

TEST(SelectiveCache, DisabledByZeroCapacity)
{
    SelectiveCacheConfig config;
    config.capacityBytes = 0;
    SelectiveCache cache(config);
    cache.admit({0, 8});
    EXPECT_FALSE(cache.lookup({0, 8}));
}

} // namespace
} // namespace logseek::stl
