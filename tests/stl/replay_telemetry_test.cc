/**
 * @file
 * Cross-checks replay telemetry against SimResult: the counters
 * wired through Accounting and the replay engine must agree with
 * the simulator's own tallies when telemetry is armed, stay at
 * zero when it is not, and never perturb the simulation itself.
 */

#include <gtest/gtest.h>

#include "stl/simulator.h"
#include "telemetry/metrics.h"
#include "util/random.h"

namespace logseek::stl
{
namespace
{

/** Arms telemetry for one test and restores the default (off). */
struct EnabledGuard
{
    EnabledGuard() { setEnabledAndReset(true); }
    ~EnabledGuard() { setEnabledAndReset(false); }

  private:
    static void setEnabledAndReset(bool on)
    {
        telemetry::Registry::global().resetValues();
        telemetry::setEnabled(on);
    }
};

trace::Trace
mixedTrace()
{
    trace::Trace trace("t");
    trace.appendWrite(0, 8);
    trace.appendWrite(8, 8);
    trace.appendWrite(100, 8);
    trace.appendWrite(4, 2); // fragments the first extent
    trace.appendRead(0, 10); // fragmented read under LS
    trace.appendRead(108, 4);
    trace.appendRead(50, 4);
    return trace;
}

SimConfig
lsConfig()
{
    SimConfig config;
    config.translation = TranslationKind::LogStructured;
    return config;
}

std::uint64_t
counterValue(const telemetry::MetricsSnapshot &snap,
             const std::string &name, const std::string &labels)
{
    const telemetry::CounterSnapshot *counter =
        snap.findCounter(name, labels);
    return counter != nullptr ? counter->value : 0;
}

TEST(ReplayTelemetry, DisabledReplayLeavesCountersAtZero)
{
    telemetry::Registry::global().resetValues();
    ASSERT_FALSE(telemetry::enabled());
    const SimResult result =
        Simulator(lsConfig()).run(mixedTrace());
    EXPECT_GT(result.reads, 0u);

    const telemetry::MetricsSnapshot snap =
        telemetry::Registry::global().snapshot();
    EXPECT_EQ(counterValue(snap, "replay_requests_total",
                           "type=\"read\""),
              0u);
    EXPECT_EQ(counterValue(snap, "replay_requests_total",
                           "type=\"write\""),
              0u);
    const telemetry::HistogramSnapshot *latency =
        snap.findHistogram("replay_read_latency_ns");
    if (latency != nullptr) {
        EXPECT_EQ(latency->count, 0u);
    }
}

TEST(ReplayTelemetry, EnabledReplayCountersMatchSimResult)
{
    const EnabledGuard armed;
    const SimResult result =
        Simulator(lsConfig()).run(mixedTrace());

    const telemetry::MetricsSnapshot snap =
        telemetry::Registry::global().snapshot();
    EXPECT_EQ(counterValue(snap, "replay_requests_total",
                           "type=\"read\""),
              result.reads);
    EXPECT_EQ(counterValue(snap, "replay_requests_total",
                           "type=\"write\""),
              result.writes);
    EXPECT_EQ(counterValue(snap, "replay_seeks_total",
                           "type=\"read\""),
              result.readSeeks);
    EXPECT_EQ(counterValue(snap, "replay_seeks_total",
                           "type=\"write\""),
              result.writeSeeks);

    // One read-latency sample per host read request.
    const telemetry::HistogramSnapshot *latency =
        snap.findHistogram("replay_read_latency_ns");
    ASSERT_NE(latency, nullptr);
    EXPECT_EQ(latency->count, result.reads);

    // The per-stage serve counters saw every fragment the replay
    // produced (each fragment resolves to exactly one outcome in
    // exactly one stage, plus misses passed along the pipeline).
    std::uint64_t stage_serves = 0;
    for (const telemetry::CounterSnapshot &counter : snap.counters)
        if (counter.name == "replay_stage_serves_total")
            stage_serves += counter.value;
    EXPECT_GE(stage_serves, result.readFragments);

    // One translate-latency sample per host read request.
    const telemetry::HistogramSnapshot *translate =
        snap.findHistogram("replay_translate_latency_ns");
    ASSERT_NE(translate, nullptr);
    EXPECT_EQ(translate->count, result.reads);
}

TEST(ReplayTelemetry, ExtentMapCountersObserveTheHotPath)
{
    const EnabledGuard armed;
    // Enough sequential writes and reads to split leaves and give
    // the last-touched-leaf cursor repeated same-window lookups.
    trace::Trace trace("t");
    for (Lba lba = 0; lba < 4096; lba += 8)
        trace.appendWrite(lba, 4); // gaps prevent coalescing
    for (Lba lba = 0; lba < 4096; lba += 8)
        trace.appendRead(lba, 4);
    (void)Simulator(lsConfig()).run(trace);

    const telemetry::MetricsSnapshot snap =
        telemetry::Registry::global().snapshot();
    // 512 four-sector entries at 64 per leaf forces splits.
    EXPECT_GT(counterValue(snap, "extent_map_node_splits_total", ""),
              0u);
    // The sequential read pass resolves mostly on the cursor.
    EXPECT_GT(counterValue(snap, "extent_map_cursor_hits_total", ""),
              0u);
}

TEST(ReplayTelemetry, TelemetryDoesNotPerturbTheSimulation)
{
    telemetry::Registry::global().resetValues();
    ASSERT_FALSE(telemetry::enabled());
    const SimResult plain =
        Simulator(lsConfig()).run(mixedTrace());

    SimResult instrumented;
    {
        const EnabledGuard armed;
        instrumented = Simulator(lsConfig()).run(mixedTrace());
    }

    EXPECT_EQ(plain.reads, instrumented.reads);
    EXPECT_EQ(plain.writes, instrumented.writes);
    EXPECT_EQ(plain.readSeeks, instrumented.readSeeks);
    EXPECT_EQ(plain.writeSeeks, instrumented.writeSeeks);
    EXPECT_EQ(plain.readFragments, instrumented.readFragments);
    EXPECT_EQ(plain.fragmentedReads, instrumented.fragmentedReads);
    EXPECT_EQ(plain.totalSeeks(), instrumented.totalSeeks());
}

TEST(ReplayTelemetry, CleaningSeekCounterMatchesSimResult)
{
    const EnabledGuard armed;
    // Random overwrites leave every reclaimed segment partly live,
    // so cleaning must merge (move data and seek) rather than
    // reclaiming fully-dead segments for free — the regime where
    // replay_seeks_total{type="cleaning"} must actually move.
    trace::Trace trace("t");
    Rng rng(7);
    for (int i = 0; i < 6000; ++i)
        trace.appendWrite(rng.nextUint(4096), 8);

    SimConfig config;
    config.translation = TranslationKind::FiniteLogStructured;
    config.finiteLog.capacityBytes = 8 * kMiB;
    config.finiteLog.segmentBytes = 512 * kKiB;
    config.finiteLog.cleanReserveSegments = 2;
    config.finiteLog.cleanTargetSegments = 4;
    const SimResult result = Simulator(config).run(trace);

    // The premise: this workload really exercises the cleaner.
    ASSERT_GT(result.cleaningMerges, 0u);
    ASSERT_GT(result.cleaningSeeks, 0u);

    const telemetry::MetricsSnapshot snap =
        telemetry::Registry::global().snapshot();
    EXPECT_EQ(counterValue(snap, "replay_seeks_total",
                           "type=\"cleaning\""),
              result.cleaningSeeks);
}

TEST(ReplayTelemetry, CleaningSeekCounterMovesUnderShardedReplay)
{
    const EnabledGuard armed;
    // The sharded core defers seek classification to a flush after
    // each batch; Accounting::cleaningAccess must still be the
    // path that counts cleaning seeks, so the labelled counter
    // must match the SimResult under --replay-shards > 1 exactly
    // as it does serially.
    trace::Trace trace("t");
    Rng rng(7);
    for (int i = 0; i < 6000; ++i)
        trace.appendWrite(rng.nextUint(4096), 8);

    SimConfig config;
    config.translation = TranslationKind::FiniteLogStructured;
    config.finiteLog.capacityBytes = 8 * kMiB;
    config.finiteLog.segmentBytes = 512 * kKiB;
    config.finiteLog.cleanReserveSegments = 2;
    config.finiteLog.cleanTargetSegments = 4;
    config.replayShards = 4;
    const SimResult result = Simulator(config).run(trace);

    ASSERT_GT(result.cleaningMerges, 0u);
    ASSERT_GT(result.cleaningSeeks, 0u);

    const telemetry::MetricsSnapshot snap =
        telemetry::Registry::global().snapshot();
    EXPECT_EQ(counterValue(snap, "replay_seeks_total",
                           "type=\"cleaning\""),
              result.cleaningSeeks);
    // The finite log's own GC telemetry moves with the cleaner.
    EXPECT_EQ(counterValue(snap, "gc_reclaims_total",
                           "policy=\"greedy\""),
              result.cleaningMerges);
    EXPECT_EQ(counterValue(snap, "gc_moved_bytes_total",
                           "policy=\"greedy\""),
              result.gcVictimLiveBytes);
}

TEST(ReplayTelemetry, RepeatedReplaysAccumulateCounters)
{
    const EnabledGuard armed;
    const SimResult once = Simulator(lsConfig()).run(mixedTrace());
    (void)Simulator(lsConfig()).run(mixedTrace());

    const telemetry::MetricsSnapshot snap =
        telemetry::Registry::global().snapshot();
    EXPECT_EQ(counterValue(snap, "replay_requests_total",
                           "type=\"read\""),
              2 * once.reads);
}

} // namespace
} // namespace logseek::stl
