/**
 * @file
 * Unit tests for the trace-replay simulation engine.
 */

#include <gtest/gtest.h>

#include <vector>

#include "stl/simulator.h"
#include "util/logging.h"

namespace logseek::stl
{
namespace
{

SimConfig
lsConfig()
{
    SimConfig config;
    config.translation = TranslationKind::LogStructured;
    return config;
}

SimConfig
nolsConfig()
{
    SimConfig config;
    config.translation = TranslationKind::Conventional;
    return config;
}

/** Observer that records every event. */
class Recorder : public SimObserver
{
  public:
    void onEvent(const IoEvent &event) override
    {
        events.push_back(event);
    }

    std::vector<IoEvent> events;
};

TEST(Simulator, ConventionalCountsTraceOrderSeeks)
{
    trace::Trace trace("t");
    trace.appendWrite(0, 8);    // no seek (starts at 0)
    trace.appendWrite(8, 8);    // sequential
    trace.appendWrite(100, 8);  // write seek
    trace.appendRead(108, 4);   // sequential
    trace.appendRead(50, 4);    // read seek

    const SimResult result = Simulator(nolsConfig()).run(trace);
    EXPECT_EQ(result.writeSeeks, 1u);
    EXPECT_EQ(result.readSeeks, 1u);
    EXPECT_EQ(result.reads, 2u);
    EXPECT_EQ(result.writes, 3u);
    EXPECT_EQ(result.fragmentedReads, 0u);
}

TEST(Simulator, LogStructuredEliminatesWriteSeeks)
{
    trace::Trace trace("t");
    // Scattered writes: all seek under NoLS (after the first), none
    // under LS except the initial jump to the frontier.
    trace.appendWrite(500, 8);
    trace.appendWrite(10, 8);
    trace.appendWrite(900, 8);
    trace.appendWrite(300, 8);

    const SimResult nols = Simulator(nolsConfig()).run(trace);
    const SimResult ls = Simulator(lsConfig()).run(trace);
    EXPECT_EQ(nols.writeSeeks, 4u);
    EXPECT_EQ(ls.writeSeeks, 1u); // only the move to the frontier
}

TEST(Simulator, FragmentedReadCostsOneSeekPerFragment)
{
    trace::Trace trace("t");
    trace.appendWrite(0, 10);
    trace.appendWrite(4, 2); // fragment the middle
    trace.appendRead(0, 10); // 3 fragments under LS

    const SimResult ls = Simulator(lsConfig()).run(trace);
    EXPECT_EQ(ls.fragmentedReads, 1u);
    EXPECT_EQ(ls.readFragments, 3u);
    EXPECT_EQ(ls.readSeeks, 3u);

    const SimResult nols = Simulator(nolsConfig()).run(trace);
    EXPECT_EQ(nols.fragmentedReads, 0u);
    EXPECT_EQ(nols.readSeeks, 1u);
}

TEST(Simulator, UnwrittenDataReadsSeekIdenticallyInBothModes)
{
    trace::Trace trace("t");
    trace.appendRead(100, 8);
    trace.appendRead(5000, 8);
    trace.appendRead(200, 8);

    const SimResult nols = Simulator(nolsConfig()).run(trace);
    const SimResult ls = Simulator(lsConfig()).run(trace);
    EXPECT_EQ(nols.readSeeks, ls.readSeeks);
    EXPECT_EQ(nols.totalSeeks(), ls.totalSeeks());
}

TEST(Simulator, TemporalReplayReadsAreSeekFreeUnderLs)
{
    // The paper's log-friendly toy case: scattered writes re-read
    // in write order cost no read seeks under LS (one seek to reach
    // the log, then fully sequential).
    trace::Trace trace("t");
    const std::vector<Lba> lbas{500, 10, 900, 300};
    for (const Lba lba : lbas)
        trace.appendWrite(lba, 8);
    for (const Lba lba : lbas)
        trace.appendRead(lba, 8);

    const SimResult ls = Simulator(lsConfig()).run(trace);
    EXPECT_EQ(ls.readSeeks, 1u); // jump back to the log start only

    const SimResult nols = Simulator(nolsConfig()).run(trace);
    EXPECT_EQ(nols.readSeeks, 4u);
}

TEST(Simulator, SequentialReadAfterRandomWriteAmplifies)
{
    // The paper's log-sensitive toy case.
    trace::Trace trace("t");
    for (Lba lba = 0; lba < 100; lba += 10)
        trace.appendWrite(lba + (lba * 7) % 90, 2);
    trace.appendRead(0, 100);

    const auto [nols, ls] = runWithBaseline(trace, lsConfig());
    EXPECT_GT(ls.readSeeks, nols.readSeeks);
}

TEST(Simulator, EventSegmentsAndIndexing)
{
    trace::Trace trace("t");
    trace.appendWrite(0, 10);
    trace.appendWrite(4, 2);
    trace.appendRead(0, 10);

    Recorder recorder;
    Simulator simulator(lsConfig());
    simulator.addObserver(&recorder);
    simulator.run(trace);

    ASSERT_EQ(recorder.events.size(), 3u);
    EXPECT_EQ(recorder.events[0].opIndex, 0u);
    EXPECT_EQ(recorder.events[2].opIndex, 2u);
    EXPECT_EQ(recorder.events[0].segments.size(), 1u);
    EXPECT_EQ(recorder.events[2].segments.size(), 3u);
    EXPECT_TRUE(recorder.events[2].isFragmentedRead());
    EXPECT_FALSE(recorder.events[0].isFragmentedRead());
}

TEST(Simulator, MediaBytesAccounting)
{
    trace::Trace trace("t");
    trace.appendWrite(0, 10);
    trace.appendRead(0, 10);
    const SimResult result = Simulator(lsConfig()).run(trace);
    EXPECT_EQ(result.mediaWriteBytes, 10 * kSectorBytes);
    EXPECT_EQ(result.mediaReadBytes, 10 * kSectorBytes);
}

TEST(Simulator, DefragRewritesFragmentedRead)
{
    trace::Trace trace("t");
    trace.appendWrite(0, 10);
    trace.appendWrite(4, 2);
    trace.appendRead(0, 10); // fragmented -> rewrite
    trace.appendRead(0, 10); // now contiguous

    SimConfig config = lsConfig();
    config.defrag = DefragConfig{};
    Recorder recorder;
    Simulator simulator(config);
    simulator.addObserver(&recorder);
    const SimResult result = simulator.run(trace);

    EXPECT_EQ(result.defragRewrites, 1u);
    EXPECT_EQ(result.defragBytes, 10 * kSectorBytes);
    EXPECT_TRUE(recorder.events[2].defragRewrite);
    EXPECT_FALSE(recorder.events[3].defragRewrite);
    // The second read sees a single segment.
    EXPECT_EQ(recorder.events[3].segments.size(), 1u);
    // The rewrite itself moved bytes to the media.
    EXPECT_EQ(result.mediaWriteBytes, (10 + 2 + 10) * kSectorBytes);
}

TEST(Simulator, DefragCountsRewriteSeeksAsWriteSeeks)
{
    trace::Trace trace("t");
    trace.appendWrite(0, 10);
    trace.appendWrite(20, 10);
    trace.appendWrite(4, 2);
    trace.appendRead(0, 10); // fragmented; head ends mid-log
    trace.appendRead(0, 10);

    SimConfig plain = lsConfig();
    SimConfig with_defrag = lsConfig();
    with_defrag.defrag = DefragConfig{};

    const SimResult base = Simulator(plain).run(trace);
    const SimResult defragged = Simulator(with_defrag).run(trace);
    // The rewrite adds at least one write seek relative to plain LS.
    EXPECT_GT(defragged.writeSeeks, base.writeSeeks);
    // But the repeated read becomes cheaper.
    EXPECT_LT(defragged.readSeeks, base.readSeeks);
}

TEST(Simulator, SelectiveCacheServesRepeatedFragments)
{
    trace::Trace trace("t");
    trace.appendWrite(0, 10);
    trace.appendWrite(4, 2);
    trace.appendRead(0, 10);
    trace.appendRead(0, 10);
    trace.appendRead(0, 10);

    SimConfig config = lsConfig();
    config.cache = SelectiveCacheConfig{};
    const SimResult result = Simulator(config).run(trace);
    // Second and third reads fully cached: 3 fragments each.
    EXPECT_EQ(result.cacheHits, 6u);
    // Only the first fragmented read touches the media.
    const SimResult plain = Simulator(lsConfig()).run(trace);
    EXPECT_LT(result.readSeeks, plain.readSeeks);
}

TEST(Simulator, CacheDoesNotEngageOnUnfragmentedReads)
{
    trace::Trace trace("t");
    trace.appendWrite(0, 10);
    trace.appendRead(0, 10);
    trace.appendRead(0, 10);

    SimConfig config = lsConfig();
    config.cache = SelectiveCacheConfig{};
    const SimResult result = Simulator(config).run(trace);
    EXPECT_EQ(result.cacheHits, 0u);
    EXPECT_EQ(result.cacheMisses, 0u);
}

TEST(Simulator, PrefetchHitsWithinFragmentedRead)
{
    // Two LBA-adjacent sectors written in reverse order land
    // reversed in the log; with look-behind the second fragment is
    // already buffered.
    trace::Trace trace("t");
    trace.appendWrite(11, 1);
    trace.appendWrite(10, 1);
    trace.appendRead(10, 2);

    SimConfig config = lsConfig();
    config.prefetch = PrefetchConfig{};
    const SimResult result = Simulator(config).run(trace);
    EXPECT_EQ(result.prefetchHits, 1u);

    const SimResult plain = Simulator(lsConfig()).run(trace);
    EXPECT_LT(result.readSeeks, plain.readSeeks);
}

TEST(Simulator, StaticFragmentsReported)
{
    trace::Trace trace("t");
    trace.appendWrite(0, 4);
    trace.appendWrite(100, 4);
    trace.appendWrite(50, 4);
    const SimResult ls = Simulator(lsConfig()).run(trace);
    EXPECT_EQ(ls.staticFragments, 3u);
    const SimResult nols = Simulator(nolsConfig()).run(trace);
    EXPECT_EQ(nols.staticFragments, 0u);
}

TEST(Simulator, RunIsRepeatable)
{
    trace::Trace trace("t");
    for (Lba lba = 0; lba < 1000; lba += 7)
        trace.appendWrite(lba, 3);
    trace.appendRead(0, 500);

    Simulator simulator(lsConfig());
    const SimResult first = simulator.run(trace);
    const SimResult second = simulator.run(trace);
    EXPECT_EQ(first.totalSeeks(), second.totalSeeks());
    EXPECT_EQ(first.readFragments, second.readFragments);
}

TEST(Simulator, SeekAmplificationHelper)
{
    SimResult baseline;
    baseline.readSeeks = 50;
    baseline.writeSeeks = 50;
    SimResult ls;
    ls.readSeeks = 300;
    ls.writeSeeks = 0;
    ASSERT_TRUE(seekAmplification(baseline, ls).has_value());
    EXPECT_DOUBLE_EQ(*seekAmplification(baseline, ls), 3.0);

    // A zero-seek baseline has no meaningful ratio: the helper
    // reports "undefined", not "no amplification".
    SimResult empty;
    EXPECT_FALSE(seekAmplification(empty, ls).has_value());
}

TEST(Simulator, ConfigLabels)
{
    EXPECT_EQ(nolsConfig().label(), "NoLS");
    EXPECT_EQ(lsConfig().label(), "LS");
    SimConfig config = lsConfig();
    config.defrag = DefragConfig{};
    EXPECT_EQ(config.label(), "LS+defrag");
    config.prefetch = PrefetchConfig{};
    config.cache = SelectiveCacheConfig{};
    EXPECT_EQ(config.label(), "LS+defrag+prefetch+cache");
}

TEST(Simulator, RunWithBaselineUsesConventionalBaseline)
{
    trace::Trace trace("t");
    trace.appendWrite(500, 8);
    trace.appendWrite(10, 8);
    SimConfig config = lsConfig();
    config.cache = SelectiveCacheConfig{};
    const auto [baseline, ls] = runWithBaseline(trace, config);
    EXPECT_EQ(baseline.configLabel, "NoLS");
    EXPECT_EQ(ls.configLabel, "LS+cache");
    EXPECT_EQ(baseline.workload, "t");
}

TEST(Simulator, SeekTimeAccumulates)
{
    trace::Trace trace("t");
    // Many scattered writes: NoLS pays a long seek per write while
    // LS pays a single jump to the frontier.
    for (Lba lba = 0; lba < 10; ++lba)
        trace.appendWrite(((lba * 7) % 10) * 1000000, 8);
    const SimResult nols = Simulator(nolsConfig()).run(trace);
    EXPECT_GT(nols.seekTimeSec, 0.0);
    const SimResult ls = Simulator(lsConfig()).run(trace);
    EXPECT_LT(ls.seekTimeSec, nols.seekTimeSec);
}

TEST(Simulator, NullObserverPanics)
{
    Simulator simulator(lsConfig());
    EXPECT_THROW(simulator.addObserver(nullptr), PanicError);
}

TEST(Simulator, ClearObserversStopsDelivery)
{
    trace::Trace trace("t");
    trace.appendWrite(0, 4);
    Recorder recorder;
    Simulator simulator(lsConfig());
    simulator.addObserver(&recorder);
    simulator.clearObservers();
    simulator.run(trace);
    EXPECT_TRUE(recorder.events.empty());
}

} // namespace
} // namespace logseek::stl
