/**
 * @file
 * Unit tests for the look-ahead-behind prefetcher.
 */

#include <gtest/gtest.h>

#include "stl/prefetch.h"

namespace logseek::stl
{
namespace
{

PrefetchConfig
smallConfig()
{
    PrefetchConfig config;
    config.lookAheadBytes = 4 * kSectorBytes;
    config.lookBehindBytes = 4 * kSectorBytes;
    config.bufferBytes = kMiB;
    return config;
}

TEST(Prefetcher, FetchRegionExpandsBothDirections)
{
    const Prefetcher prefetcher(smallConfig());
    const SectorExtent region = prefetcher.fetchRegion({100, 8});
    EXPECT_EQ(region, (SectorExtent{96, 16}));
}

TEST(Prefetcher, FetchRegionClampsAtSectorZero)
{
    const Prefetcher prefetcher(smallConfig());
    const SectorExtent region = prefetcher.fetchRegion({2, 8});
    EXPECT_EQ(region.start, 0u);
    EXPECT_EQ(region.end(), 14u); // 2 + 8 + 4 ahead
}

TEST(Prefetcher, LookupMissesBeforeAdmit)
{
    Prefetcher prefetcher(smallConfig());
    EXPECT_FALSE(prefetcher.lookup({100, 8}));
    EXPECT_EQ(prefetcher.misses(), 1u);
    EXPECT_EQ(prefetcher.hits(), 0u);
}

TEST(Prefetcher, AdmittedRegionServesNeighbors)
{
    Prefetcher prefetcher(smallConfig());
    const SectorExtent region = prefetcher.fetchRegion({100, 8});
    prefetcher.admit(region);
    // Fragment just behind (look-behind win).
    EXPECT_TRUE(prefetcher.lookup({96, 4}));
    // Fragment just ahead (look-ahead win).
    EXPECT_TRUE(prefetcher.lookup({108, 4}));
    // Outside the region.
    EXPECT_FALSE(prefetcher.lookup({112, 4}));
    EXPECT_EQ(prefetcher.hits(), 2u);
}

TEST(Prefetcher, MissedRotationScenario)
{
    // Mis-ordered writes put LBA n at pba 101 and LBA n+1 at pba
    // 100; reading them in LBA order means a backward step. With
    // look-behind the first fetch covers both.
    Prefetcher prefetcher(smallConfig());
    const SectorExtent first_fragment{101, 1};
    prefetcher.admit(prefetcher.fetchRegion(first_fragment));
    EXPECT_TRUE(prefetcher.lookup({100, 1}));
}

TEST(Prefetcher, BufferEvictsOldRegionsFifo)
{
    PrefetchConfig config = smallConfig();
    // Room for exactly two 16-sector fetch regions.
    config.bufferBytes = 32 * kSectorBytes;
    Prefetcher prefetcher(config);
    prefetcher.admit(prefetcher.fetchRegion({100, 8}));
    prefetcher.admit(prefetcher.fetchRegion({1000, 8}));
    prefetcher.admit(prefetcher.fetchRegion({2000, 8}));
    EXPECT_FALSE(prefetcher.lookup({100, 8}));   // evicted
    EXPECT_TRUE(prefetcher.lookup({1000, 8}));
    EXPECT_TRUE(prefetcher.lookup({2000, 8}));
}

TEST(Prefetcher, ZeroWindowsDegenerateToFragmentOnly)
{
    PrefetchConfig config;
    config.lookAheadBytes = 0;
    config.lookBehindBytes = 0;
    Prefetcher prefetcher(config);
    EXPECT_EQ(prefetcher.fetchRegion({50, 4}), (SectorExtent{50, 4}));
}

TEST(Prefetcher, UsedBytesTracksAdmissions)
{
    Prefetcher prefetcher(smallConfig());
    EXPECT_EQ(prefetcher.usedBytes(), 0u);
    prefetcher.admit({0, 16});
    EXPECT_EQ(prefetcher.usedBytes(), 16 * kSectorBytes);
}

TEST(Prefetcher, ConfigAccessible)
{
    const Prefetcher prefetcher(smallConfig());
    EXPECT_EQ(prefetcher.config().lookAheadBytes,
              4 * kSectorBytes);
}

} // namespace
} // namespace logseek::stl
