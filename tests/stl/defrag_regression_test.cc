/**
 * @file
 * Regression test for the Defragmenter's access-count flat hash:
 * trigger decisions must be exactly those of the seed's
 * std::map<std::pair<Lba, SectorCount>, uint32_t> implementation.
 *
 * A reference model replicating the ordered-map logic verbatim is
 * replayed side by side over a recorded (seeded synthetic) trace
 * slice of read completions, asserting decision-for-decision
 * equality — any hash collision mishandling, lost count or wrong
 * erase order would flip a decision and change every downstream
 * replay result.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "stl/defrag.h"
#include "util/random.h"

namespace logseek::stl
{
namespace
{

/** The seed implementation's decision logic, kept verbatim. */
class ReferenceDefragmenter
{
  public:
    explicit ReferenceDefragmenter(const DefragConfig &config)
        : config_(config)
    {
    }

    bool
    onRead(const SectorExtent &logical, std::size_t fragments)
    {
        if (fragments < config_.minFragments)
            return false;
        if (config_.minAccesses > 1) {
            const auto key =
                std::make_pair(logical.start, logical.count);
            const std::uint32_t seen = ++accessCounts_[key];
            if (seen < config_.minAccesses)
                return false;
            accessCounts_.erase(key);
        }
        ++rewrites_;
        return true;
    }

    std::uint64_t rewriteCount() const { return rewrites_; }
    std::size_t tracked() const { return accessCounts_.size(); }

  private:
    DefragConfig config_;
    std::uint64_t rewrites_ = 0;
    std::map<std::pair<Lba, SectorCount>, std::uint32_t>
        accessCounts_;
};

/** One read completion of a recorded slice. */
struct ReadEvent
{
    SectorExtent extent;
    std::size_t fragments;
};

/**
 * Deterministic trace slice: a hot set of ranges read repeatedly
 * (so minAccesses thresholds are crossed and entries erased and
 * re-inserted) plus a random tail (so the table grows and probe
 * chains shift).
 */
std::vector<ReadEvent>
recordedSlice(std::uint64_t seed, std::size_t ops)
{
    Rng rng(seed);
    std::vector<SectorExtent> hot;
    for (std::size_t i = 0; i < 64; ++i)
        hot.push_back(SectorExtent{rng.nextUint(1 << 22),
                                   1 + rng.nextUint(256)});

    std::vector<ReadEvent> events;
    events.reserve(ops);
    for (std::size_t i = 0; i < ops; ++i) {
        SectorExtent extent;
        if (rng.nextBool(0.6)) {
            extent = hot[rng.nextUint(hot.size())];
        } else {
            extent = SectorExtent{rng.nextUint(1 << 22),
                                  1 + rng.nextUint(512)};
        }
        events.push_back(
            ReadEvent{extent, 1 + rng.nextUint(6)});
    }
    return events;
}

void
expectIdenticalDecisions(const DefragConfig &config,
                         std::uint64_t seed, std::size_t ops)
{
    Defragmenter defrag(config);
    ReferenceDefragmenter reference(config);
    const auto slice = recordedSlice(seed, ops);
    for (std::size_t i = 0; i < slice.size(); ++i) {
        const auto &event = slice[i];
        const bool expected =
            reference.onRead(event.extent, event.fragments);
        ASSERT_EQ(defrag.onRead(event.extent, event.fragments),
                  expected)
            << "decision " << i << " diverged (extent "
            << event.extent.start << "+" << event.extent.count
            << ", " << event.fragments << " fragments)";
        ASSERT_EQ(defrag.trackedRanges(), reference.tracked());
    }
    EXPECT_EQ(defrag.rewriteCount(), reference.rewriteCount());
    EXPECT_GT(defrag.rewriteCount(), 0u);
}

TEST(DefragRegression, DecisionsMatchSeedMapMinAccesses2)
{
    expectIdenticalDecisions(
        DefragConfig{/*minFragments=*/2, /*minAccesses=*/2},
        /*seed=*/11, /*ops=*/50'000);
}

TEST(DefragRegression, DecisionsMatchSeedMapMinAccesses4)
{
    expectIdenticalDecisions(
        DefragConfig{/*minFragments=*/3, /*minAccesses=*/4},
        /*seed=*/12, /*ops=*/50'000);
}

TEST(DefragRegression, DecisionsMatchSeedMapNoAccessGate)
{
    // minAccesses == 1 bypasses the table; the gate is fragment
    // count alone.
    expectIdenticalDecisions(
        DefragConfig{/*minFragments=*/2, /*minAccesses=*/1},
        /*seed=*/13, /*ops=*/20'000);
}

TEST(DefragRegression, CollidingRangesStayDistinct)
{
    // Ranges sharing (lba << 16 | count) low bits collide in the
    // packed key's low 16 bits; exact-field equality must keep
    // them separate.
    DefragConfig config{/*minFragments=*/2, /*minAccesses=*/3};
    Defragmenter defrag(config);
    ReferenceDefragmenter reference(config);
    const SectorExtent a{100, 5};
    const SectorExtent b{100, 5 + (SectorCount{1} << 16)};
    const SectorExtent c{100 + (Lba{1} << 48), 5};
    for (int round = 0; round < 7; ++round) {
        for (const auto &extent : {a, b, c}) {
            ASSERT_EQ(defrag.onRead(extent, 3),
                      reference.onRead(extent, 3));
        }
    }
    EXPECT_EQ(defrag.rewriteCount(), reference.rewriteCount());
    EXPECT_GT(defrag.rewriteCount(), 0u);
}

} // namespace
} // namespace logseek::stl
