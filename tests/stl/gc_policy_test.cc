/**
 * @file
 * Cleaning-policy subsystem tests: the greedy policy is pinned
 * byte-identical to the preserved pre-refactor cleaner, the
 * cost-benefit and zone-granular selectors are exercised directly,
 * the stream router's invalidation-time inference is checked for
 * determinism and hot/cold separation, and a finite log with ample
 * capacity degenerates bitwise to the infinite log for every
 * policy and stream count.
 */

#include <gtest/gtest.h>

#include <vector>

#include "stl/finite_log.h"
#include "stl/gc/cleaning_policy.h"
#include "stl/gc/stream_router.h"
#include "stl/simulator.h"
#include "stl/testing/reference_finite_log.h"
#include "util/logging.h"
#include "util/random.h"

namespace logseek::stl
{
namespace
{

/** 8 segments x 32 sectors, reserve 2 / target 4. */
FiniteLogConfig
tinyConfig()
{
    FiniteLogConfig config;
    config.segmentBytes = 32 * kSectorBytes;
    config.capacityBytes = 8 * 32 * kSectorBytes;
    config.cleanReserveSegments = 2;
    config.cleanTargetSegments = 4;
    return config;
}

/** Flatten a buffer for comparison. */
std::vector<Segment>
toVector(const SegmentBuffer &buffer)
{
    return {buffer.begin(), buffer.end()};
}

void
expectSameAccesses(const std::vector<MediaAccess> &a,
                   const std::vector<MediaAccess> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].physical.start, b[i].physical.start);
        EXPECT_EQ(a[i].physical.count, b[i].physical.count);
        EXPECT_EQ(a[i].type, b[i].type);
    }
}

TEST(GcPolicy, GreedyMatchesReferenceOnRandomizedChurn)
{
    // The acceptance pin: the pluggable greedy policy must
    // reproduce the historical hardcoded cleaner access-for-access
    // and mapping-for-mapping across heavy random churn.
    const Lba space = 128;
    FiniteLogStructuredLayer layer(space, tinyConfig());
    testing::ReferenceFiniteLog reference(space, tinyConfig());

    Rng rng(17);
    SegmentBuffer scratch;
    for (int op = 0; op < 4000; ++op) {
        const SectorCount count = 1 + rng.nextUint(8);
        const Lba lba = rng.nextUint(space - count);
        layer.placeWriteInto({lba, count}, scratch);
        const std::vector<Segment> placed = toVector(scratch);
        EXPECT_EQ(placed, reference.placeWrite({lba, count}));
        expectSameAccesses(layer.maintenance(),
                           reference.maintenance());
    }
    EXPECT_GT(layer.cleanings(), 0U);
    EXPECT_EQ(layer.cleanings(), reference.cleanings());
    EXPECT_EQ(layer.freeSegments(), reference.freeSegments());
    EXPECT_EQ(layer.writePointer(), reference.writePointer());
    EXPECT_EQ(layer.openSegment(), reference.openSegment());
    for (std::uint32_t i = 0; i < layer.segmentCount(); ++i) {
        EXPECT_EQ(layer.segmentLive(i), reference.segmentLive(i));
        EXPECT_EQ(layer.segmentFree(i), reference.segmentFree(i));
    }

    // Full logical space must translate identically.
    SegmentBuffer via_layer;
    layer.translateReadInto({0, space}, via_layer);
    EXPECT_EQ(toVector(via_layer),
              reference.translateRead({0, space}));
}

TEST(GcPolicy, FactoryNamesAreStable)
{
    using gc::CleaningPolicyKind;
    EXPECT_STREQ(toString(CleaningPolicyKind::Greedy), "greedy");
    EXPECT_STREQ(toString(CleaningPolicyKind::CostBenefit),
                 "cost-benefit");
    EXPECT_STREQ(toString(CleaningPolicyKind::ZoneGranular),
                 "zone-granular");
    for (const auto kind : {CleaningPolicyKind::Greedy,
                            CleaningPolicyKind::CostBenefit,
                            CleaningPolicyKind::ZoneGranular}) {
        const auto policy = gc::makeCleaningPolicy(kind);
        ASSERT_NE(policy, nullptr);
        EXPECT_STREQ(policy->name(), toString(kind));
    }
}

/** Hand-built segment state for direct selector tests. */
class FakeView : public gc::SegmentStateView
{
  public:
    struct Seg
    {
        SectorCount live = 0;
        bool free = false;
        bool open = false;
        std::uint64_t lastWrite = 0;
    };

    FakeView(SectorCount sectors, std::uint64_t now,
             std::vector<Seg> segs)
        : sectors_(sectors), now_(now), segs_(std::move(segs))
    {
    }

    std::uint32_t segmentCount() const override
    {
        return static_cast<std::uint32_t>(segs_.size());
    }
    SectorCount segmentSectors() const override
    {
        return sectors_;
    }
    SectorCount segmentLive(std::uint32_t i) const override
    {
        return segs_[i].live;
    }
    bool segmentFree(std::uint32_t i) const override
    {
        return segs_[i].free;
    }
    bool segmentOpen(std::uint32_t i) const override
    {
        return segs_[i].open;
    }
    std::uint64_t segmentLastWrite(std::uint32_t i) const override
    {
        return segs_[i].lastWrite;
    }
    std::uint64_t now() const override { return now_; }

  private:
    SectorCount sectors_;
    std::uint64_t now_;
    std::vector<Seg> segs_;
};

TEST(GcPolicy, GreedySelectsLeastLiveClosedSegment)
{
    const auto policy =
        gc::makeCleaningPolicy(gc::CleaningPolicyKind::Greedy);
    const FakeView view(32, 100,
                        {{4, false, true, 90}, // open: skipped
                         {8, false, false, 10},
                         {2, false, false, 99}, // least live
                         {0, true, false, 0},   // free: skipped
                         {2, false, false, 1}});
    const auto victim = policy->selectVictim(view);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(*victim, 2U); // strict <: first of the tied pair
}

TEST(GcPolicy, GreedyReportsNoVictimWhenAllFullyLive)
{
    const auto policy =
        gc::makeCleaningPolicy(gc::CleaningPolicyKind::Greedy);
    const FakeView view(32, 10,
                        {{32, false, false, 1},
                         {32, false, false, 2},
                         {0, true, false, 0}});
    EXPECT_FALSE(policy->selectVictim(view).has_value());
}

TEST(GcPolicy, CostBenefitPrefersAgedSegmentOverEmptierYoungOne)
{
    const auto policy = gc::makeCleaningPolicy(
        gc::CleaningPolicyKind::CostBenefit);
    // Segment 1 is emptier (greedy would take it) but was written
    // just now; segment 2 is older with moderate utilization:
    //   seg 1: age 1,   u = 8/32:  1 * 24 / 40  = 0.6
    //   seg 2: age 100, u = 16/32: 100 * 16 / 48 ~ 33.3
    const FakeView view(32, 100,
                        {{4, false, true, 100},
                         {8, false, false, 100},
                         {16, false, false, 0}});
    const auto victim = policy->selectVictim(view);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(*victim, 2U);
}

TEST(GcPolicy, CostBenefitSkipsFullyLiveSegments)
{
    const auto policy = gc::makeCleaningPolicy(
        gc::CleaningPolicyKind::CostBenefit);
    const FakeView view(32, 50,
                        {{32, false, false, 1},
                         {32, false, false, 2}});
    EXPECT_FALSE(policy->selectVictim(view).has_value());
}

TEST(GcPolicy, ZoneGranularBreaksLiveTiesTowardOlderZones)
{
    const auto policy = gc::makeCleaningPolicy(
        gc::CleaningPolicyKind::ZoneGranular);
    EXPECT_TRUE(policy->wholeZoneRead());
    const FakeView view(32, 100,
                        {{8, false, false, 90},
                         {8, false, false, 10}, // same live, older
                         {16, false, false, 1}});
    const auto victim = policy->selectVictim(view);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(*victim, 1U);
}

TEST(GcPolicy, ZoneGranularCleaningReadsWholeZoneOnce)
{
    // SMORE-style reclamation: a victim with live data costs one
    // sequential zone-sized read, however many live extents it
    // holds — the seek saving the policy exists for.
    FiniteLogConfig config = tinyConfig();
    config.gc.policy = gc::CleaningPolicyKind::ZoneGranular;
    const Lba space = 128;
    FiniteLogStructuredLayer layer(space, config);

    Rng rng(23);
    SegmentBuffer scratch;
    bool saw_zone_read = false;
    for (int op = 0; op < 4000; ++op) {
        const SectorCount count = 1 + rng.nextUint(8);
        const Lba lba = rng.nextUint(space - count);
        layer.placeWriteInto({lba, count}, scratch);
        const std::vector<MediaAccess> accesses =
            layer.maintenance();
        // Each reclaim's reads must be whole-zone extents: exactly
        // segmentSectors long and zone-aligned.
        for (const MediaAccess &access : accesses) {
            if (access.type != trace::IoType::Read)
                continue;
            saw_zone_read = true;
            EXPECT_EQ(access.physical.count,
                      layer.segmentSectors());
            EXPECT_EQ((access.physical.start - layer.logStart()) %
                          layer.segmentSectors(),
                      0U);
        }
    }
    EXPECT_TRUE(saw_zone_read);
    EXPECT_GT(layer.cleanings(), 0U);
}

TEST(GcPolicy, MultiStreamKeepsOpenSegmentsDistinct)
{
    FiniteLogConfig config = tinyConfig();
    config.capacityBytes = 16 * 32 * kSectorBytes;
    config.gc.streams = 3;
    const Lba space = 160;
    FiniteLogStructuredLayer layer(space, config);
    EXPECT_EQ(layer.streamCount(), 3U);

    Rng rng(5);
    SegmentBuffer scratch;
    for (int op = 0; op < 3000; ++op) {
        const SectorCount count = 1 + rng.nextUint(6);
        const Lba lba = rng.nextUint(space - count);
        layer.placeWriteInto({lba, count}, scratch);
        layer.maintenance();
        for (std::uint32_t a = 0; a < layer.streamCount(); ++a) {
            if (!layer.streamOpened(a))
                continue;
            for (std::uint32_t b = a + 1;
                 b < layer.streamCount(); ++b) {
                if (layer.streamOpened(b)) {
                    ASSERT_NE(layer.streamOpenSegment(a),
                              layer.streamOpenSegment(b));
                }
            }
        }
    }
    EXPECT_TRUE(layer.streamOpened(0));
}

TEST(GcPolicy, VictimStatsAccumulatePerReclaim)
{
    FiniteLogStructuredLayer layer(128, tinyConfig());
    Rng rng(29);
    SegmentBuffer scratch;
    for (int op = 0; op < 4000; ++op) {
        const SectorCount count = 1 + rng.nextUint(8);
        const Lba lba = rng.nextUint(128 - count);
        layer.placeWriteInto({lba, count}, scratch);
        layer.maintenance();
    }
    ASSERT_GT(layer.cleanings(), 0U);
    // Every reclaim spans exactly one segment; the live bytes
    // moved can never exceed the span.
    EXPECT_EQ(layer.gcVictimSpanBytes(),
              layer.cleanings() * 32 * kSectorBytes);
    EXPECT_LE(layer.gcVictimLiveBytes(),
              layer.gcVictimSpanBytes());
}

/**
 * Satellite pin (utilization -> infinity degeneracy): with capacity
 * comfortably above the trace footprint no cleaning ever fires, so
 * the finite log must degenerate to the infinite log. For one
 * placement stream the SimResult is required to be bitwise
 * identical (seekTimeSec FP bits included) to LogStructuredLayer
 * under every policy. With streams > 1 physical placement
 * legitimately differs (each stream opens its own segment), so the
 * pin becomes: bitwise-identical across policies, zero cleaning,
 * and write amplification exactly 1.0.
 */
TEST(GcPolicy, AmpleCapacityDegeneratesToInfiniteLog)
{
    trace::Trace trace("degenerate");
    Rng rng(41);
    for (int op = 0; op < 600; ++op) {
        const SectorCount count = 1 + rng.nextUint(12);
        const Lba lba = rng.nextUint(4096 - count);
        if (rng.nextUint(100) < 40)
            trace.appendRead(lba, count);
        else
            trace.appendWrite(lba, count);
    }

    SimConfig infinite;
    infinite.translation = TranslationKind::LogStructured;
    const SimResult baseline = Simulator(infinite).run(trace);

    const std::vector<gc::CleaningPolicyKind> policies = {
        gc::CleaningPolicyKind::Greedy,
        gc::CleaningPolicyKind::CostBenefit,
        gc::CleaningPolicyKind::ZoneGranular};
    for (const std::uint32_t streams : {1U, 2U, 4U}) {
        std::optional<SimResult> first_policy;
        for (const auto policy : policies) {
            SimConfig finite;
            finite.translation =
                TranslationKind::FiniteLogStructured;
            finite.finiteLog.capacityBytes = 64 * kMiB;
            finite.finiteLog.gc.policy = policy;
            finite.finiteLog.gc.streams = streams;
            SimResult result = Simulator(finite).run(trace);
            SCOPED_TRACE(result.configLabel + " streams=" +
                         std::to_string(streams));
            EXPECT_EQ(result.cleaningMerges, 0U);
            EXPECT_EQ(result.cleaningSeeks, 0U);
            EXPECT_EQ(result.writeAmplification(), 1.0);

            // Neutralize the label (the only intended difference)
            // before the bitwise comparison.
            result.configLabel.clear();
            if (streams == 1) {
                SimResult want = baseline;
                want.configLabel.clear();
                EXPECT_EQ(result, want);
            } else if (!first_policy) {
                first_policy = result;
            } else {
                EXPECT_EQ(result, *first_policy);
            }
        }
    }
}

TEST(StreamRouter, SingleStreamAlwaysRoutesToZero)
{
    gc::StreamRouter router(1);
    for (Lba lba = 0; lba < 1024; lba += 64)
        EXPECT_EQ(router.route(lba, 8), 0U);
    EXPECT_EQ(router.coldestStream(), 0U);
    EXPECT_EQ(router.clock(), 16U);
}

TEST(StreamRouter, FirstTouchGoesToColdestStream)
{
    gc::StreamRouter router(2);
    // No interval history: the block is presumed long-lived.
    EXPECT_EQ(router.route(0, 8), 1U);
    EXPECT_EQ(router.route(10000, 8), 1U);
}

TEST(StreamRouter, HotOverwritesSeparateFromColdData)
{
    gc::StreamRouter router(2);
    // One block overwritten every op (interval 1) among scattered
    // single-touch cold writes: the hot block's inferred
    // invalidation time drops far below the mean and it routes to
    // stream 0, while the cold first-touch traffic stays on 1.
    std::uint32_t hot_routes = 0;
    for (std::uint32_t i = 0; i < 200; ++i) {
        const std::uint32_t hot = router.route(0, 8);
        if (i > 10) {
            EXPECT_EQ(hot, 0U) << "op " << i;
        }
        hot_routes += hot == 0 ? 1 : 0;
        EXPECT_EQ(router.route(100000 + 64ULL * i, 8), 1U);
    }
    EXPECT_GT(hot_routes, 180U);
    EXPECT_GT(router.meanInterval(), 0U);
}

TEST(StreamRouter, RoutingIsDeterministic)
{
    gc::StreamRouter a(4);
    gc::StreamRouter b(4);
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
        const SectorCount count = 1 + rng.nextUint(16);
        const Lba lba = rng.nextUint(1 << 16);
        EXPECT_EQ(a.route(lba, count), b.route(lba, count));
    }
    EXPECT_EQ(a.clock(), b.clock());
    EXPECT_EQ(a.meanInterval(), b.meanInterval());
}

TEST(StreamRouter, SpanningWritesRefreshEveryBucket)
{
    gc::StreamRouterConfig config;
    config.bucketSectors = 8;
    gc::StreamRouter router(2, config);
    // A write spanning buckets 0..3 then a rewrite of bucket 3
    // alone: bucket 3 has history from the spanning write.
    router.route(0, 32);
    router.route(24, 8);
    // Bucket 3's interval estimate exists, so the rewrite is
    // classified from evidence rather than first-touch cold.
    const std::uint32_t third = router.route(24, 8);
    EXPECT_EQ(third, 0U); // interval 1 is far below any mean
}

TEST(StreamRouter, InvalidConfigPanics)
{
    EXPECT_THROW(gc::StreamRouter(0), PanicError);
    EXPECT_THROW(gc::StreamRouter(9), PanicError);
    gc::StreamRouterConfig zero;
    zero.bucketSectors = 0;
    EXPECT_THROW(gc::StreamRouter(2, zero), PanicError);
}

TEST(StreamRouter, LayerPanicsOnBadStreamCount)
{
    FiniteLogConfig config = tinyConfig();
    config.gc.streams = 0;
    EXPECT_THROW(FiniteLogStructuredLayer(128, config),
                 PanicError);
    // streams + target must fit in the segment count.
    config.gc.streams = 5;
    EXPECT_THROW(FiniteLogStructuredLayer(128, config),
                 PanicError);
}

} // namespace
} // namespace logseek::stl
