/**
 * @file
 * Differential tests for sharded replay: SimConfig::replayShards
 * selects an execution strategy, so the SimResult — every counter,
 * the bit pattern of seekTimeSec, and the zoned-device mirror —
 * must be byte-identical (operator==) at every shard count, for
 * every translation layer, with and without the zoned-device
 * layer, and whether shards run inline or on real threads.
 *
 * The suite name (ShardedReplay*) keeps these tests inside the
 * tsan preset's test filter; the threaded-executor tests are the
 * ones TSan exercises (stl_tests does not link the sweep library,
 * so the executor here is plain std::thread fan-out rather than
 * sweep::makeShardExecutor).
 */

#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <thread>
#include <vector>

#include "stl/log_structured.h"
#include "stl/sharded_translation.h"
#include "stl/simulator.h"
#include "stl/translation_layer.h"
#include "util/random.h"

namespace logseek::stl
{
namespace
{

trace::Trace
randomTrace(std::uint64_t seed, std::size_t ops, Lba space,
            double write_fraction)
{
    Rng rng(seed);
    trace::Trace trace("random-" + std::to_string(seed));
    for (std::size_t i = 0; i < ops; ++i) {
        const SectorCount count = 1 + rng.nextUint(32);
        const Lba lba = rng.nextUint(space - count);
        if (rng.nextBool(write_fraction))
            trace.appendWrite(lba, count);
        else
            trace.appendRead(lba, count);
    }
    return trace;
}

/**
 * Base configuration per layer. The finite-log and media-cache
 * capacities are shrunk far below the trace's write volume so
 * cleaning/merge maintenance actually runs — the deferred
 * cleaning-access journal is the subtlest part of the sharded
 * accounting path and must be covered, not dodged.
 */
SimConfig
baseConfig(TranslationKind kind, bool zoned)
{
    SimConfig config;
    config.translation = kind;
    if (kind == TranslationKind::FiniteLogStructured) {
        config.finiteLog.capacityBytes = 32 * kMiB;
        config.finiteLog.segmentBytes = 1 * kMiB;
    }
    if (kind == TranslationKind::MediaCache)
        config.mediaCache.cacheBytes = 4 * kMiB;
    if (zoned)
        config.zonedDevice = disk::ZonedDeviceOptions{};
    return config;
}

/**
 * Trace address space per layer: the finite log gets a small LBA
 * space (8 MiB of sectors) so its 32 MiB log sees ~40 MiB of
 * churn — cleaning runs repeatedly — while the live set always
 * fits. The other layers replay a 512 MiB space.
 */
Lba
traceSpaceFor(TranslationKind kind)
{
    return kind == TranslationKind::FiniteLogStructured ? 1 << 14
                                                        : 1 << 20;
}

const char *
toString(TranslationKind kind)
{
    switch (kind) {
    case TranslationKind::Conventional: return "conventional";
    case TranslationKind::LogStructured: return "log-structured";
    case TranslationKind::FiniteLogStructured: return "finite-log";
    case TranslationKind::MediaCache: return "media-cache";
    }
    return "?";
}

/**
 * A thread-per-chunk executor: chunk 0 on the caller (the engine's
 * contract), the rest on fresh std::threads, joined before
 * returning. Deliberately naive — its job is to put the shard
 * callback on real concurrent threads so TSan can watch it.
 */
ShardExecutor
threadedExecutor()
{
    return [](std::size_t chunks,
              const std::function<void(std::size_t)> &fn) {
        std::vector<std::thread> threads;
        threads.reserve(chunks > 0 ? chunks - 1 : 0);
        for (std::size_t k = 1; k < chunks; ++k)
            threads.emplace_back([&fn, k] { fn(k); });
        if (chunks > 0)
            fn(0);
        for (auto &thread : threads)
            thread.join();
    };
}

TEST(ShardedReplay, ByteIdenticalAcrossShardCountsAndLayers)
{
    const TranslationKind kinds[] = {
        TranslationKind::Conventional,
        TranslationKind::LogStructured,
        TranslationKind::FiniteLogStructured,
        TranslationKind::MediaCache,
    };
    std::uint64_t combo = 0;
    for (const TranslationKind kind : kinds) {
        for (const bool zoned : {false, true}) {
            const trace::Trace trace =
                randomTrace(0x5ead0 + combo++, 12000,
                            traceSpaceFor(kind), 0.4);
            const SimConfig config = baseConfig(kind, zoned);
            const SimResult serial = Simulator(config).run(trace);
            for (const int shards : {2, 4, 7}) {
                SimConfig sharded = config;
                sharded.replayShards = shards;
                const SimResult result =
                    Simulator(sharded).run(trace);
                EXPECT_TRUE(result == serial)
                    << toString(kind) << (zoned ? "+zoned" : "")
                    << " diverged at " << shards << " shards";
            }
        }
    }
}

TEST(ShardedReplay, CleaningSeeksByteIdenticalAcrossShardCounts)
{
    // The deferred-classification path must charge cleaning
    // accesses exactly like the serial path: finite-log churn with
    // every reclaim partly live (random overwrites) pins the
    // cleaning-seek count — and the whole SimResult — bitwise at
    // every shard count, for every cleaning policy and stream
    // split.
    const trace::Trace trace =
        randomTrace(0xc1ea9, 16000,
                    traceSpaceFor(
                        TranslationKind::FiniteLogStructured),
                    0.8);
    for (const auto policy :
         {gc::CleaningPolicyKind::Greedy,
          gc::CleaningPolicyKind::CostBenefit,
          gc::CleaningPolicyKind::ZoneGranular}) {
        for (const std::uint32_t streams : {1U, 2U}) {
            SimConfig config = baseConfig(
                TranslationKind::FiniteLogStructured, false);
            config.finiteLog.gc.policy = policy;
            config.finiteLog.gc.streams = streams;
            const SimResult serial =
                Simulator(config).run(trace);
            ASSERT_GT(serial.cleaningMerges, 0U);
            ASSERT_GT(serial.cleaningSeeks, 0U);
            for (const int shards : {2, 7}) {
                SimConfig sharded = config;
                sharded.replayShards = shards;
                const SimResult result =
                    Simulator(sharded).run(trace);
                EXPECT_EQ(result.cleaningSeeks,
                          serial.cleaningSeeks)
                    << serial.configLabel << " diverged at "
                    << shards << " shards";
                EXPECT_TRUE(result == serial)
                    << serial.configLabel << " diverged at "
                    << shards << " shards";
            }
        }
    }
}

TEST(ShardedReplay, MechanismsAndOddBatchStayByteIdentical)
{
    // All mechanisms at once: defrag rewrites invalidate batched
    // translations mid-run, prefetch and the selective cache
    // reorder media accesses — none of it may leak into the
    // sharded classification.
    SimConfig config;
    config.translation = TranslationKind::LogStructured;
    config.defrag = DefragConfig{};
    config.prefetch = PrefetchConfig{};
    config.cache = SelectiveCacheConfig{64 * kMiB};

    const trace::Trace trace =
        randomTrace(0x5ead10, 20000, 1 << 20, 0.4);
    const SimResult serial = Simulator(config).run(trace);
    for (const int shards : {2, 7}) {
        SimConfig sharded = config;
        sharded.replayShards = shards;
        EXPECT_TRUE(Simulator(sharded).run(trace) == serial)
            << "LS+all diverged at " << shards << " shards";
    }

    // A batch size that divides into nothing evenly: every run is
    // split at awkward boundaries and the shard chunking math sees
    // ragged tails.
    SimConfig odd = config;
    odd.replayShards = 4;
    odd.replayBatchSize = 17;
    EXPECT_TRUE(Simulator(odd).run(trace) == serial)
        << "LS+all diverged at batch 17 / 4 shards";
}

TEST(ShardedReplay, ThreadedExecutorMatchesInline)
{
    // Same differential, but the shards run on real threads: under
    // the tsan preset this is the test that proves shard-local
    // classification truly shares nothing.
    for (const TranslationKind kind :
         {TranslationKind::LogStructured,
          TranslationKind::FiniteLogStructured}) {
        const trace::Trace trace = randomTrace(
            0x5ead20 + static_cast<std::uint64_t>(kind), 15000,
            traceSpaceFor(kind), 0.4);
        const SimConfig config = baseConfig(kind, /*zoned=*/true);
        const SimResult serial = Simulator(config).run(trace);

        SimConfig sharded = config;
        sharded.replayShards = 4;
        sharded.shardExecutor = threadedExecutor();
        EXPECT_TRUE(Simulator(sharded).run(trace) == serial)
            << toString(kind)
            << " diverged with a threaded executor";
    }
}

TEST(ShardedReplay, ShardedTranslationMatchesLogStructured)
{
    // Layer-level differential: ShardedTranslation stripes the LBA
    // space over independent regions, and its contract is that
    // after mergePhysicallyContiguousInPlace the output is exactly
    // the single-map layer's (stripe splits heal because stripes
    // are placed back-to-back in the log).
    constexpr Lba kSpace = 1 << 18;
    LogStructuredLayer single(kSpace);
    ShardedTranslation sharded(kSpace, 5);
    EXPECT_EQ(single.name(), sharded.name());

    Rng rng(0x51ab5);
    SegmentBuffer single_out;
    SegmentBuffer sharded_out;
    for (std::size_t op = 0; op < 20000; ++op) {
        const SectorCount count = 1 + rng.nextUint(32);
        const Lba lba = rng.nextUint(kSpace - count);
        const SectorExtent extent{lba, count};
        if (rng.nextBool(0.5)) {
            single.placeWriteInto(extent, single_out);
            sharded.placeWriteInto(extent, sharded_out);
        } else {
            single.translateReadInto(extent, single_out);
            sharded.translateReadInto(extent, sharded_out);
        }
        mergePhysicallyContiguousInPlace(single_out);
        mergePhysicallyContiguousInPlace(sharded_out);
        ASSERT_EQ(single_out.size(), sharded_out.size())
            << "op " << op;
        for (std::size_t i = 0; i < single_out.size(); ++i) {
            ASSERT_TRUE(single_out.begin()[i] ==
                        sharded_out.begin()[i])
                << "op " << op << ", segment " << i;
        }
    }
    EXPECT_EQ(single.staticFragmentCount(),
              sharded.staticFragmentCount());
}

TEST(ShardedReplay, RejectsOutOfRangeShardAndBatchCounts)
{
    const trace::Trace trace = randomTrace(0x5ead99, 64, 1 << 16,
                                           0.5);
    for (const int shards : {0, -1, 257}) {
        SimConfig config;
        config.replayShards = shards;
        const auto result = Simulator(config).tryRun(trace);
        EXPECT_FALSE(result.ok()) << "shards " << shards;
    }
    for (const int batch : {0, -3, 65537}) {
        SimConfig config;
        config.replayBatchSize = batch;
        const auto result = Simulator(config).tryRun(trace);
        EXPECT_FALSE(result.ok()) << "batch " << batch;
    }
}

} // namespace
} // namespace logseek::stl
