/**
 * @file
 * Differential crash-recovery tests: the full matrix of translation
 * layers × {offline torn-tail, zoned-device power loss} × shard
 * counts, crashed at every Nth operation and remounted. Each crash
 * point must recover a prefix-consistent subset of the uncrashed
 * reference (byte-identical journal prefix, clean Fsck, oracle-
 * equal translation state), deterministically under a fixed seed.
 * Built on stl::testing::runCrashMatrix — the same harness the
 * crash_recovery_bench smoke binary drives.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "stl/simulator.h"
#include "stl/testing/crash_harness.h"
#include "util/logging.h"

namespace logseek::stl
{
namespace
{

using testing::CrashCase;
using testing::CrashMatrixResult;
using testing::crashTrace;
using testing::runCrashMatrix;

constexpr std::uint64_t kSeed = 0x7265636f76657279ULL;
constexpr std::size_t kOps = 240;

trace::Trace
matrixTrace()
{
    return crashTrace(kOps, kSeed, bytesToSectors(2 * kMiB));
}

/** Every cell of the matrix for one device leg. */
std::vector<CrashCase>
matrixCells(bool zoned_device)
{
    std::vector<CrashCase> cells;
    for (const int shards : {1, 4}) {
        cells.push_back({TranslationKind::LogStructured, false,
                         shards, zoned_device, 31, kSeed});
        cells.push_back({TranslationKind::LogStructured, true,
                         shards, zoned_device, 31, kSeed});
        cells.push_back({TranslationKind::FiniteLogStructured,
                         false, shards, zoned_device, 37, kSeed});
        // GC-active finite-log cells: cost-benefit victims with
        // hot/cold stream separation, and SMORE-style zone-granular
        // reclamation. Every crash point must still pass Fsck's
        // per-stream frontier and GC-liveness checks.
        cells.push_back({TranslationKind::FiniteLogStructured,
                         false, shards, zoned_device, 37, kSeed,
                         gc::CleaningPolicyKind::CostBenefit, 2});
        cells.push_back({TranslationKind::FiniteLogStructured,
                         false, shards, zoned_device, 43, kSeed,
                         gc::CleaningPolicyKind::ZoneGranular, 1});
        cells.push_back({TranslationKind::MediaCache, false,
                         shards, zoned_device, 29, kSeed});
        cells.push_back({TranslationKind::Conventional, false,
                         shards, zoned_device, 53, kSeed});
    }
    return cells;
}

TEST(CrashRecovery, OfflineTornTailMatrixRecoversConsistently)
{
    const trace::Trace trace = matrixTrace();
    for (const CrashCase &cell : matrixCells(false)) {
        SCOPED_TRACE(cell.label());
        const CrashMatrixResult result =
            runCrashMatrix(cell, trace);
        EXPECT_TRUE(result.ok()) << result.failure;
        EXPECT_GT(result.crashesRun, 0U);
        if (cell.kind != TranslationKind::Conventional) {
            EXPECT_GT(result.epochsApplied, 0U);
            EXPECT_GT(result.tornTails, 0U);
        }
        // Power loss tears, it never corrupts: a damaged frame
        // here would mean the tear model invented corruption.
        EXPECT_EQ(result.damagedFrames, 0U);
    }
}

TEST(CrashRecovery, ZonedDevicePowerLossMatrixRecoversConsistently)
{
    const trace::Trace trace = matrixTrace();
    for (const CrashCase &cell : matrixCells(true)) {
        SCOPED_TRACE(cell.label());
        const CrashMatrixResult result =
            runCrashMatrix(cell, trace);
        EXPECT_TRUE(result.ok()) << result.failure;
        EXPECT_GT(result.crashesRun, 0U);
    }
}

TEST(CrashRecovery, RecoveryIsDeterministicUnderFixedSeed)
{
    const trace::Trace trace = matrixTrace();
    for (const bool zoned_device : {false, true}) {
        CrashCase cell{TranslationKind::FiniteLogStructured,
                       false, 1, zoned_device, 41, kSeed};
        SCOPED_TRACE(cell.label());
        const CrashMatrixResult first =
            runCrashMatrix(cell, trace);
        const CrashMatrixResult second =
            runCrashMatrix(cell, trace);
        ASSERT_TRUE(first.ok()) << first.failure;
        EXPECT_EQ(first.stateDigest, second.stateDigest);
        EXPECT_EQ(first.crashesRun, second.crashesRun);
        EXPECT_EQ(first.epochsApplied, second.epochsApplied);
        EXPECT_EQ(first.tornTails, second.tornTails);
    }
}

TEST(CrashRecovery, ShardCountDoesNotChangeRecoveredState)
{
    // The sharded layer journals placements unsplit at stripe
    // boundaries, so shards 1 and 4 must produce byte-identical
    // journal images — and therefore identical recovery digests.
    const trace::Trace trace = matrixTrace();
    CrashCase serial{TranslationKind::LogStructured, true, 1,
                     false, 31, kSeed};
    CrashCase sharded = serial;
    sharded.shards = 4;
    const CrashMatrixResult a = runCrashMatrix(serial, trace);
    const CrashMatrixResult b = runCrashMatrix(sharded, trace);
    ASSERT_TRUE(a.ok()) << a.failure;
    ASSERT_TRUE(b.ok()) << b.failure;
    EXPECT_EQ(a.stateDigest, b.stateDigest);
    EXPECT_EQ(a.epochsApplied, b.epochsApplied);
}

TEST(CrashRecovery, DeviceCrashSurfacesDataLossThroughTryRun)
{
    const trace::Trace trace = matrixTrace();
    SegmentJournal journal;
    SimConfig config =
        testing::crashCaseConfig({TranslationKind::LogStructured,
                                  false, 1, true, 0, kSeed});
    config.journal = &journal;
    config.zonedDevice->crash = {5, kSeed};
    const StatusOr<SimResult> result =
        Simulator(config).tryRun(trace);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::DataLoss);
    // The journal survives the dead device and scans cleanly up
    // to the crash.
    EXPECT_GT(journal.epochs(), 0U);
    EXPECT_FALSE(scanJournal(journal.image()).records.empty());
}

TEST(CrashRecovery, ParanoidFsckRunsCleanEndToEnd)
{
    const trace::Trace trace = matrixTrace();
    for (const TranslationKind kind :
         {TranslationKind::LogStructured,
          TranslationKind::FiniteLogStructured,
          TranslationKind::MediaCache}) {
        SegmentJournal journal;
        SimConfig config = testing::crashCaseConfig(
            {kind, kind == TranslationKind::LogStructured, 1,
             false, 0, kSeed});
        config.journal = &journal;
        config.paranoidFsck = true;
        // A violation is fatal inside run(); completing is the
        // assertion.
        const SimResult result = Simulator(config).run(trace);
        EXPECT_EQ(result.reads + result.writes, trace.size());
    }
}

TEST(CrashRecovery, MountRefusesANonFreshLayer)
{
    SegmentJournal journal;
    LogStructuredLayer writer(4096);
    writer.attachJournal(&journal);
    writer.placeWrite({0, 8});

    LogStructuredLayer dirty(4096);
    dirty.placeWrite({0, 8});
    EXPECT_THROW(dirty.mountFromJournal(journal), PanicError);
}

} // namespace
} // namespace logseek::stl
