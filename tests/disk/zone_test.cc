/**
 * @file
 * ZoneSet state-machine tests.
 *
 * The core is an exhaustive table over (zone type × condition × op):
 * every legal pair must succeed and land in the documented next
 * condition, every illegal pair must return the documented typed
 * error AND leave the zone unchanged. The expectations are written
 * from the ZBC-style contract in disk/zone.h, not read back from the
 * implementation, so a drifting transition breaks a named row here.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "disk/zone.h"
#include "util/retry.h"

namespace logseek::disk
{
namespace
{

constexpr SectorCount kZoneSectors = 128;

/** Every operation the machine accepts. */
enum class Op
{
    OpenExplicit,
    OpenImplicit,
    Close,
    Finish,
    Reset,
    WriteAtWp,  ///< sequential: piece starts at the write pointer
    WriteOffWp, ///< non-sequential: piece starts mid-zone, off wp
    Read,
};

const char *
toString(Op op)
{
    switch (op) {
      case Op::OpenExplicit: return "open-explicit";
      case Op::OpenImplicit: return "open-implicit";
      case Op::Close: return "close";
      case Op::Finish: return "finish";
      case Op::Reset: return "reset";
      case Op::WriteAtWp: return "write-at-wp";
      case Op::WriteOffWp: return "write-off-wp";
      case Op::Read: return "read";
    }
    return "?";
}

constexpr Op kAllOps[] = {
    Op::OpenExplicit, Op::OpenImplicit, Op::Close, Op::Finish,
    Op::Reset,        Op::WriteAtWp,    Op::WriteOffWp, Op::Read,
};

constexpr ZoneType kAllTypes[] = {
    ZoneType::Conventional,
    ZoneType::SequentialWritePreferred,
    ZoneType::SequentialWriteRequired,
};

constexpr ZoneCondition kAllConditions[] = {
    ZoneCondition::Empty,     ZoneCondition::ImplicitOpen,
    ZoneCondition::ExplicitOpen, ZoneCondition::Closed,
    ZoneCondition::Full,      ZoneCondition::ReadOnly,
    ZoneCondition::Offline,
};

/** What one (type, condition, op) cell must do. */
struct Expect
{
    bool ok = false;
    /** Taxonomy tag when !ok. */
    DeviceErrc errc = DeviceErrc::InvalidTransition;
    /** Condition after a successful op. */
    ZoneCondition after = ZoneCondition::Empty;
};

Expect
pass(ZoneCondition after)
{
    return {true, DeviceErrc::InvalidTransition, after};
}

Expect
fail(DeviceErrc errc)
{
    return {false, errc, ZoneCondition::Empty};
}

/** The degraded-zone error every op shares. */
Expect
degraded(ZoneCondition condition)
{
    return fail(condition == ZoneCondition::Offline
                    ? DeviceErrc::ZoneOffline
                    : DeviceErrc::ZoneReadOnly);
}

/**
 * The contract, restated as data. `open_target` is the condition a
 * successful open lands in (explicit vs implicit).
 */
Expect
expectedFor(ZoneType type, ZoneCondition condition, Op op)
{
    const bool ro_or_offline =
        condition == ZoneCondition::ReadOnly ||
        condition == ZoneCondition::Offline;

    // Reads are type-independent: only OFFLINE refuses.
    if (op == Op::Read) {
        if (condition == ZoneCondition::Offline)
            return fail(DeviceErrc::ZoneOffline);
        return pass(condition);
    }

    // Conventional zones have no management surface at all.
    if (type == ZoneType::Conventional) {
        if (op == Op::WriteAtWp || op == Op::WriteOffWp) {
            if (ro_or_offline)
                return degraded(condition);
            return pass(condition);
        }
        return fail(DeviceErrc::InvalidTransition);
    }

    // Sequential zones: management ops first.
    switch (op) {
    case Op::OpenExplicit:
    case Op::OpenImplicit: {
        if (ro_or_offline)
            return degraded(condition);
        if (condition == ZoneCondition::Full)
            return fail(DeviceErrc::InvalidTransition);
        if (condition == ZoneCondition::ExplicitOpen)
            return pass(ZoneCondition::ExplicitOpen);
        return pass(op == Op::OpenExplicit
                        ? ZoneCondition::ExplicitOpen
                        : ZoneCondition::ImplicitOpen);
    }
    case Op::Close:
        if (ro_or_offline)
            return degraded(condition);
        if (condition == ZoneCondition::Empty ||
            condition == ZoneCondition::Full)
            return fail(DeviceErrc::InvalidTransition);
        // The harness puts wp mid-zone for open states, so a
        // closed open zone lands CLOSED, never EMPTY.
        return pass(ZoneCondition::Closed);
    case Op::Finish:
        if (ro_or_offline)
            return degraded(condition);
        return pass(ZoneCondition::Full);
    case Op::Reset:
        if (ro_or_offline)
            return degraded(condition);
        return pass(ZoneCondition::Empty);
    case Op::WriteAtWp:
        if (ro_or_offline)
            return degraded(condition);
        if (condition == ZoneCondition::Full) {
            // wp == end: no sequential position exists, so the
            // harness writes mid-zone. SWR refuses, SWP absorbs.
            if (type == ZoneType::SequentialWriteRequired)
                return fail(DeviceErrc::WritePointerViolation);
            return pass(ZoneCondition::Full);
        }
        // A sequential write implicitly opens; explicitly open
        // zones stay explicitly open.
        return pass(condition == ZoneCondition::ExplicitOpen
                        ? ZoneCondition::ExplicitOpen
                        : ZoneCondition::ImplicitOpen);
    case Op::WriteOffWp:
        if (ro_or_offline)
            return degraded(condition);
        if (type == ZoneType::SequentialWriteRequired)
            return fail(DeviceErrc::WritePointerViolation);
        // SWP absorbs out-of-policy writes (counted).
        if (condition == ZoneCondition::Full)
            return pass(ZoneCondition::Full);
        return pass(condition == ZoneCondition::ExplicitOpen
                        ? ZoneCondition::ExplicitOpen
                        : ZoneCondition::ImplicitOpen);
    case Op::Read:
    default:
        break;
    }
    ADD_FAILURE() << "unhandled op";
    return fail(DeviceErrc::InvalidTransition);
}

/** A one-zone set with zone 0 forced into `condition`. */
ZoneSet
makeZone(ZoneType type, ZoneCondition condition)
{
    ZoneLayout layout;
    layout.zoneSectors = kZoneSectors;
    layout.type = type;
    layout.maxOpenZones = 4;
    ZoneSet zones(layout);
    zones.ensureCovers(kZoneSectors);
    if (type != ZoneType::Conventional) {
        if (condition == ZoneCondition::Full)
            zones.moveWritePointer(0, kZoneSectors);
        else if (condition != ZoneCondition::Empty)
            zones.moveWritePointer(0, 4);
    }
    zones.forceCondition(0, condition);
    return zones;
}

Status
applyOp(ZoneSet &zones, Op op)
{
    const Zone &zone = zones.zone(0);
    switch (op) {
      case Op::OpenExplicit: return zones.open(0, true);
      case Op::OpenImplicit: return zones.open(0, false);
      case Op::Close: return zones.close(0);
      case Op::Finish: return zones.finish(0);
      case Op::Reset: return zones.reset(0);
      case Op::WriteAtWp: {
        // At wp when one exists; mid-zone when the zone is full
        // (wp == end leaves no sequential position).
        const std::uint64_t start =
            zone.writePointer < zone.end() ? zone.writePointer
                                           : zone.start + 64;
        return zones.write(0, {start, 8});
      }
      case Op::WriteOffWp: return zones.write(0, {64, 8});
      case Op::Read: return zones.checkRead(0, {4, 8});
    }
    return internalError("unhandled op");
}

TEST(ZoneSetTransitions, ExhaustiveTypeConditionOpTable)
{
    for (ZoneType type : kAllTypes) {
        for (ZoneCondition condition : kAllConditions) {
            for (Op op : kAllOps) {
                SCOPED_TRACE(std::string(toString(type)) + " / " +
                             toString(condition) + " / " +
                             toString(op));
                ZoneSet zones = makeZone(type, condition);
                const std::uint64_t wp_before =
                    zones.zone(0).writePointer;
                const Expect expect =
                    expectedFor(type, condition, op);
                const Status status = applyOp(zones, op);

                if (expect.ok) {
                    EXPECT_TRUE(status.ok())
                        << status.toString();
                    if (type != ZoneType::Conventional) {
                        EXPECT_EQ(zones.zone(0).condition,
                                  expect.after)
                            << "landed in "
                            << toString(
                                   zones.zone(0).condition);
                    }
                } else {
                    ASSERT_FALSE(status.ok());
                    EXPECT_TRUE(
                        isDeviceError(status, expect.errc))
                        << "want " << toString(expect.errc)
                        << ", got " << status.toString();
                    EXPECT_EQ(status.code(),
                              statusCodeOf(expect.errc));
                    // Failed ops must leave the machine intact.
                    EXPECT_EQ(zones.zone(0).condition, condition);
                    EXPECT_EQ(zones.zone(0).writePointer,
                              wp_before);
                }
            }
        }
    }
}

TEST(ZoneSetTransitions, StatusCodeMappingIsCanonical)
{
    EXPECT_EQ(statusCodeOf(DeviceErrc::TransientMediaError),
              StatusCode::Unavailable);
    EXPECT_EQ(statusCodeOf(DeviceErrc::GrownDefect),
              StatusCode::DataLoss);
    EXPECT_EQ(statusCodeOf(DeviceErrc::ZoneOffline),
              StatusCode::DataLoss);
    EXPECT_EQ(statusCodeOf(DeviceErrc::TooManyOpenZones),
              StatusCode::ResourceExhausted);
    EXPECT_EQ(statusCodeOf(DeviceErrc::WritePointerViolation),
              StatusCode::FailedPrecondition);
    EXPECT_EQ(statusCodeOf(DeviceErrc::ZoneReadOnly),
              StatusCode::FailedPrecondition);
    EXPECT_EQ(statusCodeOf(DeviceErrc::InvalidTransition),
              StatusCode::FailedPrecondition);

    // Only transient media errors are worth a retry.
    EXPECT_TRUE(isRetryable(
        statusCodeOf(DeviceErrc::TransientMediaError)));
    EXPECT_FALSE(
        isRetryable(statusCodeOf(DeviceErrc::GrownDefect)));
    EXPECT_FALSE(isRetryable(
        statusCodeOf(DeviceErrc::WritePointerViolation)));
}

TEST(ZoneSetTransitions, ErrorTagRoundTrips)
{
    const Status status =
        deviceError(DeviceErrc::GrownDefect, "sector 42");
    EXPECT_TRUE(isDeviceError(status, DeviceErrc::GrownDefect));
    EXPECT_FALSE(isDeviceError(status, DeviceErrc::ZoneOffline));
    EXPECT_NE(status.message().find("[GROWN_DEFECT]"),
              std::string::npos);
    EXPECT_NE(status.message().find("sector 42"),
              std::string::npos);
    // A foreign status with the right code but no tag is not a
    // device error.
    EXPECT_FALSE(isDeviceError(dataLossError("corrupt frame"),
                               DeviceErrc::GrownDefect));
}

TEST(ZoneSetPolicy, OpenLimitEvictsLruImplicitZone)
{
    ZoneLayout layout;
    layout.zoneSectors = kZoneSectors;
    layout.maxOpenZones = 2;
    ZoneSet zones(layout);
    zones.ensureCovers(4 * kZoneSectors);

    // Implicitly open zones 0 and 1 through writes.
    ASSERT_TRUE(zones.write(0, {0, 8}).ok());
    ASSERT_TRUE(
        zones.write(1, {1 * kZoneSectors, 8}).ok());
    EXPECT_EQ(zones.openZones(), 2u);

    // A third implicit open evicts zone 0 (least recently opened).
    ASSERT_TRUE(
        zones.write(2, {2 * kZoneSectors, 8}).ok());
    EXPECT_EQ(zones.openZones(), 2u);
    EXPECT_EQ(zones.implicitCloses(), 1u);
    EXPECT_EQ(zones.zone(0).condition, ZoneCondition::Closed);
    EXPECT_EQ(zones.zone(1).condition,
              ZoneCondition::ImplicitOpen);
    EXPECT_EQ(zones.zone(2).condition,
              ZoneCondition::ImplicitOpen);
}

TEST(ZoneSetPolicy, AllExplicitOpenZonesExhaustTheLimit)
{
    ZoneLayout layout;
    layout.zoneSectors = kZoneSectors;
    layout.maxOpenZones = 2;
    ZoneSet zones(layout);
    zones.ensureCovers(3 * kZoneSectors);

    ASSERT_TRUE(zones.open(0, true).ok());
    ASSERT_TRUE(zones.open(1, true).ok());
    const Status status = zones.open(2, true);
    ASSERT_FALSE(status.ok());
    EXPECT_TRUE(
        isDeviceError(status, DeviceErrc::TooManyOpenZones));
    EXPECT_EQ(status.code(), StatusCode::ResourceExhausted);
    // Explicitly open zones are never evicted implicitly.
    EXPECT_EQ(zones.zone(0).condition,
              ZoneCondition::ExplicitOpen);
    EXPECT_EQ(zones.zone(1).condition,
              ZoneCondition::ExplicitOpen);
}

TEST(ZoneSetPolicy, SwpCountsOutOfPolicyWrites)
{
    ZoneLayout layout;
    layout.zoneSectors = kZoneSectors;
    layout.type = ZoneType::SequentialWritePreferred;
    ZoneSet zones(layout);
    zones.ensureCovers(kZoneSectors);

    ASSERT_TRUE(zones.write(0, {0, 8}).ok());   // sequential
    ASSERT_TRUE(zones.write(0, {64, 8}).ok());  // absorbed
    ASSERT_TRUE(zones.write(0, {32, 8}).ok());  // absorbed
    EXPECT_EQ(zones.outOfPolicyWrites(), 2u);
    // The pointer tracks the furthest written sector.
    EXPECT_EQ(zones.zone(0).writePointer, 72u);
}

TEST(ZoneSetPolicy, WriteFillingZoneGoesFull)
{
    ZoneLayout layout;
    layout.zoneSectors = kZoneSectors;
    ZoneSet zones(layout);
    zones.ensureCovers(kZoneSectors);

    ASSERT_TRUE(zones.write(0, {0, kZoneSectors}).ok());
    EXPECT_EQ(zones.zone(0).condition, ZoneCondition::Full);
    EXPECT_EQ(zones.zone(0).writePointer, kZoneSectors);
    // Full zones hold no open slot.
    EXPECT_EQ(zones.openZones(), 0u);

    // Reset reclaims it.
    ASSERT_TRUE(zones.reset(0).ok());
    EXPECT_EQ(zones.zone(0).condition, ZoneCondition::Empty);
    EXPECT_EQ(zones.zone(0).writePointer, 0u);
    EXPECT_EQ(zones.resets(), 1u);
}

TEST(ZoneSetGeometry, AnchoredGridAlignsWithLogRegion)
{
    ZoneLayout layout;
    layout.zoneSectors = kZoneSectors;
    layout.anchorSector = 100; // identity region end, off-grid
    ZoneSet zones(layout);

    EXPECT_EQ(zones.zoneIndexOf(0), 0u);
    EXPECT_EQ(zones.zoneIndexOf(99), 0u);
    EXPECT_EQ(zones.zoneIndexOf(100), 1u);
    EXPECT_EQ(zones.zoneIndexOf(100 + kZoneSectors - 1), 1u);
    EXPECT_EQ(zones.zoneIndexOf(100 + kZoneSectors), 2u);

    // The anchor zone has exactly the identity region's capacity;
    // grid zones are uniform after it.
    EXPECT_EQ(zones.zone(0).start, 0u);
    EXPECT_EQ(zones.zone(0).capacity, 100u);
    EXPECT_EQ(zones.zone(1).start, 100u);
    EXPECT_EQ(zones.zone(1).capacity, kZoneSectors);
}

TEST(ZoneSetGeometry, FillToMarksIdentityRegionWithoutOpenSlots)
{
    ZoneLayout layout;
    layout.zoneSectors = kZoneSectors;
    ZoneSet zones(layout);
    zones.fillTo(kZoneSectors + 40);

    EXPECT_EQ(zones.zone(0).condition, ZoneCondition::Full);
    EXPECT_EQ(zones.zone(0).writePointer, kZoneSectors);
    EXPECT_EQ(zones.zone(1).condition, ZoneCondition::Closed);
    EXPECT_EQ(zones.zone(1).writePointer, kZoneSectors + 40);
    // Pre-existing data must not consume open-zone slots.
    EXPECT_EQ(zones.openZones(), 0u);

    const auto census = zones.conditionCensus();
    EXPECT_EQ(census[static_cast<std::size_t>(
                  ZoneCondition::Full)],
              1u);
    EXPECT_EQ(census[static_cast<std::size_t>(
                  ZoneCondition::Closed)],
              1u);
}

} // namespace
} // namespace logseek::disk
