/**
 * @file
 * Unit tests for DiskHead seek detection (the paper's §II seek
 * definition).
 */

#include <gtest/gtest.h>

#include "disk/head.h"
#include "util/logging.h"

namespace logseek::disk
{
namespace
{

using trace::IoType;

TEST(DiskHead, FirstAccessAtZeroDoesNotSeek)
{
    DiskHead head;
    const SeekInfo info = head.access({0, 8}, IoType::Read);
    EXPECT_FALSE(info.seeked);
    EXPECT_EQ(info.distanceBytes, 0);
}

TEST(DiskHead, FirstAccessElsewhereSeeks)
{
    DiskHead head;
    const SeekInfo info = head.access({100, 8}, IoType::Read);
    EXPECT_TRUE(info.seeked);
    EXPECT_EQ(info.distanceBytes,
              static_cast<std::int64_t>(100 * kSectorBytes));
}

TEST(DiskHead, SequentialAccessesDoNotSeek)
{
    DiskHead head;
    head.access({0, 8}, IoType::Write);
    const SeekInfo info = head.access({8, 8}, IoType::Write);
    EXPECT_FALSE(info.seeked);
    EXPECT_EQ(head.expectedNext(), 16u);
}

TEST(DiskHead, ForwardGapSeeksWithPositiveDistance)
{
    DiskHead head;
    head.access({0, 8}, IoType::Read);
    const SeekInfo info = head.access({20, 4}, IoType::Read);
    EXPECT_TRUE(info.seeked);
    EXPECT_EQ(info.distanceBytes,
              static_cast<std::int64_t>(12 * kSectorBytes));
}

TEST(DiskHead, BackwardAccessSeeksWithNegativeDistance)
{
    DiskHead head;
    head.access({100, 10}, IoType::Read);
    const SeekInfo info = head.access({50, 10}, IoType::Read);
    EXPECT_TRUE(info.seeked);
    EXPECT_EQ(info.distanceBytes,
              -static_cast<std::int64_t>(60 * kSectorBytes));
}

TEST(DiskHead, ImmediateRereadOfSameSectorSeeks)
{
    // Re-reading the block just read requires a full rotation; the
    // model flags it as a (backward) seek.
    DiskHead head;
    head.access({10, 4}, IoType::Read);
    const SeekInfo info = head.access({10, 4}, IoType::Read);
    EXPECT_TRUE(info.seeked);
    EXPECT_EQ(info.distanceBytes,
              -static_cast<std::int64_t>(4 * kSectorBytes));
}

TEST(DiskHead, SeekTypeMatchesSecondOperation)
{
    DiskHead head;
    head.access({0, 4}, IoType::Read);
    const SeekInfo write_seek = head.access({100, 4}, IoType::Write);
    EXPECT_EQ(write_seek.type, IoType::Write);
    const SeekInfo read_seek = head.access({0, 4}, IoType::Read);
    EXPECT_EQ(read_seek.type, IoType::Read);
}

TEST(DiskHead, AccessCountIncrements)
{
    DiskHead head;
    EXPECT_EQ(head.accessCount(), 0u);
    head.access({0, 1}, IoType::Read);
    head.access({1, 1}, IoType::Read);
    EXPECT_EQ(head.accessCount(), 2u);
}

TEST(DiskHead, ResetRestoresInitialState)
{
    DiskHead head;
    head.access({500, 10}, IoType::Write);
    head.reset();
    EXPECT_EQ(head.expectedNext(), 0u);
    EXPECT_EQ(head.accessCount(), 0u);
    const SeekInfo info = head.access({0, 4}, IoType::Read);
    EXPECT_FALSE(info.seeked);
}

TEST(DiskHead, EmptyAccessPanics)
{
    DiskHead head;
    EXPECT_THROW(head.access({5, 0}, IoType::Read), PanicError);
}

TEST(DiskHead, MixedSequentialReadWriteDoesNotSeek)
{
    // The seek definition cares only about sector adjacency, not
    // operation type: a write starting right after a read is
    // sequential.
    DiskHead head;
    head.access({0, 8}, IoType::Read);
    const SeekInfo info = head.access({8, 8}, IoType::Write);
    EXPECT_FALSE(info.seeked);
}

TEST(DiskHead, LongRunOfSequentialIosNeverSeeks)
{
    DiskHead head;
    head.access({0, 16}, IoType::Write);
    for (std::uint64_t lba = 16; lba < 16000; lba += 16) {
        const SeekInfo info = head.access({lba, 16}, IoType::Write);
        EXPECT_FALSE(info.seeked) << "at lba " << lba;
    }
}

} // namespace
} // namespace logseek::disk
