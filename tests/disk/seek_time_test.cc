/**
 * @file
 * Unit tests for the analytic seek-time model.
 */

#include <gtest/gtest.h>

#include "disk/seek_time.h"
#include "util/logging.h"
#include "util/units.h"

namespace logseek::disk
{
namespace
{

TEST(SeekTimeModel, NoSeekCostsNothing)
{
    const SeekTimeModel model;
    EXPECT_DOUBLE_EQ(model.seekSeconds(0), 0.0);
}

TEST(SeekTimeModel, ShortForwardSeekIsTransferEquivalent)
{
    const SeekTimeModel model;
    const std::int64_t distance = 100 * 1024;
    EXPECT_DOUBLE_EQ(
        model.seekSeconds(distance),
        model.transferSeconds(static_cast<std::uint64_t>(distance)));
}

TEST(SeekTimeModel, ShortBackwardSeekIsMissedRotation)
{
    const SeekTimeModel model;
    EXPECT_DOUBLE_EQ(model.seekSeconds(-4096),
                     model.rotationSeconds());
}

TEST(SeekTimeModel, RotationAt7200Rpm)
{
    const SeekTimeModel model;
    EXPECT_NEAR(model.rotationSeconds(), 1.0 / 120.0, 1e-12);
}

TEST(SeekTimeModel, LongSeekIncludesHalfRotation)
{
    const SeekTimeModel model;
    const double cost =
        model.seekSeconds(static_cast<std::int64_t>(10 * kMiB));
    EXPECT_GT(cost, 0.5 * model.rotationSeconds());
    EXPECT_GE(cost, model.params().minHeadMoveSec);
}

TEST(SeekTimeModel, LongSeekGrowsWithDistance)
{
    const SeekTimeModel model;
    const double near = model.seekSeconds(
        static_cast<std::int64_t>(10 * kMiB));
    const double mid = model.seekSeconds(
        static_cast<std::int64_t>(10 * kGiB));
    const double far = model.seekSeconds(
        static_cast<std::int64_t>(4000 * kGiB));
    EXPECT_LT(near, mid);
    EXPECT_LT(mid, far);
}

TEST(SeekTimeModel, LongSeekIsCappedAtFullStroke)
{
    const SeekTimeModel model;
    const double full = model.seekSeconds(
        static_cast<std::int64_t>(model.params().fullStrokeBytes));
    const double beyond = model.seekSeconds(
        static_cast<std::int64_t>(model.params().fullStrokeBytes) *
        2);
    EXPECT_DOUBLE_EQ(full, beyond);
    EXPECT_NEAR(full,
                model.params().maxHeadMoveSec +
                    0.5 * model.rotationSeconds(),
                1e-9);
}

TEST(SeekTimeModel, SymmetricForLongSeeks)
{
    const SeekTimeModel model;
    const auto distance = static_cast<std::int64_t>(kGiB);
    EXPECT_DOUBLE_EQ(model.seekSeconds(distance),
                     model.seekSeconds(-distance));
}

TEST(SeekTimeModel, TransferTimeScalesLinearly)
{
    const SeekTimeModel model;
    EXPECT_DOUBLE_EQ(model.transferSeconds(2 * kMiB),
                     2.0 * model.transferSeconds(kMiB));
}

TEST(SeekTimeModel, ThresholdBoundaryBehavior)
{
    const SeekTimeModel model;
    const std::uint64_t threshold = model.params().shortSeekBytes;
    const double at = model.seekSeconds(
        static_cast<std::int64_t>(threshold));
    const double above = model.seekSeconds(
        static_cast<std::int64_t>(threshold + 1));
    // Long seeks cost strictly more than the short-seek regime at
    // the boundary (head move + half rotation dominates transfer).
    EXPECT_GT(above, at);
}

TEST(SeekTimeModel, InvalidParamsAreFatalToConstruction)
{
    SeekTimeParams bad;
    bad.transferBytesPerSec = 0.0;
    EXPECT_THROW(SeekTimeModel{bad}, PanicError);

    SeekTimeParams inverted;
    inverted.minHeadMoveSec = 30e-3;
    inverted.maxHeadMoveSec = 10e-3;
    EXPECT_THROW(SeekTimeModel{inverted}, PanicError);
}

TEST(SeekTimeModel, CustomSpindleSpeed)
{
    SeekTimeParams params;
    params.rotationsPerSec = 250.0; // 15k rpm
    const SeekTimeModel model(params);
    EXPECT_NEAR(model.rotationSeconds(), 0.004, 1e-12);
}

} // namespace
} // namespace logseek::disk
