/**
 * @file
 * ZonedDevice tests: the randomized differential write-pointer
 * check against a straight-line reference model, the seeded fault
 * model's determinism, and the recovery semantics (retries, the
 * read-error log, degraded results, cancellation mid-backoff).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "disk/zoned_device.h"
#include "util/random.h"

namespace logseek::disk
{
namespace
{

constexpr SectorCount kZoneSectors = 64;

ZoneLayout
swrLayout(std::uint64_t anchor = 0)
{
    ZoneLayout layout;
    layout.zoneSectors = kZoneSectors;
    layout.type = ZoneType::SequentialWriteRequired;
    layout.maxOpenZones = 8;
    layout.anchorSector = anchor;
    return layout;
}

/** No-fault options with zero-length recovery backoff. */
ZonedDeviceOptions
quietOptions()
{
    ZonedDeviceOptions options;
    options.recovery.initialBackoff =
        std::chrono::milliseconds(0);
    options.recovery.maxBackoff = std::chrono::milliseconds(0);
    return options;
}

/**
 * The straight-line reference model: the zone grid reduced to "a
 * write of a piece inside a zone leaves that zone's pointer at the
 * piece's end" — which is what the device must guarantee after its
 * reset/realign recovery, whatever path each write took.
 */
struct ReferenceModel
{
    std::uint64_t anchor;
    std::map<std::size_t, std::uint64_t> wp;

    std::size_t
    zoneOf(std::uint64_t sector) const
    {
        if (anchor > 0) {
            if (sector < anchor)
                return 0;
            return 1 + static_cast<std::size_t>(
                           (sector - anchor) / kZoneSectors);
        }
        return static_cast<std::size_t>(sector / kZoneSectors);
    }

    std::uint64_t
    zoneEnd(std::size_t index) const
    {
        if (anchor > 0)
            return index == 0 ? anchor
                              : anchor + index * kZoneSectors;
        return (index + 1) * kZoneSectors;
    }

    void
    write(const SectorExtent &extent)
    {
        for (std::uint64_t sector = extent.start;
             sector < extent.end();) {
            const std::size_t index = zoneOf(sector);
            const std::uint64_t piece_end =
                std::min(extent.end(), zoneEnd(index));
            wp[index] = piece_end;
            sector = piece_end;
        }
    }
};

void
runDifferential(std::uint64_t anchor, std::uint64_t seed)
{
    ZonedDevice device(swrLayout(anchor), quietOptions());
    ReferenceModel model{anchor, {}};
    Rng rng(seed);

    const std::uint64_t span = 32 * kZoneSectors;
    for (int i = 0; i < 2000; ++i) {
        std::uint64_t start = rng.nextUint(span);
        const SectorCount count = 1 + rng.nextUint(48);
        if (i % 7 == 0) {
            // Land exactly on a zone start: the segment-reuse
            // rewind path (reset + write).
            const std::size_t index = model.zoneOf(start);
            start = index == 0
                        ? 0
                        : model.zoneEnd(index) - kZoneSectors;
        }
        const SectorExtent extent{start, count};
        const DeviceWriteResult result = device.write(extent);
        EXPECT_EQ(result.failedSectors, 0u);
        model.write(extent);

        // Interleave reads; they must never move a pointer.
        if (i % 5 == 0)
            device.read({rng.nextUint(span), 8});
    }

    for (const auto &[index, expected] : model.wp) {
        SCOPED_TRACE("zone " + std::to_string(index));
        ASSERT_LT(index, device.zones().size());
        EXPECT_EQ(device.zones().zone(index).writePointer,
                  expected);
    }
    // Zones the model never wrote must still be pristine.
    for (std::size_t i = 0; i < device.zones().size(); ++i) {
        if (model.wp.contains(i))
            continue;
        EXPECT_EQ(device.zones().zone(i).writePointer,
                  device.zones().zone(i).start);
    }
}

TEST(ZonedDeviceDifferential, RandomTracesMatchReferenceModel)
{
    for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 12345ULL})
        runDifferential(/*anchor=*/0, seed);
}

TEST(ZonedDeviceDifferential, AnchoredGridMatchesReferenceModel)
{
    // An off-grid anchor the way the replay engine sets one (the
    // identity region's end is rarely a zone multiple).
    for (std::uint64_t seed : {3ULL, 99ULL, 2026ULL})
        runDifferential(/*anchor=*/100, seed);
}

TEST(ZonedDeviceFaults, CleanDeviceTouchesNoFaultPath)
{
    ZonedDevice device(swrLayout(), quietOptions());
    device.write({0, 32});
    const DeviceReadResult read = device.read({0, 32});
    EXPECT_EQ(read.retries, 0u);
    EXPECT_EQ(read.failedSectors, 0u);
    EXPECT_FALSE(read.degraded());
    EXPECT_TRUE(device.readErrorLog().entries().empty());
}

TEST(ZonedDeviceFaults, TransientSectorsRecoverDeterministically)
{
    ZonedDeviceOptions options = quietOptions();
    options.faults.transientRate = 1.0;
    options.faults.maxTransientRetries = 2;
    options.recovery.maxAttempts = 4;

    ZonedDevice device(swrLayout(), options);
    device.write({0, 16});
    const DeviceReadResult read = device.read({0, 16});
    // Every sector is transient and the budget (4 attempts) covers
    // the worst seeded requirement (2 retries): all recover.
    EXPECT_EQ(read.recoveredSectors, 16u);
    EXPECT_EQ(read.failedSectors, 0u);
    EXPECT_GE(read.retries, 16u);
    EXPECT_LE(read.retries, 32u);

    // Recovery episodes land in the error log with OK status.
    ASSERT_EQ(device.readErrorLog().entries().size(), 16u);
    for (const auto &entry : device.readErrorLog().entries()) {
        EXPECT_GE(entry.retries, 1u);
        EXPECT_TRUE(entry.status.ok());
    }

    // Same seed, same trace: byte-identical outcome.
    ZonedDevice twin(swrLayout(), options);
    twin.write({0, 16});
    const DeviceReadResult again = twin.read({0, 16});
    EXPECT_EQ(again.retries, read.retries);
    EXPECT_EQ(again.recoveredSectors, read.recoveredSectors);
}

TEST(ZonedDeviceFaults, TransientClassificationIsOrderIndependent)
{
    // Transient faults are pure per-sector hashes, so reading the
    // same extents forward or backward costs identical totals.
    ZonedDeviceOptions options = quietOptions();
    options.faults.transientRate = 0.3;

    std::vector<SectorExtent> extents;
    for (std::uint64_t i = 0; i < 40; ++i)
        extents.push_back({i * 16, 16});

    ZonedDevice forward(swrLayout(), options);
    for (const auto &extent : extents)
        forward.write(extent);
    for (const auto &extent : extents)
        forward.read(extent);

    ZonedDevice backward(swrLayout(), options);
    for (const auto &extent : extents)
        backward.write(extent);
    for (auto it = extents.rbegin(); it != extents.rend(); ++it)
        backward.read(*it);

    EXPECT_EQ(forward.stats().readRetries,
              backward.stats().readRetries);
    EXPECT_EQ(forward.stats().recoveredSectors,
              backward.stats().recoveredSectors);
    EXPECT_EQ(forward.stats().failedReadSectors,
              backward.stats().failedReadSectors);
    EXPECT_GT(forward.stats().recoveredSectors, 0u);
}

TEST(ZonedDeviceFaults, GrownDefectDegradesZoneAndFailsFast)
{
    ZonedDeviceOptions options = quietOptions();
    options.faults.grownRate = 1.0;
    options.faults.offlineShare = 0.0; // always READ_ONLY

    ZonedDevice device(swrLayout(), options);
    device.write({0, 8});
    const DeviceReadResult read = device.read({0, 8});
    EXPECT_TRUE(read.degraded());
    EXPECT_EQ(read.failedSectors, 8u);
    EXPECT_EQ(read.recoveredSectors, 0u);
    EXPECT_GT(device.stats().grownDefects, 0u);
    EXPECT_EQ(device.zones().zone(0).condition,
              ZoneCondition::ReadOnly);

    // The first defect's log entry carries the typed DataLoss.
    ASSERT_FALSE(device.readErrorLog().entries().empty());
    const auto &entry = device.readErrorLog().entries().front();
    EXPECT_TRUE(
        isDeviceError(entry.status, DeviceErrc::GrownDefect));
    EXPECT_EQ(entry.status.code(), StatusCode::DataLoss);

    // Known defects fail fast: a re-read spends no retries.
    const std::uint64_t retries_before =
        device.stats().readRetries;
    const DeviceReadResult again = device.read({0, 8});
    EXPECT_EQ(device.stats().readRetries, retries_before);
    EXPECT_TRUE(again.degraded());

    // The READ_ONLY zone refuses writes as counted failures.
    const DeviceWriteResult refused = device.write({8, 8});
    EXPECT_EQ(refused.failedSectors, 8u);
}

TEST(ZonedDeviceFaults, OfflineZoneRefusesReadsOutright)
{
    ZonedDeviceOptions options = quietOptions();
    options.faults.grownRate = 1.0;
    options.faults.offlineShare = 1.0; // always OFFLINE

    ZonedDevice device(swrLayout(), options);
    device.write({0, 4});
    device.read({0, 1}); // discovers the defect, zone goes dark
    EXPECT_EQ(device.zones().zone(0).condition,
              ZoneCondition::Offline);

    const DeviceReadResult read = device.read({0, 16});
    EXPECT_EQ(read.failedSectors, 16u);
    EXPECT_EQ(read.retries, 0u); // no pointless recovery
}

TEST(ZonedDeviceFaults, WpDivergenceIsInjectedAndRecovered)
{
    ZonedDeviceOptions options = quietOptions();
    options.faults.wpDivergenceRate = 1.0;
    options.faults.wpDivergenceSectors = 8;

    ZonedDevice device(swrLayout(), options);
    device.write({0, 8});
    // The pointer diverged to 16; the host's next sequential write
    // at 8 is now a violation the device must realign around.
    EXPECT_EQ(device.zones().zone(0).writePointer, 16u);
    const DeviceWriteResult second = device.write({8, 8});
    EXPECT_EQ(second.wpViolations, 1u);
    EXPECT_EQ(second.failedSectors, 0u);
    EXPECT_GT(device.stats().wpDivergences, 0u);
    // Self-healing: after recovery (and the next divergence) the
    // pointer again sits a fixed distance past the host's.
    EXPECT_EQ(device.zones().zone(0).writePointer, 24u);
}

TEST(ZonedDeviceFaults, CancellationFiresMidRecovery)
{
    ZonedDeviceOptions options;
    options.faults.transientRate = 1.0;
    options.recovery.maxAttempts = 4;
    options.recovery.initialBackoff =
        std::chrono::milliseconds(5);
    options.recovery.maxBackoff = std::chrono::milliseconds(5);

    CancelSource source;
    source.cancel(CancelReason::DeadlineExceeded);
    ZonedDevice device(swrLayout(), options, source.token());
    device.write({0, 4});
    try {
        device.read({0, 4});
        FAIL() << "expected StatusError from cancelled recovery";
    } catch (const StatusError &error) {
        EXPECT_EQ(error.status().code(),
                  StatusCode::DeadlineExceeded);
    }
}

TEST(ZonedDeviceFaults, ErrorLogBoundsItsMemory)
{
    ZonedDeviceOptions options = quietOptions();
    options.faults.transientRate = 1.0;

    ZonedDevice device(swrLayout(), options);
    const std::uint64_t total =
        2 * ReadErrorLog::kMaxEntries + 10;
    device.write({0, total});
    device.read({0, total});
    EXPECT_EQ(device.readErrorLog().entries().size(),
              ReadErrorLog::kMaxEntries);
    EXPECT_EQ(device.readErrorLog().dropped(),
              total - ReadErrorLog::kMaxEntries);
}

TEST(ZonedDeviceFaults, ErrorLogCapIsConfigurable)
{
    ZonedDeviceOptions options = quietOptions();
    options.faults.transientRate = 1.0;
    options.errorLogCap = 16;

    ZonedDevice device(swrLayout(), options);
    device.write({0, 50});
    device.read({0, 50});
    EXPECT_EQ(device.readErrorLog().cap(), 16U);
    EXPECT_EQ(device.readErrorLog().entries().size(), 16U);
    EXPECT_EQ(device.readErrorLog().dropped(), 50U - 16U);
}

TEST(ZonedDeviceCrash, ScheduledPowerLossKillsTheDevice)
{
    ZonedDeviceOptions options = quietOptions();
    options.crash.crashAtWriteOp = 3;
    options.crash.seed = 0x11;

    ZonedDevice device(swrLayout(), options);
    device.write({0, 8});
    device.write({8, 8});
    EXPECT_FALSE(device.dead());
    try {
        device.write({16, 8});
        FAIL() << "expected StatusError from scheduled crash";
    } catch (const StatusError &error) {
        EXPECT_EQ(error.status().code(), StatusCode::DataLoss);
    }
    EXPECT_TRUE(device.dead());
    EXPECT_EQ(device.stats().crashes, 1U);

    // A dead device refuses every further access, reads included.
    EXPECT_THROW(device.write({24, 8}), StatusError);
    EXPECT_THROW(device.read({0, 8}), StatusError);
}

TEST(ZonedDeviceCrash, TornWriteAdvancesPointerPartway)
{
    // The crashed op flushes a seeded prefix: the zone's write
    // pointer lands somewhere in [start of op, end of op] — never
    // beyond, and deterministically for a fixed seed.
    const auto crashed_wp = [](std::uint64_t seed) {
        ZonedDeviceOptions options = quietOptions();
        options.crash.crashAtWriteOp = 1;
        options.crash.seed = seed;
        ZonedDevice device(swrLayout(), options);
        EXPECT_THROW(device.write({0, 32}), StatusError);
        return device.zones().zone(0).writePointer;
    };

    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 99ULL}) {
        const std::uint64_t wp = crashed_wp(seed);
        EXPECT_LE(wp, 32U) << "seed " << seed;
        EXPECT_EQ(wp, crashed_wp(seed)) << "seed " << seed;
    }
}

TEST(ZonedDeviceCrash, UnarmedScheduleNeverFires)
{
    ZonedDeviceOptions options = quietOptions();
    ASSERT_EQ(options.crash.crashAtWriteOp, 0U);

    ZonedDevice device(swrLayout(), options);
    for (std::uint64_t i = 0; i < 100; ++i)
        device.write({i * 8, 8});
    EXPECT_FALSE(device.dead());
    EXPECT_EQ(device.stats().crashes, 0U);
}

} // namespace
} // namespace logseek::disk
