/**
 * @file
 * Unit tests for PbaRangeCache (LRU and FIFO range caching).
 */

#include <gtest/gtest.h>

#include "disk/pba_cache.h"

namespace logseek::disk
{
namespace
{

constexpr std::uint64_t kBig = 1024 * kMiB;

TEST(PbaRangeCache, MissesWhenEmpty)
{
    PbaRangeCache cache(kBig, EvictionPolicy::Lru);
    EXPECT_FALSE(cache.contains({0, 8}));
    EXPECT_EQ(cache.usedBytes(), 0u);
}

TEST(PbaRangeCache, HitAfterInsert)
{
    PbaRangeCache cache(kBig, EvictionPolicy::Lru);
    cache.insert({100, 50});
    EXPECT_TRUE(cache.contains({100, 50}));
    EXPECT_TRUE(cache.contains({120, 10}));
    EXPECT_FALSE(cache.contains({90, 20}));
    EXPECT_FALSE(cache.contains({140, 20}));
}

TEST(PbaRangeCache, EmptyExtentIsTriviallyCovered)
{
    PbaRangeCache cache(kBig, EvictionPolicy::Lru);
    EXPECT_TRUE(cache.contains({123, 0}));
}

TEST(PbaRangeCache, CoverageAcrossMultipleEntries)
{
    PbaRangeCache cache(kBig, EvictionPolicy::Lru);
    cache.insert({0, 10});
    cache.insert({10, 10});
    cache.insert({20, 10});
    EXPECT_TRUE(cache.contains({5, 20})); // spans three entries
}

TEST(PbaRangeCache, GapBreaksCoverage)
{
    PbaRangeCache cache(kBig, EvictionPolicy::Lru);
    cache.insert({0, 10});
    cache.insert({20, 10});
    EXPECT_FALSE(cache.contains({5, 20})); // hole at [10,20)
}

TEST(PbaRangeCache, InsertOnlyAddsUncoveredPortions)
{
    PbaRangeCache cache(kBig, EvictionPolicy::Lru);
    cache.insert({0, 10});
    const std::uint64_t before = cache.usedBytes();
    cache.insert({0, 10}); // fully duplicate
    EXPECT_EQ(cache.usedBytes(), before);
    cache.insert({5, 10}); // half duplicate
    EXPECT_EQ(cache.usedBytes(), before + 5 * kSectorBytes);
    EXPECT_TRUE(cache.contains({0, 15}));
}

TEST(PbaRangeCache, OverlappingInsertBridgesGap)
{
    PbaRangeCache cache(kBig, EvictionPolicy::Lru);
    cache.insert({0, 4});
    cache.insert({8, 4});
    cache.insert({0, 12}); // fills the [4,8) hole
    EXPECT_TRUE(cache.contains({0, 12}));
    EXPECT_EQ(cache.usedBytes(), 12 * kSectorBytes);
}

TEST(PbaRangeCache, ZeroCapacityStoresNothing)
{
    PbaRangeCache cache(0, EvictionPolicy::Lru);
    cache.insert({0, 100});
    EXPECT_FALSE(cache.contains({0, 1}));
    EXPECT_EQ(cache.usedBytes(), 0u);
    EXPECT_EQ(cache.entryCount(), 0u);
}

TEST(PbaRangeCache, EvictsWhenOverBudget)
{
    // Budget for exactly two 4-sector entries.
    PbaRangeCache cache(8 * kSectorBytes, EvictionPolicy::Lru);
    cache.insert({0, 4});
    cache.insert({100, 4});
    EXPECT_EQ(cache.entryCount(), 2u);
    cache.insert({200, 4});
    EXPECT_EQ(cache.entryCount(), 2u);
    EXPECT_EQ(cache.evictionCount(), 1u);
    EXPECT_FALSE(cache.contains({0, 4})); // oldest gone
    EXPECT_TRUE(cache.contains({100, 4}));
    EXPECT_TRUE(cache.contains({200, 4}));
}

TEST(PbaRangeCache, LruHitRefreshesRecency)
{
    PbaRangeCache cache(8 * kSectorBytes, EvictionPolicy::Lru);
    cache.insert({0, 4});
    cache.insert({100, 4});
    EXPECT_TRUE(cache.contains({0, 4})); // refresh entry 0
    cache.insert({200, 4});              // evicts 100, not 0
    EXPECT_TRUE(cache.contains({0, 4}));
    EXPECT_FALSE(cache.contains({100, 4}));
}

TEST(PbaRangeCache, FifoIgnoresHitsForEviction)
{
    PbaRangeCache cache(8 * kSectorBytes, EvictionPolicy::Fifo);
    cache.insert({0, 4});
    cache.insert({100, 4});
    EXPECT_TRUE(cache.contains({0, 4})); // FIFO: no refresh
    cache.insert({200, 4});              // evicts 0 (oldest insert)
    EXPECT_FALSE(cache.contains({0, 4}));
    EXPECT_TRUE(cache.contains({100, 4}));
}

TEST(PbaRangeCache, InsertLargerThanBudgetLeavesSubset)
{
    PbaRangeCache cache(4 * kSectorBytes, EvictionPolicy::Lru);
    cache.insert({0, 100});
    EXPECT_LE(cache.usedBytes(), 4 * kSectorBytes);
}

TEST(PbaRangeCache, ClearDropsEverything)
{
    PbaRangeCache cache(kBig, EvictionPolicy::Lru);
    cache.insert({0, 16});
    cache.insert({100, 16});
    cache.clear();
    EXPECT_EQ(cache.usedBytes(), 0u);
    EXPECT_EQ(cache.entryCount(), 0u);
    EXPECT_FALSE(cache.contains({0, 1}));
}

TEST(PbaRangeCache, PartialHitDoesNotCount)
{
    PbaRangeCache cache(kBig, EvictionPolicy::Lru);
    cache.insert({0, 8});
    EXPECT_FALSE(cache.contains({0, 9}));
    EXPECT_FALSE(cache.contains({4, 8}));
}

TEST(PbaRangeCache, ManyEntriesStressAccounting)
{
    PbaRangeCache cache(kBig, EvictionPolicy::Lru);
    std::uint64_t expected = 0;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        cache.insert({i * 100, 8});
        expected += 8 * kSectorBytes;
    }
    EXPECT_EQ(cache.usedBytes(), expected);
    EXPECT_EQ(cache.entryCount(), 1000u);
    for (std::uint64_t i = 0; i < 1000; ++i)
        EXPECT_TRUE(cache.contains({i * 100, 8})) << i;
}

TEST(PbaRangeCache, AdjacentInsertsCoverJointRange)
{
    PbaRangeCache cache(kBig, EvictionPolicy::Lru);
    cache.insert({0, 8});
    cache.insert({8, 8});
    EXPECT_TRUE(cache.contains({0, 16}));
}

TEST(PbaRangeCache, EvictionCreatesHoleInJointCoverage)
{
    PbaRangeCache cache(16 * kSectorBytes, EvictionPolicy::Lru);
    cache.insert({0, 8});
    cache.insert({8, 8});
    EXPECT_TRUE(cache.contains({0, 16}));
    cache.insert({100, 8}); // evicts the LRU half
    EXPECT_FALSE(cache.contains({0, 16}));
}

} // namespace
} // namespace logseek::disk
