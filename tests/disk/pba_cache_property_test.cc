/**
 * @file
 * Property-based tests for PbaRangeCache: random insert/contains
 * sequences validated against a brute-force per-sector reference
 * (coverage correctness) plus budget invariants.
 */

#include <gtest/gtest.h>

#include <set>

#include "disk/pba_cache.h"
#include "util/random.h"

namespace logseek::disk
{
namespace
{

struct FuzzParams
{
    std::uint64_t seed;
    EvictionPolicy policy;
    std::uint64_t capacitySectors; // 0 = unlimited-ish (huge)
};

class PbaCacheFuzz : public ::testing::TestWithParam<FuzzParams>
{
};

TEST_P(PbaCacheFuzz, UnlimitedCacheMatchesSectorSetExactly)
{
    // Without evictions, contains() must agree with a plain set of
    // resident sectors.
    const FuzzParams params = GetParam();
    Rng rng(params.seed);
    PbaRangeCache cache(1ULL << 40, params.policy);
    std::set<std::uint64_t> resident;

    for (int op = 0; op < 2000; ++op) {
        const SectorCount count = 1 + rng.nextUint(16);
        const std::uint64_t start = rng.nextUint(512);
        const SectorExtent extent{start, count};
        if (rng.nextBool(0.5)) {
            cache.insert(extent);
            for (SectorCount i = 0; i < count; ++i)
                resident.insert(start + i);
        } else {
            bool expected = true;
            for (SectorCount i = 0; i < count; ++i) {
                if (!resident.contains(start + i)) {
                    expected = false;
                    break;
                }
            }
            ASSERT_EQ(cache.contains(extent), expected)
                << "op " << op << " extent [" << start << ","
                << extent.end() << ")";
        }
    }
    ASSERT_EQ(cache.usedBytes(),
              resident.size() * kSectorBytes);
}

TEST_P(PbaCacheFuzz, BudgetNeverExceeded)
{
    const FuzzParams params = GetParam();
    if (params.capacitySectors == 0)
        GTEST_SKIP() << "budget case only";
    Rng rng(params.seed ^ 0xabcdef);
    PbaRangeCache cache(params.capacitySectors * kSectorBytes,
                        params.policy);
    for (int op = 0; op < 5000; ++op) {
        const SectorCount count = 1 + rng.nextUint(32);
        const std::uint64_t start = rng.nextUint(1ULL << 30);
        if (rng.nextBool(0.7))
            cache.insert({start, count});
        else
            cache.contains({start, count});
        ASSERT_LE(cache.usedBytes(), cache.capacityBytes());
    }
}

TEST_P(PbaCacheFuzz, HitsOnlyReturnResidentData)
{
    // Under eviction pressure, a hit must still mean "every sector
    // was inserted at some point" — the cache can forget but never
    // invent coverage. Track all ever-inserted sectors as the
    // superset.
    const FuzzParams params = GetParam();
    if (params.capacitySectors == 0)
        GTEST_SKIP() << "budget case only";
    Rng rng(params.seed ^ 0x5555);
    PbaRangeCache cache(params.capacitySectors * kSectorBytes,
                        params.policy);
    std::set<std::uint64_t> ever;

    for (int op = 0; op < 3000; ++op) {
        const SectorCount count = 1 + rng.nextUint(8);
        const std::uint64_t start = rng.nextUint(4096);
        const SectorExtent extent{start, count};
        if (rng.nextBool(0.6)) {
            cache.insert(extent);
            for (SectorCount i = 0; i < count; ++i)
                ever.insert(start + i);
        } else if (cache.contains(extent)) {
            for (SectorCount i = 0; i < count; ++i)
                ASSERT_TRUE(ever.contains(start + i))
                    << "phantom sector " << start + i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, PbaCacheFuzz,
    ::testing::Values(
        FuzzParams{1, EvictionPolicy::Lru, 0},
        FuzzParams{2, EvictionPolicy::Fifo, 0},
        FuzzParams{3, EvictionPolicy::Lru, 64},
        FuzzParams{4, EvictionPolicy::Fifo, 64},
        FuzzParams{5, EvictionPolicy::Lru, 512},
        FuzzParams{6, EvictionPolicy::Fifo, 512},
        FuzzParams{7, EvictionPolicy::Lru, 7},
        FuzzParams{8, EvictionPolicy::Fifo, 7}));

} // namespace
} // namespace logseek::disk
