#include "report.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/logging.h"
#include "util/units.h"

namespace logseek::analysis
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    panicIf(headers_.empty(), "TextTable: need at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    panicIf(cells.size() != headers_.size(),
            "TextTable: row width does not match header");
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &out) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << std::left << std::setw(static_cast<int>(widths[c]))
                << row[c];
            out << (c + 1 == row.size() ? "\n" : "  ");
        }
    };

    print_row(headers_);
    std::size_t total = 0;
    for (const std::size_t w : widths)
        total += w + 2;
    out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

std::string
formatRatio(std::optional<double> value, int precision)
{
    return value ? formatDouble(*value, precision) : "-";
}

std::string
formatDouble(double value, int precision)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(precision) << value;
    return out.str();
}

std::string
formatBytes(std::uint64_t bytes)
{
    const char *unit = "B";
    double value = static_cast<double>(bytes);
    if (bytes >= kGiB) {
        value /= static_cast<double>(kGiB);
        unit = "GiB";
    } else if (bytes >= kMiB) {
        value /= static_cast<double>(kMiB);
        unit = "MiB";
    } else if (bytes >= kKiB) {
        value /= static_cast<double>(kKiB);
        unit = "KiB";
    }
    return formatDouble(value, 1) + " " + unit;
}

void
printResult(std::ostream &out, const stl::SimResult &result)
{
    TextTable table({"metric", "value"});
    table.addRow({"workload", result.workload});
    table.addRow({"config", result.configLabel});
    table.addRow({"reads", std::to_string(result.reads)});
    table.addRow({"writes", std::to_string(result.writes)});
    table.addRow({"read seeks", std::to_string(result.readSeeks)});
    table.addRow({"write seeks", std::to_string(result.writeSeeks)});
    table.addRow({"total seeks", std::to_string(result.totalSeeks())});
    table.addRow({"fragmented reads",
                  std::to_string(result.fragmentedReads)});
    table.addRow({"read fragments",
                  std::to_string(result.readFragments)});
    table.addRow({"cache hits", std::to_string(result.cacheHits)});
    table.addRow({"prefetch hits",
                  std::to_string(result.prefetchHits)});
    table.addRow({"defrag rewrites",
                  std::to_string(result.defragRewrites)});
    table.addRow({"media read", formatBytes(result.mediaReadBytes)});
    table.addRow({"media write",
                  formatBytes(result.mediaWriteBytes)});
    if (result.cleaningMerges > 0) {
        table.addRow({"cleaning merges",
                      std::to_string(result.cleaningMerges)});
        table.addRow({"cleaning seeks",
                      std::to_string(result.cleaningSeeks)});
        table.addRow({"write amplification",
                      formatDouble(result.writeAmplification())});
    }
    table.addRow({"static fragments",
                  std::to_string(result.staticFragments)});
    table.addRow({"est. seek time",
                  formatDouble(result.seekTimeSec, 3) + " s"});
    table.print(out);
}

void
printSeries(std::ostream &out, const std::string &title,
            const std::string &x_label, const std::string &y_label,
            const std::vector<std::pair<double, double>> &points)
{
    out << "# " << title << "\n";
    out << "# " << x_label << "\t" << y_label << "\n";
    for (const auto &[x, y] : points)
        out << formatDouble(x, 4) << "\t" << formatDouble(y, 6)
            << "\n";
}

} // namespace logseek::analysis
