#include "misordered.h"

#include <vector>

namespace logseek::analysis
{

MisorderedWriteStats
countMisorderedWrites(const trace::Trace &trace,
                      std::uint64_t window_bytes)
{
    // Collect write indices once so the look-ahead walks writes
    // only.
    std::vector<const trace::IoRecord *> writes;
    writes.reserve(trace.size());
    for (const auto &record : trace) {
        if (record.isWrite())
            writes.push_back(&record);
    }

    MisorderedWriteStats stats;
    stats.writes = writes.size();

    for (std::size_t i = 0; i < writes.size(); ++i) {
        const Lba start = writes[i]->extent.start;
        std::uint64_t seen_bytes = 0;
        for (std::size_t j = i + 1;
             j < writes.size() && seen_bytes <= window_bytes; ++j) {
            if (writes[j]->extent.end() == start) {
                ++stats.misordered;
                break;
            }
            seen_bytes += writes[j]->extent.bytes();
        }
    }
    return stats;
}

} // namespace logseek::analysis
