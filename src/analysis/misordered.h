/**
 * @file
 * Mis-ordered write detection (paper §IV-B, Figure 8).
 *
 * A write is *mis-ordered* if a write in the near future — within
 * the next 256 KB of written data — ends exactly where this write
 * begins; i.e. the two writes are LBA-contiguous but arrive in the
 * wrong temporal order, so a log stores them reversed and a later
 * sequential read pays a missed rotation.
 */

#ifndef LOGSEEK_ANALYSIS_MISORDERED_H
#define LOGSEEK_ANALYSIS_MISORDERED_H

#include <cstdint>

#include "trace/trace.h"

namespace logseek::analysis
{

/** Result of the mis-ordered write analysis. */
struct MisorderedWriteStats
{
    std::uint64_t writes = 0;
    std::uint64_t misordered = 0;

    /** Fraction of writes that are mis-ordered. */
    double
    fraction() const
    {
        return writes == 0 ? 0.0
                           : static_cast<double>(misordered) /
                                 static_cast<double>(writes);
    }
};

/**
 * Count mis-ordered writes in a trace.
 *
 * @param trace The trace to scan (reads are ignored).
 * @param window_bytes How far ahead, in written volume, to look for
 *        the LBA-preceding write (the paper uses 256 KB).
 */
MisorderedWriteStats
countMisorderedWrites(const trace::Trace &trace,
                      std::uint64_t window_bytes = 256 * 1024);

} // namespace logseek::analysis

#endif // LOGSEEK_ANALYSIS_MISORDERED_H
