#include "observers.h"

#include <algorithm>

#include "util/logging.h"

namespace logseek::analysis
{

SeekCounter::SeekCounter(std::uint64_t ops_per_bin,
                         std::uint64_t long_seek_bytes)
    : longSeekBytes_(long_seek_bytes), series_(ops_per_bin)
{
}

void
SeekCounter::onEvent(const stl::IoEvent &event)
{
    for (const auto &seek : event.seeks) {
        if (seek.type == trace::IoType::Read)
            ++readSeeks_;
        else
            ++writeSeeks_;
        const auto magnitude = static_cast<std::uint64_t>(
            seek.distanceBytes < 0 ? -seek.distanceBytes
                                   : seek.distanceBytes);
        if (magnitude > longSeekBytes_) {
            ++longSeeks_;
            series_.add(event.opIndex, 1);
        }
    }
}

void
AccessDistanceCdf::onEvent(const stl::IoEvent &event)
{
    // Every media access contributes one distance sample; accesses
    // that did not seek contribute 0 (the sequential case). The
    // number of media accesses is the segment count minus segments
    // served from caches; seeks carry the non-zero distances.
    const std::size_t media_accesses =
        event.segments.size() - event.cacheHits - event.prefetchHits +
        event.defragSegments.size();
    const std::size_t sequential =
        media_accesses >= event.seeks.size()
            ? media_accesses - event.seeks.size()
            : 0;
    for (std::size_t i = 0; i < sequential; ++i)
        cdf_.add(0.0);
    for (const auto &seek : event.seeks)
        cdf_.add(static_cast<double>(seek.distanceBytes) / 1.0e9);
}

void
FragmentedReadCdf::onEvent(const stl::IoEvent &event)
{
    if (!event.record.isRead())
        return;
    ++reads_;
    if (!event.isFragmentedRead())
        return;
    ++fragmented_;
    fragments_ += event.segments.size();
    cdf_.add(static_cast<double>(event.segments.size()));
}

void
FragmentPopularity::onEvent(const stl::IoEvent &event)
{
    if (!event.isFragmentedRead())
        return;
    for (const auto &segment : event.segments) {
        FragmentStat &stat = fragments_[segment.pba];
        stat.pba = segment.pba;
        stat.bytes = std::max(stat.bytes,
                              segment.physical().bytes());
        ++stat.accesses;
        ++totalAccesses_;
    }
}

std::vector<FragmentPopularity::FragmentStat>
FragmentPopularity::sortedByPopularity() const
{
    std::vector<FragmentStat> out;
    out.reserve(fragments_.size());
    for (const auto &[pba, stat] : fragments_)
        out.push_back(stat);
    std::sort(out.begin(), out.end(),
              [](const FragmentStat &a, const FragmentStat &b) {
                  if (a.accesses != b.accesses)
                      return a.accesses > b.accesses;
                  return a.pba < b.pba;
              });
    return out;
}

std::uint64_t
FragmentPopularity::bytesForAccessFraction(double fraction) const
{
    panicIf(fraction < 0.0 || fraction > 1.0,
            "bytesForAccessFraction: fraction not in [0,1]");
    const auto sorted = sortedByPopularity();
    const double target =
        fraction * static_cast<double>(totalAccesses_);
    double covered = 0.0;
    std::uint64_t bytes = 0;
    for (const auto &stat : sorted) {
        if (covered >= target)
            break;
        covered += static_cast<double>(stat.accesses);
        bytes += stat.bytes;
    }
    return bytes;
}

} // namespace logseek::analysis
