/**
 * @file
 * Plain-text table and series printers used by the figure harnesses
 * in bench/ to emit the paper's tables and plot series.
 */

#ifndef LOGSEEK_ANALYSIS_REPORT_H
#define LOGSEEK_ANALYSIS_REPORT_H

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "stl/simulator.h"

namespace logseek::analysis
{

/** Column-aligned text table. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Add one row; must have as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns and a header rule. */
    void print(std::ostream &out) const;

    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision. */
std::string formatDouble(double value, int precision = 2);

/**
 * Format an optional ratio (e.g. stl::seekAmplification); renders
 * "-" when the ratio is undefined (zero-seek baseline or failed
 * run) so tables never print a misleading number.
 */
std::string formatRatio(std::optional<double> value,
                        int precision = 2);

/** Format a byte count as a human-readable KiB/MiB/GiB quantity. */
std::string formatBytes(std::uint64_t bytes);

/**
 * Print an (x, y) series as two aligned columns with a title line,
 * the plot-ready form used for figure output.
 */
void printSeries(std::ostream &out, const std::string &title,
                 const std::string &x_label,
                 const std::string &y_label,
                 const std::vector<std::pair<double, double>> &points);

/**
 * Dump one simulation result as a labeled two-column table —
 * the quick way to inspect a run from examples and tools.
 */
void printResult(std::ostream &out, const stl::SimResult &result);

} // namespace logseek::analysis

#endif // LOGSEEK_ANALYSIS_REPORT_H
