/**
 * @file
 * Runtime invariant checking over the replay event stream.
 *
 * The simulator promises a precise contract for every IoEvent it
 * emits (segments exactly cover the request in LBA order, seek
 * counts consistent with segment adjacency, cache/prefetch hits
 * bounded by the fragment count, defrag rewrites covering the read
 * extent). ValidatingObserver re-checks that contract on every
 * event, independently of the engine, so a translation-layer or
 * mechanism bug surfaces at the first bad event instead of as a
 * subtly wrong figure. Integration tests run it in paranoid mode,
 * where the first violation panics with the offending op index.
 */

#ifndef LOGSEEK_ANALYSIS_VALIDATING_OBSERVER_H
#define LOGSEEK_ANALYSIS_VALIDATING_OBSERVER_H

#include <cstdint>
#include <string>
#include <vector>

#include "stl/simulator.h"
#include "util/status.h"

namespace logseek::analysis
{

/**
 * A SimObserver that cross-checks replay invariants on every event.
 * Violations are counted (and the first few recorded); in paranoid
 * mode the first violation panics immediately.
 */
class ValidatingObserver : public stl::SimObserver
{
  public:
    struct Options
    {
        /** Panic on the first violation instead of recording it. */
        bool paranoid = false;

        /** How many violation messages to keep verbatim. */
        std::size_t maxRecorded = 16;
    };

    /** Non-paranoid observer with default options. */
    ValidatingObserver();

    explicit ValidatingObserver(Options options);

    void onEvent(const stl::IoEvent &event) override;

    /** Events checked so far. */
    std::uint64_t eventCount() const { return events_; }

    /** Invariant violations seen so far. */
    std::uint64_t violationCount() const { return violations_; }

    /** The first maxRecorded violation messages. */
    const std::vector<std::string> &recorded() const
    {
        return recorded_;
    }

    /**
     * Ok after a clean run; FailedPrecondition carrying the first
     * violation message (and the total count) otherwise.
     */
    Status status() const;

  private:
    /** Record (or panic on) one violation. */
    void report(const stl::IoEvent &event, const std::string &what);

    /**
     * Check that segments exactly cover extent in LBA order:
     * non-empty, gap- and overlap-free, first starts and last ends
     * on the extent's bounds. `label` names the segment list in
     * violation messages ("segments", "defrag segments").
     */
    void checkCoverage(const stl::IoEvent &event,
                       const std::vector<stl::Segment> &segments,
                       const SectorExtent &extent,
                       const char *label);

    Options options_;
    std::uint64_t events_ = 0;
    std::uint64_t violations_ = 0;
    std::uint64_t lastOpIndex_ = 0;
    std::vector<std::string> recorded_;
};

} // namespace logseek::analysis

#endif // LOGSEEK_ANALYSIS_VALIDATING_OBSERVER_H
