/**
 * @file
 * Simulation observers that accumulate the statistics behind the
 * paper's figures. Each observer attaches to a stl::Simulator and
 * consumes IoEvents; none of them alter simulation behavior.
 */

#ifndef LOGSEEK_ANALYSIS_OBSERVERS_H
#define LOGSEEK_ANALYSIS_OBSERVERS_H

#include <cstdint>
#include <map>
#include <vector>

#include "stl/simulator.h"
#include "util/histogram.h"
#include "util/time_series.h"

namespace logseek::analysis
{

/**
 * Per-type seek counting over time (paper Figures 2 and 3).
 *
 * Tracks total read/write seeks plus a binned series of "long"
 * seeks (|distance| above a threshold, 500 KB in the paper) indexed
 * by operation number so LS and NoLS runs can be differenced.
 */
class SeekCounter : public stl::SimObserver
{
  public:
    /**
     * @param ops_per_bin Operation-number bin width for the long-
     *        seek series.
     * @param long_seek_bytes Threshold above which a seek is "long".
     */
    explicit SeekCounter(std::uint64_t ops_per_bin = 1000,
                         std::uint64_t long_seek_bytes = 500 * 1000);

    void onEvent(const stl::IoEvent &event) override;

    std::uint64_t readSeeks() const { return readSeeks_; }
    std::uint64_t writeSeeks() const { return writeSeeks_; }
    std::uint64_t totalSeeks() const
    {
        return readSeeks_ + writeSeeks_;
    }
    std::uint64_t longSeeks() const { return longSeeks_; }

    /** Long seeks per operation-number bin. */
    const BinnedSeries &longSeekSeries() const { return series_; }

  private:
    std::uint64_t longSeekBytes_;
    std::uint64_t readSeeks_ = 0;
    std::uint64_t writeSeeks_ = 0;
    std::uint64_t longSeeks_ = 0;
    BinnedSeries series_;
};

/**
 * Access-distance distribution (paper Figure 4): the signed
 * distance, in bytes, between the end of one media access and the
 * start of the next — zero-distance (sequential) accesses included,
 * so the CDF shows the sequential fraction as mass at 0.
 */
class AccessDistanceCdf : public stl::SimObserver
{
  public:
    void onEvent(const stl::IoEvent &event) override;

    /** Distances in GB (signed); sequential accesses add 0. */
    const EmpiricalCdf &distancesGb() const { return cdf_; }

  private:
    EmpiricalCdf cdf_;
};

/**
 * Dynamic fragmentation of reads (paper Figure 5): the number of
 * physical fragments of each *fragmented* read (reads with a single
 * fragment are ignored, as in the paper).
 */
class FragmentedReadCdf : public stl::SimObserver
{
  public:
    void onEvent(const stl::IoEvent &event) override;

    /** One sample per fragmented read: its fragment count. */
    const EmpiricalCdf &fragmentsPerRead() const { return cdf_; }

    std::uint64_t fragmentedReads() const { return fragmented_; }
    std::uint64_t totalReads() const { return reads_; }
    std::uint64_t totalFragments() const { return fragments_; }

  private:
    EmpiricalCdf cdf_;
    std::uint64_t reads_ = 0;
    std::uint64_t fragmented_ = 0;
    std::uint64_t fragments_ = 0;
};

/**
 * Fragment popularity (paper Figure 10): read access counts per
 * physical fragment, for fragments touched by fragmented reads.
 * Fragments are keyed by their physical start sector, which is
 * stable because physical space is written at most once.
 */
class FragmentPopularity : public stl::SimObserver
{
  public:
    void onEvent(const stl::IoEvent &event) override;

    /** One popularity record. */
    struct FragmentStat
    {
        Pba pba = 0;
        std::uint64_t bytes = 0;
        std::uint64_t accesses = 0;
    };

    /**
     * Fragments sorted by access count, most popular first
     * (Figure 10's x axis order).
     */
    std::vector<FragmentStat> sortedByPopularity() const;

    /**
     * Cumulative bytes needed to cache the most popular fragments
     * covering the given fraction of all fragment accesses.
     */
    std::uint64_t bytesForAccessFraction(double fraction) const;

    std::size_t fragmentCount() const { return fragments_.size(); }
    std::uint64_t totalAccesses() const { return totalAccesses_; }

  private:
    std::map<Pba, FragmentStat> fragments_;
    std::uint64_t totalAccesses_ = 0;
};

} // namespace logseek::analysis

#endif // LOGSEEK_ANALYSIS_OBSERVERS_H
