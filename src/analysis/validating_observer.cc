#include "validating_observer.h"

#include "util/logging.h"

namespace logseek::analysis
{

ValidatingObserver::ValidatingObserver() = default;

ValidatingObserver::ValidatingObserver(Options options)
    : options_(options)
{
}

void
ValidatingObserver::report(const stl::IoEvent &event,
                           const std::string &what)
{
    const std::string message =
        "replay invariant violated at op " +
        std::to_string(event.opIndex) + ": " + what;
    if (options_.paranoid)
        panic(message);
    ++violations_;
    if (recorded_.size() < options_.maxRecorded)
        recorded_.push_back(message);
}

void
ValidatingObserver::checkCoverage(
    const stl::IoEvent &event,
    const std::vector<stl::Segment> &segments,
    const SectorExtent &extent, const char *label)
{
    if (segments.empty()) {
        report(event, std::string(label) + " empty");
        return;
    }
    std::uint64_t expected = extent.start;
    for (const auto &segment : segments) {
        if (segment.logical.empty()) {
            report(event, std::string(label) +
                              " contain an empty segment");
            return;
        }
        if (segment.logical.start != expected) {
            report(event,
                   std::string(label) + " leave a gap or overlap at "
                   "sector " + std::to_string(segment.logical.start) +
                   " (expected " + std::to_string(expected) + ")");
            return;
        }
        expected = segment.logical.end();
    }
    if (expected != extent.end()) {
        report(event, std::string(label) + " cover sectors up to " +
                          std::to_string(expected) +
                          " but the extent ends at " +
                          std::to_string(extent.end()));
    }
}

void
ValidatingObserver::onEvent(const stl::IoEvent &event)
{
    // Events must arrive in trace order. opIndex restarts at 0 when
    // the same observer is attached across several run() calls.
    if (events_ > 0 && event.opIndex != 0 &&
        event.opIndex != lastOpIndex_ + 1)
        report(event, "op index " + std::to_string(event.opIndex) +
                          " does not follow " +
                          std::to_string(lastOpIndex_));
    lastOpIndex_ = event.opIndex;
    ++events_;

    const auto &record = event.record;
    if (record.extent.empty())
        report(event, "request extent is empty");

    // Segments exactly cover the request extent, in LBA order.
    checkCoverage(event, event.segments, record.extent, "segments");

    const std::uint64_t hits = event.cacheHits + event.prefetchHits;
    std::uint64_t media_accesses = 0;

    if (record.isWrite()) {
        // Writes never consult the read-side caches and never
        // trigger defragmentation.
        if (hits != 0)
            report(event, "write reported cache/prefetch hits");
        if (event.defragRewrite || !event.defragSegments.empty())
            report(event, "write reported a defrag rewrite");
        media_accesses = event.segments.size();
        for (const auto &seek : event.seeks) {
            if (seek.type != trace::IoType::Write) {
                report(event, "write incurred a read-classified "
                              "seek");
                break;
            }
        }
    } else {
        // Cache/prefetch can serve at most one hit per fragment.
        if (hits > event.segments.size())
            report(event,
                   "cache+prefetch hits (" + std::to_string(hits) +
                       ") exceed the fragment count (" +
                       std::to_string(event.segments.size()) + ")");

        if (event.defragRewrite != !event.defragSegments.empty())
            report(event, "defragRewrite flag disagrees with the "
                          "defrag segment list");
        if (event.defragRewrite) {
            checkCoverage(event, event.defragSegments, record.extent,
                          "defrag segments");
            // Relocation appends at the write frontier, so the
            // physical runs advance monotonically (gaps only at
            // zone-guard crossings).
            for (std::size_t i = 1;
                 i < event.defragSegments.size(); ++i) {
                const auto &prev = event.defragSegments[i - 1];
                const auto &next = event.defragSegments[i];
                if (next.pba < prev.pba + prev.logical.count) {
                    report(event, "defrag segments are not in "
                                  "ascending physical order");
                    break;
                }
            }
        }

        const std::uint64_t read_accesses =
            event.segments.size() >= hits
                ? event.segments.size() - hits
                : 0;
        media_accesses = read_accesses + event.defragSegments.size();

        std::uint64_t read_seeks = 0;
        std::uint64_t write_seeks = 0;
        for (const auto &seek : event.seeks) {
            if (seek.type == trace::IoType::Read)
                ++read_seeks;
            else
                ++write_seeks;
        }
        if (read_seeks > read_accesses)
            report(event,
                   "read seeks (" + std::to_string(read_seeks) +
                       ") exceed media read accesses (" +
                       std::to_string(read_accesses) + ")");
        if (write_seeks > event.defragSegments.size())
            report(event,
                   "write seeks (" + std::to_string(write_seeks) +
                       ") exceed defrag segments (" +
                       std::to_string(event.defragSegments.size()) +
                       ")");
    }

    // At most one seek per media access, and recorded seeks must
    // be real (flagged, non-zero distance).
    if (event.seeks.size() > media_accesses)
        report(event,
               "seek count (" + std::to_string(event.seeks.size()) +
                   ") exceeds media accesses (" +
                   std::to_string(media_accesses) + ")");
    for (const auto &seek : event.seeks) {
        if (!seek.seeked || seek.distanceBytes == 0) {
            report(event, "recorded seek is not an actual seek");
            break;
        }
    }
}

Status
ValidatingObserver::status() const
{
    if (violations_ == 0)
        return Status();
    const std::string first =
        recorded_.empty() ? std::string("(not recorded)")
                          : recorded_.front();
    return failedPreconditionError(
        std::to_string(violations_) +
        " replay invariant violations; first: " + first);
}

} // namespace logseek::analysis
