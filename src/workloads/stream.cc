#include "stream.h"

#include <algorithm>

#include "util/logging.h"
#include "util/random.h"
#include "workloads/builder.h"

namespace logseek::workloads
{

WorkloadStream::WorkloadStream(StreamSpec spec)
    : spec_(std::move(spec))
{
    panicIf(!spec_.makeChunk,
            "WorkloadStream '" + spec_.name + "': null makeChunk");
}

std::size_t
WorkloadStream::next(trace::IoEventBatch &batch, std::size_t max)
{
    // Advance past exhausted (or empty) chunks until one has
    // records left, regenerating at most one chunk per loop turn —
    // only the newest chunk is ever resident.
    while (chunkPos_ == chunk_.size()) {
        if (nextChunk_ >= spec_.chunks)
            return 0;
        if (!chunk_.empty())
            baseUs_ += chunk_[chunk_.size() - 1].timestampUs +
                       spec_.chunkGapUs;
        chunk_ = spec_.makeChunk(nextChunk_);
        ++nextChunk_;
        chunkPos_ = 0;
    }
    const std::size_t n =
        std::min(max, chunk_.size() - chunkPos_);
    batch.clear();
    for (std::size_t k = 0; k < n; ++k) {
        trace::IoRecord record = chunk_[chunkPos_ + k];
        record.timestampUs += baseUs_;
        batch.append(record);
    }
    chunkPos_ += n;
    return n;
}

void
WorkloadStream::reset()
{
    nextChunk_ = 0;
    chunk_ = trace::Trace();
    chunkPos_ = 0;
    baseUs_ = 0;
}

StreamSource::StreamSource(StreamSpec spec)
    : spec_(std::move(spec))
{
    panicIf(!spec_.makeChunk,
            "StreamSource '" + spec_.name + "': null makeChunk");
}

StreamSpec
profileStream(const std::string &name,
              const ProfileOptions &options, std::uint64_t repeats)
{
    // One throwaway generation pins the stream's declared extent
    // and record count; the chunks regenerate it on demand.
    const trace::Trace probe = makeWorkload(name, options);
    StreamSpec spec;
    spec.name = name;
    spec.addressSpaceEnd = probe.addressSpaceEnd();
    spec.chunks = repeats;
    spec.totalRecords = probe.size() * repeats;
    spec.makeChunk = [name, options](std::uint64_t) {
        return makeWorkload(name, options);
    };
    return spec;
}

StreamSpec
mixedStream(const std::string &name, std::uint64_t chunks,
            std::uint64_t records_per_chunk, std::uint64_t seed)
{
    panicIf(records_per_chunk < 2,
            "mixedStream '" + name +
                "': records_per_chunk must be >= 2");
    constexpr SectorCount kWriteIo = 256; // 128 KiB stripes
    constexpr SectorCount kReadIo = 64;   // 32 KiB reads
    const std::uint64_t writes_per_chunk = records_per_chunk / 2;
    const Lba region_sectors = writes_per_chunk * kWriteIo;

    StreamSpec spec;
    spec.name = name;
    spec.addressSpaceEnd = region_sectors;
    spec.chunks = chunks;
    spec.totalRecords = chunks * records_per_chunk;
    spec.makeChunk = [name, records_per_chunk, writes_per_chunk,
                      region_sectors,
                      seed](std::uint64_t chunk) -> trace::Trace {
        TraceBuilder builder(name);
        // Distinct, reproducible stream per (seed, chunk).
        Rng rng(seed ^ (chunk * 0x9e3779b97f4a7c15ULL +
                        0x2545f4914f6cdd1dULL));
        // Each chunk's writes tile the region once, phase-shifted
        // per chunk so successive chunks overwrite different
        // stripes first; reads hit seeded offsets of the region.
        const std::uint64_t phase =
            (chunk * 37) % writes_per_chunk;
        for (std::uint64_t i = 0; i < records_per_chunk; ++i) {
            if (i % 2 == 0) {
                const std::uint64_t stripe =
                    (i / 2 + phase) % writes_per_chunk;
                builder.write(stripe * kWriteIo, kWriteIo);
            } else {
                const Lba lba =
                    rng.nextUint(region_sectors - kReadIo + 1);
                builder.read(lba, kReadIo);
            }
        }
        return builder.take();
    };
    return spec;
}

} // namespace logseek::workloads
