/**
 * @file
 * Reusable workload phase primitives.
 *
 * Each primitive appends one burst of requests to a TraceBuilder.
 * Named workload profiles (profiles.h) compose these primitives to
 * mimic the structural behaviors the paper observes in the MSR and
 * CloudPhysics traces: random updates that fragment later scans,
 * mis-ordered write bursts (Figure 7), temporally correlated
 * read-after-write, and skewed re-reads of fragmented hot data
 * (Figure 10).
 */

#ifndef LOGSEEK_WORKLOADS_PHASES_H
#define LOGSEEK_WORKLOADS_PHASES_H

#include <cstdint>
#include <vector>

#include "util/extent.h"
#include "util/random.h"
#include "workloads/builder.h"

namespace logseek::workloads
{

/**
 * Write region sequentially, front to back, in io_sectors chunks
 * (last chunk may be short).
 */
void sequentialWrite(TraceBuilder &builder, const SectorExtent &region,
                     SectorCount io_sectors);

/** Read region sequentially, front to back, in io_sectors chunks. */
void sequentialRead(TraceBuilder &builder, const SectorExtent &region,
                    SectorCount io_sectors);

/**
 * Issue count writes of io_sectors at uniformly random io-aligned
 * offsets inside region.
 */
void randomWrite(TraceBuilder &builder, Rng &rng,
                 const SectorExtent &region, std::uint64_t count,
                 SectorCount io_sectors);

/** Issue count random-offset reads of io_sectors inside region. */
void randomRead(TraceBuilder &builder, Rng &rng,
                const SectorExtent &region, std::uint64_t count,
                SectorCount io_sectors);

/** Issue order for misorderedWrite runs. */
enum class MisorderPattern
{
    /** Whole run written back to front, one io at a time. */
    Descending,

    /** Ascending chunks, chunks visited in descending order. */
    ChunkedDescending,

    /** Two interleaved ascending halves (a:0, b:0, a:1, b:1, ...). */
    InterleavedPair,
};

/**
 * Write a contiguous run non-sequentially, reproducing the
 * mis-ordered write patterns of paper Figure 7. The run's data ends
 * up complete, but its temporal (and thus log) order disagrees with
 * LBA order.
 */
void misorderedWrite(TraceBuilder &builder, const SectorExtent &run,
                     SectorCount io_sectors, MisorderPattern pattern);

/**
 * Write region front to back in io_sectors chunks, but shuffle the
 * issue order inside successive windows of window_ios chunks — the
 * small-scale randomness of paper Figure 7b. Each window is
 * shuffled with probability shuffle_probability and left in order
 * otherwise, controlling how much of the region ends up disordered. Under a log the
 * region's LBA-adjacent data lands within a window-sized physical
 * neighborhood, which is exactly the situation look-ahead-behind
 * prefetching repairs.
 */
void shuffledSequentialWrite(TraceBuilder &builder, Rng &rng,
                             const SectorExtent &region,
                             SectorCount io_sectors,
                             std::uint32_t window_ios,
                             double shuffle_probability = 1.0);

/**
 * Write an area as several concurrent sequential streams: the area
 * is split into stream_count equal subregions which are written
 * round-robin, one io each. The paper (§IV-B) names interleaved
 * sequential write streams as a source of non-sequentiality: under
 * conventional placement every request seeks between streams, while
 * a log absorbs them seek-free but leaves each stream's data
 * interleaved on the medium.
 */
void interleavedStreamWrite(TraceBuilder &builder,
                            const SectorExtent &area,
                            std::uint32_t stream_count,
                            SectorCount io_sectors);

/**
 * Replay the most recent writes as reads, in the exact order they
 * were written (the paper's "small file creation and access" toy
 * case: temporally correlated reads are seek-free under LS).
 *
 * @param recent Write extents in issue order, oldest first.
 */
void temporalReplayRead(TraceBuilder &builder,
                        const std::vector<SectorExtent> &recent);

/**
 * Skewed re-reader of a pool of fixed-size chunks. The pool's
 * popularity ranking is a random permutation fixed at construction,
 * so the same chunks stay hot across bursts — the property
 * translation-aware selective caching exploits.
 */
class HotSpotReader
{
  public:
    /**
     * @param pool Region divided into equal chunks.
     * @param chunk_sectors Chunk size (reads cover one chunk).
     * @param skew Zipf exponent for chunk popularity.
     * @param rng Used to draw the fixed popularity permutation.
     */
    HotSpotReader(const SectorExtent &pool, SectorCount chunk_sectors,
                  double skew, Rng &rng);

    /** Issue count chunk reads with the fixed popularity skew. */
    void emit(TraceBuilder &builder, Rng &rng, std::uint64_t count);

    /** The extent of chunk i. */
    SectorExtent chunkExtent(std::size_t i) const;

    /** Number of chunks in the pool. */
    std::size_t chunkCount() const { return permutation_.size(); }

  private:
    SectorExtent pool_;
    SectorCount chunkSectors_;
    ZipfSampler sampler_;
    std::vector<std::uint32_t> permutation_;
};

} // namespace logseek::workloads

#endif // LOGSEEK_WORKLOADS_PHASES_H
