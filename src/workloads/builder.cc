#include "builder.h"

#include "util/logging.h"

namespace logseek::workloads
{

TraceBuilder::TraceBuilder(std::string name,
                           std::uint64_t interarrival_us)
    : trace_(std::move(name)), interarrivalUs_(interarrival_us)
{
    panicIf(interarrival_us == 0,
            "TraceBuilder: inter-arrival time must be positive");
}

void
TraceBuilder::read(Lba lba, SectorCount count)
{
    trace_.appendRead(lba, count, clockUs_);
    clockUs_ += interarrivalUs_;
}

void
TraceBuilder::write(Lba lba, SectorCount count)
{
    trace_.appendWrite(lba, count, clockUs_);
    clockUs_ += interarrivalUs_;
}

} // namespace logseek::workloads
