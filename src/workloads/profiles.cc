#include "profiles.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <optional>

#include "util/logging.h"
#include "util/random.h"
#include "workloads/builder.h"
#include "workloads/phases.h"

namespace logseek::workloads
{

namespace
{

/**
 * Full parameterization of one named profile. Write and read mixes
 * are fractions of the (scaled) Table I budgets; any slack goes to
 * the Random category. See profiles.h and DESIGN.md §3 for how each
 * knob maps to a behavior the paper observes.
 */
struct Spec
{
    const char *name;
    const char *suite;
    const char *os;
    std::uint64_t reads;
    std::uint64_t writes;
    double meanWriteKiB;
    const char *behavior;

    int days = 7;

    // Write mix.
    double wUpdate = 0.0;   ///< random updates inside the scan region
    double wMisorder = 0.0; ///< mis-ordered runs (misPattern)
    double wShuffle = 0.0;  ///< locally shuffled sequential areas
    double wSeq = 0.0;      ///< seqStreams interleaved streams
    double wRandom = 0.0;   ///< churn over a dedicated random area
    std::uint32_t seqStreams = 1;
    MisorderPattern misPattern = MisorderPattern::Descending;

    // Read mix.
    double rScan = 0.0;     ///< sequential scans of the scan region
    double rHot = 0.0;      ///< zipf chunk reads of the hot pool
    double rRun = 0.0;      ///< ascending re-reads of recent runs
    double rTemporal = 0.0; ///< replay of recent writes
    double rRandom = 0.0;   ///< uniform reads over the whole space

    // Knobs.
    std::uint64_t scanRegionMiB = 0;
    bool scanFresh = false;      ///< new scan region every day

    /**
     * Size each day's scan region so the daily scan-read budget
     * covers it about once — scan-once behavior, the case where
     * opportunistic defragmentation pays its seek with no payback.
     */
    bool scanOncePerDay = false;
    bool prepShuffleScan = false; ///< day-0 shuffled fill of region
    double prepShuffleFrac = 1.0; ///< fraction of windows shuffled
    std::uint64_t hotPoolMiB = 0;
    double hotSkew = 1.1;

    /**
     * Hot reads at arbitrary (sector-unaligned) offsets inside the
     * pool instead of aligned chunk reads. Overlapping reads make
     * opportunistic defragmentation splinter the area instead of
     * healing it, while PBA-keyed selective caching still wins —
     * the w20 pattern where defragmentation hurts.
     */
    bool hotUnaligned = false;

    /** Fragments each hot chunk is split into at prep time. */
    std::uint32_t hotPieces = 4;
    std::uint32_t writeIoKiB = 16;
    std::uint32_t readIoKiB = 32;

    /**
     * Io size of scan-region updates; 0 = writeIoKiB. Reads become
     * fragmented only when they span several update extents, so
     * profiles whose mechanisms act on scans keep this well below
     * readIoKiB.
     */
    std::uint32_t updateIoKiB = 0;

    /** Io size of mis-ordered/shuffled runs; 0 = writeIoKiB. */
    std::uint32_t runIoKiB = 0;

    std::uint32_t runIos = 32;        ///< ios per mis-ordered run
    std::uint32_t shuffleWindowIos = 16;

    /**
     * Volume capacity in GiB; 0 = just the touched space. When set,
     * the generator probes the last sector once (as an OS partition
     * scan would), so the log-structured write frontier lands above
     * the full volume — the far-log placement that gives the newer
     * CloudPhysics traces their multi-GB LS seek distances in paper
     * Figure 4.
     */
    std::uint64_t diskGiB = 0;
};

/** Deterministic 64-bit hash of a workload name (FNV-1a). */
std::uint64_t
hashName(const char *name)
{
    std::uint64_t hash = 1469598103934665603ULL;
    for (const char *p = name; *p != '\0'; ++p) {
        hash ^= static_cast<unsigned char>(*p);
        hash *= 1099511628211ULL;
    }
    return hash;
}

// Table I numbers come straight from the paper; behavior strings
// summarize the archetype each profile realizes (DESIGN.md §3).
const Spec kSpecs[] = {
    // ------------------------------ MSR ------------------------------
    {.name = "usr_0", .suite = "MSR", .os = "Microsoft Windows",
     .reads = 904483, .writes = 1333406, .meanWriteKiB = 10.2,
     .behavior = "write-dominant user volume, temporally correlated reads",
     .wUpdate = 0.15, .wSeq = 0.2, .wRandom = 0.65, .seqStreams = 4,
     .rScan = 0.1, .rHot = 0.2, .rTemporal = 0.3, .rRandom = 0.4,
     .scanRegionMiB = 32, .hotPoolMiB = 16,
     .writeIoKiB = 10, .readIoKiB = 40},

    {.name = "usr_1", .suite = "MSR", .os = "Microsoft Windows",
     .reads = 41426266, .writes = 3857714, .meanWriteKiB = 15.2,
     .behavior = "repeated large scans over a fragmented user volume",
     .wUpdate = 0.7, .wRandom = 0.3,
     .rScan = 0.5, .rTemporal = 0.05, .rRandom = 0.45,
     .scanRegionMiB = 1024,
     .writeIoKiB = 15, .readIoKiB = 52},

    {.name = "src2_2", .suite = "MSR", .os = "Microsoft Windows",
     .reads = 350930, .writes = 805955, .meanWriteKiB = 51.1,
     .behavior = "write-dominant with mis-ordered bursts, scan-once reads",
     .wUpdate = 0.1, .wMisorder = 0.25, .wSeq = 0.15, .wRandom = 0.5,
     .seqStreams = 4,
     .rScan = 0.35, .rRun = 0.15, .rTemporal = 0.2, .rRandom = 0.3,
     .scanRegionMiB = 48, .scanFresh = true, .scanOncePerDay = true,
     .writeIoKiB = 51, .readIoKiB = 64, .updateIoKiB = 16},

    {.name = "hm_1", .suite = "MSR", .os = "Microsoft Windows",
     .reads = 580896, .writes = 28415, .meanWriteKiB = 19.9,
     .behavior = "read-dominated re-reads of mis-ordered descending bursts",
     .wUpdate = 0.2, .wMisorder = 0.8,
     .misPattern = MisorderPattern::ChunkedDescending,
     .rHot = 0.55, .rRun = 0.2, .rRandom = 0.25,
     .scanRegionMiB = 16, .hotPoolMiB = 8, .hotSkew = 1.2,
     .writeIoKiB = 20, .readIoKiB = 80},

    {.name = "web_0", .suite = "MSR", .os = "Microsoft Windows",
     .reads = 606487, .writes = 1423458, .meanWriteKiB = 8.5,
     .behavior = "write-dominant web cache with hot fragmented objects",
     .wUpdate = 0.1, .wSeq = 0.2, .wRandom = 0.7, .seqStreams = 4,
     .rHot = 0.35, .rTemporal = 0.25, .rRandom = 0.4,
     .scanRegionMiB = 16, .hotPoolMiB = 8, .hotSkew = 1.3,
     .writeIoKiB = 8, .readIoKiB = 28},

    {.name = "wdev_0", .suite = "MSR", .os = "Microsoft Windows",
     .reads = 229529, .writes = 913732, .meanWriteKiB = 8.2,
     .behavior = "write-dominant development server",
     .wUpdate = 0.1, .wSeq = 0.1, .wRandom = 0.8, .seqStreams = 2,
     .rHot = 0.2, .rTemporal = 0.3, .rRandom = 0.5,
     .scanRegionMiB = 16, .hotPoolMiB = 8,
     .writeIoKiB = 8, .readIoKiB = 12},

    {.name = "mds_0", .suite = "MSR", .os = "Microsoft Windows",
     .reads = 143973, .writes = 1067061, .meanWriteKiB = 7.2,
     .behavior = "write-dominant media server metadata",
     .wUpdate = 0.1, .wSeq = 0.1, .wRandom = 0.8, .seqStreams = 2,
     .rHot = 0.2, .rTemporal = 0.3, .rRandom = 0.5,
     .scanRegionMiB = 16, .hotPoolMiB = 8,
     .writeIoKiB = 7, .readIoKiB = 22},

    {.name = "rsrch_0", .suite = "MSR", .os = "Microsoft Windows",
     .reads = 133625, .writes = 1300030, .meanWriteKiB = 8.7,
     .behavior = "write-dominant research project store",
     .wUpdate = 0.1, .wSeq = 0.1, .wRandom = 0.8, .seqStreams = 2,
     .rHot = 0.2, .rTemporal = 0.3, .rRandom = 0.5,
     .scanRegionMiB = 16, .hotPoolMiB = 8,
     .writeIoKiB = 8, .readIoKiB = 10},

    {.name = "ts_0", .suite = "MSR", .os = "Microsoft Windows",
     .reads = 316692, .writes = 1485042, .meanWriteKiB = 8.0,
     .behavior = "write-dominant terminal server",
     .wUpdate = 0.1, .wSeq = 0.1, .wRandom = 0.8, .seqStreams = 2,
     .rHot = 0.2, .rTemporal = 0.3, .rRandom = 0.5,
     .scanRegionMiB = 16, .hotPoolMiB = 8,
     .writeIoKiB = 8, .readIoKiB = 13},

    // -------------------------- CloudPhysics --------------------------
    {.name = "w84", .suite = "CloudPhysics",
     .os = "Red Hat Enterprise Linux 5",
     .reads = 655397, .writes = 4158838, .meanWriteKiB = 31.2,
     .behavior = "sequential streams plus mis-ordered runs, re-read "
                 "ascending (prefetch-sensitive)",
     .wUpdate = 0.1, .wMisorder = 0.2, .wSeq = 0.6, .wRandom = 0.1,
     .rRun = 0.6, .rTemporal = 0.1, .rRandom = 0.3,
     .scanRegionMiB = 16,
     .writeIoKiB = 31, .readIoKiB = 124, .diskGiB = 4},

    {.name = "w95", .suite = "CloudPhysics",
     .os = "Microsoft Windows Server 2008",
     .reads = 1264721, .writes = 2672520, .meanWriteKiB = 10.8,
     .behavior = "interleaved write pairs re-read ascending "
                 "(prefetch-sensitive)",
     .wUpdate = 0.1, .wMisorder = 0.5, .wSeq = 0.2, .wRandom = 0.2,
     .misPattern = MisorderPattern::InterleavedPair,
     .rHot = 0.15, .rRun = 0.55, .rTemporal = 0.1, .rRandom = 0.2,
     .scanRegionMiB = 16, .hotPoolMiB = 16,
     .writeIoKiB = 11, .readIoKiB = 44, .diskGiB = 4},

    {.name = "w64", .suite = "CloudPhysics",
     .os = "Microsoft Windows Server 2008 R2",
     .reads = 6434453, .writes = 1023814, .meanWriteKiB = 37.8,
     .behavior = "read-heavy repeated scans, moderately fragmented",
     .wUpdate = 0.6, .wSeq = 0.2, .wRandom = 0.2,
     .rScan = 0.5, .rHot = 0.15, .rRandom = 0.35,
     .scanRegionMiB = 256, .hotPoolMiB = 32,
     .writeIoKiB = 38, .readIoKiB = 64, .updateIoKiB = 16, .diskGiB = 6},

    {.name = "w93", .suite = "CloudPhysics",
     .os = "Microsoft Windows Server 2003",
     .reads = 2928984, .writes = 422470, .meanWriteKiB = 28.3,
     .behavior = "scan-once reporting over updated tables "
                 "(defragmentation-hostile)",
     .wUpdate = 0.7, .wRandom = 0.3,
     .rScan = 0.5, .rHot = 0.2, .rRandom = 0.3,
     .scanRegionMiB = 64, .scanFresh = true, .scanOncePerDay = true,
     .hotPoolMiB = 24, .hotUnaligned = true, .hotPieces = 2,
     .writeIoKiB = 28, .readIoKiB = 40, .updateIoKiB = 14, .diskGiB = 4},

    {.name = "w20", .suite = "CloudPhysics",
     .os = "Microsoft Windows Server 2003",
     .reads = 19652684, .writes = 10189634, .meanWriteKiB = 34.25,
     .behavior = "large scan-once sweeps plus hot index re-reads "
                 "(defragmentation-hostile, cache-friendly)",
     .wUpdate = 0.8, .wSeq = 0.1, .wRandom = 0.1,
     .rScan = 0.65, .rHot = 0.15, .rRandom = 0.2,
     .scanRegionMiB = 192, .scanFresh = true, .scanOncePerDay = true,
     .hotPoolMiB = 48, .hotSkew = 1.2, .hotUnaligned = true,
     .hotPieces = 2,
     .writeIoKiB = 34, .readIoKiB = 123},

    {.name = "w91", .suite = "CloudPhysics",
     .os = "Microsoft Windows Server 2003",
     .reads = 3147384, .writes = 1169222, .meanWriteKiB = 17.1,
     .behavior = "repeated scans of a small shuffled-written region "
                 "(log-sensitive star)",
     .wSeq = 0.5, .wRandom = 0.5,
     .rScan = 0.95, .rRandom = 0.05,
     .scanRegionMiB = 40, .prepShuffleScan = true,
     .prepShuffleFrac = 0.25,
     .writeIoKiB = 17, .readIoKiB = 64, .runIoKiB = 16,
     .shuffleWindowIos = 8, .diskGiB = 4},

    {.name = "w76", .suite = "CloudPhysics",
     .os = "Microsoft Windows Server 2008 R2",
     .reads = 258852, .writes = 5817421, .meanWriteKiB = 35.7,
     .behavior = "write-dominant random churn",
     .wUpdate = 0.1, .wSeq = 0.1, .wRandom = 0.8, .seqStreams = 2,
     .rHot = 0.2, .rTemporal = 0.2, .rRandom = 0.6,
     .scanRegionMiB = 16, .hotPoolMiB = 16,
     .writeIoKiB = 36, .readIoKiB = 120, .diskGiB = 4},

    {.name = "w36", .suite = "CloudPhysics",
     .os = "Red Hat Enterprise Linux 5",
     .reads = 113090, .writes = 18802536, .meanWriteKiB = 141.8,
     .behavior = "extreme write dominance, interleaved large streams",
     .wUpdate = 0.1, .wSeq = 0.4, .wRandom = 0.5, .seqStreams = 4,
     .rHot = 0.5, .rRandom = 0.5,
     .scanRegionMiB = 16, .hotPoolMiB = 16, .hotSkew = 1.4,
     .writeIoKiB = 142, .readIoKiB = 64, .diskGiB = 8},

    {.name = "w89", .suite = "CloudPhysics",
     .os = "Microsoft Windows Server 2008 R2",
     .reads = 1536898, .writes = 2089042, .meanWriteKiB = 31.7,
     .behavior = "balanced updates and repeated scans",
     .wUpdate = 0.5, .wSeq = 0.3, .wRandom = 0.2,
     .rScan = 0.45, .rHot = 0.15, .rRandom = 0.4,
     .scanRegionMiB = 96, .hotPoolMiB = 24,
     .writeIoKiB = 32, .readIoKiB = 77, .diskGiB = 4},

    {.name = "w106", .suite = "CloudPhysics",
     .os = "Microsoft Windows Server 2003 Standard",
     .reads = 576666, .writes = 2699254, .meanWriteKiB = 21.2,
     .behavior = "small-scale shuffled writes (highest mis-ordered "
                 "fraction), run re-reads",
     .wUpdate = 0.1, .wMisorder = 0.2, .wShuffle = 0.3, .wRandom = 0.4,
     .misPattern = MisorderPattern::InterleavedPair,
     .rRun = 0.4, .rTemporal = 0.2, .rRandom = 0.4,
     .scanRegionMiB = 16,
     .writeIoKiB = 21, .readIoKiB = 84, .shuffleWindowIos = 8, .diskGiB = 4},

    {.name = "w55", .suite = "CloudPhysics",
     .os = "Microsoft Windows Server 2008 R2",
     .reads = 7797622, .writes = 1057909, .meanWriteKiB = 18.2,
     .behavior = "read-heavy with periodic scan bursts (diurnal "
                 "seek-overhead swings)",
     .days = 14,
     .wUpdate = 0.4, .wSeq = 0.3, .wRandom = 0.3,
     .rScan = 0.3, .rHot = 0.3, .rRandom = 0.4,
     .scanRegionMiB = 64, .hotPoolMiB = 32,
     .writeIoKiB = 18, .readIoKiB = 20, .updateIoKiB = 5, .diskGiB = 4},

    {.name = "w33", .suite = "CloudPhysics",
     .os = "Red Hat Enterprise Linux 5",
     .reads = 7603814, .writes = 8013607, .meanWriteKiB = 31.6,
     .behavior = "heavy updates under repeated scans (cache-friendly)",
     .wUpdate = 0.6, .wRandom = 0.4,
     .rScan = 0.4, .rHot = 0.3, .rRandom = 0.3,
     .scanRegionMiB = 128, .hotPoolMiB = 48, .hotSkew = 1.2,
     .writeIoKiB = 32, .readIoKiB = 32, .updateIoKiB = 8, .diskGiB = 6},
};

constexpr std::size_t kSpecCount = std::size(kSpecs);

const Spec *
findSpec(const std::string &name)
{
    for (const Spec &spec : kSpecs) {
        if (name == spec.name)
            return &spec;
    }
    return nullptr;
}

/** Sector count of a MiB quantity. */
SectorCount
mibToSectors(std::uint64_t mib)
{
    return bytesToSectors(mib * kMiB);
}

/**
 * Generates one profile. The address space is laid out as
 * [scan regions][hot pool][run area][stream area][random area];
 * every category's budget is computed up front so regions never
 * collide.
 */
class ProfileEngine
{
  public:
    ProfileEngine(const Spec &spec, const ProfileOptions &options)
        : spec_(spec),
          rng_(options.seed ^ hashName(spec.name)),
          builder_(spec.name, /*interarrival_us=*/800)
    {
        panicIf(options.scale <= 0.0,
                "ProfileOptions: scale must be positive");
        totalReads_ = scaleCount(spec.reads, options.scale);
        totalWrites_ = scaleCount(spec.writes, options.scale);
        writeIo_ = kibToSectors(spec.writeIoKiB);
        readIo_ = kibToSectors(spec.readIoKiB);
        updateIo_ = kibToSectors(
            spec.updateIoKiB != 0 ? spec.updateIoKiB
                                  : spec.writeIoKiB);
        runIo_ = kibToSectors(
            spec.runIoKiB != 0 ? spec.runIoKiB : spec.writeIoKiB);
        layout();
    }

    trace::Trace
    build()
    {
        prepare();
        const int days = std::max(1, spec_.days);
        for (int day = 0; day < days; ++day) {
            runDay(day, days);
            builder_.idle(4ULL * 3600 * 1000 * 1000); // overnight
        }
        return builder_.take();
    }

  private:
    static SectorCount
    kibToSectors(std::uint32_t kib)
    {
        return std::max<SectorCount>(1, bytesToSectors(
            static_cast<std::uint64_t>(kib) * kKiB));
    }

    static std::uint64_t
    scaleCount(std::uint64_t table_count, double scale)
    {
        const double scaled =
            static_cast<double>(table_count) * scale;
        return std::max<std::uint64_t>(
            400, static_cast<std::uint64_t>(std::llround(scaled)));
    }

    void
    layout()
    {
        const int days = std::max(1, spec_.days);

        // Read budgets first: scan-once sizing depends on them.
        auto rshare = [&](double frac) {
            return static_cast<std::uint64_t>(
                frac * static_cast<double>(totalReads_));
        };
        scanReadOps_ = rshare(spec_.rScan);
        hotReadOps_ = spec_.hotPoolMiB > 0 ? rshare(spec_.rHot) : 0;
        runReadOps_ = rshare(spec_.rRun);
        temporalReadOps_ = rshare(spec_.rTemporal);
        const std::uint64_t rassigned = scanReadOps_ + hotReadOps_ +
                                        runReadOps_ +
                                        temporalReadOps_;
        panicIf(rassigned > totalReads_,
                std::string("profile ") + spec_.name +
                    ": read fractions exceed 1");
        randomReadOps_ = totalReads_ - rassigned;

        scanRegionSectors_ = mibToSectors(spec_.scanRegionMiB);
        if (spec_.scanOncePerDay && scanReadOps_ > 0) {
            const std::uint64_t per_day =
                scanReadOps_ / static_cast<std::uint64_t>(days);
            scanRegionSectors_ =
                std::max<SectorCount>(readIo_, per_day * readIo_);
        }
        const std::uint64_t scan_slots =
            spec_.scanFresh ? static_cast<std::uint64_t>(days) : 1;
        scanAreaStart_ = 0;
        const SectorCount scan_area =
            scanRegionSectors_ * scan_slots;

        hotPoolStart_ = scanAreaStart_ + scan_area;
        SectorCount hot_sectors = mibToSectors(spec_.hotPoolMiB);
        if (hot_sectors > 0) {
            // Hot chunks are read as one request and fragmented into
            // four interleaved pieces at prep time.
            hotChunk_ = std::max<SectorCount>(readIo_, 8);
            hotSubIo_ = std::max<SectorCount>(
                hotChunk_ / std::max<std::uint32_t>(1,
                                                    spec_.hotPieces),
                1);
            const std::uint64_t chunks = hot_sectors / hotChunk_;
            hot_sectors = chunks * hotChunk_;
            std::uint64_t prep_ops =
                hot_sectors / hotSubIo_;
            // Never let prep consume more than 40% of the write
            // budget; shrink the pool instead.
            const std::uint64_t prep_cap =
                std::max<std::uint64_t>(1, totalWrites_ * 2 / 5);
            if (prep_ops > prep_cap) {
                const std::uint64_t max_chunks =
                    prep_cap * hotSubIo_ / hotChunk_;
                hot_sectors =
                    std::max<SectorCount>(hotChunk_,
                                          max_chunks * hotChunk_);
                prep_ops = hot_sectors / hotSubIo_;
            }
            hotPrepOps_ = prep_ops;
        }
        hotPoolSectors_ = hot_sectors;

        // Day-0 shuffled fill of the scan region also counts against
        // the write budget.
        if (spec_.prepShuffleScan && scanRegionSectors_ > 0)
            shufflePrepOps_ = scanRegionSectors_ / runIo_;

        std::uint64_t budget = totalWrites_;
        const std::uint64_t prep_total = hotPrepOps_ + shufflePrepOps_;
        budget -= std::min(budget, prep_total);

        auto share = [&](double frac) {
            return static_cast<std::uint64_t>(
                frac * static_cast<double>(budget));
        };
        updateOps_ = share(spec_.wUpdate);
        misorderOps_ = share(spec_.wMisorder);
        shuffleOps_ = share(spec_.wShuffle);
        seqOps_ = share(spec_.wSeq);
        const std::uint64_t assigned =
            updateOps_ + misorderOps_ + shuffleOps_ + seqOps_;
        panicIf(assigned > budget,
                std::string("profile ") + spec_.name +
                    ": write fractions exceed 1");
        randomWriteOps_ = budget - assigned;

        // If the hot pool was disabled or shrunk away, fold its
        // read budget into random reads.
        if (hotPoolSectors_ == 0 && hotReadOps_ > 0) {
            randomReadOps_ += hotReadOps_;
            hotReadOps_ = 0;
        }

        // Run area: each mis-ordered op and each shuffled op writes
        // one io of fresh space.
        runAreaStart_ = hotPoolStart_ + hotPoolSectors_;
        const SectorCount run_area =
            (misorderOps_ + shuffleOps_) * runIo_ + runIo_;

        seqAreaStart_ = runAreaStart_ + run_area;
        const SectorCount seq_area = seqOps_ * writeIo_ + writeIo_;

        randomAreaStart_ = seqAreaStart_ + seq_area;
        randomAreaSectors_ = mibToSectors(256);
        if (randomAreaSectors_ < writeIo_ * 4)
            randomAreaSectors_ = writeIo_ * 4;

        spaceEnd_ = randomAreaStart_ + randomAreaSectors_;
        runCursor_ = runAreaStart_;
        seqCursor_ = seqAreaStart_;
    }

    SectorExtent
    scanRegion(int day) const
    {
        const std::uint64_t slot =
            spec_.scanFresh ? static_cast<std::uint64_t>(day) : 0;
        return SectorExtent{scanAreaStart_ +
                                slot * scanRegionSectors_,
                            scanRegionSectors_};
    }

    void
    noteWrite(Lba lba, SectorCount count)
    {
        recentWrites_.push_back(SectorExtent{lba, count});
        if (recentWrites_.size() > 1024)
            recentWrites_.pop_front();
    }

    void
    recordRun(const SectorExtent &run)
    {
        runs_.push_back(run);
        if (runs_.size() > 256)
            runs_.pop_front();
    }

    /** Day-0 construction of long-lived fragmented state. */
    void
    prepare()
    {
        if (hotPoolSectors_ > 0) {
            // Interleaved passes: pass p writes piece p of every
            // chunk, so each chunk ends up as four fragments spaced
            // a quarter pool apart in the log.
            const std::uint64_t chunks =
                hotPoolSectors_ / hotChunk_;
            const std::uint64_t pieces = hotChunk_ / hotSubIo_;
            for (std::uint64_t p = 0; p < pieces; ++p) {
                for (std::uint64_t c = 0; c < chunks; ++c) {
                    const Lba lba = hotPoolStart_ + c * hotChunk_ +
                                    p * hotSubIo_;
                    const SectorCount n = std::min<SectorCount>(
                        hotSubIo_,
                        hotPoolStart_ + (c + 1) * hotChunk_ - lba);
                    builder_.write(lba, n);
                }
            }
            hotReader_.emplace(SectorExtent{hotPoolStart_,
                                            hotPoolSectors_},
                               hotChunk_, spec_.hotSkew, rng_);
        }

        if (spec_.prepShuffleScan && scanRegionSectors_ > 0) {
            shuffledSequentialWrite(builder_, rng_, scanRegion(0),
                                    runIo_, spec_.shuffleWindowIos,
                                    spec_.prepShuffleFrac);
        }
        if (spec_.diskGiB > 0) {
            const Lba last =
                bytesToSectors(spec_.diskGiB * kGiB) - 1;
            if (last >= spaceEnd_)
                builder_.read(last, 1);
        }
        builder_.idle(30ULL * 60 * 1000 * 1000);
    }

    void
    runDay(int day, int days)
    {
        const auto day_u = static_cast<std::uint64_t>(day);
        const auto days_u = static_cast<std::uint64_t>(days);
        auto slice = [&](std::uint64_t total) {
            return total / days_u +
                   (day_u < total % days_u ? 1 : 0);
        };
        constexpr int kRounds = 4;
        const SectorExtent region = scanRegion(day);

        for (int round = 0; round < kRounds; ++round) {
            auto piece = [&](std::uint64_t day_total) {
                const std::uint64_t base = day_total / kRounds;
                return base + (round == kRounds - 1
                                   ? day_total % kRounds
                                   : 0);
            };

            // Interleave the write categories in small batches so
            // one category's requests do not form an artificial
            // contiguous block in the log (real volumes mix their
            // write streams); likewise for reads.
            std::vector<Batch> writes{
                {[&](std::uint64_t n) { emitUpdates(region, n); },
                 piece(slice(updateOps_))},
                {[&](std::uint64_t n) { emitMisordered(n); },
                 piece(slice(misorderOps_))},
                {[&](std::uint64_t n) { emitShuffled(n); },
                 piece(slice(shuffleOps_))},
                {[&](std::uint64_t n) {
                     emitSequentialStreams(n);
                 },
                 piece(slice(seqOps_))},
                {[&](std::uint64_t n) { emitRandomWrites(n); },
                 piece(slice(randomWriteOps_))},
            };
            emitInterleaved(writes);

            std::vector<Batch> reads{
                {[&](std::uint64_t n) { emitTemporalReads(n); },
                 piece(slice(temporalReadOps_))},
                {[&](std::uint64_t n) {
                     emitScanReads(region, n);
                 },
                 piece(slice(scanReadOps_))},
                {[&](std::uint64_t n) { emitHotReads(n); },
                 piece(slice(hotReadOps_))},
                {[&](std::uint64_t n) { emitRunReads(n); },
                 piece(slice(runReadOps_))},
                {[&](std::uint64_t n) { emitRandomReads(n); },
                 piece(slice(randomReadOps_))},
            };
            emitInterleaved(reads);

            builder_.idle(5ULL * 60 * 1000 * 1000);
        }
    }

    /** One interleavable emission category and its op budget. */
    struct Batch
    {
        std::function<void(std::uint64_t)> emit;
        std::uint64_t remaining;
    };

    /**
     * Drain the categories in randomly ordered batches of at most
     * kBatchOps requests each, weighting the choice by remaining
     * budget so categories finish together.
     */
    void
    emitInterleaved(std::vector<Batch> &batches)
    {
        constexpr std::uint64_t kBatchOps = 48;
        while (true) {
            std::uint64_t total = 0;
            for (const auto &batch : batches)
                total += batch.remaining;
            if (total == 0)
                break;
            std::uint64_t pick = rng_.nextUint(total);
            for (auto &batch : batches) {
                if (pick >= batch.remaining) {
                    pick -= batch.remaining;
                    continue;
                }
                const std::uint64_t n =
                    std::min(kBatchOps, batch.remaining);
                batch.emit(n);
                batch.remaining -= n;
                break;
            }
        }
    }

    void
    emitUpdates(const SectorExtent &region, std::uint64_t count)
    {
        if (count == 0 || region.count < updateIo_)
            return;
        for (std::uint64_t i = 0; i < count; ++i) {
            const std::uint64_t slots = region.count / updateIo_;
            const Lba lba =
                region.start + rng_.nextUint(slots) * updateIo_;
            builder_.write(lba, updateIo_);
            noteWrite(lba, updateIo_);
        }
    }

    void
    emitMisordered(std::uint64_t count)
    {
        while (count > 0) {
            const std::uint64_t ios =
                std::min<std::uint64_t>(spec_.runIos, count);
            if (ios < 2)
                break;
            const SectorExtent run{runCursor_, ios * runIo_};
            runCursor_ += run.count;
            misorderedWrite(builder_, run, runIo_,
                            spec_.misPattern);
            recordRun(run);
            noteWrite(run.start, run.count);
            count -= ios;
        }
    }

    void
    emitShuffled(std::uint64_t count)
    {
        while (count > 0) {
            const std::uint64_t ios = std::min<std::uint64_t>(
                spec_.shuffleWindowIos * 4, count);
            if (ios < 2)
                break;
            const SectorExtent area{runCursor_, ios * runIo_};
            runCursor_ += area.count;
            shuffledSequentialWrite(builder_, rng_, area, runIo_,
                                    spec_.shuffleWindowIos);
            recordRun(area);
            noteWrite(area.start, area.count);
            count -= ios;
        }
    }

    void
    emitSequentialStreams(std::uint64_t count)
    {
        if (count == 0)
            return;
        const SectorExtent area{seqCursor_, count * writeIo_};
        seqCursor_ += area.count;
        const std::uint32_t streams =
            std::max<std::uint32_t>(1, spec_.seqStreams);
        if (streams == 1 || area.count < streams) {
            sequentialWrite(builder_, area, writeIo_);
        } else {
            interleavedStreamWrite(builder_, area, streams,
                                   writeIo_);
        }
        noteWrite(area.start, area.count);
    }

    void
    emitRandomWrites(std::uint64_t count)
    {
        if (count == 0)
            return;
        const SectorExtent area{randomAreaStart_,
                                randomAreaSectors_};
        for (std::uint64_t i = 0; i < count; ++i) {
            const std::uint64_t slots = area.count / writeIo_;
            const Lba lba =
                area.start + rng_.nextUint(slots) * writeIo_;
            builder_.write(lba, writeIo_);
            noteWrite(lba, writeIo_);
        }
    }

    void
    emitTemporalReads(std::uint64_t count)
    {
        if (count == 0 || recentWrites_.empty())
            return;
        const std::size_t n = std::min<std::size_t>(
            count, recentWrites_.size());
        const std::size_t first = recentWrites_.size() - n;
        for (std::size_t i = first; i < recentWrites_.size(); ++i)
            builder_.read(recentWrites_[i].start,
                          recentWrites_[i].count);
    }

    void
    emitScanReads(const SectorExtent &region, std::uint64_t count)
    {
        if (count == 0 || region.count == 0)
            return;
        for (std::uint64_t i = 0; i < count; ++i) {
            if (scanCursor_ < region.start ||
                scanCursor_ >= region.end())
                scanCursor_ = region.start;
            const SectorCount n = std::min<SectorCount>(
                readIo_, region.end() - scanCursor_);
            builder_.read(scanCursor_, n);
            scanCursor_ += n;
        }
    }

    void
    emitHotReads(std::uint64_t count)
    {
        if (count == 0 || !hotReader_)
            return;
        if (!spec_.hotUnaligned) {
            hotReader_->emit(builder_, rng_, count);
            return;
        }
        const SectorExtent pool{hotPoolStart_, hotPoolSectors_};
        if (pool.count <= readIo_)
            return;
        for (std::uint64_t i = 0; i < count; ++i) {
            const Lba lba = pool.start +
                            rng_.nextUint(pool.count - readIo_);
            builder_.read(lba, readIo_);
        }
    }

    void
    emitRunReads(std::uint64_t count)
    {
        if (runs_.empty())
            return;
        while (count > 0) {
            const SectorExtent &run =
                runs_[rng_.nextUint(runs_.size())];
            Lba lba = run.start;
            while (lba < run.end() && count > 0) {
                const SectorCount n =
                    std::min<SectorCount>(readIo_, run.end() - lba);
                builder_.read(lba, n);
                lba += n;
                --count;
            }
        }
    }

    void
    emitRandomReads(std::uint64_t count)
    {
        if (count == 0)
            return;
        const SectorExtent space{0, spaceEnd_};
        if (space.count < readIo_)
            return;
        for (std::uint64_t i = 0; i < count; ++i) {
            const std::uint64_t slots = space.count / readIo_;
            builder_.read(rng_.nextUint(slots) * readIo_, readIo_);
        }
    }

    const Spec &spec_;
    Rng rng_;
    TraceBuilder builder_;

    std::uint64_t totalReads_ = 0;
    std::uint64_t totalWrites_ = 0;
    SectorCount writeIo_ = 0;
    SectorCount readIo_ = 0;
    SectorCount updateIo_ = 0;
    SectorCount runIo_ = 0;

    // Layout.
    Lba scanAreaStart_ = 0;
    SectorCount scanRegionSectors_ = 0;
    Lba hotPoolStart_ = 0;
    SectorCount hotPoolSectors_ = 0;
    SectorCount hotChunk_ = 0;
    SectorCount hotSubIo_ = 0;
    Lba runAreaStart_ = 0;
    Lba seqAreaStart_ = 0;
    Lba randomAreaStart_ = 0;
    SectorCount randomAreaSectors_ = 0;
    Lba spaceEnd_ = 0;

    // Budgets.
    std::uint64_t hotPrepOps_ = 0;
    std::uint64_t shufflePrepOps_ = 0;
    std::uint64_t updateOps_ = 0;
    std::uint64_t misorderOps_ = 0;
    std::uint64_t shuffleOps_ = 0;
    std::uint64_t seqOps_ = 0;
    std::uint64_t randomWriteOps_ = 0;
    std::uint64_t scanReadOps_ = 0;
    std::uint64_t hotReadOps_ = 0;
    std::uint64_t runReadOps_ = 0;
    std::uint64_t temporalReadOps_ = 0;
    std::uint64_t randomReadOps_ = 0;

    // Cursors and recent-activity state.
    Lba runCursor_ = 0;
    Lba seqCursor_ = 0;
    Lba scanCursor_ = 0;
    std::deque<SectorExtent> runs_;
    std::deque<SectorExtent> recentWrites_;
    std::optional<HotSpotReader> hotReader_;
};

} // namespace

const std::vector<WorkloadInfo> &
workloadTable()
{
    static const std::vector<WorkloadInfo> table = [] {
        std::vector<WorkloadInfo> out;
        out.reserve(kSpecCount);
        for (const Spec &spec : kSpecs) {
            out.push_back(WorkloadInfo{spec.name, spec.suite,
                                       spec.os, spec.reads,
                                       spec.writes,
                                       spec.meanWriteKiB,
                                       spec.behavior});
        }
        return out;
    }();
    return table;
}

namespace
{

std::vector<std::string>
namesBySuite(const char *suite)
{
    std::vector<std::string> names;
    for (const auto &info : workloadTable()) {
        if (suite == nullptr || info.suite == suite)
            names.push_back(info.name);
    }
    return names;
}

} // namespace

std::vector<std::string>
msrWorkloadNames()
{
    return namesBySuite("MSR");
}

std::vector<std::string>
cloudPhysicsWorkloadNames()
{
    return namesBySuite("CloudPhysics");
}

std::vector<std::string>
allWorkloadNames()
{
    return namesBySuite(nullptr);
}

bool
isKnownWorkload(const std::string &name)
{
    return findSpec(name) != nullptr;
}

const WorkloadInfo &
workloadInfo(const std::string &name)
{
    for (const auto &info : workloadTable()) {
        if (info.name == name)
            return info;
    }
    fatal("unknown workload: " + name);
}

trace::Trace
makeWorkload(const std::string &name, const ProfileOptions &options)
{
    const Spec *spec = findSpec(name);
    if (spec == nullptr)
        fatal("unknown workload: " + name);
    ProfileEngine engine(*spec, options);
    return engine.build();
}

} // namespace logseek::workloads
