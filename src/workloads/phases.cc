#include "phases.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace logseek::workloads
{

void
sequentialWrite(TraceBuilder &builder, const SectorExtent &region,
                SectorCount io_sectors)
{
    panicIf(io_sectors == 0, "sequentialWrite: io size must be > 0");
    Lba lba = region.start;
    while (lba < region.end()) {
        const SectorCount n = std::min(io_sectors, region.end() - lba);
        builder.write(lba, n);
        lba += n;
    }
}

void
sequentialRead(TraceBuilder &builder, const SectorExtent &region,
               SectorCount io_sectors)
{
    panicIf(io_sectors == 0, "sequentialRead: io size must be > 0");
    Lba lba = region.start;
    while (lba < region.end()) {
        const SectorCount n = std::min(io_sectors, region.end() - lba);
        builder.read(lba, n);
        lba += n;
    }
}

namespace
{

Lba
randomAlignedOffset(Rng &rng, const SectorExtent &region,
                    SectorCount io_sectors)
{
    panicIf(region.count < io_sectors,
            "random phase: region smaller than one io");
    const std::uint64_t slots = region.count / io_sectors;
    return region.start + rng.nextUint(slots) * io_sectors;
}

} // namespace

void
randomWrite(TraceBuilder &builder, Rng &rng,
            const SectorExtent &region, std::uint64_t count,
            SectorCount io_sectors)
{
    panicIf(io_sectors == 0, "randomWrite: io size must be > 0");
    for (std::uint64_t i = 0; i < count; ++i)
        builder.write(randomAlignedOffset(rng, region, io_sectors),
                      io_sectors);
}

void
randomRead(TraceBuilder &builder, Rng &rng, const SectorExtent &region,
           std::uint64_t count, SectorCount io_sectors)
{
    panicIf(io_sectors == 0, "randomRead: io size must be > 0");
    for (std::uint64_t i = 0; i < count; ++i)
        builder.read(randomAlignedOffset(rng, region, io_sectors),
                     io_sectors);
}

void
misorderedWrite(TraceBuilder &builder, const SectorExtent &run,
                SectorCount io_sectors, MisorderPattern pattern)
{
    panicIf(io_sectors == 0, "misorderedWrite: io size must be > 0");
    panicIf(run.count % io_sectors != 0,
            "misorderedWrite: run must be a whole number of ios");
    const std::uint64_t ios = run.count / io_sectors;

    auto io_extent = [&](std::uint64_t i) {
        return SectorExtent{run.start + i * io_sectors, io_sectors};
    };

    switch (pattern) {
      case MisorderPattern::Descending:
        for (std::uint64_t i = ios; i-- > 0;)
            builder.write(io_extent(i).start, io_sectors);
        break;

      case MisorderPattern::ChunkedDescending: {
        // Four-io ascending chunks, chunks descending — the hm_1
        // pattern of paper Figure 7a.
        const std::uint64_t chunk = std::min<std::uint64_t>(4, ios);
        std::vector<std::uint64_t> bases;
        for (std::uint64_t base = 0; base < ios; base += chunk)
            bases.push_back(base);
        for (auto it = bases.rbegin(); it != bases.rend(); ++it) {
            const std::uint64_t limit = std::min(*it + chunk, ios);
            for (std::uint64_t i = *it; i < limit; ++i)
                builder.write(io_extent(i).start, io_sectors);
        }
        break;
      }

      case MisorderPattern::InterleavedPair: {
        const std::uint64_t half = ios / 2;
        for (std::uint64_t i = 0; i < half; ++i) {
            builder.write(io_extent(i).start, io_sectors);
            builder.write(io_extent(half + i).start, io_sectors);
        }
        if (ios % 2 != 0)
            builder.write(io_extent(ios - 1).start, io_sectors);
        break;
      }
    }
}

void
shuffledSequentialWrite(TraceBuilder &builder, Rng &rng,
                        const SectorExtent &region,
                        SectorCount io_sectors,
                        std::uint32_t window_ios,
                        double shuffle_probability)
{
    panicIf(io_sectors == 0,
            "shuffledSequentialWrite: io size must be > 0");
    panicIf(window_ios == 0,
            "shuffledSequentialWrite: window must be > 0");
    panicIf(shuffle_probability < 0.0 || shuffle_probability > 1.0,
            "shuffledSequentialWrite: probability not in [0,1]");

    std::vector<Lba> window;
    auto flush = [&]() {
        if (rng.nextBool(shuffle_probability)) {
            for (std::size_t i = window.size(); i > 1; --i) {
                const std::size_t j = rng.nextUint(i);
                std::swap(window[i - 1], window[j]);
            }
        }
        for (const Lba lba : window) {
            const SectorCount n =
                std::min<SectorCount>(io_sectors, region.end() - lba);
            builder.write(lba, n);
        }
        window.clear();
    };

    for (Lba lba = region.start; lba < region.end();
         lba += io_sectors) {
        window.push_back(lba);
        if (window.size() >= window_ios)
            flush();
    }
    if (!window.empty())
        flush();
}

void
interleavedStreamWrite(TraceBuilder &builder, const SectorExtent &area,
                       std::uint32_t stream_count,
                       SectorCount io_sectors)
{
    panicIf(io_sectors == 0,
            "interleavedStreamWrite: io size must be > 0");
    panicIf(stream_count == 0,
            "interleavedStreamWrite: need at least one stream");
    const SectorCount per_stream = area.count / stream_count;
    panicIf(per_stream == 0,
            "interleavedStreamWrite: area smaller than stream count");

    std::vector<Lba> cursors(stream_count);
    std::vector<Lba> limits(stream_count);
    for (std::uint32_t s = 0; s < stream_count; ++s) {
        cursors[s] = area.start + s * per_stream;
        limits[s] = cursors[s] + per_stream;
    }

    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (std::uint32_t s = 0; s < stream_count; ++s) {
            if (cursors[s] >= limits[s])
                continue;
            const SectorCount n =
                std::min(io_sectors, limits[s] - cursors[s]);
            builder.write(cursors[s], n);
            cursors[s] += n;
            progressed = true;
        }
    }
}

void
temporalReplayRead(TraceBuilder &builder,
                   const std::vector<SectorExtent> &recent)
{
    for (const auto &extent : recent)
        builder.read(extent.start, extent.count);
}

HotSpotReader::HotSpotReader(const SectorExtent &pool,
                             SectorCount chunk_sectors, double skew,
                             Rng &rng)
    : pool_(pool), chunkSectors_(chunk_sectors),
      sampler_(std::max<std::size_t>(
                   1, static_cast<std::size_t>(pool.count /
                                               chunk_sectors)),
               skew)
{
    panicIf(chunk_sectors == 0, "HotSpotReader: chunk size must be > 0");
    panicIf(pool.count < chunk_sectors,
            "HotSpotReader: pool smaller than one chunk");
    permutation_.resize(sampler_.size());
    std::iota(permutation_.begin(), permutation_.end(), 0u);
    // Fisher-Yates with our deterministic Rng.
    for (std::size_t i = permutation_.size(); i > 1; --i) {
        const std::size_t j = rng.nextUint(i);
        std::swap(permutation_[i - 1], permutation_[j]);
    }
}

SectorExtent
HotSpotReader::chunkExtent(std::size_t i) const
{
    panicIf(i >= permutation_.size(),
            "HotSpotReader: chunk index out of range");
    return SectorExtent{pool_.start + i * chunkSectors_,
                        chunkSectors_};
}

void
HotSpotReader::emit(TraceBuilder &builder, Rng &rng,
                    std::uint64_t count)
{
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::size_t rank = sampler_.sample(rng);
        const SectorExtent chunk = chunkExtent(permutation_[rank]);
        builder.read(chunk.start, chunk.count);
    }
}

} // namespace logseek::workloads
