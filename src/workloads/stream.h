/**
 * @file
 * Streaming workload generators: bounded-memory TraceInputs that
 * synthesize records chunk by chunk instead of materializing a
 * whole Trace.
 *
 * A WorkloadStream holds one generated chunk at a time, so the
 * resident set is O(chunk), independent of the stream's total
 * record count — replaying a workload 100x larger than RAM keeps a
 * flat RSS (asserted by the ingest smoke test). Chunks come from a
 * pure function of the chunk index, which is what makes every pass
 * (the simulator's validate-then-replay double pull, reruns under
 * any --jobs) reproduce the identical record sequence and thus a
 * byte-identical SimResult.
 *
 * Two spec factories cover the repo's needs:
 *  - profileStream() repeats a named profile (profiles.h) end to
 *    end with continuing timestamps — chunk 0 is bit-identical to
 *    makeWorkload() with the same options;
 *  - mixedStream() is fully analytic (no whole-chunk profile
 *    generation), mixing striped sequential writes with seeded
 *    random reads over a declared region — the >RAM smoke-test
 *    workload.
 */

#ifndef LOGSEEK_WORKLOADS_STREAM_H
#define LOGSEEK_WORKLOADS_STREAM_H

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "trace/input.h"
#include "trace/trace.h"
#include "workloads/profiles.h"

namespace logseek::workloads
{

/**
 * Deterministic chunk generator: must return the bit-identical
 * Trace every time it is called with the same index (timestamps
 * chunk-local, starting near 0 — the stream rebases them).
 */
using ChunkFn = std::function<trace::Trace(std::uint64_t)>;

/** Full description of one streamed workload. */
struct StreamSpec
{
    std::string name;

    /** Declared address-space end; every record of every chunk
     *  must stay inside it (checked by the simulator's validate
     *  pass, not by the stream). */
    Lba addressSpaceEnd = 0;

    /** Number of chunks makeChunk will be asked for: [0, chunks). */
    std::uint64_t chunks = 1;

    /** Idle gap inserted between consecutive chunks' clocks. */
    std::uint64_t chunkGapUs = 1000;

    /** Total record count over all chunks, when known (drives
     *  TraceInput::sizeHint and sweep ops accounting). */
    std::optional<std::uint64_t> totalRecords;

    ChunkFn makeChunk;
};

/**
 * TraceInput streaming a StreamSpec's chunks in order. Holds the
 * spec by value (the spec's ChunkFn must stay valid for the
 * stream's life) and exactly one generated chunk at a time.
 * Timestamps are rebased so the stream's clock is monotone across
 * chunks: each chunk starts chunkGapUs after the previous chunk's
 * last record.
 */
class WorkloadStream final : public trace::TraceInput
{
  public:
    explicit WorkloadStream(StreamSpec spec);

    const std::string &name() const override { return spec_.name; }

    Lba addressSpaceEnd() const override
    {
        return spec_.addressSpaceEnd;
    }

    std::size_t next(trace::IoEventBatch &batch,
                     std::size_t max) override;

    void reset() override;

    std::optional<std::uint64_t> sizeHint() const override
    {
        return spec_.totalRecords;
    }

  private:
    StreamSpec spec_;

    /** Index of the next chunk to generate. */
    std::uint64_t nextChunk_ = 0;

    /** The one resident chunk and the cursor inside it. */
    trace::Trace chunk_;
    std::size_t chunkPos_ = 0;

    /** Timestamp rebase applied to the resident chunk. */
    std::uint64_t baseUs_ = 0;
};

/** Shareable factory for WorkloadStreams (sweep-cell sharing). */
class StreamSource final : public trace::TraceSource
{
  public:
    explicit StreamSource(StreamSpec spec);

    const std::string &name() const override { return spec_.name; }

    std::unique_ptr<trace::TraceInput> open() const override
    {
        return std::make_unique<WorkloadStream>(spec_);
    }

    std::optional<std::uint64_t> sizeHint() const override
    {
        return spec_.totalRecords;
    }

  private:
    StreamSpec spec_;
};

/**
 * Stream a named profile `repeats` times end to end. Chunk i is
 * makeWorkload(name, options) verbatim (one chunk is generated up
 * front to learn its extent and record count, then discarded), so
 * with repeats == 1 the stream replays exactly the profile trace.
 * Memory while streaming is one profile trace regardless of
 * repeats.
 */
StreamSpec profileStream(const std::string &name,
                         const ProfileOptions &options = {},
                         std::uint64_t repeats = 1);

/**
 * Fully analytic mixed read/write stream over a region sized to
 * the chunk (no profile generation at spec-build time): each chunk
 * interleaves striped sequential writes that walk the region with
 * seeded random reads of already-written stripes. Deterministic
 * per (seed, chunk index); resident memory is one chunk.
 */
StreamSpec mixedStream(const std::string &name, std::uint64_t chunks,
                       std::uint64_t records_per_chunk,
                       std::uint64_t seed = 42);

} // namespace logseek::workloads

#endif // LOGSEEK_WORKLOADS_STREAM_H
