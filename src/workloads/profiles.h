/**
 * @file
 * Named synthetic workload profiles standing in for the paper's MSR
 * and CloudPhysics traces.
 *
 * The original traces are not redistributable; each profile is a
 * deterministic generator whose scaled request counts, mean write
 * size and — crucially — structural behavior (write/read temporal
 * correlation, mis-ordered write fraction, fragment-popularity skew,
 * scan-once vs. scan-repeat reads) match what the paper reports for
 * the trace of the same name. See DESIGN.md §3 for the substitution
 * rationale.
 */

#ifndef LOGSEEK_WORKLOADS_PROFILES_H
#define LOGSEEK_WORKLOADS_PROFILES_H

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace logseek::workloads
{

/** Options shared by all named profiles. */
struct ProfileOptions
{
    /**
     * Fraction of the paper's Table I request counts to generate;
     * 0.02 (1:50) keeps the full 21-workload sweep at interactive
     * speed.
     */
    double scale = 0.02;

    /** Generator seed; equal seeds reproduce the trace exactly. */
    std::uint64_t seed = 42;
};

/** Static description of one named workload. */
struct WorkloadInfo
{
    std::string name;

    /** "MSR" or "CloudPhysics". */
    std::string suite;

    /** Guest operating system reported in Table I. */
    std::string os;

    /** Unscaled request counts from Table I. */
    std::uint64_t tableReads = 0;
    std::uint64_t tableWrites = 0;

    /** Mean write size from Table I (KiB). */
    double tableMeanWriteKiB = 0.0;

    /** One-line behavioral archetype. */
    std::string behavior;
};

/** All 21 workloads in Table I order. */
const std::vector<WorkloadInfo> &workloadTable();

/** Names of the MSR workloads. */
std::vector<std::string> msrWorkloadNames();

/** Names of the CloudPhysics workloads. */
std::vector<std::string> cloudPhysicsWorkloadNames();

/** All workload names, MSR first. */
std::vector<std::string> allWorkloadNames();

/** True if name is a known profile. */
bool isKnownWorkload(const std::string &name);

/** Info for one workload; fatal() if unknown. */
const WorkloadInfo &workloadInfo(const std::string &name);

/**
 * Generate the named workload.
 *
 * @param name One of allWorkloadNames().
 * @param options Scaling and seeding.
 * @return A deterministic synthetic trace.
 */
trace::Trace makeWorkload(const std::string &name,
                          const ProfileOptions &options = {});

} // namespace logseek::workloads

#endif // LOGSEEK_WORKLOADS_PROFILES_H
