/**
 * @file
 * TraceBuilder: clocked construction of synthetic block traces.
 *
 * Phases append requests through the builder, which assigns
 * monotonically increasing timestamps from a configurable
 * inter-arrival time; idle() inserts longer gaps (e.g. between
 * simulated days) so time-series analyses see realistic structure.
 */

#ifndef LOGSEEK_WORKLOADS_BUILDER_H
#define LOGSEEK_WORKLOADS_BUILDER_H

#include <cstdint>
#include <string>

#include "trace/trace.h"

namespace logseek::workloads
{

/** Incremental builder for synthetic traces. */
class TraceBuilder
{
  public:
    /**
     * @param name Workload name for the resulting trace.
     * @param interarrival_us Clock advance per request.
     */
    explicit TraceBuilder(std::string name,
                          std::uint64_t interarrival_us = 1000);

    /** Append a read of count sectors at lba. */
    void read(Lba lba, SectorCount count);

    /** Append a write of count sectors at lba. */
    void write(Lba lba, SectorCount count);

    /** Advance the clock without issuing a request. */
    void idle(std::uint64_t us) { clockUs_ += us; }

    /** Requests appended so far. */
    std::size_t size() const { return trace_.size(); }

    /** Current clock value in microseconds. */
    std::uint64_t clockUs() const { return clockUs_; }

    /** Finish building and take the trace. */
    trace::Trace take() { return std::move(trace_); }

    /** Read-only view of the trace under construction. */
    const trace::Trace &peek() const { return trace_; }

  private:
    trace::Trace trace_;
    std::uint64_t clockUs_ = 0;
    std::uint64_t interarrivalUs_;
};

} // namespace logseek::workloads

#endif // LOGSEEK_WORKLOADS_BUILDER_H
