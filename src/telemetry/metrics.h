/**
 * @file
 * Process-wide metrics: counters, gauges and log-bucketed latency
 * histograms behind a named Registry.
 *
 * Hot-path instrumentation must cost nothing when observability is
 * off and must not serialize the sweep's worker threads when it is
 * on. Both properties come from the same two decisions: a single
 * process-wide enabled flag checked with one relaxed atomic load
 * before any work happens, and per-thread sharded cells — every
 * thread increments its own cache-line-padded cell, and the shards
 * are only summed when a snapshot is taken. Metric handles returned
 * by the registry are stable for the life of the process, so
 * per-run objects (replay engines, accounting sinks, task pools)
 * resolve their handles once at construction and pay only the
 * enabled-check plus one relaxed fetch_add per event afterwards.
 */

#ifndef LOGSEEK_TELEMETRY_METRICS_H
#define LOGSEEK_TELEMETRY_METRICS_H

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace logseek::telemetry
{

/** The process-wide telemetry switch; off by default. */
extern std::atomic<bool> g_enabled;

/** True when telemetry collection is armed. */
inline bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

/** Arm or disarm telemetry collection process-wide. */
void setEnabled(bool on);

/** Sharding width of counters and histograms (power of two). */
constexpr std::size_t kShardCount = 16;

/** Log-bucketed histogram resolution: one bucket per power of two. */
constexpr std::size_t kHistogramBuckets = 64;

/**
 * The shard of the calling thread: threads are dealt shards
 * round-robin on first use, so up to kShardCount concurrent
 * threads never share a cell.
 */
inline std::size_t
shardIndex()
{
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t mine =
        next.fetch_add(1, std::memory_order_relaxed) % kShardCount;
    return mine;
}

/**
 * Bucket of a sample: bucket 0 holds {0, 1}, bucket i holds
 * [2^i, 2^(i+1) - 1], and the last bucket absorbs everything from
 * 2^(kHistogramBuckets - 1) up.
 */
inline std::size_t
bucketIndex(std::uint64_t value)
{
    if (value < 2)
        return 0;
    const std::size_t width =
        static_cast<std::size_t>(std::bit_width(value));
    return width - 1 < kHistogramBuckets - 1 ? width - 1
                                             : kHistogramBuckets - 1;
}

/** Inclusive lower edge of bucket i. */
std::uint64_t bucketLowerBound(std::size_t i);

/** Inclusive upper edge of bucket i (UINT64_MAX for the last). */
std::uint64_t bucketUpperBound(std::size_t i);

/** One cache line per shard so increments never false-share. */
struct alignas(64) CounterCell
{
    std::atomic<std::uint64_t> value{0};
};

/**
 * Monotonically increasing counter. add() is wait-free on the
 * calling thread's shard and a no-op while telemetry is disabled;
 * value() sums the shards (approximate under concurrent writers,
 * exact once they quiesce).
 */
class Counter
{
  public:
    Counter() = default;
    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

    void
    add(std::uint64_t n = 1)
    {
        if (!enabled())
            return;
        cells_[shardIndex()].value.fetch_add(
            n, std::memory_order_relaxed);
    }

    std::uint64_t value() const;

    /** Zero every shard (tests and bench legs only). */
    void reset();

  private:
    std::array<CounterCell, kShardCount> cells_;
};

/**
 * Last-write-wins instantaneous value (queue depths, worker
 * counts). A single atomic cell: gauges are set under their
 * owner's locks, not on fan-out hot paths.
 */
class Gauge
{
  public:
    Gauge() = default;
    Gauge(const Gauge &) = delete;
    Gauge &operator=(const Gauge &) = delete;

    void
    set(std::int64_t v)
    {
        if (!enabled())
            return;
        value_.store(v, std::memory_order_relaxed);
    }

    void
    add(std::int64_t d)
    {
        if (!enabled())
            return;
        value_.fetch_add(d, std::memory_order_relaxed);
    }

    std::int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::int64_t> value_{0};
};

/**
 * The aggregated, mergeable value of one histogram. Merging adds
 * counts bucket-wise, so it is commutative and associative — two
 * snapshots taken on different machines (or sweep shards) combine
 * into the same distribution whatever the merge order.
 */
struct HistogramSnapshot
{
    std::string name;
    std::string labels;

    std::uint64_t count = 0;

    /** Sum of all recorded samples (saturating semantics are the
     *  caller's concern; latencies in ns fit comfortably). */
    std::uint64_t sum = 0;

    std::array<std::uint64_t, kHistogramBuckets> buckets{};

    /** Add another snapshot's population into this one. */
    void merge(const HistogramSnapshot &other);

    /** Arithmetic mean of the recorded samples; 0 when empty. */
    double mean() const;

    /**
     * Upper bound of the bucket containing quantile p in [0, 1]
     * (0 when empty). Log buckets make this a factor-of-two
     * estimate, which is what latency triage needs.
     */
    std::uint64_t percentileUpperBound(double p) const;

    bool operator==(const HistogramSnapshot &other) const
    {
        return count == other.count && sum == other.sum &&
               buckets == other.buckets;
    }
};

/**
 * Log-bucketed histogram of unsigned samples (latencies in ns by
 * convention). record() touches only the calling thread's shard.
 */
class LatencyHistogram
{
  public:
    LatencyHistogram() = default;
    LatencyHistogram(const LatencyHistogram &) = delete;
    LatencyHistogram &operator=(const LatencyHistogram &) = delete;

    void
    record(std::uint64_t value)
    {
        if (!enabled())
            return;
        Shard &shard = shards_[shardIndex()];
        shard.count.fetch_add(1, std::memory_order_relaxed);
        shard.sum.fetch_add(value, std::memory_order_relaxed);
        shard.buckets[bucketIndex(value)].fetch_add(
            1, std::memory_order_relaxed);
    }

    /** Aggregate the shards (name/labels left empty; the registry
     *  fills them in). */
    HistogramSnapshot snapshot() const;

    void reset();

  private:
    struct alignas(64) Shard
    {
        std::atomic<std::uint64_t> count{0};
        std::atomic<std::uint64_t> sum{0};
        std::array<std::atomic<std::uint64_t>, kHistogramBuckets>
            buckets{};
    };

    std::array<Shard, kShardCount> shards_;
};

/**
 * RAII span timer: measures wall-clock from construction to
 * destruction and records the elapsed nanoseconds into a latency
 * histogram. When telemetry is disabled (or the histogram is null)
 * the constructor skips the clock read entirely.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(LatencyHistogram *histogram)
        : histogram_(histogram != nullptr && enabled() ? histogram
                                                       : nullptr)
    {
        if (histogram_ != nullptr)
            start_ = std::chrono::steady_clock::now();
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer()
    {
        if (histogram_ == nullptr)
            return;
        const auto elapsed =
            std::chrono::steady_clock::now() - start_;
        const auto ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                elapsed)
                .count();
        histogram_->record(
            ns > 0 ? static_cast<std::uint64_t>(ns) : 0);
    }

  private:
    LatencyHistogram *histogram_;
    std::chrono::steady_clock::time_point start_;
};

/** Snapshot of one counter, labeled. */
struct CounterSnapshot
{
    std::string name;
    std::string labels;
    std::uint64_t value = 0;
};

/** Snapshot of one gauge, labeled. */
struct GaugeSnapshot
{
    std::string name;
    std::string labels;
    std::int64_t value = 0;
};

/** Everything the registry knows, in (name, labels) order. */
struct MetricsSnapshot
{
    std::vector<CounterSnapshot> counters;
    std::vector<GaugeSnapshot> gauges;
    std::vector<HistogramSnapshot> histograms;

    /** Find a counter by exact name and labels; null if absent. */
    const CounterSnapshot *
    findCounter(const std::string &name,
                const std::string &labels = "") const;

    /** Find a gauge by exact name and labels; null if absent. */
    const GaugeSnapshot *
    findGauge(const std::string &name,
              const std::string &labels = "") const;

    /** Find a histogram by exact name and labels; null if absent. */
    const HistogramSnapshot *
    findHistogram(const std::string &name,
                  const std::string &labels = "") const;
};

/**
 * Named metric registry. Metrics are created on first lookup and
 * live for the life of the registry, so the returned references are
 * stable handles; lookups take a mutex and belong in constructors,
 * not per-event paths. Labels are a pre-rendered Prometheus-style
 * pair list, e.g. `stage="media",outcome="hit"`.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** The process-wide registry every subsystem reports into. */
    static Registry &global();

    Counter &counter(const std::string &name,
                     const std::string &labels = "");
    Gauge &gauge(const std::string &name,
                 const std::string &labels = "");
    LatencyHistogram &histogram(const std::string &name,
                                const std::string &labels = "");

    /** Aggregate every metric, sorted by (name, labels). */
    MetricsSnapshot snapshot() const;

    /**
     * Zero every metric's value without invalidating handles.
     * For tests and benchmark legs that need a clean slate.
     */
    void resetValues();

  private:
    using Key = std::pair<std::string, std::string>;

    mutable std::mutex mutex_;
    std::map<Key, std::unique_ptr<Counter>> counters_;
    std::map<Key, std::unique_ptr<Gauge>> gauges_;
    std::map<Key, std::unique_ptr<LatencyHistogram>> histograms_;
};

} // namespace logseek::telemetry

#endif // LOGSEEK_TELEMETRY_METRICS_H
