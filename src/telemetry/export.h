/**
 * @file
 * Metrics snapshot exporters: JSON and Prometheus text exposition.
 *
 * Both render the same MetricsSnapshot; the JSON form keeps the
 * raw log-bucket layout for tooling that post-processes bench
 * results, the Prometheus form follows the text exposition format
 * (TYPE lines, cumulative `_bucket{le=...}` series, `_sum`,
 * `_count`) so a snapshot file can be served to a scraper or
 * diffed by eye.
 */

#ifndef LOGSEEK_TELEMETRY_EXPORT_H
#define LOGSEEK_TELEMETRY_EXPORT_H

#include <iosfwd>
#include <string>

#include "telemetry/metrics.h"

namespace logseek::telemetry
{

/** Escape a string for embedding inside a JSON string literal. */
std::string jsonEscape(const std::string &in);

/**
 * Sanitize a metric name for Prometheus: every character outside
 * [a-zA-Z0-9_:] becomes '_'; a leading digit gains a '_' prefix.
 */
std::string prometheusName(const std::string &name);

/** Render the snapshot as a single JSON object. */
void writeMetricsJson(const MetricsSnapshot &snapshot,
                      std::ostream &out);

/** Render the snapshot in Prometheus text exposition format. */
void writePrometheusText(const MetricsSnapshot &snapshot,
                         std::ostream &out);

/**
 * Write the snapshot to a file, picking the format from the
 * extension: `.prom` / `.txt` selects Prometheus text, anything
 * else JSON; "-" streams JSON to stdout. Returns false (with a
 * message on stderr) when the file cannot be opened.
 */
bool writeMetricsFile(const MetricsSnapshot &snapshot,
                      const std::string &path);

} // namespace logseek::telemetry

#endif // LOGSEEK_TELEMETRY_EXPORT_H
