#include "metrics.h"

#include <algorithm>
#include <limits>

namespace logseek::telemetry
{

std::atomic<bool> g_enabled{false};

void
setEnabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t
bucketLowerBound(std::size_t i)
{
    return i == 0 ? 0 : std::uint64_t{1} << i;
}

std::uint64_t
bucketUpperBound(std::size_t i)
{
    if (i >= kHistogramBuckets - 1)
        return std::numeric_limits<std::uint64_t>::max();
    return (std::uint64_t{1} << (i + 1)) - 1;
}

std::uint64_t
Counter::value() const
{
    std::uint64_t total = 0;
    for (const CounterCell &cell : cells_)
        total += cell.value.load(std::memory_order_relaxed);
    return total;
}

void
Counter::reset()
{
    for (CounterCell &cell : cells_)
        cell.value.store(0, std::memory_order_relaxed);
}

void
HistogramSnapshot::merge(const HistogramSnapshot &other)
{
    count += other.count;
    sum += other.sum;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i)
        buckets[i] += other.buckets[i];
}

double
HistogramSnapshot::mean() const
{
    return count == 0 ? 0.0
                      : static_cast<double>(sum) /
                            static_cast<double>(count);
}

std::uint64_t
HistogramSnapshot::percentileUpperBound(double p) const
{
    if (count == 0)
        return 0;
    const double clamped = std::clamp(p, 0.0, 1.0);
    const auto rank = static_cast<std::uint64_t>(
        clamped * static_cast<double>(count));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
        seen += buckets[i];
        if (seen >= rank && seen > 0)
            return bucketUpperBound(i);
    }
    return bucketUpperBound(kHistogramBuckets - 1);
}

HistogramSnapshot
LatencyHistogram::snapshot() const
{
    HistogramSnapshot out;
    for (const Shard &shard : shards_) {
        out.count += shard.count.load(std::memory_order_relaxed);
        out.sum += shard.sum.load(std::memory_order_relaxed);
        for (std::size_t i = 0; i < kHistogramBuckets; ++i)
            out.buckets[i] +=
                shard.buckets[i].load(std::memory_order_relaxed);
    }
    return out;
}

void
LatencyHistogram::reset()
{
    for (Shard &shard : shards_) {
        shard.count.store(0, std::memory_order_relaxed);
        shard.sum.store(0, std::memory_order_relaxed);
        for (auto &bucket : shard.buckets)
            bucket.store(0, std::memory_order_relaxed);
    }
}

const CounterSnapshot *
MetricsSnapshot::findCounter(const std::string &name,
                             const std::string &labels) const
{
    for (const CounterSnapshot &counter : counters)
        if (counter.name == name && counter.labels == labels)
            return &counter;
    return nullptr;
}

const GaugeSnapshot *
MetricsSnapshot::findGauge(const std::string &name,
                           const std::string &labels) const
{
    for (const GaugeSnapshot &gauge : gauges)
        if (gauge.name == name && gauge.labels == labels)
            return &gauge;
    return nullptr;
}

const HistogramSnapshot *
MetricsSnapshot::findHistogram(const std::string &name,
                               const std::string &labels) const
{
    for (const HistogramSnapshot &histogram : histograms)
        if (histogram.name == name && histogram.labels == labels)
            return &histogram;
    return nullptr;
}

Registry &
Registry::global()
{
    static Registry *instance = new Registry();
    return *instance;
}

Counter &
Registry::counter(const std::string &name,
                  const std::string &labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[{name, labels}];
    if (slot == nullptr)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name, const std::string &labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[{name, labels}];
    if (slot == nullptr)
        slot = std::make_unique<Gauge>();
    return *slot;
}

LatencyHistogram &
Registry::histogram(const std::string &name,
                    const std::string &labels)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[{name, labels}];
    if (slot == nullptr)
        slot = std::make_unique<LatencyHistogram>();
    return *slot;
}

MetricsSnapshot
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot out;
    out.counters.reserve(counters_.size());
    for (const auto &[key, counter] : counters_)
        out.counters.push_back(
            {key.first, key.second, counter->value()});
    out.gauges.reserve(gauges_.size());
    for (const auto &[key, gauge] : gauges_)
        out.gauges.push_back(
            {key.first, key.second, gauge->value()});
    out.histograms.reserve(histograms_.size());
    for (const auto &[key, histogram] : histograms_) {
        HistogramSnapshot snap = histogram->snapshot();
        snap.name = key.first;
        snap.labels = key.second;
        out.histograms.push_back(std::move(snap));
    }
    return out;
}

void
Registry::resetValues()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[key, counter] : counters_)
        counter->reset();
    for (const auto &[key, gauge] : gauges_)
        gauge->reset();
    for (const auto &[key, histogram] : histograms_)
        histogram->reset();
}

} // namespace logseek::telemetry
