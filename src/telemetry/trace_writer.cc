#include "trace_writer.h"

#include <atomic>
#include <fstream>
#include <iostream>
#include <ostream>

#include "telemetry/export.h"
#include "telemetry/metrics.h"

namespace logseek::telemetry
{

namespace
{

std::atomic<TraceEventWriter *> g_traceWriter{nullptr};

} // namespace

TraceEventWriter::TraceEventWriter()
    : epoch_(std::chrono::steady_clock::now())
{
}

std::uint64_t
TraceEventWriter::nowUs() const
{
    const auto elapsed = std::chrono::steady_clock::now() - epoch_;
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            elapsed)
            .count();
    return us > 0 ? static_cast<std::uint64_t>(us) : 0;
}

std::uint32_t
TraceEventWriter::currentTid()
{
    static std::atomic<std::uint32_t> next{1};
    thread_local const std::uint32_t tid =
        next.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

void
TraceEventWriter::emit(TraceSpan span)
{
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.push_back(std::move(span));
}

std::size_t
TraceEventWriter::spanCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_.size();
}

void
TraceEventWriter::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.clear();
}

void
TraceEventWriter::write(std::ostream &out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
    for (std::size_t i = 0; i < spans_.size(); ++i) {
        const TraceSpan &span = spans_[i];
        out << "  {\"name\": \"" << jsonEscape(span.name)
            << "\", \"cat\": \"" << jsonEscape(span.category)
            << "\", \"ph\": \"X\", \"ts\": " << span.timestampUs
            << ", \"dur\": " << span.durationUs
            << ", \"pid\": 1, \"tid\": " << span.tid;
        if (!span.args.empty()) {
            out << ", \"args\": {";
            for (std::size_t a = 0; a < span.args.size(); ++a)
                out << (a ? ", " : "") << '"'
                    << jsonEscape(span.args[a].first) << "\": \""
                    << jsonEscape(span.args[a].second) << '"';
            out << '}';
        }
        out << '}' << (i + 1 < spans_.size() ? "," : "") << '\n';
    }
    out << "]}\n";
}

bool
TraceEventWriter::writeFile(const std::string &path) const
{
    if (path == "-") {
        write(std::cout);
        return true;
    }
    std::ofstream file(path);
    if (!file) {
        std::cerr << "warn: cannot open trace file '" << path
                  << "'\n";
        return false;
    }
    write(file);
    return true;
}

void
setGlobalTraceWriter(TraceEventWriter *writer)
{
    g_traceWriter.store(writer, std::memory_order_release);
}

TraceEventWriter *
globalTraceWriter()
{
    return g_traceWriter.load(std::memory_order_acquire);
}

ScopedSpan::ScopedSpan(std::string name, std::string category)
    : writer_(enabled() ? globalTraceWriter() : nullptr)
{
    if (writer_ == nullptr)
        return;
    span_.name = std::move(name);
    span_.category = std::move(category);
    span_.timestampUs = writer_->nowUs();
    span_.tid = TraceEventWriter::currentTid();
}

ScopedSpan::~ScopedSpan()
{
    if (writer_ == nullptr)
        return;
    const std::uint64_t end = writer_->nowUs();
    span_.durationUs =
        end > span_.timestampUs ? end - span_.timestampUs : 0;
    writer_->emit(std::move(span_));
}

void
ScopedSpan::arg(std::string key, std::string value)
{
    if (writer_ == nullptr)
        return;
    span_.args.emplace_back(std::move(key), std::move(value));
}

} // namespace logseek::telemetry
