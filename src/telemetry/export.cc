#include "export.h"

#include <cctype>
#include <fstream>
#include <iostream>
#include <ostream>

namespace logseek::telemetry
{

namespace
{

/** Render `key{labels}` or bare `key` for Prometheus lines. */
std::string
promSeries(const std::string &name, const std::string &labels)
{
    std::string out = prometheusName(name);
    if (!labels.empty())
        out += "{" + labels + "}";
    return out;
}

/** Insert `le="..."` into a (possibly empty) label list. */
std::string
promBucketLabels(const std::string &labels, const std::string &le)
{
    std::string out = labels;
    if (!out.empty())
        out += ",";
    out += "le=\"" + le + "\"";
    return out;
}

void
writeHistogramJson(const HistogramSnapshot &histogram,
                   std::ostream &out, const char *indent)
{
    out << indent << "{\"name\": \"" << jsonEscape(histogram.name)
        << "\", \"labels\": \"" << jsonEscape(histogram.labels)
        << "\", \"count\": " << histogram.count
        << ", \"sum\": " << histogram.sum
        << ", \"mean\": " << histogram.mean() << ",\n"
        << indent << " \"buckets\": [";
    // Sparse form: only non-empty buckets, as [lower, upper, n].
    bool first = true;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
        if (histogram.buckets[i] == 0)
            continue;
        if (!first)
            out << ", ";
        first = false;
        out << '[' << bucketLowerBound(i) << ", "
            << bucketUpperBound(i) << ", " << histogram.buckets[i]
            << ']';
    }
    out << "]}";
}

} // namespace

std::string
jsonEscape(const std::string &in)
{
    std::string out;
    out.reserve(in.size());
    for (const char c : in) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char hex[] = "0123456789abcdef";
                out += "\\u00";
                out += hex[(static_cast<unsigned char>(c) >> 4) &
                           0xf];
                out += hex[static_cast<unsigned char>(c) & 0xf];
            } else {
                out += c;
            }
            break;
        }
    }
    return out;
}

std::string
prometheusName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (const char c : name) {
        const auto uc = static_cast<unsigned char>(c);
        if (std::isalnum(uc) != 0 || c == '_' || c == ':')
            out += c;
        else
            out += '_';
    }
    if (out.empty())
        out.push_back('_');
    if (std::isdigit(static_cast<unsigned char>(out[0])) != 0)
        out.insert(out.begin(), '_');
    return out;
}

void
writeMetricsJson(const MetricsSnapshot &snapshot, std::ostream &out)
{
    out << "{\n  \"counters\": [\n";
    for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
        const CounterSnapshot &counter = snapshot.counters[i];
        out << "    {\"name\": \"" << jsonEscape(counter.name)
            << "\", \"labels\": \"" << jsonEscape(counter.labels)
            << "\", \"value\": " << counter.value << '}'
            << (i + 1 < snapshot.counters.size() ? "," : "")
            << '\n';
    }
    out << "  ],\n  \"gauges\": [\n";
    for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
        const GaugeSnapshot &gauge = snapshot.gauges[i];
        out << "    {\"name\": \"" << jsonEscape(gauge.name)
            << "\", \"labels\": \"" << jsonEscape(gauge.labels)
            << "\", \"value\": " << gauge.value << '}'
            << (i + 1 < snapshot.gauges.size() ? "," : "") << '\n';
    }
    out << "  ],\n  \"histograms\": [\n";
    for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
        writeHistogramJson(snapshot.histograms[i], out, "    ");
        out << (i + 1 < snapshot.histograms.size() ? "," : "")
            << '\n';
    }
    out << "  ]\n}\n";
}

void
writePrometheusText(const MetricsSnapshot &snapshot,
                    std::ostream &out)
{
    // Snapshots are sorted by (name, labels), so one TYPE line per
    // metric family is a matter of watching the name change.
    std::string last_family;
    for (const CounterSnapshot &counter : snapshot.counters) {
        if (counter.name != last_family) {
            out << "# TYPE " << prometheusName(counter.name)
                << " counter\n";
            last_family = counter.name;
        }
        out << promSeries(counter.name, counter.labels) << ' '
            << counter.value << '\n';
    }
    last_family.clear();
    for (const GaugeSnapshot &gauge : snapshot.gauges) {
        if (gauge.name != last_family) {
            out << "# TYPE " << prometheusName(gauge.name)
                << " gauge\n";
            last_family = gauge.name;
        }
        out << promSeries(gauge.name, gauge.labels) << ' '
            << gauge.value << '\n';
    }
    last_family.clear();
    for (const HistogramSnapshot &histogram : snapshot.histograms) {
        const std::string name = prometheusName(histogram.name);
        if (histogram.name != last_family) {
            out << "# TYPE " << name << " histogram\n";
            last_family = histogram.name;
        }
        // Prometheus buckets are cumulative and keyed by the
        // inclusive upper edge; empty trailing buckets collapse
        // into the final +Inf series.
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
            if (histogram.buckets[i] == 0)
                continue;
            cumulative += histogram.buckets[i];
            out << name << '{'
                << promBucketLabels(
                       histogram.labels,
                       std::to_string(bucketUpperBound(i)))
                << "} " << cumulative << '\n';
        }
        out << name << '{'
            << promBucketLabels(histogram.labels, "+Inf") << "} "
            << histogram.count << '\n'
            << name << "_sum"
            << (histogram.labels.empty()
                    ? ""
                    : "{" + histogram.labels + "}")
            << ' ' << histogram.sum << '\n'
            << name << "_count"
            << (histogram.labels.empty()
                    ? ""
                    : "{" + histogram.labels + "}")
            << ' ' << histogram.count << '\n';
    }
}

bool
writeMetricsFile(const MetricsSnapshot &snapshot,
                 const std::string &path)
{
    if (path == "-") {
        writeMetricsJson(snapshot, std::cout);
        return true;
    }
    std::ofstream file(path);
    if (!file) {
        std::cerr << "warn: cannot open metrics file '" << path
                  << "'\n";
        return false;
    }
    const bool prom = path.size() >= 5 &&
                      (path.compare(path.size() - 5, 5, ".prom") ==
                       0);
    const bool txt =
        path.size() >= 4 &&
        path.compare(path.size() - 4, 4, ".txt") == 0;
    if (prom || txt)
        writePrometheusText(snapshot, file);
    else
        writeMetricsJson(snapshot, file);
    return true;
}

} // namespace logseek::telemetry
