/**
 * @file
 * Chrome trace_event JSON span export.
 *
 * Spans are complete ("ph":"X") events on the Chrome tracing
 * timeline — one per sweep cell attempt, per workload trace load,
 * and per read-stage aggregate — loadable in chrome://tracing or
 * Perfetto. A single process-wide writer is installed for the
 * duration of a traced run; emitters fetch it with
 * globalTraceWriter() and skip all work when none is installed or
 * telemetry is disabled.
 */

#ifndef LOGSEEK_TELEMETRY_TRACE_WRITER_H
#define LOGSEEK_TELEMETRY_TRACE_WRITER_H

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace logseek::telemetry
{

/** One complete span on the trace timeline. */
struct TraceSpan
{
    std::string name;
    std::string category;

    /** Start, microseconds since the writer's epoch. */
    std::uint64_t timestampUs = 0;

    /** Duration in microseconds. */
    std::uint64_t durationUs = 0;

    /** Stable small id of the emitting thread. */
    std::uint32_t tid = 0;

    /** Extra key/value labels shown in the trace viewer. */
    std::vector<std::pair<std::string, std::string>> args;
};

/**
 * Collects spans (thread-safe) and renders them as a Chrome
 * trace_event JSON document. The epoch is the writer's
 * construction time, so timestamps within one run are comparable.
 */
class TraceEventWriter
{
  public:
    TraceEventWriter();
    TraceEventWriter(const TraceEventWriter &) = delete;
    TraceEventWriter &operator=(const TraceEventWriter &) = delete;

    /** Microseconds since this writer's epoch. */
    std::uint64_t nowUs() const;

    /** Small per-thread id, stable for the thread's lifetime. */
    static std::uint32_t currentTid();

    /** Append one span; safe to call from any thread. */
    void emit(TraceSpan span);

    std::size_t spanCount() const;

    /** Drop all collected spans. */
    void clear();

    /** Render {"displayTimeUnit": "ms", "traceEvents": [...]}. */
    void write(std::ostream &out) const;

    /**
     * Render to the named file ("-" means stdout). Returns false
     * (with a message on stderr) when the file cannot be opened.
     */
    bool writeFile(const std::string &path) const;

  private:
    std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex mutex_;
    std::vector<TraceSpan> spans_;
};

/**
 * Install (or, with nullptr, remove) the process-wide span sink.
 * The writer is borrowed, not owned; the caller keeps it alive
 * until after uninstalling it.
 */
void setGlobalTraceWriter(TraceEventWriter *writer);

/** The installed process-wide span sink, or null. */
TraceEventWriter *globalTraceWriter();

/**
 * RAII span: opens on construction, emits to the global writer on
 * destruction. When no writer is installed or telemetry is
 * disabled at construction time, the whole object is inert.
 */
class ScopedSpan
{
  public:
    ScopedSpan(std::string name, std::string category);
    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;
    ~ScopedSpan();

    /** Attach a key/value label; a no-op on an inert span. */
    void arg(std::string key, std::string value);

  private:
    TraceEventWriter *writer_;
    TraceSpan span_;
};

} // namespace logseek::telemetry

#endif // LOGSEEK_TELEMETRY_TRACE_WRITER_H
