#include "msr_csv.h"

#include <cerrno>
#include <charconv>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <string_view>
#include <vector>

#include "telemetry/metrics.h"
#include "util/logging.h"

namespace logseek::trace
{

namespace
{

/** Filetime ticks (100 ns) per microsecond. */
constexpr std::uint64_t kTicksPerUs = 10;

/**
 * Split a CSV line into the caller's reusable field vector (no
 * quoting in MSR traces). Taking the vector by reference instead
 * of returning a fresh one removes the per-line allocation that
 * dominated the parse profile; perf_ingest tracks the resulting
 * line rate.
 */
void
splitCsvInto(std::string_view line,
             std::vector<std::string_view> &fields)
{
    fields.clear();
    std::size_t begin = 0;
    while (true) {
        const std::size_t comma = line.find(',', begin);
        if (comma == std::string_view::npos) {
            fields.push_back(line.substr(begin));
            break;
        }
        fields.push_back(line.substr(begin, comma - begin));
        begin = comma + 1;
    }
}

/** Outcome of one std::from_chars field parse, so malformed text
 *  and overflowing values map onto distinct error messages. */
enum class FieldParse
{
    Ok,
    Malformed,
    OutOfRange,
};

template <typename T>
FieldParse
parseNumber(std::string_view text, T &out)
{
    const char *first = text.data();
    const char *last = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(first, last, out);
    if (ec == std::errc::result_out_of_range)
        return FieldParse::OutOfRange;
    if (ec != std::errc{} || ptr != last)
        return FieldParse::Malformed;
    return FieldParse::Ok;
}

/** "bad <field>" or "<field> out of range" for a failed parse. */
std::string
fieldError(FieldParse parse, const char *field)
{
    return parse == FieldParse::OutOfRange
               ? std::string(field) + " out of range"
               : "bad " + std::string(field);
}

} // namespace

StatusOr<MsrParseResult>
tryParseMsrCsv(std::istream &in, const std::string &name,
               const MsrCsvOptions &options)
{
    MsrParseResult result;
    result.trace.setName(name);
    MsrParseSummary &summary = result.summary;
    std::string line;
    std::uint64_t line_number = 0;
    bool have_epoch = false;
    std::uint64_t epoch_ticks = 0;
    Status error;

    // The warn cap below silences repetitive messages; these
    // counters keep every suppressed event countable in a metrics
    // snapshot.
    auto &registry = telemetry::Registry::global();
    telemetry::Counter &skipped_lines =
        registry.counter("trace_ingest_skipped_lines_total");
    telemetry::Counter &underflows = registry.counter(
        "trace_ingest_timestamp_underflows_total");
    telemetry::Counter &parsed_records =
        registry.counter("trace_ingest_records_total");
    telemetry::Counter &ingest_bytes = registry.counter(
        "ingest_bytes_total", "format=\"csv\"");
    telemetry::Counter &ingest_records = registry.counter(
        "ingest_records_total", "format=\"csv\"");

    // Returns false when the parse must stop with `error` set.
    auto reject = [&](const std::string &why) {
        if (!options.skipMalformed) {
            error = dataLossError(
                "msr csv line " + std::to_string(line_number) +
                ": " + why);
            return false;
        }
        ++summary.skipped;
        skipped_lines.add();
        if (summary.skipped <= options.maxWarnings)
            warn("msr csv line " + std::to_string(line_number) +
                 " skipped: " + why);
        if (summary.skipped > options.errorBudget) {
            error = resourceExhaustedError(
                "msr csv '" + name + "': error budget exceeded: " +
                std::to_string(summary.skipped) +
                " malformed lines (budget " +
                std::to_string(options.errorBudget) + ")");
            return false;
        }
        return true;
    };

    std::vector<std::string_view> fields;
    while (std::getline(in, line)) {
        ++line_number;
        // getline consumed the newline too; count it so the byte
        // counter tracks the bytes actually read off the stream.
        ingest_bytes.add(line.size() + 1);
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        ++summary.lines;

        splitCsvInto(line, fields);
        if (fields.size() < 6) {
            if (!reject("expected at least 6 fields, got " +
                        std::to_string(fields.size())))
                return error;
            continue;
        }

        std::uint64_t ticks = 0;
        int disk = 0;
        std::uint64_t offset_bytes = 0;
        std::uint64_t length_bytes = 0;
        FieldParse parse = parseNumber(fields[0], ticks);
        if (parse != FieldParse::Ok) {
            if (!reject(fieldError(parse, "timestamp")))
                return error;
            continue;
        }
        parse = parseNumber(fields[2], disk);
        if (parse != FieldParse::Ok) {
            if (!reject(fieldError(parse, "disk number")))
                return error;
            continue;
        }
        IoType type;
        if (fields[3] == "Read" || fields[3] == "read") {
            type = IoType::Read;
        } else if (fields[3] == "Write" || fields[3] == "write") {
            type = IoType::Write;
        } else {
            if (!reject("bad request type"))
                return error;
            continue;
        }
        parse = parseNumber(fields[4], offset_bytes);
        if (parse != FieldParse::Ok) {
            if (!reject(fieldError(parse, "offset")))
                return error;
            continue;
        }
        parse = parseNumber(fields[5], length_bytes);
        if (parse != FieldParse::Ok) {
            if (!reject(fieldError(parse, "length")))
                return error;
            continue;
        }
        if (length_bytes == 0) {
            if (!reject("zero-length request"))
                return error;
            continue;
        }

        if (options.diskFilter >= 0 && disk != options.diskFilter) {
            ++summary.filtered;
            continue;
        }

        if (!have_epoch) {
            epoch_ticks = ticks;
            have_epoch = true;
        }
        if (ticks < epoch_ticks) {
            // Non-monotonic clock: clamp to the epoch but make the
            // anomaly visible instead of silently flattening it.
            if (summary.timestampUnderflows == 0)
                warn("msr csv line " +
                     std::to_string(line_number) +
                     ": timestamp precedes the first record's; "
                     "clamping to 0 (counted in the summary)");
            ++summary.timestampUnderflows;
            underflows.add();
        }
        const std::uint64_t rel_ticks =
            ticks >= epoch_ticks ? ticks - epoch_ticks : 0;

        const Lba lba = offset_bytes / kSectorBytes;
        const std::uint64_t end_byte = offset_bytes + length_bytes;
        const Lba end_lba =
            (end_byte + kSectorBytes - 1) / kSectorBytes;
        result.trace.append(IoRecord{rel_ticks / kTicksPerUs, type,
                                     SectorExtent{lba,
                                                  end_lba - lba}});
        ++summary.parsed;
        parsed_records.add();
        ingest_records.add();
    }

    if (in.bad()) {
        return dataLossError("msr csv '" + name +
                             "': stream read error after line " +
                             std::to_string(line_number));
    }
    if (summary.skipped > 0) {
        warn("msr csv '" + name + "': skipped " +
             std::to_string(summary.skipped) + " of " +
             std::to_string(summary.lines) + " lines");
    }
    return result;
}

StatusOr<MsrParseResult>
tryParseMsrCsvFile(const std::string &path, const std::string &name,
                   const MsrCsvOptions &options)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        const int saved_errno = errno;
        return notFoundError("cannot open trace file: " + path +
                             ": " + std::strerror(saved_errno));
    }
    return tryParseMsrCsv(in, name, options);
}

Trace
parseMsrCsv(std::istream &in, const std::string &name,
            const MsrCsvOptions &options)
{
    StatusOr<MsrParseResult> result =
        tryParseMsrCsv(in, name, options);
    if (!result.ok())
        result.status().orFatal();
    return std::move(result).value().trace;
}

Trace
parseMsrCsvFile(const std::string &path, const std::string &name,
                const MsrCsvOptions &options)
{
    StatusOr<MsrParseResult> result =
        tryParseMsrCsvFile(path, name, options);
    if (!result.ok())
        result.status().orFatal();
    return std::move(result).value().trace;
}

void
writeMsrCsv(std::ostream &out, const Trace &trace,
            const std::string &hostname, int disk_number)
{
    for (const auto &record : trace) {
        out << record.timestampUs * kTicksPerUs << ',' << hostname
            << ',' << disk_number << ',' << toString(record.type)
            << ',' << sectorsToBytes(record.extent.start) << ','
            << record.extent.bytes() << ",0\n";
    }
}

} // namespace logseek::trace
