#include "msr_csv.h"

#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <string_view>
#include <vector>

#include "util/logging.h"

namespace logseek::trace
{

namespace
{

/** Filetime ticks (100 ns) per microsecond. */
constexpr std::uint64_t kTicksPerUs = 10;

/** Split a CSV line into fields (no quoting in MSR traces). */
std::vector<std::string_view>
splitCsv(std::string_view line)
{
    std::vector<std::string_view> fields;
    std::size_t begin = 0;
    while (true) {
        const std::size_t comma = line.find(',', begin);
        if (comma == std::string_view::npos) {
            fields.push_back(line.substr(begin));
            break;
        }
        fields.push_back(line.substr(begin, comma - begin));
        begin = comma + 1;
    }
    return fields;
}

bool
parseUint(std::string_view text, std::uint64_t &out)
{
    const char *first = text.data();
    const char *last = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(first, last, out);
    return ec == std::errc{} && ptr == last;
}

bool
parseInt(std::string_view text, int &out)
{
    const char *first = text.data();
    const char *last = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(first, last, out);
    return ec == std::errc{} && ptr == last;
}

} // namespace

Trace
parseMsrCsv(std::istream &in, const std::string &name,
            const MsrCsvOptions &options)
{
    Trace out(name);
    std::string line;
    std::uint64_t line_number = 0;
    bool have_epoch = false;
    std::uint64_t epoch_ticks = 0;

    auto reject = [&](const std::string &why) {
        if (options.skipMalformed) {
            warn("msr csv line " + std::to_string(line_number) +
                 " skipped: " + why);
            return;
        }
        fatal("msr csv line " + std::to_string(line_number) + ": " +
              why);
    };

    while (std::getline(in, line)) {
        ++line_number;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;

        const auto fields = splitCsv(line);
        if (fields.size() < 6) {
            reject("expected at least 6 fields, got " +
                   std::to_string(fields.size()));
            continue;
        }

        std::uint64_t ticks = 0;
        int disk = 0;
        std::uint64_t offset_bytes = 0;
        std::uint64_t length_bytes = 0;
        if (!parseUint(fields[0], ticks)) {
            reject("bad timestamp");
            continue;
        }
        if (!parseInt(fields[2], disk)) {
            reject("bad disk number");
            continue;
        }
        IoType type;
        if (fields[3] == "Read" || fields[3] == "read") {
            type = IoType::Read;
        } else if (fields[3] == "Write" || fields[3] == "write") {
            type = IoType::Write;
        } else {
            reject("bad request type");
            continue;
        }
        if (!parseUint(fields[4], offset_bytes)) {
            reject("bad offset");
            continue;
        }
        if (!parseUint(fields[5], length_bytes)) {
            reject("bad length");
            continue;
        }
        if (length_bytes == 0) {
            reject("zero-length request");
            continue;
        }

        if (options.diskFilter >= 0 && disk != options.diskFilter)
            continue;

        if (!have_epoch) {
            epoch_ticks = ticks;
            have_epoch = true;
        }
        const std::uint64_t rel_ticks =
            ticks >= epoch_ticks ? ticks - epoch_ticks : 0;

        const Lba lba = offset_bytes / kSectorBytes;
        const std::uint64_t end_byte = offset_bytes + length_bytes;
        const Lba end_lba =
            (end_byte + kSectorBytes - 1) / kSectorBytes;
        out.append(IoRecord{rel_ticks / kTicksPerUs, type,
                            SectorExtent{lba, end_lba - lba}});
    }
    return out;
}

Trace
parseMsrCsvFile(const std::string &path, const std::string &name,
                const MsrCsvOptions &options)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file: " + path);
    return parseMsrCsv(in, name, options);
}

void
writeMsrCsv(std::ostream &out, const Trace &trace,
            const std::string &hostname, int disk_number)
{
    for (const auto &record : trace) {
        out << record.timestampUs * kTicksPerUs << ',' << hostname
            << ',' << disk_number << ',' << toString(record.type)
            << ',' << sectorsToBytes(record.extent.start) << ','
            << record.extent.bytes() << ",0\n";
    }
}

} // namespace logseek::trace
