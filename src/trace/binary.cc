#include "binary.h"

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "telemetry/metrics.h"
#include "util/logging.h"

namespace logseek::trace
{

namespace
{

constexpr std::array<char, 4> kMagic{'L', 'S', 'K', 'T'};

template <typename T>
void
putLe(std::ostream &out, T value)
{
    std::array<char, sizeof(T)> bytes;
    for (std::size_t i = 0; i < sizeof(T); ++i)
        bytes[i] = static_cast<char>((value >> (8 * i)) & 0xff);
    out.write(bytes.data(), bytes.size());
}

template <typename T>
bool
getLe(std::istream &in, T &value)
{
    std::array<char, sizeof(T)> bytes;
    if (!in.read(bytes.data(), bytes.size()))
        return false;
    value = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
        value = static_cast<T>(
            value | (static_cast<T>(
                         static_cast<unsigned char>(bytes[i]))
                     << (8 * i)));
    }
    return true;
}

} // namespace

void
writeBinaryTrace(std::ostream &out, const Trace &trace)
{
    tryWriteBinaryTrace(out, trace).orFatal();
}

void
writeBinaryTraceFile(const std::string &path, const Trace &trace)
{
    tryWriteBinaryTraceFile(path, trace).orFatal();
}

Status
tryWriteBinaryTrace(std::ostream &out, const Trace &trace)
{
    out.write(kMagic.data(), kMagic.size());
    putLe<std::uint32_t>(out, kBinaryTraceVersion);
    putLe<std::uint32_t>(
        out, static_cast<std::uint32_t>(trace.name().size()));
    out.write(trace.name().data(),
              static_cast<std::streamsize>(trace.name().size()));
    putLe<std::uint64_t>(out, trace.size());
    for (const auto &record : trace) {
        putLe<std::uint64_t>(out, record.timestampUs);
        putLe<std::uint8_t>(
            out, static_cast<std::uint8_t>(record.type));
        putLe<std::uint64_t>(out, record.extent.start);
        putLe<std::uint64_t>(out, record.extent.count);
        // Bail as soon as the stream rejects bytes: a full disk
        // would otherwise burn a pass over the remaining millions
        // of records for nothing.
        if (!out)
            return unavailableError(
                "binary trace '" + trace.name() +
                "': short write");
    }
    if (!out)
        return unavailableError("binary trace '" + trace.name() +
                                "': short write");
    out.flush();
    if (!out)
        return unavailableError("binary trace '" + trace.name() +
                                "': flush failed");
    return Status();
}

Status
tryWriteBinaryTraceFile(const std::string &path,
                        const Trace &trace)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        const int saved_errno = errno;
        return unavailableError("cannot create trace file: " +
                                path + ": " +
                                std::strerror(saved_errno));
    }
    return tryWriteBinaryTrace(out, trace);
}

StatusOr<Trace>
tryReadBinaryTrace(std::istream &in)
{
    std::array<char, 4> magic;
    if (!in.read(magic.data(), magic.size()) || magic != kMagic)
        return dataLossError("binary trace: bad magic");

    std::uint32_t version = 0;
    if (!getLe(in, version))
        return dataLossError("binary trace: truncated header");
    if (version != kBinaryTraceVersion)
        return invalidArgumentError(
            "binary trace: unsupported version " +
            std::to_string(version));

    std::uint32_t name_len = 0;
    if (!getLe(in, name_len))
        return dataLossError("binary trace: truncated header");
    if (name_len > kMaxTraceNameBytes)
        return dataLossError(
            "binary trace: implausible name length " +
            std::to_string(name_len));
    std::string name(name_len, '\0');
    if (name_len > 0 &&
        !in.read(name.data(), static_cast<std::streamsize>(name_len)))
        return dataLossError("binary trace: truncated name");

    std::uint64_t count = 0;
    if (!getLe(in, count))
        return dataLossError("binary trace: truncated header");

    Trace trace(name);
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t timestamp = 0;
        std::uint8_t type = 0;
        std::uint64_t lba = 0;
        std::uint64_t sectors = 0;
        if (!getLe(in, timestamp) || !getLe(in, type) ||
            !getLe(in, lba) || !getLe(in, sectors)) {
            return dataLossError(
                "binary trace: truncated at record " +
                std::to_string(i) + " of " + std::to_string(count));
        }
        if (type > 1)
            return dataLossError(
                "binary trace: invalid record type at record " +
                std::to_string(i));
        if (sectors == 0)
            return dataLossError(
                "binary trace: zero-length record at record " +
                std::to_string(i));
        if (lba + sectors < lba)
            return dataLossError(
                "binary trace: sector range overflow at record " +
                std::to_string(i));
        trace.append(IoRecord{timestamp,
                              type == 0 ? IoType::Read
                                        : IoType::Write,
                              SectorExtent{lba, sectors}});
    }
    auto &registry = telemetry::Registry::global();
    registry.counter("ingest_records_total", "format=\"lskt\"")
        .add(count);
    registry.counter("ingest_bytes_total", "format=\"lskt\"")
        .add(kBinaryTraceHeaderBytes + name_len + 8 +
             count * kBinaryTraceRecordBytes);
    return trace;
}

StatusOr<Trace>
tryReadBinaryTraceFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        const int saved_errno = errno;
        return notFoundError("cannot open trace file: " + path +
                             ": " + std::strerror(saved_errno));
    }
    return tryReadBinaryTrace(in);
}

Trace
readBinaryTrace(std::istream &in)
{
    StatusOr<Trace> trace = tryReadBinaryTrace(in);
    if (!trace.ok())
        trace.status().orFatal();
    return std::move(trace).value();
}

Trace
readBinaryTraceFile(const std::string &path)
{
    StatusOr<Trace> trace = tryReadBinaryTraceFile(path);
    if (!trace.ok())
        trace.status().orFatal();
    return std::move(trace).value();
}

} // namespace logseek::trace
