#include "input.h"

namespace logseek::trace
{

Trace
materialize(TraceInput &input)
{
    input.reset();
    Trace trace(input.name());
    IoEventBatch batch;
    constexpr std::size_t kBatch = 4096;
    for (;;) {
        const std::size_t n = input.next(batch, kBatch);
        if (n == 0)
            break;
        for (std::size_t i = 0; i < n; ++i)
            trace.append(batch.record(i));
    }
    return trace;
}

} // namespace logseek::trace
