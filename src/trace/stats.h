/**
 * @file
 * Aggregate workload characteristics in the shape of the paper's
 * Table I (request counts, transferred volumes, mean write size).
 */

#ifndef LOGSEEK_TRACE_STATS_H
#define LOGSEEK_TRACE_STATS_H

#include <cstdint>
#include <string>

#include "trace/trace.h"

namespace logseek::trace
{

/** Table-I style summary of a block trace. */
struct TraceStats
{
    std::string name;
    std::uint64_t readCount = 0;
    std::uint64_t writeCount = 0;
    std::uint64_t readBytes = 0;
    std::uint64_t writtenBytes = 0;
    Lba addressSpaceEnd = 0;
    std::uint64_t durationUs = 0;

    /** Mean write request size in KiB (0 if no writes). */
    double meanWriteSizeKiB() const;

    /** Mean read request size in KiB (0 if no reads). */
    double meanReadSizeKiB() const;

    /** Read volume in GiB. */
    double readGiB() const;

    /** Written volume in GiB. */
    double writtenGiB() const;

    /** Fraction of requests that are writes (0 if empty). */
    double writeFraction() const;
};

/** Compute summary statistics for a trace in one pass. */
TraceStats computeStats(const Trace &trace);

} // namespace logseek::trace

#endif // LOGSEEK_TRACE_STATS_H
