#include "tools.h"

#include <algorithm>
#include <queue>

#include "util/logging.h"

namespace logseek::trace
{

Trace
sliceByTime(const Trace &input, std::uint64_t begin_us,
            std::uint64_t end_us)
{
    panicIf(begin_us > end_us, "sliceByTime: begin after end");
    Trace out(input.name());
    for (const auto &record : input) {
        if (record.timestampUs >= begin_us &&
            record.timestampUs < end_us)
            out.append(record);
    }
    return out;
}

Trace
sliceByIndex(const Trace &input, std::size_t begin, std::size_t end)
{
    panicIf(begin > end, "sliceByIndex: begin after end");
    Trace out(input.name());
    const std::size_t limit = std::min(end, input.size());
    for (std::size_t i = begin; i < limit; ++i)
        out.append(input[i]);
    return out;
}

Trace
mergeByTimestamp(const std::vector<const Trace *> &inputs,
                 const std::string &name)
{
    for (const Trace *trace : inputs)
        panicIf(trace == nullptr, "mergeByTimestamp: null trace");

    // K-way merge keyed by (timestamp, input index) for stability.
    using Head = std::tuple<std::uint64_t, std::size_t, std::size_t>;
    std::priority_queue<Head, std::vector<Head>, std::greater<>>
        heads;
    for (std::size_t t = 0; t < inputs.size(); ++t) {
        if (!inputs[t]->empty())
            heads.emplace((*inputs[t])[0].timestampUs, t, 0);
    }

    Trace out(name);
    while (!heads.empty()) {
        const auto [ts, t, i] = heads.top();
        heads.pop();
        out.append((*inputs[t])[i]);
        if (i + 1 < inputs[t]->size())
            heads.emplace((*inputs[t])[i + 1].timestampUs, t, i + 1);
    }
    return out;
}

Trace
filter(const Trace &input,
       const std::function<bool(const IoRecord &)> &keep)
{
    Trace out(input.name());
    for (const auto &record : input) {
        if (keep(record))
            out.append(record);
    }
    return out;
}

Trace
readsOnly(const Trace &input)
{
    return filter(input, [](const IoRecord &record) {
        return record.isRead();
    });
}

Trace
writesOnly(const Trace &input)
{
    return filter(input, [](const IoRecord &record) {
        return record.isWrite();
    });
}

Trace
sampleEveryNth(const Trace &input, std::size_t n, std::size_t offset)
{
    panicIf(n == 0, "sampleEveryNth: n must be at least 1");
    Trace out(input.name());
    for (std::size_t i = offset; i < input.size(); i += n)
        out.append(input[i]);
    return out;
}

} // namespace logseek::trace
