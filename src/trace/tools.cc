#include "tools.h"

#include <algorithm>
#include <queue>

#include "util/logging.h"

namespace logseek::trace
{

namespace
{

/** Unwrap a StatusOr<Trace>, panicking on error — the bridge the
 *  historical panic-on-misuse entry points are built on. */
Trace
orPanic(StatusOr<Trace> result)
{
    if (!result.ok())
        panic(result.status().message());
    return std::move(result).value();
}

} // namespace

StatusOr<Trace>
trySliceByTime(const Trace &input, std::uint64_t begin_us,
               std::uint64_t end_us)
{
    if (begin_us > end_us)
        return invalidArgumentError("sliceByTime: begin after end");
    Trace out(input.name());
    for (const auto &record : input) {
        if (record.timestampUs >= begin_us &&
            record.timestampUs < end_us)
            out.append(record);
    }
    return out;
}

StatusOr<Trace>
trySliceByIndex(const Trace &input, std::size_t begin,
                std::size_t end)
{
    if (begin > end)
        return invalidArgumentError("sliceByIndex: begin after end");
    Trace out(input.name());
    const std::size_t limit = std::min(end, input.size());
    for (std::size_t i = begin; i < limit; ++i)
        out.append(input[i]);
    return out;
}

StatusOr<Trace>
tryMergeByTimestamp(const std::vector<const Trace *> &inputs,
                    const std::string &name)
{
    for (const Trace *trace : inputs) {
        if (trace == nullptr)
            return invalidArgumentError(
                "mergeByTimestamp: null trace");
    }

    // K-way merge keyed by (timestamp, input index) for stability.
    using Head = std::tuple<std::uint64_t, std::size_t, std::size_t>;
    std::priority_queue<Head, std::vector<Head>, std::greater<>>
        heads;
    for (std::size_t t = 0; t < inputs.size(); ++t) {
        if (!inputs[t]->empty())
            heads.emplace((*inputs[t])[0].timestampUs, t, 0);
    }

    Trace out(name);
    while (!heads.empty()) {
        const auto [ts, t, i] = heads.top();
        heads.pop();
        out.append((*inputs[t])[i]);
        if (i + 1 < inputs[t]->size())
            heads.emplace((*inputs[t])[i + 1].timestampUs, t, i + 1);
    }
    return out;
}

StatusOr<Trace>
trySampleEveryNth(const Trace &input, std::size_t n,
                  std::size_t offset)
{
    if (n == 0)
        return invalidArgumentError(
            "sampleEveryNth: n must be at least 1");
    Trace out(input.name());
    for (std::size_t i = offset; i < input.size(); i += n)
        out.append(input[i]);
    return out;
}

Trace
sliceByTime(const Trace &input, std::uint64_t begin_us,
            std::uint64_t end_us)
{
    return orPanic(trySliceByTime(input, begin_us, end_us));
}

Trace
sliceByIndex(const Trace &input, std::size_t begin, std::size_t end)
{
    return orPanic(trySliceByIndex(input, begin, end));
}

Trace
mergeByTimestamp(const std::vector<const Trace *> &inputs,
                 const std::string &name)
{
    return orPanic(tryMergeByTimestamp(inputs, name));
}

Trace
filter(const Trace &input,
       const std::function<bool(const IoRecord &)> &keep)
{
    Trace out(input.name());
    for (const auto &record : input) {
        if (keep(record))
            out.append(record);
    }
    return out;
}

Trace
readsOnly(const Trace &input)
{
    return filter(input, [](const IoRecord &record) {
        return record.isRead();
    });
}

Trace
writesOnly(const Trace &input)
{
    return filter(input, [](const IoRecord &record) {
        return record.isWrite();
    });
}

Trace
sampleEveryNth(const Trace &input, std::size_t n, std::size_t offset)
{
    return orPanic(trySampleEveryNth(input, n, offset));
}

} // namespace logseek::trace
