#include "stats.h"

namespace logseek::trace
{

double
TraceStats::meanWriteSizeKiB() const
{
    if (writeCount == 0)
        return 0.0;
    return static_cast<double>(writtenBytes) /
           static_cast<double>(writeCount) /
           static_cast<double>(kKiB);
}

double
TraceStats::meanReadSizeKiB() const
{
    if (readCount == 0)
        return 0.0;
    return static_cast<double>(readBytes) /
           static_cast<double>(readCount) /
           static_cast<double>(kKiB);
}

double
TraceStats::readGiB() const
{
    return static_cast<double>(readBytes) /
           static_cast<double>(kGiB);
}

double
TraceStats::writtenGiB() const
{
    return static_cast<double>(writtenBytes) /
           static_cast<double>(kGiB);
}

double
TraceStats::writeFraction() const
{
    const std::uint64_t total = readCount + writeCount;
    if (total == 0)
        return 0.0;
    return static_cast<double>(writeCount) /
           static_cast<double>(total);
}

TraceStats
computeStats(const Trace &trace)
{
    TraceStats stats;
    stats.name = trace.name();
    for (const auto &record : trace) {
        if (record.isRead()) {
            ++stats.readCount;
            stats.readBytes += record.extent.bytes();
        } else {
            ++stats.writeCount;
            stats.writtenBytes += record.extent.bytes();
        }
    }
    stats.addressSpaceEnd = trace.addressSpaceEnd();
    stats.durationUs = trace.durationUs();
    return stats;
}

} // namespace logseek::trace
