/**
 * @file
 * Reader/writer for the MSR Cambridge block-trace CSV format.
 *
 * Lines look like:
 *
 *   128166372003061629,hm,1,Read,383496192,32768,1331
 *
 * with fields: Windows-filetime timestamp (100 ns ticks since 1601),
 * hostname, disk number, "Read"/"Write", byte offset, byte length,
 * response time. logseek normalizes timestamps to microseconds from
 * the first record and byte offsets/lengths to 512-byte sectors
 * (offsets are rounded down, lengths rounded up, matching how the
 * traces were consumed in the paper's simple sector model).
 */

#ifndef LOGSEEK_TRACE_MSR_CSV_H
#define LOGSEEK_TRACE_MSR_CSV_H

#include <iosfwd>
#include <string>

#include "trace/trace.h"

namespace logseek::trace
{

/** Options controlling MSR CSV parsing. */
struct MsrCsvOptions
{
    /**
     * Only keep records for this disk number; -1 keeps all disks
     * (their LBAs share one address space, as in a single volume).
     */
    int diskFilter = -1;

    /** Skip malformed lines instead of failing. */
    bool skipMalformed = false;
};

/**
 * Parse an MSR-format CSV stream into a Trace.
 *
 * @param in Input stream positioned at the first line.
 * @param name Workload name to give the resulting trace.
 * @param options Parse options.
 * @return The parsed trace, records in file order.
 * @throws FatalError on malformed input unless skipMalformed is set.
 */
Trace parseMsrCsv(std::istream &in, const std::string &name,
                  const MsrCsvOptions &options = {});

/** Parse an MSR-format CSV file (convenience wrapper). */
Trace parseMsrCsvFile(const std::string &path, const std::string &name,
                      const MsrCsvOptions &options = {});

/**
 * Write a trace in MSR CSV format. Timestamps are emitted as
 * filetime ticks relative to an arbitrary epoch; a round trip
 * through parseMsrCsv reproduces the trace's records exactly.
 */
void writeMsrCsv(std::ostream &out, const Trace &trace,
                 const std::string &hostname = "logseek",
                 int disk_number = 0);

} // namespace logseek::trace

#endif // LOGSEEK_TRACE_MSR_CSV_H
