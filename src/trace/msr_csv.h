/**
 * @file
 * Reader/writer for the MSR Cambridge block-trace CSV format.
 *
 * Lines look like:
 *
 *   128166372003061629,hm,1,Read,383496192,32768,1331
 *
 * with fields: Windows-filetime timestamp (100 ns ticks since 1601),
 * hostname, disk number, "Read"/"Write", byte offset, byte length,
 * response time. logseek normalizes timestamps to microseconds from
 * the first record and byte offsets/lengths to 512-byte sectors
 * (offsets are rounded down, lengths rounded up, matching how the
 * traces were consumed in the paper's simple sector model).
 *
 * The tryParse* entry points return typed Status errors so one
 * corrupt trace degrades a single workload instead of a batch; the
 * historical parse* names are thin wrappers that throw FatalError
 * on a non-OK status.
 */

#ifndef LOGSEEK_TRACE_MSR_CSV_H
#define LOGSEEK_TRACE_MSR_CSV_H

#include <cstdint>
#include <iosfwd>
#include <string>

#include "trace/trace.h"
#include "util/status.h"

namespace logseek::trace
{

/** Options controlling MSR CSV parsing. */
struct MsrCsvOptions
{
    /**
     * Only keep records for this disk number; -1 keeps all disks
     * (their LBAs share one address space, as in a single volume).
     */
    int diskFilter = -1;

    /** Skip malformed lines instead of failing. */
    bool skipMalformed = false;

    /**
     * Error budget in skipMalformed mode: the maximum number of
     * malformed lines tolerated before the whole trace is rejected
     * with ResourceExhausted. A trace that is mostly garbage should
     * not silently shrink to its few parseable lines.
     */
    std::uint64_t errorBudget = 1000;

    /**
     * Cap on per-line warn() emissions for skipped lines; once
     * exceeded, skipping continues silently and a single summary
     * warning is emitted at the end. Keeps a corrupt multi-million
     * line trace from flooding stderr.
     */
    std::uint64_t maxWarnings = 10;
};

/** Per-parse accounting returned alongside the trace. */
struct MsrParseSummary
{
    /** Non-blank lines examined. */
    std::uint64_t lines = 0;

    /** Records appended to the trace. */
    std::uint64_t parsed = 0;

    /** Malformed lines skipped (skipMalformed mode only). */
    std::uint64_t skipped = 0;

    /** Lines dropped by the disk filter. */
    std::uint64_t filtered = 0;

    /**
     * Records whose timestamp preceded the first record's (clock
     * went backwards); their relative timestamp is clamped to 0.
     */
    std::uint64_t timestampUnderflows = 0;
};

/** A parsed trace plus its parse accounting. */
struct MsrParseResult
{
    Trace trace;
    MsrParseSummary summary;
};

/**
 * Parse an MSR-format CSV stream into a Trace.
 *
 * @param in Input stream positioned at the first line.
 * @param name Workload name to give the resulting trace.
 * @param options Parse options.
 * @return The parsed trace and summary, or a typed error:
 *         DataLoss for a malformed line (strict mode) or a stream
 *         I/O failure, ResourceExhausted when skipMalformed skips
 *         more than options.errorBudget lines.
 */
StatusOr<MsrParseResult>
tryParseMsrCsv(std::istream &in, const std::string &name,
               const MsrCsvOptions &options = {});

/**
 * Parse an MSR-format CSV file. The file is opened in binary mode
 * (the parser strips CR itself, so CRLF traces parse identically on
 * every platform). Returns NotFound with strerror detail when the
 * file cannot be opened.
 */
StatusOr<MsrParseResult>
tryParseMsrCsvFile(const std::string &path, const std::string &name,
                   const MsrCsvOptions &options = {});

/**
 * Throwing wrapper around tryParseMsrCsv.
 * @throws FatalError on any non-OK parse status.
 */
Trace parseMsrCsv(std::istream &in, const std::string &name,
                  const MsrCsvOptions &options = {});

/** Throwing wrapper around tryParseMsrCsvFile. */
Trace parseMsrCsvFile(const std::string &path, const std::string &name,
                      const MsrCsvOptions &options = {});

/**
 * Write a trace in MSR CSV format. Timestamps are emitted as
 * filetime ticks relative to an arbitrary epoch; a round trip
 * through parseMsrCsv reproduces the trace's records exactly.
 */
void writeMsrCsv(std::ostream &out, const Trace &trace,
                 const std::string &hostname = "logseek",
                 int disk_number = 0);

} // namespace logseek::trace

#endif // LOGSEEK_TRACE_MSR_CSV_H
