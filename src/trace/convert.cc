#include "convert.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sys/stat.h>

#include "telemetry/trace_writer.h"
#include "trace/binary.h"
#include "trace/input.h"
#include "trace/lskc.h"
#include "trace/msr_csv.h"

namespace logseek::trace
{

namespace
{

/** "dir/a.csv" -> "a" (the CSV default workload name). */
std::string
stemOf(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    const std::size_t begin =
        slash == std::string::npos ? 0 : slash + 1;
    std::size_t dot = path.find_last_of('.');
    if (dot == std::string::npos || dot <= begin)
        dot = path.size();
    return path.substr(begin, dot - begin);
}

StatusOr<std::uint64_t>
fileBytes(const std::string &path)
{
    struct stat st = {};
    if (::stat(path.c_str(), &st) != 0) {
        const int saved_errno = errno;
        return notFoundError("cannot stat trace file: " + path +
                             ": " + std::strerror(saved_errno));
    }
    return static_cast<std::uint64_t>(st.st_size);
}

} // namespace

StatusOr<Trace>
tryLoadTraceFile(const std::string &path, TraceFormat format,
                 const std::string &name)
{
    StatusOr<TraceFormat> resolved =
        resolveTraceFormat(path, format);
    if (!resolved.ok())
        return resolved.status();
    switch (resolved.value()) {
    case TraceFormat::Csv: {
        StatusOr<MsrParseResult> parsed = tryParseMsrCsvFile(
            path, name.empty() ? stemOf(path) : name);
        if (!parsed.ok())
            return parsed.status();
        return std::move(parsed).value().trace;
    }
    case TraceFormat::Lskt:
        return tryReadBinaryTraceFile(path);
    case TraceFormat::Lskc:
        return tryReadLskcFile(path);
    case TraceFormat::Auto:
        break;
    }
    return internalError("resolveTraceFormat returned Auto for " +
                         path);
}

Status
tryWriteTraceFile(const std::string &path, const Trace &trace,
                  TraceFormat format)
{
    const TraceFormat out = format != TraceFormat::Auto
                                ? format
                                : formatFromPath(path);
    switch (out) {
    case TraceFormat::Csv: {
        std::ofstream os(path, std::ios::binary);
        if (!os) {
            const int saved_errno = errno;
            return unavailableError(
                "cannot create trace file: " + path + ": " +
                std::strerror(saved_errno));
        }
        writeMsrCsv(os, trace);
        os.flush();
        return os ? Status()
                  : unavailableError("short write: " + path);
    }
    case TraceFormat::Lskt:
        return tryWriteBinaryTraceFile(path, trace);
    case TraceFormat::Lskc:
        return tryWriteLskcFile(path, trace);
    case TraceFormat::Auto:
        break;
    }
    return invalidArgumentError(
        "cannot infer the output format of '" + path +
        "'; name it *.csv/*.lskt/*.lskc or pass "
        "--trace-format");
}

StatusOr<ConvertSummary>
tryConvertTraceFile(const std::string &in_path,
                    const std::string &out_path,
                    TraceFormat in_format, TraceFormat out_format)
{
    const telemetry::ScopedSpan span(
        "trace-convert:" + in_path, "ingest");

    StatusOr<TraceFormat> resolved_in =
        resolveTraceFormat(in_path, in_format);
    if (!resolved_in.ok())
        return resolved_in.status();
    TraceFormat out = out_format != TraceFormat::Auto
                          ? out_format
                          : formatFromPath(out_path);
    if (out == TraceFormat::Auto)
        return invalidArgumentError(
            "cannot infer the output format of '" + out_path +
            "'; name it *.csv/*.lskt/*.lskc or pass "
            "--trace-format");

    StatusOr<Trace> trace =
        tryLoadTraceFile(in_path, resolved_in.value());
    if (!trace.ok())
        return trace.status();

    const Status written =
        tryWriteTraceFile(out_path, trace.value(), out);
    if (!written.ok())
        return written;

    ConvertSummary summary;
    summary.inFormat = resolved_in.value();
    summary.outFormat = out;
    summary.records = trace.value().size();
    StatusOr<std::uint64_t> in_bytes = fileBytes(in_path);
    StatusOr<std::uint64_t> out_bytes = fileBytes(out_path);
    summary.inBytes = in_bytes.ok() ? in_bytes.value() : 0;
    summary.outBytes = out_bytes.ok() ? out_bytes.value() : 0;
    return summary;
}

} // namespace logseek::trace
