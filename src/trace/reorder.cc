#include "reorder.h"

#include <vector>

#include "util/logging.h"

namespace logseek::trace
{

Trace
reorderElevator(const Trace &input, const ReorderOptions &options)
{
    panicIf(options.queueDepth == 0,
            "reorderElevator: queue depth must be at least 1");

    Trace out(input.name());
    std::vector<std::size_t> pending;
    pending.reserve(options.queueDepth);

    std::size_t next_in = 0;
    std::uint64_t head = 0;

    auto oldest_pending_ts = [&]() {
        std::uint64_t oldest = ~std::uint64_t{0};
        for (const std::size_t index : pending)
            oldest = std::min(oldest, input[index].timestampUs);
        return oldest;
    };

    while (next_in < input.size() || !pending.empty()) {
        // Admit requests into the queue; a request only joins if it
        // arrived within the window of the oldest resident request
        // (they must have been outstanding together).
        while (next_in < input.size() &&
               pending.size() < options.queueDepth) {
            if (!pending.empty() && options.windowUs != 0 &&
                input[next_in].timestampUs >
                    oldest_pending_ts() + options.windowUs) {
                break;
            }
            pending.push_back(next_in++);
        }

        // C-LOOK: serve the smallest start at or beyond the head;
        // if none, sweep back to the smallest start overall.
        std::size_t best = pending.size();
        std::size_t wrap = pending.size();
        for (std::size_t i = 0; i < pending.size(); ++i) {
            const Lba start = input[pending[i]].extent.start;
            if (start >= head &&
                (best == pending.size() ||
                 start < input[pending[best]].extent.start)) {
                best = i;
            }
            if (wrap == pending.size() ||
                start < input[pending[wrap]].extent.start) {
                wrap = i;
            }
        }
        const std::size_t pick = best != pending.size() ? best : wrap;
        const IoRecord &record = input[pending[pick]];
        out.append(record);
        head = record.extent.end();
        pending[pick] = pending.back();
        pending.pop_back();
    }
    return out;
}

} // namespace logseek::trace
