/**
 * @file
 * NCQ/elevator-style request reordering (paper §IV-B background).
 *
 * The paper observes that the descending write bursts of Figure 7a
 * were dispatched almost simultaneously and "actually completed in
 * ascending LBA order": the drive's queue reorders nearly
 * concurrent requests, so mis-ordered writes cost a conventional
 * disk almost nothing. This transformer approximates that behavior:
 * requests within a bounded queue window are served in C-LOOK
 * (one-directional elevator) order, producing the request stream a
 * queue-aware device would actually execute.
 *
 * Applying it to the NoLS baseline gives the realistic comparison
 * point the paper alludes to; applying it before log-structured
 * translation shows how much of the log's mis-order pathology a
 * queueing front-end would already absorb.
 */

#ifndef LOGSEEK_TRACE_REORDER_H
#define LOGSEEK_TRACE_REORDER_H

#include <cstdint>

#include "trace/trace.h"

namespace logseek::trace
{

/** Options for NCQ-style reordering. */
struct ReorderOptions
{
    /** Maximum requests resident in the device queue. */
    std::uint32_t queueDepth = 32;

    /**
     * Only requests issued within this many microseconds of the
     * queue head may be reordered past it — requests far apart in
     * time were never in the queue together. 0 disables the time
     * constraint (pure depth-limited reordering).
     */
    std::uint64_t windowUs = 2000;
};

/**
 * Rewrite a trace into the order a C-LOOK elevator with the given
 * queue depth would serve it. The result contains exactly the same
 * requests (same extents, types, timestamps); only the order
 * changes. Timestamps are preserved per request, so the output's
 * timestamps are not monotonic wherever reordering occurred.
 */
Trace reorderElevator(const Trace &input,
                      const ReorderOptions &options = {});

} // namespace logseek::trace

#endif // LOGSEEK_TRACE_REORDER_H
