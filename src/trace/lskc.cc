#include "lskc.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <fstream>
#include <sys/mman.h>
#include <sys/stat.h>
#include <type_traits>
#include <unistd.h>

#include "telemetry/metrics.h"
#include "telemetry/trace_writer.h"
#include "util/checkpoint.h"
#include "util/logging.h"

namespace logseek::trace
{

// The zero-copy contract: the on-disk extent column IS an array of
// SectorExtent, byte for byte, and the type column IS an array of
// IoType. These asserts pin every assumption the reinterpret_cast
// in tryOpen relies on; if any of them ever breaks, the format
// needs an explicit decode step, not a silent cast.
static_assert(std::endian::native == std::endian::little,
              "LSKC zero-copy replay requires a little-endian "
              "host");
static_assert(std::is_trivially_copyable_v<SectorExtent> &&
                  sizeof(SectorExtent) == kLskcExtentBytes &&
                  offsetof(SectorExtent, start) == 0 &&
                  offsetof(SectorExtent, count) == 8,
              "SectorExtent layout no longer matches the LSKC "
              "extent column");
static_assert(sizeof(IoType) == kLskcTypeBytes &&
                  static_cast<std::uint8_t>(IoType::Read) == 0 &&
                  static_cast<std::uint8_t>(IoType::Write) == 1,
              "IoType encoding no longer matches the LSKC type "
              "column");

namespace
{

constexpr std::array<char, 4> kMagic{'L', 'S', 'K', 'C'};

/** Same bound as LSKT's kMaxTraceNameBytes. */
constexpr std::uint32_t kMaxNameBytes = 64 * 1024;

constexpr std::size_t kSectionCount = 3;
constexpr std::size_t kSectionDescBytes = 8 + 8 + 4;
constexpr std::size_t kIoBufferBytes = 256 * 1024;

const char *const kSectionNames[kSectionCount] = {
    "extents", "timestamps", "types"};
constexpr std::size_t kElemBytes[kSectionCount] = {
    kLskcExtentBytes, kLskcTimestampBytes, kLskcTypeBytes};

void
putLe32(std::string &out, std::uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(
            static_cast<char>((value >> (8 * i)) & 0xff));
}

void
putLe64(std::string &out, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(
            static_cast<char>((value >> (8 * i)) & 0xff));
}

/** Bounds-checked little-endian reader over the mapped header. */
class ByteCursor
{
  public:
    ByteCursor(const std::byte *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    bool
    u32(std::uint32_t &out)
    {
        if (size_ - pos_ < 4)
            return false;
        out = 0;
        for (std::size_t i = 0; i < 4; ++i)
            out |= static_cast<std::uint32_t>(
                       std::to_integer<unsigned char>(
                           data_[pos_ + i]))
                   << (8 * i);
        pos_ += 4;
        return true;
    }

    bool
    u64(std::uint64_t &out)
    {
        if (size_ - pos_ < 8)
            return false;
        out = 0;
        for (std::size_t i = 0; i < 8; ++i)
            out |= static_cast<std::uint64_t>(
                       std::to_integer<unsigned char>(
                           data_[pos_ + i]))
                   << (8 * i);
        pos_ += 8;
        return true;
    }

    bool
    bytes(std::string &out, std::size_t n)
    {
        if (size_ - pos_ < n)
            return false;
        out.assign(reinterpret_cast<const char *>(data_ + pos_),
                   n);
        pos_ += n;
        return true;
    }

  private:
    const std::byte *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/** One column's location in the file, as stored in the header. */
struct SectionDesc
{
    std::uint64_t offset = 0;
    std::uint64_t byteLen = 0;
    std::uint32_t crc = 0;
};

std::uint64_t
alignUp(std::uint64_t offset)
{
    const std::uint64_t align = kLskcSectionAlign;
    return (offset + align - 1) / align * align;
}

/** Buffered section writer: streams bytes to the file while
 *  folding them into a running CRC. */
class SectionWriter
{
  public:
    explicit SectionWriter(std::ofstream &out) : out_(out)
    {
        buffer_.reserve(kIoBufferBytes);
    }

    void
    write(std::string_view data)
    {
        bytes_ += data.size();
        crc_.update(data);
        buffer_.append(data);
        if (buffer_.size() >= kIoBufferBytes)
            flush();
    }

    void
    flush()
    {
        out_.write(buffer_.data(),
                   static_cast<std::streamsize>(buffer_.size()));
        buffer_.clear();
    }

    std::uint64_t bytes() const { return bytes_; }
    std::uint32_t crc() const { return crc_.value(); }

  private:
    std::ofstream &out_;
    std::string buffer_;
    Crc32 crc_;
    std::uint64_t bytes_ = 0;
};

/** Serialize the header (everything the preamble's CRC guards). */
std::string
encodeHeader(
    std::uint64_t record_count, Lba address_space_end,
    const std::string &name,
    const std::array<SectionDesc, kSectionCount> &sections)
{
    std::string header;
    putLe64(header, record_count);
    putLe64(header, address_space_end);
    putLe32(header, static_cast<std::uint32_t>(name.size()));
    header.append(name);
    for (const SectionDesc &s : sections) {
        putLe64(header, s.offset);
        putLe64(header, s.byteLen);
        putLe32(header, s.crc);
    }
    return header;
}

} // namespace

Status
tryWriteLskcFile(const std::string &path, TraceInput &input)
{
    const telemetry::ScopedSpan span("lskc-write:" + input.name(),
                                     "ingest");
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        const int saved_errno = errno;
        return unavailableError("cannot create trace file: " +
                                path + ": " +
                                std::strerror(saved_errno));
    }

    const std::string name = input.name();
    if (name.size() > kMaxNameBytes)
        return invalidArgumentError(
            "lskc trace '" + name + "': name exceeds " +
            std::to_string(kMaxNameBytes) + " bytes");
    const std::size_t header_len =
        8 + 8 + 4 + name.size() +
        kSectionCount * kSectionDescBytes;

    // The preamble and a zeroed header go out first so the section
    // passes can stream straight after them; the real header (its
    // counts and CRCs are only known at the end) is patched in
    // over the zeros last, making a torn write detectable — a file
    // whose header CRC never landed fails open.
    out.write(kMagic.data(), kMagic.size());
    {
        std::string preamble;
        putLe32(preamble, kLskcVersion);
        putLe32(preamble, static_cast<std::uint32_t>(header_len));
        putLe32(preamble, 0); // headerCrc patched in below
        out.write(preamble.data(),
                  static_cast<std::streamsize>(preamble.size()));
    }
    {
        const std::string zeros(header_len, '\0');
        out.write(zeros.data(),
                  static_cast<std::streamsize>(zeros.size()));
    }

    const Lba address_space_end = input.addressSpaceEnd();
    std::array<SectionDesc, kSectionCount> sections;
    std::uint64_t offset = kLskcPreambleBytes + header_len;
    std::uint64_t record_count = 0;
    IoEventBatch batch;
    std::string scratch;
    constexpr std::size_t kBatch = 4096;

    // One streaming pass per column; the input's reset() contract
    // (identical records on every pass) is what makes this correct
    // with bounded memory, and the per-pass record counts double
    // as a cheap check of that contract.
    for (std::size_t section = 0; section < kSectionCount;
         ++section) {
        const std::uint64_t aligned = alignUp(offset);
        if (aligned > offset) {
            const std::string pad(aligned - offset, '\0');
            out.write(pad.data(),
                      static_cast<std::streamsize>(pad.size()));
        }
        offset = aligned;

        input.reset();
        SectionWriter writer(out);
        std::uint64_t pass_records = 0;
        for (;;) {
            const std::size_t n = input.next(batch, kBatch);
            if (n == 0)
                break;
            pass_records += n;
            scratch.clear();
            for (std::size_t i = 0; i < n; ++i) {
                switch (section) {
                case 0:
                    putLe64(scratch, batch.extent(i).start);
                    putLe64(scratch, batch.extent(i).count);
                    break;
                case 1:
                    putLe64(scratch, batch.timestamp(i));
                    break;
                default:
                    scratch.push_back(static_cast<char>(
                        static_cast<std::uint8_t>(
                            batch.type(i))));
                    break;
                }
            }
            writer.write(scratch);
            if (!out)
                return unavailableError(
                    "lskc trace '" + name + "': short write");
        }
        writer.flush();
        if (!out)
            return unavailableError("lskc trace '" + name +
                                    "': short write");

        if (section == 0)
            record_count = pass_records;
        else if (pass_records != record_count)
            return dataLossError(
                "lskc trace '" + name +
                "': input produced a different record count on "
                "pass " +
                std::to_string(section + 1) + " (" +
                std::to_string(pass_records) + " vs " +
                std::to_string(record_count) + ")");

        sections[section] =
            SectionDesc{offset, writer.bytes(), writer.crc()};
        offset += writer.bytes();
    }

    const std::string header = encodeHeader(
        record_count, address_space_end, name, sections);
    out.seekp(static_cast<std::streamoff>(kLskcPreambleBytes));
    out.write(header.data(),
              static_cast<std::streamsize>(header.size()));
    std::string crc_bytes;
    putLe32(crc_bytes, crc32(header));
    out.seekp(12); // headerCrc slot in the preamble
    out.write(crc_bytes.data(),
              static_cast<std::streamsize>(crc_bytes.size()));
    out.flush();
    if (!out)
        return unavailableError("lskc trace '" + name +
                                "': flush failed");
    return Status();
}

Status
tryWriteLskcFile(const std::string &path, const Trace &trace)
{
    TraceRef ref(trace);
    return tryWriteLskcFile(path, ref);
}

StatusOr<std::shared_ptr<const MappedFile>>
MappedFile::tryMap(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        const int saved_errno = errno;
        return notFoundError("cannot open trace file: " + path +
                             ": " + std::strerror(saved_errno));
    }
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
        const int saved_errno = errno;
        ::close(fd);
        return unavailableError("cannot stat trace file: " +
                                path + ": " +
                                std::strerror(saved_errno));
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    if (size == 0) {
        ::close(fd);
        return dataLossError("lskc trace '" + path +
                             "': empty file");
    }
    // MAP_POPULATE prefaults the whole mapping in one batch, which
    // is far cheaper than taking a minor fault per 4K page while
    // the open-time CRC streams over the file.
    int flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
    flags |= MAP_POPULATE;
#endif
    void *base = ::mmap(nullptr, size, PROT_READ, flags, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) {
        const int saved_errno = errno;
        return unavailableError("cannot mmap trace file: " +
                                path + ": " +
                                std::strerror(saved_errno));
    }
    return std::shared_ptr<const MappedFile>(new MappedFile(
        static_cast<std::byte *>(base), size));
}

MappedFile::~MappedFile()
{
    ::munmap(data_, size_);
}

StatusOr<std::shared_ptr<const LskcSource>>
LskcSource::tryOpen(const std::string &path)
{
    const telemetry::ScopedSpan span("lskc-open:" + path,
                                     "ingest");
    StatusOr<std::shared_ptr<const MappedFile>> file_or =
        MappedFile::tryMap(path);
    if (!file_or.ok())
        return file_or.status();
    std::shared_ptr<const MappedFile> file =
        std::move(file_or).value();
    const std::byte *data = file->data();
    const std::size_t size = file->size();

    const auto corrupt = [&path](const std::string &why) {
        return dataLossError("lskc trace '" + path + "': " + why);
    };

    if (size < kLskcPreambleBytes)
        return corrupt("file shorter than the preamble");
    if (std::memcmp(data, kMagic.data(), kMagic.size()) != 0)
        return corrupt("bad magic");

    ByteCursor preamble(data + kMagic.size(),
                        kLskcPreambleBytes - kMagic.size());
    std::uint32_t version = 0;
    std::uint32_t header_len = 0;
    std::uint32_t header_crc = 0;
    preamble.u32(version);
    preamble.u32(header_len);
    preamble.u32(header_crc);
    if (version != kLskcVersion)
        return invalidArgumentError(
            "lskc trace '" + path + "': unsupported version " +
            std::to_string(version));
    constexpr std::size_t kFixedHeaderBytes =
        8 + 8 + 4 + kSectionCount * kSectionDescBytes;
    if (header_len < kFixedHeaderBytes ||
        header_len > size - kLskcPreambleBytes)
        return corrupt("header length out of bounds");

    const std::string_view header_bytes(
        reinterpret_cast<const char *>(data + kLskcPreambleBytes),
        header_len);
    if (crc32(header_bytes) != header_crc)
        return corrupt("header CRC mismatch");

    ByteCursor cursor(data + kLskcPreambleBytes, header_len);
    std::uint64_t record_count = 0;
    std::uint64_t address_space_end = 0;
    std::uint32_t name_len = 0;
    std::string name;
    cursor.u64(record_count);
    cursor.u64(address_space_end);
    cursor.u32(name_len);
    if (name_len > kMaxNameBytes)
        return corrupt("implausible name length " +
                       std::to_string(name_len));
    if (!cursor.bytes(name, name_len))
        return corrupt("truncated header");
    std::array<SectionDesc, kSectionCount> sections;
    for (SectionDesc &s : sections) {
        if (!cursor.u64(s.offset) || !cursor.u64(s.byteLen) ||
            !cursor.u32(s.crc))
            return corrupt("truncated header");
    }

    // Structural validation: every byte a view will ever serve is
    // checked here, once, so the replay hot path can trust the
    // mapping unconditionally.
    if (record_count > size)
        return corrupt("record count exceeds the file size");
    for (std::size_t i = 0; i < kSectionCount; ++i) {
        const SectionDesc &s = sections[i];
        const std::string col(kSectionNames[i]);
        if (s.byteLen != record_count * kElemBytes[i])
            return corrupt(col + " section length mismatch");
        if (s.offset % kLskcSectionAlign != 0)
            return corrupt(col + " section misaligned");
        if (s.offset > size || s.byteLen > size - s.offset)
            return corrupt(col + " section out of bounds");
        const std::string_view body(
            reinterpret_cast<const char *>(data) + s.offset,
            static_cast<std::size_t>(s.byteLen));
        if (crc32(body) != s.crc)
            return corrupt(col + " section CRC mismatch");
    }

    LskcLayout layout;
    layout.name = std::move(name);
    layout.recordCount = record_count;
    layout.addressSpaceEnd = address_space_end;
    layout.extents = reinterpret_cast<const SectorExtent *>(
        data + sections[0].offset);
    layout.timestamps = reinterpret_cast<const std::uint64_t *>(
        data + sections[1].offset);
    layout.types = reinterpret_cast<const IoType *>(
        data + sections[2].offset);

    // Record-level validation, matching what the LSKT reader
    // enforces record by record: no empty extents, no overflowing
    // sector ranges, only valid type codes, and an address-space
    // bound that really covers the extent column. The fast pass is
    // branchless (one accumulated flag) so it vectorizes; only a
    // failing file pays for the per-record re-scan that names the
    // first bad record.
    bool bad = false;
    for (std::uint64_t i = 0; i < record_count; ++i) {
        const SectorExtent &extent = layout.extents[i];
        const std::uint64_t end = extent.start + extent.count;
        bad |= (extent.count == 0) | (end < extent.start) |
               (end > address_space_end) |
               (static_cast<std::uint8_t>(layout.types[i]) > 1);
    }
    if (bad) {
        for (std::uint64_t i = 0; i < record_count; ++i) {
            const SectorExtent &extent = layout.extents[i];
            if (extent.count == 0)
                return corrupt("zero-length record at record " +
                               std::to_string(i));
            if (extent.start + extent.count < extent.start)
                return corrupt("sector range overflow at record " +
                               std::to_string(i));
            if (extent.start + extent.count > address_space_end)
                return corrupt(
                    "record " + std::to_string(i) +
                    " reaches past the header's addressSpaceEnd");
            if (static_cast<std::uint8_t>(layout.types[i]) > 1)
                return corrupt("invalid record type at record " +
                               std::to_string(i));
        }
    }

    auto &registry = telemetry::Registry::global();
    registry.counter("trace_mmap_opens_total").add();
    registry.counter("ingest_bytes_total", "format=\"lskc\"")
        .add(size);
    registry.counter("ingest_records_total", "format=\"lskc\"")
        .add(record_count);

    return std::shared_ptr<const LskcSource>(
        new LskcSource(std::move(file), std::move(layout)));
}

StatusOr<Trace>
tryReadLskcFile(const std::string &path)
{
    StatusOr<std::shared_ptr<const LskcSource>> source =
        LskcSource::tryOpen(path);
    if (!source.ok())
        return source.status();
    std::unique_ptr<TraceInput> input = source.value()->open();
    return materialize(*input);
}

} // namespace logseek::trace
