#include "trace.h"

#include <algorithm>

#include "util/logging.h"

namespace logseek::trace
{

const char *
toString(IoType type)
{
    return type == IoType::Read ? "Read" : "Write";
}

void
Trace::append(const IoRecord &record)
{
    panicIf(record.extent.empty(), "Trace::append: empty extent");
    records_.push_back(record);
    addressSpaceEnd_ = std::max(addressSpaceEnd_, record.extent.end());
}

std::uint64_t
Trace::durationUs() const
{
    return records_.empty() ? 0 : records_.back().timestampUs;
}

void
Trace::appendAll(const Trace &other)
{
    for (const auto &record : other)
        append(record);
}

} // namespace logseek::trace
