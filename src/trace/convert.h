/**
 * @file
 * Format-agnostic trace loading and conversion.
 *
 * tryLoadTraceFile reads any supported trace file (MSR CSV, LSKT,
 * LSKC) into an in-RAM Trace; tryConvertTraceFile rewrites a trace
 * file from one format to another — the tools-level entry point
 * behind bench/trace_convert and the --trace-format/--convert-out
 * CLI flags. Conversion is deterministic: converting the same
 * input twice produces byte-identical output (the ingest smoke
 * pins this for LSKC).
 */

#ifndef LOGSEEK_TRACE_CONVERT_H
#define LOGSEEK_TRACE_CONVERT_H

#include <cstdint>
#include <string>

#include "trace/format.h"
#include "trace/trace.h"
#include "util/status.h"

namespace logseek::trace
{

/**
 * Load a trace file of any supported format into an in-RAM Trace.
 * `format` Auto sniffs the file (resolveTraceFormat). `name` is
 * used for CSV traces, which do not carry one; empty derives it
 * from the file name. LSKT/LSKC traces keep their embedded name.
 */
StatusOr<Trace> tryLoadTraceFile(
    const std::string &path,
    TraceFormat format = TraceFormat::Auto,
    const std::string &name = "");

/** What a conversion did. */
struct ConvertSummary
{
    TraceFormat inFormat = TraceFormat::Auto;
    TraceFormat outFormat = TraceFormat::Auto;
    std::uint64_t records = 0;
    std::uint64_t inBytes = 0;
    std::uint64_t outBytes = 0;
};

/**
 * Write an in-RAM trace to `path` in `format`. Auto derives the
 * format from the path's extension and is InvalidArgument when
 * the extension implies nothing. Deterministic for every format:
 * the same trace always produces the same bytes.
 */
Status tryWriteTraceFile(
    const std::string &path, const Trace &trace,
    TraceFormat format = TraceFormat::Auto);

/**
 * Convert a trace file to another format. Input format Auto
 * sniffs the file; output format Auto derives from the output
 * path's extension and is InvalidArgument when the extension
 * implies nothing. Converting to the input's own format is
 * allowed (it canonicalizes the file).
 */
StatusOr<ConvertSummary> tryConvertTraceFile(
    const std::string &in_path, const std::string &out_path,
    TraceFormat in_format = TraceFormat::Auto,
    TraceFormat out_format = TraceFormat::Auto);

} // namespace logseek::trace

#endif // LOGSEEK_TRACE_CONVERT_H
