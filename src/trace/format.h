/**
 * @file
 * Trace file formats and their detection.
 *
 * Three on-disk formats exist: MSR-Cambridge CSV (trace/msr_csv.h),
 * the row-major binary LSKT (trace/binary.h) and the columnar LSKC
 * (trace/lskc.h). TraceFormat names them; Auto resolves by magic
 * sniff for existing files and by extension for files about to be
 * written. parseTraceFormat is the strict CLI-facing parser behind
 * --trace-format.
 */

#ifndef LOGSEEK_TRACE_FORMAT_H
#define LOGSEEK_TRACE_FORMAT_H

#include <string>
#include <string_view>

#include "util/status.h"

namespace logseek::trace
{

/** A trace file format, or Auto for "detect it". */
enum class TraceFormat
{
    Auto,
    Csv,
    Lskt,
    Lskc,
};

/** Lower-case name, as the CLI spells it ("auto", "csv", ...). */
const char *toString(TraceFormat format);

/**
 * Strict parse of a --trace-format value: exactly "auto", "csv",
 * "lskt" or "lskc" (lower case). Anything else is InvalidArgument
 * naming the offending value and the accepted set.
 */
StatusOr<TraceFormat> parseTraceFormat(std::string_view text);

/**
 * Format implied by a path's extension (".csv", ".lskt", ".lskc",
 * case-insensitive); Auto when the extension implies nothing.
 */
TraceFormat formatFromPath(const std::string &path);

/**
 * Resolve the format of an existing trace file: `declared` wins
 * unless it is Auto, in which case the file's first bytes are
 * sniffed ("LSKT"/"LSKC" magic; anything else is CSV — MSR traces
 * have no magic). NotFound/Unavailable when the file cannot be
 * read.
 */
StatusOr<TraceFormat> resolveTraceFormat(const std::string &path,
                                         TraceFormat declared);

} // namespace logseek::trace

#endif // LOGSEEK_TRACE_FORMAT_H
