/**
 * @file
 * Pull-based trace inputs: the abstraction that lets the replay
 * core consume a workload without knowing where its records live.
 *
 * A TraceInput is a forward cursor over an ordered record stream,
 * served in columnar IoEventBatch blocks:
 *
 *  - TraceRef wraps an in-RAM Trace (the historical path),
 *  - LskcView (trace/lskc.h) binds batches straight into an mmap'd
 *    columnar file — zero copy, zero decode,
 *  - workloads::WorkloadStream (workloads/stream.h) synthesizes
 *    records chunk by chunk with bounded memory.
 *
 * reset() rewinds to the first record, so one input supports the
 * simulator's validate-then-replay double pass. Inputs are
 * single-cursor and not thread-safe; sharing a workload between
 * concurrent sweep cells goes through TraceSource, an immutable
 * factory whose open() hands each cell its own cursor.
 */

#ifndef LOGSEEK_TRACE_INPUT_H
#define LOGSEEK_TRACE_INPUT_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "trace/io_batch.h"
#include "trace/trace.h"

namespace logseek::trace
{

/**
 * A forward, resettable cursor over one workload's records. The
 * replay engine calls next() until it returns 0; the records seen
 * across a full pass are the workload, bit-for-bit — every
 * implementation must reproduce the identical sequence on every
 * pass, which is what makes replay from any input byte-identical
 * to the in-RAM Trace path.
 */
class TraceInput
{
  public:
    virtual ~TraceInput() = default;

    /** Workload name (used in results and error messages). */
    virtual const std::string &name() const = 0;

    /**
     * One past the highest sector any record of the stream touches
     * (the address-space size translation layers are built with).
     * Must be known up front, before the records are pulled.
     */
    virtual Lba addressSpaceEnd() const = 0;

    /**
     * Fill `batch` with the next at-most-`max` records and advance
     * the cursor. Returns the batch size; 0 means the stream is
     * exhausted (the batch is left unspecified then). `max` is at
     * least 1.
     */
    virtual std::size_t next(IoEventBatch &batch,
                             std::size_t max) = 0;

    /** Rewind to the first record. */
    virtual void reset() = 0;

    /** Total record count when cheaply known (in-RAM and mmap'd
     *  inputs); nullopt for unbounded/streamed inputs. */
    virtual std::optional<std::uint64_t> sizeHint() const
    {
        return std::nullopt;
    }
};

/** TraceInput over a borrowed in-RAM Trace (must outlive it). */
class TraceRef final : public TraceInput
{
  public:
    explicit TraceRef(const Trace &trace) : trace_(&trace) {}

    const std::string &name() const override
    {
        return trace_->name();
    }
    Lba addressSpaceEnd() const override
    {
        return trace_->addressSpaceEnd();
    }

    std::size_t
    next(IoEventBatch &batch, std::size_t max) override
    {
        const std::size_t n =
            std::min(max, trace_->size() - pos_);
        if (n == 0)
            return 0;
        batch.buildFrom(*trace_, pos_, pos_ + n);
        pos_ += n;
        return n;
    }

    void reset() override { pos_ = 0; }

    std::optional<std::uint64_t> sizeHint() const override
    {
        return trace_->size();
    }

  private:
    const Trace *trace_;
    std::size_t pos_ = 0;
};

/**
 * A shareable, immutable workload: many sweep cells hold one
 * source and each open()s a private cursor. Implementations must
 * make open() const-thread-safe (callable concurrently) and every
 * opened input must yield the identical record sequence —
 * replaying any cursor is deterministic regardless of --jobs.
 *
 * Sources are shared via shared_ptr<const TraceSource>; the sweep
 * runner drops its reference when the last dependent cell
 * completes, which is what releases an in-RAM trace (or unmaps a
 * file) mid-sweep instead of at sweep end.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    virtual const std::string &name() const = 0;

    /** A fresh cursor positioned at the first record. */
    virtual std::unique_ptr<TraceInput> open() const = 0;

    /** Total record count when cheaply known. */
    virtual std::optional<std::uint64_t> sizeHint() const = 0;

    /**
     * The materialized Trace behind this source, or null when the
     * source is not RAM-backed. Lets config factories and analysis
     * hooks that need whole-trace access (ConfigSpec::make,
     * SweepOptions::onTrace) keep working for in-memory workloads
     * without forcing streamed ones to materialize.
     */
    virtual const Trace *memoryTrace() const { return nullptr; }
};

/** TraceSource owning an in-RAM Trace. */
class InMemoryTraceSource final : public TraceSource
{
  public:
    explicit InMemoryTraceSource(Trace trace)
        : trace_(std::move(trace))
    {
    }

    const std::string &name() const override
    {
        return trace_.name();
    }

    std::unique_ptr<TraceInput> open() const override
    {
        return std::make_unique<TraceRef>(trace_);
    }

    std::optional<std::uint64_t> sizeHint() const override
    {
        return trace_.size();
    }

    const Trace *memoryTrace() const override { return &trace_; }

  private:
    Trace trace_;
};

/**
 * Drain an input into an in-RAM Trace (resetting first). Intended
 * for converters and tests; defeats the purpose of streamed inputs
 * on workloads that do not fit in memory.
 */
Trace materialize(TraceInput &input);

} // namespace logseek::trace

#endif // LOGSEEK_TRACE_INPUT_H
