#include "format.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <fstream>

namespace logseek::trace
{

const char *
toString(TraceFormat format)
{
    switch (format) {
    case TraceFormat::Auto:
        return "auto";
    case TraceFormat::Csv:
        return "csv";
    case TraceFormat::Lskt:
        return "lskt";
    case TraceFormat::Lskc:
        return "lskc";
    }
    return "auto";
}

StatusOr<TraceFormat>
parseTraceFormat(std::string_view text)
{
    if (text == "auto")
        return TraceFormat::Auto;
    if (text == "csv")
        return TraceFormat::Csv;
    if (text == "lskt")
        return TraceFormat::Lskt;
    if (text == "lskc")
        return TraceFormat::Lskc;
    return invalidArgumentError(
        "bad trace format '" + std::string(text) +
        "' (expected auto, csv, lskt or lskc)");
}

TraceFormat
formatFromPath(const std::string &path)
{
    const std::size_t dot = path.find_last_of('.');
    if (dot == std::string::npos)
        return TraceFormat::Auto;
    std::string ext = path.substr(dot + 1);
    std::transform(ext.begin(), ext.end(), ext.begin(),
                   [](unsigned char c) {
                       return static_cast<char>(
                           std::tolower(c));
                   });
    if (ext == "csv")
        return TraceFormat::Csv;
    if (ext == "lskt")
        return TraceFormat::Lskt;
    if (ext == "lskc")
        return TraceFormat::Lskc;
    return TraceFormat::Auto;
}

StatusOr<TraceFormat>
resolveTraceFormat(const std::string &path, TraceFormat declared)
{
    if (declared != TraceFormat::Auto)
        return declared;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        const int saved_errno = errno;
        return notFoundError("cannot open trace file: " + path +
                             ": " + std::strerror(saved_errno));
    }
    char magic[4] = {};
    in.read(magic, sizeof(magic));
    // A file shorter than a magic cannot be a binary trace; let
    // the CSV parser report whatever it is.
    if (in.gcount() == sizeof(magic)) {
        if (std::memcmp(magic, "LSKT", 4) == 0)
            return TraceFormat::Lskt;
        if (std::memcmp(magic, "LSKC", 4) == 0)
            return TraceFormat::Lskc;
    }
    return TraceFormat::Csv;
}

} // namespace logseek::trace
