/**
 * @file
 * In-memory block trace: an ordered sequence of IoRecords plus a
 * workload name.
 */

#ifndef LOGSEEK_TRACE_TRACE_H
#define LOGSEEK_TRACE_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "trace/record.h"

namespace logseek::trace
{

/**
 * An ordered block trace. Records are stored in issue order; the
 * simulator and all analyses iterate it front to back.
 */
class Trace
{
  public:
    Trace() = default;
    explicit Trace(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    /** Append a record (records must be appended in issue order). */
    void append(const IoRecord &record);

    /** Append a read request. */
    void
    appendRead(Lba lba, SectorCount sectors, std::uint64_t time_us = 0)
    {
        append(makeRead(lba, sectors, time_us));
    }

    /** Append a write request. */
    void
    appendWrite(Lba lba, SectorCount sectors, std::uint64_t time_us = 0)
    {
        append(makeWrite(lba, sectors, time_us));
    }

    bool empty() const { return records_.size() == 0; }
    std::size_t size() const { return records_.size(); }

    const IoRecord &operator[](std::size_t i) const { return records_[i]; }

    auto begin() const { return records_.begin(); }
    auto end() const { return records_.end(); }

    /**
     * One past the highest sector touched by any record; 0 for an
     * empty trace. This is the address-space size the paper's model
     * needs to place the initial write frontier.
     */
    Lba addressSpaceEnd() const { return addressSpaceEnd_; }

    /** Timestamp of the last record; 0 for an empty trace. */
    std::uint64_t durationUs() const;

    /** Concatenate another trace's records after this one's. */
    void appendAll(const Trace &other);

  private:
    std::string name_;
    std::vector<IoRecord> records_;
    Lba addressSpaceEnd_ = 0;
};

} // namespace logseek::trace

#endif // LOGSEEK_TRACE_TRACE_H
