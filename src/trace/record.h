/**
 * @file
 * A single block-level I/O request, as found in block traces.
 */

#ifndef LOGSEEK_TRACE_RECORD_H
#define LOGSEEK_TRACE_RECORD_H

#include <cstdint>

#include "util/extent.h"

namespace logseek::trace
{

/** Direction of a block request. */
enum class IoType : std::uint8_t { Read, Write };

/** Printable name of an IoType ("Read"/"Write"). */
const char *toString(IoType type);

/**
 * One block I/O request. Addresses are in 512-byte sectors (the
 * extent's start is the LBA of the first sector).
 */
struct IoRecord
{
    /** Request issue time in microseconds from trace start. */
    std::uint64_t timestampUs = 0;

    /** Read or write. */
    IoType type = IoType::Read;

    /** Logical sector range touched. */
    SectorExtent extent;

    bool isRead() const { return type == IoType::Read; }
    bool isWrite() const { return type == IoType::Write; }

    bool operator==(const IoRecord &other) const = default;
};

/** Construct a read record. */
inline IoRecord
makeRead(Lba lba, SectorCount sectors, std::uint64_t time_us = 0)
{
    return IoRecord{time_us, IoType::Read, SectorExtent{lba, sectors}};
}

/** Construct a write record. */
inline IoRecord
makeWrite(Lba lba, SectorCount sectors, std::uint64_t time_us = 0)
{
    return IoRecord{time_us, IoType::Write, SectorExtent{lba, sectors}};
}

} // namespace logseek::trace

#endif // LOGSEEK_TRACE_RECORD_H
