/**
 * @file
 * Compact binary trace format ("LSKT").
 *
 * MSR CSV is convenient but bulky and slow to parse for multi-
 * million-request traces; this fixed-width little-endian format is
 * about 4x smaller and parses at memory speed. Layout:
 *
 *   magic   "LSKT"            4 bytes
 *   version u32               currently 1
 *   nameLen u32, name bytes
 *   count   u64
 *   records count x { timestampUs u64, type u8, lba u64, count u64 }
 *
 * All integers little-endian. The tryRead* entry points return
 * typed Status errors (DataLoss for corruption/truncation,
 * InvalidArgument for an unsupported version, NotFound for a
 * missing file); the historical read/write entry points are thin
 * wrappers that throw FatalError on a non-OK status.
 */

#ifndef LOGSEEK_TRACE_BINARY_H
#define LOGSEEK_TRACE_BINARY_H

#include <iosfwd>
#include <string>

#include "trace/trace.h"
#include "util/status.h"

namespace logseek::trace
{

/** Current binary trace format version. */
inline constexpr std::uint32_t kBinaryTraceVersion = 1;

/** Bytes of preamble before the name: magic + version + nameLen. */
inline constexpr std::size_t kBinaryTraceHeaderBytes = 4 + 4 + 4;

/** Fixed width of one serialized record. */
inline constexpr std::size_t kBinaryTraceRecordBytes =
    8 + 1 + 8 + 8;

/**
 * Upper bound on a plausible trace name. A length above this is
 * treated as corruption (it would otherwise let one flipped bit in
 * the nameLen field demand a multi-GB allocation).
 */
inline constexpr std::uint32_t kMaxTraceNameBytes = 64 * 1024;

/** Serialize a trace to the LSKT binary format. */
void writeBinaryTrace(std::ostream &out, const Trace &trace);

/** Serialize a trace to a file; fatal() on I/O failure. */
void writeBinaryTraceFile(const std::string &path,
                          const Trace &trace);

/**
 * Typed-error serialization: returns Unavailable when the stream
 * rejects bytes (short write — disk full, quota) or when the final
 * flush fails, so callers can retry the whole write on transient
 * media trouble. The stream's error state is left set.
 */
Status tryWriteBinaryTrace(std::ostream &out, const Trace &trace);

/** Typed-error file serialization: Unavailable when the file cannot
 *  be created or as tryWriteBinaryTrace. */
Status tryWriteBinaryTraceFile(const std::string &path,
                               const Trace &trace);

/**
 * Parse an LSKT stream, returning DataLoss on bad magic, an
 * implausible name length, an invalid record, or truncation, and
 * InvalidArgument on an unsupported version.
 */
StatusOr<Trace> tryReadBinaryTrace(std::istream &in);

/** Parse an LSKT file; NotFound (with strerror detail) when it
 *  cannot be opened, otherwise as tryReadBinaryTrace. */
StatusOr<Trace> tryReadBinaryTraceFile(const std::string &path);

/**
 * Throwing wrapper around tryReadBinaryTrace.
 * @throws FatalError on any non-OK status.
 */
Trace readBinaryTrace(std::istream &in);

/** Throwing wrapper around tryReadBinaryTraceFile. */
Trace readBinaryTraceFile(const std::string &path);

} // namespace logseek::trace

#endif // LOGSEEK_TRACE_BINARY_H
