/**
 * @file
 * Compact binary trace format ("LSKT").
 *
 * MSR CSV is convenient but bulky and slow to parse for multi-
 * million-request traces; this fixed-width little-endian format is
 * about 4x smaller and parses at memory speed. Layout:
 *
 *   magic   "LSKT"            4 bytes
 *   version u32               currently 1
 *   nameLen u32, name bytes
 *   count   u64
 *   records count x { timestampUs u64, type u8, lba u64, count u64 }
 *
 * All integers little-endian; readers reject bad magic/version and
 * truncated files.
 */

#ifndef LOGSEEK_TRACE_BINARY_H
#define LOGSEEK_TRACE_BINARY_H

#include <iosfwd>
#include <string>

#include "trace/trace.h"

namespace logseek::trace
{

/** Current binary trace format version. */
inline constexpr std::uint32_t kBinaryTraceVersion = 1;

/** Serialize a trace to the LSKT binary format. */
void writeBinaryTrace(std::ostream &out, const Trace &trace);

/** Serialize a trace to a file; fatal() on I/O failure. */
void writeBinaryTraceFile(const std::string &path,
                          const Trace &trace);

/**
 * Parse an LSKT stream.
 * @throws FatalError on bad magic, unsupported version or
 *         truncation.
 */
Trace readBinaryTrace(std::istream &in);

/** Parse an LSKT file; fatal() if it cannot be opened. */
Trace readBinaryTraceFile(const std::string &path);

} // namespace logseek::trace

#endif // LOGSEEK_TRACE_BINARY_H
