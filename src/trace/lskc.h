/**
 * @file
 * Columnar binary trace format ("LSKC") with zero-copy mmap replay.
 *
 * LSKT (trace/binary.h) is row-major: reading it decodes 25 bytes
 * per record into an in-RAM Trace. LSKC stores the same records as
 * three parallel columns laid out exactly the way the replay
 * engine's IoEventBatch consumes them, so an mmap'd file replays
 * with no per-record decode and no heap copy at all — the batch
 * columns are bound straight into the mapping. Layout:
 *
 *   preamble  magic "LSKC" | version u32 | headerLen u32
 *             | headerCrc u32 (CRC-32 of the header bytes)
 *   header    recordCount u64 | addressSpaceEnd u64
 *             | nameLen u32 | name bytes
 *             | 3 x section { offset u64, byteLen u64, crc u32 }
 *   sections  extents    recordCount x SectorExtent (16 bytes)
 *             timestamps recordCount x u64
 *             types      recordCount x u8 (0 = read, 1 = write)
 *
 * All integers little-endian; every section starts at a
 * kLskcSectionAlign-aligned offset so the extent column can be
 * reinterpreted in place. The CRC framing follows the LCKP
 * checkpoint convention (util/checkpoint.h): nothing in the file
 * is trusted until its checksum verifies, so truncation, torn
 * writes and bit flips surface as typed DataLoss errors at open —
 * never as a crash or a silently wrong replay (the fault-sweep
 * test pins this). See docs/ingestion.md.
 */

#ifndef LOGSEEK_TRACE_LSKC_H
#define LOGSEEK_TRACE_LSKC_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "trace/input.h"
#include "trace/trace.h"
#include "util/status.h"

namespace logseek::trace
{

/** Current columnar trace format version. */
inline constexpr std::uint32_t kLskcVersion = 1;

/** Bytes before the header: magic + version + headerLen +
 *  headerCrc. */
inline constexpr std::size_t kLskcPreambleBytes = 16;

/** Alignment of every section start, in bytes. */
inline constexpr std::size_t kLskcSectionAlign = 64;

/** Bytes one record contributes to each column. */
inline constexpr std::size_t kLskcExtentBytes = 16;
inline constexpr std::size_t kLskcTimestampBytes = 8;
inline constexpr std::size_t kLskcTypeBytes = 1;

/**
 * Write `input`'s records to an LSKC file. Streams the three
 * columns in three passes (reset() between them), so memory stays
 * bounded by one I/O buffer even for workloads far larger than
 * RAM. The output is deterministic: the same record stream always
 * produces the same bytes. Unavailable on I/O failure, DataLoss
 * when the input does not reproduce the same records across
 * passes.
 */
Status tryWriteLskcFile(const std::string &path, TraceInput &input);

/** Convenience overload for an in-RAM trace. */
Status tryWriteLskcFile(const std::string &path,
                        const Trace &trace);

/**
 * A read-only mmap of one file, shared by every view into it; the
 * mapping lives until the last holder drops its reference.
 */
class MappedFile
{
  public:
    /** Map `path` read-only. NotFound when it cannot be opened,
     *  Unavailable when the map itself fails, DataLoss for an
     *  empty file. */
    static StatusOr<std::shared_ptr<const MappedFile>>
    tryMap(const std::string &path);

    ~MappedFile();
    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    const std::byte *data() const { return data_; }
    std::size_t size() const { return size_; }

  private:
    MappedFile(std::byte *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    std::byte *data_;
    std::size_t size_;
};

/** Validated pointers into an mmap'd LSKC file's columns. */
struct LskcLayout
{
    std::string name;
    std::uint64_t recordCount = 0;
    Lba addressSpaceEnd = 0;
    const SectorExtent *extents = nullptr;
    const std::uint64_t *timestamps = nullptr;
    const IoType *types = nullptr;
};

/**
 * Zero-copy TraceInput over an mmap'd LSKC file: next() binds the
 * batch columns straight into the mapping. Holds a share of the
 * MappedFile, so a view outlives the source it came from.
 */
class LskcView final : public TraceInput
{
  public:
    /** `layout` is copied (it is a name plus column pointers), so
     *  the view only depends on the mapping it co-owns. */
    LskcView(std::shared_ptr<const MappedFile> file,
             LskcLayout layout)
        : file_(std::move(file)), layout_(std::move(layout))
    {
    }

    const std::string &name() const override
    {
        return layout_.name;
    }
    Lba addressSpaceEnd() const override
    {
        return layout_.addressSpaceEnd;
    }

    std::size_t
    next(IoEventBatch &batch, std::size_t max) override
    {
        const std::uint64_t left = layout_.recordCount - pos_;
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(max, left));
        if (n == 0)
            return 0;
        batch.bind(layout_.extents + pos_,
                   layout_.timestamps + pos_,
                   layout_.types + pos_, n);
        pos_ += n;
        return n;
    }

    void reset() override { pos_ = 0; }

    std::optional<std::uint64_t> sizeHint() const override
    {
        return layout_.recordCount;
    }

  private:
    std::shared_ptr<const MappedFile> file_;
    LskcLayout layout_;
    std::uint64_t pos_ = 0;
};

/**
 * A shared, fully-validated LSKC file: tryOpen() maps the file and
 * verifies the complete structure (magic, version, header CRC,
 * section bounds/alignment/CRCs, type values, addressSpaceEnd
 * consistency) before any record is served, so views opened from
 * it never have to re-check. Counted in trace_mmap_opens_total.
 */
class LskcSource final : public TraceSource
{
  public:
    static StatusOr<std::shared_ptr<const LskcSource>>
    tryOpen(const std::string &path);

    const std::string &name() const override
    {
        return layout_.name;
    }

    std::unique_ptr<TraceInput> open() const override
    {
        return std::make_unique<LskcView>(file_, layout_);
    }

    std::optional<std::uint64_t> sizeHint() const override
    {
        return layout_.recordCount;
    }

    Lba addressSpaceEnd() const
    {
        return layout_.addressSpaceEnd;
    }

  private:
    LskcSource(std::shared_ptr<const MappedFile> file,
               LskcLayout layout)
        : file_(std::move(file)), layout_(std::move(layout))
    {
    }

    std::shared_ptr<const MappedFile> file_;
    LskcLayout layout_;
};

/** Open and materialize an LSKC file into an in-RAM Trace. */
StatusOr<Trace> tryReadLskcFile(const std::string &path);

} // namespace logseek::trace

#endif // LOGSEEK_TRACE_LSKC_H
