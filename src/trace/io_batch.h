/**
 * @file
 * Columnar I/O batch: the structure-of-arrays block the batch-first
 * replay core consumes.
 *
 * An IoEventBatch exposes one block of trace records as three
 * parallel columns (lba/len as contiguous SectorExtents, timestamps
 * and types alongside), so a whole run of same-type records can be
 * handed to the translation layer as one span. The columns can be
 *
 *  - owned: buildFrom() copies a Trace block (or clear()/append()
 *    assembles one record at a time), reusing the vectors'
 *    capacity, or
 *  - bound: bind() points the columns at externally-owned memory —
 *    an mmap'd LSKC section — so replaying a file touches no heap
 *    at all (docs/ingestion.md).
 *
 * Accessors go through the column pointers in both modes, so the
 * replay engine is indifferent to where the bytes live. The batch
 * is neither copyable nor movable: the pointers may alias its own
 * vectors, and no caller needs to relocate one.
 */

#ifndef LOGSEEK_TRACE_IO_BATCH_H
#define LOGSEEK_TRACE_IO_BATCH_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/trace.h"
#include "util/extent.h"

namespace logseek::trace
{

/**
 * Structure-of-arrays form of one block of trace records. The
 * extent column doubles as the contiguous span the batched
 * translation API consumes; timestamps and types stay in their own
 * columns so run-splitting scans touch only one byte per record.
 */
class IoEventBatch
{
  public:
    IoEventBatch() = default;
    IoEventBatch(const IoEventBatch &) = delete;
    IoEventBatch &operator=(const IoEventBatch &) = delete;

    /** Rebuild the owned columns from trace records [begin, end). */
    void
    buildFrom(const Trace &trace, std::size_t begin, std::size_t end)
    {
        clear();
        for (std::size_t i = begin; i < end; ++i)
            append(trace[i]);
    }

    /**
     * Point the columns at external memory holding `n` records.
     * The memory must outlive every access; the owned vectors are
     * untouched (their capacity survives for later buildFrom use).
     */
    void
    bind(const SectorExtent *extents,
         const std::uint64_t *timestamps, const IoType *types,
         std::size_t n)
    {
        extents_ = extents;
        timestamps_ = timestamps;
        types_ = types;
        size_ = n;
    }

    /** Drop all owned records, keeping the columns' capacity. */
    void
    clear()
    {
        ownExtents_.clear();
        ownTimestamps_.clear();
        ownTypes_.clear();
        extents_ = nullptr;
        timestamps_ = nullptr;
        types_ = nullptr;
        size_ = 0;
    }

    /** Append one record to the owned columns. */
    void
    append(const IoRecord &record)
    {
        ownExtents_.push_back(record.extent);
        ownTimestamps_.push_back(record.timestampUs);
        ownTypes_.push_back(record.type);
        // push_back may reallocate, so the column pointers are
        // refreshed on every append; accessors stay branch-free.
        extents_ = ownExtents_.data();
        timestamps_ = ownTimestamps_.data();
        types_ = ownTypes_.data();
        ++size_;
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    const SectorExtent &extent(std::size_t i) const
    {
        return extents_[i];
    }
    std::uint64_t timestamp(std::size_t i) const
    {
        return timestamps_[i];
    }
    IoType type(std::size_t i) const { return types_[i]; }

    /** Reconstruct record i (bit-identical to the source record). */
    IoRecord
    record(std::size_t i) const
    {
        return IoRecord{timestamps_[i], types_[i], extents_[i]};
    }

    /** Pointer into the contiguous extent column (for spans). */
    const SectorExtent *extentData() const { return extents_; }

    /** One past the last index of the same-type run starting at i. */
    std::size_t
    runEnd(std::size_t i) const
    {
        const IoType head = types_[i];
        std::size_t j = i + 1;
        while (j < size_ && types_[j] == head)
            ++j;
        return j;
    }

  private:
    std::vector<SectorExtent> ownExtents_;
    std::vector<std::uint64_t> ownTimestamps_;
    std::vector<IoType> ownTypes_;

    /** Active columns: the owned vectors' data or bound memory. */
    const SectorExtent *extents_ = nullptr;
    const std::uint64_t *timestamps_ = nullptr;
    const IoType *types_ = nullptr;
    std::size_t size_ = 0;
};

} // namespace logseek::trace

#endif // LOGSEEK_TRACE_IO_BATCH_H
