/**
 * @file
 * Trace manipulation utilities: time/index slicing, timestamp
 * merging and request filtering.
 *
 * Real block-trace studies constantly need these operations — the
 * paper samples its traces ("we sample the traces and select
 * some..."), merges per-disk streams into one volume view, and
 * examines read-only or write-only behavior. These helpers keep
 * such preprocessing inside the library instead of ad-hoc scripts.
 */

#ifndef LOGSEEK_TRACE_TOOLS_H
#define LOGSEEK_TRACE_TOOLS_H

#include <cstdint>
#include <functional>
#include <vector>

#include "trace/trace.h"
#include "util/status.h"

namespace logseek::trace
{

/**
 * Requests with timestamps in [begin_us, end_us), preserving order
 * and timestamps. InvalidArgument if begin_us > end_us.
 */
StatusOr<Trace> trySliceByTime(const Trace &input,
                               std::uint64_t begin_us,
                               std::uint64_t end_us);

/**
 * Requests with indices in [begin, end), clamped to the trace.
 * InvalidArgument if begin > end.
 */
StatusOr<Trace> trySliceByIndex(const Trace &input,
                                std::size_t begin, std::size_t end);

/**
 * Merge multiple traces into one stream ordered by timestamp
 * (stable: ties keep the input-list order). InvalidArgument on a
 * null input pointer.
 */
StatusOr<Trace>
tryMergeByTimestamp(const std::vector<const Trace *> &inputs,
                    const std::string &name);

/**
 * Keep every nth request starting at offset. InvalidArgument if
 * n == 0.
 */
StatusOr<Trace> trySampleEveryNth(const Trace &input, std::size_t n,
                                  std::size_t offset = 0);

/** Throwing wrapper around trySliceByTime; panics on bad bounds. */
Trace sliceByTime(const Trace &input, std::uint64_t begin_us,
                  std::uint64_t end_us);

/** Throwing wrapper around trySliceByIndex; panics on bad bounds. */
Trace sliceByIndex(const Trace &input, std::size_t begin,
                   std::size_t end);

/**
 * Throwing wrapper around tryMergeByTimestamp; panics on a null
 * input. Used to combine per-disk traces into a single volume view.
 */
Trace mergeByTimestamp(const std::vector<const Trace *> &inputs,
                       const std::string &name);

/** Keep only the requests for which keep returns true. */
Trace filter(const Trace &input,
             const std::function<bool(const IoRecord &)> &keep);

/** Keep only reads. */
Trace readsOnly(const Trace &input);

/** Keep only writes. */
Trace writesOnly(const Trace &input);

/**
 * Keep every nth request starting at offset — the simple sampling
 * the paper applies to its trace corpus. Throwing wrapper around
 * trySampleEveryNth; panics if n == 0.
 */
Trace sampleEveryNth(const Trace &input, std::size_t n,
                     std::size_t offset = 0);

} // namespace logseek::trace

#endif // LOGSEEK_TRACE_TOOLS_H
