/**
 * @file
 * Trace manipulation utilities: time/index slicing, timestamp
 * merging and request filtering.
 *
 * Real block-trace studies constantly need these operations — the
 * paper samples its traces ("we sample the traces and select
 * some..."), merges per-disk streams into one volume view, and
 * examines read-only or write-only behavior. These helpers keep
 * such preprocessing inside the library instead of ad-hoc scripts.
 */

#ifndef LOGSEEK_TRACE_TOOLS_H
#define LOGSEEK_TRACE_TOOLS_H

#include <cstdint>
#include <functional>
#include <vector>

#include "trace/trace.h"

namespace logseek::trace
{

/**
 * Requests with timestamps in [begin_us, end_us), preserving order
 * and timestamps.
 */
Trace sliceByTime(const Trace &input, std::uint64_t begin_us,
                  std::uint64_t end_us);

/** Requests with indices in [begin, end), clamped to the trace. */
Trace sliceByIndex(const Trace &input, std::size_t begin,
                   std::size_t end);

/**
 * Merge multiple traces into one stream ordered by timestamp
 * (stable: ties keep the input-list order). Used to combine
 * per-disk traces into a single volume view.
 */
Trace mergeByTimestamp(const std::vector<const Trace *> &inputs,
                       const std::string &name);

/** Keep only the requests for which keep returns true. */
Trace filter(const Trace &input,
             const std::function<bool(const IoRecord &)> &keep);

/** Keep only reads. */
Trace readsOnly(const Trace &input);

/** Keep only writes. */
Trace writesOnly(const Trace &input);

/**
 * Keep every nth request starting at offset — the simple sampling
 * the paper applies to its trace corpus.
 */
Trace sampleEveryNth(const Trace &input, std::size_t n,
                     std::size_t offset = 0);

} // namespace logseek::trace

#endif // LOGSEEK_TRACE_TOOLS_H
