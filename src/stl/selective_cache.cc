#include "selective_cache.h"

namespace logseek::stl
{

SelectiveCache::SelectiveCache(const SelectiveCacheConfig &config)
    : cache_(config.capacityBytes, disk::EvictionPolicy::Lru)
{
}

bool
SelectiveCache::lookup(const SectorExtent &physical)
{
    if (cache_.contains(physical)) {
        ++hits_;
        return true;
    }
    ++misses_;
    return false;
}

void
SelectiveCache::admit(const SectorExtent &physical)
{
    cache_.insert(physical);
}

} // namespace logseek::stl
