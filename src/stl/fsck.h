/**
 * @file
 * Fsck-style translation-layer invariant verifier.
 *
 * After a mount (or at the end of a paranoid run) the in-memory
 * translation state and the on-media journal must tell the same
 * story. Fsck::check replays the journal's consistent prefix into
 * reference structures and compares them against the live layer:
 * extent-map ↔ on-log agreement, write-pointer alignment with the
 * last recorded epoch, shard-stripe consistency, finite-log
 * forward/reverse bijection and liveness accounting, media-cache
 * pointer arithmetic. Violations are collected, never thrown — the
 * caller decides whether a dirty report is fatal.
 */

#ifndef LOGSEEK_STL_FSCK_H
#define LOGSEEK_STL_FSCK_H

#include <cstdint>
#include <string>
#include <vector>

#include "stl/segment_journal.h"
#include "stl/translation_layer.h"

namespace logseek::stl
{

/** One failed invariant. */
struct FsckViolation
{
    /** Short invariant name, e.g. "frontier-alignment". */
    std::string check;

    /** Human-readable specifics. */
    std::string detail;
};

/** Outcome of one verification pass. */
struct FsckReport
{
    std::vector<FsckViolation> violations;

    /** Map entries compared across all structures. */
    std::uint64_t checkedEntries = 0;

    bool ok() const { return violations.empty(); }

    /** All violations joined into one diagnostic string. */
    std::string toString() const;
};

/**
 * The verifier. Stateless; dispatches on the concrete layer type
 * and runs every invariant that applies. A layer kind without
 * durable state (the conventional baseline) is checked for an
 * empty journal. Bumps fsck_violations_total per violation.
 */
class Fsck
{
  public:
    static FsckReport check(const TranslationLayer &layer,
                            const SegmentJournal &journal);
};

} // namespace logseek::stl

#endif // LOGSEEK_STL_FSCK_H
