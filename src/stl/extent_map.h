/**
 * @file
 * Ordered interval map from logical to physical sector addresses.
 *
 * This is the translation structure of a full-map log-structured
 * translation layer (cf. DFTL-style extent maps, paper §II): each
 * entry maps a contiguous LBA run to a contiguous PBA run. Writes
 * split and replace overlapping entries; physically adjacent
 * neighbors are coalesced, so the number of entries equals the
 * number of physically contiguous runs (the paper's *static
 * fragmentation* when counted over written space).
 */

#ifndef LOGSEEK_STL_EXTENT_MAP_H
#define LOGSEEK_STL_EXTENT_MAP_H

#include <cstdint>
#include <map>
#include <vector>

#include "util/extent.h"

namespace logseek::stl
{

/** One translation result: a logical run and its physical start. */
struct Segment
{
    /** Logical sector range. */
    SectorExtent logical;

    /** Physical address of logical.start; run is contiguous. */
    Pba pba = 0;

    /** False for holes (LBAs never written through the map). */
    bool mapped = false;

    /** Physical sector range covered by this segment. */
    SectorExtent
    physical() const
    {
        return SectorExtent{pba, logical.count};
    }

    bool operator==(const Segment &other) const = default;
};

/**
 * Interval map with O(log n + k) translate and amortized O(log n)
 * mapping updates (k = segments touched).
 */
class ExtentMap
{
  public:
    /**
     * Map [lba, lba + count) to [pba, pba + count), replacing any
     * previous mappings of the range. Adjacent entries that are
     * contiguous both logically and physically are coalesced.
     *
     * @param displaced If non-null, receives the physical ranges
     *        whose mappings this update invalidated — the sectors
     *        that just became dead space (used by cleaning layers
     *        to track per-segment liveness).
     */
    void mapRange(Lba lba, Pba pba, SectorCount count,
                  std::vector<SectorExtent> *displaced = nullptr);

    /**
     * Translate a logical range into segments ordered by LBA.
     * Unmapped subranges are returned as hole segments with
     * mapped == false and pba == logical.start (identity), matching
     * the paper's placement of data written before trace start.
     */
    std::vector<Segment> translate(const SectorExtent &extent) const;

    /**
     * Number of physically contiguous mapped runs intersecting
     * extent plus its unmapped holes — the *dynamic fragmentation*
     * of a read of extent.
     */
    std::size_t fragmentCount(const SectorExtent &extent) const;

    /** Number of map entries (static fragmentation of written space). */
    std::size_t entryCount() const { return entries_.size(); }

    /** Total mapped sectors. */
    SectorCount mappedSectors() const { return mappedSectors_; }

    /** True if no range was ever mapped. */
    bool empty() const { return entries_.empty(); }

    /**
     * Visit every entry in LBA order as (lba, pba, count).
     * Primarily for tests and invariant checks.
     */
    template <typename Fn>
    void
    forEachEntry(Fn &&fn) const
    {
        for (const auto &[lba, value] : entries_)
            fn(lba, value.pba, value.count);
    }

  private:
    struct Entry
    {
        Pba pba;
        SectorCount count;
    };

    /** Split any entry straddling sector so no entry crosses it. */
    void splitAt(Lba sector);

    /** Erase all whole entries inside [lo, hi), reporting their
     *  physical ranges through displaced when requested. */
    void eraseRange(Lba lo, Lba hi,
                    std::vector<SectorExtent> *displaced);

    /** Coalesce entry at iterator with its predecessor if possible. */
    std::map<Lba, Entry>::iterator
    tryMergeWithPrev(std::map<Lba, Entry>::iterator it);

    std::map<Lba, Entry> entries_;
    SectorCount mappedSectors_ = 0;
};

} // namespace logseek::stl

#endif // LOGSEEK_STL_EXTENT_MAP_H
