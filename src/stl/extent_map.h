/**
 * @file
 * Ordered interval map from logical to physical sector addresses.
 *
 * This is the translation structure of a full-map log-structured
 * translation layer (cf. DFTL-style extent maps, paper §II): each
 * entry maps a contiguous LBA run to a contiguous PBA run. Writes
 * split and replace overlapping entries; physically adjacent
 * neighbors are coalesced, so the number of entries equals the
 * number of physically contiguous runs (the paper's *static
 * fragmentation* when counted over written space).
 *
 * The map is a B+-tree over flat sorted nodes of 64 entries: leaves
 * hold the entries and are linked for O(k) range scans, inner nodes
 * hold separator keys, and all nodes come from chunked pool
 * allocators with free lists, so entries are cache-dense and steady
 * state performs no per-operation heap allocation. Read-side
 * lookups first try a one-entry last-touched-leaf cursor — the
 * sequential runs that dominate these traces resolve without
 * descending the tree. See docs/performance.md for the layout and
 * the invariants that make the cursor sound.
 */

#ifndef LOGSEEK_STL_EXTENT_MAP_H
#define LOGSEEK_STL_EXTENT_MAP_H

#include <cstdint>
#include <memory>
#include <vector>

#include "util/extent.h"

namespace logseek::telemetry
{
class Counter;
}

namespace logseek::stl
{

/** One translation result: a logical run and its physical start. */
struct Segment
{
    /** Logical sector range. */
    SectorExtent logical;

    /** Physical address of logical.start; run is contiguous. */
    Pba pba = 0;

    /** False for holes (LBAs never written through the map). */
    bool mapped = false;

    /** Physical sector range covered by this segment. */
    SectorExtent
    physical() const
    {
        return SectorExtent{pba, logical.count};
    }

    bool operator==(const Segment &other) const = default;
};

/**
 * Caller-owned reusable scratch for translation results. clear()
 * keeps the underlying capacity, so a buffer threaded through a
 * replay loop stops allocating once it has grown to the largest
 * result seen — the allocation-free steady state of the read path.
 */
class SegmentBuffer
{
  public:
    /** Drop all segments, keeping capacity. */
    void clear() { segments_.clear(); }

    void push(const Segment &segment) { segments_.push_back(segment); }

    /** Keep only the first n segments (n <= size()). */
    void
    truncate(std::size_t n)
    {
        segments_.resize(n);
    }

    std::size_t size() const { return segments_.size(); }
    bool empty() const { return segments_.empty(); }

    Segment &operator[](std::size_t i) { return segments_[i]; }
    const Segment &operator[](std::size_t i) const
    {
        return segments_[i];
    }

    Segment *begin() { return segments_.data(); }
    Segment *end() { return segments_.data() + segments_.size(); }
    const Segment *begin() const { return segments_.data(); }
    const Segment *
    end() const
    {
        return segments_.data() + segments_.size();
    }

    /** The segments as a vector (e.g. to copy into an IoEvent). */
    const std::vector<Segment> &segments() const { return segments_; }

    /** Move the segments out (the buffer is left empty). */
    std::vector<Segment>
    take() &&
    {
        return std::move(segments_);
    }

  private:
    std::vector<Segment> segments_;
};

/**
 * Interval map with O(log n + k) translate and amortized O(log n)
 * mapping updates (k = segments touched).
 */
class ExtentMap
{
  public:
    /** Entries per leaf and children per inner node. */
    static constexpr std::uint32_t kNodeCapacity = 64;

    ExtentMap();
    ~ExtentMap();

    ExtentMap(ExtentMap &&other) noexcept;
    ExtentMap &operator=(ExtentMap &&other) noexcept;
    ExtentMap(const ExtentMap &) = delete;
    ExtentMap &operator=(const ExtentMap &) = delete;

    /**
     * Map [lba, lba + count) to [pba, pba + count), replacing any
     * previous mappings of the range. Adjacent entries that are
     * contiguous both logically and physically are coalesced.
     *
     * @param displaced If non-null, receives the physical ranges
     *        whose mappings this update invalidated — the sectors
     *        that just became dead space (used by cleaning layers
     *        to track per-segment liveness).
     */
    void mapRange(Lba lba, Pba pba, SectorCount count,
                  std::vector<SectorExtent> *displaced = nullptr);

    /**
     * Translate a logical range into segments ordered by LBA.
     * Unmapped subranges are returned as hole segments with
     * mapped == false and pba == logical.start (identity), matching
     * the paper's placement of data written before trace start.
     */
    std::vector<Segment> translate(const SectorExtent &extent) const;

    /**
     * Allocation-free translate: clears `out` and fills it with the
     * same segments translate() would return. The hot path of the
     * replay engine; reuse one buffer across calls.
     */
    void translateInto(const SectorExtent &extent,
                       SegmentBuffer &out) const;

    /**
     * Append-variant of translateInto for batched callers: pushes
     * the same segments onto `out` without clearing it, so one flat
     * buffer can collect the results of a whole record batch.
     */
    void translateAppend(const SectorExtent &extent,
                         SegmentBuffer &out) const;

    /**
     * Number of physically contiguous mapped runs intersecting
     * extent plus its unmapped holes — the *dynamic fragmentation*
     * of a read of extent. Allocation-free.
     */
    std::size_t fragmentCount(const SectorExtent &extent) const;

    /** Number of map entries (static fragmentation of written space). */
    std::size_t entryCount() const { return entryCount_; }

    /** Total mapped sectors. */
    SectorCount mappedSectors() const { return mappedSectors_; }

    /** True if no range was ever mapped. */
    bool empty() const { return entryCount_ == 0; }

    /**
     * Visit every entry in LBA order as (lba, pba, count).
     * Primarily for tests and invariant checks.
     */
    template <typename Fn>
    void
    forEachEntry(Fn &&fn) const
    {
        for (const Leaf *leaf = firstLeaf_; leaf != nullptr;
             leaf = leaf->next)
            for (std::uint32_t i = 0; i < leaf->n; ++i)
                fn(leaf->entries[i].lba, leaf->entries[i].pba,
                   leaf->entries[i].count);
    }

  private:
    struct Entry
    {
        Lba lba;
        Pba pba;
        SectorCount count;
    };

    struct Inner;

    struct Leaf
    {
        std::uint32_t n = 0;
        Leaf *prev = nullptr;
        Leaf *next = nullptr;
        Inner *parent = nullptr;
        Entry entries[kNodeCapacity];
    };

    /**
     * Inner node routing invariant: every entry reachable through
     * children[i] has lba in [keys[i], keys[i+1]) (keys[0] acts as
     * negative infinity and is never compared; keys[n] as positive
     * infinity). All mutations preserve it, which is what makes
     * separator-routed inserts land on the globally correct leaf.
     */
    struct Inner
    {
        std::uint32_t n = 0;
        Inner *parent = nullptr;
        bool leafChildren = true;
        Lba keys[kNodeCapacity];
        void *children[kNodeCapacity];
    };

    /** A position in the leaf chain; leaf == nullptr is end(). */
    struct Pos
    {
        Leaf *leaf = nullptr;
        std::uint32_t idx = 0;
    };

    /** Separator-routed descent to the leaf owning lba's window. */
    Leaf *descend(Lba lba) const;

    /**
     * Leaf for a read-side lookup of lba: the cursor when its
     * window covers lba, else a descent (which re-seats the
     * cursor). Read-only paths may use this even when separators
     * have gone stale through erases; mutations must route.
     */
    Leaf *leafForRead(Lba lba) const;

    /** First position with entry lba > lba (end() if none). */
    Pos upperBound(Lba lba) const;

    /** First position with entry lba >= lba (end() if none). */
    Pos lowerBound(Lba lba) const;

    /** Step p back one entry; false (p untouched) at begin(). */
    bool tryPrev(Pos &p) const;

    /** Step p forward one entry (to end() at the last). */
    void next(Pos &p) const;

    /** Insert an entry at its routed position; panics if its lba is
     *  already present. Returns the entry's position. */
    Pos insertEntry(const Entry &entry);

    /** Remove the entry at p; returns the following position. */
    Pos erasePos(Pos p);

    /** Split a full leaf, linking and reparenting the upper half. */
    Leaf *splitLeaf(Leaf *leaf);

    /** Hook `right` (with separator key) next to `left` in the
     *  parent, growing the tree at the root as needed. */
    void insertIntoParent(void *left, Lba separator, void *right,
                          bool children_are_leaves);

    /** Detach a freed child from its parent, collapsing the root
     *  when it drains to a single child. */
    void removeChild(Inner *parent, const void *child);

    /** Unlink and free an emptied, non-root leaf. */
    void removeLeaf(Leaf *leaf);

    void collapseRoot();

    /** Split any entry straddling sector so no entry crosses it. */
    void splitAt(Lba sector);

    /** Erase all whole entries inside [lo, hi), reporting their
     *  physical ranges through displaced when requested. */
    void eraseRange(Lba lo, Lba hi,
                    std::vector<SectorExtent> *displaced);

    /** Coalesce the entry at p with its predecessor if possible. */
    Pos tryMergeWithPrev(Pos p);

    Leaf *allocLeaf();
    void freeLeaf(Leaf *leaf);
    Inner *allocInner();
    void freeInner(Inner *inner);

    /** root_ points at a Leaf when height_ == 0, an Inner above. */
    void *root_ = nullptr;
    std::uint32_t height_ = 0;
    Leaf *firstLeaf_ = nullptr;
    Leaf *lastLeaf_ = nullptr;

    /** Last-touched leaf; reads re-seat it, frees invalidate it. */
    mutable Leaf *cursor_ = nullptr;

    std::size_t entryCount_ = 0;
    SectorCount mappedSectors_ = 0;

    /** Chunked node pools; freed nodes go on intrusive free lists
     *  (Leaf::next / Inner::parent double as the links). */
    static constexpr std::size_t kNodesPerBlock = 16;
    std::vector<std::unique_ptr<Leaf[]>> leafBlocks_;
    std::size_t leafBlockUsed_ = 0;
    Leaf *leafFree_ = nullptr;
    std::vector<std::unique_ptr<Inner[]>> innerBlocks_;
    std::size_t innerBlockUsed_ = 0;
    Inner *innerFree_ = nullptr;

    /** Resolved once at construction; add() self-gates on the
     *  process-wide telemetry switch. */
    telemetry::Counter *cursorHits_;
    telemetry::Counter *nodeSplits_;
};

} // namespace logseek::stl

#endif // LOGSEEK_STL_EXTENT_MAP_H
